// cgraf_cli — drive the floorplanner from the command line.
//
//   cgraf_cli gen    --contexts 8 --dim 6 --usage 0.5 --seed 7 --out d.cgraf
//   cgraf_cli gen    --spec B13 --out d.cgraf          (Table I suite entry)
//   cgraf_cli place  --design d.cgraf --seed 1 --out base.fp
//   cgraf_cli remap  --design d.cgraf --floorplan base.fp \
//                    --mode rotate --out aged.fp
//   cgraf_cli report --design d.cgraf --floorplan base.fp [--compare aged.fp]
//
// Every artifact is the text format of cgrra/io.h, so the steps compose
// with shell pipelines and with hand-edited fixtures.
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "aging/mechanisms.h"
#include "cgrra/io.h"
#include "core/analysis.h"
#include "cgrra/stress.h"
#include "core/remapper.h"
#include "hls/placer.h"
#include "timing/sta.h"
#include "util/ascii.h"
#include "workloads/suite.h"

namespace {

using namespace cgraf;

int usage() {
  std::fprintf(stderr,
               "usage: cgraf_cli <gen|place|remap|report> [options]\n"
               "  gen    --out FILE  [--spec B1..B27 | --contexts N --dim D"
               " --usage U] [--seed S] [--paper-scale]\n"
               "  place  --design FILE --out FILE [--seed S]\n"
               "  remap  --design FILE --floorplan FILE --out FILE"
               " [--mode freeze|rotate] [--margin F] [--seed S] [--verbose]\n"
               "  report --design FILE --floorplan FILE [--compare FILE]\n");
  return 2;
}

// Minimal flag parser: every option takes a value except boolean switches.
struct Args {
  std::map<std::string, std::string> values;
  bool ok = true;

  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        ok = false;
        return;
      }
      key = key.substr(2);
      if (key == "paper-scale" || key == "verbose") {
        values[key] = "1";
      } else if (i + 1 < argc) {
        values[key] = argv[++i];
      } else {
        ok = false;
        return;
      }
    }
  }
  std::optional<std::string> get(const std::string& key) const {
    const auto it = values.find(key);
    return it == values.end() ? std::nullopt
                              : std::optional<std::string>(it->second);
  }
  std::string get_or(const std::string& key, const std::string& dflt) const {
    return get(key).value_or(dflt);
  }
  bool has(const std::string& key) const { return values.count(key) > 0; }
};

std::optional<Design> load_design(const Args& args, std::string* error) {
  const auto path = args.get("design");
  if (!path) {
    *error = "--design is required";
    return std::nullopt;
  }
  const auto text = read_file(*path, error);
  if (!text) return std::nullopt;
  return design_from_text(*text, error);
}

std::optional<Floorplan> load_floorplan(const Args& args,
                                        const std::string& key,
                                        std::string* error) {
  const auto path = args.get(key);
  if (!path) {
    *error = "--" + key + " is required";
    return std::nullopt;
  }
  const auto text = read_file(*path, error);
  if (!text) return std::nullopt;
  return floorplan_from_text(*text, error);
}

int cmd_gen(const Args& args) {
  const auto out = args.get("out");
  if (!out) return usage();
  workloads::BenchmarkSpec spec;
  if (const auto name = args.get("spec")) {
    bool found = false;
    for (const auto& s :
         workloads::table1_specs(args.has("paper-scale"))) {
      if (s.name == *name) {
        spec = s;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown suite spec '%s' (use B1..B27)\n",
                   name->c_str());
      return 1;
    }
  } else {
    spec.name = "custom";
    spec.contexts = std::atoi(args.get_or("contexts", "4").c_str());
    spec.fabric_dim = std::atoi(args.get_or("dim", "4").c_str());
    spec.usage = std::atof(args.get_or("usage", "0.5").c_str());
  }
  if (const auto seed = args.get("seed"))
    spec.seed = std::strtoull(seed->c_str(), nullptr, 10);
  if (spec.contexts <= 0 || spec.fabric_dim <= 0 || spec.usage <= 0 ||
      spec.usage > 1.0) {
    std::fprintf(stderr, "invalid generation parameters\n");
    return 1;
  }
  const auto bench = workloads::generate_benchmark(spec);
  std::string error;
  if (!write_file(*out, to_text(bench.design), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s: %d contexts, %dx%d fabric, %d ops\n", out->c_str(),
              bench.design.num_contexts, bench.design.fabric.rows(),
              bench.design.fabric.cols(), bench.total_ops);
  return 0;
}

int cmd_place(const Args& args) {
  std::string error;
  const auto design = load_design(args, &error);
  const auto out = args.get("out");
  if (!design || !out) {
    std::fprintf(stderr, "%s\n", error.empty() ? "--out is required"
                                               : error.c_str());
    return 1;
  }
  hls::PlacerOptions opts;
  opts.seed = std::strtoull(args.get_or("seed", "1").c_str(), nullptr, 10);
  const Floorplan fp = place_baseline(*design, opts);
  if (!write_file(*out, to_text(fp), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto sta = timing::run_sta(*design, fp);
  const StressMap stress = compute_stress(*design, fp);
  std::printf("wrote %s: cpd=%.3f ns, max stress=%.3f, avg=%.3f\n",
              out->c_str(), sta.cpd_ns, stress.max_accumulated(),
              stress.avg_accumulated());
  return 0;
}

int cmd_remap(const Args& args) {
  std::string error;
  const auto design = load_design(args, &error);
  if (!design) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto baseline = load_floorplan(args, "floorplan", &error);
  const auto out = args.get("out");
  if (!baseline || !out) {
    std::fprintf(stderr, "%s\n", error.empty() ? "--out is required"
                                               : error.c_str());
    return 1;
  }
  std::string why;
  if (!is_valid(*design, *baseline, &why)) {
    std::fprintf(stderr, "input floorplan invalid: %s\n", why.c_str());
    return 1;
  }
  core::RemapOptions opts;
  const std::string mode = args.get_or("mode", "rotate");
  if (mode == "freeze") opts.mode = core::RemapMode::kFreeze;
  else if (mode == "rotate") opts.mode = core::RemapMode::kRotate;
  else {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 1;
  }
  opts.path_margin = std::atof(args.get_or("margin", "0.2").c_str());
  opts.seed = std::strtoull(args.get_or("seed", "1").c_str(), nullptr, 10);
  opts.verbose = args.has("verbose");

  const core::RemapResult result =
      aging_aware_remap(*design, *baseline, opts);
  if (!write_file(*out, to_text(result.floorplan), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out->c_str());
  std::printf("cpd: %.3f -> %.3f ns | max stress: %.3f -> %.3f | "
              "MTTF: %.2f -> %.2f years (%.2fx)\n",
              result.cpd_before_ns, result.cpd_after_ns, result.st_max_before,
              result.st_max_after, result.mttf_before.mttf_years,
              result.mttf_after.mttf_years, result.mttf_gain);
  std::printf("%s\n", result.note.c_str());
  return result.improved ? 0 : 3;  // 3: valid but no improvement found
}

int cmd_report(const Args& args) {
  std::string error;
  const auto design = load_design(args, &error);
  if (!design) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto fp = load_floorplan(args, "floorplan", &error);
  if (!fp) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string why;
  if (!is_valid(*design, *fp, &why)) {
    std::fprintf(stderr, "floorplan invalid: %s\n", why.c_str());
    return 1;
  }

  auto describe = [&](const Floorplan& plan, const char* label) {
    const auto sta = timing::run_sta(*design, plan);
    const StressMap stress = compute_stress(*design, plan);
    const auto mttf = aging::compute_mttf_combined(*design, plan);
    std::printf("[%s]\n", label);
    std::printf("  cpd          : %.3f ns (clock %.1f ns)\n", sta.cpd_ns,
                design->fabric.clock_period_ns());
    std::printf("  stress max   : %.3f (fabric avg %.3f)\n",
                stress.max_accumulated(), stress.avg_accumulated());
    std::printf("  MTTF         : %.2f years (limited by %s on PE %d)\n",
                mttf.mttf_years, to_string(mttf.limiting_mechanism),
                mttf.limiting_pe);
    std::printf("  per mechanism: NBTI %.2fy | HCI %.2fy | EM %.2fy\n",
                mttf.nbti_mttf_seconds / aging::kSecondsPerYear,
                mttf.hci_mttf_seconds / aging::kSecondsPerYear,
                mttf.em_mttf_seconds / aging::kSecondsPerYear);
    std::printf("  accumulated stress map:\n%s\n",
                render_heat_map(stress.accumulated, design->fabric.rows(),
                                design->fabric.cols())
                    .c_str());
    return mttf.mttf_years;
  };

  const double base_years = describe(*fp, "floorplan");
  if (args.has("compare")) {
    const auto other = load_floorplan(args, "compare", &error);
    if (!other) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (!is_valid(*design, *other, &why)) {
      std::fprintf(stderr, "comparison floorplan invalid: %s\n", why.c_str());
      return 1;
    }
    const double other_years = describe(*other, "compare");
    std::printf("[diff floorplan -> compare]\n%s",
                format_diff(core::diff_floorplans(*design, *fp, *other))
                    .c_str());
    std::printf("MTTF ratio (compare / floorplan): %.2fx\n",
                other_years / base_years);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  if (!args.ok) return usage();
  if (cmd == "gen") return cmd_gen(args);
  if (cmd == "place") return cmd_place(args);
  if (cmd == "remap") return cmd_remap(args);
  if (cmd == "report") return cmd_report(args);
  return usage();
}
