// cgraf_cli — drive the floorplanner from the command line.
//
//   cgraf_cli gen    --contexts 8 --dim 6 --usage 0.5 --seed 7 --out d.cgraf
//   cgraf_cli gen    --spec B13 --out d.cgraf          (Table I suite entry)
//   cgraf_cli place  --design d.cgraf --seed 1 --out base.fp
//   cgraf_cli remap  --design d.cgraf --floorplan base.fp
//                    --mode rotate --out aged.fp
//   cgraf_cli report --design d.cgraf --floorplan base.fp [--compare aged.fp]
//   cgraf_cli lint    --design d.cgraf --floorplan base.fp [--json]
//   cgraf_cli certify --design d.cgraf --baseline base.fp
//                     --floorplan aged.fp [--st-target X] [--json]
//   cgraf_cli analyze events.jsonl [--json]   (post-mortem of --log-events)
//
// Every artifact is the text format of cgrra/io.h, so the steps compose
// with shell pipelines and with hand-edited fixtures.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "aging/mechanisms.h"
#include "cgrra/io.h"
#include "core/analysis.h"
#include "cgrra/stress.h"
#include "core/remapper.h"
#include "core/report.h"
#include "hls/placer.h"
#include "verify/certify.h"
#include "verify/input_lint.h"
#include "verify/model_lint.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/progress.h"
#include "obs/sync_metrics.h"
#include "obs/trace.h"
#include "timing/sta.h"
#include "util/ascii.h"
#include "workloads/suite.h"

namespace {

using namespace cgraf;

int usage(int code = 2) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: cgraf_cli <gen|place|remap|report|lint|certify>"
               " [options]\n"
               "  gen    --out FILE  [--spec B1..B27 | --contexts N --dim D"
               " --usage U] [--seed S] [--paper-scale]\n"
               "  place  --design FILE --out FILE [--seed S]\n"
               "  remap  --design FILE --floorplan FILE --out FILE"
               " [--mode freeze|rotate] [--margin F] [--seed S]\n"
               "         [--strategy dive|fix-once|ilp|ls|portfolio]"
               " [--ls-seed S] [--ls-iters N] [--threads N]"
               " [--warm-probes on|off]\n"
               "         [--lp-algorithm primal|dual|auto] [--verbose]\n"
               "  report --design FILE --floorplan FILE [--compare FILE]\n"
               "  lint   --design FILE --floorplan FILE [--st-target X]"
               " [--margin F] [--json] [--no-info]\n"
               "         static analysis of the formulation-(3) model built"
               " for this design/floorplan\n"
               "  lint   --inputs --design FILE [--floorplan FILE] [--json]"
               " [--no-info]\n"
               "         data-model lint (DL rules) of the raw inputs;"
               " no model is built\n"
               "  certify --design FILE --baseline FILE --floorplan FILE\n"
               "         [--st-target X] [--margin F] [--mode freeze|rotate]"
               " [--json]\n"
               "         independently re-validate a remapped floorplan"
               " (exit 0 = certified)\n"
               "  analyze EVENTS.jsonl [--json]\n"
               "         post-mortem of a --log-events stream: B&B tree,"
               " LP totals, probe chain\n"
               "observability (any command):\n"
               "  --trace FILE      write a Chrome trace-event JSON of the"
               " run (chrome://tracing, Perfetto)\n"
               "  --metrics FILE    write the solver metrics registry as"
               " JSON\n"
               "  --log-events FILE append structured solve events as JSONL"
               " (see `analyze`)\n"
               "  --progress        rate-limited progress heartbeats on"
               " stderr\n"
               "  --help            show this message\n");
  return code;
}

// Boolean switches (no value); everything else consumes the next argv.
bool is_switch(const std::string& key) {
  return key == "paper-scale" || key == "verbose" || key == "progress" ||
         key == "help" || key == "json" || key == "no-info" ||
         key == "inputs";
}

// Minimal flag parser: every option takes a value except boolean switches.
struct Args {
  std::map<std::string, std::string> values;
  bool ok = true;
  std::string problem;

  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        ok = false;
        problem = "expected an option, got '" + key + "'";
        return;
      }
      key = key.substr(2);
      if (is_switch(key)) {
        // insert_or_assign with a ready-made string: assigning a char* via
        // operator[] trips gcc 12's -Wrestrict false positive at -O2.
        values.insert_or_assign(key, std::string("1"));
      } else if (i + 1 < argc) {
        values.insert_or_assign(key, std::string(argv[++i]));
      } else {
        ok = false;
        problem = "option --" + key + " needs a value";
        return;
      }
    }
  }

  // Rejects flags outside the command's allowed set so typos fail loudly
  // instead of being silently ignored. The observability flags are legal
  // with every command.
  bool check_allowed(std::set<std::string> allowed) {
    allowed.insert({"trace", "metrics", "log-events", "progress", "help"});
    for (const auto& [key, value] : values) {
      if (allowed.count(key) == 0) {
        ok = false;
        problem = "unknown option --" + key;
        return false;
      }
    }
    return true;
  }
  std::optional<std::string> get(const std::string& key) const {
    const auto it = values.find(key);
    return it == values.end() ? std::nullopt
                              : std::optional<std::string>(it->second);
  }
  std::string get_or(const std::string& key, const std::string& dflt) const {
    return get(key).value_or(dflt);
  }
  bool has(const std::string& key) const { return values.count(key) > 0; }
};

// Strict numeric flag parsing (atoi/atof read a typo like "0.2x" as 0.2 or
// garbage as 0; cert-err34-c). nullopt on anything but a complete number.
std::optional<long> parse_long_arg(const std::string& s) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return std::nullopt;
  return v;
}

std::optional<double> parse_double_arg(const std::string& s) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return std::nullopt;
  return v;
}

// Both loaders run the DL input-lint acceptance (verify/input_lint.h), so
// garbage is rejected with a stable rule ID before any model is built.
std::optional<Design> load_design(const Args& args, std::string* error) {
  const auto path = args.get("design");
  if (!path) {
    *error = "--design is required";
    return std::nullopt;
  }
  const auto text = read_file(*path, error);
  if (!text) return std::nullopt;
  return verify::accept_design_text(*text, error);
}

std::optional<Floorplan> load_floorplan(const Args& args, const Design& design,
                                        const std::string& key,
                                        std::string* error) {
  const auto path = args.get(key);
  if (!path) {
    *error = "--" + key + " is required";
    return std::nullopt;
  }
  const auto text = read_file(*path, error);
  if (!text) return std::nullopt;
  return verify::accept_floorplan_text(design, *text, error);
}

int cmd_gen(const Args& args) {
  const auto out = args.get("out");
  if (!out) return usage();
  workloads::BenchmarkSpec spec;
  if (const auto name = args.get("spec")) {
    bool found = false;
    for (const auto& s :
         workloads::table1_specs(args.has("paper-scale"))) {
      if (s.name == *name) {
        spec = s;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown suite spec '%s' (use B1..B27)\n",
                   name->c_str());
      return 1;
    }
  } else {
    spec.name = "custom";
    const auto contexts = parse_long_arg(args.get_or("contexts", "4"));
    const auto dim = parse_long_arg(args.get_or("dim", "4"));
    const auto usage_frac = parse_double_arg(args.get_or("usage", "0.5"));
    if (!contexts || !dim || !usage_frac) {
      std::fprintf(stderr, "invalid generation parameters\n");
      return 1;
    }
    spec.contexts = static_cast<int>(*contexts);
    spec.fabric_dim = static_cast<int>(*dim);
    spec.usage = *usage_frac;
  }
  if (const auto seed = args.get("seed"))
    spec.seed = std::strtoull(seed->c_str(), nullptr, 10);
  if (spec.contexts <= 0 || spec.fabric_dim <= 0 || spec.usage <= 0 ||
      spec.usage > 1.0) {
    std::fprintf(stderr, "invalid generation parameters\n");
    return 1;
  }
  const auto bench = workloads::generate_benchmark(spec);
  std::string error;
  if (!write_file(*out, to_text(bench.design), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s: %d contexts, %dx%d fabric, %d ops\n", out->c_str(),
              bench.design.num_contexts, bench.design.fabric.rows(),
              bench.design.fabric.cols(), bench.total_ops);
  return 0;
}

int cmd_place(const Args& args) {
  std::string error;
  const auto design = load_design(args, &error);
  const auto out = args.get("out");
  if (!design || !out) {
    std::fprintf(stderr, "%s\n", error.empty() ? "--out is required"
                                               : error.c_str());
    return 1;
  }
  hls::PlacerOptions opts;
  opts.seed = std::strtoull(args.get_or("seed", "1").c_str(), nullptr, 10);
  const Floorplan fp = place_baseline(*design, opts);
  if (!write_file(*out, to_text(fp), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto sta = timing::run_sta(*design, fp);
  const StressMap stress = compute_stress(*design, fp);
  std::printf("wrote %s: cpd=%.3f ns, max stress=%.3f, avg=%.3f\n",
              out->c_str(), sta.cpd_ns, stress.max_accumulated(),
              stress.avg_accumulated());
  return 0;
}

int cmd_remap(const Args& args) {
  std::string error;
  const auto design = load_design(args, &error);
  if (!design) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto baseline = load_floorplan(args, *design, "floorplan", &error);
  const auto out = args.get("out");
  if (!baseline || !out) {
    std::fprintf(stderr, "%s\n", error.empty() ? "--out is required"
                                               : error.c_str());
    return 1;
  }
  std::string why;
  if (!is_valid(*design, *baseline, &why)) {
    std::fprintf(stderr, "input floorplan invalid: %s\n", why.c_str());
    return 1;
  }
  core::RemapOptions opts;
  const std::string mode = args.get_or("mode", "rotate");
  if (mode == "freeze") opts.mode = core::RemapMode::kFreeze;
  else if (mode == "rotate") opts.mode = core::RemapMode::kRotate;
  else {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 1;
  }
  const auto margin = parse_double_arg(args.get_or("margin", "0.2"));
  if (!margin) {
    std::fprintf(stderr, "invalid --margin '%s'\n",
                 args.get_or("margin", "0.2").c_str());
    return 1;
  }
  opts.path_margin = *margin;
  opts.seed = std::strtoull(args.get_or("seed", "1").c_str(), nullptr, 10);
  opts.verbose = args.has("verbose");
  // Solve strategy, resolved through the one shared table
  // (core/strategy.h): exact rounding modes, the local-search heuristic,
  // or the portfolio race. `--strategy ilp --threads N` forces every
  // attempt through the parallel branch & bound, so the trace shows one
  // lane per worker.
  const std::string strategy = args.get_or("strategy", "dive");
  const core::StrategyInfo* sinfo = core::parse_strategy(strategy);
  if (sinfo == nullptr) {
    std::fprintf(stderr, "unknown --strategy '%s' (%s)\n", strategy.c_str(),
                 core::strategy_cli_values().c_str());
    return 1;
  }
  opts.strategy = sinfo->strategy;
  // Local-search knobs (meaningful for the ls and portfolio strategies).
  if (const auto ls_seed = args.get("ls-seed")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(ls_seed->c_str(), &end, 10);
    if (end == ls_seed->c_str() || *end != '\0') {
      std::fprintf(stderr, "invalid --ls-seed '%s'\n", ls_seed->c_str());
      return 1;
    }
    opts.ls.seed = v;
  }
  if (const auto ls_iters = args.get("ls-iters")) {
    char* end = nullptr;
    const long v = std::strtol(ls_iters->c_str(), &end, 10);
    if (end == ls_iters->c_str() || *end != '\0' || v <= 0) {
      std::fprintf(stderr,
                   "invalid --ls-iters '%s': expected a positive integer\n",
                   ls_iters->c_str());
      return 1;
    }
    opts.ls.max_iters = static_cast<int>(v);
  }
  if (const auto threads = args.get("threads")) {
    // Strict parse: a typo like "-2" or "2x" must fail loudly, not fall
    // back to hardware concurrency through atoi()'s 0-on-garbage.
    char* end = nullptr;
    const long v = std::strtol(threads->c_str(), &end, 10);
    if (end == threads->c_str() || *end != '\0' || v < 0 || v > 4096) {
      std::fprintf(stderr,
                   "invalid --threads '%s': expected an integer in [0, 4096]"
                   " (0 = all hardware threads)\n",
                   threads->c_str());
      return 1;
    }
    opts.solver.mip.num_threads = static_cast<int>(v);
  }
  // Escape hatch for the incremental probe sessions: `--warm-probes off`
  // forces the legacy full-rebuild cold solve per attempt. Results are
  // identical either way; off trades speed for a simpler solve path when
  // triaging a suspect run.
  const std::string warm = args.get_or("warm-probes", "on");
  if (warm == "on") {
    opts.warm_probes = true;
  } else if (warm == "off") {
    opts.warm_probes = false;
  } else {
    std::fprintf(stderr, "unknown --warm-probes '%s' (on|off)\n",
                 warm.c_str());
    return 1;
  }
  // Simplex variant for every LP in the pipeline (probe chains, dives and
  // B&B child re-solves). `auto` runs dual simplex on dual-feasible warm
  // bases and primal otherwise; results are identical across all three,
  // only the iteration/time profile moves.
  const std::string algo = args.get_or("lp-algorithm", "auto");
  milp::LpAlgorithm lp_algorithm;
  if (algo == "primal") {
    lp_algorithm = milp::LpAlgorithm::kPrimal;
  } else if (algo == "dual") {
    lp_algorithm = milp::LpAlgorithm::kDual;
  } else if (algo == "auto") {
    lp_algorithm = milp::LpAlgorithm::kAutoWarm;
  } else {
    std::fprintf(stderr, "unknown --lp-algorithm '%s' (primal|dual|auto)\n",
                 algo.c_str());
    return 1;
  }
  opts.solver.lp.algorithm = lp_algorithm;
  opts.solver.mip.lp.algorithm = lp_algorithm;
  // --log-events: hand the pipeline the process-wide event log; the
  // remapper propagates the pointer down to the ST search, probe sessions
  // and every LP/B&B solve. A disabled log costs nothing here.
  if (obs::EventLog::global().enabled())
    opts.solver.events = &obs::EventLog::global();

  const core::RemapResult result =
      aging_aware_remap(*design, *baseline, opts);
  if (!write_file(*out, to_text(result.floorplan), &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out->c_str());
  if (args.has("verbose")) {
    // The last solve's counters, including which simplex variant ran and
    // how much of the work the dual loop carried.
    std::printf("%s", core::format_solver_stats(result.last_solve).c_str());
  }
  std::printf("strategy: %s", core::to_string(opts.strategy));
  if (result.portfolio_races > 0) {
    std::printf(" | races: %d (exact %d, ls %d, seeded %d)",
                result.portfolio_races, result.portfolio_exact_wins,
                result.portfolio_ls_wins, result.portfolio_seeded);
  }
  if (result.ls_stats.restarts_run > 0) {
    std::printf(" | ls: %ld/%ld moves, %ld oracle calls",
                result.ls_stats.moves_accepted,
                result.ls_stats.moves_examined, result.ls_stats.oracle_calls);
    if (result.ls_stats.start_repairs > 0)
      std::printf(", %ld start repairs", result.ls_stats.start_repairs);
  }
  std::printf("\n");
  std::printf("cpd: %.3f -> %.3f ns | max stress: %.3f -> %.3f | "
              "MTTF: %.2f -> %.2f years (%.2fx)\n",
              result.cpd_before_ns, result.cpd_after_ns, result.st_max_before,
              result.st_max_after, result.mttf_before.mttf_years,
              result.mttf_after.mttf_years, result.mttf_gain);
  std::printf("%s\n", result.note.c_str());
  return result.improved ? 0 : 3;  // 3: valid but no improvement found
}

int cmd_report(const Args& args) {
  std::string error;
  const auto design = load_design(args, &error);
  if (!design) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto fp = load_floorplan(args, *design, "floorplan", &error);
  if (!fp) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string why;
  if (!is_valid(*design, *fp, &why)) {
    std::fprintf(stderr, "floorplan invalid: %s\n", why.c_str());
    return 1;
  }

  auto describe = [&](const Floorplan& plan, const char* label) {
    const auto sta = timing::run_sta(*design, plan);
    const StressMap stress = compute_stress(*design, plan);
    const auto mttf = aging::compute_mttf_combined(*design, plan);
    std::printf("[%s]\n", label);
    std::printf("  cpd          : %.3f ns (clock %.1f ns)\n", sta.cpd_ns,
                design->fabric.clock_period_ns());
    std::printf("  stress max   : %.3f (fabric avg %.3f)\n",
                stress.max_accumulated(), stress.avg_accumulated());
    std::printf("  MTTF         : %.2f years (limited by %s on PE %d)\n",
                mttf.mttf_years, to_string(mttf.limiting_mechanism),
                mttf.limiting_pe);
    std::printf("  per mechanism: NBTI %.2fy | HCI %.2fy | EM %.2fy\n",
                mttf.nbti_mttf_seconds / aging::kSecondsPerYear,
                mttf.hci_mttf_seconds / aging::kSecondsPerYear,
                mttf.em_mttf_seconds / aging::kSecondsPerYear);
    std::printf("  accumulated stress map:\n%s\n",
                render_heat_map(stress.accumulated, design->fabric.rows(),
                                design->fabric.cols())
                    .c_str());
    return mttf.mttf_years;
  };

  const double base_years = describe(*fp, "floorplan");
  if (args.has("compare")) {
    const auto other = load_floorplan(args, *design, "compare", &error);
    if (!other) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (!is_valid(*design, *other, &why)) {
      std::fprintf(stderr, "comparison floorplan invalid: %s\n", why.c_str());
      return 1;
    }
    const double other_years = describe(*other, "compare");
    std::printf("[diff floorplan -> compare]\n%s",
                format_diff(core::diff_floorplans(*design, *fp, *other))
                    .c_str());
    std::printf("MTTF ratio (compare / floorplan): %.2fx\n",
                other_years / base_years);
  }
  return 0;
}

// Shared front half of lint/certify: derive the frozen set (union of
// critical paths per context) and the monitored paths from a reference
// floorplan, exactly as the remapper's Freeze mode does.
struct PipelineView {
  timing::StaResult sta;
  std::vector<char> frozen;
  std::vector<timing::TimingPath> monitored;
};

PipelineView derive_pipeline_view(const Design& design, const Floorplan& ref,
                                  double margin) {
  const timing::CombGraph graph(design);
  PipelineView view;
  view.sta = run_sta(graph, ref);
  view.frozen.assign(static_cast<std::size_t>(design.num_ops()), 0);
  for (int c = 0; c < design.num_contexts; ++c)
    for (const auto& p : timing::critical_paths(graph, ref, c, 8))
      for (const int op : p.ops) view.frozen[static_cast<std::size_t>(op)] = 1;
  timing::PathQuery query;
  query.margin = margin;
  view.monitored = timing::monitored_paths(graph, ref, query);
  return view;
}

// `lint --inputs`: the DL data-model rules over the raw artifacts. Loads
// bypass the acceptance wiring on purpose — the whole point is to *report*
// on dirty inputs, so only outright parse failures stop the run. The stress
// map is derived (and DL015-checked) only once design + floorplan are
// clean, because compute_stress indexes the design freely.
int cmd_lint_inputs(const Args& args) {
  std::string error;
  const auto path = args.get("design");
  if (!path) {
    std::fprintf(stderr, "--design is required\n");
    return 1;
  }
  const auto text = read_file(*path, &error);
  if (!text) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto design = design_from_text(*text, &error);
  if (!design) {
    std::fprintf(stderr, "design parse failed: %s\n", error.c_str());
    return 1;
  }
  std::optional<Floorplan> fp;
  if (args.has("floorplan")) {
    const auto fp_text = read_file(args.get_or("floorplan", ""), &error);
    if (!fp_text) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    fp = floorplan_from_text(*fp_text, &error);
    if (!fp) {
      std::fprintf(stderr, "floorplan parse failed: %s\n", error.c_str());
      return 1;
    }
  }
  verify::InputLintOptions lopts;
  lopts.include_info = !args.has("no-info");
  verify::LintReport report =
      verify::lint_inputs(*design, fp ? &*fp : nullptr, nullptr, lopts);
  if (report.clean() && fp) {
    const StressMap stress = compute_stress(*design, *fp);
    report.merge(verify::lint_stress_map(*design, stress, lopts));
  }
  if (args.has("json")) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s", report.to_text().c_str());
    std::printf("input lint: %d error(s), %d warning(s), %d info\n",
                report.errors, report.warnings, report.infos);
  }
  return report.clean() ? 0 : 1;
}

int cmd_lint(const Args& args) {
  if (args.has("inputs")) return cmd_lint_inputs(args);
  std::string error;
  const auto design = load_design(args, &error);
  if (!design) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto fp = load_floorplan(args, *design, "floorplan", &error);
  if (!fp) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string why;
  if (!is_valid(*design, *fp, &why)) {
    std::fprintf(stderr, "floorplan invalid: %s\n", why.c_str());
    return 1;
  }
  const auto margin = parse_double_arg(args.get_or("margin", "0.2"));
  const auto st_flag = parse_double_arg(args.get_or("st-target", "0"));
  if (!margin || !st_flag) {
    std::fprintf(stderr, "invalid --margin or --st-target value\n");
    return 1;
  }
  const PipelineView view = derive_pipeline_view(*design, *fp, *margin);
  const StressMap stress = compute_stress(*design, *fp);
  const double st_target =
      args.has("st-target") ? *st_flag : stress.max_accumulated();

  core::RemapModelSpec spec;
  spec.design = &*design;
  spec.base = &*fp;
  spec.frozen = view.frozen;
  spec.candidates = core::compute_candidates(*design, *fp, view.frozen,
                                             view.monitored, view.sta.cpd_ns,
                                             {});
  spec.st_target = st_target;
  spec.monitored = &view.monitored;
  spec.cpd_ns = view.sta.cpd_ns;
  const core::RemapModel rm = core::build_remap_model(spec);
  if (rm.trivially_infeasible) {
    std::fprintf(stderr, "model is trivially infeasible before lint: %s\n",
                 rm.infeasible_reason.c_str());
    return 1;
  }

  verify::LintOptions lopts;
  lopts.include_info = !args.has("no-info");
  verify::LintReport report = verify::lint_model(rm.model, lopts);
  report.merge(verify::lint_formulation(rm.model, rm.formulation_spec(),
                                        lopts));
  if (args.has("json")) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s", report.to_text().c_str());
    std::printf("model: %d vars, %d rows (%d binary, %d path rows) at "
                "st_target=%.4f\n",
                rm.model.num_vars(), rm.model.num_constraints(),
                rm.num_binary_vars, rm.num_path_rows, st_target);
    std::printf("lint: %d error(s), %d warning(s), %d info\n", report.errors,
                report.warnings, report.infos);
  }
  return report.clean() ? 0 : 1;
}

int cmd_certify(const Args& args) {
  std::string error;
  const auto design = load_design(args, &error);
  if (!design) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto baseline = load_floorplan(args, *design, "baseline", &error);
  if (!baseline) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const auto fp = load_floorplan(args, *design, "floorplan", &error);
  if (!fp) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string why;
  if (!is_valid(*design, *baseline, &why)) {
    std::fprintf(stderr, "baseline floorplan invalid: %s\n", why.c_str());
    return 1;
  }
  const auto margin = parse_double_arg(args.get_or("margin", "0.2"));
  const auto st_flag = parse_double_arg(args.get_or("st-target", "0"));
  if (!margin || !st_flag) {
    std::fprintf(stderr, "invalid --margin or --st-target value\n");
    return 1;
  }
  // Default matches the remap subcommand's default mode so that
  // `remap` -> `certify` composes without extra flags.
  const std::string mode = args.get_or("mode", "rotate");
  if (mode != "freeze" && mode != "rotate") {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 1;
  }
  const PipelineView view = derive_pipeline_view(*design, *baseline, *margin);
  const StressMap base_stress = compute_stress(*design, *baseline);
  // Default bound: the pipeline's contract that the balance never regresses.
  const double st_target =
      args.has("st-target") ? *st_flag : base_stress.max_accumulated();

  verify::FloorplanSpec spec;
  spec.design = &*design;
  // Rotate mode legally moves the frozen critical paths (as a rigid
  // isometry), so exact positions are only certifiable in Freeze mode; the
  // CPD check below covers both modes.
  if (mode == "freeze") {
    spec.reference = &*baseline;
    spec.frozen = view.frozen;
  }
  spec.st_target = st_target;
  spec.monitored = &view.monitored;
  spec.cpd_ns = view.sta.cpd_ns;
  verify::CertifyOptions copts;
  verify::Certificate cert = verify::certify_floorplan(spec, *fp, copts);
  // The paper's headline guarantee, checked with a full independent STA:
  // no delay degradation relative to the baseline.
  const auto sta_after = timing::run_sta(*design, *fp);
  if (sta_after.cpd_ns > view.sta.cpd_ns + copts.tol_delay_ns) {
    cert.fail(copts, "cpd",
              "CPD " + std::to_string(sta_after.cpd_ns) + " ns exceeds the "
              "baseline's " + std::to_string(view.sta.cpd_ns) + " ns");
  }

  if (args.has("json")) {
    std::printf("%s\n", cert.to_json().c_str());
  } else {
    for (const auto& issue : cert.issues)
      std::printf("FAIL %s: %s\n", issue.check.c_str(),
                  issue.message.c_str());
    std::printf("%s: st_target=%.4f cpd=%.3f->%.3f ns frozen_ops=%d "
                "monitored_paths=%zu\n",
                cert.ok ? "CERTIFIED" : "REJECTED", st_target,
                view.sta.cpd_ns, sta_after.cpd_ns,
                static_cast<int>(std::count(spec.frozen.begin(),
                                            spec.frozen.end(), 1)),
                view.monitored.size());
  }
  return cert.ok ? 0 : 1;
}

int cmd_analyze(const std::string& path, const Args& args) {
  obs::PostmortemReport report;
  std::string error;
  if (!obs::analyze_events_file(path, &report, &error)) {
    std::fprintf(stderr, "analyze: %s\n", error.c_str());
    return 1;
  }
  if (!report.parse_errors.empty()) {
    std::fprintf(stderr,
                 "analyze: skipped %zu malformed line(s) (truncated"
                 " flush?), first at line %ld: %s\n",
                 report.parse_errors.size(), report.parse_errors.front().first,
                 report.parse_errors.front().second.c_str());
  }
  if (args.has("json")) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    std::printf("%s", report.to_text().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage(0);
  if (cmd == "analyze") {
    // Unlike the other commands, analyze takes its input as a positional
    // path: `cgraf_cli analyze events.jsonl [--json]`.
    if (argc >= 3 && std::strcmp(argv[2], "--help") == 0) return usage(0);
    if (argc < 3 || std::strncmp(argv[2], "--", 2) == 0) {
      std::fprintf(stderr, "cgraf_cli: analyze needs an events.jsonl path\n");
      return usage();
    }
    Args aargs(argc, argv, 3);
    if (aargs.has("help")) return usage(0);
    if (aargs.ok) aargs.check_allowed({"json"});
    if (!aargs.ok) {
      std::fprintf(stderr, "cgraf_cli: %s\n", aargs.problem.c_str());
      return usage();
    }
    return cmd_analyze(argv[2], aargs);
  }
  Args args(argc, argv, 2);
  if (args.has("help")) return usage(0);
  if (args.ok) {
    if (cmd == "gen") {
      args.check_allowed(
          {"out", "spec", "contexts", "dim", "usage", "seed", "paper-scale"});
    } else if (cmd == "place") {
      args.check_allowed({"design", "out", "seed"});
    } else if (cmd == "remap") {
      args.check_allowed({"design", "floorplan", "out", "mode", "margin",
                          "seed", "strategy", "ls-seed", "ls-iters",
                          "threads", "warm-probes", "lp-algorithm",
                          "verbose"});
    } else if (cmd == "report") {
      args.check_allowed({"design", "floorplan", "compare"});
    } else if (cmd == "lint") {
      args.check_allowed({"design", "floorplan", "st-target", "margin",
                          "json", "no-info", "inputs"});
    } else if (cmd == "certify") {
      args.check_allowed({"design", "baseline", "floorplan", "st-target",
                          "margin", "mode", "json"});
    } else {
      std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
      return usage();
    }
  }
  if (!args.ok) {
    std::fprintf(stderr, "cgraf_cli: %s\n", args.problem.c_str());
    return usage();
  }

  // Observability: tracing/metrics/events/progress wrap whatever command
  // runs.
  const auto trace_path = args.get("trace");
  const auto metrics_path = args.get("metrics");
  const auto events_path = args.get("log-events");
  if (trace_path) obs::Tracer::global().enable();
  if (events_path) {
    std::string open_error;
    if (!obs::EventLog::global().open(*events_path, &open_error)) {
      std::fprintf(stderr, "failed to open event log: %s\n",
                   open_error.c_str());
      return 1;
    }
  }
  if (args.has("progress"))
    obs::Progress::global().configure(true, /*min_interval_s=*/0.5);
  else if (args.has("verbose"))
    obs::Progress::global().configure(true, /*min_interval_s=*/0.0);

  int code = 2;
  if (cmd == "gen") code = cmd_gen(args);
  else if (cmd == "place") code = cmd_place(args);
  else if (cmd == "remap") code = cmd_remap(args);
  else if (cmd == "report") code = cmd_report(args);
  else if (cmd == "lint") code = cmd_lint(args);
  else if (cmd == "certify") code = cmd_certify(args);

  std::string error;
  if (trace_path) {
    obs::Tracer::global().disable();
    if (!obs::Tracer::global().write_json(*trace_path, &error)) {
      std::fprintf(stderr, "failed to write trace: %s\n", error.c_str());
      if (code == 0) code = 1;
    } else {
      std::fprintf(stderr, "trace: %s (%zu events)\n", trace_path->c_str(),
                   obs::Tracer::global().num_events());
    }
  }
  if (metrics_path) {
    // Fold the sync layer's per-mutex contention counters into the dump.
    obs::export_sync_metrics();
    if (!write_file(*metrics_path, obs::Metrics::global().to_json() + "\n",
                    &error)) {
      std::fprintf(stderr, "failed to write metrics: %s\n", error.c_str());
      if (code == 0) code = 1;
    } else {
      std::fprintf(stderr, "metrics: %s\n", metrics_path->c_str());
    }
  }
  if (events_path) {
    obs::EventLog::global().close();
    std::fprintf(stderr, "events: %s\n", events_path->c_str());
  }
  return code;
}
