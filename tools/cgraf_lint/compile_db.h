// compile_commands.json loader for cgraf_lint.
//
// The build exports the database unconditionally (top-level CMakeLists sets
// CMAKE_EXPORT_COMPILE_COMMANDS), so the tool can enumerate exactly the TUs
// the build compiles — with their real include paths and defines — instead
// of guessing. Parsed with obs::parse_json; both the "arguments" array and
// the legacy "command" string forms are accepted.
#pragma once

#include <string>
#include <vector>

namespace cgraf::lint {

struct CompileCommand {
  std::string file;       // absolute path to the TU
  std::string directory;  // working directory the args are relative to
  std::vector<std::string> args;  // compiler argv, including argv[0]
};

// Loads `path` into *out. Returns false with a human-readable *error on IO
// or JSON failure. Entries without a usable "file" member are skipped.
bool load_compile_db(const std::string& path,
                     std::vector<CompileCommand>* out, std::string* error);

}  // namespace cgraf::lint
