// Token-level C++ frontend for cgraf_lint.
//
// Deliberately not a parser: the CL rules need token patterns, a class-scope
// sketch and comment text, all of which a lexer provides without dragging in
// a compiler. When the build finds libclang (clang-c/Index.h), the AST
// frontend (clang_ast.h) refines the type-sensitive rules on top of this.
//
// Handles: // and /* */ comments (captured for suppression parsing), string
// and character literals with escapes, raw strings R"delim(...)delim",
// digit-separated and hex/exponent numeric literals, preprocessor lines
// (lexed as ordinary tokens so macro bodies are still scanned), and maximal-
// munch punctuation so `==` / `<=` / `->` arrive as single tokens.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cgraf::lint {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
  int col = 1;
  // Numeric-literal classification (kNumber only): floating if the literal
  // has a fraction, a decimal exponent, or an f/F suffix. `value` is the
  // parsed magnitude (0.0 for hex/binary integers; only consulted for
  // floats, where "is it zero" decides the CL003 exemption).
  bool is_float = false;
  double value = 0.0;
};

struct Comment {
  int line = 1;      // line the comment starts on
  int end_line = 1;  // last line (block comments can span several)
  bool own_line = false;  // nothing but whitespace before it on its line
  std::string text;       // body without the // or /* */ markers
};

struct LexedFile {
  std::string path;  // as given; used for rule scoping and messages
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

LexedFile lex_file(std::string path, std::string_view text);

}  // namespace cgraf::lint
