// Optional libclang (clang-c/Index.h) frontend for cgraf_lint.
//
// Compiled only when the build finds the libclang C API headers + library
// (CGRAF_LINT_HAVE_LIBCLANG); otherwise every entry point degrades to a
// stub so the token engine still runs everywhere, including containers
// without clang. The AST pass refines exactly one rule today: CL003, where
// real operand types beat the lexical literal heuristic — `x == y` between
// two doubles fires even though no float literal appears.
//
// Findings come back as RawFinding extras, so lint_sources applies the same
// suppression handling; TUs the pass analyzed are reported so the lexical
// CL003 variant can skip them (no doubled findings).
#pragma once

#include <string>
#include <vector>

#include "code_lint.h"
#include "compile_db.h"

namespace cgraf::lint {

// True when the libclang frontend was compiled in.
bool clang_ast_available();

// Parses `cc` as a TU and appends type-accurate CL003 findings for code in
// the TU's main file. Returns false (with *error set) when the TU fails to
// parse; the caller then falls back to the lexical rule for that file.
// Always returns false in the stub build.
bool clang_cl003(const CompileCommand& cc, std::vector<RawFinding>* out,
                 std::string* error);

}  // namespace cgraf::lint
