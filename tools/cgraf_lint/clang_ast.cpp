#include "clang_ast.h"

#ifdef CGRAF_LINT_HAVE_LIBCLANG

#include <clang-c/Index.h>

#include <cmath>
#include <cstring>

namespace cgraf::lint {

namespace {

std::string cx_to_string(CXString s) {
  const char* c = clang_getCString(s);
  std::string out = c != nullptr ? c : "";
  clang_disposeString(s);
  return out;
}

bool cl003_scope(const std::string& path) {
  return in_dir(path, "src/milp") || in_dir(path, "src/aging") ||
         in_dir(path, "src/thermal") || in_dir(path, "src/timing") ||
         in_dir(path, "src/verify");
}

bool is_float_type(CXType t) {
  const CXTypeKind k = clang_getCanonicalType(t).kind;
  return k == CXType_Float || k == CXType_Double || k == CXType_LongDouble;
}

// Exact-zero and infinity sentinels keep the lexical rule's exemptions:
// `x == 0.0` is a sparsity contract, `lb == -kInf` a bound sentinel.
bool is_exempt_operand(CXCursor c) {
  CXEvalResult ev = clang_Cursor_Evaluate(c);
  if (ev == nullptr) return false;
  bool exempt = false;
  if (clang_EvalResult_getKind(ev) == CXEval_Float) {
    const double v = clang_EvalResult_getAsDouble(ev);
    exempt = v == 0.0 || std::isinf(v);
  }
  clang_EvalResult_dispose(ev);
  return exempt;
}

struct Visit {
  CXTranslationUnit tu;
  std::vector<RawFinding>* out;
};

struct Children {
  CXCursor c[2];
  int n = 0;
};

CXChildVisitResult collect_children(CXCursor c, CXCursor, CXClientData d) {
  auto* ch = static_cast<Children*>(d);
  if (ch->n < 2) ch->c[ch->n] = c;
  ch->n++;
  return CXChildVisit_Continue;
}

// Spelling of the operator between the two operand extents ("==", "!=", or
// "" when neither). libclang 14 has no clang_getCursorBinaryOperatorKind,
// so the token between the children is the portable answer.
std::string operator_between(CXTranslationUnit tu, CXCursor parent,
                             CXCursor lhs, CXCursor rhs) {
  unsigned lhs_end = 0, rhs_start = 0;
  clang_getSpellingLocation(
      clang_getRangeEnd(clang_getCursorExtent(lhs)), nullptr, nullptr,
      nullptr, &lhs_end);
  clang_getSpellingLocation(
      clang_getRangeStart(clang_getCursorExtent(rhs)), nullptr, nullptr,
      nullptr, &rhs_start);

  CXToken* tokens = nullptr;
  unsigned count = 0;
  clang_tokenize(tu, clang_getCursorExtent(parent), &tokens, &count);
  std::string op;
  for (unsigned i = 0; i < count; ++i) {
    unsigned off = 0;
    clang_getSpellingLocation(clang_getTokenLocation(tu, tokens[i]), nullptr,
                              nullptr, nullptr, &off);
    if (off < lhs_end || off >= rhs_start) continue;
    const std::string sp = cx_to_string(clang_getTokenSpelling(tu, tokens[i]));
    if (sp == "==" || sp == "!=") {
      op = sp;
      break;
    }
  }
  clang_disposeTokens(tu, tokens, count);
  return op;
}

CXChildVisitResult visit(CXCursor c, CXCursor, CXClientData data) {
  auto* v = static_cast<Visit*>(data);
  if (clang_getCursorKind(c) == CXCursor_BinaryOperator) {
    const CXSourceLocation loc =
        clang_getRangeStart(clang_getCursorExtent(c));
    if (clang_Location_isFromMainFile(loc) != 0) {
      Children ch;
      clang_visitChildren(c, collect_children, &ch);
      if (ch.n == 2 && (is_float_type(clang_getCursorType(ch.c[0])) ||
                        is_float_type(clang_getCursorType(ch.c[1])))) {
        const std::string op = operator_between(v->tu, c, ch.c[0], ch.c[1]);
        if (!op.empty() && !is_exempt_operand(ch.c[0]) &&
            !is_exempt_operand(ch.c[1])) {
          CXFile file;
          unsigned line = 0;
          clang_getSpellingLocation(loc, &file, &line, nullptr, nullptr);
          v->out->push_back(RawFinding{
              "CL003", cx_to_string(clang_getFileName(file)),
              static_cast<int>(line),
              "floating-point " + op +
                  " (typed operands, AST frontend); use util/float_cmp.h "
                  "(approx_eq / exact_eq with a comment)"});
        }
      }
    }
  }
  return CXChildVisit_Recurse;
}

}  // namespace

bool clang_ast_available() { return true; }

bool clang_cl003(const CompileCommand& cc, std::vector<RawFinding>* out,
                 std::string* error) {
  if (!cl003_scope(cc.file)) return true;  // nothing to refine in this TU

  std::vector<const char*> argv;
  for (std::size_t i = 1; i < cc.args.size(); ++i) {  // drop compiler argv[0]
    const std::string& a = cc.args[i];
    if (a == "-c" || a == cc.file) continue;
    if (a == "-o") {
      ++i;
      continue;
    }
    argv.push_back(a.c_str());
  }

  CXIndex index = clang_createIndex(/*excludeDeclsFromPCH=*/0,
                                    /*displayDiagnostics=*/0);
  CXTranslationUnit tu = nullptr;
  const CXErrorCode rc = clang_parseTranslationUnit2(
      index, cc.file.c_str(), argv.data(), static_cast<int>(argv.size()),
      nullptr, 0, CXTranslationUnit_None, &tu);
  if (rc != CXError_Success || tu == nullptr) {
    *error = cc.file + ": libclang parse failed (code " +
             std::to_string(static_cast<int>(rc)) + ")";
    clang_disposeIndex(index);
    return false;
  }

  Visit v{tu, out};
  clang_visitChildren(clang_getTranslationUnitCursor(tu), visit, &v);
  clang_disposeTranslationUnit(tu);
  clang_disposeIndex(index);
  return true;
}

}  // namespace cgraf::lint

#else  // !CGRAF_LINT_HAVE_LIBCLANG

namespace cgraf::lint {

bool clang_ast_available() { return false; }

bool clang_cl003(const CompileCommand&, std::vector<RawFinding>*,
                 std::string* error) {
  *error = "libclang frontend not compiled in";
  return false;
}

}  // namespace cgraf::lint

#endif  // CGRAF_LINT_HAVE_LIBCLANG
