#include "code_lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "lexer.h"
#include "verify/code_rules.h"

namespace cgraf::lint {

namespace {

using verify::Severity;

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

std::string loc(const std::string& path, int line) {
  return path + ":" + std::to_string(line);
}

}  // namespace

bool in_dir(const std::string& path, const std::string& dir) {
  const std::string needle = dir.back() == '/' ? dir : dir + "/";
  const std::size_t pos = path.find(needle);
  if (pos == std::string::npos) return false;
  return pos == 0 || path[pos - 1] == '/';
}

namespace {

bool path_ends_with(const std::string& path, std::string_view tail) {
  if (path.size() < tail.size()) return false;
  if (path.compare(path.size() - tail.size(), tail.size(), tail) != 0)
    return false;
  return path.size() == tail.size() ||
         path[path.size() - tail.size() - 1] == '/';
}

// Stem for .h/.cpp sibling lookup: path without its extension.
std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

// ---- suppressions --------------------------------------------------------

struct Suppression {
  std::string rule;
  std::string reason;
  bool has_reason = false;
  int line = 0;      // first line the suppression covers
  int end_line = 0;  // last covered line (own-line comments cover +1 more)
  bool own_line = false;
  int comment_line = 0;  // where the comment itself lives (for CL010)
  bool used = false;
};

std::vector<Suppression> parse_suppressions(const LexedFile& f) {
  std::vector<Suppression> out;
  constexpr std::string_view kMarker = "CGRAF_LINT_ALLOW";
  for (const Comment& c : f.comments) {
    std::size_t pos = 0;
    while ((pos = c.text.find(kMarker, pos)) != std::string::npos) {
      pos += kMarker.size();
      Suppression s;
      s.comment_line = c.line;
      s.line = c.line;
      s.end_line = c.end_line;
      s.own_line = c.own_line;
      std::size_t i = pos;
      while (i < c.text.size() &&
             std::isspace(static_cast<unsigned char>(c.text[i]))) {
        ++i;
      }
      // Prose mentions of the marker (docs, this file) have no '(' after
      // it; only a parenthesized form is a suppression attempt.
      if (i >= c.text.size() || c.text[i] != '(') continue;
      ++i;
      while (i < c.text.size() && c.text[i] != ')') s.rule += c.text[i++];
      while (!s.rule.empty() && s.rule.back() == ' ') s.rule.pop_back();
      std::size_t b = 0;
      while (b < s.rule.size() && s.rule[b] == ' ') ++b;
      s.rule = s.rule.substr(b);
      if (s.rule == "CLxxx") continue;  // documentation placeholder
      if (i < c.text.size()) ++i;  // ')'
      while (i < c.text.size() &&
             std::isspace(static_cast<unsigned char>(c.text[i]))) {
        ++i;
      }
      if (i < c.text.size() && c.text[i] == ':') {
        ++i;
        std::string reason = c.text.substr(i);
        const std::size_t first = reason.find_first_not_of(" \t");
        s.has_reason = first != std::string::npos;
        if (s.has_reason) s.reason = reason.substr(first);
      }
      out.push_back(std::move(s));
    }
  }
  return out;
}

bool suppression_covers(const Suppression& s, int line) {
  if (line >= s.line && line <= s.end_line) return true;
  return s.own_line && line == s.end_line + 1;
}

// ---- structural sketch (class scopes, fields, mutex members) -------------

struct FieldDecl {
  std::string name;
  int line = 0;
};

struct StructDecl {
  std::string name;
  int line = 0;
  std::vector<FieldDecl> fields;
  // Union of idents inside in-class operator+= / add(const S&) bodies.
  std::set<std::string> sum_idents;
  bool has_sum_fn = false;
};

struct MutexMember {
  std::string name;
  int line = 0;
};

struct FileStructure {
  std::vector<StructDecl> structs;  // only the stats_structs we track
  std::vector<MutexMember> mutexes;
};

// Idents that disqualify a class-scope statement from being a data member.
bool is_member_skip_ident(const std::string& s) {
  return s == "static" || s == "using" || s == "typedef" ||
         s == "friend" || s == "template" || s == "operator" ||
         s == "explicit" || s == "virtual" || s == "constexpr";
}

const std::set<std::string>& annotation_macros() {
  static const std::set<std::string> kMacros = {
      "CGRAF_GUARDED_BY",  "CGRAF_PT_GUARDED_BY", "CGRAF_ACQUIRE",
      "CGRAF_RELEASE",     "CGRAF_REQUIRES",      "CGRAF_EXCLUDES",
      "CGRAF_TRY_ACQUIRE", "CGRAF_RETURN_CAPABILITY",
  };
  return kMacros;
}

// Copies span [b, e) dropping annotation-macro calls (ident + balanced
// parens), so `int x CGRAF_GUARDED_BY(mu) = 0;` parses like `int x = 0;`.
std::vector<Token> strip_annotations(const std::vector<Token>& T,
                                     std::size_t b, std::size_t e) {
  std::vector<Token> out;
  for (std::size_t i = b; i < e; ++i) {
    if (T[i].kind == TokKind::kIdent &&
        annotation_macros().count(T[i].text) != 0 && i + 1 < e &&
        is_punct(T[i + 1], "(")) {
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < e; ++j) {
        if (is_punct(T[j], "(")) ++depth;
        if (is_punct(T[j], ")") && --depth == 0) break;
      }
      i = j;
      continue;
    }
    out.push_back(T[i]);
  }
  return out;
}

// Extracts the declared name from a member-statement token span, or "" when
// the span is not a data-member declaration.
std::string member_field_name(const std::vector<Token>& span) {
  if (span.empty()) return "";
  std::size_t b = 0;
  // Leading access specifier: "public : double x"
  if (b + 1 < span.size() &&
      (is_ident(span[b], "public") || is_ident(span[b], "private") ||
       is_ident(span[b], "protected")) &&
      is_punct(span[b + 1], ":")) {
    b += 2;
  }
  std::string name;
  for (std::size_t i = b; i < span.size(); ++i) {
    const Token& t = span[i];
    if (t.kind == TokKind::kIdent && is_member_skip_ident(t.text)) return "";
    if (is_punct(t, "(") || is_punct(t, "{")) return "";
    if (is_punct(t, "=") || is_punct(t, ":")) break;
    if (t.kind == TokKind::kIdent) name = t.text;
  }
  return name;
}

// True when the span declares a (non-pointer) cgraf Mutex member; sets
// *name to the member identifier.
bool mutex_member_name(const std::vector<Token>& span, std::string* name) {
  for (std::size_t i = 0; i + 1 < span.size(); ++i) {
    if (!is_ident(span[i], "Mutex")) continue;
    const Token& next = span[i + 1];
    if (next.kind != TokKind::kIdent) return false;  // Mutex* / Mutex& / ...
    *name = next.text;
    return true;
  }
  return false;
}

// Struct/class name from a heading span: first plain ident after the class
// keyword, skipping attribute-macro calls like CGRAF_CAPABILITY("mutex").
std::string class_name_from_span(const std::vector<Token>& T, std::size_t b,
                                 std::size_t e) {
  std::size_t k = b;
  while (k < e && !(T[k].kind == TokKind::kIdent &&
                    (T[k].text == "class" || T[k].text == "struct" ||
                     T[k].text == "union"))) {
    ++k;
  }
  for (std::size_t i = k + 1; i < e; ++i) {
    if (is_punct(T[i], ":")) break;
    if (T[i].kind != TokKind::kIdent) continue;
    if (T[i].text == "final" || T[i].text == "alignas") continue;
    if (i + 1 < e && is_punct(T[i + 1], "(")) {  // macro call: skip args
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < e; ++j) {
        if (is_punct(T[j], "(")) ++depth;
        if (is_punct(T[j], ")") && --depth == 0) break;
      }
      i = j;
      continue;
    }
    return T[i].text;
  }
  return "";
}

// Collects idents within the balanced {...} starting at open_brace.
std::set<std::string> body_idents(const std::vector<Token>& T,
                                  std::size_t open_brace) {
  std::set<std::string> out;
  int depth = 0;
  for (std::size_t i = open_brace; i < T.size(); ++i) {
    if (is_punct(T[i], "{")) ++depth;
    if (is_punct(T[i], "}") && --depth == 0) break;
    if (T[i].kind == TokKind::kIdent) out.insert(T[i].text);
  }
  return out;
}

FileStructure analyze_structure(const LexedFile& f,
                                const std::vector<std::string>& stats) {
  FileStructure out;
  const std::vector<Token>& T = f.tokens;

  enum class Kind { kOther, kClass, kEnum, kInit };
  struct Scope {
    Kind kind = Kind::kOther;
    int struct_idx = -1;  // into out.structs when a tracked stats struct
  };
  std::vector<Scope> stack;
  std::size_t stmt_start = 0;

  auto in_class = [&]() {
    return !stack.empty() && stack.back().kind == Kind::kClass;
  };

  auto record_member = [&](std::size_t b, std::size_t e) {
    const std::vector<Token> span = strip_annotations(T, b, e);
    std::string mu;
    if (mutex_member_name(span, &mu)) {
      out.mutexes.push_back(MutexMember{mu, span.empty() ? 0 : span[0].line});
      return;
    }
    const int idx = stack.back().struct_idx;
    if (idx < 0) return;
    const std::string name = member_field_name(span);
    if (name.empty()) return;
    out.structs[static_cast<std::size_t>(idx)].fields.push_back(
        FieldDecl{name, span[0].line});
  };

  for (std::size_t i = 0; i < T.size(); ++i) {
    const Token& t = T[i];
    if (is_punct(t, "{")) {
      const std::size_t b = stmt_start;
      const std::size_t e = i;
      bool has_class = false, has_enum = false, has_paren = false,
           has_eq = false;
      for (std::size_t k = b; k < e; ++k) {
        if (T[k].kind == TokKind::kIdent) {
          if (T[k].text == "class" || T[k].text == "struct" ||
              T[k].text == "union") {
            has_class = true;
          }
          if (T[k].text == "enum") has_enum = true;
        }
        if (is_punct(T[k], "(")) has_paren = true;
        if (is_punct(T[k], "=")) has_eq = true;
      }
      Scope s;
      if (has_enum) {
        s.kind = Kind::kEnum;
      } else if (has_class) {
        s.kind = Kind::kClass;
        const std::string name = class_name_from_span(T, b, e);
        bool tracked =
            std::find(stats.begin(), stats.end(), name) != stats.end();
        if (tracked) {
          out.structs.push_back(StructDecl{name, t.line, {}, {}, false});
          s.struct_idx = static_cast<int>(out.structs.size()) - 1;
        }
      } else if (in_class() && (has_eq || (!has_paren && e > b))) {
        // Member with a brace initializer: `Mutex mu_{...};` or
        // `int a[2] = {...};`. Record the member, skip the init list.
        record_member(b, e);
        s.kind = Kind::kInit;
      } else {
        s.kind = Kind::kOther;
        // In-class operator+= / add(const S&) body: capture its idents for
        // the CL007 aggregation check before descending past it.
        if (in_class() && stack.back().struct_idx >= 0) {
          bool is_sum = false;
          for (std::size_t k = b; k + 1 < e; ++k) {
            if (is_ident(T[k], "operator") && is_punct(T[k + 1], "+=")) {
              is_sum = true;
            }
            if (is_ident(T[k], "add") && is_punct(T[k + 1], "(")) {
              is_sum = true;
            }
          }
          if (is_sum) {
            StructDecl& sd = out.structs[static_cast<std::size_t>(
                stack.back().struct_idx)];
            const std::set<std::string> ids = body_idents(T, i);
            sd.sum_idents.insert(ids.begin(), ids.end());
            sd.has_sum_fn = true;
          }
        }
      }
      stack.push_back(s);
      stmt_start = i + 1;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!stack.empty()) stack.pop_back();
      stmt_start = i + 1;
      continue;
    }
    if (is_punct(t, ";")) {
      if (in_class() && i > stmt_start) record_member(stmt_start, i);
      stmt_start = i + 1;
      continue;
    }
  }
  return out;
}

// ---- per-file token rules ------------------------------------------------

struct Corpus {
  std::vector<SourceFile> files;
  std::vector<LexedFile> lexed;
  std::vector<FileStructure> structure;
  std::vector<std::vector<Suppression>> sups;
  std::map<std::string, std::vector<std::size_t>> by_stem;
};

void rule_cl001(const LexedFile& f, std::vector<RawFinding>* out) {
  if (path_ends_with(f.path, "util/sync.h") ||
      path_ends_with(f.path, "util/sync.cpp")) {
    return;
  }
  static const std::set<std::string> kBanned = {
      "mutex",          "timed_mutex",
      "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "condition_variable", "condition_variable_any",
      "atomic_flag",
  };
  const auto& T = f.tokens;
  for (std::size_t i = 0; i + 2 < T.size(); ++i) {
    if (!is_ident(T[i], "std") || !is_punct(T[i + 1], "::")) continue;
    const Token& name = T[i + 2];
    if (name.kind != TokKind::kIdent || kBanned.count(name.text) == 0)
      continue;
    out->push_back(RawFinding{
        "CL001", f.path, T[i].line,
        "raw std::" + name.text +
            " outside src/util/sync.*; use the annotated cgraf::Mutex / "
            "MutexLock / CondVar layer"});
  }
}

void rule_cl002(const Corpus& c, std::size_t fi,
                std::vector<RawFinding>* out) {
  const LexedFile& f = c.lexed[fi];
  const FileStructure& fs = c.structure[fi];
  if (fs.mutexes.empty()) return;

  auto has_guarded_by = [&](const std::string& name) {
    const auto& T = f.tokens;
    for (std::size_t i = 0; i + 3 < T.size(); ++i) {
      if (T[i].kind != TokKind::kIdent) continue;
      if (T[i].text != "CGRAF_GUARDED_BY" &&
          T[i].text != "CGRAF_PT_GUARDED_BY") {
        continue;
      }
      if (is_punct(T[i + 1], "(") && is_ident(T[i + 2], name) &&
          is_punct(T[i + 3], ")")) {
        return true;
      }
    }
    return false;
  };

  // `name` constructed with a lock_rank:: constant in file `li`: the member
  // ident followed by a balanced (…) or {…} argument list naming lock_rank.
  auto has_rank_in = [&](std::size_t li, const std::string& name) {
    const auto& T = c.lexed[li].tokens;
    for (std::size_t i = 0; i + 1 < T.size(); ++i) {
      if (!is_ident(T[i], name)) continue;
      const bool paren = is_punct(T[i + 1], "(");
      const bool brace = is_punct(T[i + 1], "{");
      if (!paren && !brace) continue;
      const std::string open = paren ? "(" : "{";
      const std::string close = paren ? ")" : "}";
      int depth = 0;
      for (std::size_t j = i + 1; j < T.size(); ++j) {
        if (is_punct(T[j], open)) ++depth;
        if (is_punct(T[j], close) && --depth == 0) break;
        if (is_ident(T[j], "lock_rank")) return true;
      }
    }
    return false;
  };

  for (const MutexMember& m : fs.mutexes) {
    if (!has_guarded_by(m.name)) {
      out->push_back(RawFinding{
          "CL002", f.path, m.line,
          "Mutex member '" + m.name +
              "' guards no data: no CGRAF_GUARDED_BY(" + m.name +
              ") / CGRAF_PT_GUARDED_BY(" + m.name + ") in this file"});
    }
    bool has_rank = has_rank_in(fi, m.name);
    if (!has_rank) {
      const auto it = c.by_stem.find(stem_of(f.path));
      if (it != c.by_stem.end()) {
        for (std::size_t li : it->second) {
          if (li != fi && has_rank_in(li, m.name)) has_rank = true;
        }
      }
    }
    if (!has_rank) {
      out->push_back(RawFinding{
          "CL002", f.path, m.line,
          "Mutex member '" + m.name +
              "' is not registered in the lock hierarchy: no lock_rank:: "
              "constant in its constructor arguments (here or in the "
              "sibling .h/.cpp)"});
    }
  }
}

bool cl003_in_scope(const std::string& path) {
  return in_dir(path, "src/milp") || in_dir(path, "src/aging") ||
         in_dir(path, "src/thermal") || in_dir(path, "src/timing") ||
         in_dir(path, "src/verify");
}

void rule_cl003(const LexedFile& f, std::vector<RawFinding>* out) {
  if (!cl003_in_scope(f.path)) return;
  const auto& T = f.tokens;
  for (std::size_t i = 1; i + 1 < T.size(); ++i) {
    if (!is_punct(T[i], "==") && !is_punct(T[i], "!=")) continue;
    const Token* lit = nullptr;
    if (T[i - 1].kind == TokKind::kNumber && T[i - 1].is_float) {
      lit = &T[i - 1];
    } else {
      std::size_t j = i + 1;
      if (j < T.size() && (is_punct(T[j], "-") || is_punct(T[j], "+"))) ++j;
      if (j < T.size() && T[j].kind == TokKind::kNumber && T[j].is_float) {
        lit = &T[j];
      }
    }
    if (lit == nullptr) continue;
    if (lit->value == 0.0) continue;  // exact-zero contract is sanctioned
    out->push_back(RawFinding{
        "CL003", f.path, T[i].line,
        "floating-point " + T[i].text + " against literal " + lit->text +
            "; use util/float_cmp.h (approx_eq / exact_eq with a comment)"});
  }
}

void rule_cl004(const LexedFile& f, std::vector<RawFinding>* out) {
  if (!in_dir(f.path, "src") || in_dir(f.path, "src/obs")) return;
  const auto& T = f.tokens;
  for (std::size_t i = 0; i < T.size(); ++i) {
    if (T[i].kind != TokKind::kIdent) continue;
    const std::string& s = T[i].text;
    const bool call = i + 1 < T.size() && is_punct(T[i + 1], "(");
    if ((s == "printf" || s == "puts" || s == "putchar") && call) {
      out->push_back(RawFinding{
          "CL004", f.path, T[i].line,
          s + "() writes to stdout from library code; route through "
              "obs/report (stderr diagnostics via fprintf(stderr, ...) are "
              "fine)"});
      continue;
    }
    if ((s == "fprintf" || s == "vfprintf") && call && i + 2 < T.size() &&
        is_ident(T[i + 2], "stdout")) {
      out->push_back(RawFinding{
          "CL004", f.path, T[i].line,
          s + "(stdout, ...) in library code; route through obs/report"});
      continue;
    }
    if (s == "cout" && i >= 2 && is_ident(T[i - 2], "std") &&
        is_punct(T[i - 1], "::")) {
      out->push_back(RawFinding{
          "CL004", f.path, T[i].line,
          "std::cout in library code; route through obs/report"});
    }
  }
}

void rule_cl005(const LexedFile& f, std::vector<RawFinding>* out) {
  if (in_dir(f.path, "src/obs")) return;  // the layer that owns the pointers
  static const std::set<std::string> kOptional = {"events", "tracer",
                                                  "metrics", "progress"};
  const auto& T = f.tokens;

  // Token texts concatenated (no spaces) for windowed guard matching.
  auto window_text = [&](std::size_t b, std::size_t e) {
    std::string s;
    for (std::size_t k = b; k < e; ++k) {
      s += T[k].kind == TokKind::kString ? std::string("\"\"") : T[k].text;
    }
    return s;
  };

  for (std::size_t i = 0; i + 1 < T.size(); ++i) {
    if (T[i].kind != TokKind::kIdent || kOptional.count(T[i].text) == 0)
      continue;
    if (!is_punct(T[i + 1], "->")) continue;

    // Full postfix chain: walk back over `a.b->c::` links.
    std::size_t start = i;
    while (start >= 2 && T[start - 1].kind == TokKind::kPunct &&
           (T[start - 1].text == "." || T[start - 1].text == "->" ||
            T[start - 1].text == "::") &&
           T[start - 2].kind == TokKind::kIdent) {
      start -= 2;
    }
    std::string chain;
    for (std::size_t k = start; k <= i; ++k) chain += T[k].text;

    // Guard window: back to (roughly) the start of the enclosing function —
    // two unmatched opening braces up — capped at 500 tokens.
    std::size_t wb = start;
    int depth = 0;
    for (std::size_t back = 0; wb > 0 && back < 500; ++back) {
      const Token& p = T[wb - 1];
      if (is_punct(p, "}")) ++depth;
      if (is_punct(p, "{")) {
        --depth;
        if (depth < -1) break;
      }
      --wb;
    }
    const std::string w = window_text(wb, start);

    auto guarded = [&]() {
      const std::string pats[] = {
          "if(" + chain,      "while(" + chain,    "!" + chain,
          chain + "!=nullptr", chain + "==nullptr", chain + "&&",
          "&&" + chain,        chain + "?",         "CGRAF_ASSERT(" + chain,
          "CGRAF_CHECK(" + chain,
      };
      for (const std::string& p : pats) {
        std::size_t pos = 0;
        while ((pos = w.find(p, pos)) != std::string::npos) {
          const char before = pos == 0 ? '\0' : w[pos - 1];
          const bool head_is_ident =
              std::isalnum(static_cast<unsigned char>(p[0])) || p[0] == '_';
          if (!head_is_ident ||
              (!std::isalnum(static_cast<unsigned char>(before)) &&
               before != '_' && before != '.' && before != '>')) {
            return true;
          }
          ++pos;
        }
      }
      return false;
    };
    if (guarded()) continue;
    out->push_back(RawFinding{
        "CL005", f.path, T[i].line,
        "'" + chain +
            "->' dereferences an optional observability pointer with no "
            "null guard in the enclosing scope; guard it or go through the "
            "null-safe obs::Event builder"});
  }
}

void rule_cl006(const LexedFile& f, std::vector<RawFinding>* out) {
  static const std::set<std::string> kBanned = {"atoi", "atol", "atoll",
                                                "atof", "strtok"};
  const auto& T = f.tokens;
  for (std::size_t i = 0; i + 1 < T.size(); ++i) {
    if (T[i].kind != TokKind::kIdent || kBanned.count(T[i].text) == 0)
      continue;
    if (!is_punct(T[i + 1], "(")) continue;
    out->push_back(RawFinding{
        "CL006", f.path, T[i].line,
        T[i].text +
            "() parses without error detection; use strtol/strtod with "
            "endptr + range checks (see cgraf_cli's strict parsers)"});
  }
}

// CL007/CL008 need the struct's fields plus corpus-wide lookups.
void rules_cl007_cl008(const Corpus& c, std::vector<RawFinding>* out,
                       bool run7, bool run8) {
  // JSON-emission sites: any file mentioning JsonWriter (excluding the
  // writer's own implementation).
  std::vector<std::size_t> json_sites;
  for (std::size_t i = 0; i < c.lexed.size(); ++i) {
    if (path_ends_with(c.files[i].path, "obs/json_writer.h") ||
        path_ends_with(c.files[i].path, "obs/json_writer.cpp")) {
      continue;
    }
    for (const Token& t : c.lexed[i].tokens) {
      if (is_ident(t, "JsonWriter")) {
        json_sites.push_back(i);
        break;
      }
    }
  }

  auto member_access_in = [&](std::size_t fi, const std::string& field) {
    const auto& T = c.lexed[fi].tokens;
    for (std::size_t i = 1; i < T.size(); ++i) {
      if (!is_ident(T[i], field)) continue;
      if (is_punct(T[i - 1], ".") || is_punct(T[i - 1], "->")) return true;
    }
    return false;
  };

  for (std::size_t fi = 0; fi < c.structure.size(); ++fi) {
    for (const StructDecl& sd : c.structure[fi].structs) {
      if (sd.fields.empty()) continue;

      // Out-of-line `S::operator+=` / `S::add` bodies anywhere in the
      // corpus join the in-class ones.
      std::set<std::string> sum = sd.sum_idents;
      bool has_sum = sd.has_sum_fn;
      for (std::size_t li = 0; li < c.lexed.size(); ++li) {
        const auto& T = c.lexed[li].tokens;
        for (std::size_t i = 0; i + 3 < T.size(); ++i) {
          if (!is_ident(T[i], sd.name) || !is_punct(T[i + 1], "::")) continue;
          const bool op = is_ident(T[i + 2], "operator") &&
                          is_punct(T[i + 3], "+=");
          const bool add = is_ident(T[i + 2], "add");
          if (!op && !add) continue;
          std::size_t j = i + 2;
          while (j < T.size() && !is_punct(T[j], "{") && !is_punct(T[j], ";"))
            ++j;
          if (j >= T.size() || !is_punct(T[j], "{")) continue;
          const std::set<std::string> ids = body_idents(c.lexed[li].tokens, j);
          sum.insert(ids.begin(), ids.end());
          has_sum = true;
        }
      }

      if (run7 && has_sum) {
        for (const FieldDecl& fd : sd.fields) {
          if (sum.count(fd.name) != 0) continue;
          out->push_back(RawFinding{
              "CL007", c.files[fi].path, fd.line,
              sd.name + "::" + fd.name +
                  " is never touched by operator+=/add(); the counter "
                  "silently drops on aggregation"});
        }
      }

      if (run8 && !json_sites.empty()) {
        for (const FieldDecl& fd : sd.fields) {
          bool emitted = false;
          for (std::size_t si : json_sites) {
            if (member_access_in(si, fd.name)) {
              emitted = true;
              break;
            }
          }
          if (!emitted) {
            out->push_back(RawFinding{
                "CL008", c.files[fi].path, fd.line,
                sd.name + "::" + fd.name +
                    " never reaches a JSON-emission site (no member access "
                    "in any JsonWriter-using file); wire it into the "
                    "report/bench emitters"});
          }
        }
      }
    }
  }
}

// CL011: ad-hoc strategy-name string comparisons outside the one table
// (core/strategy.*). A single name in a comparison can be legitimate (an
// event-vocabulary check, a test expectation); two or more distinct
// canonical names compared in one file is the shape of a hand-rolled
// parser/printer that will silently miss the next strategy added to the
// table. The alias spellings ("exact", "ls") are excluded — they are
// generic words that appear in unrelated vocabularies (e.g. the portfolio
// winner strings the postmortem folds).
void rule_cl011(const LexedFile& f, std::vector<RawFinding>* out) {
  if (path_ends_with(f.path, "core/strategy.h") ||
      path_ends_with(f.path, "core/strategy.cpp")) {
    return;
  }
  static const std::set<std::string> kNames = {
      "dive", "fix-once", "ilp", "local-search", "portfolio"};
  const auto& T = f.tokens;
  std::set<std::string> seen;
  int first_line = 0;
  for (std::size_t i = 1; i + 1 < T.size(); ++i) {
    if (!is_punct(T[i], "==") && !is_punct(T[i], "!=")) continue;
    const Token* lit = nullptr;
    if (T[i - 1].kind == TokKind::kString) lit = &T[i - 1];
    if (T[i + 1].kind == TokKind::kString) lit = &T[i + 1];
    if (lit == nullptr || kNames.count(lit->text) == 0) continue;
    if (seen.empty()) first_line = T[i].line;
    seen.insert(lit->text);
  }
  if (seen.size() < 2) return;
  std::string names;
  for (const std::string& n : seen) {
    if (!names.empty()) names += ", ";
    names += "'" + n + "'";
  }
  out->push_back(RawFinding{
      "CL011", f.path, first_line,
      "ad-hoc strategy-name comparisons (" + names +
          ") outside core/strategy.*; resolve names through "
          "parse_strategy()/to_string() so the table stays the single "
          "source of strategy spellings"});
}

void rule_cl009(const Corpus& c, std::vector<RawFinding>* out) {
  struct Declared {
    std::size_t file;
    int line;
  };
  std::map<std::string, Declared> declared;
  bool any_declaring = false;
  std::vector<std::size_t> test_files;

  auto is_rule_id = [](const std::string& s) {
    if (s.size() != 5) return false;
    const std::string fam = s.substr(0, 2);
    if (fam != "ML" && fam != "FL" && fam != "DL" && fam != "CL")
      return false;
    for (int i = 2; i < 5; ++i) {
      if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    }
    return true;
  };

  for (std::size_t i = 0; i < c.files.size(); ++i) {
    const std::string& p = c.files[i].path;
    if (in_dir(p, "tests")) test_files.push_back(i);
    if (!in_dir(p, "src/verify")) continue;
    any_declaring = true;
    for (const Token& t : c.lexed[i].tokens) {
      if (t.kind != TokKind::kString || !is_rule_id(t.text)) continue;
      declared.emplace(t.text, Declared{i, t.line});
    }
  }
  if (!any_declaring || test_files.empty()) return;

  for (const auto& [id, at] : declared) {
    bool referenced = false;
    for (std::size_t ti : test_files) {
      if (c.files[ti].text.find(id) != std::string::npos) {
        referenced = true;
        break;
      }
    }
    if (!referenced) {
      out->push_back(RawFinding{
          "CL009", c.files[at.file].path, at.line,
          "rule " + id +
              " is declared in src/verify but appears in no file under "
              "tests/; add a fixture that fires it"});
    }
  }
}

}  // namespace

verify::LintReport lint_sources(const std::vector<SourceFile>& sources,
                                const CodeLintOptions& opts,
                                std::vector<RawFinding> extra) {
  Corpus c;
  c.files = sources;
  c.lexed.reserve(sources.size());
  for (const SourceFile& s : sources) {
    c.lexed.push_back(lex_file(s.path, s.text));
    c.structure.push_back(
        analyze_structure(c.lexed.back(), opts.stats_structs));
    c.sups.push_back(parse_suppressions(c.lexed.back()));
    c.by_stem[stem_of(s.path)].push_back(c.lexed.size() - 1);
  }

  auto enabled = [&](const char* id) {
    if (opts.rules.empty()) return true;
    return std::find(opts.rules.begin(), opts.rules.end(), id) !=
           opts.rules.end();
  };

  std::vector<RawFinding> raw = std::move(extra);
  const std::set<std::string> ast_cl003(opts.ast_cl003_files.begin(),
                                        opts.ast_cl003_files.end());
  for (std::size_t i = 0; i < c.lexed.size(); ++i) {
    if (enabled("CL001")) rule_cl001(c.lexed[i], &raw);
    if (enabled("CL002")) rule_cl002(c, i, &raw);
    if (enabled("CL003") && ast_cl003.count(c.files[i].path) == 0) {
      rule_cl003(c.lexed[i], &raw);
    }
    if (enabled("CL004")) rule_cl004(c.lexed[i], &raw);
    if (enabled("CL005")) rule_cl005(c.lexed[i], &raw);
    if (enabled("CL006")) rule_cl006(c.lexed[i], &raw);
    if (enabled("CL011")) rule_cl011(c.lexed[i], &raw);
  }
  if (enabled("CL007") || enabled("CL008")) {
    rules_cl007_cl008(c, &raw, enabled("CL007"), enabled("CL008"));
  }
  if (enabled("CL009")) rule_cl009(c, &raw);

  // Suppression pass: drop findings covered by a same-file, same-rule
  // CGRAF_LINT_ALLOW, marking the suppression used.
  std::map<std::string, std::size_t> file_index;
  for (std::size_t i = 0; i < c.files.size(); ++i)
    file_index[c.files[i].path] = i;
  std::vector<RawFinding> kept;
  for (RawFinding& rf : raw) {
    bool suppressed = false;
    const auto it = file_index.find(rf.file);
    if (it != file_index.end()) {
      for (Suppression& s : c.sups[it->second]) {
        if (s.rule == rf.rule && s.has_reason &&
            suppression_covers(s, rf.line)) {
          s.used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(rf));
  }

  // CL010: suppression hygiene. Not itself suppressible.
  if (enabled("CL010")) {
    for (std::size_t i = 0; i < c.sups.size(); ++i) {
      for (const Suppression& s : c.sups[i]) {
        const std::string& path = c.files[i].path;
        if (s.rule.empty() || verify::find_code_rule(s.rule) == nullptr) {
          kept.push_back(RawFinding{
              "CL010", path, s.comment_line,
              "CGRAF_LINT_ALLOW names unknown rule '" + s.rule +
                  "'; expected one of CL001-CL0" +
                  std::to_string(verify::code_rules().size()) +
                  " as CGRAF_LINT_ALLOW(CLxxx): reason"});
          continue;
        }
        if (!s.has_reason) {
          kept.push_back(RawFinding{
              "CL010", path, s.comment_line,
              "CGRAF_LINT_ALLOW(" + s.rule +
                  ") carries no reason; write CGRAF_LINT_ALLOW(" + s.rule +
                  "): why this exact case is safe"});
          continue;
        }
        if (!s.used && opts.rules.empty()) {
          kept.push_back(RawFinding{
              "CL010", path, s.comment_line,
              "CGRAF_LINT_ALLOW(" + s.rule +
                  ") suppresses nothing on " + loc(path, s.line) +
                  "; stale suppressions hide real findings — delete it"});
        }
      }
    }
  }

  std::sort(kept.begin(), kept.end(),
            [](const RawFinding& a, const RawFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  verify::LintReport report;
  for (RawFinding& rf : kept) {
    const verify::CodeRuleInfo* info = verify::find_code_rule(rf.rule);
    const Severity sev = info != nullptr ? info->severity : Severity::kError;
    report.add_at(std::move(rf.rule), sev, std::move(rf.message),
                  std::move(rf.file), rf.line);
  }
  return report;
}

}  // namespace cgraf::lint
