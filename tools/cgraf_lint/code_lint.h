// cgraf_lint engine: project-specific AST/token analysis (rules CL001-CL011)
// over the repo's own sources, reporting on the shared verify::LintReport
// machinery so `cgraf_cli lint`, cgraf_lint and CI speak one format.
//
// The rule catalog (IDs, default severities, one-line summaries) lives in
// src/verify/code_rules.h next to the ML/FL/DL families. Scoping is by
// path substring (e.g. CL003 only fires under src/milp, src/aging,
// src/thermal, src/timing, src/verify), so callers can lint fixture
// snippets under virtual paths and exercise every branch.
//
// Suppressions: `// CGRAF_LINT_ALLOW(CLxxx): reason` on the offending line
// or on its own line directly above. A suppression with no reason, an
// unknown rule ID, or one that matches no finding is itself a finding
// (CL010), so the escape hatch cannot rot silently.
#pragma once

#include <string>
#include <vector>

#include "verify/model_lint.h"

namespace cgraf::lint {

struct SourceFile {
  std::string path;  // real or virtual; drives per-rule scoping
  std::string text;
};

// A location-tagged finding produced outside the token engine (the libclang
// frontend); merged by lint_sources under the same suppression handling.
struct RawFinding {
  std::string rule;
  std::string file;
  int line = -1;
  std::string message;
};

struct CodeLintOptions {
  // Run only these rule IDs; empty = the whole CL catalog. Unused-
  // suppression detection (part of CL010) is disabled under a filter,
  // since a skipped rule trivially matches nothing.
  std::vector<std::string> rules;
  // Structs held to the CL007/CL008 consistency contract (operator+= and
  // JSON emission must cover every field).
  std::vector<std::string> stats_structs = {"LpStageStats", "TwoStepStats",
                                            "LocalSearchStats"};
  // Files whose CL003 was already produced by the AST frontend; the lexical
  // CL003 variant skips them so findings are not doubled.
  std::vector<std::string> ast_cl003_files;
};

// Lints the corpus and returns one merged report. Corpus-level rules
// (CL007-CL009) look across files: sibling .h/.cpp stems resolve CL002
// rank registrations, files under tests/ form the CL009 fixture corpus,
// and files under src/verify/ declare the rule-ID namespace.
verify::LintReport lint_sources(const std::vector<SourceFile>& sources,
                                const CodeLintOptions& opts = {},
                                std::vector<RawFinding> extra = {});

// True when `path` lies under the (slash-delimited) directory `dir`, at any
// depth: in_dir("a/src/milp/lu.cpp", "src/milp") == true. Exposed for the
// frontends, which scope their passes the same way.
bool in_dir(const std::string& path, const std::string& dir);

}  // namespace cgraf::lint
