// cgraf_lint: project-specific static analysis (CL001-CL011) over the
// repo's own sources. See DESIGN.md §14 for the rule catalog and the
// suppression syntax.
//
// Exit codes: 0 clean (or warnings only), 1 at least one error-severity
// finding, 2 usage or IO failure.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "clang_ast.h"
#include "code_lint.h"
#include "compile_db.h"
#include "verify/code_rules.h"

namespace fs = std::filesystem;
using cgraf::lint::CodeLintOptions;
using cgraf::lint::CompileCommand;
using cgraf::lint::RawFinding;
using cgraf::lint::SourceFile;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] [file...]\n"
               "  --root DIR              repo root to lint (default: .)\n"
               "  --compile-commands PATH compile_commands.json (default:\n"
               "                          ROOT/build/compile_commands.json"
               " when present)\n"
               "  --rules CL001,CL003     run only these rules\n"
               "  --stats-struct NAME     add a struct to the CL007/CL008\n"
               "                          contract (default: LpStageStats,"
               " TwoStepStats, LocalSearchStats)\n"
               "  --json                  emit the report as JSON\n"
               "  --no-clang              skip the libclang AST frontend\n"
               "  --list-rules            print the rule catalog and exit\n"
               "With positional files, only those files are linted (paths\n"
               "kept verbatim, so fixture snippets can claim virtual paths).\n",
               argv0);
  return 2;
}

bool read_file(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool lintable_extension(const fs::path& p) {
  static const std::set<std::string> kExt = {".h",  ".hpp", ".cpp",
                                             ".cc", ".cxx", ".inl"};
  return kExt.count(p.extension().string()) != 0;
}

// Directories whose contents are not part of the lint corpus: build trees,
// VCS metadata, and fixture/corpus inputs (which contain findings on
// purpose — the tests feed those to the engine explicitly).
bool skip_dir(const std::string& name) {
  return name.rfind("build", 0) == 0 || name == ".git" ||
         name == "fixtures" || name == "corpus" || name == "third_party" ||
         name == "external";
}

std::vector<std::string> collect_tree(const fs::path& root) {
  std::vector<std::string> out;
  for (const char* top : {"src", "tests", "tools", "bench"}) {
    const fs::path dir = root / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    fs::recursive_directory_iterator it(
        dir, fs::directory_options::skip_permission_denied, ec);
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory(ec)) {
        if (skip_dir(it->path().filename().string())) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (it->is_regular_file(ec) && lintable_extension(it->path())) {
        out.push_back(
            fs::relative(it->path(), root).generic_string());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Maps an absolute path under root back to the corpus-relative form; paths
// outside root come back unchanged.
std::string relativize(const std::string& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) return path;
  const std::string s = rel.generic_string();
  return s.rfind("..", 0) == 0 ? path : s;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string compile_db_path;
  bool json = false;
  bool no_clang = false;
  CodeLintOptions opts;
  std::vector<std::string> stats_structs;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cgraf_lint: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = next("--root");
      if (v == nullptr) return 2;
      root = v;
    } else if (arg == "--compile-commands") {
      const char* v = next("--compile-commands");
      if (v == nullptr) return 2;
      compile_db_path = v;
    } else if (arg == "--rules") {
      const char* v = next("--rules");
      if (v == nullptr) return 2;
      std::string cur;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!cur.empty()) opts.rules.push_back(cur);
          cur.clear();
          if (*p == '\0') break;
        } else {
          cur += *p;
        }
      }
    } else if (arg == "--stats-struct") {
      const char* v = next("--stats-struct");
      if (v == nullptr) return 2;
      stats_structs.push_back(v);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-clang") {
      no_clang = true;
    } else if (arg == "--list-rules") {
      for (const cgraf::verify::CodeRuleInfo& r :
           cgraf::verify::code_rules()) {
        std::printf("%s  %-5s  %s\n", r.id,
                    cgraf::verify::to_string(r.severity), r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "cgraf_lint: unknown flag %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (!stats_structs.empty()) opts.stats_structs = std::move(stats_structs);

  // Corpus: explicit files verbatim, else the tree walk under --root.
  std::vector<SourceFile> sources;
  if (!positional.empty()) {
    for (const std::string& p : positional) {
      SourceFile sf;
      sf.path = p;
      if (!read_file(p, &sf.text)) {
        std::fprintf(stderr, "cgraf_lint: cannot read %s\n", p.c_str());
        return 2;
      }
      sources.push_back(std::move(sf));
    }
  } else {
    for (const std::string& rel : collect_tree(root)) {
      SourceFile sf;
      sf.path = rel;
      if (!read_file(root / rel, &sf.text)) {
        std::fprintf(stderr, "cgraf_lint: cannot read %s\n", rel.c_str());
        return 2;
      }
      sources.push_back(std::move(sf));
    }
    if (sources.empty()) {
      std::fprintf(stderr, "cgraf_lint: no sources under %s\n",
                   root.string().c_str());
      return 2;
    }
  }

  // Optional AST refinement over the TUs the build actually compiles.
  std::vector<RawFinding> extra;
  if (positional.empty() && !no_clang && cgraf::lint::clang_ast_available()) {
    if (compile_db_path.empty()) {
      const fs::path dflt = root / "build" / "compile_commands.json";
      std::error_code ec;
      if (fs::exists(dflt, ec)) compile_db_path = dflt.string();
    }
    if (!compile_db_path.empty()) {
      std::vector<CompileCommand> db;
      std::string error;
      if (!cgraf::lint::load_compile_db(compile_db_path, &db, &error)) {
        std::fprintf(stderr, "cgraf_lint: %s\n", error.c_str());
        return 2;
      }
      std::set<std::string> corpus;
      for (const SourceFile& s : sources) corpus.insert(s.path);
      for (const CompileCommand& cc : db) {
        const std::string rel = relativize(cc.file, root);
        if (corpus.count(rel) == 0) continue;
        std::vector<RawFinding> found;
        std::string error2;
        if (cgraf::lint::clang_cl003(cc, &found, &error2)) {
          for (RawFinding& f : found) {
            f.file = relativize(f.file, root);
            extra.push_back(std::move(f));
          }
          opts.ast_cl003_files.push_back(rel);
        } else {
          std::fprintf(stderr, "cgraf_lint: warning: %s; using the lexical "
                       "CL003 for this TU\n", error2.c_str());
        }
      }
    }
  }

  const cgraf::verify::LintReport report =
      cgraf::lint::lint_sources(sources, opts, std::move(extra));

  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else {
    const std::string text = report.to_text();
    if (!text.empty()) std::fputs(text.c_str(), stdout);
    std::fprintf(stderr,
                 "cgraf_lint: %zu file(s), %d error(s), %d warning(s)%s\n",
                 sources.size(), report.errors, report.warnings,
                 cgraf::lint::clang_ast_available() && !no_clang
                     ? " [libclang frontend]"
                     : " [token engine]");
  }
  return report.clean() ? 0 : 1;
}
