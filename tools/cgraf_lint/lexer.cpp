#include "lexer.h"

#include <cctype>
#include <cstdlib>

namespace cgraf::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

// Multi-character punctuators, longest first within each leading character
// so maximal munch falls out of first-match.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  ".*",  "##",
};

}  // namespace

LexedFile lex_file(std::string path, std::string_view text) {
  LexedFile out;
  out.path = std::move(path);

  std::size_t i = 0;
  const std::size_t n = text.size();
  int line = 1;
  std::size_t line_start = 0;
  bool line_has_code = false;  // non-whitespace seen before current position

  auto col_of = [&](std::size_t pos) {
    return static_cast<int>(pos - line_start) + 1;
  };
  auto newline_at = [&](std::size_t pos) {
    line++;
    line_start = pos + 1;
    line_has_code = false;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      newline_at(i);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line continuation inside a preprocessor directive or anywhere else.
    if (c == '\\' && i + 1 < n && (text[i + 1] == '\n' || text[i + 1] == '\r')) {
      if (text[i + 1] == '\n') newline_at(i + 1);
      i += 2;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      Comment cm;
      cm.line = line;
      cm.own_line = !line_has_code;
      std::size_t j = i + 2;
      while (j < n && text[j] != '\n') ++j;
      cm.text = std::string(text.substr(i + 2, j - (i + 2)));
      cm.end_line = line;
      out.comments.push_back(std::move(cm));
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      Comment cm;
      cm.line = line;
      cm.own_line = !line_has_code;
      std::size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') newline_at(j);
        ++j;
      }
      cm.text = std::string(text.substr(i + 2, j - (i + 2)));
      cm.end_line = line;
      out.comments.push_back(std::move(cm));
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    line_has_code = true;

    // Raw strings: R"delim( ... )delim" (with optional encoding prefix
    // already consumed as part of an identifier-lookahead below).
    auto lex_raw_string = [&](std::size_t start) -> std::size_t {
      // start points at the R. start+1 is the quote.
      std::size_t j = start + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string close = ")" + delim + "\"";
      std::size_t body = j + 1;
      std::size_t end = text.find(close, body);
      if (end == std::string_view::npos) end = n;
      Token t;
      t.kind = TokKind::kString;
      t.line = line;
      t.col = col_of(start);
      t.text = std::string(
          text.substr(body, end == n ? n - body : end - body));
      // Account newlines inside the raw body.
      for (std::size_t k = start; k < std::min(n, end + close.size()); ++k) {
        if (text[k] == '\n') newline_at(k);
      }
      out.tokens.push_back(std::move(t));
      return end == n ? n : end + close.size();
    };

    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      i = lex_raw_string(i);
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(text[j])) ++j;
      // Encoding prefixes of raw strings: u8R"( L R"( etc.
      if (j < n && text[j] == '"' && text[j - 1] == 'R' && j - i <= 3) {
        i = lex_raw_string(j - 1);
        continue;
      }
      // Ordinary-string encoding prefixes (u8"", L"") fall through to the
      // string case by re-lexing from the quote.
      if (j < n && (text[j] == '"' || text[j] == '\'') && j - i <= 2) {
        i = j;
        continue;
      }
      Token t;
      t.kind = TokKind::kIdent;
      t.line = line;
      t.col = col_of(i);
      t.text = std::string(text.substr(i, j - i));
      out.tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string body;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j];
          body += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') newline_at(j);  // unterminated; keep line count
        body += text[j++];
      }
      Token t;
      t.kind = quote == '"' ? TokKind::kString : TokKind::kChar;
      t.line = line;
      t.col = col_of(i);
      t.text = std::move(body);
      out.tokens.push_back(std::move(t));
      i = (j < n) ? j + 1 : n;
      continue;
    }

    const bool leading_digit =
        std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])));
    if (leading_digit) {
      // pp-number: digits, idents, quotes-as-separators, and exponent signs.
      std::size_t j = i;
      bool hex = (c == '0' && i + 1 < n && (text[i + 1] == 'x' ||
                                            text[i + 1] == 'X'));
      while (j < n) {
        const char d = text[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = text[j - 1];
          const bool dec_exp = !hex && (prev == 'e' || prev == 'E');
          const bool hex_exp = hex && (prev == 'p' || prev == 'P');
          if (dec_exp || hex_exp) {
            ++j;
            continue;
          }
        }
        break;
      }
      Token t;
      t.kind = TokKind::kNumber;
      t.line = line;
      t.col = col_of(i);
      t.text = std::string(text.substr(i, j - i));
      std::string clean;
      for (char d : t.text) {
        if (d != '\'') clean += d;
      }
      bool has_dot = clean.find('.') != std::string::npos;
      bool has_exp = false;
      if (!hex) {
        for (std::size_t k = 1; k < clean.size(); ++k) {
          if ((clean[k] == 'e' || clean[k] == 'E') &&
              std::isdigit(static_cast<unsigned char>(clean[k - 1]))) {
            has_exp = true;
          }
        }
      } else {
        has_exp = clean.find('p') != std::string::npos ||
                  clean.find('P') != std::string::npos;
      }
      const char suffix = clean.empty() ? '\0' : clean.back();
      const bool f_suffix = !hex && (suffix == 'f' || suffix == 'F');
      t.is_float = has_dot || has_exp || f_suffix;
      if (t.is_float) t.value = std::strtod(clean.c_str(), nullptr);
      out.tokens.push_back(std::move(t));
      i = j;
      continue;
    }

    // Punctuation: maximal munch over the multi-char table.
    std::string_view rest = text.substr(i);
    std::string_view matched;
    for (std::string_view p : kPuncts) {
      if (rest.substr(0, p.size()) == p) {
        matched = p;
        break;
      }
    }
    Token t;
    t.kind = TokKind::kPunct;
    t.line = line;
    t.col = col_of(i);
    if (!matched.empty()) {
      t.text = std::string(matched);
      i += matched.size();
    } else {
      t.text = std::string(1, c);
      ++i;
    }
    out.tokens.push_back(std::move(t));
  }

  return out;
}

}  // namespace cgraf::lint
