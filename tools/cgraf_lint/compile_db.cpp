#include "compile_db.h"

#include <fstream>
#include <sstream>

#include "obs/json_reader.h"

namespace cgraf::lint {

namespace {

// Shell-style split for the legacy "command" form. Handles double and
// single quotes and backslash escapes; compile commands emitted by CMake
// never need more than that.
std::vector<std::string> split_command(const std::string& cmd) {
  std::vector<std::string> out;
  std::string cur;
  bool in_word = false;
  char quote = '\0';
  for (std::size_t i = 0; i < cmd.size(); ++i) {
    const char c = cmd[i];
    if (quote != '\0') {
      if (c == quote) {
        quote = '\0';
      } else if (c == '\\' && quote == '"' && i + 1 < cmd.size()) {
        cur += cmd[++i];
      } else {
        cur += c;
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      in_word = true;
      continue;
    }
    if (c == '\\' && i + 1 < cmd.size()) {
      cur += cmd[++i];
      in_word = true;
      continue;
    }
    if (c == ' ' || c == '\t') {
      if (in_word) out.push_back(std::move(cur));
      cur.clear();
      in_word = false;
      continue;
    }
    cur += c;
    in_word = true;
  }
  if (in_word) out.push_back(std::move(cur));
  return out;
}

std::string join_path(const std::string& dir, const std::string& rel) {
  if (rel.empty() || rel[0] == '/') return rel;
  if (dir.empty()) return rel;
  return dir.back() == '/' ? dir + rel : dir + "/" + rel;
}

}  // namespace

bool load_compile_db(const std::string& path,
                     std::vector<CompileCommand>* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  obs::JsonValue root;
  std::string json_error;
  if (!obs::parse_json(text, &root, &json_error)) {
    *error = path + ": " + json_error;
    return false;
  }
  if (!root.is_array()) {
    *error = path + ": expected a top-level array";
    return false;
  }

  for (const obs::JsonValue& entry : root.arr) {
    if (!entry.is_object()) continue;
    CompileCommand cc;
    cc.directory = entry.str_or("directory", "");
    const std::string file = entry.str_or("file", "");
    if (file.empty()) continue;
    cc.file = join_path(cc.directory, file);
    if (const obs::JsonValue* args = entry.find("arguments");
        args != nullptr && args->is_array()) {
      for (const obs::JsonValue& a : args->arr) {
        if (a.is_string()) cc.args.push_back(a.str);
      }
    } else {
      cc.args = split_command(entry.str_or("command", ""));
    }
    out->push_back(std::move(cc));
  }
  return true;
}

}  // namespace cgraf::lint
