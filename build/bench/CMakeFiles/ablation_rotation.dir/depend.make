# Empty dependencies file for ablation_rotation.
# This may be replaced when dependencies are built.
