file(REMOVE_RECURSE
  "CMakeFiles/ablation_rotation.dir/ablation_rotation.cpp.o"
  "CMakeFiles/ablation_rotation.dir/ablation_rotation.cpp.o.d"
  "ablation_rotation"
  "ablation_rotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
