# Empty dependencies file for table1_mttf.
# This may be replaced when dependencies are built.
