file(REMOVE_RECURSE
  "CMakeFiles/table1_mttf.dir/table1_mttf.cpp.o"
  "CMakeFiles/table1_mttf.dir/table1_mttf.cpp.o.d"
  "table1_mttf"
  "table1_mttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
