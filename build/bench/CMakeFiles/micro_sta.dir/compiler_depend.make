# Empty compiler generated dependencies file for micro_sta.
# This may be replaced when dependencies are built.
