file(REMOVE_RECURSE
  "CMakeFiles/micro_sta.dir/micro_sta.cpp.o"
  "CMakeFiles/micro_sta.dir/micro_sta.cpp.o.d"
  "micro_sta"
  "micro_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
