# Empty dependencies file for ablation_pathfilter.
# This may be replaced when dependencies are built.
