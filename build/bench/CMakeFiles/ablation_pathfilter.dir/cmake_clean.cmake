file(REMOVE_RECURSE
  "CMakeFiles/ablation_pathfilter.dir/ablation_pathfilter.cpp.o"
  "CMakeFiles/ablation_pathfilter.dir/ablation_pathfilter.cpp.o.d"
  "ablation_pathfilter"
  "ablation_pathfilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pathfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
