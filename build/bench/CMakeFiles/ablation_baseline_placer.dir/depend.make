# Empty dependencies file for ablation_baseline_placer.
# This may be replaced when dependencies are built.
