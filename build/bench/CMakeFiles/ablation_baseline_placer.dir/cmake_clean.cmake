file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_placer.dir/ablation_baseline_placer.cpp.o"
  "CMakeFiles/ablation_baseline_placer.dir/ablation_baseline_placer.cpp.o.d"
  "ablation_baseline_placer"
  "ablation_baseline_placer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
