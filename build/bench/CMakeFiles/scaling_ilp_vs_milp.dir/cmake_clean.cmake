file(REMOVE_RECURSE
  "CMakeFiles/scaling_ilp_vs_milp.dir/scaling_ilp_vs_milp.cpp.o"
  "CMakeFiles/scaling_ilp_vs_milp.dir/scaling_ilp_vs_milp.cpp.o.d"
  "scaling_ilp_vs_milp"
  "scaling_ilp_vs_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_ilp_vs_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
