# Empty dependencies file for scaling_ilp_vs_milp.
# This may be replaced when dependencies are built.
