# Empty compiler generated dependencies file for micro_solver.
# This may be replaced when dependencies are built.
