# Empty compiler generated dependencies file for fig5_mttf_by_config.
# This may be replaced when dependencies are built.
