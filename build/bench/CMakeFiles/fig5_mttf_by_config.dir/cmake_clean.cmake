file(REMOVE_RECURSE
  "CMakeFiles/fig5_mttf_by_config.dir/fig5_mttf_by_config.cpp.o"
  "CMakeFiles/fig5_mttf_by_config.dir/fig5_mttf_by_config.cpp.o.d"
  "fig5_mttf_by_config"
  "fig5_mttf_by_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mttf_by_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
