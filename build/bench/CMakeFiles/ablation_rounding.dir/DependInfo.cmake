
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_rounding.cpp" "bench/CMakeFiles/ablation_rounding.dir/ablation_rounding.cpp.o" "gcc" "bench/CMakeFiles/ablation_rounding.dir/ablation_rounding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cgraf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_aging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_cgrra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
