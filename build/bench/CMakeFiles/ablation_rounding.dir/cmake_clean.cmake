file(REMOVE_RECURSE
  "CMakeFiles/ablation_rounding.dir/ablation_rounding.cpp.o"
  "CMakeFiles/ablation_rounding.dir/ablation_rounding.cpp.o.d"
  "ablation_rounding"
  "ablation_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
