# Empty dependencies file for ablation_rounding.
# This may be replaced when dependencies are built.
