# Empty dependencies file for ablation_aging_models.
# This may be replaced when dependencies are built.
