file(REMOVE_RECURSE
  "CMakeFiles/ablation_aging_models.dir/ablation_aging_models.cpp.o"
  "CMakeFiles/ablation_aging_models.dir/ablation_aging_models.cpp.o.d"
  "ablation_aging_models"
  "ablation_aging_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aging_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
