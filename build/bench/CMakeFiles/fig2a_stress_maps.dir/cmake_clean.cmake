file(REMOVE_RECURSE
  "CMakeFiles/fig2a_stress_maps.dir/fig2a_stress_maps.cpp.o"
  "CMakeFiles/fig2a_stress_maps.dir/fig2a_stress_maps.cpp.o.d"
  "fig2a_stress_maps"
  "fig2a_stress_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_stress_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
