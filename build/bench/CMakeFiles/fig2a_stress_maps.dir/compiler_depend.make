# Empty compiler generated dependencies file for fig2a_stress_maps.
# This may be replaced when dependencies are built.
