file(REMOVE_RECURSE
  "CMakeFiles/fig2b_vth_curves.dir/fig2b_vth_curves.cpp.o"
  "CMakeFiles/fig2b_vth_curves.dir/fig2b_vth_curves.cpp.o.d"
  "fig2b_vth_curves"
  "fig2b_vth_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_vth_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
