# Empty compiler generated dependencies file for fig2b_vth_curves.
# This may be replaced when dependencies are built.
