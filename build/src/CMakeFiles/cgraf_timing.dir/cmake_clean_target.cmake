file(REMOVE_RECURSE
  "libcgraf_timing.a"
)
