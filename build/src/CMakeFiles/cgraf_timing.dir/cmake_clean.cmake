file(REMOVE_RECURSE
  "CMakeFiles/cgraf_timing.dir/timing/paths.cpp.o"
  "CMakeFiles/cgraf_timing.dir/timing/paths.cpp.o.d"
  "CMakeFiles/cgraf_timing.dir/timing/sta.cpp.o"
  "CMakeFiles/cgraf_timing.dir/timing/sta.cpp.o.d"
  "libcgraf_timing.a"
  "libcgraf_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
