# Empty dependencies file for cgraf_timing.
# This may be replaced when dependencies are built.
