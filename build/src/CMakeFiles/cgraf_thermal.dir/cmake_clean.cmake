file(REMOVE_RECURSE
  "CMakeFiles/cgraf_thermal.dir/thermal/hotspot_lite.cpp.o"
  "CMakeFiles/cgraf_thermal.dir/thermal/hotspot_lite.cpp.o.d"
  "libcgraf_thermal.a"
  "libcgraf_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
