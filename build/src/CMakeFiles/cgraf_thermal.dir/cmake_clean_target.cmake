file(REMOVE_RECURSE
  "libcgraf_thermal.a"
)
