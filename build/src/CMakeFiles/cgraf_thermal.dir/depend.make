# Empty dependencies file for cgraf_thermal.
# This may be replaced when dependencies are built.
