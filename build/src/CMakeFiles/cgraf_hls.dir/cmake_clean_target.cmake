file(REMOVE_RECURSE
  "libcgraf_hls.a"
)
