# Empty dependencies file for cgraf_hls.
# This may be replaced when dependencies are built.
