file(REMOVE_RECURSE
  "CMakeFiles/cgraf_hls.dir/hls/dfg.cpp.o"
  "CMakeFiles/cgraf_hls.dir/hls/dfg.cpp.o.d"
  "CMakeFiles/cgraf_hls.dir/hls/expr_parser.cpp.o"
  "CMakeFiles/cgraf_hls.dir/hls/expr_parser.cpp.o.d"
  "CMakeFiles/cgraf_hls.dir/hls/placer.cpp.o"
  "CMakeFiles/cgraf_hls.dir/hls/placer.cpp.o.d"
  "CMakeFiles/cgraf_hls.dir/hls/scheduler.cpp.o"
  "CMakeFiles/cgraf_hls.dir/hls/scheduler.cpp.o.d"
  "libcgraf_hls.a"
  "libcgraf_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
