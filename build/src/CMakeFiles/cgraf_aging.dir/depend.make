# Empty dependencies file for cgraf_aging.
# This may be replaced when dependencies are built.
