file(REMOVE_RECURSE
  "libcgraf_aging.a"
)
