file(REMOVE_RECURSE
  "CMakeFiles/cgraf_aging.dir/aging/mechanisms.cpp.o"
  "CMakeFiles/cgraf_aging.dir/aging/mechanisms.cpp.o.d"
  "CMakeFiles/cgraf_aging.dir/aging/mttf.cpp.o"
  "CMakeFiles/cgraf_aging.dir/aging/mttf.cpp.o.d"
  "CMakeFiles/cgraf_aging.dir/aging/nbti.cpp.o"
  "CMakeFiles/cgraf_aging.dir/aging/nbti.cpp.o.d"
  "libcgraf_aging.a"
  "libcgraf_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
