file(REMOVE_RECURSE
  "libcgraf_milp.a"
)
