file(REMOVE_RECURSE
  "CMakeFiles/cgraf_milp.dir/milp/branch_and_bound.cpp.o"
  "CMakeFiles/cgraf_milp.dir/milp/branch_and_bound.cpp.o.d"
  "CMakeFiles/cgraf_milp.dir/milp/lu.cpp.o"
  "CMakeFiles/cgraf_milp.dir/milp/lu.cpp.o.d"
  "CMakeFiles/cgraf_milp.dir/milp/model.cpp.o"
  "CMakeFiles/cgraf_milp.dir/milp/model.cpp.o.d"
  "CMakeFiles/cgraf_milp.dir/milp/presolve.cpp.o"
  "CMakeFiles/cgraf_milp.dir/milp/presolve.cpp.o.d"
  "CMakeFiles/cgraf_milp.dir/milp/simplex.cpp.o"
  "CMakeFiles/cgraf_milp.dir/milp/simplex.cpp.o.d"
  "CMakeFiles/cgraf_milp.dir/milp/sparse.cpp.o"
  "CMakeFiles/cgraf_milp.dir/milp/sparse.cpp.o.d"
  "libcgraf_milp.a"
  "libcgraf_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
