# Empty compiler generated dependencies file for cgraf_milp.
# This may be replaced when dependencies are built.
