
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/milp/branch_and_bound.cpp" "src/CMakeFiles/cgraf_milp.dir/milp/branch_and_bound.cpp.o" "gcc" "src/CMakeFiles/cgraf_milp.dir/milp/branch_and_bound.cpp.o.d"
  "/root/repo/src/milp/lu.cpp" "src/CMakeFiles/cgraf_milp.dir/milp/lu.cpp.o" "gcc" "src/CMakeFiles/cgraf_milp.dir/milp/lu.cpp.o.d"
  "/root/repo/src/milp/model.cpp" "src/CMakeFiles/cgraf_milp.dir/milp/model.cpp.o" "gcc" "src/CMakeFiles/cgraf_milp.dir/milp/model.cpp.o.d"
  "/root/repo/src/milp/presolve.cpp" "src/CMakeFiles/cgraf_milp.dir/milp/presolve.cpp.o" "gcc" "src/CMakeFiles/cgraf_milp.dir/milp/presolve.cpp.o.d"
  "/root/repo/src/milp/simplex.cpp" "src/CMakeFiles/cgraf_milp.dir/milp/simplex.cpp.o" "gcc" "src/CMakeFiles/cgraf_milp.dir/milp/simplex.cpp.o.d"
  "/root/repo/src/milp/sparse.cpp" "src/CMakeFiles/cgraf_milp.dir/milp/sparse.cpp.o" "gcc" "src/CMakeFiles/cgraf_milp.dir/milp/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cgraf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
