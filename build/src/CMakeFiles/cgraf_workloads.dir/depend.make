# Empty dependencies file for cgraf_workloads.
# This may be replaced when dependencies are built.
