
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/kernels.cpp" "src/CMakeFiles/cgraf_workloads.dir/workloads/kernels.cpp.o" "gcc" "src/CMakeFiles/cgraf_workloads.dir/workloads/kernels.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/CMakeFiles/cgraf_workloads.dir/workloads/suite.cpp.o" "gcc" "src/CMakeFiles/cgraf_workloads.dir/workloads/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cgraf_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_cgrra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
