file(REMOVE_RECURSE
  "libcgraf_workloads.a"
)
