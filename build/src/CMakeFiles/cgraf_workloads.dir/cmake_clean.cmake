file(REMOVE_RECURSE
  "CMakeFiles/cgraf_workloads.dir/workloads/kernels.cpp.o"
  "CMakeFiles/cgraf_workloads.dir/workloads/kernels.cpp.o.d"
  "CMakeFiles/cgraf_workloads.dir/workloads/suite.cpp.o"
  "CMakeFiles/cgraf_workloads.dir/workloads/suite.cpp.o.d"
  "libcgraf_workloads.a"
  "libcgraf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
