file(REMOVE_RECURSE
  "libcgraf_util.a"
)
