file(REMOVE_RECURSE
  "CMakeFiles/cgraf_util.dir/util/ascii.cpp.o"
  "CMakeFiles/cgraf_util.dir/util/ascii.cpp.o.d"
  "CMakeFiles/cgraf_util.dir/util/rng.cpp.o"
  "CMakeFiles/cgraf_util.dir/util/rng.cpp.o.d"
  "libcgraf_util.a"
  "libcgraf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
