# Empty dependencies file for cgraf_util.
# This may be replaced when dependencies are built.
