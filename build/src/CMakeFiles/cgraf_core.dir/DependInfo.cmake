
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/CMakeFiles/cgraf_core.dir/core/analysis.cpp.o" "gcc" "src/CMakeFiles/cgraf_core.dir/core/analysis.cpp.o.d"
  "/root/repo/src/core/candidates.cpp" "src/CMakeFiles/cgraf_core.dir/core/candidates.cpp.o" "gcc" "src/CMakeFiles/cgraf_core.dir/core/candidates.cpp.o.d"
  "/root/repo/src/core/model_builder.cpp" "src/CMakeFiles/cgraf_core.dir/core/model_builder.cpp.o" "gcc" "src/CMakeFiles/cgraf_core.dir/core/model_builder.cpp.o.d"
  "/root/repo/src/core/remapper.cpp" "src/CMakeFiles/cgraf_core.dir/core/remapper.cpp.o" "gcc" "src/CMakeFiles/cgraf_core.dir/core/remapper.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/cgraf_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/cgraf_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/rotation.cpp" "src/CMakeFiles/cgraf_core.dir/core/rotation.cpp.o" "gcc" "src/CMakeFiles/cgraf_core.dir/core/rotation.cpp.o.d"
  "/root/repo/src/core/st_target.cpp" "src/CMakeFiles/cgraf_core.dir/core/st_target.cpp.o" "gcc" "src/CMakeFiles/cgraf_core.dir/core/st_target.cpp.o.d"
  "/root/repo/src/core/two_step.cpp" "src/CMakeFiles/cgraf_core.dir/core/two_step.cpp.o" "gcc" "src/CMakeFiles/cgraf_core.dir/core/two_step.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cgraf_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_cgrra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_aging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
