file(REMOVE_RECURSE
  "libcgraf_core.a"
)
