# Empty compiler generated dependencies file for cgraf_core.
# This may be replaced when dependencies are built.
