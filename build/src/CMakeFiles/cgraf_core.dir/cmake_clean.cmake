file(REMOVE_RECURSE
  "CMakeFiles/cgraf_core.dir/core/analysis.cpp.o"
  "CMakeFiles/cgraf_core.dir/core/analysis.cpp.o.d"
  "CMakeFiles/cgraf_core.dir/core/candidates.cpp.o"
  "CMakeFiles/cgraf_core.dir/core/candidates.cpp.o.d"
  "CMakeFiles/cgraf_core.dir/core/model_builder.cpp.o"
  "CMakeFiles/cgraf_core.dir/core/model_builder.cpp.o.d"
  "CMakeFiles/cgraf_core.dir/core/remapper.cpp.o"
  "CMakeFiles/cgraf_core.dir/core/remapper.cpp.o.d"
  "CMakeFiles/cgraf_core.dir/core/report.cpp.o"
  "CMakeFiles/cgraf_core.dir/core/report.cpp.o.d"
  "CMakeFiles/cgraf_core.dir/core/rotation.cpp.o"
  "CMakeFiles/cgraf_core.dir/core/rotation.cpp.o.d"
  "CMakeFiles/cgraf_core.dir/core/st_target.cpp.o"
  "CMakeFiles/cgraf_core.dir/core/st_target.cpp.o.d"
  "CMakeFiles/cgraf_core.dir/core/two_step.cpp.o"
  "CMakeFiles/cgraf_core.dir/core/two_step.cpp.o.d"
  "libcgraf_core.a"
  "libcgraf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
