# Empty compiler generated dependencies file for cgraf_cgrra.
# This may be replaced when dependencies are built.
