file(REMOVE_RECURSE
  "libcgraf_cgrra.a"
)
