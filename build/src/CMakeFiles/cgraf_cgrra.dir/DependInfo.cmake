
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgrra/fabric.cpp" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/fabric.cpp.o" "gcc" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/fabric.cpp.o.d"
  "/root/repo/src/cgrra/floorplan.cpp" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/floorplan.cpp.o" "gcc" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/floorplan.cpp.o.d"
  "/root/repo/src/cgrra/io.cpp" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/io.cpp.o" "gcc" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/io.cpp.o.d"
  "/root/repo/src/cgrra/operation.cpp" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/operation.cpp.o" "gcc" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/operation.cpp.o.d"
  "/root/repo/src/cgrra/stress.cpp" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/stress.cpp.o" "gcc" "src/CMakeFiles/cgraf_cgrra.dir/cgrra/stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cgraf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
