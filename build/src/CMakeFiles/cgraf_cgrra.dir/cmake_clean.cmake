file(REMOVE_RECURSE
  "CMakeFiles/cgraf_cgrra.dir/cgrra/fabric.cpp.o"
  "CMakeFiles/cgraf_cgrra.dir/cgrra/fabric.cpp.o.d"
  "CMakeFiles/cgraf_cgrra.dir/cgrra/floorplan.cpp.o"
  "CMakeFiles/cgraf_cgrra.dir/cgrra/floorplan.cpp.o.d"
  "CMakeFiles/cgraf_cgrra.dir/cgrra/io.cpp.o"
  "CMakeFiles/cgraf_cgrra.dir/cgrra/io.cpp.o.d"
  "CMakeFiles/cgraf_cgrra.dir/cgrra/operation.cpp.o"
  "CMakeFiles/cgraf_cgrra.dir/cgrra/operation.cpp.o.d"
  "CMakeFiles/cgraf_cgrra.dir/cgrra/stress.cpp.o"
  "CMakeFiles/cgraf_cgrra.dir/cgrra/stress.cpp.o.d"
  "libcgraf_cgrra.a"
  "libcgraf_cgrra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_cgrra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
