file(REMOVE_RECURSE
  "CMakeFiles/solver_tour.dir/solver_tour.cpp.o"
  "CMakeFiles/solver_tour.dir/solver_tour.cpp.o.d"
  "solver_tour"
  "solver_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
