# Empty dependencies file for solver_tour.
# This may be replaced when dependencies are built.
