file(REMOVE_RECURSE
  "CMakeFiles/fault_recovery.dir/fault_recovery.cpp.o"
  "CMakeFiles/fault_recovery.dir/fault_recovery.cpp.o.d"
  "fault_recovery"
  "fault_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
