# Empty compiler generated dependencies file for custom_kernel_dsl.
# This may be replaced when dependencies are built.
