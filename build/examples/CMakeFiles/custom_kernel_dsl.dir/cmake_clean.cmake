file(REMOVE_RECURSE
  "CMakeFiles/custom_kernel_dsl.dir/custom_kernel_dsl.cpp.o"
  "CMakeFiles/custom_kernel_dsl.dir/custom_kernel_dsl.cpp.o.d"
  "custom_kernel_dsl"
  "custom_kernel_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kernel_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
