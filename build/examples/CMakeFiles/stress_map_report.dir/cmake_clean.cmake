file(REMOVE_RECURSE
  "CMakeFiles/stress_map_report.dir/stress_map_report.cpp.o"
  "CMakeFiles/stress_map_report.dir/stress_map_report.cpp.o.d"
  "stress_map_report"
  "stress_map_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_map_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
