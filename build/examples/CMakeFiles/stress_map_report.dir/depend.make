# Empty dependencies file for stress_map_report.
# This may be replaced when dependencies are built.
