file(REMOVE_RECURSE
  "CMakeFiles/milp_tests.dir/milp/branch_and_bound_test.cpp.o"
  "CMakeFiles/milp_tests.dir/milp/branch_and_bound_test.cpp.o.d"
  "CMakeFiles/milp_tests.dir/milp/lu_test.cpp.o"
  "CMakeFiles/milp_tests.dir/milp/lu_test.cpp.o.d"
  "CMakeFiles/milp_tests.dir/milp/model_test.cpp.o"
  "CMakeFiles/milp_tests.dir/milp/model_test.cpp.o.d"
  "CMakeFiles/milp_tests.dir/milp/presolve_test.cpp.o"
  "CMakeFiles/milp_tests.dir/milp/presolve_test.cpp.o.d"
  "CMakeFiles/milp_tests.dir/milp/random_property_test.cpp.o"
  "CMakeFiles/milp_tests.dir/milp/random_property_test.cpp.o.d"
  "CMakeFiles/milp_tests.dir/milp/simplex_edge_test.cpp.o"
  "CMakeFiles/milp_tests.dir/milp/simplex_edge_test.cpp.o.d"
  "CMakeFiles/milp_tests.dir/milp/simplex_test.cpp.o"
  "CMakeFiles/milp_tests.dir/milp/simplex_test.cpp.o.d"
  "CMakeFiles/milp_tests.dir/milp/sparse_test.cpp.o"
  "CMakeFiles/milp_tests.dir/milp/sparse_test.cpp.o.d"
  "CMakeFiles/milp_tests.dir/milp/vertex_oracle_test.cpp.o"
  "CMakeFiles/milp_tests.dir/milp/vertex_oracle_test.cpp.o.d"
  "milp_tests"
  "milp_tests.pdb"
  "milp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
