# Empty dependencies file for milp_tests.
# This may be replaced when dependencies are built.
