# Empty dependencies file for workloads_tests.
# This may be replaced when dependencies are built.
