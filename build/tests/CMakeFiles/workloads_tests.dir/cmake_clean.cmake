file(REMOVE_RECURSE
  "CMakeFiles/workloads_tests.dir/workloads/kernels_test.cpp.o"
  "CMakeFiles/workloads_tests.dir/workloads/kernels_test.cpp.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/suite_test.cpp.o"
  "CMakeFiles/workloads_tests.dir/workloads/suite_test.cpp.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/suite_validity_test.cpp.o"
  "CMakeFiles/workloads_tests.dir/workloads/suite_validity_test.cpp.o.d"
  "workloads_tests"
  "workloads_tests.pdb"
  "workloads_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
