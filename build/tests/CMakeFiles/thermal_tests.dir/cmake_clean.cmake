file(REMOVE_RECURSE
  "CMakeFiles/thermal_tests.dir/thermal/hotspot_lite_test.cpp.o"
  "CMakeFiles/thermal_tests.dir/thermal/hotspot_lite_test.cpp.o.d"
  "CMakeFiles/thermal_tests.dir/thermal/transient_test.cpp.o"
  "CMakeFiles/thermal_tests.dir/thermal/transient_test.cpp.o.d"
  "thermal_tests"
  "thermal_tests.pdb"
  "thermal_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
