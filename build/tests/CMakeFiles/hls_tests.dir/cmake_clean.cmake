file(REMOVE_RECURSE
  "CMakeFiles/hls_tests.dir/hls/dfg_test.cpp.o"
  "CMakeFiles/hls_tests.dir/hls/dfg_test.cpp.o.d"
  "CMakeFiles/hls_tests.dir/hls/expr_parser_test.cpp.o"
  "CMakeFiles/hls_tests.dir/hls/expr_parser_test.cpp.o.d"
  "CMakeFiles/hls_tests.dir/hls/placer_test.cpp.o"
  "CMakeFiles/hls_tests.dir/hls/placer_test.cpp.o.d"
  "CMakeFiles/hls_tests.dir/hls/scheduler_test.cpp.o"
  "CMakeFiles/hls_tests.dir/hls/scheduler_test.cpp.o.d"
  "hls_tests"
  "hls_tests.pdb"
  "hls_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hls_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
