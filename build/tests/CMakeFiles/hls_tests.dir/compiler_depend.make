# Empty compiler generated dependencies file for hls_tests.
# This may be replaced when dependencies are built.
