# Empty compiler generated dependencies file for cgrra_tests.
# This may be replaced when dependencies are built.
