file(REMOVE_RECURSE
  "CMakeFiles/cgrra_tests.dir/cgrra/fabric_test.cpp.o"
  "CMakeFiles/cgrra_tests.dir/cgrra/fabric_test.cpp.o.d"
  "CMakeFiles/cgrra_tests.dir/cgrra/floorplan_test.cpp.o"
  "CMakeFiles/cgrra_tests.dir/cgrra/floorplan_test.cpp.o.d"
  "CMakeFiles/cgrra_tests.dir/cgrra/io_test.cpp.o"
  "CMakeFiles/cgrra_tests.dir/cgrra/io_test.cpp.o.d"
  "CMakeFiles/cgrra_tests.dir/cgrra/operation_test.cpp.o"
  "CMakeFiles/cgrra_tests.dir/cgrra/operation_test.cpp.o.d"
  "CMakeFiles/cgrra_tests.dir/cgrra/stress_test.cpp.o"
  "CMakeFiles/cgrra_tests.dir/cgrra/stress_test.cpp.o.d"
  "cgrra_tests"
  "cgrra_tests.pdb"
  "cgrra_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgrra_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
