file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/analysis_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/analysis_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/candidates_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/candidates_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/fault_recovery_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/fault_recovery_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/fig4_example_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/fig4_example_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/model_builder_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/model_builder_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/remapper_options_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/remapper_options_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/rotation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/rotation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/st_target_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/st_target_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/two_step_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/two_step_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
