
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/analysis_test.cpp" "tests/CMakeFiles/core_tests.dir/core/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/analysis_test.cpp.o.d"
  "/root/repo/tests/core/candidates_test.cpp" "tests/CMakeFiles/core_tests.dir/core/candidates_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/candidates_test.cpp.o.d"
  "/root/repo/tests/core/fault_recovery_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fault_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fault_recovery_test.cpp.o.d"
  "/root/repo/tests/core/fig4_example_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fig4_example_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fig4_example_test.cpp.o.d"
  "/root/repo/tests/core/model_builder_test.cpp" "tests/CMakeFiles/core_tests.dir/core/model_builder_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/model_builder_test.cpp.o.d"
  "/root/repo/tests/core/remapper_options_test.cpp" "tests/CMakeFiles/core_tests.dir/core/remapper_options_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/remapper_options_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/rotation_test.cpp" "tests/CMakeFiles/core_tests.dir/core/rotation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rotation_test.cpp.o.d"
  "/root/repo/tests/core/st_target_test.cpp" "tests/CMakeFiles/core_tests.dir/core/st_target_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/st_target_test.cpp.o.d"
  "/root/repo/tests/core/two_step_test.cpp" "tests/CMakeFiles/core_tests.dir/core/two_step_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/two_step_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cgraf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_aging.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_cgrra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cgraf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
