# Empty dependencies file for timing_tests.
# This may be replaced when dependencies are built.
