file(REMOVE_RECURSE
  "CMakeFiles/timing_tests.dir/timing/paths_test.cpp.o"
  "CMakeFiles/timing_tests.dir/timing/paths_test.cpp.o.d"
  "CMakeFiles/timing_tests.dir/timing/sta_property_test.cpp.o"
  "CMakeFiles/timing_tests.dir/timing/sta_property_test.cpp.o.d"
  "CMakeFiles/timing_tests.dir/timing/sta_test.cpp.o"
  "CMakeFiles/timing_tests.dir/timing/sta_test.cpp.o.d"
  "timing_tests"
  "timing_tests.pdb"
  "timing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
