file(REMOVE_RECURSE
  "CMakeFiles/aging_tests.dir/aging/mechanisms_test.cpp.o"
  "CMakeFiles/aging_tests.dir/aging/mechanisms_test.cpp.o.d"
  "CMakeFiles/aging_tests.dir/aging/mttf_test.cpp.o"
  "CMakeFiles/aging_tests.dir/aging/mttf_test.cpp.o.d"
  "CMakeFiles/aging_tests.dir/aging/nbti_test.cpp.o"
  "CMakeFiles/aging_tests.dir/aging/nbti_test.cpp.o.d"
  "aging_tests"
  "aging_tests.pdb"
  "aging_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aging_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
