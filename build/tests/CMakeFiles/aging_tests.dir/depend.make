# Empty dependencies file for aging_tests.
# This may be replaced when dependencies are built.
