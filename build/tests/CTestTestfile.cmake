# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/milp_tests[1]_include.cmake")
include("/root/repo/build/tests/cgrra_tests[1]_include.cmake")
include("/root/repo/build/tests/timing_tests[1]_include.cmake")
include("/root/repo/build/tests/thermal_tests[1]_include.cmake")
include("/root/repo/build/tests/aging_tests[1]_include.cmake")
include("/root/repo/build/tests/hls_tests[1]_include.cmake")
include("/root/repo/build/tests/workloads_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
