file(REMOVE_RECURSE
  "CMakeFiles/cgraf_cli.dir/cgraf_cli.cpp.o"
  "CMakeFiles/cgraf_cli.dir/cgraf_cli.cpp.o.d"
  "cgraf_cli"
  "cgraf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgraf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
