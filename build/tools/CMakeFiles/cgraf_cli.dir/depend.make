# Empty dependencies file for cgraf_cli.
# This may be replaced when dependencies are built.
