// Describing a custom kernel with the expression DSL (the ANSI-C entry
// point of the paper's flow, at expression granularity), then running the
// complete aging-aware flow on it.
//
// Build & run:  ./build/examples/custom_kernel_dsl
#include <cstdio>

#include "core/remapper.h"
#include "hls/expr_parser.h"
#include "hls/placer.h"
#include "hls/scheduler.h"

int main() {
  using namespace cgraf;

  // A three-lane complex-multiply/accumulate/pack kernel. '#' starts a
  // comment; '@width' sets the operator bitwidth. Three independent lanes
  // keep several PEs busy in every context, so the aging-unaware packing
  // has something to concentrate — and the re-mapper something to level.
  const char* source = R"(
    @width 16;
    # lane 0: complex multiply (a+jb)*(c+jd), accumulate, normalize, pack
    re0 = a0*c0 - b0*d0;   im0 = a0*d0 + b0*c0;
    ar0 = re0 + pr0;       ai0 = im0 + pi0;
    o0  = merge(ar0 >> 2, ai0 >> 2);
    f0  = cmp(ar0, ai0);
    # lane 1
    re1 = a1*c1 - b1*d1;   im1 = a1*d1 + b1*c1;
    ar1 = re1 + pr1;       ai1 = im1 + pi1;
    o1  = merge(ar1 >> 2, ai1 >> 2);
    f1  = cmp(ar1, ai1);
    # lane 2
    re2 = a2*c2 - b2*d2;   im2 = a2*d2 + b2*c2;
    ar2 = re2 + pr2;       ai2 = im2 + pi2;
    o2  = merge(ar2 >> 2, ai2 >> 2);
    f2  = cmp(ar2, ai2);
    # cross-lane reduction
    s01 = o0 | o1;
    out = shuffle(s01, o2);
  )";

  const hls::ParseResult parsed = hls::parse_kernel(source);
  if (!parsed.ok) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  std::printf("parsed %d ops, %d edges, %zu named values\n",
              parsed.dfg.num_nodes(), parsed.dfg.num_edges(),
              parsed.symbols.size());

  const Fabric fabric(4, 4);
  hls::ScheduleOptions sched;
  sched.num_contexts = 6;
  sched.max_ops_per_context = 12;  // leave spare PEs in every context
  const auto schedule = list_schedule(parsed.dfg, sched);
  if (!schedule.ok) {
    std::printf("schedule error: %s\n", schedule.error.c_str());
    return 1;
  }
  const Design design =
      build_design(parsed.dfg, schedule, fabric, sched.num_contexts);
  const Floorplan baseline = hls::place_baseline(design);

  core::RemapOptions opts;
  const auto result = aging_aware_remap(design, baseline, opts);
  std::printf("CPD %.3f -> %.3f ns | stress %.3f -> %.3f | MTTF %.2fx\n",
              result.cpd_before_ns, result.cpd_after_ns, result.st_max_before,
              result.st_max_after, result.mttf_gain);

  // Where did each op end up?
  std::printf("\nop placements (context: original -> remapped):\n");
  for (const Operation& op : design.ops) {
    const Point a = fabric.loc(baseline.pe_of(op.id));
    const Point b = fabric.loc(result.floorplan.pe_of(op.id));
    std::printf("  op%-2d %-7s ctx%d: (%d,%d) -> (%d,%d)%s\n", op.id,
                to_string(op.kind), op.context, a.x, a.y, b.x, b.y,
                a == b ? "" : "  *moved*");
  }
  return 0;
}
