// Full reliability report for one suite benchmark: per-context stress maps,
// accumulated stress before/after re-mapping, the thermal map, and the
// per-PE MTTF landscape.
//
// Build & run:  ./build/examples/stress_map_report [benchmark-index 0..26]
#include <cstdio>
#include <cstdlib>

#include "aging/mttf.h"
#include "cgrra/stress.h"
#include "core/remapper.h"
#include "util/ascii.h"
#include "workloads/suite.h"

int main(int argc, char** argv) {
  using namespace cgraf;
  int index = 4;  // default: B5
  if (argc > 1) {
    char* end = nullptr;
    const long v = std::strtol(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0') {
      std::printf("benchmark index must be a number, got '%s'\n", argv[1]);
      return 1;
    }
    index = static_cast<int>(v);
  }
  const auto specs = workloads::table1_specs(false);
  if (index < 0 || index >= static_cast<int>(specs.size())) {
    std::printf("benchmark index must be 0..%zu\n", specs.size() - 1);
    return 1;
  }
  const auto bench = workloads::generate_benchmark(specs[index]);
  const Design& design = bench.design;
  const int rows = design.fabric.rows();
  const int cols = design.fabric.cols();

  std::printf("benchmark %s: %d contexts, %dx%d fabric, %d ops (%s usage)\n\n",
              bench.spec.name.c_str(), bench.spec.contexts, rows, cols,
              bench.total_ops, to_string(bench.spec.band));

  const StressMap before = compute_stress(design, bench.baseline);
  std::printf("-- per-context stress (baseline, first 4 contexts) --\n");
  for (int c = 0; c < std::min(4, design.num_contexts); ++c) {
    std::printf("context %d:\n%s\n", c,
                render_heat_map(before.per_context[static_cast<size_t>(c)],
                                rows, cols)
                    .c_str());
  }

  core::RemapOptions opts;
  const auto result = aging_aware_remap(design, bench.baseline, opts);
  const StressMap after = compute_stress(design, result.floorplan);

  std::printf("-- accumulated stress --\nbaseline (max %.3f):\n%s\n",
              before.max_accumulated(),
              render_heat_map(before.accumulated, rows, cols,
                              before.max_accumulated())
                  .c_str());
  std::printf("aging-aware (max %.3f, same scale):\n%s\n",
              after.max_accumulated(),
              render_heat_map(after.accumulated, rows, cols,
                              before.max_accumulated())
                  .c_str());

  const auto& mttf0 = result.mttf_before;
  const auto& mttf1 = result.mttf_after;
  std::vector<double> dt0(mttf0.pe_temperature_k);
  for (double& t : dt0) t -= opts.thermal.ambient_k;
  std::printf("-- thermal rise over ambient, baseline (max +%.2f K) --\n%s\n",
              mttf0.max_temp_k - opts.thermal.ambient_k,
              render_heat_map(dt0, rows, cols).c_str());

  std::printf("-- summary --\n");
  std::printf("CPD              : %.3f -> %.3f ns\n", result.cpd_before_ns,
              result.cpd_after_ns);
  std::printf("max stress       : %.3f -> %.3f\n", result.st_max_before,
              result.st_max_after);
  std::printf("hottest PE       : %.2f K -> %.2f K\n", mttf0.max_temp_k,
              mttf1.max_temp_k);
  std::printf("limiting PE      : #%d (sr %.3f) -> #%d (sr %.3f)\n",
              mttf0.limiting_pe, mttf0.limiting_sr, mttf1.limiting_pe,
              mttf1.limiting_sr);
  std::printf("MTTF             : %.2f y -> %.2f y  (%.2fx)\n",
              mttf0.mttf_years, mttf1.mttf_years, result.mttf_gain);
  return 0;
}
