// Tour of the standalone MILP substrate (cgraf::milp): the library the
// floorplanner is built on is a general bounded-variable LP/MILP solver and
// can be used directly.
//
// Build & run:  ./build/examples/solver_tour
#include <cstdio>

#include "milp/branch_and_bound.h"
#include "milp/model.h"
#include "milp/simplex.h"

int main() {
  using namespace cgraf::milp;

  // --- 1. A small production-planning LP.
  //     maximize 25 x1 + 30 x2
  //     s.t.     x1/200 + x2/140 <= 40   (hours)
  //              0 <= x1 <= 6000, 0 <= x2 <= 4000
  {
    Model m;
    m.set_sense(Sense::kMaximize);
    const int x1 = m.add_continuous(0, 6000, 25);
    const int x2 = m.add_continuous(0, 4000, 30);
    m.add_le({{x1, 1.0 / 200}, {x2, 1.0 / 140}}, 40.0);
    const LpResult r = solve_lp(m);
    std::printf("LP  : %s obj=%.0f x1=%.0f x2=%.0f (%ld iterations)\n",
                to_string(r.status), r.obj, r.x[0], r.x[1], r.iterations);
  }

  // --- 2. A 0/1 knapsack MILP.
  {
    Model m;
    m.set_sense(Sense::kMaximize);
    const double value[] = {10, 13, 7, 8, 12, 5};
    const double weight[] = {5, 8, 3, 4, 7, 2};
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < 6; ++i) row.emplace_back(m.add_binary(value[i]), weight[i]);
    m.add_le(std::move(row), 15.0);
    const MipResult r = solve_milp(m);
    std::printf("MILP: %s obj=%.0f picks=", to_string(r.status), r.obj);
    for (int i = 0; i < 6; ++i) std::printf("%d", r.x[static_cast<size_t>(i)] > 0.5);
    std::printf(" (%ld nodes)\n", r.nodes);
  }

  // --- 3. Ranged rows, warm starts, and re-solves with tightened bounds.
  {
    Model m;
    const int x = m.add_continuous(0, 10, 1);
    const int y = m.add_continuous(0, 10, 2);
    m.add_constraint({{x, 1.0}, {y, 1.0}}, 4.0, 8.0);  // 4 <= x+y <= 8
    SimplexEngine engine(m);
    LpResult first = engine.solve();
    std::printf("warm: first solve obj=%.1f (%ld iterations)\n", first.obj,
                first.iterations);
    // Tighten x's bounds and re-solve from the previous basis.
    std::vector<double> lb = engine.model_lb();
    std::vector<double> ub = engine.model_ub();
    lb[static_cast<size_t>(x)] = 3.0;
    const LpResult second = engine.solve(lb, ub, &first.basis);
    std::printf("warm: re-solve  obj=%.1f (%ld iterations)\n", second.obj,
                second.iterations);
  }

  // --- 4. Infeasibility and unboundedness are first-class statuses.
  {
    Model m;
    const int x = m.add_continuous(0, 1, 1);
    m.add_ge({{x, 1.0}}, 2.0);
    std::printf("edge: %s (expected infeasible)\n",
                to_string(solve_lp(m).status));
    Model u;
    u.set_sense(Sense::kMaximize);
    u.add_continuous(0, kInf, 1);
    std::printf("edge: %s (expected unbounded)\n",
                to_string(solve_lp(u).status));
  }
  return 0;
}
