// Quickstart: the full CGRAF pipeline on a FIR filter kernel.
//
//   DFG  ->  list schedule into contexts  ->  aging-unaware baseline
//   placement (musketeer_lite)  ->  aging-aware MILP re-mapping  ->  MTTF.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "cgrra/stress.h"
#include "core/remapper.h"
#include "hls/placer.h"
#include "hls/scheduler.h"
#include "workloads/kernels.h"

int main() {
  using namespace cgraf;

  // 1. A behavioral kernel: 24-tap FIR filter (post-HLS dataflow graph).
  const hls::Dfg dfg = workloads::fir_filter(/*taps=*/24, /*bitwidth=*/16);
  std::printf("kernel: 24-tap FIR, %d ops, %d edges, depth %d\n",
              dfg.num_nodes(), dfg.num_edges(), dfg.depth());

  // 2. Target fabric: 4x4 PEs at 200 MHz. With 16 PEs per cycle the 47-op
  // filter needs several contexts — the time-multiplexing that makes the
  // baseline flow pile stress onto the same corner PEs every cycle.
  // Lighter chaining (shorter combinational chains per cycle) trades a
  // couple of latency cycles for timing slack — exactly the slack the
  // aging-aware re-mapper converts into stress balance.
  const Fabric fabric(4, 4);
  hls::ScheduleOptions sched_opts;
  sched_opts.num_contexts = 8;
  sched_opts.max_ops_per_context = 12;  // keep spare PEs in every cycle
  sched_opts.chain_budget_frac = 0.45;
  const hls::ScheduleResult schedule = list_schedule(dfg, sched_opts);
  if (!schedule.ok) {
    std::printf("scheduling failed: %s\n", schedule.error.c_str());
    return 1;
  }
  const Design design =
      build_design(dfg, schedule, fabric, sched_opts.num_contexts);
  std::printf("scheduled into %d contexts\n", schedule.contexts_used);

  // 3. Aging-unaware baseline placement (the commercial-flow stand-in).
  const Floorplan baseline = hls::place_baseline(design);
  const StressMap stress = compute_stress(design, baseline);
  std::printf("baseline: max accumulated stress %.3f (fabric avg %.3f)\n",
              stress.max_accumulated(), stress.avg_accumulated());

  // 4. Aging-aware re-mapping (Algorithm 1, Rotate variant).
  core::RemapOptions opts;
  const core::RemapResult result = aging_aware_remap(design, baseline, opts);

  std::printf("\n== result ==\n");
  std::printf("CPD: %.3f ns -> %.3f ns (clock %.1f ns)  [must not grow]\n",
              result.cpd_before_ns, result.cpd_after_ns,
              fabric.clock_period_ns());
  std::printf("max stress: %.3f -> %.3f\n", result.st_max_before,
              result.st_max_after);
  std::printf("MTTF: %.2f years -> %.2f years  =>  %.2fx\n",
              result.mttf_before.mttf_years, result.mttf_after.mttf_years,
              result.mttf_gain);
  std::printf("(%s)\n", result.note.c_str());
  return 0;
}
