// Fault recovery: when the most-stressed PE finally wears out, re-map the
// design around it — the paper's lifetime-extension story taken to its
// natural next step (cf. module diversification, Zhang et al. [4]).
//
// Build & run:  ./build/examples/fault_recovery
#include <cstdio>

#include "cgrra/stress.h"
#include "core/remapper.h"
#include "util/ascii.h"
#include "workloads/suite.h"

int main() {
  using namespace cgraf;

  workloads::BenchmarkSpec spec;
  spec.name = "victim";
  spec.contexts = 6;
  spec.fabric_dim = 5;
  spec.usage = 0.45;
  spec.seed = 2026;
  const auto bench = workloads::generate_benchmark(spec);
  const Design& design = bench.design;

  const StressMap stress = compute_stress(design, bench.baseline);
  const int victim = stress.argmax();
  const Point loc = design.fabric.loc(victim);
  std::printf("design: %d ops, %d contexts, %dx%d fabric\n", bench.total_ops,
              design.num_contexts, design.fabric.rows(),
              design.fabric.cols());
  std::printf("PE %d at (%d,%d) carries the peak accumulated stress %.3f "
              "and has worn out.\n\n",
              victim, loc.x, loc.y, stress.max_accumulated());

  core::RemapOptions opts;
  opts.blocked_pes = {victim};
  const core::RemapResult result =
      aging_aware_remap(design, bench.baseline, opts);

  std::printf("recovery: %s\n", result.note.c_str());
  std::printf("CPD %.3f -> %.3f ns (held)\n", result.cpd_before_ns,
              result.cpd_after_ns);
  std::printf("max stress %.3f -> %.3f | MTTF of the surviving fabric: "
              "%.2f -> %.2f years\n\n",
              result.st_max_before, result.st_max_after,
              result.mttf_before.mttf_years, result.mttf_after.mttf_years);

  const StressMap after = compute_stress(design, result.floorplan);
  std::printf("stress map after recovery ('%c' marks the dead PE):\n", 'X');
  std::string map = render_heat_map(after.accumulated, design.fabric.rows(),
                                    design.fabric.cols());
  // Overlay the victim position (row-major, 2 chars per cell).
  const std::size_t pos = static_cast<std::size_t>(loc.y) *
                              (2 * static_cast<std::size_t>(
                                       design.fabric.cols()) + 1) +
                          2 * static_cast<std::size_t>(loc.x);
  if (pos < map.size()) map[pos] = 'X';
  std::printf("%s\n", map.c_str());

  bool victim_used = false;
  for (const Operation& op : design.ops)
    victim_used |= result.floorplan.pe_of(op.id) == victim;
  std::printf("dead PE hosts ops after recovery: %s\n",
              victim_used ? "YES (recovery failed)" : "no");
  return victim_used ? 1 : 0;
}
