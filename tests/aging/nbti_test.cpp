#include "aging/nbti.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cgraf::aging {
namespace {

TEST(Nbti, ZeroStressNeverShiftsNorFails) {
  const NbtiParams p;
  EXPECT_DOUBLE_EQ(vth_shift_v(p, 0.0, 350.0, 1e9), 0.0);
  EXPECT_TRUE(std::isinf(mttf_seconds(p, 0.0, 350.0)));
}

TEST(Nbti, ShiftGrowsWithTime) {
  const NbtiParams p;
  const double v1 = vth_shift_v(p, 0.5, 350.0, 1e6);
  const double v2 = vth_shift_v(p, 0.5, 350.0, 1e7);
  EXPECT_GT(v2, v1);
  EXPECT_GT(v1, 0.0);
}

TEST(Nbti, ShiftFollowsPowerLawInTime) {
  const NbtiParams p;
  const double v1 = vth_shift_v(p, 0.5, 350.0, 1e6);
  const double v10 = vth_shift_v(p, 0.5, 350.0, 1e7);
  EXPECT_NEAR(v10 / v1, std::pow(10.0, p.n), 1e-9);
}

TEST(Nbti, HotterIsWorse) {
  const NbtiParams p;
  EXPECT_GT(vth_shift_v(p, 0.5, 360.0, 1e7), vth_shift_v(p, 0.5, 340.0, 1e7));
  EXPECT_LT(mttf_seconds(p, 0.5, 360.0), mttf_seconds(p, 0.5, 340.0));
}

TEST(Nbti, MttfInvertsTheShiftEquation) {
  // At t = MTTF the shift equals the failure threshold exactly.
  const NbtiParams p;
  for (const double sr : {0.1, 0.4, 0.9}) {
    for (const double temp : {330.0, 350.0, 370.0}) {
      const double mttf = mttf_seconds(p, sr, temp);
      ASSERT_TRUE(std::isfinite(mttf));
      const double shift = vth_shift_v(p, sr, temp, mttf);
      EXPECT_NEAR(shift, p.fail_shift_frac * p.vth0_v,
                  1e-9 * p.fail_shift_frac * p.vth0_v);
    }
  }
}

TEST(Nbti, MttfInverselyProportionalToStressRate) {
  // The time exponent n cancels in stress ratios: t ~ 1/SR (paper Fig 2b).
  const NbtiParams p;
  const double t1 = mttf_seconds(p, 0.2, 350.0);
  const double t2 = mttf_seconds(p, 0.4, 350.0);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
}

TEST(Nbti, CalibrationGivesPlausibleLifetime) {
  // At the thermal model's actual operating point (hot PEs sit a few K
  // above the 318 K ambient) a ~30% duty cycle should fail in O(years),
  // not hours or millennia. Note the 1/n-amplified Arrhenius term makes
  // absolute MTTF swing orders of magnitude per 10 K, which is why only
  // the before/after ratio is reported in Table I.
  const NbtiParams p;
  const double years = mttf_seconds(p, 0.3, 321.0) / kSecondsPerYear;
  EXPECT_GT(years, 0.05);
  EXPECT_LT(years, 1000.0);
}

TEST(Nbti, TemperatureSensitivityAmplifiedByExponent) {
  // d(ln MTTF)/dT = -Ea / (n k T^2): check the finite-difference ratio.
  const NbtiParams p;
  const double t = 350.0;
  const double dt = 0.01;
  const double lhs = (std::log(mttf_seconds(p, 0.5, t + dt)) -
                      std::log(mttf_seconds(p, 0.5, t - dt))) /
                     (2 * dt);
  const double expected = -p.ea_ev / (p.n * p.boltzmann_ev * t * t);
  EXPECT_NEAR(lhs, expected, std::abs(expected) * 1e-4);
}

}  // namespace
}  // namespace cgraf::aging
