#include "aging/mechanisms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cgraf::aging {
namespace {

TEST(Hci, ZeroActivityNeverFails) {
  const HciParams p;
  EXPECT_DOUBLE_EQ(hci_shift_v(p, 0.0, 320.0, 1e9), 0.0);
  EXPECT_TRUE(std::isinf(hci_mttf_seconds(p, 0.0, 320.0)));
}

TEST(Hci, MttfInvertsShift) {
  const HciParams p;
  for (const double sr : {0.1, 0.5, 1.0}) {
    const double mttf = hci_mttf_seconds(p, sr, 320.0);
    ASSERT_TRUE(std::isfinite(mttf));
    EXPECT_NEAR(hci_shift_v(p, sr, 320.0, mttf),
                p.fail_shift_frac * p.vth0_v,
                1e-9 * p.fail_shift_frac * p.vth0_v);
  }
}

TEST(Hci, ColdIsWorseUnlikeNbti) {
  // HCI's negative activation energy: degradation grows as T falls.
  const HciParams p;
  EXPECT_LT(hci_mttf_seconds(p, 0.5, 300.0), hci_mttf_seconds(p, 0.5, 340.0));
  const NbtiParams nbti;
  EXPECT_GT(mttf_seconds(nbti, 0.5, 300.0), mttf_seconds(nbti, 0.5, 340.0));
}

TEST(Hci, FasterClockAgesFaster) {
  HciParams slow;
  slow.clock_hz = 100e6;
  HciParams fast;
  fast.clock_hz = 400e6;
  EXPECT_GT(hci_mttf_seconds(slow, 0.5, 320.0),
            hci_mttf_seconds(fast, 0.5, 320.0));
}

TEST(Hci, SqrtTimeLaw) {
  const HciParams p;
  const double v1 = hci_shift_v(p, 0.5, 320.0, 1e6);
  const double v4 = hci_shift_v(p, 0.5, 320.0, 4e6);
  EXPECT_NEAR(v4 / v1, 2.0, 1e-9);  // n = 0.5
}

TEST(Em, BlacksEquationShape) {
  const EmParams p;
  // Quadratic current dependence.
  const double t1 = em_mttf_seconds(p, 0.2, 320.0);
  const EmParams q = p;
  const double j1 = p.j_leak + p.j_active * 0.2;
  // Doubling J through activity: find sr2 with j2 = 2*j1.
  const double sr2 = (2 * j1 - p.j_leak) / p.j_active;
  const double t2 = em_mttf_seconds(q, sr2, 320.0);
  EXPECT_NEAR(t1 / t2, 4.0, 1e-9);
  // Hotter is much worse (positive Ea in Black's equation).
  EXPECT_GT(em_mttf_seconds(p, 0.5, 310.0), em_mttf_seconds(p, 0.5, 330.0));
}

TEST(Em, LeakageOnlyPeStillAges) {
  const EmParams p;
  EXPECT_TRUE(std::isfinite(em_mttf_seconds(p, 0.0, 320.0)));
}

TEST(Combined, PlausibleCalibrationOrdering) {
  // At the model's operating point NBTI dominates (fails first), with HCI
  // and EM within a couple of orders of magnitude — not instantaneous,
  // not irrelevant.
  const HciParams hci;
  const NbtiParams nbti;
  const EmParams em;
  const double t_n = mttf_seconds(nbti, 0.3, 321.0);
  const double t_h = hci_mttf_seconds(hci, 0.3, 321.0);
  const double t_e = em_mttf_seconds(em, 0.3, 321.0);
  EXPECT_LT(t_n, t_h);
  EXPECT_LT(t_n, t_e);
  EXPECT_LT(t_h, 1e4 * t_n);
  EXPECT_LT(t_e, 1e4 * t_n);
}

Design packed_design() {
  Design d{Fabric(4, 4), 4, {}, {}};
  for (int c = 0; c < 4; ++c) {
    Operation op;
    op.id = c;
    op.kind = OpKind::kMux;
    op.context = c;
    d.ops.push_back(op);
  }
  return d;
}

TEST(Combined, CompetingRisksTakeTheMinimum) {
  const Design d = packed_design();
  const Floorplan fp{{5, 5, 5, 5}};
  CombinedAgingParams params;
  const CombinedMttfReport r = compute_mttf_combined(d, fp, params);
  EXPECT_EQ(r.limiting_pe, 5);
  const double expected = std::min(
      {r.nbti_mttf_seconds, r.hci_mttf_seconds, r.em_mttf_seconds});
  EXPECT_DOUBLE_EQ(r.mttf_seconds, expected);
  EXPECT_GT(r.mttf_years, 0.0);
}

TEST(Combined, DisablingMechanismsChangesTheLimit) {
  const Design d = packed_design();
  const Floorplan fp{{5, 5, 5, 5}};
  CombinedAgingParams nbti_only;
  nbti_only.enable_hci = false;
  nbti_only.enable_em = false;
  const auto r = compute_mttf_combined(d, fp, nbti_only);
  EXPECT_EQ(r.limiting_mechanism, Mechanism::kNbti);
  // Matches the single-mechanism NBTI report exactly.
  const MttfReport nbti_report = compute_mttf(d, fp);
  EXPECT_NEAR(r.mttf_seconds, nbti_report.mttf_seconds,
              1e-9 * nbti_report.mttf_seconds);
}

TEST(Combined, BalancingHelpsEveryMechanism) {
  const Design d = packed_design();
  const CombinedMttfReport packed =
      compute_mttf_combined(d, Floorplan{{0, 0, 0, 0}});
  const CombinedMttfReport spread =
      compute_mttf_combined(d, Floorplan{{0, 3, 12, 15}});
  EXPECT_GT(spread.nbti_mttf_seconds, packed.nbti_mttf_seconds);
  EXPECT_GT(spread.hci_mttf_seconds, packed.hci_mttf_seconds);
  EXPECT_GT(spread.em_mttf_seconds, packed.em_mttf_seconds);
  EXPECT_GT(spread.mttf_seconds, packed.mttf_seconds);
}

TEST(Combined, MechanismNames) {
  EXPECT_STREQ(to_string(Mechanism::kNbti), "NBTI");
  EXPECT_STREQ(to_string(Mechanism::kHci), "HCI");
  EXPECT_STREQ(to_string(Mechanism::kEm), "EM");
}

}  // namespace
}  // namespace cgraf::aging
