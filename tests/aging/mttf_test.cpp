#include "aging/mttf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cgraf::aging {
namespace {

Design packed_design() {
  // 4 contexts, each with one DMU op; two floorplans will differ only in
  // how the four ops share PEs.
  Design d{Fabric(4, 4), 4, {}, {}};
  for (int c = 0; c < 4; ++c) {
    Operation op;
    op.id = c;
    op.kind = OpKind::kMux;
    op.context = c;
    d.ops.push_back(op);
  }
  return d;
}

TEST(Mttf, ReportFieldsAreConsistent) {
  const Design d = packed_design();
  const MttfReport r = compute_mttf(d, Floorplan{{0, 0, 0, 0}});
  ASSERT_GE(r.limiting_pe, 0);
  EXPECT_TRUE(std::isfinite(r.mttf_seconds));
  EXPECT_NEAR(r.mttf_years, r.mttf_seconds / kSecondsPerYear, 1e-9);
  EXPECT_EQ(r.pe_mttf_seconds.size(), 16u);
  EXPECT_EQ(r.pe_temperature_k.size(), 16u);
  // The limiting PE achieves the fabric MTTF.
  EXPECT_DOUBLE_EQ(r.pe_mttf_seconds[static_cast<size_t>(r.limiting_pe)],
                   r.mttf_seconds);
  for (const double t : r.pe_mttf_seconds) EXPECT_GE(t, r.mttf_seconds);
}

TEST(Mttf, LimitingPeIsThePackedOne) {
  const Design d = packed_design();
  const MttfReport r = compute_mttf(d, Floorplan{{5, 5, 5, 5}});
  EXPECT_EQ(r.limiting_pe, 5);
  EXPECT_NEAR(r.limiting_sr, 3.14 / 5.0, 1e-9);  // 4 * dmu / 4 contexts
}

TEST(Mttf, BalancedFloorplanLivesLonger) {
  const Design d = packed_design();
  const MttfReport packed = compute_mttf(d, Floorplan{{0, 0, 0, 0}});
  const MttfReport spread = compute_mttf(d, Floorplan{{0, 3, 12, 15}});
  EXPECT_GT(spread.mttf_seconds, packed.mttf_seconds);
  // Stress ratio alone is 4x; the thermal term adds a little more.
  EXPECT_GT(spread.mttf_seconds / packed.mttf_seconds, 3.9);
}

TEST(Mttf, UnstressedPesNeverFail) {
  const Design d = packed_design();
  const MttfReport r = compute_mttf(d, Floorplan{{0, 0, 0, 0}});
  EXPECT_TRUE(std::isinf(r.pe_mttf_seconds[15]));
}

TEST(Mttf, HotterAmbientShortensLife) {
  const Design d = packed_design();
  thermal::ThermalParams cool;
  thermal::ThermalParams hot;
  hot.ambient_k = cool.ambient_k + 20.0;
  const MttfReport rc = compute_mttf(d, Floorplan{{0, 0, 0, 0}}, {}, cool);
  const MttfReport rh = compute_mttf(d, Floorplan{{0, 0, 0, 0}}, {}, hot);
  EXPECT_LT(rh.mttf_seconds, rc.mttf_seconds);
}

TEST(Mttf, StressMapIsEmbedded) {
  const Design d = packed_design();
  const MttfReport r = compute_mttf(d, Floorplan{{0, 1, 2, 3}});
  EXPECT_NEAR(r.stress.accumulated[0], 3.14 / 5.0, 1e-9);
  EXPECT_NEAR(r.stress.max_accumulated(), 3.14 / 5.0, 1e-9);
}

}  // namespace
}  // namespace cgraf::aging
