// Adversarial-input limits of obs::parse_json: nesting depth and input
// size, both configurable via JsonLimits and both reported with the byte
// offset the parser stopped at.
#include <gtest/gtest.h>

#include <string>

#include "obs/json_reader.h"

namespace cgraf::obs {
namespace {

std::string nested_arrays(int depth) {
  std::string s;
  for (int i = 0; i < depth; ++i) s += '[';
  s += '1';
  for (int i = 0; i < depth; ++i) s += ']';
  return s;
}

TEST(JsonLimits, DefaultDepthLimitRejectsPathologicalNesting) {
  JsonValue v;
  std::string error;
  // 255 levels fit under the default 256; 100k levels must be rejected by
  // the limit, not by running out of stack.
  EXPECT_TRUE(parse_json(nested_arrays(255), &v, &error)) << error;
  EXPECT_FALSE(parse_json(nested_arrays(100000), &v, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);
  EXPECT_NE(error.find("at offset"), std::string::npos);
}

TEST(JsonLimits, CustomDepthLimit) {
  JsonLimits limits;
  limits.max_depth = 4;
  JsonValue v;
  std::string error;
  // Every value counts as a level, the innermost scalar included: three
  // arrays plus the scalar fit in 4 levels, four arrays do not.
  EXPECT_TRUE(parse_json(nested_arrays(3), &v, &error, limits)) << error;
  EXPECT_FALSE(parse_json(nested_arrays(4), &v, &error, limits));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);
  // The offset pins the failure to the value that crossed the limit.
  EXPECT_NE(error.find("at offset 4"), std::string::npos);
}

TEST(JsonLimits, DepthCountsObjectsToo) {
  JsonLimits limits;
  limits.max_depth = 2;
  JsonValue v;
  std::string error;
  EXPECT_TRUE(parse_json(R"({"a":1})", &v, &error, limits)) << error;
  EXPECT_FALSE(parse_json(R"({"a":{"b":1}})", &v, &error, limits));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);
}

TEST(JsonLimits, InputSizeLimit) {
  JsonLimits limits;
  limits.max_input_bytes = 64;
  JsonValue v;
  std::string error;
  const std::string small = R"({"k":")" + std::string(10, 'x') + "\"}";
  EXPECT_TRUE(parse_json(small, &v, &error, limits)) << error;
  const std::string big = R"({"k":")" + std::string(100, 'x') + "\"}";
  EXPECT_FALSE(parse_json(big, &v, &error, limits));
  EXPECT_NE(error.find("byte limit"), std::string::npos);
}

TEST(JsonLimits, DepthResetsBetweenSiblings) {
  // Sibling values must not accumulate depth: 3 parallel two-level arrays
  // are fine under max_depth 3 (array + array + the outer list).
  JsonLimits limits;
  limits.max_depth = 3;
  JsonValue v;
  std::string error;
  EXPECT_TRUE(parse_json("[[1],[2],[3]]", &v, &error, limits)) << error;
}

}  // namespace
}  // namespace cgraf::obs
