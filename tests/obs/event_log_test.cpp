// EventLog: record shape, per-thread ordering, flush semantics, reopen
// behavior, and a TSan-friendly stress test (EventLogStress) with real
// parallel branch & bound workers feeding one log.
#include "obs/event_log.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "json_check.h"
#include "milp/branch_and_bound.h"
#include "milp/model.h"
#include "obs/json_reader.h"
#include "util/rng.h"

namespace cgraf::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

TEST(EventLog, HeaderAndRecordShape) {
  EventLog log;
  log.open_memory();
  {
    Event ev(&log, "lp.solve");
    ASSERT_TRUE(ev.active());
    ev.arg("iterations", 12L)
        .arg("obj", 1.5)
        .arg("warm_used", true)
        .arg("status", "optimal");
  }
  log.close();
  const auto lines = lines_of(log.memory_contents());
  ASSERT_EQ(lines.size(), 2u);

  std::string why;
  for (const auto& line : lines)
    EXPECT_TRUE(test::JsonChecker::valid(line, &why)) << why << "\n" << line;

  JsonValue header;
  std::string err;
  ASSERT_TRUE(parse_json(lines[0], &header, &err)) << err;
  EXPECT_EQ(header.str_or("type", ""), "log.header");
  EXPECT_EQ(header.int_or("schema", 0), kEventLogSchemaVersion);
  EXPECT_FALSE(header.str_or("compiler", "").empty());
  EXPECT_FALSE(header.str_or("git_sha", "").empty());

  JsonValue rec;
  ASSERT_TRUE(parse_json(lines[1], &rec, &err)) << err;
  EXPECT_EQ(rec.str_or("type", ""), "lp.solve");
  EXPECT_EQ(rec.int_or("iterations", -1), 12);
  EXPECT_DOUBLE_EQ(rec.num_or("obj", 0.0), 1.5);
  EXPECT_TRUE(rec.bool_or("warm_used", false));
  EXPECT_EQ(rec.str_or("status", ""), "optimal");
  EXPECT_GE(rec.num_or("t", -1.0), 0.0);
  EXPECT_GE(rec.int_or("tid", -1), 0);
}

TEST(EventLog, NonFiniteArgsBecomeNull) {
  EventLog log;
  log.open_memory();
  {
    Event ev(&log, "x");
    ev.arg("nan", std::nan(""))
        .arg("inf", std::numeric_limits<double>::infinity())
        .arg("fine", 2.0);
  }
  log.close();
  const std::string text = log.memory_contents();
  EXPECT_NE(text.find("\"nan\":null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"inf\":null"), std::string::npos) << text;
  EXPECT_NE(text.find("\"fine\":2"), std::string::npos) << text;
}

TEST(EventLog, StringArgsAreEscaped) {
  EventLog log;
  log.open_memory();
  {
    Event ev(&log, "x");
    ev.arg("s", std::string("a\"b\\c\nd"));
  }
  log.close();
  const auto lines = lines_of(log.memory_contents());
  ASSERT_EQ(lines.size(), 2u);
  std::string why;
  EXPECT_TRUE(test::JsonChecker::valid(lines[1], &why)) << why;
  JsonValue rec;
  std::string err;
  ASSERT_TRUE(parse_json(lines[1], &rec, &err)) << err;
  EXPECT_EQ(rec.str_or("s", ""), "a\"b\\c\nd");
}

TEST(EventLog, DisabledLogEmitsNothing) {
  EventLog log;
  {
    Event ev(&log, "x");
    EXPECT_FALSE(ev.active());
    ev.arg("k", 1L);
  }
  log.open_memory();
  log.close();
  // Only the header from the open/close cycle; the pre-open event is gone.
  const auto lines = lines_of(log.memory_contents());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("log.header"), std::string::npos);
}

TEST(EventLog, PerThreadOrderIsPreserved) {
  EventLog log;
  log.open_memory();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&log, w] {
      for (int i = 0; i < kPerThread; ++i) {
        Event ev(&log, "seq");
        ev.arg("w", static_cast<long>(w)).arg("i", static_cast<long>(i));
      }
    });
  }
  for (auto& t : workers) t.join();
  log.close();

  // Per tid, the "i" sequence must be strictly increasing: a thread's own
  // records never reorder, whatever the interleaving across threads.
  std::map<long, long> last_seen;  // tid -> last i
  long total = 0;
  for (const auto& line : lines_of(log.memory_contents())) {
    JsonValue rec;
    std::string err;
    ASSERT_TRUE(parse_json(line, &rec, &err)) << err << "\n" << line;
    if (rec.str_or("type", "") != "seq") continue;
    ++total;
    const long tid = rec.int_or("tid", -1);
    const long i = rec.int_or("i", -1);
    const auto it = last_seen.find(tid);
    if (it != last_seen.end())
      EXPECT_GT(i, it->second) << "tid " << tid << " reordered";
    last_seen[tid] = i;
  }
  EXPECT_EQ(total, static_cast<long>(kThreads) * kPerThread);
}

TEST(EventLog, FlushOnCloseCollectsExitedThreads) {
  // A thread writes less than the auto-flush threshold and exits; close()
  // must still drain its buffer (the log owns the buffers, not the thread).
  EventLog log;
  log.open_memory();
  std::thread([&log] {
    Event ev(&log, "from_dead_thread");
    ev.arg("k", 7L);
  }).join();
  log.close();
  EXPECT_NE(log.memory_contents().find("from_dead_thread"),
            std::string::npos);
}

TEST(EventLog, FlushWhileEnabledPreservesSubsequentEmission) {
  EventLog log;
  log.open_memory();
  { Event(&log, "before"); }
  log.flush();
  EXPECT_NE(log.memory_contents().find("before"), std::string::npos);
  { Event(&log, "after"); }
  log.close();
  const std::string text = log.memory_contents();
  EXPECT_NE(text.find("after"), std::string::npos);
  EXPECT_LT(text.find("before"), text.find("after"));
}

TEST(EventLog, ReopenStartsAFreshStream) {
  EventLog log;
  log.open_memory();
  { Event(&log, "first_session"); }
  log.close();
  const std::string first = log.memory_contents();
  EXPECT_NE(first.find("first_session"), std::string::npos);

  log.open_memory();
  { Event(&log, "second_session"); }
  log.close();
  const std::string second = log.memory_contents();
  EXPECT_NE(second.find("second_session"), std::string::npos);
  EXPECT_EQ(second.find("first_session"), std::string::npos)
      << "reopen must not leak records from the previous session";
}

TEST(EventLog, FileSinkWritesJsonl) {
  char path_buf[] = "/tmp/cgraf_event_log_test_XXXXXX";
  const int fd = mkstemp(path_buf);
  ASSERT_GE(fd, 0);
  ::close(fd);
  const std::string path(path_buf);

  EventLog log;
  std::string error;
  ASSERT_TRUE(log.open(path, &error)) << error;
  { Event(&log, "on_disk").arg("k", 1L); }
  log.close();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[1024];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_NE(text.find("log.header"), std::string::npos);
  EXPECT_NE(text.find("on_disk"), std::string::npos);
  for (const auto& line : lines_of(text)) {
    if (line.empty()) continue;
    std::string why;
    EXPECT_TRUE(test::JsonChecker::valid(line, &why)) << why << "\n" << line;
  }
}

TEST(EventLog, OpenFailureReportsError) {
  EventLog log;
  std::string error;
  EXPECT_FALSE(log.open("/nonexistent_dir_zz/x.jsonl", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(log.enabled());
}

// A small but genuinely fractional MILP: maximize sum x_i with pairwise
// coupling rows, so branch & bound opens a real tree.
milp::Model stress_model(std::uint64_t seed, int n) {
  Rng rng(seed);
  milp::Model m;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i)
    vars.push_back(m.add_binary(0.5 + rng.next_double()));
  for (int i = 0; i + 2 < n; ++i) {
    m.add_le({{vars[static_cast<std::size_t>(i)], 1.0},
              {vars[static_cast<std::size_t>(i + 1)], 1.0},
              {vars[static_cast<std::size_t>(i + 2)], 1.0}},
             2.0);
  }
  return m;
}

// Named so the CI TSan lane's filter picks it up: parallel B&B workers all
// appending to one shared EventLog while another thread flushes
// concurrently.
TEST(EventLogStress, ParallelBnbWorkersShareOneLog) {
  EventLog log;
  log.open_memory();

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_relaxed)) log.flush();
  });

  const milp::Model m = stress_model(17, 18);
  milp::MipOptions opts;
  opts.events = &log;
  opts.num_threads = 4;
  const milp::MipResult res = milp::solve_milp(m, opts);
  EXPECT_TRUE(res.has_solution());

  stop.store(true, std::memory_order_relaxed);
  flusher.join();
  log.close();

  // The stream survives the concurrency intact: every line valid JSON, and
  // exactly one bnb.node record per counted node.
  long node_records = 0;
  for (const auto& line : lines_of(log.memory_contents())) {
    JsonValue rec;
    std::string err;
    ASSERT_TRUE(parse_json(line, &rec, &err)) << err << "\n" << line;
    if (rec.str_or("type", "") == "bnb.node") ++node_records;
  }
  EXPECT_EQ(node_records, res.nodes);
}

TEST(EventLogStress, CloseRacesWithEmitters) {
  // Emitters keep firing while the log is closed and reopened; no crash,
  // no torn lines. (Drop-after-disable is expected and fine.)
  EventLog log;
  log.open_memory();
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      long i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Event ev(&log, "race");
        ev.arg("i", i++);
      }
    });
  }
  for (int cycle = 0; cycle < 20; ++cycle) {
    log.close();
    log.open_memory();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();
  log.close();
  for (const auto& line : lines_of(log.memory_contents())) {
    if (line.empty()) continue;
    std::string why;
    ASSERT_TRUE(test::JsonChecker::valid(line, &why)) << why << "\n" << line;
  }
}

}  // namespace
}  // namespace cgraf::obs
