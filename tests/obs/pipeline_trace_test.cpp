// End-to-end tracing through the real pipeline: runs the aging-aware
// remapper and the parallel branch & bound with the global tracer enabled
// and asserts the promised spans appear (the acceptance contract of the
// observability subsystem).
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "core/remapper.h"
#include "milp/branch_and_bound.h"
#include "milp/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "workloads/suite.h"

#include "json_check.h"

namespace cgraf {
namespace {

// Guard that always leaves the global tracer disabled, even on test failure.
struct GlobalTraceScope {
  GlobalTraceScope() { obs::Tracer::global().enable(); }
  ~GlobalTraceScope() {
    obs::Tracer::global().disable();
    obs::Tracer::global().clear();
  }
};

std::multiset<std::string_view> span_names() {
  std::multiset<std::string_view> names;
  for (const auto& ev : obs::Tracer::global().snapshot())
    names.insert(ev.name);
  return names;
}

// A small ops x pes assignment MILP (the shape the floorplanner emits).
milp::Model assignment_model(int ops, int pes, std::uint64_t seed) {
  Rng rng(seed);
  milp::Model m;
  std::vector<std::vector<int>> vars(static_cast<size_t>(ops));
  std::vector<double> stress(static_cast<size_t>(ops));
  double total = 0.0;
  for (int j = 0; j < ops; ++j) {
    stress[static_cast<size_t>(j)] = 0.2 + 0.6 * rng.next_double();
    total += stress[static_cast<size_t>(j)];
    std::vector<std::pair<int, double>> row;
    for (int k = 0; k < pes; ++k) {
      const int v = m.add_binary(rng.next_double());
      vars[static_cast<size_t>(j)].push_back(v);
      row.emplace_back(v, 1.0);
    }
    m.add_eq(std::move(row), 1.0);
  }
  const double cap = std::max(1.3 * total / pes, 0.85);
  for (int k = 0; k < pes; ++k) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < ops; ++j)
      row.emplace_back(vars[static_cast<size_t>(j)][static_cast<size_t>(k)],
                       stress[static_cast<size_t>(j)]);
    m.add_le(std::move(row), cap);
  }
  return m;
}

TEST(PipelineTrace, RemapEmitsPromisedSpans) {
  workloads::BenchmarkSpec spec;
  spec.name = "trace-smoke";
  spec.contexts = 4;
  spec.fabric_dim = 4;
  spec.usage = 0.5;
  spec.seed = 11;
  const auto bench = workloads::generate_benchmark(spec);

  GlobalTraceScope scope;
  core::RemapOptions opts;
  opts.mode = core::RemapMode::kFreeze;
  const core::RemapResult result =
      aging_aware_remap(bench.design, bench.baseline, opts);
  obs::Tracer::global().disable();

  const auto names = span_names();
  EXPECT_EQ(names.count("remap"), 1u);
  EXPECT_GE(names.count("remap.attempt"), 1u);
  EXPECT_EQ(names.count("st_target.search"), 1u);
  EXPECT_GE(names.count("st_target.probe"), 1u);
  EXPECT_GE(names.count("two_step.solve"), 1u);
  EXPECT_GE(names.count("timing.sta"), 1u);

  // The attempt spans carry the probed st_target and the verdict.
  bool saw_attempt_args = false;
  for (const auto& ev : obs::Tracer::global().snapshot()) {
    if (std::string_view(ev.name) != "remap.attempt") continue;
    EXPECT_NE(ev.args.find("\"st_target\":"), std::string::npos);
    EXPECT_NE(ev.args.find("\"status\":"), std::string::npos);
    EXPECT_NE(ev.args.find("\"cpd_ok\":"), std::string::npos);
    saw_attempt_args = true;
  }
  EXPECT_TRUE(saw_attempt_args);

  std::string why;
  EXPECT_TRUE(
      test::JsonChecker::valid(obs::Tracer::global().to_json(), &why))
      << why;
  (void)result;
}

TEST(PipelineTrace, ParallelBnbWorkersGetSeparateLanes) {
  const milp::Model m = assignment_model(14, 6, 3);

  GlobalTraceScope scope;
  milp::MipOptions opts;
  opts.num_threads = 2;
  const milp::MipResult res = milp::solve_milp(m, opts);
  obs::Tracer::global().disable();
  ASSERT_TRUE(res.has_solution());
  EXPECT_EQ(res.threads_used, 2);

  std::set<int> worker_tids;
  for (const auto& ev : obs::Tracer::global().snapshot())
    if (std::string_view(ev.name) == "bnb.worker") worker_tids.insert(ev.tid);
  EXPECT_GE(worker_tids.size(), 2u);

  // Worker lanes are labeled for the trace viewer.
  EXPECT_NE(obs::Tracer::global().to_json().find("bnb-worker-1"),
            std::string::npos);
}

TEST(PipelineTrace, MetricsAccumulateDuringSolve) {
  obs::Metrics& metrics = obs::Metrics::global();
  const long solves_before = metrics.counter("bnb.solves").value();
  const long nodes_before = metrics.counter("bnb.nodes").value();

  const milp::Model m = assignment_model(10, 5, 4);
  const milp::MipResult res = milp::solve_milp(m, {});
  ASSERT_TRUE(res.has_solution());

  EXPECT_EQ(metrics.counter("bnb.solves").value(), solves_before + 1);
  EXPECT_GE(metrics.counter("bnb.nodes").value(), nodes_before + res.nodes);
  std::string why;
  EXPECT_TRUE(test::JsonChecker::valid(metrics.to_json(), &why)) << why;
}

}  // namespace
}  // namespace cgraf
