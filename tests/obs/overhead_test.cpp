// Regression test for the tracer's disabled fast path: creating spans and
// annotating them while tracing is off must not allocate. Lives in its own
// binary because it replaces global operator new/delete to count heap
// activity, which would perturb every other test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

std::atomic<long> g_allocations{0};

}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cgraf::obs {
namespace {

TEST(Overhead, DisabledSpanFastPathDoesNotAllocate) {
  Tracer& tracer = Tracer::global();
  ASSERT_FALSE(tracer.enabled());

  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    Span span(tracer, "hot");
    span.arg("d", 1.5)
        .arg("l", static_cast<long>(i))
        .arg("b", true)
        .arg("s", "literal");
    Span implicit_global("also-hot");
    implicit_global.arg("n", 1);
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "disabled spans must not touch the heap";
}

TEST(Overhead, MetricHandleUpdatesDoNotAllocate) {
  Metrics metrics;
  Counter& c = metrics.counter("c");
  Gauge& g = metrics.gauge("g");
  Histogram& h = metrics.histogram("h", {1.0, 10.0, 100.0});

  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    c.add(1);
    g.set(static_cast<double>(i));
    h.observe(static_cast<double>(i % 200));
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "metric updates through stable handles must be allocation-free";
}

TEST(Overhead, DisabledEventLogFastPathDoesNotAllocate) {
  // The contract behind `--log-events` being free when off: an Event built
  // against a disabled (or null) log is inert — no heap, no buffers.
  EventLog log;
  ASSERT_FALSE(log.enabled());

  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    Event ev(&log, "lp.solve");
    ev.arg("iterations", static_cast<long>(i))
        .arg("obj", 1.5)
        .arg("warm_used", true)
        .arg("status", "optimal");
    Event null_log(nullptr, "bnb.node");
    null_log.arg("depth", 3);
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "disabled solve events must not touch the heap";
}

TEST(Overhead, EventLogConfirmsAllocationsWhenEnabled) {
  // Sanity check for the interposed counter: an enabled in-memory log must
  // allocate while rendering the record.
  EventLog log;
  log.open_memory();
  const long before = g_allocations.load(std::memory_order_relaxed);
  {
    Event ev(&log, "lp.solve");
    ev.arg("iterations", 7L);
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(after - before, 0);
  log.close();
}

TEST(Overhead, CounterConfirmsAllocationsWhenEnabled) {
  // Sanity check that the interposed operator new actually counts: an
  // enabled span records an event, which must allocate.
  Tracer tracer;
  tracer.enable();
  const long before = g_allocations.load(std::memory_order_relaxed);
  {
    Span span(tracer, "recorded");
    span.arg("k", 1L);
  }
  tracer.disable();
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(after - before, 0);
  EXPECT_EQ(tracer.num_events(), 1u);
}

}  // namespace
}  // namespace cgraf::obs
