// TSan stress: hammer the metrics registry, the tracer and the progress
// reporter from many threads at once, with concurrent readers. These run
// under -fsanitize=thread in CI (the ObsStress ctest filter); the exact
// count assertions double as lost-update checks under plain builds.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/sync_metrics.h"
#include "obs/trace.h"
#include "util/sync.h"

namespace cgraf::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 500;

TEST(ObsStress, MetricsRegistryUnderThreads) {
  Metrics m;
  std::atomic<bool> stop_reader{false};
  std::atomic<long> reader_bytes{0};  // keeps the reads observable
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed))
      reader_bytes.fetch_add(static_cast<long>(m.to_json().size()),
                             std::memory_order_relaxed);
  });
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&m, t] {
      for (int i = 0; i < kIters; ++i) {
        // Rotating names force concurrent registration, not just updates.
        m.counter("stress.c" + std::to_string(i % 5)).add(1);
        m.gauge("stress.g" + std::to_string(t)).set(i);
        m.histogram("stress.h", {1.0, 10.0, 100.0}).observe(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  stop_reader.store(true, std::memory_order_relaxed);
  reader.join();

  long total = 0;
  for (int k = 0; k < 5; ++k)
    total += m.counter("stress.c" + std::to_string(k)).value();
  EXPECT_EQ(total, static_cast<long>(kThreads) * kIters);
  EXPECT_EQ(m.histogram("stress.h", {}).count(),
            static_cast<long>(kThreads) * kIters);
  EXPECT_GT(reader_bytes.load(), 0);
}

TEST(ObsStress, TracerUnderThreads) {
  Tracer tr;
  tr.enable();
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tr, t] {
      tr.name_thread("stress-" + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        Span sp(tr, "stress.span");
        sp.arg("i", i);
        tr.instant("stress.instant");
      }
    });
  }
  for (std::thread& t : pool) t.join();
  tr.disable();
  // One complete event per span plus one instant per iteration.
  EXPECT_EQ(tr.num_events(),
            static_cast<std::size_t>(kThreads) * kIters * 2);
  const std::string json = tr.to_json();
  EXPECT_NE(json.find("stress.span"), std::string::npos);
  EXPECT_NE(json.find("stress-0"), std::string::npos);
}

TEST(ObsStress, ProgressTickClaimsOneWindowAcrossThreads) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  Progress& p = Progress::global();
  const long before = p.lines_emitted();
  p.configure(true, /*min_interval_s=*/1e9, sink);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&p] {
      for (int i = 0; i < kIters; ++i) p.tickf("stress tick %d", i);
    });
  }
  for (std::thread& t : pool) t.join();
  p.configure(false);
  std::fclose(sink);
  // The CAS window admits exactly one line for the (huge) interval.
  EXPECT_EQ(p.lines_emitted() - before, 1);
}

TEST(ObsStress, SyncExportWhileMutexesAreBusy) {
  Metrics m;
  Mutex mu("test.obsstress.export", 99);
  std::atomic<bool> stop{false};
  std::thread hammer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MutexLock lk(&mu);
    }
  });
  for (int i = 0; i < 50; ++i) export_sync_metrics(m);
  stop.store(true, std::memory_order_relaxed);
  hammer.join();
  export_sync_metrics(m);
  EXPECT_EQ(m.counter("sync.test.obsstress.export.acquisitions").value(),
            mu.stats().acquisitions);
}

}  // namespace
}  // namespace cgraf::obs
