#include "obs/json_writer.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "json_check.h"

namespace cgraf::obs {
namespace {

using test::JsonChecker;

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object()
      .field("name", "B13")
      .field("nodes", 42L)
      .field("ratio", 1.5)
      .field("ok", true)
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"B13","nodes":42,"ratio":1.5,"ok":true})");
  EXPECT_TRUE(JsonChecker::valid(w.str()));
}

TEST(JsonWriter, NestedObjectsAndArrays) {
  JsonWriter w;
  w.begin_object().key("outer").begin_object().field("k", 1L).end_object();
  w.key("list").begin_array().value(1L).value(2L).value(3L).end_array();
  w.key("empty").begin_array().end_array();
  w.key("none").null();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"outer":{"k":1},"list":[1,2,3],"empty":[],"none":null})");
  EXPECT_TRUE(JsonChecker::valid(w.str()));
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object().field("k", "a\"b\\c\nd\te\x01" "f").end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
  std::string why;
  EXPECT_TRUE(JsonChecker::valid(w.str(), &why)) << why;
}

TEST(JsonWriter, EscapesKeys) {
  JsonWriter w;
  w.begin_object().field("we\"ird", 1L).end_object();
  EXPECT_EQ(w.str(), "{\"we\\\"ird\":1}");
  EXPECT_TRUE(JsonChecker::valid(w.str()));
}

TEST(JsonWriter, PassesThroughUtf8) {
  JsonWriter w;
  w.begin_object().field("k", "caf\xc3\xa9").end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"caf\xc3\xa9\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(0.5)
      .end_array();
  EXPECT_EQ(w.str(), "[null,null,0.5]");
  EXPECT_TRUE(JsonChecker::valid(w.str()));
}

TEST(JsonWriter, FragmentModeEmitsObjectBody) {
  // Without an enclosing begin_object() the writer produces the `"k":v,...`
  // fragment form that benches embed inside composite records.
  JsonWriter w;
  w.field("a", 1L).field("b", 2.5);
  w.key("c").begin_array().value(3L).end_array();
  EXPECT_EQ(w.str(), R"("a":1,"b":2.5,"c":[3])");
  EXPECT_TRUE(JsonChecker::valid("{" + w.str() + "}"));
}

TEST(JsonWriter, RawSplicesVerbatim) {
  JsonWriter w;
  w.begin_object().raw_field("inner", R"({"x":1})").end_object();
  EXPECT_EQ(w.str(), R"({"inner":{"x":1}})");
}

TEST(JsonWriter, QuotedHelper) {
  EXPECT_EQ(JsonWriter::quoted("a\"b"), "\"a\\\"b\"");
  std::string out;
  JsonWriter::append_escaped(out, "x\\y");
  EXPECT_EQ(out, "x\\\\y");
}

TEST(JsonWriter, ClearResets) {
  JsonWriter w;
  w.begin_object().field("a", 1L).end_object();
  w.clear();
  EXPECT_TRUE(w.empty());
  w.begin_array().end_array();
  EXPECT_EQ(w.str(), "[]");
}

TEST(JsonChecker, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1,})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a" 1})"));
  EXPECT_FALSE(JsonChecker::valid(R"([1,2)"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":\"\x01\"}"));
  EXPECT_FALSE(JsonChecker::valid("[1] x"));
  EXPECT_TRUE(JsonChecker::valid(R"({"a":[1,-2.5e3,"s",null,false]})"));
}

}  // namespace
}  // namespace cgraf::obs
