// The JSON parser feeding the post-mortem analyzer and the bench compare:
// grammar coverage, escape decoding, typed accessors, error reporting, and
// a round-trip against JsonWriter.
#include "obs/json_reader.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/json_writer.h"

namespace cgraf::obs {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(parse_json(text, &v, &err)) << text << ": " << err;
  return v;
}

void expect_fail(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parse_json(text, &v, &err)) << text;
  EXPECT_FALSE(err.empty());
}

TEST(JsonReader, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").b);
  EXPECT_FALSE(parse_ok("false").b);
  EXPECT_DOUBLE_EQ(parse_ok("3.25").num, 3.25);
  EXPECT_DOUBLE_EQ(parse_ok("-12").num, -12.0);
  EXPECT_DOUBLE_EQ(parse_ok("6.02e23").num, 6.02e23);
  EXPECT_EQ(parse_ok("\"hi\"").str, "hi");
  EXPECT_EQ(parse_ok("  42  ").num, 42.0);  // surrounding whitespace ok
}

TEST(JsonReader, NestedContainers) {
  const JsonValue v =
      parse_ok(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":[]})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->arr.size(), 3u);
  EXPECT_DOUBLE_EQ(a->arr[0].num, 1.0);
  EXPECT_TRUE(a->arr[2].is_object());
  EXPECT_TRUE(a->arr[2].bool_or("b", false));
  const JsonValue* c = v.find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(c->find("d"), nullptr);
  EXPECT_TRUE(c->find("d")->is_null());
  EXPECT_TRUE(v.find("e")->is_array());
  EXPECT_TRUE(v.find("e")->arr.empty());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReader, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\b\f\n\r\t")").str,
            "a\"b\\c/d\b\f\n\r\t");
  // \uXXXX, including plain BMP (U+00E9) and a surrogate pair (U+1F600).
  EXPECT_EQ(parse_ok("\"\\u00e9\"").str, "\xC3\xA9");
  EXPECT_EQ(parse_ok("\"\\uD83D\\uDE00\"").str, "\xF0\x9F\x98\x80");
  expect_fail(R"("\uD83D")");   // lone high surrogate
  expect_fail(R"("\uZZZZ")");   // bad hex
  expect_fail(R"("\q")");       // unknown escape
  expect_fail("\"unterminated");
}

TEST(JsonReader, TypedAccessors) {
  const JsonValue v = parse_ok(
      R"({"n":3.7,"i":42,"b":true,"s":"x","wrong":"notanumber"})");
  EXPECT_DOUBLE_EQ(v.num_or("n", 0.0), 3.7);
  EXPECT_EQ(v.int_or("n", 0), 4);  // rounds
  EXPECT_EQ(v.int_or("i", 0), 42);
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_EQ(v.str_or("s", ""), "x");
  // Missing or wrong-typed members yield the default.
  EXPECT_DOUBLE_EQ(v.num_or("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.num_or("wrong", -1.0), -1.0);
  EXPECT_EQ(v.str_or("n", "dflt"), "dflt");
  EXPECT_FALSE(v.bool_or("missing", false));
}

TEST(JsonReader, MalformedInputs) {
  expect_fail("");
  expect_fail("{");
  expect_fail("[1,2");
  expect_fail("{\"a\":}");
  expect_fail("{\"a\" 1}");
  expect_fail("[1,]");
  expect_fail("{} trailing");
  expect_fail("nul");
  expect_fail("+1");
  expect_fail("01");  // leading zero
  expect_fail("1.");  // digitless fraction
}

TEST(JsonReader, ErrorCarriesOffset) {
  JsonValue v;
  std::string err;
  ASSERT_FALSE(parse_json("[1, x]", &v, &err));
  EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST(JsonReader, DuplicateKeysKeepFirstOnFind) {
  const JsonValue v = parse_ok(R"({"k":1,"k":2})");
  ASSERT_EQ(v.obj.size(), 2u);
  EXPECT_DOUBLE_EQ(v.find("k")->num, 1.0);
}

TEST(JsonReader, DeepNestingIsRejectedNotCrashed) {
  std::string deep;
  for (int i = 0; i < 5000; ++i) deep += '[';
  for (int i = 0; i < 5000; ++i) deep += ']';
  expect_fail(deep);
}

TEST(JsonReader, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.begin_object()
      .field("s", "a\"b\\c\nd\x01")
      .field("d", 0.125)
      .field("neg", -7L)
      .field("flag", false)
      .field("nothing", std::nan(""))  // writer emits null
      .key("arr")
      .begin_array()
      .value(1L)
      .value("two")
      .end_array()
      .end_object();
  const JsonValue v = parse_ok(w.str());
  EXPECT_EQ(v.str_or("s", ""), "a\"b\\c\nd\x01");
  EXPECT_DOUBLE_EQ(v.num_or("d", 0.0), 0.125);
  EXPECT_EQ(v.int_or("neg", 0), -7);
  EXPECT_FALSE(v.bool_or("flag", true));
  ASSERT_NE(v.find("nothing"), nullptr);
  EXPECT_TRUE(v.find("nothing")->is_null());
  ASSERT_NE(v.find("arr"), nullptr);
  ASSERT_EQ(v.find("arr")->arr.size(), 2u);
  EXPECT_EQ(v.find("arr")->arr[1].str, "two");
}

}  // namespace
}  // namespace cgraf::obs
