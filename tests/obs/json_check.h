// Minimal recursive-descent JSON validity checker for tests. Accepts the
// RFC 8259 grammar (objects, arrays, strings with escapes, numbers, the
// three literals); rejects trailing garbage. Deliberately independent of
// obs::JsonWriter so writer bugs can't validate themselves.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace cgraf::test {

class JsonChecker {
 public:
  // Returns true iff `text` is exactly one valid JSON value.
  static bool valid(std::string_view text, std::string* why = nullptr) {
    JsonChecker c(text);
    c.skip_ws();
    if (!c.value()) {
      if (why != nullptr) *why = c.error_ + " at offset " +
                                 std::to_string(c.pos_);
      return false;
    }
    c.skip_ws();
    if (c.pos_ != c.text_.size()) {
      if (why != nullptr)
        *why = "trailing garbage at offset " + std::to_string(c.pos_);
      return false;
    }
    return true;
  }

 private:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool fail(const char* what) {
    error_ = what;
    return false;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool object() {
    if (!eat('{')) return fail("expected '{'");
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return fail("expected ',' or '}'");
    }
  }

  bool array() {
    if (!eat('[')) return fail("expected '['");
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return fail("expected ',' or ']'");
    }
  }

  bool string() {
    if (!eat('"')) return fail("expected '\"'");
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character");
      if (c == '\\') {
        ++pos_;
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_)
            if (!std::isxdigit(static_cast<unsigned char>(peek())))
              return fail("bad \\u escape");
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                   e == 'f' || e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return fail("bad escape");
        }
      } else {
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected a value");
    if (eat('0')) {
      // no leading zeros
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad fraction");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace cgraf::test
