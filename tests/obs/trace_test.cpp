#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "json_check.h"

namespace cgraf::obs {
namespace {

// Each test uses its own Tracer instance so they can't interfere with the
// global one (or with each other under ctest -j).
TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    Span s(tracer, "ignored");
    s.arg("k", 1L);
    EXPECT_FALSE(s.active());
  }
  tracer.instant("also-ignored");
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(Trace, SpanNestingIsContained) {
  Tracer tracer;
  tracer.enable();
  {
    Span outer(tracer, "outer");
    {
      Span inner(tracer, "inner");
    }
  }
  tracer.disable();
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction, so inner lands first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-6);
  EXPECT_GE(inner.dur_us, 0.0);
}

TEST(Trace, ArgsRenderAsJsonObjectBody) {
  Tracer tracer;
  tracer.enable();
  {
    Span s(tracer, "annotated");
    s.arg("d", 1.5).arg("l", 7L).arg("b", true).arg("s", "x\"y");
  }
  tracer.disable();
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args, R"("d":1.5,"l":7,"b":true,"s":"x\"y")");
}

TEST(Trace, ThreadsGetSeparateTracks) {
  Tracer tracer;
  tracer.enable();
  auto work = [&tracer] {
    Span s(tracer, "worker");
    s.arg("x", 1L);
  };
  std::thread a(work), b(work);
  a.join();
  b.join();
  {
    Span s(tracer, "main");
  }
  tracer.disable();

  std::set<int> worker_tids;
  std::set<int> main_tids;
  for (const auto& e : tracer.snapshot()) {
    if (std::string_view(e.name) == "worker") worker_tids.insert(e.tid);
    else main_tids.insert(e.tid);
  }
  EXPECT_EQ(worker_tids.size(), 2u);
  ASSERT_EQ(main_tids.size(), 1u);
  EXPECT_EQ(worker_tids.count(*main_tids.begin()), 0u);
}

TEST(Trace, NamedThreadsEmitMetadataEvents) {
  Tracer tracer;
  tracer.enable();
  tracer.name_thread("driver");
  {
    Span s(tracer, "work");
  }
  tracer.disable();
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"driver\""), std::string::npos);
}

TEST(Trace, ExportIsValidChromeTraceJson) {
  Tracer tracer;
  tracer.enable();
  {
    Span s(tracer, "a");
    s.arg("note", "quote\" and \\backslash");
  }
  tracer.instant("marker");
  tracer.disable();
  const std::string json = tracer.to_json();
  std::string why;
  EXPECT_TRUE(test::JsonChecker::valid(json, &why)) << why << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Trace, EnableClearsPreviousRun) {
  Tracer tracer;
  tracer.enable();
  { Span s(tracer, "first"); }
  tracer.disable();
  EXPECT_EQ(tracer.num_events(), 1u);
  tracer.enable();
  EXPECT_EQ(tracer.num_events(), 0u);
  { Span s(tracer, "second"); }
  tracer.disable();
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second");
}

TEST(Trace, SpansStraddlingDisableAreDropped) {
  Tracer tracer;
  tracer.enable();
  {
    Span s(tracer, "straddler");
    tracer.disable();
  }  // destructor fires after disable(); the tracer must ignore it
  EXPECT_EQ(tracer.num_events(), 0u);
}

}  // namespace
}  // namespace cgraf::obs
