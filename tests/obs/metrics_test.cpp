#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "json_check.h"
#include "obs/sync_metrics.h"
#include "util/sync.h"

namespace cgraf::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  Metrics m;
  Counter& c = m.counter("hits");
  c.add(1);
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(&m.counter("hits"), &c);  // stable handle
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Metrics, GaugeHoldsLastValue) {
  Metrics m;
  Gauge& g = m.gauge("st_target");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.75);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(Metrics, HistogramBucketEdges) {
  Metrics m;
  // Buckets are upper-bound inclusive-exclusive halves resolved by
  // lower_bound: value v lands in the first bucket whose bound >= v.
  Histogram& h = m.histogram("lat", {1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1        -> bucket 0
  h.observe(1.0);   // == bound 1  -> bucket 0
  h.observe(1.5);   // <= 2        -> bucket 1
  h.observe(4.0);   // == bound 4  -> bucket 2
  h.observe(100.0); // overflow    -> bucket 3
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
  const std::vector<long> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
}

TEST(Metrics, HistogramBoundsFixedByFirstRegistration) {
  Metrics m;
  Histogram& h1 = m.histogram("h", {1.0, 2.0});
  Histogram& h2 = m.histogram("h", {5.0, 6.0, 7.0});  // ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Metrics, ConcurrentUpdatesDontLoseCounts) {
  Metrics m;
  Counter& c = m.counter("n");
  Histogram& h = m.histogram("d", {10.0, 20.0});
  constexpr int kThreads = 4;
  constexpr int kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPer; ++i) {
        c.add(1);
        h.observe(15.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPer);
  EXPECT_EQ(h.count(), kThreads * kPer);
  EXPECT_EQ(h.bucket_counts()[1], kThreads * kPer);
}

TEST(Metrics, JsonDumpIsValidAndSorted) {
  Metrics m;
  m.counter("z.last").add(3);
  m.counter("a.first").add(1);
  m.gauge("mid").set(0.5);
  m.histogram("h", {1.0}).observe(2.0);
  const std::string json = m.to_json();
  std::string why;
  EXPECT_TRUE(test::JsonChecker::valid(json, &why)) << why << "\n" << json;
  // Counters are emitted in sorted name order.
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, HistogramPercentilesInterpolate) {
  Histogram h({10.0, 20.0, 40.0});
  // 10 observations uniformly in the first bucket, 10 in the second.
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  // p50: rank 10 of 20 → exactly fills the first bucket → its upper bound.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 10.0);
  // p25: rank 5 of 20, halfway through [0, 10].
  EXPECT_DOUBLE_EQ(h.percentile(0.25), 5.0);
  // p75: rank 15, halfway through (10, 20].
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 15.0);
  // p100 lands at the last populated bucket's bound.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
}

TEST(Metrics, HistogramPercentileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_EQ(empty.percentile(0.5), 0.0);

  // Everything in the overflow bucket clamps to the last finite bound.
  Histogram over({1.0, 2.0});
  over.observe(100.0);
  over.observe(200.0);
  EXPECT_DOUBLE_EQ(over.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(over.percentile(0.99), 2.0);

  // A single observation is every percentile (rank clamps to 1).
  Histogram one({10.0});
  one.observe(3.0);
  EXPECT_DOUBLE_EQ(one.percentile(0.0), one.percentile(0.99));

  // Negative first bound: the first bucket interpolates from its bound,
  // not from 0.
  Histogram neg({-5.0, 5.0});
  neg.observe(-6.0);
  EXPECT_LE(neg.percentile(0.5), -5.0);

  // Out-of-range p clamps instead of faulting.
  EXPECT_DOUBLE_EQ(one.percentile(-1.0), one.percentile(0.0));
  EXPECT_DOUBLE_EQ(one.percentile(2.0), one.percentile(1.0));
}

TEST(Metrics, JsonDumpCarriesPercentiles) {
  Metrics m;
  Histogram& h = m.histogram("lat", {1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) h.observe(0.5);
  const std::string json = m.to_json();
  std::string why;
  EXPECT_TRUE(test::JsonChecker::valid(json, &why)) << why << "\n" << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Metrics, ClearEmptiesRegistry) {
  Metrics m;
  m.counter("c").add(1);
  m.clear();
  const std::string json = m.to_json();
  EXPECT_EQ(json, R"({"counters":{},"gauges":{},"histograms":{}})");
}

TEST(Metrics, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&Metrics::global(), &Metrics::global());
}

TEST(Metrics, SyncContentionExportIsIdempotent) {
  Metrics m;
  Mutex mu("test.metrics.export", 99);
  { MutexLock lk(&mu); }
  { MutexLock lk(&mu); }
  export_sync_metrics(m);
  EXPECT_EQ(m.counter("sync.test.metrics.export.acquisitions").value(), 2);
  EXPECT_EQ(m.counter("sync.test.metrics.export.contended").value(), 0);
  export_sync_metrics(m);  // reset-then-add: no double counting
  EXPECT_EQ(m.counter("sync.test.metrics.export.acquisitions").value(), 2);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("sync.test.metrics.export.wait_seconds"),
            std::string::npos);
}

}  // namespace
}  // namespace cgraf::obs
