// The tentpole exactness contract: `cgraf_cli analyze` must reproduce the
// in-process solver statistics (nodes, LP iterations, warm hits) from the
// event stream alone. These tests run real solves against an in-memory
// EventLog and diff the analyzer's totals against the returned stats.
#include "obs/postmortem.h"

#include <gtest/gtest.h>

#include <string>

#include "core/remapper.h"
#include "core/st_target.h"
#include "json_check.h"
#include "milp/branch_and_bound.h"
#include "milp/model.h"
#include "obs/event_log.h"
#include "util/rng.h"
#include "workloads/suite.h"

namespace cgraf::obs {
namespace {

PostmortemReport analyze_ok(const std::string& jsonl) {
  PostmortemReport report;
  std::string error;
  EXPECT_TRUE(analyze_events(jsonl, &report, &error)) << error;
  return report;
}

milp::Model coupled_binary_model(std::uint64_t seed, int n) {
  Rng rng(seed);
  milp::Model m;
  std::vector<int> vars;
  for (int i = 0; i < n; ++i)
    vars.push_back(m.add_binary(0.5 + rng.next_double()));
  for (int i = 0; i + 2 < n; ++i) {
    m.add_le({{vars[static_cast<std::size_t>(i)], 1.0},
              {vars[static_cast<std::size_t>(i + 1)], 1.0},
              {vars[static_cast<std::size_t>(i + 2)], 1.0}},
             2.0);
  }
  return m;
}

TEST(Postmortem, BnbTotalsMatchMipResultExactly) {
  EventLog log;
  log.open_memory();
  const milp::Model m = coupled_binary_model(11, 16);
  milp::MipOptions opts;
  opts.events = &log;
  opts.num_threads = 1;
  const milp::MipResult res = milp::solve_milp(m, opts);
  ASSERT_TRUE(res.has_solution());
  log.close();

  const PostmortemReport report = analyze_ok(log.memory_contents());
  EXPECT_EQ(report.bnb_solves, 1);
  EXPECT_EQ(report.bnb_nodes, res.nodes);
  EXPECT_EQ(report.bnb_node_lp_iters, res.lp_iterations);
  // Every LP in a pure solve_milp run is a node LP, so the lp.solve family
  // must agree with the per-node sum.
  EXPECT_EQ(report.lp_iterations, res.lp_iterations);
  EXPECT_EQ(report.lp_solves, report.bnb_nodes);
  // Depth table covers every node exactly once.
  long depth_nodes = 0, depth_iters = 0;
  for (const auto& [depth, row] : report.by_depth) {
    EXPECT_GE(depth, 0);
    depth_nodes += row.nodes;
    depth_iters += row.lp_iters;
  }
  EXPECT_EQ(depth_nodes, res.nodes);
  EXPECT_EQ(depth_iters, res.lp_iterations);
  // An optimal run on this model finds at least one incumbent.
  EXPECT_GE(static_cast<long>(report.incumbents.size()), 1);
}

TEST(Postmortem, BnbTotalsMatchUnderParallelWorkers) {
  EventLog log;
  log.open_memory();
  const milp::Model m = coupled_binary_model(23, 18);
  milp::MipOptions opts;
  opts.events = &log;
  opts.num_threads = 4;
  const milp::MipResult res = milp::solve_milp(m, opts);
  ASSERT_TRUE(res.has_solution());
  log.close();

  const PostmortemReport report = analyze_ok(log.memory_contents());
  EXPECT_EQ(report.bnb_nodes, res.nodes);
  EXPECT_EQ(report.bnb_node_lp_iters, res.lp_iterations);
  EXPECT_EQ(report.lp_iterations, res.lp_iterations);
}

TEST(Postmortem, StSearchProbeTotalsMatchResultExactly) {
  EventLog log;
  log.open_memory();
  const auto bench =
      workloads::generate_benchmark(workloads::table1_specs(false)[0]);
  core::StTargetOptions opts;
  opts.solver.events = &log;
  const core::StTargetResult r =
      find_st_target(bench.design, bench.baseline, opts);
  ASSERT_TRUE(r.ok);
  log.close();

  const PostmortemReport report = analyze_ok(log.memory_contents());
  EXPECT_EQ(report.st_searches, 1);
  EXPECT_EQ(report.probes, static_cast<long>(r.probes));
  EXPECT_EQ(report.probe_warm_hits, static_cast<long>(r.warm_hits));
  EXPECT_EQ(report.probe_fallbacks, static_cast<long>(r.basis_fallbacks));
  EXPECT_EQ(report.probe_rebuilds, static_cast<long>(r.model_rebuilds));
  // The probe chain reconstructs in emission order with sane timestamps.
  ASSERT_EQ(static_cast<long>(report.probe_chain.size()), report.probes);
  double last_t = -1.0;
  for (const auto& probe : report.probe_chain) {
    EXPECT_GE(probe.t_us, last_t);
    last_t = probe.t_us;
  }
}

TEST(Postmortem, RemapRunReconstructsPipeline) {
  EventLog log;
  log.open_memory();
  const auto bench =
      workloads::generate_benchmark(workloads::table1_specs(false)[0]);
  core::RemapOptions opts;
  opts.solver.events = &log;
  const core::RemapResult res =
      aging_aware_remap(bench.design, bench.baseline, opts);
  log.close();

  const PostmortemReport report = analyze_ok(log.memory_contents());
  EXPECT_EQ(report.remap_runs, 1);
  EXPECT_EQ(report.remap_attempts, static_cast<long>(res.outer_iterations));
  EXPECT_GE(report.st_searches, 1);
  EXPECT_GT(report.lp_solves, 0);
  EXPECT_GT(report.probes, 0);

  // Both render paths hold together on a real stream.
  const std::string text = report.to_text();
  EXPECT_NE(text.find("post-mortem"), std::string::npos);
  const std::string json = report.to_json();
  std::string why;
  EXPECT_TRUE(test::JsonChecker::valid(json, &why)) << why;
}

TEST(Postmortem, HeaderIsParsed) {
  EventLog log;
  log.open_memory();
  log.close();
  const PostmortemReport report = analyze_ok(log.memory_contents());
  EXPECT_TRUE(report.have_header);
  EXPECT_EQ(report.schema, kEventLogSchemaVersion);
  EXPECT_FALSE(report.compiler.empty());
}

TEST(Postmortem, EmptyStreamFails) {
  PostmortemReport report;
  std::string error;
  EXPECT_FALSE(analyze_events("", &report, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Postmortem, NewerSchemaIsRejected) {
  const std::string jsonl =
      "{\"type\":\"log.header\",\"t\":0,\"tid\":0,\"schema\":" +
      std::to_string(kEventLogSchemaVersion + 1) + "}\n";
  PostmortemReport report;
  std::string error;
  EXPECT_FALSE(analyze_events(jsonl, &report, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(Postmortem, MalformedLinesAreCollectedNotFatal) {
  const std::string jsonl =
      "{\"type\":\"log.header\",\"t\":0,\"tid\":0,\"schema\":1}\n"
      "this is not json\n"
      "{\"type\":\"lp.solve\",\"t\":1,\"tid\":0,\"iterations\":5}\n";
  const PostmortemReport report = analyze_ok(jsonl);
  ASSERT_EQ(report.parse_errors.size(), 1u);
  EXPECT_EQ(report.parse_errors[0].first, 2);  // 1-based line number
  EXPECT_EQ(report.lp_solves, 1);
  EXPECT_EQ(report.lp_iterations, 5);
}

TEST(Postmortem, UnknownRecordTypesAreCountedAndSkipped) {
  const std::string jsonl =
      "{\"type\":\"log.header\",\"t\":0,\"tid\":0,\"schema\":1}\n"
      "{\"type\":\"future.record\",\"t\":1,\"tid\":0,\"shiny\":true}\n";
  const PostmortemReport report = analyze_ok(jsonl);
  EXPECT_EQ(report.total_records, 2);
  EXPECT_EQ(report.records_by_type.at("future.record"), 1);
}

}  // namespace
}  // namespace cgraf::obs
