// Acceptance tests for the perf-regression gate: an injected 2x slowdown
// must be flagged, a same-document rerun must pass, and the thresholds
// must absorb benign noise.
#include "obs/bench_compare.h"

#include <gtest/gtest.h>

#include <string>

namespace cgraf::obs {
namespace {

std::string doc(const std::string& results,
                const std::string& label = "test") {
  return std::string("{\"schema_version\":1,\"label\":\"") + label +
         "\",\"git_sha\":\"deadbeef\",\"compiler\":\"gcc\"," +
         "\"hardware_threads\":8,\"results\":[" + results + "]}";
}

TEST(BenchCompare, IdenticalDocumentsPass) {
  const std::string d = doc(
      R"({"case":"lp","wall_seconds":0.125,"lp_iterations":900},)"
      R"({"case":"milp","wall_seconds":0.5,"nodes":220})");
  const BenchComparison cmp = compare_bench_docs(d, d);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_FALSE(cmp.has_regression());
  EXPECT_EQ(cmp.cases_compared, 2);
  EXPECT_NE(cmp.to_text().find("verdict: OK"), std::string::npos);
}

TEST(BenchCompare, InjectedDoubleSlowdownIsDetected) {
  const std::string base =
      doc(R"({"case":"lp","wall_seconds":0.125,"lp_iterations":900})");
  const std::string slow =
      doc(R"({"case":"lp","wall_seconds":0.25,"lp_iterations":900})");
  const BenchComparison cmp = compare_bench_docs(base, slow);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_TRUE(cmp.has_regression());
  bool found = false;
  for (const auto& d : cmp.deltas) {
    if (d.metric == "wall_seconds" && d.regression) {
      found = true;
      EXPECT_NEAR(d.ratio, 2.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(cmp.to_text().find("REGRESSION"), std::string::npos);
}

TEST(BenchCompare, NoiseBelowThresholdPasses) {
  // +40% wall (under the default 1.5x) and +20% counters (under 1.25x).
  const std::string base =
      doc(R"({"case":"lp","wall_seconds":0.1,"lp_iterations":1000})");
  const std::string noisy =
      doc(R"({"case":"lp","wall_seconds":0.14,"lp_iterations":1200})");
  const BenchComparison cmp = compare_bench_docs(base, noisy);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_FALSE(cmp.has_regression());
}

TEST(BenchCompare, CounterBlowupIsARegression) {
  const std::string base =
      doc(R"({"case":"milp","wall_seconds":0.2,"nodes":200})");
  const std::string worse =
      doc(R"({"case":"milp","wall_seconds":0.2,"nodes":400})");
  const BenchComparison cmp = compare_bench_docs(base, worse);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_TRUE(cmp.has_regression());
}

TEST(BenchCompare, SubMillisecondTimingsAreNoise) {
  // 5x on a 0.1ms case: under min_wall_s, not actionable.
  const std::string base =
      doc(R"({"case":"tiny","wall_seconds":0.0001})");
  const std::string slow =
      doc(R"({"case":"tiny","wall_seconds":0.0005})");
  const BenchComparison cmp = compare_bench_docs(base, slow);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_FALSE(cmp.has_regression());
}

TEST(BenchCompare, SmallCountersAreNoise) {
  // 2 -> 3 warm hits is 50% but absolute noise on the 8-count floor.
  const std::string base = doc(R"({"case":"probes","warm_hits":2})");
  const std::string cand = doc(R"({"case":"probes","warm_hits":3})");
  const BenchComparison cmp = compare_bench_docs(base, cand);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_FALSE(cmp.has_regression());
}

TEST(BenchCompare, MissingCaseIsARegression) {
  const std::string base = doc(
      R"({"case":"a","wall_seconds":0.1},{"case":"b","wall_seconds":0.1})");
  const std::string cand = doc(R"({"case":"a","wall_seconds":0.1})");
  const BenchComparison cmp = compare_bench_docs(base, cand);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_TRUE(cmp.has_regression());
  ASSERT_EQ(cmp.missing_cases.size(), 1u);
  EXPECT_EQ(cmp.missing_cases[0], "b");
}

TEST(BenchCompare, NewCasesAndDroppedMetricsAreBenign) {
  const std::string base = doc(
      R"({"case":"a","wall_seconds":0.1,"retired_metric":12345})");
  const std::string cand = doc(
      R"({"case":"a","wall_seconds":0.1},{"case":"brand_new","wall_seconds":9.0})");
  const BenchComparison cmp = compare_bench_docs(base, cand);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_FALSE(cmp.has_regression());
  ASSERT_EQ(cmp.new_cases.size(), 1u);
  EXPECT_EQ(cmp.new_cases[0], "brand_new");
}

TEST(BenchCompare, ProvenanceFieldsAreNotMetrics) {
  // The candidate ran on a bigger host: hardware_threads 8 -> 64 must not
  // count as a counter regression.
  const std::string base =
      "{\"schema_version\":1,\"label\":\"old\",\"hardware_threads\":8,"
      "\"results\":[{\"case\":\"a\",\"wall_seconds\":0.1,"
      "\"schema_version\":1,\"hardware_threads\":8}]}";
  const std::string cand =
      "{\"schema_version\":1,\"label\":\"new\",\"hardware_threads\":64,"
      "\"results\":[{\"case\":\"a\",\"wall_seconds\":0.1,"
      "\"schema_version\":1,\"hardware_threads\":64}]}";
  const BenchComparison cmp = compare_bench_docs(base, cand);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_FALSE(cmp.has_regression());
}

TEST(BenchCompare, SweepRowsKeyedByInstanceAndVariant) {
  // Rows reusing one case name must not collapse onto each other.
  const std::string base = doc(
      R"({"case":"scaling","instance":"B1","wall_seconds":0.1},)"
      R"({"case":"scaling","instance":"B2","wall_seconds":0.2},)"
      R"({"case":"lp","arg":24,"pricing":"full","wall_seconds":0.1},)"
      R"({"case":"lp","arg":24,"pricing":"candidate","wall_seconds":0.1})");
  const std::string cand = doc(
      R"({"case":"scaling","instance":"B1","wall_seconds":0.1},)"
      R"({"case":"scaling","instance":"B2","wall_seconds":0.9},)"
      R"({"case":"lp","arg":24,"pricing":"full","wall_seconds":0.1},)"
      R"({"case":"lp","arg":24,"pricing":"candidate","wall_seconds":0.1})");
  const BenchComparison cmp = compare_bench_docs(base, cand);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_EQ(cmp.cases_compared, 4);
  EXPECT_TRUE(cmp.has_regression());
  bool b2_flagged = false;
  for (const auto& d : cmp.deltas) {
    if (d.case_name == "scaling/B2" && d.regression) b2_flagged = true;
    EXPECT_NE(d.case_name, "scaling") << "instance rows collapsed";
  }
  EXPECT_TRUE(b2_flagged);
}

TEST(BenchCompare, RejectsUnversionedDocuments) {
  const std::string versioned =
      doc(R"({"case":"a","wall_seconds":0.1})");
  const std::string unversioned =
      R"({"results":[{"case":"a","wall_seconds":0.1}]})";
  EXPECT_FALSE(compare_bench_docs(unversioned, versioned).ok);
  EXPECT_FALSE(compare_bench_docs(versioned, unversioned).ok);
  EXPECT_FALSE(compare_bench_docs("not json", versioned).ok);
  const BenchComparison cmp = compare_bench_docs("not json", versioned);
  EXPECT_TRUE(cmp.has_regression() || !cmp.ok);
  EXPECT_NE(cmp.to_text().find("compare failed"), std::string::npos);
}

TEST(BenchCompare, ImprovementIsNotARegression) {
  const std::string base =
      doc(R"({"case":"lp","wall_seconds":0.4,"lp_iterations":2000})");
  const std::string faster =
      doc(R"({"case":"lp","wall_seconds":0.1,"lp_iterations":500})");
  const BenchComparison cmp = compare_bench_docs(base, faster);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_FALSE(cmp.has_regression());
}

}  // namespace
}  // namespace cgraf::obs
