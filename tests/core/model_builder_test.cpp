#include "core/model_builder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "milp/branch_and_bound.h"
#include "timing/paths.h"

namespace cgraf::core {
namespace {

// Two contexts x two ops each on a 3x3 fabric; ops 0->1 chained in ctx 0.
struct Fixture {
  Design design{Fabric(3, 3, 5.0, 0.2), 2, {}, {}};
  Floorplan base;

  Fixture() {
    auto add = [&](OpKind kind, int ctx) {
      Operation op;
      op.id = design.num_ops();
      op.kind = kind;
      op.context = ctx;
      design.ops.push_back(op);
    };
    add(OpKind::kAdd, 0);
    add(OpKind::kAdd, 0);
    add(OpKind::kMux, 1);
    add(OpKind::kAdd, 1);
    design.edges.push_back({0, 1});
    base.op_to_pe = {0, 1, 0, 1};
  }

  RemapModelSpec spec(double st_target) {
    RemapModelSpec s;
    s.design = &design;
    s.base = &base;
    s.frozen.assign(4, 0);
    s.candidates.assign(4, {});
    for (auto& c : s.candidates)
      for (int pe = 0; pe < 9; ++pe) c.push_back(pe);
    s.st_target = st_target;
    return s;
  }
};

TEST(ModelBuilder, VariableAndRowCounts) {
  Fixture f;
  const RemapModel rm = build_remap_model(f.spec(1.0));
  ASSERT_FALSE(rm.trivially_infeasible);
  EXPECT_EQ(rm.num_binary_vars, 4 * 9);
  // Rows: 4 assignment + exclusivity (9 PEs x 2 contexts, each with 2
  // candidate ops) + 9 stress rows.
  EXPECT_EQ(rm.model.num_constraints(), 4 + 18 + 9);
}

TEST(ModelBuilder, FrozenOpsConsumeStressAndPes) {
  Fixture f;
  RemapModelSpec s = f.spec(1.0);
  s.frozen[0] = 1;
  s.candidates[0] = {0};
  const RemapModel rm = build_remap_model(s);
  ASSERT_FALSE(rm.trivially_infeasible);
  // Op 1 (same context) must not get PE 0 as a candidate.
  EXPECT_EQ(rm.assign_vars[0].size(), 0u);
  for (const int pe : rm.candidates[1]) EXPECT_NE(pe, 0);
  // Op 2 (other context) may still use PE 0.
  bool has0 = false;
  for (const int pe : rm.candidates[2]) has0 |= pe == 0;
  EXPECT_TRUE(has0);
}

TEST(ModelBuilder, FrozenOverloadIsTriviallyInfeasible) {
  Fixture f;
  RemapModelSpec s = f.spec(0.01);  // below any single op's stress
  s.frozen[0] = 1;
  s.candidates[0] = {0};
  const RemapModel rm = build_remap_model(s);
  EXPECT_TRUE(rm.trivially_infeasible);
}

TEST(ModelBuilder, SolutionsRespectStressTarget) {
  Fixture f;
  // Target fits one DMU (0.628) but not DMU + anything: ops must spread.
  const RemapModel rm = build_remap_model(f.spec(0.65));
  ASSERT_FALSE(rm.trivially_infeasible);
  milp::MipOptions opts;
  opts.stop_at_first_incumbent = true;
  const auto mip = solve_milp(rm.model, opts);
  ASSERT_TRUE(mip.has_solution());
  const Floorplan fp = rm.decode(mip.x);
  std::string why;
  EXPECT_TRUE(is_valid(f.design, fp, &why)) << why;
  const StressMap stress = compute_stress(f.design, fp);
  EXPECT_LE(stress.max_accumulated(), 0.65 + 1e-6);
}

TEST(ModelBuilder, ImpossibleTargetIsInfeasible) {
  Fixture f;
  // Below the single heaviest op's stress: no assignment can work.
  const RemapModel rm = build_remap_model(f.spec(0.10));
  ASSERT_FALSE(rm.trivially_infeasible);
  const auto mip = solve_milp(rm.model);
  EXPECT_EQ(mip.status, milp::SolveStatus::kInfeasible);
}

TEST(ModelBuilder, PathConstraintLimitsWireLength) {
  Fixture f;
  // Freeze op0 at PE 0; op1 free. Path 0->1 with a 2-unit wire budget.
  RemapModelSpec s = f.spec(1.0);
  s.frozen[0] = 1;
  s.candidates[0] = {0};
  timing::TimingPath path;
  path.context = 0;
  path.ops = {0, 1};
  path.pe_delay_ns = 2 * 0.87;
  std::vector<timing::TimingPath> monitored{path};
  s.monitored = &monitored;
  s.cpd_ns = path.pe_delay_ns + 2 * 0.2;  // wire budget = 2 units
  const RemapModel rm = build_remap_model(s);
  ASSERT_FALSE(rm.trivially_infeasible);
  EXPECT_EQ(rm.num_path_rows, 1);

  milp::MipOptions opts;
  const auto mip = solve_milp(rm.model, opts);
  ASSERT_TRUE(mip.has_solution());
  const Floorplan fp = rm.decode(mip.x);
  EXPECT_LE(manhattan(f.design.fabric.loc(fp.pe_of(0)),
                      f.design.fabric.loc(fp.pe_of(1))),
            2);
}

TEST(ModelBuilder, FreeFreeEdgeUsesExactAbsLinearization) {
  Fixture f;
  // Both chained ops free; budget of 1 wire unit forces adjacency.
  RemapModelSpec s = f.spec(1.0);
  timing::TimingPath path;
  path.context = 0;
  path.ops = {0, 1};
  path.pe_delay_ns = 2 * 0.87;
  std::vector<timing::TimingPath> monitored{path};
  s.monitored = &monitored;
  s.cpd_ns = path.pe_delay_ns + 1 * 0.2;
  const RemapModel rm = build_remap_model(s);
  ASSERT_FALSE(rm.trivially_infeasible);
  const auto mip = solve_milp(rm.model);
  ASSERT_TRUE(mip.has_solution());
  const Floorplan fp = rm.decode(mip.x);
  EXPECT_EQ(manhattan(f.design.fabric.loc(fp.pe_of(0)),
                      f.design.fabric.loc(fp.pe_of(1))),
            1);
}

TEST(ModelBuilder, AllFrozenPathOverBudgetIsTriviallyInfeasible) {
  Fixture f;
  RemapModelSpec s = f.spec(1.0);
  s.frozen[0] = s.frozen[1] = 1;
  s.candidates[0] = {0};
  s.candidates[1] = {8};  // distance 4 from PE 0
  f.base.op_to_pe = {0, 8, 0, 1};
  timing::TimingPath path;
  path.context = 0;
  path.ops = {0, 1};
  path.pe_delay_ns = 2 * 0.87;
  std::vector<timing::TimingPath> monitored{path};
  s.monitored = &monitored;
  s.cpd_ns = path.pe_delay_ns + 0.2;  // 1-unit budget < 4-unit frozen wire
  const RemapModel rm = build_remap_model(s);
  EXPECT_TRUE(rm.trivially_infeasible);
}

TEST(ModelBuilder, MinPerturbationPrefersIdentityWhenFeasible) {
  Fixture f;
  RemapModelSpec s = f.spec(10.0);  // loose target: identity is feasible
  s.objective = ObjectiveMode::kMinPerturbation;
  const RemapModel rm = build_remap_model(s);
  const auto mip = solve_milp(rm.model);
  ASSERT_TRUE(mip.has_solution());
  const Floorplan fp = rm.decode(mip.x);
  EXPECT_EQ(fp.op_to_pe, f.base.op_to_pe);
}

TEST(ModelBuilder, DecodePicksTheAssignedCandidate) {
  Fixture f;
  const RemapModel rm = build_remap_model(f.spec(10.0));
  std::vector<double> x(static_cast<std::size_t>(rm.model.num_vars()), 0.0);
  // Assign op i -> PE i+2 manually.
  for (int op = 0; op < 4; ++op) {
    const auto& cand = rm.candidates[static_cast<std::size_t>(op)];
    for (std::size_t c = 0; c < cand.size(); ++c) {
      if (cand[c] == op + 2)
        x[static_cast<std::size_t>(
            rm.assign_vars[static_cast<std::size_t>(op)][c])] = 1.0;
    }
  }
  const Floorplan fp = rm.decode(x);
  EXPECT_EQ(fp.op_to_pe, (std::vector<int>{2, 3, 4, 5}));
}

TEST(ModelBuilder, PatchedTargetEqualsFreshBuild) {
  // Patching the stress rows to a new target must produce exactly the model
  // a fresh build at that target would: same bounds on every row, and the
  // same solver verdicts on both sides of feasibility.
  Fixture f;
  RemapModel patched = build_remap_model(f.spec(10.0));
  ASSERT_FALSE(patched.trivially_infeasible);
  ASSERT_TRUE(patched.patch_st_target(2.5));
  EXPECT_EQ(patched.st_target, 2.5);

  const RemapModel fresh = build_remap_model(f.spec(2.5));
  ASSERT_FALSE(fresh.trivially_infeasible);
  ASSERT_EQ(patched.model.num_constraints(), fresh.model.num_constraints());
  for (int i = 0; i < fresh.model.num_constraints(); ++i) {
    EXPECT_EQ(patched.model.constraint(i).lb, fresh.model.constraint(i).lb)
        << i;
    EXPECT_EQ(patched.model.constraint(i).ub, fresh.model.constraint(i).ub)
        << i;
  }
}

TEST(ModelBuilder, PatchTracksStressRowsPerPe) {
  Fixture f;
  RemapModel rm = build_remap_model(f.spec(1.0));
  ASSERT_FALSE(rm.trivially_infeasible);
  ASSERT_EQ(rm.stress_rows.size(), static_cast<std::size_t>(9));
  ASSERT_EQ(rm.frozen_stress.size(), static_cast<std::size_t>(9));
  for (std::size_t pe = 0; pe < rm.stress_rows.size(); ++pe) {
    const int row = rm.stress_rows[pe];
    if (row < 0) continue;
    EXPECT_NEAR(rm.model.constraint(row).ub,
                rm.st_target - rm.frozen_stress[pe], 1e-12)
        << pe;
  }
}

TEST(ModelBuilder, PatchRejectsTargetBelowFrozenStress) {
  // Frozen ops' stress alone can exceed a tighter target; the patch must
  // refuse (the cold build would be trivially infeasible) and leave the
  // model at its previous target so later probes can still patch it.
  Fixture f;
  RemapModelSpec s = f.spec(10.0);
  s.frozen[0] = 1;
  s.candidates[0] = {0};
  RemapModel rm = build_remap_model(s);
  ASSERT_FALSE(rm.trivially_infeasible);
  const double frozen_max =
      *std::max_element(rm.frozen_stress.begin(), rm.frozen_stress.end());
  ASSERT_GT(frozen_max, 0.0);
  EXPECT_FALSE(rm.patch_st_target(0.5 * frozen_max));
  EXPECT_EQ(rm.st_target, 10.0);
  // And the refused patch left the rows intact: a feasible re-patch works.
  EXPECT_TRUE(rm.patch_st_target(2.0 * frozen_max + 1.0));
}

}  // namespace
}  // namespace cgraf::core
