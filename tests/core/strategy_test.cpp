#include "core/strategy.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace cgraf::core {
namespace {

TEST(Strategy, TableCoversEveryEnumeratorExactlyOnce) {
  const auto& table = strategy_table();
  ASSERT_EQ(table.size(), 5u);
  std::set<SolveStrategy> seen;
  for (const StrategyInfo& row : table) {
    EXPECT_TRUE(seen.insert(row.strategy).second);
    EXPECT_NE(row.name[0], '\0');
    EXPECT_NE(row.summary[0], '\0');
    // Exactly one engine class per row; the portfolio runs both.
    EXPECT_TRUE(row.exact || row.heuristic);
  }
  for (const SolveStrategy s :
       {SolveStrategy::kExactDive, SolveStrategy::kExactFixOnce,
        SolveStrategy::kExactIlp, SolveStrategy::kLocalSearch,
        SolveStrategy::kPortfolio}) {
    EXPECT_EQ(seen.count(s), 1u) << to_string(s);
  }
}

TEST(Strategy, InfoByEnumMatchesTableRow) {
  for (const StrategyInfo& row : strategy_table()) {
    const StrategyInfo& info = strategy_info(row.strategy);
    EXPECT_EQ(&info, &row);
  }
}

TEST(Strategy, ParseResolvesCanonicalNamesAndAliases) {
  for (const StrategyInfo& row : strategy_table()) {
    const StrategyInfo* by_name = parse_strategy(row.name);
    ASSERT_NE(by_name, nullptr) << row.name;
    EXPECT_EQ(by_name->strategy, row.strategy);
    if (row.alias[0] != '\0') {
      const StrategyInfo* by_alias = parse_strategy(row.alias);
      ASSERT_NE(by_alias, nullptr) << row.alias;
      EXPECT_EQ(by_alias->strategy, row.strategy);
    }
  }
  // The two documented secondary spellings.
  ASSERT_NE(parse_strategy("exact"), nullptr);
  EXPECT_EQ(parse_strategy("exact")->strategy, SolveStrategy::kExactDive);
  ASSERT_NE(parse_strategy("ls"), nullptr);
  EXPECT_EQ(parse_strategy("ls")->strategy, SolveStrategy::kLocalSearch);
}

TEST(Strategy, ParseRejectsUnknownNames) {
  EXPECT_EQ(parse_strategy(""), nullptr);
  EXPECT_EQ(parse_strategy("simulated-annealing"), nullptr);
  EXPECT_EQ(parse_strategy("DIVE"), nullptr);  // spellings are exact
}

TEST(Strategy, ToStringRoundTripsThroughParse) {
  for (const StrategyInfo& row : strategy_table()) {
    const char* name = to_string(row.strategy);
    EXPECT_STREQ(name, row.name);
    const StrategyInfo* back = parse_strategy(name);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->strategy, row.strategy);
  }
}

TEST(Strategy, EngineClassFlagsMatchSemantics) {
  EXPECT_TRUE(strategy_info(SolveStrategy::kExactDive).exact);
  EXPECT_FALSE(strategy_info(SolveStrategy::kExactDive).heuristic);
  EXPECT_FALSE(strategy_info(SolveStrategy::kLocalSearch).exact);
  EXPECT_TRUE(strategy_info(SolveStrategy::kLocalSearch).heuristic);
  EXPECT_TRUE(strategy_info(SolveStrategy::kPortfolio).exact);
  EXPECT_TRUE(strategy_info(SolveStrategy::kPortfolio).heuristic);
  EXPECT_EQ(strategy_info(SolveStrategy::kExactFixOnce).rounding,
            RoundingStrategy::kThresholdFixOnce);
  EXPECT_EQ(strategy_info(SolveStrategy::kExactIlp).rounding,
            RoundingStrategy::kNone);
}

TEST(Strategy, CliValuesListEveryCanonicalName) {
  const std::string values = strategy_cli_values();
  for (const StrategyInfo& row : strategy_table()) {
    EXPECT_NE(values.find(row.name), std::string::npos) << row.name;
  }
}

}  // namespace
}  // namespace cgraf::core
