// Metamorphic and property tests for the shift/swap local-search state
// (core/local_search.h): move + inverse restores the score bit-exactly,
// deltas predict the applied change, equal-stress PE relabels leave the
// stress objective invariant, frozen/exclusivity violations are
// structurally impossible (contract aborts), and a fixed seed reproduces
// the search bit-for-bit.
#include "core/local_search.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "cgrra/stress.h"
#include "timing/paths.h"

namespace cgraf::core {
namespace {

constexpr double kDmuStress = 3.14 / 5.0;

// Ops given as (context, pe) pairs on a dim x dim fabric; all kMux, so
// every op carries the same stress.
struct Fixture {
  Design design;
  Floorplan base;
  std::vector<timing::TimingPath> monitored;
  RemapModelSpec spec;

  Fixture(int dim, const std::vector<std::pair<int, int>>& ops)
      : design{Fabric(dim, dim), 2, {}, {}} {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      Operation op;
      op.id = static_cast<int>(i);
      op.kind = OpKind::kMux;
      op.context = ops[i].first;
      design.ops.push_back(op);
      base.op_to_pe.push_back(ops[i].second);
    }
    spec.design = &design;
    spec.base = &base;
    spec.frozen.assign(ops.size(), 0);
    spec.candidates.assign(ops.size(), {});
    for (auto& c : spec.candidates)
      for (int pe = 0; pe < design.fabric.num_pes(); ++pe) c.push_back(pe);
    spec.st_target = -1.0;  // stress unchecked unless a test sets it
  }

  // One monitored path over `path_ops` in context 0 with a generous budget.
  void monitor(const std::vector<int>& path_ops, double cpd_ns) {
    timing::TimingPath p;
    p.context = 0;
    p.ops = path_ops;
    monitored.push_back(p);
    spec.monitored = &monitored;
    spec.cpd_ns = cpd_ns;
  }
};

TEST(LocalSearchMoves, ShiftRoundTripRestoresScoreBitExactly) {
  Fixture f(3, {{0, 0}, {0, 1}, {1, 0}, {1, 4}});
  f.spec.st_target = 0.5 * kDmuStress;  // penalties positive, not degenerate
  LsState state(f.spec);
  const double score0 = state.score();
  const double stress0 = state.stress_penalty();
  const double disp0 = state.displacement();

  ASSERT_TRUE(state.can_shift(1, 5));
  state.shift(1, 5);
  EXPECT_NE(state.displacement(), disp0);
  ASSERT_TRUE(state.can_shift(1, 1));
  state.shift(1, 1);

  EXPECT_EQ(state.score(), score0);
  EXPECT_EQ(state.stress_penalty(), stress0);
  EXPECT_EQ(state.displacement(), disp0);
  EXPECT_EQ(state.pe_of(1), 1);
}

TEST(LocalSearchMoves, SwapRoundTripRestoresScoreBitExactly) {
  Fixture f(3, {{0, 0}, {0, 4}, {1, 0}, {1, 8}});
  f.spec.st_target = 0.5 * kDmuStress;
  // Two DMU ops (~3.14 ns each) plus 2 Manhattan wire units: the 6.5 ns
  // budget leaves the path slightly over, so the penalty is exercised.
  f.monitor({0, 1}, 6.5);
  LsState state(f.spec);
  const double score0 = state.score();
  const double path0 = state.path_penalty();
  EXPECT_GT(path0, 0.0);

  ASSERT_TRUE(state.can_swap(0, 1));
  state.swap_ops(0, 1);
  ASSERT_TRUE(state.can_swap(0, 1));
  state.swap_ops(0, 1);

  EXPECT_EQ(state.score(), score0);
  EXPECT_EQ(state.path_penalty(), path0);
  EXPECT_EQ(state.pe_of(0), 0);
  EXPECT_EQ(state.pe_of(1), 4);
}

TEST(LocalSearchMoves, ShiftDeltaPredictsAppliedScoreChange) {
  Fixture f(3, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  f.spec.st_target = 1.5 * kDmuStress;  // PE0/PE1 overshoot, spread pays off
  LsState state(f.spec);
  const double before = state.score();
  ASSERT_TRUE(state.can_shift(2, 5));
  const double delta = state.shift_delta(2, 5);
  EXPECT_LT(delta, 0.0);  // moving off an overloaded PE must improve
  state.shift(2, 5);
  EXPECT_NEAR(state.score(), before + delta, 1e-9);
}

TEST(LocalSearchMoves, SwapDeltaPredictsAppliedScoreChange) {
  Fixture f(3, {{0, 0}, {0, 4}, {1, 0}, {1, 4}});
  f.spec.st_target = 1.5 * kDmuStress;
  f.monitor({0, 1}, 100.0);
  LsState state(f.spec);
  const double before = state.score();
  ASSERT_TRUE(state.can_swap(0, 1));
  const double delta = state.swap_delta(0, 1);
  state.swap_ops(0, 1);
  EXPECT_NEAR(state.score(), before + delta, 1e-9);
}

TEST(LocalSearchMoves, EqualStressPeRelabelLeavesObjectiveInvariant) {
  // Same multiset of per-PE stress under a PE permutation: the stress
  // objective must not depend on which equal-stress PE carries which op.
  Fixture a(3, {{0, 0}, {0, 1}, {1, 2}, {1, 3}});
  Fixture b(3, {{0, 1}, {0, 0}, {1, 3}, {1, 2}});
  a.spec.st_target = 0.5 * kDmuStress;
  b.spec.st_target = 0.5 * kDmuStress;
  LsState sa(a.spec);
  LsState sb(b.spec);
  EXPECT_EQ(sa.stress_penalty(), sb.stress_penalty());
  EXPECT_EQ(sa.max_stress(), sb.max_stress());
}

TEST(LocalSearchMoves, ScoreDecomposesWithPublicWeights) {
  Fixture f(3, {{0, 0}, {0, 1}, {1, 0}});
  f.spec.st_target = 0.5 * kDmuStress;
  f.monitor({0, 1}, 100.0);
  LsState state(f.spec);
  state.shift(1, 5);
  EXPECT_DOUBLE_EQ(state.score(),
                   LsState::kStressW * state.stress_penalty() +
                       LsState::kPathW * state.path_penalty() +
                       LsState::kDispW * state.displacement());
}

TEST(LocalSearchMoves, FrozenOpCannotMoveAndShiftAborts) {
  Fixture f(3, {{0, 0}, {0, 1}});
  f.spec.frozen[0] = 1;
  LsState state(f.spec);
  EXPECT_FALSE(state.can_shift(0, 5));
  EXPECT_FALSE(state.can_swap(0, 1));
  EXPECT_DEATH(state.shift(0, 5), "assertion");
}

TEST(LocalSearchMoves, ExclusivityViolatingShiftAborts) {
  Fixture f(3, {{0, 0}, {0, 1}});
  LsState state(f.spec);
  EXPECT_FALSE(state.can_shift(0, 1));  // PE1 occupied in context 0
  EXPECT_DEATH(state.shift(0, 1), "assertion");
}

TEST(LocalSearchMoves, ExclusivityViolatingSwapAborts) {
  // a(ctx0)@0 <-> b(ctx1)@1 would land a on PE1, already held by c in
  // context 0.
  Fixture f(3, {{0, 0}, {1, 1}, {0, 1}});
  LsState state(f.spec);
  EXPECT_FALSE(state.can_swap(0, 1));
  EXPECT_DEATH(state.swap_ops(0, 1), "assertion");
}

TEST(LocalSearchMoves, CandidateSetRestrictsShifts) {
  Fixture f(3, {{0, 0}, {0, 1}});
  f.spec.candidates[0] = {0, 2};
  LsState state(f.spec);
  EXPECT_TRUE(state.can_shift(0, 2));
  EXPECT_FALSE(state.can_shift(0, 3));  // legal slot, outside the set
}

TEST(LocalSearchMoves, FixedSeedIsBitReproducible) {
  Fixture f(4, {{0, 0}, {0, 1}, {0, 2}, {0, 3},
                {1, 0}, {1, 1}, {1, 2}, {1, 3}});
  f.spec.st_target = kDmuStress + 1e-6;
  LocalSearchOptions opts;
  opts.seed = 42;
  opts.max_iters = 400;
  opts.restarts = 3;
  const LocalSearchResult a = local_search_remap(f.spec, opts);
  const LocalSearchResult b = local_search_remap(f.spec, opts);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.floorplan.op_to_pe, b.floorplan.op_to_pe);
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.stats.moves_examined, b.stats.moves_examined);
  EXPECT_EQ(a.stats.moves_accepted, b.stats.moves_accepted);
}

TEST(LocalSearchMoves, SearchFindsCertifiedBalancedFloorplan) {
  // 8 ops on 16 PEs: a full spread meets the single-op stress target.
  Fixture f(4, {{0, 0}, {0, 1}, {0, 2}, {0, 3},
                {1, 0}, {1, 1}, {1, 2}, {1, 3}});
  f.spec.st_target = kDmuStress + 1e-6;
  LocalSearchOptions opts;
  opts.seed = 7;
  const LocalSearchResult r = local_search_remap(f.spec, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.certified);
  EXPECT_GT(r.stats.oracle_calls, 0);
  EXPECT_EQ(r.stats.oracle_rejections, 0);
  const StressMap stress = compute_stress(f.design, r.floorplan);
  EXPECT_LE(stress.max_accumulated(), f.spec.st_target + 1e-9);
  EXPECT_NEAR(r.max_stress, stress.max_accumulated(), 1e-12);
}

TEST(LocalSearchMoves, SearchRespectsFrozenOpsAndCandidates) {
  Fixture f(3, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  f.spec.st_target = kDmuStress + 1e-6;
  f.spec.frozen[0] = 1;
  f.spec.candidates[0] = {0};
  f.spec.candidates[1] = {1, 4, 5};
  LocalSearchOptions opts;
  opts.seed = 3;
  const LocalSearchResult r = local_search_remap(f.spec, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.floorplan.pe_of(0), 0);  // frozen op pinned
  const int pe1 = r.floorplan.pe_of(1);
  EXPECT_TRUE(pe1 == 1 || pe1 == 4 || pe1 == 5);
}

TEST(LocalSearchMoves, ExclusivityViolatingBaseReportsInfeasible) {
  // Two context-0 ops on one PE: the search must refuse cleanly (fuzzed
  // callers reach this), not assert.
  Fixture f(3, {{0, 0}, {0, 0}});
  LocalSearchOptions opts;
  const LocalSearchResult r = local_search_remap(f.spec, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.certified);
  EXPECT_EQ(r.floorplan.op_to_pe, f.base.op_to_pe);
}

TEST(LocalSearchMoves, RotatedBaseCollisionIsRepairedNotRejected) {
  // The rotation step relocates only the frozen critical-path group, so the
  // base it hands the search can have a frozen op parked on a free op's
  // slot. The search must repair the free op onto a free PE and proceed —
  // this exact shape made the CLI's `--strategy ls` path report infeasible.
  Fixture f(3, {{0, 0}, {0, 0}, {0, 1}, {1, 0}});
  f.spec.frozen[0] = 1;  // frozen op 0 occupies PE 0; free op 1 collides
  f.spec.candidates[0] = {0};
  f.spec.st_target = kDmuStress + 1e-6;
  LocalSearchOptions opts;
  opts.seed = 11;
  const LocalSearchResult r = local_search_remap(f.spec, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.stats.start_repairs, 1);
  EXPECT_EQ(r.floorplan.pe_of(0), 0);             // frozen op stays pinned
  EXPECT_NE(r.floorplan.pe_of(1), 0);             // collider was moved off
  const StressMap stress = compute_stress(f.design, r.floorplan);
  EXPECT_LE(stress.max_accumulated(), f.spec.st_target + 1e-9);
}

TEST(LocalSearchMoves, FrozenFrozenCollisionStaysInfeasible) {
  // Two pinned ops on one slot cannot be repaired: report cleanly.
  Fixture f(3, {{0, 0}, {0, 0}});
  f.spec.frozen.assign(2, 1);
  LocalSearchOptions opts;
  const LocalSearchResult r = local_search_remap(f.spec, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.stats.start_repairs, 0);
  EXPECT_EQ(r.floorplan.op_to_pe, f.base.op_to_pe);
}

TEST(LocalSearchMoves, AllFrozenSpecCertifiesTheBase) {
  Fixture f(3, {{0, 0}, {1, 1}});
  f.spec.st_target = kDmuStress + 1e-6;
  f.spec.frozen.assign(2, 1);
  f.spec.candidates[0] = {0};
  f.spec.candidates[1] = {1};
  LocalSearchOptions opts;
  const LocalSearchResult r = local_search_remap(f.spec, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.certified);
  EXPECT_EQ(r.floorplan.op_to_pe, f.base.op_to_pe);
  EXPECT_EQ(r.stats.moves_accepted, 0);
}

}  // namespace
}  // namespace cgraf::core
