#include "core/st_target.h"

#include <gtest/gtest.h>

#include "cgrra/stress.h"
#include "workloads/suite.h"

namespace cgraf::core {
namespace {

TEST(StTarget, BoundsComeFromTheBaselineStressMap) {
  const auto bench =
      workloads::generate_benchmark(workloads::table1_specs(false)[0]);
  const StressMap stress = compute_stress(bench.design, bench.baseline);
  const StTargetResult r = find_st_target(bench.design, bench.baseline);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.st_up, stress.max_accumulated());
  EXPECT_DOUBLE_EQ(r.st_low, stress.avg_accumulated());
}

TEST(StTarget, ResultIsWithinTheBracket) {
  const auto bench =
      workloads::generate_benchmark(workloads::table1_specs(false)[3]);
  const StTargetResult r = find_st_target(bench.design, bench.baseline);
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.st_target, r.st_low - 1e-12);
  EXPECT_LE(r.st_target, r.st_up + 1e-12);
}

TEST(StTarget, PerfectlyBalanceableDesignReachesTheAverage) {
  // 4 identical ops in one context on a 2x2 fabric: every PE can take
  // exactly one, so the average *of used stress spread over all PEs* is
  // achievable... with one op per PE the max equals each op's stress.
  Design d{Fabric(2, 2), 1, {}, {}};
  Floorplan base;
  for (int i = 0; i < 4; ++i) {
    Operation op;
    op.id = i;
    op.kind = OpKind::kAdd;
    op.context = 0;
    d.ops.push_back(op);
    base.op_to_pe.push_back(i);
  }
  const StTargetResult r = find_st_target(d, base);
  ASSERT_TRUE(r.ok);
  // All PEs hold one op each: ST_low == ST_up == per-op stress.
  EXPECT_NEAR(r.st_target, r.st_low, 1e-9);
}

TEST(StTarget, LowerBoundIsActuallyFeasibleDelayUnaware) {
  // The found target must admit a real (integer) delay-unaware floorplan
  // at or slightly above it (it is a relaxation-based lower bound).
  const auto bench =
      workloads::generate_benchmark(workloads::table1_specs(false)[1]);
  StTargetOptions opts;
  opts.confirm_with_ilp = true;  // run the full LP->round->ILP per probe
  const StTargetResult r = find_st_target(bench.design, bench.baseline, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(r.st_target, r.st_up);
}

TEST(StTarget, TighterToleranceNeverWorsensTheBound) {
  const auto bench =
      workloads::generate_benchmark(workloads::table1_specs(false)[4]);
  StTargetOptions loose;
  loose.tol_frac = 0.10;
  StTargetOptions tight;
  tight.tol_frac = 0.01;
  tight.max_iters = 24;
  const double t_loose =
      find_st_target(bench.design, bench.baseline, loose).st_target;
  const double t_tight =
      find_st_target(bench.design, bench.baseline, tight).st_target;
  EXPECT_LE(t_tight, t_loose + 1e-9);
}

TEST(StTarget, ProbeCountIsBounded) {
  const auto bench =
      workloads::generate_benchmark(workloads::table1_specs(false)[0]);
  StTargetOptions opts;
  opts.max_iters = 5;
  const StTargetResult r = find_st_target(bench.design, bench.baseline, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(r.probes, 5 + 1);  // initial ST_low probe + max_iters
}

}  // namespace
}  // namespace cgraf::core
