// Recreates the paper's Fig. 4 worked example (Section V.B.2).
//
// A 4x4 fabric where every PE-internal delay is 2 (normalized), the unit
// wire delay is 1 and adjacent PEs are 1 apart. path1 = PE1->PE5->PE9 has
// delay 2*3 + 2 = 8; path3 is critical with 6 ops: 2*6 + 5 = 17. The wire
// budget of path1 is (17 - 6)/1 = 11, i.e. a slack of 9 over its current
// wire length of 2, so its two off-critical ops may be re-mapped anywhere
// that keeps the path's wire length within 11 — exactly the freedom the
// paper's Fig. 4(c) uses to relieve the stressed PEs.
#include <gtest/gtest.h>

#include "core/candidates.h"
#include "core/model_builder.h"
#include "core/two_step.h"
#include "timing/paths.h"

namespace cgraf::core {
namespace {

struct Fig4 {
  Design design;
  Floorplan base;
  timing::TimingPath path1, path3;

  Fig4()
      : design{Fabric(4, 4, /*clock=*/100.0, /*unit_wire=*/1.0,
                      PeDelayModel{2.0, 2.0, 1.0, 0.0}),
               1,
               {},
               {}} {
    auto add_chain = [&](const std::vector<int>& pes) {
      std::vector<int> ops;
      for (const int pe : pes) {
        Operation op;
        op.id = design.num_ops();
        op.kind = OpKind::kAdd;  // delay 2.0 under this model
        op.context = 0;
        design.ops.push_back(op);
        base.op_to_pe.push_back(pe);
        if (!ops.empty()) design.edges.push_back({ops.back(), op.id});
        ops.push_back(op.id);
      }
      return ops;
    };
    // path1: column 0, rows 0..2 (PE1, PE5, PE9 in the paper's numbering).
    path1.context = 0;
    path1.ops = add_chain({0, 4, 8});
    path1.pe_delay_ns = 6.0;
    // path3: a 6-op snake with 5 unit wires -> delay 17 (the CPD).
    path3.context = 0;
    path3.ops = add_chain({1, 2, 3, 7, 6, 5});
    path3.pe_delay_ns = 12.0;
  }
};

TEST(Fig4Example, DelaysMatchThePaper) {
  Fig4 f;
  EXPECT_NEAR(path_delay_ns(f.design, f.base, f.path1), 8.0, 1e-12);
  EXPECT_NEAR(path_delay_ns(f.design, f.base, f.path3), 17.0, 1e-12);
  const auto sta = timing::run_sta(f.design, f.base);
  EXPECT_NEAR(sta.cpd_ns, 17.0, 1e-12);
}

TEST(Fig4Example, CriticalPathIsPath3) {
  Fig4 f;
  const timing::CombGraph graph(f.design);
  const auto cps = timing::critical_paths(graph, f.base, 0);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0].ops, f.path3.ops);
}

TEST(Fig4Example, Path1SlackIsNineWireUnits) {
  // Wire budget (17 - 6)/1 = 11; current wire = 2; slack = 9.
  Fig4 f;
  const double budget =
      (17.0 - f.path1.pe_delay_ns) / f.design.fabric.unit_wire_delay_ns();
  EXPECT_NEAR(budget, 11.0, 1e-12);
}

TEST(Fig4Example, CandidatesHonourThePathBudget) {
  Fig4 f;
  std::vector<char> frozen(static_cast<std::size_t>(f.design.num_ops()), 0);
  for (const int op : f.path3.ops) frozen[static_cast<std::size_t>(op)] = 1;
  frozen[static_cast<std::size_t>(f.path1.ops[0])] = 1;  // PE1 frozen (paper)
  CandidateOptions copts;
  copts.slack_multiplier = 1.0;
  const auto cands = compute_candidates(
      f.design, f.base, frozen, {f.path1, f.path3}, 17.0, copts);
  // The middle op (PE5) may move anywhere with dist(PE1,k)+dist(k,PE9') fit
  // into the per-op allowance 11 - (2 - 2) = 11 -> every PE qualifies on a
  // 4x4 fabric (max contribution 6+6=12 > 11 only for the far corner pair).
  EXPECT_GT(cands[static_cast<std::size_t>(f.path1.ops[1])].size(), 10u);
  // Frozen critical-path ops stay put.
  for (const int op : f.path3.ops)
    EXPECT_EQ(cands[static_cast<std::size_t>(op)],
              std::vector<int>{f.base.pe_of(op)});
}

TEST(Fig4Example, RemappedPathStaysWithinBudgetAndCpdHolds) {
  Fig4 f;
  std::vector<char> frozen(static_cast<std::size_t>(f.design.num_ops()), 0);
  for (const int op : f.path3.ops) frozen[static_cast<std::size_t>(op)] = 1;
  frozen[static_cast<std::size_t>(f.path1.ops[0])] = 1;

  std::vector<timing::TimingPath> monitored{f.path1, f.path3};
  const auto cands =
      compute_candidates(f.design, f.base, frozen, monitored, 17.0);

  RemapModelSpec spec;
  spec.design = &f.design;
  spec.base = &f.base;
  spec.frozen = frozen;
  spec.candidates = cands;
  // Tight stress target: force PE5/PE9 (ops 1 and 2 of path1) to move off
  // their stressed PEs, as in Fig. 4(c).
  spec.st_target = 2.0 / 100.0 + 1e-9;  // one op per PE at most
  spec.monitored = &monitored;
  spec.cpd_ns = 17.0;
  const RemapModel rm = build_remap_model(spec);
  ASSERT_FALSE(rm.trivially_infeasible);

  const TwoStepResult solved = solve_two_step(rm, {});
  ASSERT_EQ(solved.status, milp::SolveStatus::kOptimal);
  const Floorplan& fp = solved.floorplan;
  std::string why;
  ASSERT_TRUE(is_valid(f.design, fp, &why)) << why;

  // The re-mapped path1 respects its wire budget and the global CPD.
  EXPECT_LE(path_delay_ns(f.design, fp, f.path1), 17.0 + 1e-9);
  EXPECT_NEAR(path_delay_ns(f.design, fp, f.path3), 17.0, 1e-12);
  const auto sta = timing::run_sta(f.design, fp);
  EXPECT_LE(sta.cpd_ns, 17.0 + 1e-9);
  // And the stressed PEs were relieved: no PE carries two ops.
  const StressMap stress = compute_stress(f.design, fp);
  EXPECT_LE(stress.max_accumulated(), 2.0 / 100.0 + 1e-6);
}

}  // namespace
}  // namespace cgraf::core
