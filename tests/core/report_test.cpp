#include "core/report.h"

#include <gtest/gtest.h>

namespace cgraf::core {
namespace {

BenchmarkRun fake_run(const std::string& name, int contexts, int dim,
                      workloads::UsageBand band, double freeze_gain,
                      double rotate_gain) {
  BenchmarkRun run;
  run.spec.name = name;
  run.spec.contexts = contexts;
  run.spec.fabric_dim = dim;
  run.spec.band = band;
  run.total_ops = contexts * dim;
  run.freeze.mttf_gain = freeze_gain;
  run.freeze.cpd_before_ns = 4.0;
  run.freeze.cpd_after_ns = 4.0;
  run.rotate.mttf_gain = rotate_gain;
  run.rotate.cpd_before_ns = 4.0;
  run.rotate.cpd_after_ns = 4.0;
  return run;
}

TEST(Report, Table1ContainsRowsAndAverages) {
  std::vector<BenchmarkRun> runs;
  runs.push_back(fake_run("B1", 4, 4, workloads::UsageBand::kLow, 2.0, 2.5));
  runs.push_back(fake_run("B2", 4, 6, workloads::UsageBand::kLow, 3.0, 3.5));
  runs.push_back(
      fake_run("B10", 8, 4, workloads::UsageBand::kMedium, 1.5, 1.9));
  const std::string out = format_table1(runs);
  EXPECT_NE(out.find("B1"), std::string::npos);
  EXPECT_NE(out.find("B10"), std::string::npos);
  // Band averages: low freeze = 2.50, low rotate = 3.00.
  EXPECT_NE(out.find("low freeze=2.50 rotate=3.00"), std::string::npos);
  EXPECT_NE(out.find("medium freeze=1.50 rotate=1.90"), std::string::npos);
}

TEST(Report, Table1FlagsCpdRegressions) {
  std::vector<BenchmarkRun> runs;
  BenchmarkRun bad = fake_run("B9", 16, 8, workloads::UsageBand::kHigh, 1.1,
                              1.2);
  bad.rotate.cpd_after_ns = bad.rotate.cpd_before_ns + 0.5;  // regression!
  runs.push_back(bad);
  const std::string out = format_table1(runs);
  EXPECT_NE(out.find("NO"), std::string::npos);
}

TEST(Report, Table1MarksCleanRunsYes) {
  std::vector<BenchmarkRun> runs{
      fake_run("B1", 4, 4, workloads::UsageBand::kLow, 2.0, 2.5)};
  const std::string out = format_table1(runs);
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_EQ(out.find("NO"), std::string::npos);
}

TEST(Report, Fig5GroupsByConfiguration) {
  std::vector<BenchmarkRun> runs;
  runs.push_back(fake_run("B1", 4, 4, workloads::UsageBand::kLow, 2.0, 2.5));
  runs.push_back(
      fake_run("B10", 4, 4, workloads::UsageBand::kMedium, 1.6, 2.0));
  runs.push_back(fake_run("B19", 4, 4, workloads::UsageBand::kHigh, 1.3, 1.6));
  runs.push_back(fake_run("B4", 8, 4, workloads::UsageBand::kLow, 2.8, 3.1));
  const std::string out = format_fig5(runs);
  EXPECT_NE(out.find("C4F4"), std::string::npos);
  EXPECT_NE(out.find("C8F4"), std::string::npos);
  // The C4F4 row carries all three band gains.
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
  EXPECT_NE(out.find("1.60"), std::string::npos);
  // Missing bands render as '-'.
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(Report, SummedStageStatsReachSolverStatsJson) {
  // Every LpStageStats field must survive operator+= and land in the JSON
  // totals — a field added to the struct but forgotten in add() would show
  // only one stage's value here.
  milp::LpStageStats a;
  a.pricing_seconds = 0.5;
  a.ftran_seconds = 0.25;
  a.btran_seconds = 0.125;
  a.factor_seconds = 1.5;
  a.dse_seconds = 0.75;
  a.phase1_iterations = 3;
  a.full_refreshes = 5;
  a.bucket_rebuilds = 7;
  a.incremental_updates = 11;
  a.dual_iterations = 13;
  a.bound_flips = 17;
  a.refactorizations = 19;
  a.steepest_edge_resets = 23;
  a.dual_fallbacks = 29;
  milp::LpStageStats b;
  b.pricing_seconds = 0.25;
  b.ftran_seconds = 0.5;
  b.btran_seconds = 0.375;
  b.factor_seconds = 0.5;
  b.dse_seconds = 0.25;
  b.phase1_iterations = 100;
  b.full_refreshes = 100;
  b.bucket_rebuilds = 100;
  b.incremental_updates = 100;
  b.dual_iterations = 100;
  b.bound_flips = 100;
  b.refactorizations = 100;
  b.steepest_edge_resets = 100;
  b.dual_fallbacks = 100;
  a += b;
  EXPECT_DOUBLE_EQ(a.pricing_seconds, 0.75);
  EXPECT_DOUBLE_EQ(a.ftran_seconds, 0.75);
  EXPECT_DOUBLE_EQ(a.btran_seconds, 0.5);
  EXPECT_DOUBLE_EQ(a.factor_seconds, 2.0);
  EXPECT_DOUBLE_EQ(a.dse_seconds, 1.0);
  EXPECT_EQ(a.phase1_iterations, 103);
  EXPECT_EQ(a.full_refreshes, 105);
  EXPECT_EQ(a.bucket_rebuilds, 107);
  EXPECT_EQ(a.incremental_updates, 111);
  EXPECT_EQ(a.dual_iterations, 113);
  EXPECT_EQ(a.bound_flips, 117);
  EXPECT_EQ(a.refactorizations, 119);
  EXPECT_EQ(a.steepest_edge_resets, 123);
  EXPECT_EQ(a.dual_fallbacks, 129);

  TwoStepStats stats;
  stats.lp_stage = a;
  stats.lp_algorithm = milp::LpAlgorithm::kDual;
  const std::string json = solver_stats_json(stats);
  EXPECT_NE(json.find("\"algorithm\":\"dual\""), std::string::npos);
  EXPECT_NE(json.find("\"phase1_iterations\":103"), std::string::npos);
  EXPECT_NE(json.find("\"full_refreshes\":105"), std::string::npos);
  EXPECT_NE(json.find("\"bucket_rebuilds\":107"), std::string::npos);
  EXPECT_NE(json.find("\"incremental_updates\":111"), std::string::npos);
  EXPECT_NE(json.find("\"dual_iterations\":113"), std::string::npos);
  EXPECT_NE(json.find("\"bound_flips\":117"), std::string::npos);
  EXPECT_NE(json.find("\"refactorizations\":119"), std::string::npos);
  EXPECT_NE(json.find("\"steepest_edge_resets\":123"), std::string::npos);
  EXPECT_NE(json.find("\"dual_fallbacks\":129"), std::string::npos);
  // The binary-exact doubles above render without rounding surprises.
  EXPECT_NE(json.find("\"pricing_seconds\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"dse_seconds\":1"), std::string::npos);

  const std::string table = format_solver_stats(stats);
  EXPECT_NE(table.find("dual iterations"), std::string::npos);
  EXPECT_NE(table.find("113"), std::string::npos);
  EXPECT_NE(table.find("bound flips"), std::string::npos);
  EXPECT_NE(table.find("LP algorithm"), std::string::npos);
  EXPECT_NE(table.find("dual"), std::string::npos);
}

TEST(Report, RunBenchmarkProducesBothVariants) {
  workloads::BenchmarkSpec spec;
  spec.name = "rb";
  spec.contexts = 4;
  spec.fabric_dim = 4;
  spec.usage = 0.4;
  spec.seed = 33;
  const auto bench = workloads::generate_benchmark(spec);
  const BenchmarkRun run = run_benchmark(bench, {});
  EXPECT_EQ(run.total_ops, bench.total_ops);
  EXPECT_GE(run.freeze.mttf_gain, 1.0);
  EXPECT_GE(run.rotate.mttf_gain, 1.0);
  EXPECT_LE(run.freeze.cpd_after_ns, run.freeze.cpd_before_ns + 1e-9);
  EXPECT_LE(run.rotate.cpd_after_ns, run.rotate.cpd_before_ns + 1e-9);
}

}  // namespace
}  // namespace cgraf::core
