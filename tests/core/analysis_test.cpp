#include "core/analysis.h"

#include <gtest/gtest.h>

#include "core/remapper.h"
#include "workloads/suite.h"

namespace cgraf::core {
namespace {

Design small_design() {
  Design d{Fabric(4, 4, 5.0, 0.2), 2, {}, {}};
  auto add = [&](OpKind kind, int ctx) {
    Operation op;
    op.id = d.num_ops();
    op.kind = kind;
    op.context = ctx;
    d.ops.push_back(op);
  };
  add(OpKind::kAdd, 0);
  add(OpKind::kAdd, 0);
  add(OpKind::kMux, 1);
  d.edges.push_back({0, 1});  // combinational (ctx 0)
  d.edges.push_back({1, 2});  // registered (crosses contexts)
  return d;
}

TEST(Analysis, IdenticalFloorplansDiffToZero) {
  const Design d = small_design();
  const Floorplan fp{{0, 1, 2}};
  const FloorplanDiff diff = diff_floorplans(d, fp, fp);
  EXPECT_EQ(diff.ops_moved, 0);
  EXPECT_EQ(diff.max_displacement, 0);
  EXPECT_DOUBLE_EQ(diff.avg_displacement, 0.0);
  EXPECT_EQ(diff.wirelength_before, diff.wirelength_after);
  EXPECT_DOUBLE_EQ(diff.cpd_before_ns, diff.cpd_after_ns);
  EXPECT_TRUE(diff.moved_ops.empty());
}

TEST(Analysis, DiffTracksMovesAndWirelength) {
  const Design d = small_design();
  const Floorplan a{{0, 1, 2}};   // line: wires 1 + 1
  const Floorplan b{{0, 1, 15}};  // op2 to the far corner
  const FloorplanDiff diff = diff_floorplans(d, a, b);
  EXPECT_EQ(diff.ops_moved, 1);
  EXPECT_EQ(diff.moved_ops, std::vector<int>{2});
  EXPECT_EQ(diff.max_displacement, manhattan({2, 0}, {3, 3}));
  EXPECT_EQ(diff.wirelength_before, 2);
  EXPECT_EQ(diff.wirelength_after, 1 + manhattan({1, 0}, {3, 3}));
  // op2 is alone in its context: moving it cannot change any context CPD.
  EXPECT_DOUBLE_EQ(diff.cpd_before_ns, diff.cpd_after_ns);
}

TEST(Analysis, PerContextStats) {
  const Design d = small_design();
  const Floorplan fp{{0, 2, 5}};
  const auto stats = per_context_stats(d, fp);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].ops, 2);
  EXPECT_EQ(stats[1].ops, 1);
  EXPECT_EQ(stats[0].comb_wirelength, 2);  // (0,0) -> (2,0)
  EXPECT_EQ(stats[1].comb_wirelength, 0);  // cross-context edge not counted
  EXPECT_EQ(stats[0].bbox.width(), 3);
  EXPECT_EQ(stats[0].bbox.height(), 1);
  EXPECT_NEAR(stats[0].cpd_ns, 2 * 0.87 + 2 * 0.2, 1e-9);
  EXPECT_NEAR(stats[1].cpd_ns, 3.14, 1e-9);
}

TEST(Analysis, FormatDiffMentionsTheNumbers) {
  const Design d = small_design();
  const FloorplanDiff diff =
      diff_floorplans(d, Floorplan{{0, 1, 2}}, Floorplan{{0, 1, 15}});
  const std::string out = format_diff(diff);
  EXPECT_NE(out.find("1 / 3"), std::string::npos);
  EXPECT_NE(out.find("wirelength"), std::string::npos);
  EXPECT_NE(out.find("cpd"), std::string::npos);
}

TEST(Analysis, RemapDiffIsConsistentWithRemapResult) {
  workloads::BenchmarkSpec spec;
  spec.name = "an";
  spec.contexts = 4;
  spec.fabric_dim = 4;
  spec.usage = 0.4;
  spec.seed = 12;
  const auto bench = workloads::generate_benchmark(spec);
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, {});
  const FloorplanDiff diff =
      diff_floorplans(bench.design, bench.baseline, r.floorplan);
  EXPECT_NEAR(diff.cpd_before_ns, r.cpd_before_ns, 1e-9);
  EXPECT_NEAR(diff.cpd_after_ns, r.cpd_after_ns, 1e-9);
  EXPECT_NEAR(diff.st_max_before, r.st_max_before, 1e-9);
  EXPECT_NEAR(diff.st_max_after, r.st_max_after, 1e-9);
  if (r.improved) {
    EXPECT_GT(diff.ops_moved, 0);
  }
}

}  // namespace
}  // namespace cgraf::core
