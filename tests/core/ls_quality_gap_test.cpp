// LS-vs-exact quality gap over the Table-I suite plus a seeded corpus.
//
// For every benchmark both solvers walk the same descending stress-target
// ladder between the fabric-average lower bound and the baseline maximum;
// each records the tightest rung it can satisfy (the exact side through the
// warm ProbeSession MILP pipeline, the heuristic through
// local_search_remap). The contract: every LS success carries a green
// certificate, per-case gaps stay within a generous class bound, and the
// median gap across the whole corpus is at most 5%. Each case also emits a
// `CGRAF_BENCH_JSON` gap row so the bench harness can track the trajectory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cgrra/stress.h"
#include "core/local_search.h"
#include "core/probe_session.h"
#include "obs/json_writer.h"
#include "util/geometry.h"
#include "workloads/suite.h"

namespace cgraf::core {
namespace {

// Rungs as fractions of (st_up - st_low) above st_low, loosest first. The
// loosest rung equals the baseline maximum, which the identity binding
// satisfies, so every case has at least one feasible rung.
constexpr double kRungs[] = {1.0, 0.8, 0.62, 0.47, 0.35, 0.25, 0.18};
constexpr int kNumRungs = static_cast<int>(sizeof(kRungs) / sizeof(kRungs[0]));

// Candidate sets capped to a Manhattan radius around each op's baseline PE:
// identical for both solvers (the comparison stays apples-to-apples) and
// keeps the exact model tractable on the 8x8 fabrics.
std::vector<std::vector<int>> radius_candidates(const Design& design,
                                                const Floorplan& base,
                                                int radius) {
  const Fabric& fabric = design.fabric;
  std::vector<std::vector<int>> cand(design.ops.size());
  for (std::size_t op = 0; op < design.ops.size(); ++op) {
    const Point home = fabric.loc(base.pe_of(static_cast<int>(op)));
    for (int pe = 0; pe < fabric.num_pes(); ++pe) {
      if (manhattan(fabric.loc(pe), home) <= radius) cand[op].push_back(pe);
    }
  }
  return cand;
}

struct GapCase {
  std::string name;
  workloads::UsageBand band;
  int total_ops = 0;
  double exact_target = 0.0;  // tightest rung the exact pipeline satisfied
  double ls_target = 0.0;     // tightest rung the local search satisfied
  double gap = 0.0;           // max(0, ls - exact) / exact
};

GapCase run_case(const workloads::GeneratedBenchmark& bench) {
  GapCase out;
  out.name = bench.spec.name;
  out.band = bench.spec.band;
  out.total_ops = bench.total_ops;

  const StressMap base_stress = compute_stress(bench.design, bench.baseline);
  const double st_up = base_stress.max_accumulated();
  const double st_low = base_stress.avg_accumulated();

  RemapModelSpec spec;
  spec.design = &bench.design;
  spec.base = &bench.baseline;
  spec.frozen.assign(bench.design.ops.size(), 0);
  const int radius = bench.spec.fabric_dim >= 8 ? 1 : 2;
  spec.candidates = radius_candidates(bench.design, bench.baseline, radius);

  auto rung = [&](int k) { return st_low + kRungs[k] * (st_up - st_low); };

  // Exact: budgeted feasibility solves (the remapper's production knobs),
  // descending until the first rung the pipeline cannot satisfy.
  {
    TwoStepOptions solver;
    solver.mip.stop_at_first_incumbent = true;
    solver.mip.max_nodes = 4000;
    solver.mip.time_limit_s = 10.0;
    ProbeSession session(spec, solver);
    out.exact_target = rung(0);
    for (int k = 0; k < kNumRungs; ++k) {
      const TwoStepResult r = session.solve(rung(k));
      if (r.status != milp::SolveStatus::kOptimal) break;
      out.exact_target = rung(k);
    }
  }

  // Heuristic: same ladder, same stop rule; every success must certify.
  {
    LocalSearchOptions opts;
    opts.seed = bench.spec.seed ^ 0x15c4ULL;
    opts.max_iters =
        std::max(3000, 12 * static_cast<int>(bench.design.ops.size()));
    opts.restarts = 3;
    out.ls_target = rung(0);
    for (int k = 0; k < kNumRungs; ++k) {
      RemapModelSpec ls_spec = spec;
      ls_spec.st_target = rung(k);
      const LocalSearchResult r = local_search_remap(ls_spec, opts);
      if (!r.feasible) break;
      EXPECT_TRUE(r.certified) << out.name << " rung " << k;
      EXPECT_LE(r.max_stress, rung(k) + 1e-9) << out.name << " rung " << k;
      out.ls_target = rung(k);
    }
  }

  out.gap = std::max(0.0, out.ls_target - out.exact_target) /
            std::max(out.exact_target, 1e-12);

  obs::JsonWriter w;
  w.begin_object()
      .field("case", ("ls_gap_" + out.name).c_str())
      .field("band", workloads::to_string(out.band))
      .field("total_ops", out.total_ops)
      .field("exact_target", out.exact_target)
      .field("ls_target", out.ls_target)
      .field("gap", out.gap)
      .end_object();
  std::printf("CGRAF_BENCH_JSON %s\n", w.str().c_str());
  return out;
}

void check_corpus(const std::vector<GapCase>& cases) {
  ASSERT_FALSE(cases.empty());
  // Per-class bound: a heuristic may trail the exact pipeline on a rung or
  // two, but never collapse. The ladder spacing makes 0.5 a miss of several
  // rungs.
  for (const GapCase& c : cases) {
    EXPECT_LE(c.gap, 0.5) << c.name;
  }
  std::vector<double> gaps;
  for (const GapCase& c : cases) gaps.push_back(c.gap);
  std::sort(gaps.begin(), gaps.end());
  const double median = gaps[gaps.size() / 2];
  EXPECT_LE(median, 0.05) << "median gap over " << gaps.size() << " cases";
}

TEST(LsQualityGap, Table1SuiteMedianGapWithinFivePercent) {
  std::vector<GapCase> cases;
  for (const workloads::BenchmarkSpec& spec : workloads::table1_specs()) {
    cases.push_back(run_case(workloads::generate_benchmark(spec)));
  }
  check_corpus(cases);
}

TEST(LsQualityGap, SeededCorpusMedianGapWithinFivePercent) {
  // Re-seeded variants of the small/medium specs: different netlists and
  // baselines, same contract.
  std::vector<GapCase> cases;
  const auto specs = workloads::table1_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    workloads::BenchmarkSpec spec = specs[i];
    if (spec.fabric_dim > 6) continue;
    spec.seed ^= 0xc0ffee00ULL + i;
    spec.name += "_s2";
    cases.push_back(run_case(workloads::generate_benchmark(spec)));
  }
  check_corpus(cases);
}

}  // namespace
}  // namespace cgraf::core
