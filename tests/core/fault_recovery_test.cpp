// Fault-recovery re-mapping: blocked (failed/worn-out) PEs must end up
// empty in the result while the CPD guarantee still holds.
#include <gtest/gtest.h>

#include "cgrra/stress.h"
#include "core/remapper.h"
#include "workloads/suite.h"

namespace cgraf::core {
namespace {

workloads::GeneratedBenchmark make_bench(std::uint64_t seed, double usage) {
  workloads::BenchmarkSpec spec;
  spec.name = "fr";
  spec.contexts = 4;
  spec.fabric_dim = 4;
  spec.usage = usage;
  spec.seed = seed;
  return workloads::generate_benchmark(spec);
}

std::vector<int> pes_used(const Design& d, const Floorplan& fp) {
  std::vector<int> used(static_cast<std::size_t>(d.fabric.num_pes()), 0);
  for (const Operation& op : d.ops)
    used[static_cast<std::size_t>(fp.pe_of(op.id))] = 1;
  return used;
}

TEST(FaultRecovery, BlockedPesEndUpEmpty) {
  const auto bench = make_bench(17, 0.5);
  // Block the most-stressed PE of the baseline (a realistic wear-out).
  const StressMap stress = compute_stress(bench.design, bench.baseline);
  RemapOptions opts;
  opts.blocked_pes = {stress.argmax()};
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);

  std::string why;
  ASSERT_TRUE(is_valid(bench.design, r.floorplan, &why)) << why;
  const std::vector<int> used = pes_used(bench.design, r.floorplan);
  EXPECT_EQ(used[static_cast<std::size_t>(stress.argmax())], 0)
      << "blocked PE still hosts ops";
  EXPECT_LE(r.cpd_after_ns, r.cpd_before_ns + 1e-9);
}

TEST(FaultRecovery, MultipleBlockedPes) {
  const auto bench = make_bench(18, 0.4);
  RemapOptions opts;
  opts.blocked_pes = {0, 5, 10};
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  std::string why;
  ASSERT_TRUE(is_valid(bench.design, r.floorplan, &why)) << why;
  const std::vector<int> used = pes_used(bench.design, r.floorplan);
  for (const int pe : opts.blocked_pes)
    EXPECT_EQ(used[static_cast<std::size_t>(pe)], 0) << "PE " << pe;
  EXPECT_LE(r.cpd_after_ns, r.cpd_before_ns + 1e-9);
}

TEST(FaultRecovery, BlockedCriticalPathPeIsEvacuated) {
  // Block a PE that carries critical-path ops: those ops must still move
  // (they are unfrozen) without growing the CPD.
  const auto bench = make_bench(19, 0.5);
  const timing::CombGraph graph(bench.design);
  const auto cps = timing::critical_paths(graph, bench.baseline, 0, 4);
  ASSERT_FALSE(cps.empty());
  const int cp_pe = bench.baseline.pe_of(cps[0].ops.front());

  RemapOptions opts;
  opts.mode = RemapMode::kFreeze;
  opts.blocked_pes = {cp_pe};
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  std::string why;
  ASSERT_TRUE(is_valid(bench.design, r.floorplan, &why)) << why;
  const std::vector<int> used = pes_used(bench.design, r.floorplan);
  EXPECT_EQ(used[static_cast<std::size_t>(cp_pe)], 0);
  EXPECT_LE(r.cpd_after_ns, r.cpd_before_ns + 1e-9);
}

TEST(FaultRecovery, WorksInRotateModeToo) {
  const auto bench = make_bench(20, 0.45);
  RemapOptions opts;
  opts.mode = RemapMode::kRotate;
  opts.blocked_pes = {3, 12};
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  std::string why;
  ASSERT_TRUE(is_valid(bench.design, r.floorplan, &why)) << why;
  const std::vector<int> used = pes_used(bench.design, r.floorplan);
  EXPECT_EQ(used[3], 0);
  EXPECT_EQ(used[12], 0);
}

TEST(FaultRecovery, ImpossibleRecoveryKeepsBaseline) {
  // A fully-utilized context cannot shed a PE: no recovery floorplan
  // exists, and the baseline must be returned unchanged (caller decides).
  Rng rng(77);
  const Fabric fabric(3, 3);
  const std::vector<int> per_context{9, 9};  // both contexts completely full
  const Design design =
      workloads::generate_multicontext_design(fabric, 2, per_context, rng);
  hls::PlacerOptions popts;
  popts.seed = 77;
  const Floorplan baseline = place_baseline(design, popts);

  RemapOptions opts;
  opts.blocked_pes = {4};
  opts.max_outer_iters = 8;
  const RemapResult r = aging_aware_remap(design, baseline, opts);
  EXPECT_EQ(r.floorplan.op_to_pe, baseline.op_to_pe);
  EXPECT_FALSE(r.improved);
}

TEST(FaultRecovery, NoBlockedPesBehavesAsBefore) {
  const auto bench = make_bench(21, 0.4);
  RemapOptions plain;
  RemapOptions empty_blocked;
  empty_blocked.blocked_pes = {};
  const RemapResult a = aging_aware_remap(bench.design, bench.baseline, plain);
  const RemapResult b =
      aging_aware_remap(bench.design, bench.baseline, empty_blocked);
  EXPECT_EQ(a.floorplan.op_to_pe, b.floorplan.op_to_pe);
}

}  // namespace
}  // namespace cgraf::core
