// Behavioural coverage of the RemapOptions knobs.
#include <gtest/gtest.h>

#include "core/remapper.h"
#include "workloads/suite.h"

namespace cgraf::core {
namespace {

workloads::GeneratedBenchmark bench_for(std::uint64_t seed) {
  workloads::BenchmarkSpec spec;
  spec.name = "opt";
  spec.contexts = 4;
  spec.fabric_dim = 4;
  spec.usage = 0.45;
  spec.seed = seed;
  return workloads::generate_benchmark(spec);
}

TEST(RemapperOptions, ZeroOuterItersReturnsBaseline) {
  const auto bench = bench_for(1);
  RemapOptions opts;
  opts.max_outer_iters = 0;
  opts.lp_presearch = false;
  opts.rotation_retries = 0;
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  EXPECT_FALSE(r.improved);
  EXPECT_EQ(r.floorplan.op_to_pe, bench.baseline.op_to_pe);
  EXPECT_DOUBLE_EQ(r.mttf_gain, 1.0);
}

TEST(RemapperOptions, NullObjectiveStillWorks) {
  const auto bench = bench_for(2);
  RemapOptions opts;
  opts.objective = ObjectiveMode::kNull;  // the paper's literal "ObjFunc: Null"
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  std::string why;
  EXPECT_TRUE(is_valid(bench.design, r.floorplan, &why)) << why;
  EXPECT_LE(r.cpd_after_ns, r.cpd_before_ns + 1e-9);
}

TEST(RemapperOptions, ZeroMarginMonitorsOnlyCriticalPaths) {
  const auto bench = bench_for(3);
  RemapOptions tight;
  tight.path_margin = 0.0;
  const RemapResult a = aging_aware_remap(bench.design, bench.baseline, tight);
  RemapOptions wide;
  wide.path_margin = 0.5;
  const RemapResult b = aging_aware_remap(bench.design, bench.baseline, wide);
  EXPECT_LE(a.num_monitored_paths, b.num_monitored_paths);
  // The STA re-check protects the CPD regardless of the margin.
  EXPECT_LE(a.cpd_after_ns, a.cpd_before_ns + 1e-9);
  EXPECT_LE(b.cpd_after_ns, b.cpd_before_ns + 1e-9);
}

TEST(RemapperOptions, RadiusCapBoundsDisplacement) {
  const auto bench = bench_for(4);
  RemapOptions opts;
  opts.mode = RemapMode::kFreeze;  // rotation moves frozen ops arbitrarily
  opts.candidates.radius_cap = 2;
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  for (const Operation& op : bench.design.ops) {
    const int moved = manhattan(
        bench.design.fabric.loc(bench.baseline.pe_of(op.id)),
        bench.design.fabric.loc(r.floorplan.pe_of(op.id)));
    EXPECT_LE(moved, 2) << "op " << op.id;
  }
}

TEST(RemapperOptions, DisabledPresearchStillConverges) {
  const auto bench = bench_for(5);
  RemapOptions opts;
  opts.lp_presearch = false;
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  std::string why;
  EXPECT_TRUE(is_valid(bench.design, r.floorplan, &why)) << why;
  EXPECT_LE(r.cpd_after_ns, r.cpd_before_ns + 1e-9);
}

TEST(RemapperOptions, RefineProbesNeverHurt) {
  const auto bench = bench_for(6);
  RemapOptions none;
  none.refine_probes = 0;
  RemapOptions some;
  some.refine_probes = 4;
  const RemapResult a = aging_aware_remap(bench.design, bench.baseline, none);
  const RemapResult b = aging_aware_remap(bench.design, bench.baseline, some);
  EXPECT_LE(b.st_max_after, a.st_max_after + 1e-9);
}

TEST(RemapperOptions, ReportsSolverStatistics) {
  const auto bench = bench_for(7);
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, {});
  EXPECT_GT(r.outer_iterations, 0);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GE(r.num_monitored_paths, 1);
  EXPECT_GE(r.num_frozen_ops, 1);
  if (r.improved) {
    EXPECT_GT(r.last_solve.lp_iterations + r.last_solve.mip_nodes, 0);
  }
}

TEST(RemapperOptions, MttfReportsAreInternallyConsistent) {
  const auto bench = bench_for(8);
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, {});
  EXPECT_NEAR(r.mttf_gain,
              r.mttf_after.mttf_seconds / r.mttf_before.mttf_seconds, 1e-9);
  EXPECT_NEAR(r.mttf_before.mttf_years,
              r.mttf_before.mttf_seconds / aging::kSecondsPerYear, 1e-9);
}

}  // namespace
}  // namespace cgraf::core
