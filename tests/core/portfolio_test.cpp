// Exact-vs-local-search portfolio race (core/portfolio.h): the race always
// returns a certified floorplan when either side can produce one, the
// exact side wins outright when the heuristic is starved, the LS sprint
// seeds the branch & bound's opening incumbent, and the race's invariants
// hold for every worker thread count (the TSan lane runs this suite).
#include "core/portfolio.h"

#include <gtest/gtest.h>

#include <vector>

#include "cgrra/stress.h"
#include "milp/branch_and_bound.h"
#include "core/local_search.h"

namespace cgraf::core {
namespace {

constexpr double kDmuStress = 3.14 / 5.0;

// One fixture shape shared by every test: n kMux ops over 2 contexts on a
// dim x dim fabric, packed onto the low PEs so balancing requires moves.
struct Fixture {
  Design design;
  Floorplan base;
  RemapModelSpec spec;

  Fixture(int n, int dim) : design{Fabric(dim, dim), 2, {}, {}} {
    for (int i = 0; i < n; ++i) {
      Operation op;
      op.id = i;
      op.kind = OpKind::kMux;
      op.context = i % 2;
      design.ops.push_back(op);
      base.op_to_pe.push_back(i / 2);
    }
    spec.design = &design;
    spec.base = &base;
    spec.frozen.assign(design.ops.size(), 0);
    spec.candidates.assign(design.ops.size(), {});
    for (auto& c : spec.candidates)
      for (int pe = 0; pe < design.fabric.num_pes(); ++pe) c.push_back(pe);
  }
};

Floorplan winning_floorplan(const PortfolioResult& pr) {
  return pr.winner == PortfolioWinner::kExact ? pr.exact.floorplan
                                              : pr.ls.floorplan;
}

TEST(Portfolio, RaceProducesAStressFeasibleFloorplan) {
  Fixture f(8, 4);
  const double target = kDmuStress + 1e-6;
  ProbeSession session(f.spec, {});
  PortfolioOptions popts;
  popts.ls.seed = 5;
  const PortfolioResult pr = race_portfolio(session, f.spec, target, popts);
  ASSERT_NE(pr.winner, PortfolioWinner::kNone);
  const Floorplan fp = winning_floorplan(pr);
  std::string why;
  ASSERT_TRUE(is_valid(f.design, fp, &why)) << why;
  const StressMap stress = compute_stress(f.design, fp);
  EXPECT_LE(stress.max_accumulated(), target + 1e-9);
  EXPECT_GT(pr.seconds, 0.0);
}

TEST(Portfolio, ExactWinsOutrightWhenHeuristicIsStarved) {
  Fixture f(8, 4);
  const double target = kDmuStress + 1e-6;
  ProbeSession session(f.spec, {});
  PortfolioOptions popts;
  popts.seed_incumbent = false;  // no sprint help either
  popts.ls.max_iters = 1;        // one examined move cannot rebalance 8 ops
  popts.ls.restarts = 1;
  const PortfolioResult pr = race_portfolio(session, f.spec, target, popts);
  ASSERT_EQ(pr.winner, PortfolioWinner::kExact);
  EXPECT_FALSE(pr.incumbent_seeded);
  EXPECT_EQ(pr.exact.status, milp::SolveStatus::kOptimal);
  EXPECT_FALSE(pr.ls.feasible);
  std::string why;
  ASSERT_TRUE(is_valid(f.design, pr.exact.floorplan, &why)) << why;
  const StressMap stress = compute_stress(f.design, pr.exact.floorplan);
  EXPECT_LE(stress.max_accumulated(), target + 1e-9);
}

TEST(Portfolio, SprintSeedsTheExactSidesIncumbent) {
  Fixture f(8, 4);
  const double target = kDmuStress + 1e-6;
  ProbeSession session(f.spec, {});
  PortfolioOptions popts;
  popts.ls.seed = 11;
  popts.sprint_iters = 2000;  // ample budget: the sprint must succeed
  const PortfolioResult pr = race_portfolio(session, f.spec, target, popts);
  EXPECT_TRUE(pr.incumbent_seeded);
  ASSERT_NE(pr.winner, PortfolioWinner::kNone);
  std::string why;
  ASSERT_TRUE(is_valid(f.design, winning_floorplan(pr), &why)) << why;
}

TEST(Portfolio, SeededIncumbentShrinksTheBnbTree) {
  // The portfolio's seeding mechanism, isolated: a certified LS floorplan
  // encoded into the exact model enters the search as the opening incumbent
  // and supplies the gap cutoff from node one. With a best-first pool the
  // nodes below the optimum must be processed either way, so the measurable
  // saving is the incumbent-hunting prefix: under an absolute gap the
  // unseeded tree branches until it finds its own incumbent while the
  // seeded tree stops as soon as the bound is within gap of the seed.
  //
  // Heterogeneous stresses (DMU 0.628 vs ALU 0.174) packed onto a 3x3
  // fabric: the only balanced layouts pair muxes with adds, so the root LP
  // is fractional and the unseeded incumbent hunt takes real branching.
  Fixture f(16, 3);
  for (int i = 0; i < 16; ++i) {
    f.design.ops[static_cast<std::size_t>(i)].kind =
        (i % 4) < 2 ? OpKind::kMux : OpKind::kAdd;
  }
  constexpr double kAluStress = 0.87 / 5.0;
  f.spec.st_target = kDmuStress + kAluStress + 1e-6;
  const RemapModel rm = build_remap_model(f.spec);
  ASSERT_FALSE(rm.trivially_infeasible);

  milp::MipOptions mo;
  mo.num_threads = 1;  // deterministic node counts
  mo.abs_gap = 2.0;    // displacement units; the portfolio's sprint regime
  const milp::MipResult unseeded = solve_milp(rm.model, mo);
  ASSERT_EQ(unseeded.status, milp::SolveStatus::kOptimal);
  ASSERT_GT(unseeded.nodes, 1);
  EXPECT_FALSE(unseeded.incumbent_seeded);

  LocalSearchOptions ls_opts;
  ls_opts.seed = 17;
  ls_opts.max_iters = 6000;
  ls_opts.restarts = 6;
  const LocalSearchResult lsr = local_search_remap(f.spec, ls_opts);
  ASSERT_TRUE(lsr.feasible && lsr.certified);
  const std::vector<double> seed = rm.encode(lsr.floorplan);
  ASSERT_FALSE(seed.empty());

  milp::MipOptions seeded_opts = mo;
  seeded_opts.initial_incumbent = &seed;
  const milp::MipResult seeded = solve_milp(rm.model, seeded_opts);
  EXPECT_TRUE(seeded.incumbent_seeded);
  EXPECT_EQ(seeded.status, milp::SolveStatus::kOptimal);
  EXPECT_LE(seeded.obj, unseeded.obj + mo.abs_gap + 1e-6);
  EXPECT_LT(seeded.nodes, unseeded.nodes);
}

TEST(Portfolio, RaceInvariantsHoldAcrossThreadCounts) {
  // The TSan lane's target: exercise the full race (sprint, seeding, both
  // racers, cancellation, join) under 1/2/4 B&B workers. Whatever the
  // interleaving, the returned floorplan must be valid and stress-feasible
  // and both racers must have come to rest.
  const double target = kDmuStress + 1e-6;
  for (const int threads : {1, 2, 4}) {
    Fixture f(8, 4);
    TwoStepOptions solver;
    solver.mip.num_threads = threads;
    ProbeSession session(f.spec, solver);
    PortfolioOptions popts;
    popts.ls.seed = 23;
    const PortfolioResult pr = race_portfolio(session, f.spec, target, popts);
    ASSERT_NE(pr.winner, PortfolioWinner::kNone) << threads << " threads";
    const Floorplan fp = winning_floorplan(pr);
    std::string why;
    ASSERT_TRUE(is_valid(f.design, fp, &why)) << threads << ": " << why;
    const StressMap stress = compute_stress(f.design, fp);
    EXPECT_LE(stress.max_accumulated(), target + 1e-9);
    if (pr.ls.feasible) {
      EXPECT_TRUE(pr.ls.certified);
    }
  }
}

TEST(Portfolio, LocalSearchSideIsSeedDeterministic) {
  // The racing LS is single-threaded and seed-deterministic; when it wins
  // uncancelled it must reproduce the standalone search bit-for-bit.
  Fixture f(8, 4);
  f.spec.st_target = kDmuStress + 1e-6;
  LocalSearchOptions ls_opts;
  ls_opts.seed = 29;
  const LocalSearchResult standalone = local_search_remap(f.spec, ls_opts);
  ASSERT_TRUE(standalone.feasible);

  ProbeSession session(f.spec, {});
  PortfolioOptions popts;
  popts.ls = ls_opts;
  popts.seed_incumbent = false;
  const PortfolioResult pr =
      race_portfolio(session, f.spec, f.spec.st_target, popts);
  if (pr.winner == PortfolioWinner::kLocalSearch) {
    EXPECT_EQ(pr.ls.floorplan.op_to_pe, standalone.floorplan.op_to_pe);
    EXPECT_EQ(pr.ls.score, standalone.score);
  }
}

TEST(Portfolio, WinnerNamesMatchTheEventVocabulary) {
  EXPECT_STREQ(to_string(PortfolioWinner::kNone), "none");
  EXPECT_STREQ(to_string(PortfolioWinner::kExact), "exact");
  EXPECT_STREQ(to_string(PortfolioWinner::kLocalSearch), "ls");
}

}  // namespace
}  // namespace cgraf::core
