#include "core/candidates.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cgraf::core {
namespace {

// One context: chain 0 -> 1 -> 2 on a 6x6 fabric.
Design chain_design() {
  Design d{Fabric(6, 6, 5.0, 0.2), 1, {}, {}};
  for (int i = 0; i < 3; ++i) {
    Operation op;
    op.id = i;
    op.kind = OpKind::kAdd;
    op.context = 0;
    d.ops.push_back(op);
  }
  d.edges.push_back({0, 1});
  d.edges.push_back({1, 2});
  return d;
}

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(Candidates, FrozenOpsGetExactlyTheirPe) {
  const Design d = chain_design();
  const Floorplan base{{0, 1, 2}};
  const std::vector<char> frozen{1, 0, 1};
  const auto cands =
      compute_candidates(d, base, frozen, {}, /*cpd_ns=*/10.0);
  EXPECT_EQ(cands[0], std::vector<int>{0});
  EXPECT_EQ(cands[2], std::vector<int>{2});
}

TEST(Candidates, UnmonitoredFreeOpsGetTheWholeFabric) {
  const Design d = chain_design();
  const Floorplan base{{0, 1, 2}};
  const std::vector<char> frozen{0, 0, 0};
  const auto cands = compute_candidates(d, base, frozen, {}, 10.0);
  for (int op = 0; op < 3; ++op)
    EXPECT_EQ(cands[static_cast<std::size_t>(op)].size(), 36u);
}

TEST(Candidates, RadiusCapLimitsDistance) {
  const Design d = chain_design();
  const Floorplan base{{0, 1, 2}};
  const std::vector<char> frozen{0, 0, 0};
  CandidateOptions opts;
  opts.radius_cap = 2;
  const auto cands = compute_candidates(d, base, frozen, {}, 10.0, opts);
  for (int op = 0; op < 3; ++op) {
    const Point orig = d.fabric.loc(base.pe_of(op));
    for (const int pe : cands[static_cast<std::size_t>(op)])
      EXPECT_LE(manhattan(d.fabric.loc(pe), orig), 2);
    EXPECT_TRUE(contains(cands[static_cast<std::size_t>(op)], base.pe_of(op)));
  }
}

TEST(Candidates, TightPathSlackPrunesFarPes) {
  const Design d = chain_design();
  const Floorplan base{{0, 1, 2}};  // a straight line, wires 1+1
  const std::vector<char> frozen{1, 0, 1};  // only op1 can move

  timing::TimingPath path;
  path.context = 0;
  path.ops = {0, 1, 2};
  path.pe_delay_ns = 3 * 0.87;
  path.delay_ns = path.pe_delay_ns + 2 * 0.2;

  // CPD with almost no slack: budget ~= current wire length.
  const double cpd = path.delay_ns + 0.2;  // one unit of wire slack
  CandidateOptions opts;
  opts.slack_multiplier = 1.0;
  const auto cands =
      compute_candidates(d, base, {1, 0, 1}, {path}, cpd, opts);
  // op1 candidates: contribution dist(0,k)+dist(k,2) <= 3 (2 current + 1).
  EXPECT_TRUE(contains(cands[1], 1));
  for (const int pe : cands[1]) {
    const Point p = d.fabric.loc(pe);
    EXPECT_LE(manhattan(p, {0, 0}) + manhattan(p, {2, 0}), 3) << "pe " << pe;
  }
  // Far corner is certainly out.
  EXPECT_FALSE(contains(cands[1], 35));
  (void)frozen;
}

TEST(Candidates, LooseSlackAdmitsEverything) {
  const Design d = chain_design();
  const Floorplan base{{0, 1, 2}};
  timing::TimingPath path;
  path.context = 0;
  path.ops = {0, 1, 2};
  path.pe_delay_ns = 3 * 0.87;
  const double cpd = 100.0;  // effectively unconstrained
  const auto cands =
      compute_candidates(d, base, {0, 0, 0}, {path}, cpd);
  for (int op = 0; op < 3; ++op)
    EXPECT_EQ(cands[static_cast<std::size_t>(op)].size(), 36u);
}

TEST(Candidates, OriginalPeAlwaysSurvives) {
  // Even with a *negative* allowance (over-tight path), the original PE is
  // kept so the identity floorplan stays representable.
  const Design d = chain_design();
  const Floorplan base{{0, 35, 2}};  // op1 far away: long wires
  timing::TimingPath path;
  path.context = 0;
  path.ops = {0, 1, 2};
  path.pe_delay_ns = 3 * 0.87;
  const double cpd = path.pe_delay_ns + 0.01;  // impossible wire budget
  const auto cands =
      compute_candidates(d, base, {0, 0, 0}, {path}, cpd);
  EXPECT_TRUE(contains(cands[1], 35));
}

TEST(Candidates, CandidatesAreSortedAndUnique) {
  const Design d = chain_design();
  const Floorplan base{{0, 1, 2}};
  const auto cands = compute_candidates(d, base, {0, 0, 0}, {}, 10.0);
  for (const auto& c : cands) {
    EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
    EXPECT_EQ(std::adjacent_find(c.begin(), c.end()), c.end());
  }
}

}  // namespace
}  // namespace cgraf::core
