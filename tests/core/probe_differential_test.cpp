// Differential harness for the incremental ST_target probes.
//
// Two layers, both over seeded random fabric/context corpora:
//  - find_st_target with warm probes vs the forced-cold escape hatch must
//    produce the same final target and the same probe-by-probe log;
//  - a ProbeSession with the remapper's presearch shape (frozen critical
//    paths + monitored-path budgets, LP-only kNull probes) must answer a
//    shared bisection ladder verdict-for-verdict like a cold session that
//    rebuilds the model at every probe. Path constraints make ST_low
//    genuinely infeasible here, so the ladders actually bisect and the
//    warm session chains bases across probes.
// Labeled `slow` — it runs a few hundred LP searches.
#include <gtest/gtest.h>

#include <cstdio>

#include "cgrra/stress.h"
#include "core/candidates.h"
#include "core/probe_session.h"
#include "core/st_target.h"
#include "timing/paths.h"
#include "util/rng.h"
#include "workloads/suite.h"

namespace cgraf::core {
namespace {

std::vector<workloads::BenchmarkSpec> corpus(int count) {
  // Small, varied instances: 2..8 contexts, 3x3..6x6 fabrics, the full
  // usage range. Seeds drive both the shape draw and the netlist.
  std::vector<workloads::BenchmarkSpec> specs;
  Rng rng(0xd1ffu);
  for (int i = 0; i < count; ++i) {
    workloads::BenchmarkSpec s;
    s.name = "D" + std::to_string(i);
    s.contexts = 2 + static_cast<int>(rng.next_u64() % 7);
    s.fabric_dim = 3 + static_cast<int>(rng.next_u64() % 4);
    s.usage = 0.25 + 0.55 * rng.next_double();
    s.band = s.usage < 0.4   ? workloads::UsageBand::kLow
             : s.usage < 0.6 ? workloads::UsageBand::kMedium
                             : workloads::UsageBand::kHigh;
    s.seed = 0x5eed0000u + static_cast<std::uint64_t>(i);
    specs.push_back(std::move(s));
  }
  return specs;
}

// The remapper's presearch geometry for one benchmark: critical-path union
// frozen in place, monitored paths budgeted, candidates slack-pruned.
struct PresearchFixture {
  const Design* design;
  const Floorplan* base;
  std::vector<char> frozen;
  std::vector<timing::TimingPath> monitored;
  std::vector<std::vector<int>> candidates;
  double cpd_ns = 0.0;
  double st_low = 0.0;
  double st_up = 0.0;

  explicit PresearchFixture(const workloads::GeneratedBenchmark& bench)
      : design(&bench.design), base(&bench.baseline) {
    const timing::CombGraph graph(*design);
    const timing::StaResult sta = run_sta(graph, *base);
    cpd_ns = sta.cpd_ns;
    frozen.assign(static_cast<std::size_t>(design->num_ops()), 0);
    for (int c = 0; c < design->num_contexts; ++c) {
      for (const auto& p : timing::critical_paths(graph, *base, c, 8))
        for (const int op : p.ops) frozen[static_cast<std::size_t>(op)] = 1;
    }
    monitored = timing::monitored_paths(graph, *base);
    candidates =
        compute_candidates(*design, *base, frozen, monitored, cpd_ns);
    const StressMap stress = compute_stress(*design, *base);
    st_low = stress.avg_accumulated();
    st_up = stress.max_accumulated();
  }

  ProbeSession session(bool warm) const {
    RemapModelSpec spec;
    spec.design = design;
    spec.base = base;
    spec.frozen = frozen;
    spec.candidates = candidates;
    spec.monitored = &monitored;
    spec.cpd_ns = cpd_ns;
    spec.objective = ObjectiveMode::kNull;
    TwoStepOptions solver;
    solver.lp_only = true;
    return ProbeSession(std::move(spec), solver, warm);
  }
};

TEST(ProbeDifferential, SessionMatchesColdRebuildOnBisectionLadders) {
  int probes_total = 0;
  int warm_hits_total = 0;
  int infeasible_total = 0;
  for (const auto& spec : corpus(50)) {
    const auto bench = workloads::generate_benchmark(spec);
    const PresearchFixture fx(bench);
    if (fx.st_up <= 0.0) continue;
    ProbeSession warm = fx.session(true);
    ProbeSession cold = fx.session(false);

    // Both sessions walk the same ladder; the bisection branches on the
    // warm verdict, so a single divergence would snowball into different
    // targets — asserting per probe pins the exact first difference.
    double lo = fx.st_low;
    double hi = fx.st_up;
    for (int it = 0; it < 6; ++it) {
      const double mid = 0.5 * (lo + hi);
      const TwoStepResult rw = warm.solve(mid);
      const TwoStepResult rc = cold.solve(mid);
      const bool vw = rw.status == milp::SolveStatus::kOptimal;
      const bool vc = rc.status == milp::SolveStatus::kOptimal;
      ASSERT_EQ(vw, vc) << spec.name << " target " << mid << " warm="
                        << milp::to_string(rw.status) << " cold="
                        << milp::to_string(rc.status);
      infeasible_total += vw ? 0 : 1;
      if (vw) hi = mid;
      else lo = mid;
    }
    probes_total += warm.stats().probes;
    warm_hits_total += warm.stats().warm_hits;

    // Cold sessions rebuild per probe and never chain a basis.
    EXPECT_EQ(cold.stats().warm_hits, 0) << spec.name;
    EXPECT_EQ(cold.stats().basis_fallbacks, 0) << spec.name;
    EXPECT_EQ(cold.stats().model_rebuilds, cold.stats().probes) << spec.name;
    // Per warm probe at most one of: a full rebuild, a warm hit, or an
    // accounted fallback (probes rejected by patch_st_target are none of
    // the three — the frozen stress alone exceeded the target).
    EXPECT_LE(warm.stats().warm_hits + warm.stats().basis_fallbacks +
                  warm.stats().model_rebuilds,
              warm.stats().probes)
        << spec.name;
    EXPECT_GE(warm.stats().model_rebuilds, 1) << spec.name;
  }
  // The corpus must actually bisect (both verdicts present) and the warm
  // path must actually chain bases — otherwise this test proves nothing.
  EXPECT_GT(probes_total, 100);
  EXPECT_GT(warm_hits_total, 0);
  EXPECT_GT(infeasible_total, 0);
  std::printf("[corpus] %d probes, %d warm hits, %d infeasible verdicts\n",
              probes_total, warm_hits_total, infeasible_total);
}

TEST(ProbeDifferential, FindStTargetWarmAndColdAreIdentical) {
  // Step 1 proper (no path constraints): LP probes of the all-candidates
  // model accept ST_low immediately — a fractional assignment spreads
  // stress perfectly — so these searches are short; the point is that the
  // warm path takes the exact same log, including the short-circuit.
  for (const auto& spec : corpus(50)) {
    const auto bench = workloads::generate_benchmark(spec);
    StTargetOptions warm_opts;
    warm_opts.warm_probes = true;
    const StTargetResult warm =
        find_st_target(bench.design, bench.baseline, warm_opts);
    StTargetOptions cold_opts;
    cold_opts.warm_probes = false;
    const StTargetResult cold =
        find_st_target(bench.design, bench.baseline, cold_opts);

    ASSERT_EQ(warm.ok, cold.ok) << spec.name;
    EXPECT_EQ(warm.st_target, cold.st_target) << spec.name;
    EXPECT_EQ(warm.probes, cold.probes) << spec.name;
    ASSERT_EQ(warm.probe_log.size(), cold.probe_log.size()) << spec.name;
    for (std::size_t i = 0; i < warm.probe_log.size(); ++i) {
      EXPECT_EQ(warm.probe_log[i].st_target, cold.probe_log[i].st_target)
          << spec.name << " probe " << i;
      EXPECT_EQ(warm.probe_log[i].feasible, cold.probe_log[i].feasible)
          << spec.name << " probe " << i;
    }
    EXPECT_EQ(cold.warm_hits, 0) << spec.name;
    EXPECT_EQ(cold.basis_fallbacks, 0) << spec.name;
    EXPECT_EQ(cold.model_rebuilds, cold.probes) << spec.name;
  }
}

TEST(ProbeDifferential, FirstIlpProbeMatchesColdBitForBit) {
  // With ILP-confirmed probes the dive is path-dependent once a basis is
  // chained, but the *first* probe of each search has no chained basis
  // yet, so it must match the cold search exactly — and both searches must
  // stay inside the bracket whatever path they took after that.
  for (const auto& spec : corpus(8)) {
    const auto bench = workloads::generate_benchmark(spec);
    StTargetOptions warm_opts;
    warm_opts.confirm_with_ilp = true;
    warm_opts.warm_probes = true;
    const StTargetResult warm =
        find_st_target(bench.design, bench.baseline, warm_opts);
    StTargetOptions cold_opts;
    cold_opts.confirm_with_ilp = true;
    cold_opts.warm_probes = false;
    const StTargetResult cold =
        find_st_target(bench.design, bench.baseline, cold_opts);
    if (warm.probe_log.empty()) {
      // Zero-stress designs return before probing; both sides must agree.
      EXPECT_TRUE(cold.probe_log.empty()) << spec.name;
      continue;
    }
    ASSERT_FALSE(cold.probe_log.empty()) << spec.name;
    EXPECT_EQ(warm.probe_log[0].st_target, cold.probe_log[0].st_target)
        << spec.name;
    EXPECT_EQ(warm.probe_log[0].feasible, cold.probe_log[0].feasible)
        << spec.name;
    EXPECT_GE(warm.st_target, warm.st_low - 1e-12) << spec.name;
    EXPECT_LE(warm.st_target, warm.st_up + 1e-12) << spec.name;
    EXPECT_GE(cold.st_target, cold.st_low - 1e-12) << spec.name;
    EXPECT_LE(cold.st_target, cold.st_up + 1e-12) << spec.name;
  }
}

}  // namespace
}  // namespace cgraf::core
