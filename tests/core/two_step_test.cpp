#include "core/two_step.h"

#include <gtest/gtest.h>

#include "cgrra/stress.h"

namespace cgraf::core {
namespace {

// One context with `n` DMU ops on a dim x dim fabric; balancing them is a
// pure assignment problem.
struct Fixture {
  Design design;
  Floorplan base;

  explicit Fixture(int n, int dim) : design{Fabric(dim, dim), 2, {}, {}} {
    for (int i = 0; i < n; ++i) {
      Operation op;
      op.id = i;
      op.kind = OpKind::kMux;
      op.context = i % 2;
      design.ops.push_back(op);
      base.op_to_pe.push_back(i / 2);  // packed: contexts stack on low PEs
    }
  }

  RemapModel model(double st_target,
                   ObjectiveMode obj = ObjectiveMode::kMinPerturbation) {
    RemapModelSpec s;
    s.design = &design;
    s.base = &base;
    s.frozen.assign(design.ops.size(), 0);
    s.candidates.assign(design.ops.size(), {});
    for (auto& c : s.candidates)
      for (int pe = 0; pe < design.fabric.num_pes(); ++pe) c.push_back(pe);
    s.st_target = st_target;
    s.objective = obj;
    return build_remap_model(s);
  }
};

constexpr double kDmuStress = 3.14 / 5.0;

TEST(TwoStep, DiveFindsABalancedFloorplan) {
  Fixture f(8, 4);  // 8 ops, 16 PEs: perfect spread -> one op per PE
  const RemapModel rm = f.model(kDmuStress + 1e-6);
  const TwoStepResult r = solve_two_step(rm, {});
  ASSERT_EQ(r.status, milp::SolveStatus::kOptimal);
  std::string why;
  ASSERT_TRUE(is_valid(f.design, r.floorplan, &why)) << why;
  const StressMap stress = compute_stress(f.design, r.floorplan);
  EXPECT_LE(stress.max_accumulated(), kDmuStress + 1e-6);
}

TEST(TwoStep, NeverClaimsSuccessBelowSingleOpStress) {
  // Below the per-op stress the *LP relaxation* is still feasible (an op
  // can be split fractionally across PEs), so the dive gives up without a
  // proof; the one-shot ILP proves infeasibility outright. Either way no
  // floorplan may be claimed.
  Fixture f(4, 3);
  const TwoStepResult dive = solve_two_step(f.model(0.5 * kDmuStress), {});
  EXPECT_NE(dive.status, milp::SolveStatus::kOptimal);
  EXPECT_TRUE(dive.floorplan.op_to_pe.empty());

  TwoStepOptions ilp;
  ilp.strategy = RoundingStrategy::kNone;
  const TwoStepResult proved =
      solve_two_step(f.model(0.5 * kDmuStress), ilp);
  EXPECT_EQ(proved.status, milp::SolveStatus::kInfeasible);
}

TEST(TwoStep, LpOnlyProbesFeasibility) {
  Fixture f(8, 4);
  TwoStepOptions opts;
  opts.lp_only = true;
  const TwoStepResult feasible = solve_two_step(f.model(kDmuStress), opts);
  EXPECT_EQ(feasible.status, milp::SolveStatus::kOptimal);
  EXPECT_TRUE(feasible.floorplan.op_to_pe.empty());
  const TwoStepResult infeasible =
      solve_two_step(f.model(0.4 * kDmuStress), opts);
  EXPECT_EQ(infeasible.status, milp::SolveStatus::kInfeasible);
}

TEST(TwoStep, TriviallyInfeasibleModelShortCircuits) {
  Fixture f(4, 3);
  RemapModel rm = f.model(1.0);
  rm.trivially_infeasible = true;
  const TwoStepResult r = solve_two_step(rm, {});
  EXPECT_EQ(r.status, milp::SolveStatus::kInfeasible);
  EXPECT_EQ(r.stats.dive_rounds, 0);
}

TEST(TwoStep, AllStrategiesAgreeOnFeasibility) {
  Fixture f(6, 3);  // 9 PEs, 6 ops; target forces a full spread
  for (const RoundingStrategy strategy :
       {RoundingStrategy::kIterativeDive, RoundingStrategy::kThresholdFixOnce,
        RoundingStrategy::kRandomizedRound, RoundingStrategy::kNone}) {
    const RemapModel rm = f.model(kDmuStress + 1e-6);
    TwoStepOptions opts;
    opts.strategy = strategy;
    opts.mip.stop_at_first_incumbent = true;
    const TwoStepResult r = solve_two_step(rm, opts);
    ASSERT_EQ(r.status, milp::SolveStatus::kOptimal)
        << "strategy " << static_cast<int>(strategy);
    const StressMap stress = compute_stress(f.design, r.floorplan);
    EXPECT_LE(stress.max_accumulated(), kDmuStress + 1e-5);
  }
}

TEST(TwoStep, DiveStatsArepopulated) {
  Fixture f(8, 4);
  const TwoStepResult r = solve_two_step(f.model(kDmuStress + 1e-6), {});
  ASSERT_EQ(r.status, milp::SolveStatus::kOptimal);
  EXPECT_GT(r.stats.dive_rounds, 0);
  EXPECT_GT(r.stats.lp_iterations, 0);
  EXPECT_EQ(r.stats.vars_total, 8 * 16);
  EXPECT_EQ(r.stats.vars_fixed, 8);  // every op committed exactly once
}

TEST(TwoStep, MinPerturbationKeepsFeasibleIdentity) {
  Fixture f(4, 4);
  // Loose target: identity is feasible and perturbation-minimal.
  const RemapModel rm = f.model(10.0);
  const TwoStepResult r = solve_two_step(rm, {});
  ASSERT_EQ(r.status, milp::SolveStatus::kOptimal);
  EXPECT_EQ(r.floorplan.op_to_pe, f.base.op_to_pe);
}

}  // namespace
}  // namespace cgraf::core
