#include "core/rotation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace cgraf::core {
namespace {

TEST(Rotation, AllOrientationsPreserveManhattanDistances) {
  const Fabric fabric(8, 8);
  const std::vector<Point> pts{{1, 1}, {4, 1}, {4, 3}, {6, 3}};
  for (int o = 0; o < 8; ++o) {
    const std::vector<Point> r = apply_orientation(pts, o, fabric);
    ASSERT_EQ(r.size(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = 0; j < pts.size(); ++j) {
        EXPECT_EQ(manhattan(r[i], r[j]), manhattan(pts[i], pts[j]))
            << "orientation " << o;
      }
      EXPECT_TRUE(fabric.in_bounds(r[i])) << "orientation " << o;
    }
  }
}

TEST(Rotation, IdentityOrientationIsIdentity) {
  const Fabric fabric(8, 8);
  const std::vector<Point> pts{{2, 3}, {5, 6}, {0, 0}};
  EXPECT_EQ(apply_orientation(pts, 0, fabric), pts);
}

TEST(Rotation, EightOrientationsAreDistinctForAsymmetricShapes) {
  const Fabric fabric(8, 8);
  // An L-shape with no self-symmetry.
  const std::vector<Point> pts{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {0, 3}};
  std::set<std::vector<std::pair<int, int>>> shapes;
  for (int o = 0; o < 8; ++o) {
    const auto r = apply_orientation(pts, o, fabric);
    // Normalize to the bbox origin so translation doesn't matter.
    int mnx = 1 << 30, mny = 1 << 30;
    for (const Point p : r) {
      mnx = std::min(mnx, p.x);
      mny = std::min(mny, p.y);
    }
    std::vector<std::pair<int, int>> norm;
    for (const Point p : r) norm.emplace_back(p.x - mnx, p.y - mny);
    std::sort(norm.begin(), norm.end());
    shapes.insert(norm);
  }
  EXPECT_EQ(shapes.size(), 8u);
}

TEST(Rotation, PointsAtFabricEdgeStayInBounds) {
  const Fabric fabric(4, 4);
  const std::vector<Point> pts{{0, 0}, {3, 0}, {3, 3}};
  for (int o = 0; o < 8; ++o) {
    for (const Point p : apply_orientation(pts, o, fabric))
      EXPECT_TRUE(fabric.in_bounds(p)) << "orientation " << o;
  }
}

Design rotation_design(int contexts) {
  Design d{Fabric(6, 6), contexts, {}, {}};
  for (int c = 0; c < contexts; ++c) {
    for (int k = 0; k < 3; ++k) {
      Operation op;
      op.id = d.num_ops();
      op.kind = OpKind::kAdd;
      op.context = c;
      d.ops.push_back(op);
    }
  }
  return d;
}

TEST(Rotation, DiversityRuleUpToEightContexts) {
  const int contexts = 6;
  Design d = rotation_design(contexts);
  // Every context's CP group at the same 3 PEs: maximal initial overlap.
  Floorplan base;
  base.op_to_pe.assign(d.ops.size(), 0);
  std::vector<std::vector<int>> frozen(static_cast<std::size_t>(contexts));
  for (int i = 0; i < d.num_ops(); ++i) {
    base.op_to_pe[static_cast<std::size_t>(i)] = i % 3;
    frozen[static_cast<std::size_t>(d.ops[static_cast<std::size_t>(i)].context)]
        .push_back(i);
  }
  RotationOptions opts;
  opts.restarts = 4;
  const RotationResult r = rotate_critical_paths(d, base, frozen, opts);
  ASSERT_TRUE(r.ok);
  std::set<int> used(r.orientation_per_context.begin(),
                     r.orientation_per_context.end());
  EXPECT_EQ(used.size(), static_cast<std::size_t>(contexts));  // all distinct
}

TEST(Rotation, DiversityRuleBeyondEightContexts) {
  const int contexts = 11;  // floor(11/8)=1, so counts must be 1 or 2
  Design d = rotation_design(contexts);
  Floorplan base;
  base.op_to_pe.assign(d.ops.size(), 0);
  std::vector<std::vector<int>> frozen(static_cast<std::size_t>(contexts));
  for (int i = 0; i < d.num_ops(); ++i) {
    base.op_to_pe[static_cast<std::size_t>(i)] = i % 3;
    frozen[static_cast<std::size_t>(d.ops[static_cast<std::size_t>(i)].context)]
        .push_back(i);
  }
  const RotationResult r = rotate_critical_paths(d, base, frozen, {});
  ASSERT_TRUE(r.ok);
  std::map<int, int> counts;
  for (const int o : r.orientation_per_context) ++counts[o];
  for (const auto& [o, n] : counts) {
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 2);
  }
}

TEST(Rotation, ReducesOverlapVersusIdentity) {
  const int contexts = 8;
  Design d = rotation_design(contexts);
  Floorplan base;
  base.op_to_pe.assign(d.ops.size(), 0);
  std::vector<std::vector<int>> frozen(static_cast<std::size_t>(contexts));
  for (int i = 0; i < d.num_ops(); ++i) {
    base.op_to_pe[static_cast<std::size_t>(i)] = i % 3;  // total pile-up
    frozen[static_cast<std::size_t>(d.ops[static_cast<std::size_t>(i)].context)]
        .push_back(i);
  }
  // Identity overlap: every context stacks stress^2 on PEs 0..2.
  double identity_cost = 0.0;
  {
    std::vector<double> pe(36, 0.0);
    for (int i = 0; i < d.num_ops(); ++i)
      pe[static_cast<std::size_t>(i % 3)] +=
          op_stress(d.ops[static_cast<std::size_t>(i)], d.fabric);
    for (const double s : pe) identity_cost += s * s;
  }
  const RotationResult r = rotate_critical_paths(d, base, frozen, {});
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.overlap_cost, identity_cost);
  // Frozen ops moved but stayed rigid per context: distances preserved.
  for (int c = 0; c < contexts; ++c) {
    const auto& group = frozen[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i + 1 < group.size(); ++i) {
      const int a = group[i], b = group[i + 1];
      EXPECT_EQ(
          manhattan(d.fabric.loc(r.rotated_base.pe_of(a)),
                    d.fabric.loc(r.rotated_base.pe_of(b))),
          manhattan(d.fabric.loc(base.pe_of(a)), d.fabric.loc(base.pe_of(b))));
    }
  }
}

TEST(Rotation, EmptyGroupsAreFine) {
  Design d = rotation_design(3);
  Floorplan base;
  base.op_to_pe.assign(d.ops.size(), 0);
  for (int i = 0; i < d.num_ops(); ++i)
    base.op_to_pe[static_cast<std::size_t>(i)] = i % 3;
  std::vector<std::vector<int>> frozen(3);  // nothing frozen anywhere
  const RotationResult r = rotate_critical_paths(d, base, frozen, {});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rotated_base.op_to_pe, base.op_to_pe);
}

}  // namespace
}  // namespace cgraf::core
