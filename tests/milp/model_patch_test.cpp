// The RHS-patch API behind the incremental ST_target probes: re-ranging a
// constraint must be indistinguishable from rebuilding the model with the
// new bound, and a warm solve after an engine-side patch must reach the
// same optimum a cold solve does — including when the supplied basis is
// stale, corrupted, or sized for another model.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/model.h"
#include "milp/simplex.h"
#include "milp/sparse.h"

namespace cgraf::milp {
namespace {

// max x + y  s.t. x + 2y <= cap1, 3x + y <= cap2, 0 <= x,y <= 10.
Model two_row_model(double cap1, double cap2) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_continuous(0, 10, 1);
  const int y = m.add_continuous(0, 10, 1);
  m.add_le({{x, 1}, {y, 2}}, cap1);
  m.add_le({{x, 3}, {y, 1}}, cap2);
  return m;
}

TEST(ModelPatch, PatchedModelMatchesFreshBuild) {
  Model patched = two_row_model(4, 6);
  patched.set_constraint_bounds(0, -kInf, 9);
  patched.set_constraint_bounds(1, -kInf, 7);
  const Model fresh = two_row_model(9, 7);

  ASSERT_EQ(patched.num_constraints(), fresh.num_constraints());
  for (int i = 0; i < fresh.num_constraints(); ++i) {
    EXPECT_EQ(patched.constraint(i).lb, fresh.constraint(i).lb) << i;
    EXPECT_EQ(patched.constraint(i).ub, fresh.constraint(i).ub) << i;
    ASSERT_EQ(patched.constraint(i).terms.size(),
              fresh.constraint(i).terms.size());
  }
  const LpResult a = solve_lp(patched);
  const LpResult b = solve_lp(fresh);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.obj, b.obj, 1e-9);
}

TEST(ModelPatch, PatchPreservesSparsityPattern) {
  // The computational form built from a patched model must stay canonical
  // and keep the exact sparsity pattern — that is what makes previously
  // returned bases structurally valid warm starts.
  Model m = two_row_model(4, 6);
  const CscMatrix before = build_computational_form(m);
  m.set_constraint_bounds(0, -kInf, 5);
  const CscMatrix after = build_computational_form(m);
  EXPECT_TRUE(is_canonical(after));
  EXPECT_EQ(before.col_start, after.col_start);
  EXPECT_EQ(before.row_idx, after.row_idx);
  EXPECT_EQ(before.value, after.value);
}

TEST(ModelPatch, RangedPatch) {
  // Re-ranging to an equality-like window behaves like a fresh ranged row.
  Model m = two_row_model(4, 6);
  m.set_constraint_bounds(0, 3.0, 3.0);
  Model fresh;
  fresh.set_sense(Sense::kMaximize);
  const int x = fresh.add_continuous(0, 10, 1);
  const int y = fresh.add_continuous(0, 10, 1);
  fresh.add_eq({{x, 1}, {y, 2}}, 3.0);
  fresh.add_le({{x, 3}, {y, 1}}, 6.0);
  const LpResult a = solve_lp(m);
  const LpResult b = solve_lp(fresh);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.obj, b.obj, 1e-9);
}

TEST(ModelPatch, WarmSolveAfterEnginePatchMatchesCold) {
  const Model m = two_row_model(4, 6);
  SimplexEngine engine(m);
  const LpResult first = engine.solve();
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_FALSE(first.warm_used);  // no basis given

  // Walk the caps through a ramp, warm-starting each solve; every optimum
  // must match a from-scratch solve of the equivalent model.
  std::vector<ColStatus> basis = first.basis;
  for (const double cap : {5.0, 7.0, 3.5, 6.0}) {
    engine.set_row_bounds(0, -kInf, cap);
    const LpResult warm = engine.solve(&basis);
    ASSERT_EQ(warm.status, SolveStatus::kOptimal) << cap;
    EXPECT_TRUE(warm.warm_used) << cap;
    const LpResult cold = solve_lp(two_row_model(cap, 6));
    ASSERT_EQ(cold.status, SolveStatus::kOptimal) << cap;
    EXPECT_NEAR(warm.obj, cold.obj, 1e-8) << cap;
    basis = warm.basis;
  }
}

TEST(ModelPatch, PatchCanFlipFeasibility) {
  const Model m = two_row_model(4, 6);
  SimplexEngine engine(m);
  std::vector<ColStatus> basis = engine.solve().basis;

  // x + 2y in [20, inf) is unreachable with x,y <= 10 under row 2.
  engine.set_row_bounds(0, 20.0, kInf);
  const LpResult infeas = engine.solve(&basis);
  EXPECT_EQ(infeas.status, SolveStatus::kInfeasible);

  // Relaxing it back restores the original optimum.
  engine.set_row_bounds(0, -kInf, 4.0);
  if (!infeas.basis.empty()) basis = infeas.basis;
  const LpResult back = engine.solve(&basis);
  ASSERT_EQ(back.status, SolveStatus::kOptimal);
  EXPECT_NEAR(back.obj, solve_lp(m).obj, 1e-8);
}

TEST(ModelPatch, SingularWarmBasisFallsBackToSlackBasis) {
  // Duplicate columns: marking both x and y basic in row-duplicated
  // geometry gives a singular basis matrix; the engine must reject it,
  // restart from the slack basis and still reach the optimum.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_continuous(0, 5, 1);
  const int y = m.add_continuous(0, 5, 1);
  m.add_le({{x, 1}, {y, 1}}, 1);
  m.add_le({{x, 1}, {y, 1}}, 2);
  SimplexEngine engine(m);

  std::vector<ColStatus> corrupt(4, ColStatus::kAtLower);
  corrupt[0] = ColStatus::kBasic;  // x
  corrupt[1] = ColStatus::kBasic;  // y — duplicate of x's column
  const LpResult r = engine.solve(&corrupt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_FALSE(r.warm_used);
  EXPECT_NEAR(r.obj, 1.0, 1e-8);
}

TEST(ModelPatch, WrongSizeBasisIsIgnored) {
  const Model m = two_row_model(4, 6);
  SimplexEngine engine(m);
  std::vector<ColStatus> stale(3, ColStatus::kAtLower);  // needs n+m == 4
  const LpResult r = engine.solve(&stale);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_FALSE(r.warm_used);
  EXPECT_NEAR(r.obj, solve_lp(m).obj, 1e-8);
}

TEST(ModelPatch, WrongBasicCountIsIgnored) {
  const Model m = two_row_model(4, 6);
  SimplexEngine engine(m);
  // Right length, wrong cardinality: 3 basic columns for 2 rows.
  std::vector<ColStatus> bad(4, ColStatus::kBasic);
  bad[3] = ColStatus::kAtLower;
  const LpResult r = engine.solve(&bad);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_FALSE(r.warm_used);
  EXPECT_NEAR(r.obj, solve_lp(m).obj, 1e-8);
}

TEST(ModelPatchDeathTest, RejectsInvertedBounds) {
  Model m = two_row_model(4, 6);
  EXPECT_DEATH(m.set_constraint_bounds(0, 2.0, 1.0), "lb <= ub");
}

TEST(ModelPatchDeathTest, RejectsBadRowIndex) {
  Model m = two_row_model(4, 6);
  EXPECT_DEATH(m.set_constraint_bounds(7, 0.0, 1.0), "num_constraints");
}

}  // namespace
}  // namespace cgraf::milp
