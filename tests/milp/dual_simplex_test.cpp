// The dual simplex loop must be a pivot-order optimization, never a
// behaviour change: every status and objective agrees with the primal
// algorithm (the primal loop still certifies optimality after a dual run),
// and kAutoWarm engages exactly on the warm-re-solve pattern that branch &
// bound children and ST_target probe chains produce.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/branch_and_bound.h"
#include "milp/model.h"
#include "milp/simplex.h"
#include "util/rng.h"

namespace cgraf::milp {
namespace {

// The floorplanner's LP shape: assignment rows + capacity rows (see
// pricing_test.cpp; duplicated rather than shared so each test file stays
// self-contained).
Model assignment_lp(std::uint64_t seed, int ops, int pes) {
  Rng rng(seed);
  Model m;
  std::vector<std::vector<int>> vars(static_cast<size_t>(ops));
  std::vector<double> stress(static_cast<size_t>(ops));
  for (int j = 0; j < ops; ++j) {
    stress[static_cast<size_t>(j)] = 0.2 + 0.6 * rng.next_double();
    for (int k = 0; k < pes; ++k)
      vars[static_cast<size_t>(j)].push_back(
          m.add_continuous(0, 1, rng.next_double()));
    std::vector<std::pair<int, double>> row;
    for (const int v : vars[static_cast<size_t>(j)]) row.emplace_back(v, 1.0);
    m.add_eq(std::move(row), 1.0);
  }
  double total = 0.0;
  for (const double s : stress) total += s;
  const double cap = std::max(1.3 * total / pes, 0.85);
  for (int k = 0; k < pes; ++k) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < ops; ++j)
      row.emplace_back(vars[static_cast<size_t>(j)][static_cast<size_t>(k)],
                       stress[static_cast<size_t>(j)]);
    m.add_le(std::move(row), cap);
  }
  return m;
}

LpResult solve_with(const Model& m, LpAlgorithm alg,
                    DualPricing pricing = DualPricing::kSteepestEdge) {
  LpOptions opts;
  opts.algorithm = alg;
  opts.dual_pricing = pricing;
  return solve_lp(m, opts);
}

void expect_same(const LpResult& a, const LpResult& b, const char* label) {
  ASSERT_EQ(a.status, b.status) << label;
  if (a.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(a.obj, b.obj, 1e-6 * (1.0 + std::abs(b.obj))) << label;
  }
}

TEST(DualSimplex, AllBoxedColumnsResolveByBoundFlips) {
  // min -sum(x) s.t. sum(x) <= 3.5, x in [0,1]^8. Every structural column
  // is boxed, so the cold dual start repairs by flipping all eight to their
  // upper bounds, then the bound-flipping ratio test walks enough of them
  // back down to restore the capacity row.
  Model m;
  std::vector<std::pair<int, double>> row;
  for (int j = 0; j < 8; ++j) row.emplace_back(m.add_continuous(0, 1, -1), 1.0);
  m.add_le(std::move(row), 3.5);
  const LpResult dual = solve_with(m, LpAlgorithm::kDual);
  ASSERT_EQ(dual.status, SolveStatus::kOptimal);
  EXPECT_TRUE(dual.dual_used);
  EXPECT_GT(dual.stats.bound_flips, 0);
  EXPECT_NEAR(dual.obj, -3.5, 1e-8);
  expect_same(dual, solve_with(m, LpAlgorithm::kPrimal), "all-boxed");
}

TEST(DualSimplex, ColdDualAgreesWithPrimalOnStructuredModels) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Model m = assignment_lp(seed, 24, 10);
    const LpResult primal = solve_with(m, LpAlgorithm::kPrimal);
    const LpResult dual = solve_with(m, LpAlgorithm::kDual);
    expect_same(dual, primal, "assignment");
    EXPECT_FALSE(primal.dual_used);
  }
}

TEST(DualSimplex, DevexPricingAgrees) {
  for (const std::uint64_t seed : {4ull, 5ull}) {
    const Model m = assignment_lp(seed, 20, 8);
    expect_same(solve_with(m, LpAlgorithm::kDual, DualPricing::kDevex),
                solve_with(m, LpAlgorithm::kPrimal), "devex");
  }
}

TEST(DualSimplex, AutoWarmEngagesOnlyWithWarmBasis) {
  const Model m = assignment_lp(7, 24, 10);
  LpOptions opts;  // default algorithm: kAutoWarm
  SimplexEngine engine(m, opts);
  const LpResult root = engine.solve();
  ASSERT_EQ(root.status, SolveStatus::kOptimal);
  EXPECT_FALSE(root.dual_used);  // cold solve: no warm basis, primal runs

  // Tighten the bounds of basic-at-value variables, as a branch-and-bound
  // child does, and re-solve from the root basis: the warm basis stays dual
  // feasible (costs unchanged) but turns primal infeasible, so kAutoWarm
  // runs the dual loop and actually pivots.
  std::vector<double> lb = engine.model_lb();
  std::vector<double> ub = engine.model_ub();
  int tightened = 0;
  for (int v = 0; v < engine.num_structural() && tightened < 4; ++v) {
    if (root.x[static_cast<size_t>(v)] > 0.5) {
      ub[static_cast<size_t>(v)] = 0.0;
      ++tightened;
    }
  }
  ASSERT_GT(tightened, 0);
  const LpResult warm = engine.solve(lb, ub, &root.basis);
  const LpResult cold = engine.solve(lb, ub);
  ASSERT_EQ(warm.status, cold.status);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_TRUE(warm.dual_used);
  EXPECT_GT(warm.stats.dual_iterations + warm.stats.bound_flips, 0);
  if (warm.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(warm.obj, cold.obj, 1e-6 * (1.0 + std::abs(cold.obj)));
  }
}

TEST(DualSimplex, UnrepairableBasisFallsBackToPrimal) {
  // min -x with x in [0, inf): the slack start prices x at reduced cost -1
  // with no finite upper bound to flip to, so the basis cannot be made dual
  // feasible — the engine must count one fallback and let the primal loop
  // solve from the same basis.
  Model m;
  const int x = m.add_continuous(0, kInf, -1);
  m.add_le({{x, 1.0}}, 5.0);
  const LpResult r = solve_with(m, LpAlgorithm::kDual);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, -5.0, 1e-8);
  EXPECT_FALSE(r.dual_used);
  EXPECT_EQ(r.stats.dual_fallbacks, 1);
  EXPECT_EQ(r.stats.dual_iterations, 0);
}

TEST(DualSimplex, InfeasibleModelDetected) {
  // sum(x) >= 10 over x in [0,1]^3 cannot be met. The null objective makes
  // the slack basis trivially dual feasible, so the dual loop runs and the
  // verdict (however it is certified) matches the primal one.
  Model m;
  std::vector<std::pair<int, double>> row;
  for (int j = 0; j < 3; ++j) row.emplace_back(m.add_continuous(0, 1, 0), 1.0);
  m.add_ge(std::move(row), 10.0);
  const LpResult dual = solve_with(m, LpAlgorithm::kDual);
  EXPECT_EQ(dual.status, SolveStatus::kInfeasible);
  EXPECT_TRUE(dual.dual_used);
  EXPECT_EQ(solve_with(m, LpAlgorithm::kPrimal).status,
            SolveStatus::kInfeasible);
}

TEST(DualSimplex, CountersFlowIntoStageStats) {
  const Model m = assignment_lp(11, 28, 10);
  LpOptions opts;
  opts.algorithm = LpAlgorithm::kAutoWarm;
  SimplexEngine engine(m, opts);
  const LpResult root = engine.solve();
  ASSERT_EQ(root.status, SolveStatus::kOptimal);
  EXPECT_GT(root.stats.refactorizations, 0);  // initial factorization counts

  std::vector<double> lb = engine.model_lb();
  std::vector<double> ub = engine.model_ub();
  LpStageStats sum;
  long dual_pivots = 0;
  for (int v = 0; v < engine.num_structural(); ++v) {
    if (root.x[static_cast<size_t>(v)] <= 0.5) continue;
    const double saved = ub[static_cast<size_t>(v)];
    ub[static_cast<size_t>(v)] = 0.0;
    const LpResult child = engine.solve(lb, ub, &root.basis);
    ub[static_cast<size_t>(v)] = saved;
    if (child.status != SolveStatus::kOptimal) continue;
    EXPECT_TRUE(child.dual_used);
    sum += child.stats;
    dual_pivots += child.stats.dual_iterations;
  }
  // Across a whole fan of children at least some must take real dual pivots.
  EXPECT_GT(dual_pivots, 0);
  EXPECT_EQ(sum.dual_iterations, dual_pivots);  // operator+= accumulates
}

// B&B end-to-end determinism: the integer optimum must not depend on the LP
// algorithm or the worker-thread count.
TEST(DualSimplexBnb, ObjectiveInvariantAcrossAlgorithmsAndThreads) {
  Rng rng(97);
  Model m;
  std::vector<int> vars;
  for (int j = 0; j < 14; ++j)
    vars.push_back(m.add_binary(1.0 + rng.next_double() * 4.0));
  m.set_sense(Sense::kMaximize);
  for (int r = 0; r < 6; ++r) {
    std::vector<std::pair<int, double>> row;
    for (const int v : vars)
      if (rng.next_bool(0.5)) row.emplace_back(v, 1.0 + rng.next_double());
    if (row.empty()) row.emplace_back(vars[0], 1.0);
    m.add_le(std::move(row), 4.0 + rng.next_double() * 3.0);
  }

  MipOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.lp.algorithm = LpAlgorithm::kPrimal;
  const MipResult ref = solve_milp(m, ref_opts);
  ASSERT_EQ(ref.status, SolveStatus::kOptimal);

  for (const LpAlgorithm alg :
       {LpAlgorithm::kPrimal, LpAlgorithm::kDual, LpAlgorithm::kAutoWarm}) {
    for (const int threads : {1, 4}) {
      MipOptions opts;
      opts.num_threads = threads;
      opts.lp.algorithm = alg;
      const MipResult r = solve_milp(m, opts);
      ASSERT_EQ(r.status, SolveStatus::kOptimal)
          << to_string(alg) << " threads=" << threads;
      EXPECT_NEAR(r.obj, ref.obj, 1e-6 * (1.0 + std::abs(ref.obj)))
          << to_string(alg) << " threads=" << threads;
    }
  }
}

TEST(DualSimplexBnb, ChildSolvesUseDualUnderAutoWarm) {
  // A fractional-LP knapsack forces real branching; with the default
  // kAutoWarm every warm-started child re-solve may take the dual loop, and
  // the aggregated node stats must show it actually did somewhere.
  Rng rng(31);
  Model m;
  std::vector<std::pair<int, double>> row;
  for (int j = 0; j < 16; ++j)
    row.emplace_back(m.add_binary(1.0 + rng.next_double() * 5.0),
                     1.0 + rng.next_double() * 3.0);
  m.set_sense(Sense::kMaximize);
  m.add_le(std::move(row), 11.0);
  MipOptions opts;
  opts.num_threads = 1;
  opts.presolve = false;  // keep the fractional root intact
  const MipResult r = solve_milp(m, opts);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  if (r.nodes > 1) {
    EXPECT_GT(r.lp_stats.dual_iterations + r.lp_stats.bound_flips, 0);
  }
}

}  // namespace
}  // namespace cgraf::milp
