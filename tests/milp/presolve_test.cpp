#include "milp/presolve.h"

#include <gtest/gtest.h>

#include "milp/branch_and_bound.h"
#include "util/rng.h"

namespace cgraf::milp {
namespace {

TEST(Presolve, FixedVariablesAreSubstituted) {
  Model m;
  const int x = m.add_continuous(2, 2);         // fixed at 2
  const int y = m.add_continuous(0, 10, 1.0);
  m.add_le({{x, 3.0}, {y, 1.0}}, 10.0);         // becomes y <= 4
  const PresolveResult pre = presolve(m);
  ASSERT_EQ(pre.status, SolveStatus::kOptimal);
  EXPECT_EQ(pre.vars_fixed, 1);
  EXPECT_EQ(pre.var_map[static_cast<size_t>(x)], -1);
  EXPECT_DOUBLE_EQ(pre.fixed_value[static_cast<size_t>(x)], 2.0);
  EXPECT_EQ(pre.reduced.num_vars(), 1);
  // The surviving row (or bound) must cap y at 4.
  const LpResult lp = solve_lp(pre.reduced);
  Model max_y = pre.reduced;
  max_y.set_sense(Sense::kMaximize);
  max_y.set_obj(pre.var_map[static_cast<size_t>(y)], 1.0);
  EXPECT_NEAR(solve_lp(max_y).obj, 4.0, 1e-9);
  (void)lp;
}

TEST(Presolve, SingletonRowBecomesBound) {
  Model m;
  const int x = m.add_continuous(0, 100);
  m.add_constraint({{x, 2.0}}, 4.0, 10.0);  // 2 <= x <= 5
  const PresolveResult pre = presolve(m);
  ASSERT_EQ(pre.status, SolveStatus::kOptimal);
  EXPECT_EQ(pre.reduced.num_constraints(), 0);
  EXPECT_DOUBLE_EQ(pre.reduced.var(0).lb, 2.0);
  EXPECT_DOUBLE_EQ(pre.reduced.var(0).ub, 5.0);
}

TEST(Presolve, NegativeSingletonFlipsBounds) {
  Model m;
  const int x = m.add_continuous(-100, 100);
  m.add_constraint({{x, -1.0}}, -3.0, 7.0);  // -7 <= x <= 3
  const PresolveResult pre = presolve(m);
  ASSERT_EQ(pre.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(pre.reduced.var(0).lb, -7.0);
  EXPECT_DOUBLE_EQ(pre.reduced.var(0).ub, 3.0);
}

TEST(Presolve, RedundantRowsDropped) {
  Model m;
  const int x = m.add_binary();
  const int y = m.add_binary();
  m.add_le({{x, 1.0}, {y, 1.0}}, 5.0);  // always true for binaries
  const PresolveResult pre = presolve(m);
  EXPECT_EQ(pre.reduced.num_constraints(), 0);
  EXPECT_EQ(pre.rows_dropped, 1);
}

TEST(Presolve, DetectsInfeasibleRow) {
  Model m;
  const int x = m.add_binary();
  const int y = m.add_binary();
  m.add_ge({{x, 1.0}, {y, 1.0}}, 3.0);  // max activity is 2
  EXPECT_EQ(presolve(m).status, SolveStatus::kInfeasible);
}

TEST(Presolve, DetectsEmptyInfeasibleRowAfterSubstitution) {
  Model m;
  const int x = m.add_continuous(1, 1);
  m.add_ge({{x, 1.0}}, 2.0);
  EXPECT_EQ(presolve(m).status, SolveStatus::kInfeasible);
}

TEST(Presolve, IntegerBoundsRoundedInward) {
  Model m;
  m.add_var(0.3, 2.7, 0.0, VarType::kInteger);
  const PresolveResult pre = presolve(m);
  EXPECT_DOUBLE_EQ(pre.reduced.var(0).lb, 1.0);
  EXPECT_DOUBLE_EQ(pre.reduced.var(0).ub, 2.0);
}

TEST(Presolve, IntegerWithNoIntegerInRangeIsInfeasible) {
  Model m;
  m.add_var(0.2, 0.8, 0.0, VarType::kInteger);
  EXPECT_EQ(presolve(m).status, SolveStatus::kInfeasible);
}

TEST(Presolve, ChainedFixingsPropagate) {
  // x fixed -> row becomes singleton on y -> y fixed -> row on z redundant.
  Model m;
  const int x = m.add_continuous(3, 3);
  const int y = m.add_continuous(0, 10);
  const int z = m.add_binary();
  m.add_eq({{x, 1.0}, {y, 1.0}}, 8.0);          // y = 5
  m.add_le({{y, 1.0}, {z, 1.0}}, 7.0);          // z <= 2: redundant for binary
  const PresolveResult pre = presolve(m);
  ASSERT_EQ(pre.status, SolveStatus::kOptimal);
  EXPECT_EQ(pre.vars_fixed, 2);
  EXPECT_EQ(pre.reduced.num_vars(), 1);  // only z survives
  EXPECT_EQ(pre.reduced.num_constraints(), 0);
  const std::vector<double> x_orig = pre.postsolve({1.0});
  EXPECT_DOUBLE_EQ(x_orig[static_cast<size_t>(x)], 3.0);
  EXPECT_DOUBLE_EQ(x_orig[static_cast<size_t>(y)], 5.0);
  EXPECT_DOUBLE_EQ(x_orig[static_cast<size_t>(z)], 1.0);
}

TEST(Presolve, PostsolveRoundTripsFeasibility) {
  Model m;
  const int a = m.add_binary(2.0);
  const int b = m.add_continuous(1, 1, 3.0);
  const int c = m.add_continuous(0, 4, -1.0);
  m.add_le({{a, 1.0}, {b, 2.0}, {c, 1.0}}, 6.0);
  const PresolveResult pre = presolve(m);
  ASSERT_EQ(pre.status, SolveStatus::kOptimal);
  const MipResult r = solve_milp(pre.reduced);
  ASSERT_TRUE(r.has_solution());
  const std::vector<double> lifted = pre.postsolve(r.x);
  EXPECT_LE(m.max_violation(lifted, true), 1e-6);
  (void)a;
  (void)b;
  (void)c;
}

TEST(Presolve, SolveMilpUsesPresolveTransparently) {
  // Same optimum with and without presolve, including the objective
  // contribution of eliminated (fixed) variables.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int fixed = m.add_continuous(2, 2, 10.0);  // contributes 20
  const int x = m.add_binary(3.0);
  const int y = m.add_binary(4.0);
  m.add_le({{x, 1.0}, {y, 1.0}, {fixed, 1.0}}, 3.0);  // x + y <= 1
  MipOptions with;
  MipOptions without;
  without.presolve = false;
  const MipResult a = solve_milp(m, with);
  const MipResult b = solve_milp(m, without);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.obj, b.obj, 1e-9);
  EXPECT_NEAR(a.obj, 24.0, 1e-9);
  EXPECT_NEAR(a.best_bound, b.best_bound, 1e-6);
}

class PresolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(PresolveProperty, AgreesWithRawSolveOnRandomMips) {
  Rng rng(4242 + static_cast<std::uint64_t>(GetParam()));
  Model m;
  const int nv = 3 + static_cast<int>(rng.next_below(6));
  for (int j = 0; j < nv; ++j) {
    if (rng.next_bool(0.3)) {
      const double v = rng.next_int(0, 3);
      m.add_continuous(v, v, rng.next_double() * 4 - 2);  // pre-fixed var
    } else {
      m.add_binary(rng.next_double() * 4 - 2);
    }
  }
  const int nc = 1 + static_cast<int>(rng.next_below(5));
  for (int r = 0; r < nc; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < nv; ++j)
      if (rng.next_bool(0.6)) terms.emplace_back(j, rng.next_double() * 4 - 2);
    if (terms.empty()) terms.emplace_back(0, 1.0);
    m.add_le(std::move(terms), rng.next_double() * 5);
  }
  MipOptions with;
  MipOptions without;
  without.presolve = false;
  const MipResult a = solve_milp(m, with);
  const MipResult b = solve_milp(m, without);
  ASSERT_EQ(a.status, b.status) << to_string(a.status) << " vs "
                                << to_string(b.status);
  if (a.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(a.obj, b.obj, 1e-6);
    EXPECT_LE(m.max_violation(a.x, true), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace cgraf::milp
