// Property tests: the simplex and branch & bound are validated against
// brute force / first principles on randomized instances.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.h"
#include "milp/model.h"
#include "milp/simplex.h"
#include "util/rng.h"

namespace cgraf::milp {
namespace {

struct RandomLpCase {
  Model model;
};

Model random_lp(Rng& rng, int max_vars, int max_rows, bool binaries) {
  Model m;
  const int nv = 2 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_vars)));
  const int nc = 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_rows)));
  for (int j = 0; j < nv; ++j) {
    const double obj = rng.next_double() * 10 - 5;
    if (binaries) m.add_binary(obj);
    else m.add_continuous(0, 5 + rng.next_double() * 5, obj);
  }
  for (int r = 0; r < nc; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < nv; ++j)
      if (rng.next_bool(0.6)) terms.emplace_back(j, rng.next_double() * 6 - 3);
    if (terms.empty()) terms.emplace_back(0, 1.0);
    const double rhs = rng.next_double() * 6 - 1;
    switch (rng.next_below(3)) {
      case 0: m.add_le(std::move(terms), rhs); break;
      case 1: m.add_ge(std::move(terms), -rhs); break;
      default: m.add_constraint(std::move(terms), -2.0 - rhs, 2.0 + rhs); break;
    }
  }
  if (rng.next_bool(0.5)) m.set_sense(Sense::kMaximize);
  return m;
}

class RandomLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpProperty, OptimalSolutionsAreFeasible) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const Model m = random_lp(rng, 10, 8, false);
  const LpResult r = solve_lp(m);
  switch (r.status) {
    case SolveStatus::kOptimal:
      EXPECT_LE(m.max_violation(r.x), 1e-6);
      break;
    case SolveStatus::kInfeasible:
    case SolveStatus::kUnbounded:
      break;  // legitimate outcomes for random data
    default:
      FAIL() << "unexpected status " << to_string(r.status);
  }
}

TEST_P(RandomLpProperty, ScalingObjectiveScalesOptimum) {
  Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  Model m = random_lp(rng, 8, 6, false);
  const LpResult r1 = solve_lp(m);
  if (r1.status != SolveStatus::kOptimal) GTEST_SKIP();
  for (int j = 0; j < m.num_vars(); ++j) m.set_obj(j, 2.0 * m.var(j).obj);
  const LpResult r2 = solve_lp(m);
  ASSERT_EQ(r2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r2.obj, 2.0 * r1.obj, 1e-5 * (1.0 + std::abs(r1.obj)));
}

TEST_P(RandomLpProperty, MilpMatchesBruteForce) {
  Rng rng(9000 + static_cast<std::uint64_t>(GetParam()));
  const Model m = random_lp(rng, 8, 6, true);
  const int nv = m.num_vars();
  ASSERT_LE(nv, 10);

  // Brute force over all 0/1 points.
  const double sign = m.sense() == Sense::kMinimize ? 1.0 : -1.0;
  double best = kInf;
  bool any = false;
  for (int mask = 0; mask < (1 << nv); ++mask) {
    std::vector<double> x(static_cast<size_t>(nv), 0.0);
    for (int j = 0; j < nv; ++j)
      if (mask >> j & 1) x[static_cast<size_t>(j)] = 1.0;
    if (m.max_violation(x) > 1e-9) continue;
    any = true;
    best = std::min(best, sign * m.objective_value(x));
  }

  const MipResult r = solve_milp(m);
  if (!any) {
    EXPECT_EQ(r.status, SolveStatus::kInfeasible);
    return;
  }
  ASSERT_EQ(r.status, SolveStatus::kOptimal)
      << "expected optimal, got " << to_string(r.status);
  EXPECT_NEAR(sign * r.obj, best, 1e-6);
  EXPECT_LE(m.max_violation(r.x, /*check_integrality=*/true), 1e-6);
}

TEST_P(RandomLpProperty, LpRelaxationBoundsMilp) {
  Rng rng(13000 + static_cast<std::uint64_t>(GetParam()));
  Model m = random_lp(rng, 7, 5, true);
  const MipResult mip = solve_milp(m);
  if (mip.status != SolveStatus::kOptimal) GTEST_SKIP();
  Model relaxed = m;
  for (int j = 0; j < relaxed.num_vars(); ++j) relaxed.relax_var(j);
  const LpResult lp = solve_lp(relaxed);
  ASSERT_EQ(lp.status, SolveStatus::kOptimal);
  if (m.sense() == Sense::kMinimize) {
    EXPECT_LE(lp.obj, mip.obj + 1e-6);
  } else {
    EXPECT_GE(lp.obj, mip.obj - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace cgraf::milp
