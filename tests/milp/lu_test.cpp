#include "milp/lu.h"

#include <gtest/gtest.h>

#include <cmath>

#include "milp/model.h"
#include "util/rng.h"

namespace cgraf::milp {
namespace {

// Builds a CSC matrix directly from dense data (rows x cols).
CscMatrix from_dense(const std::vector<std::vector<double>>& dense) {
  CscMatrix a;
  a.rows = static_cast<int>(dense.size());
  a.cols = a.rows == 0 ? 0 : static_cast<int>(dense[0].size());
  a.col_start.assign(static_cast<size_t>(a.cols) + 1, 0);
  for (int j = 0; j < a.cols; ++j) {
    a.col_start[static_cast<size_t>(j) + 1] = a.col_start[static_cast<size_t>(j)];
    for (int i = 0; i < a.rows; ++i) {
      if (dense[static_cast<size_t>(i)][static_cast<size_t>(j)] != 0.0) {
        a.row_idx.push_back(i);
        a.value.push_back(dense[static_cast<size_t>(i)][static_cast<size_t>(j)]);
        ++a.col_start[static_cast<size_t>(j) + 1];
      }
    }
  }
  return a;
}

std::vector<double> multiply(const CscMatrix& a, const std::vector<int>& basis,
                             const std::vector<double>& x) {
  std::vector<double> b(static_cast<size_t>(a.rows), 0.0);
  for (size_t p = 0; p < basis.size(); ++p)
    a.axpy_col(basis[p], x[p], b);
  return b;
}

std::vector<double> multiply_t(const CscMatrix& a,
                               const std::vector<int>& basis,
                               const std::vector<double>& x) {
  std::vector<double> b(basis.size(), 0.0);
  for (size_t p = 0; p < basis.size(); ++p) b[p] = a.dot_col(basis[p], x);
  return b;
}

TEST(BasisLu, IdentityRoundTrip) {
  const CscMatrix a = from_dense({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, {0, 1, 2}));
  std::vector<double> x{3.0, -2.0, 7.0};
  lu.ftran(x);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
  EXPECT_NEAR(x[2], 7.0, 1e-12);
}

TEST(BasisLu, DenseMatrixSolves) {
  const CscMatrix a =
      from_dense({{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}});
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, {0, 1, 2}));
  const std::vector<double> want{1.0, -2.0, 3.0};
  std::vector<double> b = multiply(a, {0, 1, 2}, want);
  lu.ftran(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(b[static_cast<size_t>(i)], want[static_cast<size_t>(i)], 1e-9);

  std::vector<double> c = multiply_t(a, {0, 1, 2}, want);
  lu.btran(c);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(c[static_cast<size_t>(i)], want[static_cast<size_t>(i)], 1e-9);
}

TEST(BasisLu, PermutedBasisColumns) {
  const CscMatrix a =
      from_dense({{0, 0, 5}, {3, 0, 0}, {0, -2, 0}});
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, {0, 1, 2}));
  std::vector<double> b{5.0, 3.0, -2.0};  // = B * (1,1,1)
  lu.ftran(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
  EXPECT_NEAR(b[2], 1.0, 1e-12);
}

TEST(BasisLu, SingularMatrixRejected) {
  const CscMatrix a = from_dense({{1, 2, 3}, {2, 4, 6}, {1, 0, 1}});
  BasisLu lu;
  EXPECT_FALSE(lu.factorize(a, {0, 1, 2}));
}

TEST(BasisLu, StructurallySingularRejected) {
  const CscMatrix a = from_dense({{1, 0, 1}, {0, 0, 1}, {1, 0, 0}});
  BasisLu lu;
  EXPECT_FALSE(lu.factorize(a, {0, 1, 2}));  // column 1 is empty
}

TEST(BasisLu, EmptyBasis) {
  const CscMatrix a = from_dense({});
  BasisLu lu;
  EXPECT_TRUE(lu.factorize(a, {}));
  std::vector<double> x;
  lu.ftran(x);
  lu.btran(x);
}

TEST(BasisLu, RandomSparseRoundTrips) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const int m = 5 + static_cast<int>(rng.next_below(40));
    // Random sparse matrix with a guaranteed nonzero diagonal.
    std::vector<std::vector<double>> dense(
        static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(m), 0.0));
    for (int i = 0; i < m; ++i) {
      dense[static_cast<size_t>(i)][static_cast<size_t>(i)] =
          1.0 + rng.next_double();
      for (int k = 0; k < 3; ++k) {
        const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(m)));
        if (j != i) dense[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            rng.next_double() * 4.0 - 2.0;
      }
    }
    const CscMatrix a = from_dense(dense);
    std::vector<int> basis(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) basis[static_cast<size_t>(i)] = i;

    BasisLu lu;
    ASSERT_TRUE(lu.factorize(a, basis)) << "trial " << trial;
    std::vector<double> want(static_cast<size_t>(m));
    for (double& v : want) v = rng.next_double() * 10 - 5;
    std::vector<double> b = multiply(a, basis, want);
    lu.ftran(b);
    for (int i = 0; i < m; ++i)
      ASSERT_NEAR(b[static_cast<size_t>(i)], want[static_cast<size_t>(i)], 1e-7)
          << "trial " << trial;
    std::vector<double> c = multiply_t(a, basis, want);
    lu.btran(c);
    for (int i = 0; i < m; ++i)
      ASSERT_NEAR(c[static_cast<size_t>(i)], want[static_cast<size_t>(i)], 1e-7)
          << "trial " << trial;
  }
}

TEST(BasisLu, EtaUpdateMatchesRefactorization) {
  Rng rng(7);
  const int m = 12;
  std::vector<std::vector<double>> dense(
      static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(m + 4), 0.0));
  for (int i = 0; i < m; ++i) {
    dense[static_cast<size_t>(i)][static_cast<size_t>(i)] = 2.0 + rng.next_double();
    dense[static_cast<size_t>(i)]
         [static_cast<size_t>((i + 3) % (m + 4))] += 1.0;
  }
  for (int i = 0; i < m; ++i)
    dense[static_cast<size_t>(i)][static_cast<size_t>(m + i % 4)] =
        rng.next_double() + 0.5;
  const CscMatrix a = from_dense(dense);

  std::vector<int> basis(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) basis[static_cast<size_t>(i)] = i;
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, basis));

  // Replace basis position 5 with column m+1 via a PFI update.
  std::vector<double> spike(static_cast<size_t>(m), 0.0);
  a.axpy_col(m + 1, 1.0, spike);
  lu.ftran(spike);
  ASSERT_TRUE(lu.update(spike, 5));
  basis[5] = m + 1;

  BasisLu fresh;
  ASSERT_TRUE(fresh.factorize(a, basis));

  std::vector<double> rhs(static_cast<size_t>(m));
  for (double& v : rhs) v = rng.next_double() * 2 - 1;
  std::vector<double> via_eta = rhs, via_fresh = rhs;
  lu.ftran(via_eta);
  fresh.ftran(via_fresh);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(via_eta[static_cast<size_t>(i)], via_fresh[static_cast<size_t>(i)], 1e-8);

  std::vector<double> bt_eta = rhs, bt_fresh = rhs;
  lu.btran(bt_eta);
  fresh.btran(bt_fresh);
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(bt_eta[static_cast<size_t>(i)], bt_fresh[static_cast<size_t>(i)], 1e-8);
}

TEST(BasisLu, UpdateRejectsTinyPivot) {
  const CscMatrix a = from_dense({{1, 0}, {0, 1}});
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, {0, 1}));
  std::vector<double> spike{1.0, 0.0};  // zero at position 1
  EXPECT_FALSE(lu.update(spike, 1));
}

}  // namespace
}  // namespace cgraf::milp
