// Determinism of the parallel branch & bound: a run that proves optimality
// must report the same optimal objective (and the same feasibility verdict)
// for any worker-thread count.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.h"
#include "milp/model.h"
#include "util/rng.h"

namespace cgraf::milp {
namespace {

Model random_milp(Rng& rng, int max_vars, int max_rows) {
  Model m;
  const int nv =
      3 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_vars)));
  const int nc =
      2 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_rows)));
  for (int j = 0; j < nv; ++j) m.add_binary(rng.next_double() * 10 - 5);
  for (int r = 0; r < nc; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < nv; ++j)
      if (rng.next_bool(0.6)) terms.emplace_back(j, rng.next_double() * 6 - 3);
    if (terms.empty()) terms.emplace_back(0, 1.0);
    const double rhs = rng.next_double() * 6 - 1;
    switch (rng.next_below(3)) {
      case 0: m.add_le(std::move(terms), rhs); break;
      case 1: m.add_ge(std::move(terms), -rhs); break;
      default: m.add_constraint(std::move(terms), -2.0 - rhs, 2.0 + rhs); break;
    }
  }
  if (rng.next_bool(0.5)) m.set_sense(Sense::kMaximize);
  return m;
}

// A small ops x pes assignment feasibility model (the floorplanner's shape)
// with enough structure to branch a few levels deep.
Model assignment_milp(std::uint64_t seed, int ops, int pes) {
  Rng rng(seed);
  Model m;
  std::vector<std::vector<int>> vars(static_cast<size_t>(ops));
  for (int j = 0; j < ops; ++j) {
    for (int k = 0; k < pes; ++k)
      vars[static_cast<size_t>(j)].push_back(m.add_binary(rng.next_double()));
    std::vector<std::pair<int, double>> row;
    for (const int v : vars[static_cast<size_t>(j)]) row.emplace_back(v, 1.0);
    m.add_eq(std::move(row), 1.0);
  }
  for (int k = 0; k < pes; ++k) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < ops; ++j)
      row.emplace_back(vars[static_cast<size_t>(j)][static_cast<size_t>(k)],
                       1.0);
    m.add_le(std::move(row), 1.0 + ops / pes);
  }
  return m;
}

class ParallelBnbDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ParallelBnbDeterminism, SameObjectiveForAnyThreadCount) {
  Rng rng(777 + static_cast<std::uint64_t>(GetParam()));
  const Model m = random_milp(rng, 10, 8);

  MipResult ref;
  bool have_ref = false;
  for (const int threads : {1, 2, 4}) {
    MipOptions opts;
    opts.num_threads = threads;
    const MipResult r = solve_milp(m, opts);
    EXPECT_EQ(r.threads_used, threads);
    EXPECT_EQ(static_cast<int>(r.nodes_per_thread.size()), threads);
    long total = 0;
    for (const long n : r.nodes_per_thread) total += n;
    EXPECT_EQ(total, r.nodes);
    if (!have_ref) {
      ref = r;
      have_ref = true;
      continue;
    }
    ASSERT_EQ(r.status, ref.status) << "threads=" << threads;
    if (r.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(r.obj, ref.obj, 1e-6 * (1.0 + std::abs(ref.obj)))
          << "threads=" << threads;
      EXPECT_LE(m.max_violation(r.x, /*check_integrality=*/true), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelBnbDeterminism,
                         ::testing::Range(0, 24));

TEST(ParallelBnb, AssignmentModelOptimumMatchesAcrossThreadCounts) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const Model m = assignment_milp(seed, 8, 4);
    MipOptions serial;
    serial.num_threads = 1;
    const MipResult r1 = solve_milp(m, serial);
    ASSERT_EQ(r1.status, SolveStatus::kOptimal);
    for (const int threads : {2, 4}) {
      MipOptions opts;
      opts.num_threads = threads;
      const MipResult rk = solve_milp(m, opts);
      ASSERT_EQ(rk.status, SolveStatus::kOptimal) << "threads=" << threads;
      EXPECT_NEAR(rk.obj, r1.obj, 1e-6) << "threads=" << threads;
    }
  }
}

TEST(ParallelBnb, StopAtFirstIncumbentStillFeasibleWithThreads) {
  const Model m = assignment_milp(5, 10, 5);
  MipOptions opts;
  opts.num_threads = 4;
  opts.stop_at_first_incumbent = true;
  const MipResult r = solve_milp(m, opts);
  ASSERT_TRUE(r.has_solution());
  EXPECT_LE(m.max_violation(r.x, /*check_integrality=*/true), 1e-6);
}

TEST(ParallelBnb, NodeLimitRespectedWithThreads) {
  Rng rng(4242);
  const Model m = random_milp(rng, 10, 8);
  MipOptions opts;
  opts.num_threads = 4;
  opts.max_nodes = 0;
  const MipResult r = solve_milp(m, opts);
  EXPECT_FALSE(r.has_solution());
}

// Kept out of the ParallelBnb suite: the TSan CI lane filters on that name
// and death tests fork, which is unreliable under -fsanitize=thread.
TEST(MipOptionsDeathTest, NegativeThreadCountAborts) {
  const Model m = assignment_milp(5, 3, 3);
  MipOptions opts;
  opts.num_threads = -2;
  EXPECT_DEATH(solve_milp(m, opts), "num_threads");
}

TEST(ParallelBnb, NegativeTimeBudgetClampsToZero) {
  // An exhausted wall-clock budget must not turn into a negative child-LP
  // limit (which used to disable the LP's own time check entirely).
  const Model m = assignment_milp(9, 8, 4);
  MipOptions opts;
  opts.num_threads = 2;
  opts.time_limit_s = 0.0;
  const MipResult r = solve_milp(m, opts);
  EXPECT_TRUE(r.status == SolveStatus::kTimeLimit ||
              r.status == SolveStatus::kFeasible ||
              r.status == SolveStatus::kOptimal);
}

}  // namespace
}  // namespace cgraf::milp
