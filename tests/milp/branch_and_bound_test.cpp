#include "milp/branch_and_bound.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cgraf::milp {
namespace {

TEST(BranchAndBound, KnapsackOptimal) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const double value[] = {10, 6, 4};
  const double weight[] = {1, 1, 1};
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 3; ++i) row.emplace_back(m.add_binary(value[i]), weight[i]);
  m.add_le(std::move(row), 2.0);
  const MipResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, 16.0, 1e-8);
  EXPECT_GT(r.x[0], 0.5);
  EXPECT_GT(r.x[1], 0.5);
  EXPECT_LT(r.x[2], 0.5);
}

TEST(BranchAndBound, FractionalLpForcedInteger) {
  // LP optimum is x = 2.5; MILP must settle on 2.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_var(0, 10, 1, VarType::kInteger);
  m.add_le({{x, 2.0}}, 5.0);
  const MipResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, 2.0, 1e-8);
}

TEST(BranchAndBound, InfeasibleIntegrality) {
  // 2x = 3 has no integer solution but a fractional one.
  Model m;
  const int x = m.add_var(0, 5, 0, VarType::kInteger);
  m.add_eq({{x, 2.0}}, 3.0);
  EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
}

TEST(BranchAndBound, InfeasibleBoundsRejectedEarly) {
  Model m;
  const int x = m.add_var(0.2, 0.8, 0, VarType::kInteger);  // no integer in range
  m.add_le({{x, 1.0}}, 10.0);
  EXPECT_EQ(solve_milp(m).status, SolveStatus::kInfeasible);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // max x + y, x integer <= 2.5, y continuous <= 0.5: obj = 2 + 0.5.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_var(0, kInf, 1, VarType::kInteger);
  const int y = m.add_continuous(0, kInf, 1);
  m.add_le({{x, 1.0}}, 2.5);
  m.add_le({{y, 1.0}}, 0.5);
  const MipResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, 2.5, 1e-8);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(BranchAndBound, EqualityAssignment) {
  // 3 ops x 3 PEs permutation with distinct costs: optimum is the identity.
  Model m;
  int v[3][3];
  const double cost[3][3] = {{0, 5, 5}, {5, 0, 5}, {5, 5, 0}};
  for (int i = 0; i < 3; ++i)
    for (int k = 0; k < 3; ++k) v[i][k] = m.add_binary(cost[i][k]);
  for (int i = 0; i < 3; ++i)
    m.add_eq({{v[i][0], 1.0}, {v[i][1], 1.0}, {v[i][2], 1.0}}, 1.0);
  for (int k = 0; k < 3; ++k)
    m.add_le({{v[0][k], 1.0}, {v[1][k], 1.0}, {v[2][k], 1.0}}, 1.0);
  const MipResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, 0.0, 1e-8);
  for (int i = 0; i < 3; ++i) EXPECT_GT(r.x[static_cast<size_t>(v[i][i])], 0.5);
}

TEST(BranchAndBound, StopAtFirstIncumbent) {
  // Feasibility-style model: stop as soon as any solution appears.
  Model m;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 8; ++i) row.emplace_back(m.add_binary(), 1.0);
  m.add_eq(std::move(row), 4.0);
  MipOptions opts;
  opts.stop_at_first_incumbent = true;
  const MipResult r = solve_milp(m, opts);
  EXPECT_TRUE(r.status == SolveStatus::kOptimal ||
              r.status == SolveStatus::kFeasible);
  ASSERT_TRUE(r.has_solution());
  double sum = 0;
  for (const double x : r.x) sum += x;
  EXPECT_NEAR(sum, 4.0, 1e-6);
}

TEST(BranchAndBound, NodeLimitWithoutSolution) {
  // A tough equal-sum partition with an odd total: infeasible, but the
  // proof needs search; a 0-node budget reports the limit instead.
  Model m;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 10; ++i)
    row.emplace_back(m.add_binary(), 1.0 + i * 0.0);
  m.add_eq(std::move(row), 4.5);
  MipOptions opts;
  opts.max_nodes = 0;
  const MipResult r = solve_milp(m, opts);
  EXPECT_EQ(r.status, SolveStatus::kNodeLimit);
  EXPECT_FALSE(r.has_solution());
}

TEST(BranchAndBound, BestBoundIsValid) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const double value[] = {7, 5, 4, 3};
  const double weight[] = {13, 10, 8, 7};
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 4; ++i) row.emplace_back(m.add_binary(value[i]), weight[i]);
  m.add_le(std::move(row), 19.0);
  const MipResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_GE(r.best_bound, r.obj - 1e-6);  // maximization: bound >= incumbent
}

TEST(BranchAndBound, PureLpModelPassesThrough) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_continuous(0, 2.5, 1);
  m.add_le({{x, 1.0}}, 10.0);
  const MipResult r = solve_milp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, 2.5, 1e-8);
  EXPECT_EQ(r.nodes, 1);
}

}  // namespace
}  // namespace cgraf::milp
