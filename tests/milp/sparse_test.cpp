#include "milp/sparse.h"

#include <gtest/gtest.h>

#include <limits>

#include "milp/model.h"

namespace cgraf::milp {
namespace {

Model two_row_model() {
  Model m;
  const int x = m.add_continuous(0, 1);
  const int y = m.add_continuous(0, 1);
  const int z = m.add_continuous(0, 1);
  m.add_le({{x, 2.0}, {z, -1.0}}, 4.0);
  m.add_eq({{y, 5.0}, {z, 3.0}}, 1.0);
  return m;
}

TEST(CscMatrix, ComputationalFormShape) {
  const Model m = two_row_model();
  const CscMatrix a = build_computational_form(m);
  EXPECT_EQ(a.rows, 2);
  EXPECT_EQ(a.cols, 3 + 2);  // structurals + slacks
  EXPECT_EQ(a.nnz(), 4 + 2);
}

TEST(CscMatrix, StructuralColumnsSortedAndCorrect) {
  const Model m = two_row_model();
  const CscMatrix a = build_computational_form(m);
  // Column 2 (variable z) has entries in rows 0 and 1.
  EXPECT_EQ(a.end(2) - a.begin(2), 2);
  EXPECT_EQ(a.row_idx[static_cast<size_t>(a.begin(2))], 0);
  EXPECT_DOUBLE_EQ(a.value[static_cast<size_t>(a.begin(2))], -1.0);
  EXPECT_EQ(a.row_idx[static_cast<size_t>(a.begin(2)) + 1], 1);
  EXPECT_DOUBLE_EQ(a.value[static_cast<size_t>(a.begin(2)) + 1], 3.0);
}

TEST(CscMatrix, SlackColumnsAreMinusIdentity) {
  const Model m = two_row_model();
  const CscMatrix a = build_computational_form(m);
  for (int r = 0; r < 2; ++r) {
    const int col = 3 + r;
    ASSERT_EQ(a.end(col) - a.begin(col), 1);
    EXPECT_EQ(a.row_idx[static_cast<size_t>(a.begin(col))], r);
    EXPECT_DOUBLE_EQ(a.value[static_cast<size_t>(a.begin(col))], -1.0);
  }
}

TEST(CscMatrix, AxpyAndDot) {
  const Model m = two_row_model();
  const CscMatrix a = build_computational_form(m);
  std::vector<double> y(2, 0.0);
  a.axpy_col(2, 2.0, y);  // z column scaled by 2
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(a.dot_col(2, {1.0, 1.0}), 2.0);  // -1 + 3
}

TEST(FromTriplets, MergesDuplicateEntries) {
  // Two entries land on (row 1, col 0); ingestion must sum them instead of
  // emitting a duplicate pair.
  const CscMatrix a = from_triplets(
      3, 2, {{1, 0, 2.0}, {0, 1, 4.0}, {1, 0, 3.0}, {2, 1, -1.0}});
  EXPECT_TRUE(is_canonical(a));
  EXPECT_EQ(a.nnz(), 3);
  ASSERT_EQ(a.end(0) - a.begin(0), 1);
  EXPECT_EQ(a.row_idx[static_cast<size_t>(a.begin(0))], 1);
  EXPECT_DOUBLE_EQ(a.value[static_cast<size_t>(a.begin(0))], 5.0);
}

TEST(FromTriplets, DropsEntriesThatCancelToZero) {
  const CscMatrix a = from_triplets(2, 2, {{0, 0, 1.5}, {0, 0, -1.5},
                                           {1, 1, 7.0}});
  EXPECT_TRUE(is_canonical(a));
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_EQ(a.end(0) - a.begin(0), 0);
  ASSERT_EQ(a.end(1) - a.begin(1), 1);
  EXPECT_DOUBLE_EQ(a.value[static_cast<size_t>(a.begin(1))], 7.0);
}

TEST(FromTriplets, SortsUnorderedInput) {
  const CscMatrix a =
      from_triplets(3, 3, {{2, 2, 1.0}, {0, 0, 1.0}, {2, 0, 1.0}, {1, 1, 1.0},
                           {0, 2, 1.0}});
  EXPECT_TRUE(is_canonical(a));
  EXPECT_EQ(a.nnz(), 5);
  // Column 0 rows come out sorted even though they arrived reversed.
  ASSERT_EQ(a.end(0) - a.begin(0), 2);
  EXPECT_EQ(a.row_idx[static_cast<size_t>(a.begin(0))], 0);
  EXPECT_EQ(a.row_idx[static_cast<size_t>(a.begin(0)) + 1], 2);
}

TEST(FromTriplets, EmptyInputYieldsEmptyCanonicalMatrix) {
  const CscMatrix a = from_triplets(4, 5, {});
  EXPECT_TRUE(is_canonical(a));
  EXPECT_EQ(a.rows, 4);
  EXPECT_EQ(a.cols, 5);
  EXPECT_EQ(a.nnz(), 0);
}

TEST(IsCanonical, RejectsDuplicateAndUnsortedRows) {
  CscMatrix a;
  a.rows = 2;
  a.cols = 1;
  a.col_start = {0, 2};
  a.row_idx = {1, 1};  // duplicate (1, 0) entry
  a.value = {1.0, 2.0};
  EXPECT_FALSE(is_canonical(a));
  a.row_idx = {1, 0};  // out of order
  EXPECT_FALSE(is_canonical(a));
  a.row_idx = {0, 1};
  EXPECT_TRUE(is_canonical(a));
}

TEST(IsCanonical, RejectsBrokenColStartAndNonFiniteValues) {
  CscMatrix a;
  a.rows = 1;
  a.cols = 2;
  a.col_start = {0, 1, 1};  // claims 1 entry but the arrays hold 2
  a.row_idx = {0, 0};
  a.value = {1.0, 1.0};
  EXPECT_FALSE(is_canonical(a));
  a.col_start = {0, 1, 2};
  EXPECT_TRUE(is_canonical(a));
  a.value = {1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(is_canonical(a));
}

TEST(CscMatrix, ComputationalFormIsCanonical) {
  const Model m = two_row_model();
  EXPECT_TRUE(is_canonical(build_computational_form(m)));
}

TEST(CscMatrix, ModelMergesDuplicateTermsBeforeIngestion) {
  Model m;
  const int x = m.add_continuous(0, 1);
  const int y = m.add_continuous(0, 1);
  // The same variable listed twice in one row must reach the sparse layer
  // as a single merged coefficient.
  m.add_le({{x, 2.0}, {y, 1.0}, {x, 3.0}}, 4.0);
  const CscMatrix a = build_computational_form(m);
  EXPECT_TRUE(is_canonical(a));
  ASSERT_EQ(a.end(0) - a.begin(0), 1);
  EXPECT_DOUBLE_EQ(a.value[static_cast<size_t>(a.begin(0))], 5.0);
}

TEST(CscMatrix, EmptyModel) {
  Model m;
  m.add_continuous(0, 1);
  const CscMatrix a = build_computational_form(m);
  EXPECT_EQ(a.rows, 0);
  EXPECT_EQ(a.cols, 1);
  EXPECT_EQ(a.nnz(), 0);
}

}  // namespace
}  // namespace cgraf::milp
