#include "milp/sparse.h"

#include <gtest/gtest.h>

#include "milp/model.h"

namespace cgraf::milp {
namespace {

Model two_row_model() {
  Model m;
  const int x = m.add_continuous(0, 1);
  const int y = m.add_continuous(0, 1);
  const int z = m.add_continuous(0, 1);
  m.add_le({{x, 2.0}, {z, -1.0}}, 4.0);
  m.add_eq({{y, 5.0}, {z, 3.0}}, 1.0);
  return m;
}

TEST(CscMatrix, ComputationalFormShape) {
  const Model m = two_row_model();
  const CscMatrix a = build_computational_form(m);
  EXPECT_EQ(a.rows, 2);
  EXPECT_EQ(a.cols, 3 + 2);  // structurals + slacks
  EXPECT_EQ(a.nnz(), 4 + 2);
}

TEST(CscMatrix, StructuralColumnsSortedAndCorrect) {
  const Model m = two_row_model();
  const CscMatrix a = build_computational_form(m);
  // Column 2 (variable z) has entries in rows 0 and 1.
  EXPECT_EQ(a.end(2) - a.begin(2), 2);
  EXPECT_EQ(a.row_idx[static_cast<size_t>(a.begin(2))], 0);
  EXPECT_DOUBLE_EQ(a.value[static_cast<size_t>(a.begin(2))], -1.0);
  EXPECT_EQ(a.row_idx[static_cast<size_t>(a.begin(2)) + 1], 1);
  EXPECT_DOUBLE_EQ(a.value[static_cast<size_t>(a.begin(2)) + 1], 3.0);
}

TEST(CscMatrix, SlackColumnsAreMinusIdentity) {
  const Model m = two_row_model();
  const CscMatrix a = build_computational_form(m);
  for (int r = 0; r < 2; ++r) {
    const int col = 3 + r;
    ASSERT_EQ(a.end(col) - a.begin(col), 1);
    EXPECT_EQ(a.row_idx[static_cast<size_t>(a.begin(col))], r);
    EXPECT_DOUBLE_EQ(a.value[static_cast<size_t>(a.begin(col))], -1.0);
  }
}

TEST(CscMatrix, AxpyAndDot) {
  const Model m = two_row_model();
  const CscMatrix a = build_computational_form(m);
  std::vector<double> y(2, 0.0);
  a.axpy_col(2, 2.0, y);  // z column scaled by 2
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(a.dot_col(2, {1.0, 1.0}), 2.0);  // -1 + 3
}

TEST(CscMatrix, EmptyModel) {
  Model m;
  m.add_continuous(0, 1);
  const CscMatrix a = build_computational_form(m);
  EXPECT_EQ(a.rows, 0);
  EXPECT_EQ(a.cols, 1);
  EXPECT_EQ(a.nnz(), 0);
}

}  // namespace
}  // namespace cgraf::milp
