#include "milp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cgraf::milp {
namespace {

TEST(Simplex, TextbookMaximization) {
  // max 3x + 2y  s.t. x+y <= 4, x+3y <= 6  ->  x=4, y=0, obj=12.
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_continuous(0, kInf, 3);
  const int y = m.add_continuous(0, kInf, 2);
  m.add_le({{x, 1}, {y, 1}}, 4);
  m.add_le({{x, 1}, {y, 3}}, 6);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, 12.0, 1e-8);
  EXPECT_NEAR(r.x[0], 4.0, 1e-8);
  EXPECT_NEAR(r.x[1], 0.0, 1e-8);
}

TEST(Simplex, Minimization) {
  // min x + 2y  s.t. x + y >= 3, x <= 2  ->  x=2, y=1, obj=4.
  Model m;
  const int x = m.add_continuous(0, 2, 1);
  const int y = m.add_continuous(0, kInf, 2);
  m.add_ge({{x, 1}, {y, 1}}, 3);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, 4.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
  Model m;
  const int x = m.add_continuous(0, kInf, 1);
  const int y = m.add_continuous(0, kInf, 1);
  m.add_eq({{x, 1}, {y, 1}}, 5);
  m.add_eq({{x, 1}, {y, -1}}, 1);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 3.0, 1e-8);
  EXPECT_NEAR(r.x[1], 2.0, 1e-8);
}

TEST(Simplex, RangedConstraint) {
  Model m;
  const int x = m.add_continuous(-10, 10, 1);
  m.add_constraint({{x, 2.0}}, 4.0, 6.0);  // 2 <= x <= 3
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_continuous(0, 1, 0);
  m.add_ge({{x, 1}}, 2);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleThroughConflictingRows) {
  Model m;
  const int x = m.add_continuous(-kInf, kInf, 0);
  const int y = m.add_continuous(-kInf, kInf, 0);
  m.add_eq({{x, 1}, {y, 1}}, 1);
  m.add_eq({{x, 1}, {y, 1}}, 2);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  m.set_sense(Sense::kMaximize);
  const int x = m.add_continuous(0, kInf, 1);
  const int y = m.add_continuous(0, kInf, 0);
  m.add_ge({{x, 1}, {y, -1}}, 0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, FreeVariables) {
  // min x, x free, x >= -7 via a row.
  Model m;
  const int x = m.add_continuous(-kInf, kInf, 1);
  m.add_ge({{x, 1}}, -7);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], -7.0, 1e-8);
}

TEST(Simplex, NegativeBoundsAndCosts) {
  Model m;
  const int x = m.add_continuous(-5, -1, -2);  // min -2x -> x at upper (-1)
  m.add_le({{x, 1}}, 10);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], -1.0, 1e-8);
}

TEST(Simplex, NullObjectiveReturnsFeasiblePoint) {
  Model m;
  const int x = m.add_continuous(0, 10);
  const int y = m.add_continuous(0, 10);
  m.add_constraint({{x, 1}, {y, 1}}, 3, 7);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(r.x), 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Many redundant rows through the same vertex.
  Model m;
  const int x = m.add_continuous(0, kInf, -1);
  const int y = m.add_continuous(0, kInf, -1);
  m.set_sense(Sense::kMinimize);
  for (int k = 1; k <= 12; ++k)
    m.add_ge({{x, static_cast<double>(k)}, {y, static_cast<double>(k)}}, 0.0);
  m.add_le({{x, 1}, {y, 1}}, 5);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, -5.0, 1e-7);
}

TEST(Simplex, WarmStartReducesIterations) {
  Model m;
  const int n = 30;
  std::vector<int> xs;
  for (int i = 0; i < n; ++i)
    xs.push_back(m.add_continuous(0, 10, 1.0 + 0.1 * i));
  for (int r = 0; r < n; ++r) {
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i <= r; ++i) row.emplace_back(xs[static_cast<size_t>(i)], 1.0);
    m.add_ge(std::move(row), static_cast<double>(r + 1));
  }
  SimplexEngine engine(m);
  const LpResult cold = engine.solve();
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  // Tighten one bound slightly and re-solve warm.
  std::vector<double> lb = engine.model_lb();
  std::vector<double> ub = engine.model_ub();
  lb[0] = 0.5;
  const LpResult warm = engine.solve(lb, ub, &cold.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_LT(warm.iterations, std::max<long>(2, cold.iterations));
}

TEST(Simplex, IterationLimitReported) {
  Model m;
  const int x = m.add_continuous(0, kInf, 1);
  m.add_ge({{x, 1}}, 5);
  LpOptions opts;
  opts.max_iters = 0;
  EXPECT_EQ(solve_lp(m, opts).status, SolveStatus::kIterLimit);
}

TEST(Simplex, FixedVariablesAreRespected) {
  Model m;
  const int x = m.add_continuous(2, 2, 1);  // fixed at 2
  const int y = m.add_continuous(0, kInf, 1);
  m.add_ge({{x, 1}, {y, 1}}, 5);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[static_cast<size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(r.x[static_cast<size_t>(y)], 3.0, 1e-8);
}

TEST(Simplex, ObjectiveConstantSense) {
  // Maximize and minimize of the same model bracket any feasible value.
  Model m;
  const int x = m.add_continuous(0, 1, 1);
  m.add_le({{x, 1}}, 1);
  m.set_sense(Sense::kMaximize);
  const double hi = solve_lp(m).obj;
  m.set_sense(Sense::kMinimize);
  const double lo = solve_lp(m).obj;
  EXPECT_NEAR(hi, 1.0, 1e-9);
  EXPECT_NEAR(lo, 0.0, 1e-9);
}

}  // namespace
}  // namespace cgraf::milp
