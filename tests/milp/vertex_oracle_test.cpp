// Cross-validates the production simplex against an independent oracle:
// exhaustive vertex enumeration. For a bounded LP the optimum is attained
// at a basic feasible point, i.e. at the intersection of n active
// constraints drawn from the rows (at either side) and the variable bounds.
// The oracle enumerates every such intersection with dense Gaussian
// elimination — O(C(k, n)) and only usable for tiny instances, but sharing
// no code whatsoever with the revised simplex under test.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/model.h"
#include "milp/simplex.h"
#include "util/rng.h"

namespace cgraf::milp {
namespace {

// One hyperplane a.x = b.
struct Plane {
  std::vector<double> a;
  double b;
};

// Solves the n x n system (returns false if singular).
bool solve_dense(std::vector<std::vector<double>> m, std::vector<double> rhs,
                 std::vector<double>* out) {
  const int n = static_cast<int>(rhs.size());
  for (int col = 0; col < n; ++col) {
    int pivot = -1;
    double best = 1e-9;
    for (int row = col; row < n; ++row) {
      if (std::abs(m[static_cast<size_t>(row)][static_cast<size_t>(col)]) >
          best) {
        best = std::abs(m[static_cast<size_t>(row)][static_cast<size_t>(col)]);
        pivot = row;
      }
    }
    if (pivot < 0) return false;
    std::swap(m[static_cast<size_t>(col)], m[static_cast<size_t>(pivot)]);
    std::swap(rhs[static_cast<size_t>(col)], rhs[static_cast<size_t>(pivot)]);
    for (int row = 0; row < n; ++row) {
      if (row == col) continue;
      const double f = m[static_cast<size_t>(row)][static_cast<size_t>(col)] /
                       m[static_cast<size_t>(col)][static_cast<size_t>(col)];
      if (f == 0.0) continue;
      for (int k = col; k < n; ++k)
        m[static_cast<size_t>(row)][static_cast<size_t>(k)] -=
            f * m[static_cast<size_t>(col)][static_cast<size_t>(k)];
      rhs[static_cast<size_t>(row)] -= f * rhs[static_cast<size_t>(col)];
    }
  }
  out->resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    (*out)[static_cast<size_t>(i)] =
        rhs[static_cast<size_t>(i)] /
        m[static_cast<size_t>(i)][static_cast<size_t>(i)];
  }
  return true;
}

// Best objective over all vertices, or nullopt when no vertex is feasible.
std::optional<double> oracle_optimum(const Model& model) {
  const int n = model.num_vars();
  std::vector<Plane> planes;
  for (int j = 0; j < n; ++j) {
    std::vector<double> unit(static_cast<size_t>(n), 0.0);
    unit[static_cast<size_t>(j)] = 1.0;
    if (model.var(j).lb != -kInf) planes.push_back({unit, model.var(j).lb});
    if (model.var(j).ub != kInf) planes.push_back({unit, model.var(j).ub});
  }
  for (int r = 0; r < model.num_constraints(); ++r) {
    std::vector<double> a(static_cast<size_t>(n), 0.0);
    for (const auto& [j, coeff] : model.constraint(r).terms)
      a[static_cast<size_t>(j)] = coeff;
    if (model.constraint(r).lb != -kInf)
      planes.push_back({a, model.constraint(r).lb});
    if (model.constraint(r).ub != kInf &&
        model.constraint(r).ub != model.constraint(r).lb)
      planes.push_back({a, model.constraint(r).ub});
  }

  const int k = static_cast<int>(planes.size());
  const double sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;
  std::optional<double> best;
  // Enumerate all n-subsets of planes with a simple odometer.
  std::vector<int> idx(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
  if (k < n) return std::nullopt;
  for (;;) {
    std::vector<std::vector<double>> m;
    std::vector<double> rhs;
    for (int i = 0; i < n; ++i) {
      m.push_back(planes[static_cast<size_t>(idx[static_cast<size_t>(i)])].a);
      rhs.push_back(planes[static_cast<size_t>(idx[static_cast<size_t>(i)])].b);
    }
    std::vector<double> x;
    if (solve_dense(std::move(m), std::move(rhs), &x)) {
      if (model.max_violation(x) <= 1e-7) {
        const double obj = sign * model.objective_value(x);
        if (!best || obj < *best) best = obj;
      }
    }
    // Next combination.
    int pos = n - 1;
    while (pos >= 0 && idx[static_cast<size_t>(pos)] == k - n + pos) --pos;
    if (pos < 0) break;
    ++idx[static_cast<size_t>(pos)];
    for (int i = pos + 1; i < n; ++i)
      idx[static_cast<size_t>(i)] = idx[static_cast<size_t>(i - 1)] + 1;
  }
  if (best) *best *= sign;
  return best;
}

class VertexOracle : public ::testing::TestWithParam<int> {};

TEST_P(VertexOracle, SimplexMatchesVertexEnumeration) {
  Rng rng(31337 + static_cast<std::uint64_t>(GetParam()));
  Model m;
  const int nv = 2 + static_cast<int>(rng.next_below(3));  // 2..4 vars
  for (int j = 0; j < nv; ++j) {
    // Finite boxes keep the LP bounded, so vertex enumeration is complete.
    m.add_continuous(-2.0 - rng.next_double() * 2, 2.0 + rng.next_double() * 2,
                     rng.next_double() * 6 - 3);
  }
  const int nc = 1 + static_cast<int>(rng.next_below(4));
  for (int r = 0; r < nc; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < nv; ++j)
      if (rng.next_bool(0.7)) terms.emplace_back(j, rng.next_double() * 4 - 2);
    if (terms.empty()) terms.emplace_back(0, 1.0);
    const double rhs = rng.next_double() * 4 - 1;
    if (rng.next_bool(0.5)) m.add_le(std::move(terms), rhs);
    else m.add_ge(std::move(terms), -rhs);
  }
  if (rng.next_bool(0.5)) m.set_sense(Sense::kMaximize);

  const LpResult got = solve_lp(m);
  const std::optional<double> want = oracle_optimum(m);

  if (!want.has_value()) {
    EXPECT_EQ(got.status, SolveStatus::kInfeasible)
        << "oracle found no feasible vertex but simplex said "
        << to_string(got.status);
    return;
  }
  ASSERT_EQ(got.status, SolveStatus::kOptimal);
  EXPECT_NEAR(got.obj, *want, 1e-6 * (1.0 + std::abs(*want)));
  EXPECT_LE(m.max_violation(got.x), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VertexOracle, ::testing::Range(0, 60));

}  // namespace
}  // namespace cgraf::milp
