#include "milp/model.h"

#include <gtest/gtest.h>

namespace cgraf::milp {
namespace {

TEST(Model, AddVarReturnsSequentialIndices) {
  Model m;
  EXPECT_EQ(m.add_continuous(0, 1), 0);
  EXPECT_EQ(m.add_binary(), 1);
  EXPECT_EQ(m.add_var(-1, 1, 2.0, VarType::kInteger), 2);
  EXPECT_EQ(m.num_vars(), 3);
  EXPECT_EQ(m.var(1).type, VarType::kBinary);
  EXPECT_DOUBLE_EQ(m.var(2).obj, 2.0);
}

TEST(Model, ConstraintMergesDuplicateTerms) {
  Model m;
  const int x = m.add_continuous(0, 10);
  const int y = m.add_continuous(0, 10);
  const int c = m.add_le({{x, 1.0}, {y, 2.0}, {x, 3.0}}, 5.0);
  const Constraint& con = m.constraint(c);
  ASSERT_EQ(con.terms.size(), 2u);
  EXPECT_EQ(con.terms[0].first, x);
  EXPECT_DOUBLE_EQ(con.terms[0].second, 4.0);
  EXPECT_DOUBLE_EQ(con.terms[1].second, 2.0);
}

TEST(Model, ConstraintDropsCancelledTerms) {
  Model m;
  const int x = m.add_continuous(0, 10);
  const int y = m.add_continuous(0, 10);
  const int c = m.add_le({{x, 1.0}, {x, -1.0}, {y, 1.0}}, 5.0);
  ASSERT_EQ(m.constraint(c).terms.size(), 1u);
  EXPECT_EQ(m.constraint(c).terms[0].first, y);
}

TEST(Model, BoundAndObjectiveUpdates) {
  Model m;
  const int x = m.add_binary();
  m.set_bounds(x, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(m.var(x).lb, 1.0);
  m.set_obj(x, -3.0);
  EXPECT_DOUBLE_EQ(m.var(x).obj, -3.0);
  EXPECT_TRUE(m.has_integers());
  m.relax_var(x);
  EXPECT_FALSE(m.has_integers());
}

TEST(Model, MaxViolationMeasuresBoundsRowsIntegrality) {
  Model m;
  const int x = m.add_binary();
  const int y = m.add_continuous(0, 2);
  m.add_le({{x, 1.0}, {y, 1.0}}, 1.0);

  EXPECT_DOUBLE_EQ(m.max_violation({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({0.0, 3.0}), 2.0);   // bound + row
  EXPECT_DOUBLE_EQ(m.max_violation({1.0, 1.0}), 1.0);   // row by 1
  EXPECT_DOUBLE_EQ(m.max_violation({0.4, 0.0}, true), 0.4);  // fractional
  EXPECT_DOUBLE_EQ(m.max_violation({0.4, 0.0}, false), 0.0);
}

TEST(Model, ObjectiveValue) {
  Model m;
  m.add_continuous(0, 10, 2.0);
  m.add_continuous(0, 10, -1.0);
  EXPECT_DOUBLE_EQ(m.objective_value({3.0, 4.0}), 2.0);
}

TEST(Model, RangedConstraintViolatesOnBothSides) {
  Model m;
  const int x = m.add_continuous(-10, 10);
  m.add_constraint({{x, 1.0}}, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(m.max_violation({1.0}), 1.0);
  EXPECT_DOUBLE_EQ(m.max_violation({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({6.0}), 2.0);
}

}  // namespace
}  // namespace cgraf::milp
