// Candidate-list pricing must be an optimization, never a behaviour change:
// status and objective agree with full Dantzig pricing on every model.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/model.h"
#include "milp/simplex.h"
#include "util/rng.h"

namespace cgraf::milp {
namespace {

Model random_lp(Rng& rng, int max_vars, int max_rows) {
  Model m;
  const int nv =
      2 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_vars)));
  const int nc =
      1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_rows)));
  for (int j = 0; j < nv; ++j)
    m.add_continuous(0, 5 + rng.next_double() * 5, rng.next_double() * 10 - 5);
  for (int r = 0; r < nc; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < nv; ++j)
      if (rng.next_bool(0.6)) terms.emplace_back(j, rng.next_double() * 6 - 3);
    if (terms.empty()) terms.emplace_back(0, 1.0);
    const double rhs = rng.next_double() * 6 - 1;
    switch (rng.next_below(3)) {
      case 0: m.add_le(std::move(terms), rhs); break;
      case 1: m.add_ge(std::move(terms), -rhs); break;
      default: m.add_constraint(std::move(terms), -2.0 - rhs, 2.0 + rhs); break;
    }
  }
  if (rng.next_bool(0.5)) m.set_sense(Sense::kMaximize);
  return m;
}

// The floorplanner's LP shape: assignment rows + capacity rows, with a
// dense-enough objective that phase 2 does real pricing work.
Model assignment_lp(std::uint64_t seed, int ops, int pes) {
  Rng rng(seed);
  Model m;
  std::vector<std::vector<int>> vars(static_cast<size_t>(ops));
  std::vector<double> stress(static_cast<size_t>(ops));
  for (int j = 0; j < ops; ++j) {
    stress[static_cast<size_t>(j)] = 0.2 + 0.6 * rng.next_double();
    for (int k = 0; k < pes; ++k)
      vars[static_cast<size_t>(j)].push_back(
          m.add_continuous(0, 1, rng.next_double()));
    std::vector<std::pair<int, double>> row;
    for (const int v : vars[static_cast<size_t>(j)]) row.emplace_back(v, 1.0);
    m.add_eq(std::move(row), 1.0);
  }
  double total = 0.0;
  for (const double s : stress) total += s;
  const double cap = std::max(1.3 * total / pes, 0.85);
  for (int k = 0; k < pes; ++k) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < ops; ++j)
      row.emplace_back(vars[static_cast<size_t>(j)][static_cast<size_t>(k)],
                       stress[static_cast<size_t>(j)]);
    m.add_le(std::move(row), cap);
  }
  return m;
}

void expect_equivalent(const Model& m, const char* label) {
  LpOptions full;
  full.pricing = Pricing::kFullDantzig;
  LpOptions cand;
  cand.pricing = Pricing::kCandidateList;
  const LpResult rf = solve_lp(m, full);
  const LpResult rc = solve_lp(m, cand);
  ASSERT_EQ(rc.status, rf.status) << label;
  if (rf.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(rc.obj, rf.obj, 1e-6 * (1.0 + std::abs(rf.obj))) << label;
    EXPECT_LE(m.max_violation(rc.x), 1e-6) << label;
  }
}

class PricingEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PricingEquivalence, RandomLpsAgree) {
  Rng rng(31000 + static_cast<std::uint64_t>(GetParam()));
  const Model m = random_lp(rng, 12, 9);
  expect_equivalent(m, "random");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PricingEquivalence, ::testing::Range(0, 40));

TEST(PricingEquivalenceAssignment, LargerStructuredModelsAgree) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    expect_equivalent(assignment_lp(seed, 32, 12), "assignment");
  }
}

TEST(PricingEquivalenceAssignment, WarmStartedResolvesAgree) {
  const Model m = assignment_lp(7, 24, 10);
  for (const Pricing pricing :
       {Pricing::kFullDantzig, Pricing::kCandidateList}) {
    LpOptions opts;
    opts.pricing = pricing;
    SimplexEngine engine(m, opts);
    const LpResult first = engine.solve();
    ASSERT_EQ(first.status, SolveStatus::kOptimal);
    // Tighten a handful of bounds and re-solve warm, as branch & bound does.
    std::vector<double> lb = engine.model_lb();
    std::vector<double> ub = engine.model_ub();
    for (int v = 0; v < 5; ++v) ub[static_cast<size_t>(v)] = 0.0;
    const LpResult warm = engine.solve(lb, ub, &first.basis);
    const LpResult cold = engine.solve(lb, ub);
    ASSERT_EQ(warm.status, cold.status);
    if (warm.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(warm.obj, cold.obj, 1e-6 * (1.0 + std::abs(cold.obj)));
    }
  }
}

TEST(PricingInstrumentation, CandidateModeCountsIncrementalUpdates) {
  const Model m = assignment_lp(13, 32, 12);
  LpOptions cand;
  cand.pricing = Pricing::kCandidateList;
  const LpResult rc = solve_lp(m, cand);
  ASSERT_EQ(rc.status, SolveStatus::kOptimal);
  EXPECT_GT(rc.stats.incremental_updates, 0);
  EXPECT_GT(rc.stats.full_refreshes, 0);
  EXPECT_GT(rc.stats.bucket_rebuilds, 0);

  LpOptions full;
  full.pricing = Pricing::kFullDantzig;
  const LpResult rf = solve_lp(m, full);
  ASSERT_EQ(rf.status, SolveStatus::kOptimal);
  EXPECT_EQ(rf.stats.incremental_updates, 0);
}

}  // namespace
}  // namespace cgraf::milp
