// Edge-case coverage for the simplex engine beyond the happy path.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/simplex.h"

namespace cgraf::milp {
namespace {

TEST(SimplexEdge, NoConstraintsBoundsOnly) {
  Model m;
  m.add_continuous(-3, 5, 1.0);   // min -> lower bound
  m.add_continuous(-3, 5, -1.0);  // min of -x -> upper bound
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], -3.0, 1e-9);
  EXPECT_NEAR(r.x[1], 5.0, 1e-9);
}

TEST(SimplexEdge, EverythingFixed) {
  Model m;
  m.add_continuous(2, 2, 1.0);
  m.add_continuous(-1, -1, 1.0);
  m.add_le({{0, 1.0}, {1, 1.0}}, 5.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, 1.0, 1e-9);
}

TEST(SimplexEdge, EverythingFixedButInfeasible) {
  Model m;
  m.add_continuous(2, 2, 1.0);
  m.add_ge({{0, 1.0}}, 3.0);
  EXPECT_EQ(solve_lp(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexEdge, DuplicateRowsAreHarmless) {
  Model m;
  const int x = m.add_continuous(0, kInf, 1.0);
  for (int i = 0; i < 6; ++i) m.add_ge({{x, 1.0}}, 2.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, 2.0, 1e-9);
}

TEST(SimplexEdge, WideRangeOfCoefficientMagnitudes) {
  Model m;
  const int x = m.add_continuous(0, kInf, 1.0);
  const int y = m.add_continuous(0, kInf, 1.0);
  m.add_ge({{x, 1e-4}, {y, 1e3}}, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(r.x), 1e-6);
  EXPECT_NEAR(r.obj, 1e-3, 1e-6);  // y = 1/1000 is the cheap option
}

TEST(SimplexEdge, EqualityChainPropagates) {
  // x0 = 1, x_{i} = x_{i-1} + 1 via equalities.
  Model m;
  const int n = 20;
  std::vector<int> xs;
  for (int i = 0; i < n; ++i) xs.push_back(m.add_continuous(-kInf, kInf, 0));
  m.add_eq({{xs[0], 1.0}}, 1.0);
  for (int i = 1; i < n; ++i)
    m.add_eq({{xs[static_cast<size_t>(i)], 1.0},
              {xs[static_cast<size_t>(i - 1)], -1.0}},
             1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(r.x[static_cast<size_t>(i)], 1.0 + i, 1e-6);
}

TEST(SimplexEdge, RangedRowActsAsTwoInequalities) {
  Model m;
  const int x = m.add_continuous(-kInf, kInf, 1.0);
  const int y = m.add_continuous(-kInf, kInf, 2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, 2.0, 6.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, -1.0, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(r.x), 1e-7);
  // Optimum at x+y=2, x-y=1 -> x=1.5, y=0.5, obj=2.5.
  EXPECT_NEAR(r.obj, 2.5, 1e-7);
}

TEST(SimplexEdge, ManyBoundFlips) {
  // Box-constrained minimization where most variables just flip to a
  // bound without ever entering the basis.
  Model m;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 50; ++i) {
    const double c = (i % 2 == 0) ? 1.0 : -1.0;
    row.emplace_back(m.add_continuous(-1, 1, c), 1.0);
  }
  m.add_le(std::move(row), 100.0);  // never binding
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.obj, -50.0, 1e-7);
}

TEST(SimplexEdge, WarmStartFromStaleBasisIsSafe) {
  Model m;
  const int x = m.add_continuous(0, 10, -1.0);
  const int y = m.add_continuous(0, 10, -1.0);
  m.add_le({{x, 1.0}, {y, 1.0}}, 12.0);
  SimplexEngine engine(m);
  const LpResult first = engine.solve();
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  // Drastically different bounds; the stale basis must still converge.
  std::vector<double> lb{5.0, 5.0};
  std::vector<double> ub{6.0, 6.0};
  const LpResult second = engine.solve(lb, ub, &first.basis);
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_NEAR(second.obj, -12.0, 1e-7);  // x + y <= 12 binds
}

TEST(SimplexEdge, ZeroObjectiveReportsAnyVertex) {
  Model m;
  const int x = m.add_continuous(0, 1);
  const int y = m.add_continuous(0, 1);
  m.add_eq({{x, 1.0}, {y, 1.0}}, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(r.x), 1e-9);
}

}  // namespace
}  // namespace cgraf::milp
