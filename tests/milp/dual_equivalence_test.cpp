// Randomized dual-vs-primal equivalence corpus (labelled `slow`): on boxed
// LPs — where the dual-feasibility repair can always flip its way to a
// usable start — the dual loop must reach exactly the verdicts and
// objectives of the primal algorithm, both cold and along warm re-solve
// chains of tightening bounds (the B&B / probe-session access pattern).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/model.h"
#include "milp/simplex.h"
#include "util/rng.h"

namespace cgraf::milp {
namespace {

// Every column boxed with finite bounds, mixed row senses, random sense.
Model random_boxed_lp(Rng& rng, int max_vars, int max_rows) {
  Model m;
  const int nv = 3 + static_cast<int>(
                         rng.next_below(static_cast<std::uint64_t>(max_vars)));
  const int nc = 2 + static_cast<int>(
                         rng.next_below(static_cast<std::uint64_t>(max_rows)));
  for (int j = 0; j < nv; ++j) {
    const double lo = rng.next_double() * 2 - 1;
    m.add_continuous(lo, lo + 0.5 + rng.next_double() * 4,
                     rng.next_double() * 10 - 5);
  }
  for (int r = 0; r < nc; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < nv; ++j)
      if (rng.next_bool(0.55))
        terms.emplace_back(j, rng.next_double() * 6 - 3);
    if (terms.empty()) terms.emplace_back(0, 1.0);
    const double rhs = rng.next_double() * 8 - 2;
    switch (rng.next_below(3)) {
      case 0: m.add_le(std::move(terms), rhs); break;
      case 1: m.add_ge(std::move(terms), -rhs); break;
      default:
        m.add_constraint(std::move(terms), -2.5 - rhs, 2.5 + rhs);
        break;
    }
  }
  if (rng.next_bool(0.5)) m.set_sense(Sense::kMaximize);
  return m;
}

void expect_same(const LpResult& dual, const LpResult& primal,
                 const char* label) {
  ASSERT_EQ(dual.status, primal.status) << label;
  if (primal.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(dual.obj, primal.obj, 1e-6 * (1.0 + std::abs(primal.obj)))
        << label;
  }
}

class DualEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DualEquivalence, ColdSolvesAgree) {
  Rng rng(52000 + static_cast<std::uint64_t>(GetParam()));
  const Model m = random_boxed_lp(rng, 14, 10);
  LpOptions primal_opts;
  primal_opts.algorithm = LpAlgorithm::kPrimal;
  LpOptions dual_opts;
  dual_opts.algorithm = LpAlgorithm::kDual;
  const LpResult rp = solve_lp(m, primal_opts);
  const LpResult rd = solve_lp(m, dual_opts);
  expect_same(rd, rp, "cold boxed");
  if (rp.status == SolveStatus::kOptimal) {
    EXPECT_LE(m.max_violation(rd.x), 1e-6);
  }
  // Devex must match too.
  LpOptions devex = dual_opts;
  devex.dual_pricing = DualPricing::kDevex;
  expect_same(solve_lp(m, devex), rp, "cold boxed devex");
}

TEST_P(DualEquivalence, WarmResolveChainsAgree) {
  Rng rng(53000 + static_cast<std::uint64_t>(GetParam()));
  const Model m = random_boxed_lp(rng, 12, 8);
  LpOptions primal_opts;
  primal_opts.algorithm = LpAlgorithm::kPrimal;
  LpOptions auto_opts;
  auto_opts.algorithm = LpAlgorithm::kAutoWarm;
  SimplexEngine pe(m, primal_opts);
  SimplexEngine de(m, auto_opts);
  const LpResult proot = pe.solve();
  const LpResult droot = de.solve();
  expect_same(droot, proot, "chain root");
  if (proot.status != SolveStatus::kOptimal) return;

  // Chain of tightenings, each re-solved warm from the previous basis by
  // both engines — exactly how B&B descends and how probe sessions step.
  std::vector<double> lb = pe.model_lb();
  std::vector<double> ub = pe.model_ub();
  const std::vector<ColStatus>* pwarm = &proot.basis;
  const std::vector<ColStatus>* dwarm = &droot.basis;
  LpResult plast, dlast;
  for (int step = 0; step < 6; ++step) {
    const auto v = static_cast<size_t>(
        rng.next_below(static_cast<std::uint64_t>(pe.num_structural())));
    const double mid = lb[v] + 0.4 * (ub[v] - lb[v]);
    if (rng.next_bool(0.5)) ub[v] = mid; else lb[v] = mid;
    plast = pe.solve(lb, ub, pwarm);
    dlast = de.solve(lb, ub, dwarm);
    expect_same(dlast, plast, "chain step");
    if (plast.status != SolveStatus::kOptimal) break;
    pwarm = &plast.basis;
    dwarm = &dlast.basis;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualEquivalence, ::testing::Range(0, 120));

}  // namespace
}  // namespace cgraf::milp
