#include "cgrra/io.h"

#include <gtest/gtest.h>

#include "workloads/suite.h"

namespace cgraf {
namespace {

Design sample_design() {
  Design d{Fabric(3, 4, 5.0, 0.15), 2, {}, {}};
  auto add = [&](OpKind kind, int bw, int ctx) {
    Operation op;
    op.id = d.num_ops();
    op.kind = kind;
    op.bitwidth = bw;
    op.context = ctx;
    d.ops.push_back(op);
  };
  add(OpKind::kMul, 16, 0);
  add(OpKind::kAdd, 32, 0);
  add(OpKind::kShuffle, 8, 1);
  d.edges.push_back({0, 1});
  d.edges.push_back({1, 2});
  return d;
}

TEST(Io, DesignRoundTrip) {
  const Design d = sample_design();
  std::string error;
  const auto back = design_from_text(to_text(d), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->fabric.rows(), 3);
  EXPECT_EQ(back->fabric.cols(), 4);
  EXPECT_DOUBLE_EQ(back->fabric.clock_period_ns(), 5.0);
  EXPECT_DOUBLE_EQ(back->fabric.unit_wire_delay_ns(), 0.15);
  EXPECT_EQ(back->num_contexts, 2);
  ASSERT_EQ(back->num_ops(), 3);
  EXPECT_EQ(back->ops[0].kind, OpKind::kMul);
  EXPECT_EQ(back->ops[0].bitwidth, 16);
  EXPECT_EQ(back->ops[2].context, 1);
  ASSERT_EQ(back->edges.size(), 2u);
  EXPECT_EQ(back->edges[1].from, 1);
  EXPECT_EQ(back->edges[1].to, 2);
}

TEST(Io, FloorplanRoundTrip) {
  const Floorplan fp{{3, 1, 7}};
  std::string error;
  const auto back = floorplan_from_text(to_text(fp), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->op_to_pe, fp.op_to_pe);
}

TEST(Io, GeneratedBenchmarkRoundTripsAndStaysValid) {
  const auto bench =
      workloads::generate_benchmark(workloads::table1_specs(false)[3]);
  std::string error;
  const auto d = design_from_text(to_text(bench.design), &error);
  ASSERT_TRUE(d.has_value()) << error;
  const auto fp = floorplan_from_text(to_text(bench.baseline), &error);
  ASSERT_TRUE(fp.has_value()) << error;
  std::string why;
  EXPECT_TRUE(is_valid(*d, *fp, &why)) << why;
  EXPECT_EQ(d->num_ops(), bench.design.num_ops());
  EXPECT_EQ(d->edges.size(), bench.design.edges.size());
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  const Design d = sample_design();
  std::string text = "# a comment\n\n" + to_text(d) + "\n# trailing\n";
  EXPECT_TRUE(design_from_text(text).has_value());
}

TEST(Io, ErrorsCarryLineNumbers) {
  const Design d = sample_design();
  std::string text = to_text(d);
  // Corrupt the op kind on its line.
  const auto pos = text.find("op 1 add");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "op 1 zap");
  std::string error;
  EXPECT_FALSE(design_from_text(text, &error).has_value());
  EXPECT_NE(error.find("line"), std::string::npos);
}

TEST(Io, RejectsMalformedInputs) {
  EXPECT_FALSE(design_from_text("").has_value());
  EXPECT_FALSE(design_from_text("cgraf-design v2\n").has_value());
  EXPECT_FALSE(floorplan_from_text("cgraf-floorplan v1\nops 1\nend\n")
                   .has_value());  // missing map
  // Edge out of range.
  Design d = sample_design();
  std::string text = to_text(d);
  const auto pos = text.find("edge 1 2");
  text.replace(pos, 8, "edge 1 9");
  EXPECT_FALSE(design_from_text(text).has_value());
}

TEST(Io, OpKindNamesRoundTrip) {
  for (const OpKind k : {OpKind::kAdd, OpKind::kMul, OpKind::kMux,
                         OpKind::kMerge, OpKind::kShift}) {
    const auto back = op_kind_from_string(to_string(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(op_kind_from_string("bogus").has_value());
}

TEST(Io, FileHelpersRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cgraf_io_test.txt";
  std::string error;
  ASSERT_TRUE(write_file(path, "hello\nworld\n", &error)) << error;
  const auto content = read_file(path, &error);
  ASSERT_TRUE(content.has_value()) << error;
  EXPECT_EQ(*content, "hello\nworld\n");
  EXPECT_FALSE(read_file("/nonexistent/dir/file.txt").has_value());
}

}  // namespace
}  // namespace cgraf
