#include "cgrra/operation.h"

#include <gtest/gtest.h>

namespace cgraf {
namespace {

Operation make(OpKind kind, int bitwidth) {
  Operation op;
  op.kind = kind;
  op.bitwidth = bitwidth;
  return op;
}

TEST(Operation, AluVsDmuClassification) {
  EXPECT_FALSE(is_dmu(OpKind::kAdd));
  EXPECT_FALSE(is_dmu(OpKind::kMul));
  EXPECT_FALSE(is_dmu(OpKind::kShift));
  EXPECT_TRUE(is_dmu(OpKind::kMux));
  EXPECT_TRUE(is_dmu(OpKind::kMerge));
}

TEST(Operation, ReferenceDelaysAtFullWidth) {
  const PeDelayModel model;
  // At 32 bits the width factor is offset + slope = 1.0.
  EXPECT_NEAR(op_delay_ns(make(OpKind::kAdd, 32), model), 0.87, 1e-12);
  EXPECT_NEAR(op_delay_ns(make(OpKind::kMux, 32), model), 3.14, 1e-12);
}

TEST(Operation, MultiplierPenalty) {
  const PeDelayModel model;
  EXPECT_NEAR(op_delay_ns(make(OpKind::kMul, 32), model), 0.87 * 1.6, 1e-12);
}

TEST(Operation, NarrowOperatorsAreFaster) {
  const PeDelayModel model;
  const double d8 = op_delay_ns(make(OpKind::kAdd, 8), model);
  const double d16 = op_delay_ns(make(OpKind::kAdd, 16), model);
  const double d32 = op_delay_ns(make(OpKind::kAdd, 32), model);
  EXPECT_LT(d8, d16);
  EXPECT_LT(d16, d32);
}

TEST(Operation, StressIsDelayOverClock) {
  const Fabric f(4, 4);  // 5 ns clock
  const Operation dmu = make(OpKind::kShuffle, 32);
  EXPECT_NEAR(op_stress(dmu, f), 3.14 / 5.0, 1e-12);
  const Operation alu = make(OpKind::kXor, 32);
  EXPECT_NEAR(op_stress(alu, f), 0.87 / 5.0, 1e-12);
}

TEST(Operation, StressBoundedByOne) {
  // Even the slowest op must fit in a clock period (stress <= 1).
  const Fabric f(4, 4);
  for (const OpKind kind : {OpKind::kAdd, OpKind::kMul, OpKind::kMux,
                            OpKind::kMerge}) {
    for (const int bw : {8, 16, 32, 64}) {
      EXPECT_LE(op_stress(make(kind, bw), f), 1.0)
          << to_string(kind) << "@" << bw;
      EXPECT_GT(op_stress(make(kind, bw), f), 0.0);
    }
  }
}

TEST(Operation, KindNames) {
  EXPECT_STREQ(to_string(OpKind::kAdd), "add");
  EXPECT_STREQ(to_string(OpKind::kShuffle), "shuffle");
}

}  // namespace
}  // namespace cgraf
