// Error paths of the hardened text parsers: every malformed fixture must be
// rejected with std::nullopt AND a positional message, never accepted and
// never crash. The happy path lives in io_test.cpp; this file is the
// adversarial half, plus a seeded round-trip property over generated
// designs.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "cgrra/io.h"
#include "workloads/suite.h"

namespace cgraf {
namespace {

constexpr const char* kValidDesign =
    "cgraf-design v1\n"
    "fabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
    "contexts 2\n"
    "ops 2\n"
    "op 0 add 32 0\n"
    "op 1 mul 16 1\n"
    "edges 1\n"
    "edge 0 1\n"
    "end\n";

struct MalformedCase {
  const char* name;
  std::string text;
  const char* expect_in_error;  // substring the message must carry
};

TEST(DesignFromTextMalformed, TableDriven) {
  const std::vector<MalformedCase> cases = {
      {"empty input", "", "cgraf-design"},
      {"wrong header", "cgraf-floorplan v1\nend\n", "cgraf-design"},
      {"wrong version", "cgraf-design v2\nend\n", "cgraf-design"},
      {"truncated after header", "cgraf-design v1\n", "fabric"},
      {"truncated mid ops",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 2\nop 0 add 32 0\n",
       "op"},
      {"fabric arity", "cgraf-design v1\nfabric 2 2 5\n", "fabric"},
      {"fabric zero rows",
       "cgraf-design v1\nfabric 0 2 5 0.15 0.87 3.14 0.55 0.45\n",
       "malformed fabric"},
      {"fabric nan clock",
       "cgraf-design v1\nfabric 2 2 nan 0.15 0.87 3.14 0.55 0.45\n",
       "malformed fabric"},
      {"fabric negative wire delay",
       "cgraf-design v1\nfabric 2 2 5 -0.15 0.87 3.14 0.55 0.45\n",
       "malformed fabric"},
      {"fabric inf width offset",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 inf 0.45\n",
       "malformed fabric"},
      {"fabric overflowing dimensions",
       "cgraf-design v1\nfabric 100000 100000 5 0.15 0.87 3.14 0.55 0.45\n",
       "PE limit"},
      {"contexts over cap",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1000000\n",
       "limit 4096"},
      {"ops count negative",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops -1\n",
       "limit"},
      {"ops count over cap",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 999999999\n",
       "limit 1000000"},
      {"ops count not a number",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops many\n",
       "limit"},
      {"op id not dense",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 1\nop 7 add 32 0\nedges 0\nend\n",
       "dense"},
      {"op unknown kind",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 1\nop 0 frobnicate 32 0\nedges 0\nend\n",
       "malformed op"},
      {"op bitwidth out of range",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 1\nop 0 add 65 0\nedges 0\nend\n",
       "malformed op"},
      {"op context out of range",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 1\nop 0 add 32 1\nedges 0\nend\n",
       "malformed op"},
      {"op int overflow",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 1\nop 0 add 99999999999999999999 0\nedges 0\nend\n",
       "malformed op"},
      {"edges count over cap",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 1\nop 0 add 32 0\nedges 999999999\n",
       "limit 4000000"},
      {"edge dangling",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 1\nop 0 add 32 0\nedges 1\nedge 0 5\nend\n",
       "malformed edge"},
      {"edge self-loop",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 1\nop 0 add 32 0\nedges 1\nedge 0 0\nend\n",
       "malformed edge"},
      {"missing end",
       "cgraf-design v1\nfabric 2 2 5 0.15 0.87 3.14 0.55 0.45\n"
       "contexts 1\nops 0\nedges 0\n",
       "end"},
      {"trailing junk", std::string(kValidDesign) + "bonus line\n",
       "trailing junk"},
  };
  for (const MalformedCase& c : cases) {
    std::string error;
    const std::optional<Design> design = design_from_text(c.text, &error);
    EXPECT_FALSE(design.has_value()) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos)
        << c.name << ": got error '" << error << "'";
  }
  // Control: the base fixture the mutations derive from is accepted.
  std::string error;
  EXPECT_TRUE(design_from_text(kValidDesign, &error).has_value()) << error;
}

TEST(DesignFromTextMalformed, OversizedInputRejectedBeforeParsing) {
  std::string huge(17u * 1024u * 1024u, '#');  // 17 MiB of comment
  std::string error;
  EXPECT_FALSE(design_from_text(huge, &error).has_value());
  EXPECT_NE(error.find("byte limit"), std::string::npos);
  EXPECT_FALSE(floorplan_from_text(huge, &error).has_value());
  EXPECT_NE(error.find("byte limit"), std::string::npos);
}

TEST(FloorplanFromTextMalformed, TableDriven) {
  const std::vector<MalformedCase> cases = {
      {"empty input", "", "cgraf-floorplan"},
      {"wrong header", "cgraf-design v1\nend\n", "cgraf-floorplan"},
      {"truncated", "cgraf-floorplan v1\nops 2\nmap 0 1\n", "map"},
      {"ops over cap", "cgraf-floorplan v1\nops 999999999\n",
       "limit 1000000"},
      {"negative pe", "cgraf-floorplan v1\nops 1\nmap 0 -5\nend\n",
       "malformed map"},
      {"op index out of range",
       "cgraf-floorplan v1\nops 1\nmap 3 0\nend\n", "malformed map"},
      {"duplicate map line",
       "cgraf-floorplan v1\nops 2\nmap 0 1\nmap 0 2\nend\n", "duplicate"},
      {"missing end", "cgraf-floorplan v1\nops 1\nmap 0 1\n", "end"},
      {"trailing junk",
       "cgraf-floorplan v1\nops 1\nmap 0 1\nend\nextra\n", "trailing junk"},
  };
  for (const MalformedCase& c : cases) {
    std::string error;
    const std::optional<Floorplan> fp = floorplan_from_text(c.text, &error);
    EXPECT_FALSE(fp.has_value()) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos)
        << c.name << ": got error '" << error << "'";
  }
}

// Round-trip property: any generated benchmark design/floorplan survives
// to_text -> from_text bit-exactly at the structural level.
TEST(IoRoundTripProperty, GeneratedBenchmarksSurviveRoundTrip) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    workloads::BenchmarkSpec spec;
    spec.name = "roundtrip";
    spec.contexts = 4;
    spec.fabric_dim = 4;
    spec.band = workloads::UsageBand::kMedium;
    spec.usage = 0.5;
    spec.seed = seed;
    const workloads::GeneratedBenchmark bench =
        workloads::generate_benchmark(spec);

    std::string error;
    const std::optional<Design> design =
        design_from_text(to_text(bench.design), &error);
    ASSERT_TRUE(design.has_value()) << "seed " << seed << ": " << error;
    EXPECT_EQ(design->num_ops(), bench.design.num_ops());
    EXPECT_EQ(design->num_contexts, bench.design.num_contexts);
    EXPECT_EQ(design->edges.size(), bench.design.edges.size());
    EXPECT_EQ(design->fabric.rows(), bench.design.fabric.rows());
    EXPECT_EQ(design->fabric.cols(), bench.design.fabric.cols());
    EXPECT_DOUBLE_EQ(design->fabric.clock_period_ns(),
                     bench.design.fabric.clock_period_ns());
    for (int i = 0; i < design->num_ops(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      EXPECT_EQ(design->ops[idx].kind, bench.design.ops[idx].kind);
      EXPECT_EQ(design->ops[idx].bitwidth, bench.design.ops[idx].bitwidth);
      EXPECT_EQ(design->ops[idx].context, bench.design.ops[idx].context);
    }
    for (std::size_t k = 0; k < design->edges.size(); ++k) {
      EXPECT_EQ(design->edges[k].from, bench.design.edges[k].from);
      EXPECT_EQ(design->edges[k].to, bench.design.edges[k].to);
    }

    const std::optional<Floorplan> fp =
        floorplan_from_text(to_text(bench.baseline), &error);
    ASSERT_TRUE(fp.has_value()) << "seed " << seed << ": " << error;
    EXPECT_EQ(fp->op_to_pe, bench.baseline.op_to_pe);
  }
}

}  // namespace
}  // namespace cgraf
