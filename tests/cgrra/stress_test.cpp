#include "cgrra/stress.h"

#include <gtest/gtest.h>

namespace cgraf {
namespace {

Design two_context_design() {
  Design d{Fabric(2, 2), 2, {}, {}};
  auto add = [&](OpKind kind, int ctx) {
    Operation op;
    op.id = d.num_ops();
    op.kind = kind;
    op.bitwidth = 32;
    op.context = ctx;
    d.ops.push_back(op);
    return op.id;
  };
  add(OpKind::kAdd, 0);   // stress 0.87/5
  add(OpKind::kMux, 0);   // stress 3.14/5
  add(OpKind::kAdd, 1);
  return d;
}

TEST(Stress, PerContextAndAccumulated) {
  const Design d = two_context_design();
  // op0 and op2 share PE 0 across contexts; op1 on PE 1.
  const Floorplan fp{{0, 1, 0}};
  const StressMap map = compute_stress(d, fp);
  const double alu = 0.87 / 5.0;
  const double dmu = 3.14 / 5.0;
  EXPECT_NEAR(map.per_context[0][0], alu, 1e-12);
  EXPECT_NEAR(map.per_context[0][1], dmu, 1e-12);
  EXPECT_NEAR(map.per_context[1][0], alu, 1e-12);
  EXPECT_NEAR(map.accumulated[0], 2 * alu, 1e-12);
  EXPECT_NEAR(map.accumulated[1], dmu, 1e-12);
  EXPECT_NEAR(map.accumulated[2], 0.0, 1e-12);
}

TEST(Stress, MaxAvgArgmax) {
  const Design d = two_context_design();
  const Floorplan fp{{0, 1, 0}};
  const StressMap map = compute_stress(d, fp);
  const double alu = 0.87 / 5.0;
  const double dmu = 3.14 / 5.0;
  EXPECT_NEAR(map.max_accumulated(), dmu, 1e-12);
  EXPECT_EQ(map.argmax(), 1);
  // Average is over all 4 fabric PEs (the paper's ST_low).
  EXPECT_NEAR(map.avg_accumulated(), (2 * alu + dmu) / 4.0, 1e-12);
}

TEST(Stress, TotalIsConservedAcrossFloorplans) {
  // Re-mapping moves stress around but cannot change the total.
  const Design d = two_context_design();
  const StressMap a = compute_stress(d, Floorplan{{0, 1, 0}});
  const StressMap b = compute_stress(d, Floorplan{{3, 2, 1}});
  double total_a = 0, total_b = 0;
  for (const double v : a.accumulated) total_a += v;
  for (const double v : b.accumulated) total_b += v;
  EXPECT_NEAR(total_a, total_b, 1e-12);
}

TEST(Stress, SpreadingReducesMax) {
  const Design d = two_context_design();
  const StressMap packed = compute_stress(d, Floorplan{{0, 1, 0}});
  const StressMap spread = compute_stress(d, Floorplan{{0, 1, 2}});
  EXPECT_LE(spread.max_accumulated(), packed.max_accumulated() + 1e-12);
}

TEST(Stress, UnusedFabricPEsHaveZero) {
  const Design d = two_context_design();
  const StressMap map = compute_stress(d, Floorplan{{0, 1, 0}});
  EXPECT_DOUBLE_EQ(map.accumulated[3], 0.0);
  EXPECT_DOUBLE_EQ(map.per_context[0][3], 0.0);
  EXPECT_DOUBLE_EQ(map.per_context[1][3], 0.0);
}

}  // namespace
}  // namespace cgraf
