#include "cgrra/fabric.h"

#include <gtest/gtest.h>

namespace cgraf {
namespace {

TEST(Fabric, Dimensions) {
  const Fabric f(4, 6);
  EXPECT_EQ(f.rows(), 4);
  EXPECT_EQ(f.cols(), 6);
  EXPECT_EQ(f.num_pes(), 24);
}

TEST(Fabric, LocAndPeAtRoundTrip) {
  const Fabric f(5, 3);
  for (int pe = 0; pe < f.num_pes(); ++pe) {
    const Point p = f.loc(pe);
    EXPECT_TRUE(f.in_bounds(p));
    EXPECT_EQ(f.pe_at(p), pe);
  }
}

TEST(Fabric, RowMajorLayout) {
  const Fabric f(2, 4);
  EXPECT_EQ(f.loc(0), (Point{0, 0}));
  EXPECT_EQ(f.loc(3), (Point{3, 0}));
  EXPECT_EQ(f.loc(4), (Point{0, 1}));
}

TEST(Fabric, InBounds) {
  const Fabric f(3, 3);
  EXPECT_TRUE(f.in_bounds({0, 0}));
  EXPECT_TRUE(f.in_bounds({2, 2}));
  EXPECT_FALSE(f.in_bounds({3, 0}));
  EXPECT_FALSE(f.in_bounds({0, -1}));
}

TEST(Fabric, DefaultTimingParametersMatchPaper) {
  const Fabric f(4, 4);
  EXPECT_DOUBLE_EQ(f.clock_period_ns(), 5.0);  // 200 MHz
  EXPECT_DOUBLE_EQ(f.delays().alu_delay_ns, 0.87);
  EXPECT_DOUBLE_EQ(f.delays().dmu_delay_ns, 3.14);
}

TEST(Fabric, WireDelayLinearInManhattan) {
  const Fabric f(8, 8, 5.0, 0.2);
  EXPECT_DOUBLE_EQ(f.wire_delay_ns({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(f.wire_delay_ns({0, 0}, {3, 4}), 0.2 * 7);
  EXPECT_DOUBLE_EQ(f.wire_delay_ns({3, 4}, {0, 0}),
                   f.wire_delay_ns({0, 0}, {3, 4}));
}

}  // namespace
}  // namespace cgraf
