#include "cgrra/floorplan.h"

#include <gtest/gtest.h>

namespace cgraf {
namespace {

// 2 contexts, 3 ops: op0,op1 in ctx0 (op0->op1 chained), op2 in ctx1.
Design small_design() {
  Design d{Fabric(2, 2), 2, {}, {}};
  for (int i = 0; i < 3; ++i) {
    Operation op;
    op.id = i;
    op.kind = OpKind::kAdd;
    op.context = i < 2 ? 0 : 1;
    d.ops.push_back(op);
  }
  d.edges.push_back({0, 1});
  d.edges.push_back({1, 2});
  return d;
}

TEST(Floorplan, ValidPlan) {
  const Design d = small_design();
  const Floorplan fp{{0, 1, 0}};
  std::string why;
  EXPECT_TRUE(is_valid(d, fp, &why)) << why;
}

TEST(Floorplan, SizeMismatchRejected) {
  const Design d = small_design();
  std::string why;
  EXPECT_FALSE(is_valid(d, Floorplan{{0, 1}}, &why));
  EXPECT_NE(why.find("size"), std::string::npos);
}

TEST(Floorplan, OutOfFabricRejected) {
  const Design d = small_design();
  EXPECT_FALSE(is_valid(d, Floorplan{{0, 4, 0}}));
  EXPECT_FALSE(is_valid(d, Floorplan{{-1, 1, 0}}));
}

TEST(Floorplan, SameContextCollisionRejected) {
  const Design d = small_design();
  std::string why;
  EXPECT_FALSE(is_valid(d, Floorplan{{2, 2, 0}}, &why));
  EXPECT_NE(why.find("two ops"), std::string::npos);
}

TEST(Floorplan, CrossContextSharingAllowed) {
  // op0 (ctx 0) and op2 (ctx 1) on the same PE: legal time-sharing.
  const Design d = small_design();
  EXPECT_TRUE(is_valid(d, Floorplan{{2, 1, 2}}));
}

TEST(Floorplan, BackwardsCrossContextEdgeRejected) {
  Design d = small_design();
  d.edges.push_back({2, 0});  // ctx1 -> ctx0 flows backwards
  EXPECT_FALSE(is_valid(d, Floorplan{{0, 1, 0}}));
}

TEST(Floorplan, CombinationalCycleRejected) {
  Design d = small_design();
  d.edges.push_back({1, 0});  // 0->1->0 within context 0
  std::string why;
  EXPECT_FALSE(is_valid(d, Floorplan{{0, 1, 0}}, &why));
  EXPECT_NE(why.find("cycle"), std::string::npos);
}

TEST(Floorplan, ContextOutOfRangeRejected) {
  Design d = small_design();
  d.ops[2].context = 7;
  EXPECT_FALSE(is_valid(d, Floorplan{{0, 1, 0}}));
}

TEST(Floorplan, DistinctPesUsed) {
  const Design d = small_design();
  EXPECT_EQ(distinct_pes_used(d, Floorplan{{0, 1, 0}}), 2);
  EXPECT_EQ(distinct_pes_used(d, Floorplan{{0, 1, 2}}), 3);
}

}  // namespace
}  // namespace cgraf
