// Integration tests of Algorithm 1 end to end on generated benchmarks:
// every invariant the paper promises must hold on the returned floorplan.
#include <gtest/gtest.h>

#include "cgrra/stress.h"
#include "core/remapper.h"
#include "timing/paths.h"
#include "verify/certify.h"
#include "workloads/suite.h"

namespace cgraf::core {
namespace {

workloads::GeneratedBenchmark make_bench(int contexts, int dim, double usage,
                                         std::uint64_t seed) {
  workloads::BenchmarkSpec spec;
  spec.name = "it";
  spec.contexts = contexts;
  spec.fabric_dim = dim;
  spec.usage = usage;
  spec.seed = seed;
  return workloads::generate_benchmark(spec);
}

void check_invariants(const workloads::GeneratedBenchmark& bench,
                      const RemapResult& r) {
  std::string why;
  ASSERT_TRUE(is_valid(bench.design, r.floorplan, &why)) << why;
  // The paper's headline guarantee: zero delay degradation.
  EXPECT_LE(r.cpd_after_ns, r.cpd_before_ns + 1e-9);
  // Stress can only improve (or the baseline is returned unchanged).
  EXPECT_LE(r.st_max_after, r.st_max_before + 1e-9);
  EXPECT_GE(r.mttf_gain, 1.0 - 1e-9);
  // Reported stress figures match a from-scratch recomputation.
  const StressMap recomputed = compute_stress(bench.design, r.floorplan);
  EXPECT_NEAR(recomputed.max_accumulated(), r.st_max_after, 1e-9);
  // Independent certificate on the returned floorplan: legality, the
  // achieved stress bound, and every baseline monitored path within the
  // original CPD budget.
  const timing::CombGraph graph(bench.design);
  const auto monitored = timing::monitored_paths(graph, bench.baseline);
  verify::FloorplanSpec spec;
  spec.design = &bench.design;
  spec.st_target = r.st_max_after;
  spec.monitored = &monitored;
  spec.cpd_ns = r.cpd_before_ns;
  const verify::Certificate cert = verify::certify_floorplan(spec, r.floorplan);
  EXPECT_TRUE(cert.ok) << cert.summary();
}

class RemapPipeline
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(RemapPipeline, FreezeInvariants) {
  const auto [contexts, dim, usage] = GetParam();
  const auto bench = make_bench(contexts, dim, usage, 42);
  RemapOptions opts;
  opts.mode = RemapMode::kFreeze;
  opts.verify.enabled = true;
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  EXPECT_TRUE(r.certified) << r.note;
  check_invariants(bench, r);
}

TEST_P(RemapPipeline, RotateInvariants) {
  const auto [contexts, dim, usage] = GetParam();
  const auto bench = make_bench(contexts, dim, usage, 43);
  RemapOptions opts;
  opts.mode = RemapMode::kRotate;
  opts.verify.enabled = true;
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  EXPECT_TRUE(r.certified) << r.note;
  check_invariants(bench, r);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RemapPipeline,
    ::testing::Values(std::make_tuple(4, 4, 0.3), std::make_tuple(4, 4, 0.7),
                      std::make_tuple(8, 4, 0.5), std::make_tuple(4, 6, 0.4),
                      std::make_tuple(8, 6, 0.6)));

TEST(RemapPipeline, FreezeKeepsCriticalOpsPinned) {
  const auto bench = make_bench(4, 4, 0.5, 7);
  const timing::CombGraph graph(bench.design);
  std::vector<char> frozen(static_cast<std::size_t>(bench.design.num_ops()),
                           0);
  for (int c = 0; c < bench.design.num_contexts; ++c)
    for (const auto& p : timing::critical_paths(graph, bench.baseline, c, 8))
      for (const int op : p.ops) frozen[static_cast<std::size_t>(op)] = 1;

  RemapOptions opts;
  opts.mode = RemapMode::kFreeze;
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  for (int op = 0; op < bench.design.num_ops(); ++op) {
    if (frozen[static_cast<std::size_t>(op)]) {
      EXPECT_EQ(r.floorplan.pe_of(op), bench.baseline.pe_of(op))
          << "critical op " << op << " moved in Freeze mode";
    }
  }
}

TEST(RemapPipeline, RotatePreservesEveryContextsCpDelay) {
  // Rotation is an L1 isometry: each context's critical-path delay is
  // exactly preserved even though the ops moved.
  const auto bench = make_bench(8, 4, 0.6, 9);
  RemapOptions opts;
  opts.mode = RemapMode::kRotate;
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  const auto before = timing::run_sta(bench.design, bench.baseline);
  const auto after = timing::run_sta(bench.design, r.floorplan);
  for (int c = 0; c < bench.design.num_contexts; ++c) {
    EXPECT_LE(after.context_cpd_ns[static_cast<std::size_t>(c)],
              before.cpd_ns + 1e-9);
  }
}

TEST(RemapPipeline, MonitoredPathsStillMeetBudgets) {
  const auto bench = make_bench(4, 6, 0.4, 11);
  const timing::CombGraph graph(bench.design);
  const auto monitored = timing::monitored_paths(graph, bench.baseline);
  const auto sta = run_sta(graph, bench.baseline);
  RemapOptions opts;
  opts.mode = RemapMode::kFreeze;
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  for (const auto& p : monitored) {
    EXPECT_LE(path_delay_ns(bench.design, r.floorplan, p),
              sta.cpd_ns + 1e-9);
  }
}

TEST(RemapPipeline, DeterministicForFixedSeed) {
  const auto bench = make_bench(4, 4, 0.5, 21);
  RemapOptions opts;
  opts.seed = 77;
  const RemapResult a = aging_aware_remap(bench.design, bench.baseline, opts);
  const RemapResult b = aging_aware_remap(bench.design, bench.baseline, opts);
  EXPECT_EQ(a.floorplan.op_to_pe, b.floorplan.op_to_pe);
  EXPECT_DOUBLE_EQ(a.mttf_gain, b.mttf_gain);
}

TEST(RemapPipeline, TypicallyImprovesOnPackedBaselines) {
  // Not a per-instance guarantee, but across a handful of seeds the
  // re-mapper must find improvements on low/medium-usage designs.
  int improved = 0;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto bench = make_bench(4, 4, 0.4, seed);
    const RemapResult r =
        aging_aware_remap(bench.design, bench.baseline, {});
    improved += r.improved ? 1 : 0;
  }
  EXPECT_GE(improved, 3);
}

TEST(RemapPipeline, ReportsStepOneBoundBelowFinalTarget) {
  const auto bench = make_bench(8, 4, 0.5, 5);
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, {});
  if (r.improved) {
    EXPECT_LE(r.st_target_initial, r.st_target_final + 1e-9);
    EXPECT_LE(r.st_max_after, r.st_target_final + 1e-9);
  }
}

TEST(RemapPipeline, WarmProbesMatchColdPipeline) {
  // The full pipeline with incremental warm-started probes against the
  // forced-cold escape hatch: both must pass certification and every paper
  // invariant; the LP presearch and the Step-1 search take identical probe
  // sequences, so the entry point of the Delta loop is the same and the
  // two runs land on the same floorplan.
  for (const std::uint64_t seed : {31ULL, 32ULL}) {
    const auto bench = make_bench(4, 4, 0.5, seed);
    RemapOptions warm_opts;
    warm_opts.verify.enabled = true;
    warm_opts.warm_probes = true;
    const RemapResult warm =
        aging_aware_remap(bench.design, bench.baseline, warm_opts);
    RemapOptions cold_opts = warm_opts;
    cold_opts.warm_probes = false;
    const RemapResult cold =
        aging_aware_remap(bench.design, bench.baseline, cold_opts);

    EXPECT_TRUE(warm.certified) << warm.note;
    EXPECT_TRUE(cold.certified) << cold.note;
    check_invariants(bench, warm);
    check_invariants(bench, cold);
    EXPECT_EQ(warm.improved, cold.improved) << seed;
    // Both runs honor the same guarantees; the achieved balance must agree
    // (the dive is warm-started, so insist on matching outcomes, not
    // bitwise-equal floorplans).
    EXPECT_NEAR(warm.st_max_after, cold.st_max_after,
                0.05 * bench.design.num_contexts)
        << seed;
    // Cold runs never chain bases.
    EXPECT_EQ(cold.probe_warm_hits, 0) << seed;
    EXPECT_EQ(cold.probe_basis_fallbacks, 0) << seed;
    EXPECT_GT(cold.probe_model_rebuilds, 0) << seed;
  }
}

TEST(RemapPipeline, WarmProbesAccountingIsConsistent) {
  const auto bench = make_bench(8, 4, 0.5, 13);
  RemapOptions opts;
  opts.warm_probes = true;
  const RemapResult r = aging_aware_remap(bench.design, bench.baseline, opts);
  // Every session builds at least once, and chained solves are classified
  // as either a warm hit or a fallback — never silently dropped.
  EXPECT_GT(r.probe_model_rebuilds, 0);
  EXPECT_GE(r.probe_warm_hits, 0);
  EXPECT_GE(r.probe_basis_fallbacks, 0);
}

}  // namespace
}  // namespace cgraf::core
