// End-to-end flows through the HLS front end (DSL / kernel -> schedule ->
// place -> remap -> MTTF), plus coarse shape checks of the paper's
// qualitative claims on tiny configurations.
#include <gtest/gtest.h>

#include "core/remapper.h"
#include "hls/expr_parser.h"
#include "hls/placer.h"
#include "hls/scheduler.h"
#include "workloads/kernels.h"
#include "workloads/suite.h"

namespace cgraf {
namespace {

core::RemapResult run_flow(const hls::Dfg& dfg, int contexts, int dim,
                           bool warm_probes = true) {
  const Fabric fabric(dim, dim);
  hls::ScheduleOptions sched;
  sched.num_contexts = contexts;
  sched.max_ops_per_context = fabric.num_pes();
  const hls::ScheduleResult schedule = list_schedule(dfg, sched);
  EXPECT_TRUE(schedule.ok) << schedule.error;
  const Design design = build_design(dfg, schedule, fabric, contexts);
  hls::PlacerOptions popts;
  popts.seed = 5;
  const Floorplan baseline = place_baseline(design, popts);
  core::RemapOptions opts;
  // Full independent verification on every accepted attempt: the end-to-end
  // flows double as the certifier's hardest fixtures.
  opts.verify.enabled = true;
  opts.warm_probes = warm_probes;
  const core::RemapResult r = aging_aware_remap(design, baseline, opts);
  EXPECT_TRUE(r.certified) << r.note;
  EXPECT_EQ(r.certify_rejections, 0) << r.note;
  return r;
}

TEST(FullFlow, FirFilterEndToEnd) {
  const core::RemapResult r = run_flow(workloads::fir_filter(24, 16), 4, 6);
  EXPECT_LE(r.cpd_after_ns, r.cpd_before_ns + 1e-9);
  EXPECT_GE(r.mttf_gain, 1.0);
}

TEST(FullFlow, DslKernelEndToEnd) {
  const hls::ParseResult parsed = hls::parse_kernel(
      "@width 16;"
      "re = a*c - b*d; im = a*d + b*c;"
      "m0 = merge(re, im); out = m0 >> 1; flag = cmp(re, im);");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const core::RemapResult r = run_flow(parsed.dfg, 4, 4);
  EXPECT_LE(r.cpd_after_ns, r.cpd_before_ns + 1e-9);
  EXPECT_GE(r.mttf_gain, 1.0);
}

TEST(FullFlow, ButterflyEndToEnd) {
  const core::RemapResult r = run_flow(workloads::butterfly(8, 16), 8, 4);
  EXPECT_LE(r.cpd_after_ns, r.cpd_before_ns + 1e-9);
  EXPECT_GE(r.mttf_gain, 1.0);
}

TEST(FullFlow, WarmAndColdProbesBothCertify) {
  // The same kernel end to end with incremental warm-started probes and
  // with the forced-cold escape hatch: every certificate must pass on both
  // paths, and both must deliver the paper's zero-degradation guarantee.
  const hls::Dfg dfg = workloads::fir_filter(16, 16);
  const core::RemapResult warm = run_flow(dfg, 4, 4, /*warm_probes=*/true);
  const core::RemapResult cold = run_flow(dfg, 4, 4, /*warm_probes=*/false);
  EXPECT_LE(warm.cpd_after_ns, warm.cpd_before_ns + 1e-9);
  EXPECT_LE(cold.cpd_after_ns, cold.cpd_before_ns + 1e-9);
  EXPECT_EQ(warm.improved, cold.improved);
  EXPECT_EQ(cold.probe_warm_hits, 0);
  // The warm flow must actually have exercised basis chaining somewhere
  // (Step-1 search, presearch, or the Delta loop).
  EXPECT_GT(warm.probe_warm_hits, 0);
}

// --- Shape checks (paper Section VI narrative) ---------------------------

double suite_gain(int contexts, int dim, double usage, std::uint64_t seed) {
  workloads::BenchmarkSpec spec;
  spec.name = "s";
  spec.contexts = contexts;
  spec.fabric_dim = dim;
  spec.usage = usage;
  spec.seed = seed;
  const auto bench = workloads::generate_benchmark(spec);
  core::RemapOptions opts;
  opts.mode = core::RemapMode::kRotate;
  return aging_aware_remap(bench.design, bench.baseline, opts).mttf_gain;
}

TEST(FullFlowShape, LowerUsageGivesMoreHeadroomOnAverage) {
  // "the lower the fabric utilization ... the higher the MTTF increase".
  // Averaged over seeds to keep the check robust.
  double low = 0.0, high = 0.0;
  for (const std::uint64_t seed : {101ULL, 102ULL, 103ULL}) {
    low += suite_gain(4, 4, 0.30, seed);
    high += suite_gain(4, 4, 0.80, seed);
  }
  EXPECT_GT(low / 3.0, high / 3.0 - 0.05);
}

TEST(FullFlowShape, MoreContextsGiveMoreBalancingRoom) {
  double c4 = 0.0, c8 = 0.0;
  for (const std::uint64_t seed : {201ULL, 202ULL, 203ULL}) {
    c4 += suite_gain(4, 4, 0.5, seed);
    c8 += suite_gain(8, 4, 0.5, seed);
  }
  EXPECT_GT(c8 / 3.0, c4 / 3.0 - 0.10);
}

TEST(FullFlowShape, RotateAtLeastMatchesFreezeOnAverage) {
  double freeze = 0.0, rotate = 0.0;
  for (const std::uint64_t seed : {301ULL, 302ULL, 303ULL}) {
    workloads::BenchmarkSpec spec;
    spec.name = "s";
    spec.contexts = 8;
    spec.fabric_dim = 4;
    spec.usage = 0.7;
    spec.seed = seed;
    const auto bench = workloads::generate_benchmark(spec);
    core::RemapOptions f;
    f.mode = core::RemapMode::kFreeze;
    freeze += aging_aware_remap(bench.design, bench.baseline, f).mttf_gain;
    core::RemapOptions r;
    r.mode = core::RemapMode::kRotate;
    rotate += aging_aware_remap(bench.design, bench.baseline, r).mttf_gain;
  }
  EXPECT_GE(rotate, freeze - 0.05);
}

}  // namespace
}  // namespace cgraf
