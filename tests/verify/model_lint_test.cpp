#include "verify/model_lint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "milp/model.h"

namespace cgraf::verify {
namespace {

bool has(const LintReport& rep, const char* rule, Severity severity) {
  for (const LintFinding& f : rep.findings)
    if (f.rule == rule && f.severity == severity) return true;
  return false;
}

int count(const LintReport& rep, const char* rule) {
  int n = 0;
  for (const LintFinding& f : rep.findings)
    if (f.rule == rule) ++n;
  return n;
}

TEST(LintModel, CleanModelHasNoFindingsBeyondInfo) {
  milp::Model m;
  const int x = m.add_binary(1.0, "x");
  const int y = m.add_binary(0.0, "y");
  m.add_eq({{x, 1.0}, {y, 1.0}}, 1.0, "pick-one");
  const LintReport rep = lint_model(m);
  EXPECT_EQ(rep.errors, 0);
  EXPECT_EQ(rep.warnings, 0);
  EXPECT_TRUE(rep.clean());
}

// ML001 guards against bound corruption that bypasses the modeling API
// (add_var and set_bounds both assert lb <= lb), so the fixture writes
// through the const accessor the same way a memory bug would.
TEST(LintModel, ML001EmptyOrNanBoundWindow) {
  milp::Model m;
  const int x = m.add_continuous(0.0, 1.0);
  auto& v = const_cast<milp::Variable&>(m.var(x));
  v.lb = 2.0;
  v.ub = 1.0;
  EXPECT_TRUE(has(lint_model(m), "ML001", Severity::kError));
  v.lb = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(has(lint_model(m), "ML001", Severity::kError));
}

TEST(LintModel, ML002NonFiniteCoefficients) {
  const double inf = std::numeric_limits<double>::infinity();
  milp::Model m;
  const int x = m.add_continuous(0.0, 1.0);
  m.add_le({{x, inf}}, 1.0);
  EXPECT_TRUE(has(lint_model(m), "ML002", Severity::kError));

  milp::Model m2;
  const int y = m2.add_continuous(0.0, 1.0);
  m2.set_obj(y, -inf);
  EXPECT_TRUE(has(lint_model(m2), "ML002", Severity::kError));
}

TEST(LintModel, ML003BinaryBounds) {
  milp::Model m;
  const int b = m.add_binary();
  m.add_le({{b, 1.0}}, 1.0);
  // No integer point in the window: hard error.
  m.set_bounds(b, 0.25, 0.75);
  EXPECT_TRUE(has(lint_model(m), "ML003", Severity::kError));
  // Integer point exists but the window leaves [0,1]: warn only.
  m.set_bounds(b, 0.0, 2.0);
  const LintReport rep = lint_model(m);
  EXPECT_TRUE(has(rep, "ML003", Severity::kWarn));
  EXPECT_EQ(rep.errors, 0);
}

TEST(LintModel, ML004VacuousRowAndML005ConstantInfeasibleRow) {
  milp::Model m;
  m.add_continuous(0.0, 1.0);
  m.add_constraint({}, -1.0, 1.0);  // 0 in [-1, 1]: vacuous but satisfiable
  m.add_constraint({}, 2.0, 3.0);   // 0 outside [2, 3]: never satisfiable
  const LintReport rep = lint_model(m);
  EXPECT_TRUE(has(rep, "ML004", Severity::kInfo));
  EXPECT_TRUE(has(rep, "ML005", Severity::kError));
}

TEST(LintModel, ML006DuplicateColumnInRow) {
  milp::Model m;
  const int x = m.add_continuous(0.0, 1.0);
  const int r = m.add_le({{x, 1.0}}, 1.0);
  // add_constraint merges duplicates, so plant them behind its back — the
  // rule exists to catch rows mutated after ingestion.
  const_cast<milp::Constraint&>(m.constraint(r)).terms = {{x, 1.0}, {x, 2.0}};
  EXPECT_TRUE(has(lint_model(m), "ML006", Severity::kError));
}

TEST(LintModel, ML007DuplicateRow) {
  milp::Model m;
  const int x = m.add_continuous(0.0, 1.0);
  const int y = m.add_continuous(0.0, 1.0);
  m.add_le({{x, 1.0}, {y, 2.0}}, 3.0);
  m.add_le({{x, 1.0}, {y, 2.0}}, 3.0);
  EXPECT_TRUE(has(lint_model(m), "ML007", Severity::kWarn));
}

TEST(LintModel, ML008DominatedRow) {
  milp::Model m;
  const int x = m.add_continuous(0.0, 10.0);
  m.add_le({{x, 1.0}}, 3.0);
  m.add_le({{x, 1.0}}, 5.0);  // strictly looser than the row above
  EXPECT_TRUE(has(lint_model(m), "ML008", Severity::kInfo));
}

TEST(LintModel, ML009UnusedColumn) {
  milp::Model m;
  const int x = m.add_continuous(0.0, 1.0);
  m.add_continuous(0.0, 1.0);  // referenced nowhere, zero objective
  m.add_le({{x, 1.0}}, 1.0);
  EXPECT_TRUE(has(lint_model(m), "ML009", Severity::kInfo));
}

TEST(LintModel, ML010CoefficientMagnitudeRatio) {
  milp::Model m;
  const int x = m.add_continuous(0.0, 1.0);
  const int y = m.add_continuous(0.0, 1.0);
  m.add_le({{x, 1e9}, {y, 1e-3}}, 1.0);
  EXPECT_TRUE(has(lint_model(m), "ML010", Severity::kWarn));
  LintOptions loose;
  loose.max_coeff_ratio = 1e15;
  EXPECT_FALSE(has(lint_model(m, loose), "ML010", Severity::kWarn));
}

TEST(LintModel, ML011RowInfeasibleAgainstBounds) {
  milp::Model m;
  const int x = m.add_continuous(0.0, 1.0);
  m.add_ge({{x, 1.0}}, 5.0);  // max activity is 1
  EXPECT_TRUE(has(lint_model(m), "ML011", Severity::kError));
}

TEST(LintModel, ML012RowCanNeverBind) {
  milp::Model m;
  const int x = m.add_continuous(0.0, 1.0);
  m.add_le({{x, 1.0}}, 2.0);  // activity tops out at 1
  EXPECT_TRUE(has(lint_model(m), "ML012", Severity::kInfo));
  LintOptions no_info;
  no_info.include_info = false;
  EXPECT_EQ(lint_model(m, no_info).infos, 0);
}

TEST(LintReport, MergeAndSerialization) {
  milp::Model m;
  const int x = m.add_continuous(0.0, 1.0);
  m.add_ge({{x, 1.0}}, 5.0);
  LintReport rep = lint_model(m);
  LintReport other;
  other.add("XX01", Severity::kWarn, "synthetic", 3, 7);
  rep.merge(other);
  EXPECT_GE(rep.errors, 1);
  EXPECT_EQ(rep.warnings, 1);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"rule\":\"XX01\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":"), std::string::npos);
  const std::string text = rep.to_text();
  EXPECT_NE(text.find("warn XX01: synthetic (row 3) (col 7)"),
            std::string::npos);
}

// --- Formulation-(3) rules. The fixture is the smallest honest instance:
// two free ops, two PEs, full candidate sets, one stress row per PE.

struct Fixture {
  milp::Model model;
  FormulationSpec spec;
  int b[2][2] = {};  // b[op][candidate]
};

Fixture good_formulation() {
  Fixture f;
  f.spec.num_pes = 2;
  for (auto& row : f.b)
    for (int& var : row) var = f.model.add_binary();
  f.spec.assign_vars = {{f.b[0][0], f.b[0][1]}, {f.b[1][0], f.b[1][1]}};
  f.spec.candidates = {{0, 1}, {0, 1}};
  f.model.add_eq({{f.b[0][0], 1.0}, {f.b[0][1], 1.0}}, 1.0, "assign[0]");
  f.model.add_eq({{f.b[1][0], 1.0}, {f.b[1][1], 1.0}}, 1.0, "assign[1]");
  f.model.add_le({{f.b[0][0], 0.5}, {f.b[1][0], 0.5}}, 0.6, "stress[0]");
  f.model.add_le({{f.b[0][1], 0.5}, {f.b[1][1], 0.5}}, 0.6, "stress[1]");
  return f;
}

TEST(LintFormulation, GoodModelIsClean) {
  const Fixture f = good_formulation();
  const LintReport rep = lint_formulation(f.model, f.spec);
  EXPECT_EQ(rep.errors, 0);
  EXPECT_TRUE(rep.findings.empty());
}

TEST(LintFormulation, FL001MissingAssignmentRow) {
  Fixture f;
  f.spec.num_pes = 2;
  for (auto& row : f.b)
    for (int& var : row) var = f.model.add_binary();
  f.spec.assign_vars = {{f.b[0][0], f.b[0][1]}, {f.b[1][0], f.b[1][1]}};
  f.spec.candidates = {{0, 1}, {0, 1}};
  // Op 1's partition row is missing entirely; op 0's carries a name the
  // linter cannot recognize, which counts as missing too.
  f.model.add_eq({{f.b[0][0], 1.0}, {f.b[0][1], 1.0}}, 1.0, "partition[0]");
  f.model.add_le({{f.b[0][0], 0.5}, {f.b[1][0], 0.5}}, 0.6, "stress[0]");
  f.model.add_le({{f.b[0][1], 0.5}, {f.b[1][1], 0.5}}, 0.6, "stress[1]");
  const LintReport rep = lint_formulation(f.model, f.spec);
  EXPECT_EQ(count(rep, "FL001"), 2);
}

TEST(LintFormulation, FL002AssignmentRowShape) {
  {  // wrong right-hand side
    Fixture f = good_formulation();
    const_cast<milp::Constraint&>(f.model.constraint(0)).ub = 2.0;
    const_cast<milp::Constraint&>(f.model.constraint(0)).lb = 2.0;
    EXPECT_TRUE(has(lint_formulation(f.model, f.spec), "FL002",
                    Severity::kError));
  }
  {  // non-unit coefficient
    Fixture f = good_formulation();
    const_cast<milp::Constraint&>(f.model.constraint(0)).terms[0].second = 2.0;
    EXPECT_TRUE(has(lint_formulation(f.model, f.spec), "FL002",
                    Severity::kError));
  }
  {  // wrong variable set
    Fixture f = good_formulation();
    const_cast<milp::Constraint&>(f.model.constraint(0)).terms[1].first =
        f.b[1][1];
    EXPECT_TRUE(has(lint_formulation(f.model, f.spec), "FL002",
                    Severity::kError));
  }
}

TEST(LintFormulation, FL003NonBinaryAssignmentVariable) {
  Fixture f = good_formulation();
  f.model.relax_var(f.b[0][0]);
  EXPECT_TRUE(has(lint_formulation(f.model, f.spec), "FL003",
                  Severity::kError));
}

TEST(LintFormulation, FL004StressRowProblems) {
  {  // missing stress row for a PE that can receive stress
    Fixture f;
    f.spec.num_pes = 2;
    for (auto& row : f.b)
      for (int& var : row) var = f.model.add_binary();
    f.spec.assign_vars = {{f.b[0][0], f.b[0][1]}, {f.b[1][0], f.b[1][1]}};
    f.spec.candidates = {{0, 1}, {0, 1}};
    f.model.add_eq({{f.b[0][0], 1.0}, {f.b[0][1], 1.0}}, 1.0, "assign[0]");
    f.model.add_eq({{f.b[1][0], 1.0}, {f.b[1][1], 1.0}}, 1.0, "assign[1]");
    f.model.add_le({{f.b[0][0], 0.5}, {f.b[1][0], 0.5}}, 0.6, "stress[0]");
    EXPECT_TRUE(has(lint_formulation(f.model, f.spec), "FL004",
                    Severity::kError));
  }
  {  // stress row that misses one variable able to stress the PE
    Fixture f = good_formulation();
    auto& terms = const_cast<milp::Constraint&>(f.model.constraint(2)).terms;
    terms.pop_back();
    EXPECT_TRUE(has(lint_formulation(f.model, f.spec), "FL004",
                    Severity::kError));
  }
  {  // negative stress coefficient
    Fixture f = good_formulation();
    const_cast<milp::Constraint&>(f.model.constraint(2)).terms[0].second =
        -0.5;
    EXPECT_TRUE(has(lint_formulation(f.model, f.spec), "FL004",
                    Severity::kError));
  }
}

TEST(LintFormulation, FL005PathRowBookkeeping) {
  {  // builder claims a budget row that the model does not contain
    Fixture f = good_formulation();
    f.spec.num_path_rows = 1;
    f.spec.num_monitored_paths = 1;
    EXPECT_TRUE(has(lint_formulation(f.model, f.spec), "FL005",
                    Severity::kError));
  }
  {  // more budget rows than monitored paths
    Fixture f = good_formulation();
    f.model.add_le({{f.b[0][0], 1.0}}, 4.0, "path[0]");
    f.model.add_le({{f.b[0][1], 1.0}}, 4.0, "path[1]");
    f.spec.num_path_rows = 2;
    f.spec.num_monitored_paths = 1;
    EXPECT_TRUE(has(lint_formulation(f.model, f.spec), "FL005",
                    Severity::kError));
  }
}

}  // namespace
}  // namespace cgraf::verify
