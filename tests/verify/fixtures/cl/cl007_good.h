// CL007 fixture (good): operator+= delegates to add(), and the union of the
// two bodies covers every field — exactly the LpStageStats idiom.
#pragma once

namespace cgraf {

struct FixtureStats {
  long iters = 0;
  long nodes = 0;
  double seconds = 0.0;

  void add(const FixtureStats& o) {
    iters += o.iters;
    nodes += o.nodes;
    seconds += o.seconds;
  }
  FixtureStats& operator+=(const FixtureStats& o) {
    add(o);
    return *this;
  }
};

}  // namespace cgraf
