// CL007 fixture (bad): FixtureStats::nodes is dropped by the aggregation
// functions — merged runs silently lose the counter.
#pragma once

namespace cgraf {

struct FixtureStats {
  long iters = 0;
  long nodes = 0;
  double seconds = 0.0;

  FixtureStats& operator+=(const FixtureStats& o) {
    iters += o.iters;
    seconds += o.seconds;
    return *this;
  }
};

}  // namespace cgraf
