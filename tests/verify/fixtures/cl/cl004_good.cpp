// CL004 fixture (good): diagnostics to stderr and string formatting are
// both fine; only stdout writes from library code are banned.
#include <cstdio>

namespace cgraf {

void quiet(int n, char* buf, unsigned long cap) {
  fprintf(stderr, "warning: n=%d\n", n);
  snprintf(buf, cap, "n=%d", n);
}

}  // namespace cgraf
