// CL011 bad fixture: a hand-rolled strategy parser — distinct canonical
// names compared against strings with ==/!= outside core/strategy.*.
#include <string>

int pick(const std::string& s) {
  if (s == "dive") return 0;
  if (s == "ilp") return 2;
  if ("fix-once" == s) return 1;
  if (s != "portfolio") return -1;
  return 4;
}
