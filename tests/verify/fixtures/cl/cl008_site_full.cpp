// CL008 fixture (good half): the emission site covers every field.
#include "obs/json_writer.h"

namespace cgraf {

void emit_stats(obs::JsonWriter& w, const FixtureStats& s) {
  w.field("iters", s.iters);
  w.field("nodes", s.nodes);
  w.field("seconds", s.seconds);
}

}  // namespace cgraf
