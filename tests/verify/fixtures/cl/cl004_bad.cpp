// CL004 fixture (bad): stdout noise from library code (virtual src/ path).
#include <cstdio>
#include <iostream>

namespace cgraf {

void chatty(int n) {
  printf("n=%d\n", n);
  fprintf(stdout, "n=%d\n", n);
  std::cout << "n=" << n << "\n";
}

}  // namespace cgraf
