// CL008 fixture (bad half): a JSON-emission site that forgets
// FixtureStats::nodes — the field never reaches any report.
#include "obs/json_writer.h"

namespace cgraf {

void emit_stats(obs::JsonWriter& w, const FixtureStats& s) {
  w.field("iters", s.iters);
  w.field("seconds", s.seconds);
}

}  // namespace cgraf
