// CL005 fixture (bad): optional observability pointers dereferenced with no
// null guard in the enclosing scope.
namespace cgraf {

struct Tracer;
struct EventSink;

struct Hooks {
  EventSink* events = nullptr;
};

void solve(Tracer* tracer, const Hooks& hooks) {
  tracer->begin("solve");
  hooks.events->emit("start");
}

}  // namespace cgraf
