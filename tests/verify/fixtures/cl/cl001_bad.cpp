// CL001 fixture (bad): raw standard-library synchronization primitives in
// library code. Never compiled; linted under a virtual src/ path.
#include <mutex>

namespace cgraf {

void hand_rolled_locking() {
  std::mutex m;
  std::lock_guard<std::mutex> g(m);
  std::condition_variable cv;
  std::atomic_flag spin = ATOMIC_FLAG_INIT;
  (void)g;
  (void)cv;
  (void)spin;
}

}  // namespace cgraf
