// CL009 fixture: a rule-declaring file (linted under a virtual src/verify
// path). Declares one rule ID; whether CL009 fires depends on which test
// fixture joins the corpus.
namespace cgraf::verify {

const char* kFixtureRuleId = "ML901";

}  // namespace cgraf::verify
