// CL009 fixture (bad half): a test corpus with no reference to the declared
// rule ID — the rule has no fixture proving it can fire.
namespace {

const char* kUnrelated = "nothing to see";

}  // namespace
