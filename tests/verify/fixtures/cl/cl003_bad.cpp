// CL003 fixture (bad): floating-point ==/!= against nonzero literals in a
// numerics directory (linted under a virtual src/milp path).
namespace cgraf::milp {

bool at_step(double x) { return x == 1.5; }
bool not_half(float x) { return x != 0.5f; }
bool reversed(double x) { return 2.25 == x; }

}  // namespace cgraf::milp
