// CL005 fixture (good): every optional-pointer deref sits behind a null
// guard the rule recognizes.
namespace cgraf {

struct Tracer;
struct EventSink;

struct Hooks {
  EventSink* events = nullptr;
};

void solve(Tracer* tracer, const Hooks& hooks) {
  if (tracer) {
    tracer->begin("solve");
  }
  if (hooks.events != nullptr) {
    hooks.events->emit("start");
  }
  tracer && tracer->flush();
}

}  // namespace cgraf
