// CL006 fixture (good): strict parsing with endptr + range checks.
#include <cerrno>
#include <cstdlib>

namespace cgraf {

bool strict_long(const char* s, long* out) {
  char* end = nullptr;
  errno = 0;
  const long v = strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool strict_double(const char* s, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace cgraf
