// CL006 fixture (bad): non-strict C parsers that cannot report errors.
#include <cstdlib>
#include <cstring>

namespace cgraf {

int lax_int(const char* s) { return atoi(s); }
double lax_double(const char* s) { return atof(s); }

void lax_split(char* s) {
  for (char* tok = strtok(s, ","); tok; tok = strtok(nullptr, ",")) {
    (void)tok;
  }
}

}  // namespace cgraf
