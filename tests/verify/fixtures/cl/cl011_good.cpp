// CL011 good fixture: a single name in a comparison is fine (an event
// vocabulary, a test expectation); resolution of many names goes through
// the strategy table.
#include <string>

struct StrategyInfo;
const StrategyInfo* parse_strategy(const std::string& s);

bool is_portfolio_record(const std::string& type) {
  return type == "portfolio";  // one name: not a parser
}

const StrategyInfo* pick(const std::string& s) { return parse_strategy(s); }
