// CL010 fixture (bad): the three suppression-hygiene failures — unknown
// rule ID, missing reason, and a suppression that matches nothing.
namespace cgraf {

// CGRAF_LINT_ALLOW(CL999): no such rule exists
int a = 0;

// CGRAF_LINT_ALLOW(CL006)
int b = 0;

// CGRAF_LINT_ALLOW(CL006): nothing on the next line calls a lax parser
int c = 0;

}  // namespace cgraf
