// CL010 fixture (good): a well-formed, *used* suppression — CL006 would
// fire on the atof call, the ALLOW absorbs it, and no hygiene finding
// results.
#include <cstdlib>

namespace cgraf {

double lenient_parse(const char* s) {
  // CGRAF_LINT_ALLOW(CL006): fixture exercises the suppression path
  return atof(s);
}

}  // namespace cgraf
