// CL002 fixture (good): the Mutex guards a field and carries a lock_rank
// registration in its constructor arguments.
#pragma once

#include "util/sync.h"

namespace cgraf {

struct Widget {
  int value CGRAF_GUARDED_BY(mu_) = 0;
  mutable Mutex mu_{"widget.mu", lock_rank::kObsMetrics};
};

}  // namespace cgraf
