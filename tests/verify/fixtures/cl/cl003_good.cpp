// CL003 fixture (good): tolerance comparisons through util/float_cmp.h,
// plus the two sanctioned exact patterns — comparisons against the 0.0
// sparsity contract and against infinity sentinels.
#include "util/float_cmp.h"

namespace cgraf::milp {

inline constexpr double kInf = 1.0 / 0.0;

bool at_step(double x) { return util::approx_eq(x, 1.5); }
bool is_structural_zero(double a) { return a == 0.0; }
bool is_free_bound(double lb) { return lb == -kInf; }

}  // namespace cgraf::milp
