// CL002 fixture (bad): a Mutex member that guards nothing and is not
// registered in the lock-rank hierarchy.
#pragma once

#include "util/sync.h"

namespace cgraf {

struct Widget {
  Mutex mu_;
  int value = 0;
};

}  // namespace cgraf
