// CL009 fixture (good half): a test file that exercises rule ML901, so the
// declared ID is referenced from the tests/ corpus.
namespace {

const char* kExpectedRule = "ML901";

}  // namespace
