// CL008 fixture: the struct under the JSON-coverage contract. Whether the
// rule fires depends on which site file joins the corpus
// (cl008_site_partial.cpp vs cl008_site_full.cpp).
#pragma once

namespace cgraf {

struct FixtureStats {
  long iters = 0;
  long nodes = 0;
  double seconds = 0.0;

  void add(const FixtureStats& o) {
    iters += o.iters;
    nodes += o.nodes;
    seconds += o.seconds;
  }
};

}  // namespace cgraf
