// CL001 fixture (good): synchronization through the annotated cgraf layer.
#include "util/sync.h"

namespace cgraf {

void annotated_locking(Mutex& m) {
  MutexLock lock(&m);
  // std::atomic<int> stays legal; only the banned primitives count.
}

}  // namespace cgraf
