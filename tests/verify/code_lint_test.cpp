// Fixture tests for the cgraf_lint engine (rules CL001-CL011).
//
// Each rule has a bad fixture that must fire it and a good fixture that
// must stay clean; fixtures live in tests/verify/fixtures/cl/ (excluded
// from the whole-tree lint walk, since the bad halves contain findings on
// purpose) and are linted under virtual paths so the path-scoped rules see
// the directory they police.
#include "code_lint.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "verify/code_rules.h"

namespace cgraf::lint {
namespace {

using verify::LintReport;
using verify::Severity;

std::string fixture(const std::string& name) {
  const std::string path = std::string(CGRAF_CL_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int count_rule(const LintReport& r, const std::string& id) {
  int n = 0;
  for (const auto& f : r.findings) n += f.rule == id ? 1 : 0;
  return n;
}

// Lints one fixture under a virtual path, restricted to a single rule.
LintReport lint_rule(const std::string& id, const std::string& vpath,
                     const std::string& name) {
  CodeLintOptions opts;
  opts.rules = {id};
  opts.stats_structs = {"FixtureStats"};
  return lint_sources({{vpath, fixture(name)}}, opts);
}

TEST(CodeLint, Cl001FiresOnRawStdSync) {
  const LintReport r =
      lint_rule("CL001", "src/core/locks.cpp", "cl001_bad.cpp");
  EXPECT_GE(count_rule(r, "CL001"), 3);  // mutex, lock_guard, cv, flag
  EXPECT_FALSE(r.clean());
}

TEST(CodeLint, Cl001CleanOnSyncLayer) {
  const LintReport r =
      lint_rule("CL001", "src/core/locks.cpp", "cl001_good.cpp");
  EXPECT_EQ(count_rule(r, "CL001"), 0);
  // The sync layer itself is the one place raw primitives are legal.
  CodeLintOptions opts;
  opts.rules = {"CL001"};
  const LintReport sync =
      lint_sources({{"src/util/sync.h", fixture("cl001_bad.cpp")}}, opts);
  EXPECT_EQ(count_rule(sync, "CL001"), 0);
}

TEST(CodeLint, Cl002FiresOnUnregisteredMutex) {
  const LintReport r =
      lint_rule("CL002", "src/core/widget.h", "cl002_bad.h");
  // Two findings: no CGRAF_GUARDED_BY user, no lock_rank registration.
  EXPECT_EQ(count_rule(r, "CL002"), 2);
}

TEST(CodeLint, Cl002CleanOnRegisteredGuardedMutex) {
  const LintReport r =
      lint_rule("CL002", "src/core/widget.h", "cl002_good.h");
  EXPECT_EQ(count_rule(r, "CL002"), 0);
}

TEST(CodeLint, Cl002FindsRankInSiblingFile) {
  // Declaration in the header, lock_rank registration in the .cpp: the
  // sibling-stem lookup must connect them.
  CodeLintOptions opts;
  opts.rules = {"CL002"};
  const LintReport r = lint_sources(
      {{"src/core/widget.h",
        "struct W { int v CGRAF_GUARDED_BY(mu_) = 0; Mutex mu_; };\n"},
       {"src/core/widget.cpp",
        "W::W() : mu_(\"w.mu\", lock_rank::kObsMetrics) {}\n"}},
      opts);
  EXPECT_EQ(count_rule(r, "CL002"), 0);
}

TEST(CodeLint, Cl003FiresOnNonzeroFloatLiteralCompare) {
  const LintReport r =
      lint_rule("CL003", "src/milp/kernel.cpp", "cl003_bad.cpp");
  EXPECT_EQ(count_rule(r, "CL003"), 3);
}

TEST(CodeLint, Cl003CleanOnToleranceAndSanctionedPatterns) {
  const LintReport r =
      lint_rule("CL003", "src/milp/kernel.cpp", "cl003_good.cpp");
  EXPECT_EQ(count_rule(r, "CL003"), 0);
}

TEST(CodeLint, Cl003ScopedToNumericsDirectories) {
  // The same bad content outside the numerics directories is not CL003's
  // business (tools/ parses text, compares floats for CLI purposes, etc.).
  CodeLintOptions opts;
  opts.rules = {"CL003"};
  const LintReport r = lint_sources(
      {{"tools/plot/render.cpp", fixture("cl003_bad.cpp")}}, opts);
  EXPECT_EQ(count_rule(r, "CL003"), 0);
}

TEST(CodeLint, Cl004FiresOnStdoutFromLibraryCode) {
  const LintReport r =
      lint_rule("CL004", "src/core/noise.cpp", "cl004_bad.cpp");
  EXPECT_EQ(count_rule(r, "CL004"), 3);  // printf, fprintf(stdout), cout
}

TEST(CodeLint, Cl004CleanOnStderrAndTools) {
  const LintReport r =
      lint_rule("CL004", "src/core/noise.cpp", "cl004_good.cpp");
  EXPECT_EQ(count_rule(r, "CL004"), 0);
  // CLIs own stdout; the rule only polices src/ (minus src/obs).
  CodeLintOptions opts;
  opts.rules = {"CL004"};
  const LintReport cli =
      lint_sources({{"tools/cgraf_cli.cpp", fixture("cl004_bad.cpp")}}, opts);
  EXPECT_EQ(count_rule(cli, "CL004"), 0);
}

TEST(CodeLint, Cl005FiresOnUnguardedOptionalPointerDeref) {
  const LintReport r =
      lint_rule("CL005", "src/core/solve.cpp", "cl005_bad.cpp");
  EXPECT_EQ(count_rule(r, "CL005"), 2);  // tracer-> and hooks.events->
}

TEST(CodeLint, Cl005CleanOnGuardedDerefs) {
  const LintReport r =
      lint_rule("CL005", "src/core/solve.cpp", "cl005_good.cpp");
  EXPECT_EQ(count_rule(r, "CL005"), 0);
}

TEST(CodeLint, Cl006FiresOnLaxCParsers) {
  const LintReport r =
      lint_rule("CL006", "src/cgrra/io.cpp", "cl006_bad.cpp");
  EXPECT_EQ(count_rule(r, "CL006"), 4);  // atoi, atof, strtok x2
}

TEST(CodeLint, Cl006CleanOnStrictParsers) {
  const LintReport r =
      lint_rule("CL006", "src/cgrra/io.cpp", "cl006_good.cpp");
  EXPECT_EQ(count_rule(r, "CL006"), 0);
}

TEST(CodeLint, Cl007FiresOnFieldDroppedByAggregation) {
  const LintReport r =
      lint_rule("CL007", "src/core/stats.h", "cl007_bad.h");
  ASSERT_EQ(count_rule(r, "CL007"), 1);
  EXPECT_NE(r.findings[0].message.find("nodes"), std::string::npos);
}

TEST(CodeLint, Cl007CleanWhenAddAndPlusEqualsCoverAllFields) {
  const LintReport r =
      lint_rule("CL007", "src/core/stats.h", "cl007_good.h");
  EXPECT_EQ(count_rule(r, "CL007"), 0);
}

TEST(CodeLint, Cl008FiresOnFieldMissingFromJsonSites) {
  CodeLintOptions opts;
  opts.rules = {"CL008"};
  opts.stats_structs = {"FixtureStats"};
  const LintReport r = lint_sources(
      {{"src/core/stats.h", fixture("cl008_stats.h")},
       {"src/core/emit.cpp", fixture("cl008_site_partial.cpp")}},
      opts);
  ASSERT_EQ(count_rule(r, "CL008"), 1);
  EXPECT_NE(r.findings[0].message.find("nodes"), std::string::npos);
}

TEST(CodeLint, Cl008CleanWhenEveryFieldIsEmitted) {
  CodeLintOptions opts;
  opts.rules = {"CL008"};
  opts.stats_structs = {"FixtureStats"};
  const LintReport r = lint_sources(
      {{"src/core/stats.h", fixture("cl008_stats.h")},
       {"src/core/emit.cpp", fixture("cl008_site_full.cpp")}},
      opts);
  EXPECT_EQ(count_rule(r, "CL008"), 0);
}

TEST(CodeLint, Cl009FiresOnRuleIdWithNoTestReference) {
  CodeLintOptions opts;
  opts.rules = {"CL009"};
  const LintReport r = lint_sources(
      {{"src/verify/fixture_rules.cpp", fixture("cl009_rules.cpp")},
       {"tests/verify/fixture_test.cpp",
        fixture("cl009_test_without_ref.cpp")}},
      opts);
  ASSERT_EQ(count_rule(r, "CL009"), 1);
  EXPECT_NE(r.findings[0].message.find("ML901"), std::string::npos);
}

TEST(CodeLint, Cl009CleanWhenTestsReferenceEveryRuleId) {
  CodeLintOptions opts;
  opts.rules = {"CL009"};
  const LintReport r = lint_sources(
      {{"src/verify/fixture_rules.cpp", fixture("cl009_rules.cpp")},
       {"tests/verify/fixture_test.cpp",
        fixture("cl009_test_with_ref.cpp")}},
      opts);
  EXPECT_EQ(count_rule(r, "CL009"), 0);
}

TEST(CodeLint, Cl010FiresOnAllThreeHygieneFailures) {
  // Full rule set so unused-suppression detection is active.
  CodeLintOptions opts;
  const LintReport r =
      lint_sources({{"src/core/sup.cpp", fixture("cl010_bad.cpp")}}, opts);
  EXPECT_EQ(count_rule(r, "CL010"), 3);
}

TEST(CodeLint, Cl010CleanAndSuppressionAbsorbsFinding) {
  CodeLintOptions opts;
  const LintReport r =
      lint_sources({{"src/core/sup.cpp", fixture("cl010_good.cpp")}}, opts);
  EXPECT_EQ(count_rule(r, "CL010"), 0);
  EXPECT_EQ(count_rule(r, "CL006"), 0);  // absorbed by the ALLOW
  EXPECT_TRUE(r.clean());
}

TEST(CodeLint, Cl011FiresOnAdHocStrategyNameParsing) {
  const LintReport r =
      lint_rule("CL011", "src/core/dispatch.cpp", "cl011_bad.cpp");
  ASSERT_EQ(count_rule(r, "CL011"), 1);  // one finding per file, not per hit
  EXPECT_NE(r.findings[0].message.find("'dive'"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("'portfolio'"), std::string::npos);
}

TEST(CodeLint, Cl011CleanOnSingleNameAndTableUse) {
  const LintReport r =
      lint_rule("CL011", "src/obs/postmortem.cpp", "cl011_good.cpp");
  EXPECT_EQ(count_rule(r, "CL011"), 0);
}

TEST(CodeLint, Cl011ExemptsTheStrategyTableItself) {
  // The table's own parser/printer is the one sanctioned home for the
  // canonical spellings.
  CodeLintOptions opts;
  opts.rules = {"CL011"};
  const LintReport r = lint_sources(
      {{"src/core/strategy.cpp", fixture("cl011_bad.cpp")}}, opts);
  EXPECT_EQ(count_rule(r, "CL011"), 0);
}

TEST(CodeLint, SuppressionOnSameLineAlsoWorks) {
  CodeLintOptions opts;
  const LintReport r = lint_sources(
      {{"src/core/sup.cpp",
        "int p(const char* s) {\n"
        "  return atoi(s);  // CGRAF_LINT_ALLOW(CL006): same-line form\n"
        "}\n"}},
      opts);
  EXPECT_EQ(count_rule(r, "CL006"), 0);
  EXPECT_EQ(count_rule(r, "CL010"), 0);
}

TEST(CodeLint, FindingsCarryFileAndLine) {
  const LintReport r =
      lint_rule("CL006", "src/cgrra/io.cpp", "cl006_bad.cpp");
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].file, "src/cgrra/io.cpp");
  EXPECT_GT(r.findings[0].line, 0);
  EXPECT_EQ(r.findings[0].severity, Severity::kError);
  // The serialized forms carry the location too.
  EXPECT_NE(r.to_json().find("\"file\""), std::string::npos);
  EXPECT_NE(r.to_text().find("src/cgrra/io.cpp:"), std::string::npos);
}

TEST(CodeLint, ExtraFindingsMergeUnderSuppressions) {
  // AST-frontend extras obey the same CGRAF_LINT_ALLOW machinery.
  CodeLintOptions opts;
  std::vector<RawFinding> extra;
  extra.push_back(RawFinding{
      "CL003", "src/milp/kernel.cpp", 2, "typed float compare"});
  const LintReport r = lint_sources(
      {{"src/milp/kernel.cpp",
        "// CGRAF_LINT_ALLOW(CL003): probing a representable sentinel\n"
        "bool probe(double x) { return x == x; }\n"}},
      opts, std::move(extra));
  EXPECT_EQ(count_rule(r, "CL003"), 0);
  EXPECT_EQ(count_rule(r, "CL010"), 0);  // the suppression counts as used
}

TEST(CodeLint, RuleCatalogIsCompleteAndQueryable) {
  const auto& rules = verify::code_rules();
  ASSERT_EQ(rules.size(), 11u);
  for (int i = 1; i <= 11; ++i) {
    const std::string id = "CL00" + std::to_string(i);
    const std::string norm = i >= 10 ? "CL0" + std::to_string(i) : id;
    const verify::CodeRuleInfo* info = verify::find_code_rule(norm);
    ASSERT_NE(info, nullptr) << norm;
    EXPECT_EQ(info->severity, Severity::kError);
  }
  EXPECT_EQ(verify::find_code_rule("CL099"), nullptr);
  EXPECT_EQ(verify::find_code_rule("ML001"), nullptr);
}

TEST(CodeLint, InDirMatchesAtAnyDepthOnBoundaries) {
  EXPECT_TRUE(in_dir("src/milp/lu.cpp", "src/milp"));
  EXPECT_TRUE(in_dir("repo/src/milp/lu.cpp", "src/milp"));
  EXPECT_FALSE(in_dir("src/milpx/lu.cpp", "src/milp"));
  EXPECT_FALSE(in_dir("asrc/milp/lu.cpp", "src/milp"));
  EXPECT_FALSE(in_dir("src/milp", "src/milp"));  // the dir itself, no file
}

}  // namespace
}  // namespace cgraf::lint
