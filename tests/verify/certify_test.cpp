#include "verify/certify.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cgrra/stress.h"
#include "milp/model.h"
#include "verify/kahan.h"

namespace cgraf::verify {
namespace {

bool has_issue(const Certificate& cert, const char* check) {
  for (const CertifyIssue& i : cert.issues)
    if (i.check == check) return true;
  return false;
}

TEST(KahanSum, CompensatesCatastrophicCancellation) {
  KahanSum s;
  s.add(1.0);
  s.add(1e100);
  s.add(1.0);
  s.add(-1e100);
  EXPECT_DOUBLE_EQ(s.value(), 2.0);  // naive summation returns 0
}

TEST(KahanSum, ManySmallIncrements) {
  KahanSum s;
  s.add(1e16);
  for (int i = 0; i < 10; ++i) s.add(1.0);
  EXPECT_DOUBLE_EQ(s.value() - 1e16, 10.0);
}

TEST(KahanDot, MatchesExactArithmetic) {
  const std::vector<std::pair<int, double>> terms = {
      {0, 1e8}, {1, 1.0}, {2, -1e8}};
  const std::vector<double> x = {1.0, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(kahan_dot(terms, x), 0.5);
}

milp::Model knapsack_model() {
  milp::Model m;
  const int x = m.add_binary(3.0, "x");
  const int y = m.add_binary(2.0, "y");
  m.add_le({{x, 2.0}, {y, 1.0}}, 2.0, "capacity");
  return m;
}

TEST(CertifySolution, AcceptsFeasibleIntegerPoint) {
  const milp::Model m = knapsack_model();
  const Certificate cert = certify_solution(m, {1.0, 0.0});
  EXPECT_TRUE(cert.ok);
  EXPECT_TRUE(cert.issues.empty());
  EXPECT_DOUBLE_EQ(cert.objective, 3.0);
  EXPECT_EQ(cert.summary(), "certified");
}

TEST(CertifySolution, RejectsWrongShape) {
  const Certificate cert = certify_solution(knapsack_model(), {1.0});
  EXPECT_FALSE(cert.ok);
  EXPECT_TRUE(has_issue(cert, "shape"));
}

TEST(CertifySolution, RejectsNonFiniteEntries) {
  const Certificate cert = certify_solution(
      knapsack_model(), {std::numeric_limits<double>::quiet_NaN(), 0.0});
  EXPECT_FALSE(cert.ok);
  EXPECT_TRUE(has_issue(cert, "finite"));
}

TEST(CertifySolution, RejectsBoundViolation) {
  const Certificate cert = certify_solution(knapsack_model(), {2.0, 0.0});
  EXPECT_FALSE(cert.ok);
  EXPECT_TRUE(has_issue(cert, "bounds"));
  EXPECT_GT(cert.max_bound_violation, 0.5);
}

TEST(CertifySolution, RejectsFractionalUnlessRelaxed) {
  const milp::Model m = knapsack_model();
  const Certificate strict = certify_solution(m, {0.5, 0.5});
  EXPECT_FALSE(strict.ok);
  EXPECT_TRUE(has_issue(strict, "integrality"));
  const Certificate relaxed =
      certify_solution(m, {0.5, 0.5}, {}, /*relaxed=*/true);
  EXPECT_TRUE(relaxed.ok);
}

TEST(CertifySolution, RejectsRowViolation) {
  const Certificate cert = certify_solution(knapsack_model(), {1.0, 1.0});
  EXPECT_FALSE(cert.ok);
  EXPECT_TRUE(has_issue(cert, "row-feasibility"));
  EXPECT_NEAR(cert.max_row_violation, 1.0, 1e-12);
}

TEST(CertifySolution, ChecksClaimedObjective) {
  const milp::Model m = knapsack_model();
  const double right = 3.0;
  EXPECT_TRUE(certify_solution(m, {1.0, 0.0}, {}, false, &right).ok);
  const double wrong = 4.0;
  const Certificate cert = certify_solution(m, {1.0, 0.0}, {}, false, &wrong);
  EXPECT_FALSE(cert.ok);
  EXPECT_TRUE(has_issue(cert, "objective"));
}

TEST(Certificate, JsonCarriesIssues) {
  const Certificate cert = certify_solution(knapsack_model(), {1.0, 1.0});
  const std::string json = cert.to_json();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("row-feasibility"), std::string::npos);
}

// --- Floorplan-level certification. Two contexts on a 2x2 fabric; op0/op1
// in context 0, op2 in context 1.

Design two_context_design() {
  Design d{Fabric(2, 2), 2, {}, {}};
  auto add = [&](OpKind kind, int ctx) {
    Operation op;
    op.id = d.num_ops();
    op.kind = kind;
    op.bitwidth = 32;
    op.context = ctx;
    d.ops.push_back(op);
    return op.id;
  };
  const int a = add(OpKind::kAdd, 0);
  const int b = add(OpKind::kMux, 0);
  add(OpKind::kAdd, 1);
  d.edges.push_back(Edge{a, b});  // combinational chain inside context 0
  return d;
}

TEST(CertifyFloorplan, AcceptsLegalFloorplan) {
  const Design d = two_context_design();
  FloorplanSpec spec;
  spec.design = &d;
  const Certificate cert = certify_floorplan(spec, Floorplan{{0, 1, 2}});
  EXPECT_TRUE(cert.ok);
}

TEST(CertifyFloorplan, RejectsShapeMismatchAndOutOfFabric) {
  const Design d = two_context_design();
  FloorplanSpec spec;
  spec.design = &d;
  EXPECT_TRUE(has_issue(certify_floorplan(spec, Floorplan{{0, 1}}), "shape"));
  EXPECT_TRUE(
      has_issue(certify_floorplan(spec, Floorplan{{0, 1, 9}}), "shape"));
}

TEST(CertifyFloorplan, RejectsExclusivityViolation) {
  const Design d = two_context_design();
  FloorplanSpec spec;
  spec.design = &d;
  // op0 and op1 share context 0 and PE 0; op2 (context 1) may reuse PE 0.
  const Certificate cert = certify_floorplan(spec, Floorplan{{0, 0, 0}});
  EXPECT_FALSE(cert.ok);
  EXPECT_TRUE(has_issue(cert, "exclusivity"));
}

TEST(CertifyFloorplan, RejectsStressAboveTarget) {
  const Design d = two_context_design();
  const Floorplan fp{{0, 1, 0}};
  const StressMap stress = compute_stress(d, fp);
  FloorplanSpec spec;
  spec.design = &d;
  spec.st_target = stress.max_accumulated();  // exactly at the max: legal
  EXPECT_TRUE(certify_floorplan(spec, fp).ok);
  spec.st_target = stress.max_accumulated() * 0.5;
  const Certificate cert = certify_floorplan(spec, fp);
  EXPECT_FALSE(cert.ok);
  EXPECT_TRUE(has_issue(cert, "stress"));
}

TEST(CertifyFloorplan, RejectsMovedFrozenOp) {
  const Design d = two_context_design();
  const Floorplan reference{{0, 1, 2}};
  FloorplanSpec spec;
  spec.design = &d;
  spec.reference = &reference;
  spec.frozen = {1, 0, 0};
  EXPECT_TRUE(certify_floorplan(spec, Floorplan{{0, 3, 2}}).ok);
  const Certificate cert = certify_floorplan(spec, Floorplan{{1, 0, 2}});
  EXPECT_FALSE(cert.ok);
  EXPECT_TRUE(has_issue(cert, "frozen"));
}

TEST(CertifyFloorplan, RejectsPathOverBudget) {
  const Design d = two_context_design();
  timing::TimingPath path;
  path.context = 0;
  path.ops = {0, 1};
  const std::vector<timing::TimingPath> monitored = {path};
  FloorplanSpec spec;
  spec.design = &d;
  spec.monitored = &monitored;
  // Adjacent PEs: one wire unit. Budget exactly covers it.
  const Floorplan tight{{0, 1, 2}};
  spec.cpd_ns = timing::path_delay_ns(d, tight, path);
  EXPECT_TRUE(certify_floorplan(spec, tight).ok);
  // Diagonal corners double the wire length and bust the same budget.
  const Certificate cert = certify_floorplan(spec, Floorplan{{0, 3, 2}});
  EXPECT_FALSE(cert.ok);
  EXPECT_TRUE(has_issue(cert, "path-budget"));
}

TEST(CertifyFloorplan, MaxIssuesCapsCollection) {
  const Design d = two_context_design();
  FloorplanSpec spec;
  spec.design = &d;
  spec.st_target = 0.0;  // every loaded PE violates
  CertifyOptions opts;
  opts.max_issues = 1;
  const Certificate cert = certify_floorplan(spec, Floorplan{{0, 1, 2}}, opts);
  EXPECT_FALSE(cert.ok);
  EXPECT_EQ(cert.issues.size(), 1u);
}

}  // namespace
}  // namespace cgraf::verify
