#include "verify/input_lint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "cgrra/io.h"
#include "cgrra/stress.h"

namespace cgraf::verify {
namespace {

bool has(const LintReport& rep, const char* rule, Severity severity) {
  for (const LintFinding& f : rep.findings)
    if (f.rule == rule && f.severity == severity) return true;
  return false;
}

bool has_rule(const LintReport& rep, const char* rule) {
  for (const LintFinding& f : rep.findings)
    if (f.rule == rule) return true;
  return false;
}

// 2x2 fabric, 2 contexts, 4 ops (two per context), one combinational and
// one cross-context edge. Passes every DL rule.
Design small_design() {
  Design design{Fabric(2, 2), 2, {}, {}};
  for (int id = 0; id < 4; ++id) {
    Operation op;
    op.id = id;
    op.kind = id == 3 ? OpKind::kMux : OpKind::kAdd;
    op.bitwidth = 32;
    op.context = id / 2;
    design.ops.push_back(op);
  }
  design.edges.push_back({0, 1});  // combinational, context 0
  design.edges.push_back({1, 2});  // crosses 0 -> 1
  return design;
}

Floorplan small_floorplan() {
  Floorplan fp;
  fp.op_to_pe = {0, 1, 0, 1};
  return fp;
}

TEST(LintDesign, CleanDesignIsClean) {
  const LintReport rep = lint_design(small_design());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors, 0);
  EXPECT_EQ(rep.warnings, 0);
}

TEST(LintDesign, DL001FabricBeyondPeCap) {
  InputLintOptions opts;
  opts.max_fabric_pes = 3;  // the 2x2 fabric has 4
  const LintReport rep = lint_design(small_design(), opts);
  EXPECT_TRUE(has(rep, "DL001", Severity::kError));
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL001"));
}

TEST(LintDesign, DL002NonFiniteWidthScaling) {
  Design design = small_design();
  PeDelayModel delays;
  delays.width_offset = std::numeric_limits<double>::quiet_NaN();
  design.fabric = Fabric(2, 2, 5.0, 0.15, delays);
  const LintReport rep = lint_design(design);
  EXPECT_TRUE(has(rep, "DL002", Severity::kError));
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL002"));
}

TEST(LintDesign, DL002NegativeWidthSlope) {
  Design design = small_design();
  PeDelayModel delays;
  delays.width_slope = -1.0;
  design.fabric = Fabric(2, 2, 5.0, 0.15, delays);
  EXPECT_TRUE(has(lint_design(design), "DL002", Severity::kError));
}

TEST(LintDesign, DL003OpSlowerThanClock) {
  Design design = small_design();
  design.fabric = Fabric(2, 2, 0.5);  // dmu op 3 cannot fit in 0.5 ns
  const LintReport rep = lint_design(design);
  EXPECT_TRUE(has(rep, "DL003", Severity::kWarn));
  EXPECT_EQ(rep.errors, 0);  // a warning: the input is still accepted
  EXPECT_TRUE(rep.clean());
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL003"));
}

TEST(LintDesign, DL003SuppressedWhenTimingModelBroken) {
  Design design = small_design();
  PeDelayModel delays;
  delays.width_offset = std::numeric_limits<double>::quiet_NaN();
  design.fabric = Fabric(2, 2, 0.5, 0.15, delays);
  const LintReport rep = lint_design(design);
  EXPECT_TRUE(has_rule(rep, "DL002"));
  EXPECT_FALSE(has_rule(rep, "DL003"));  // NaN delay comparisons say nothing
}

TEST(LintDesign, DL004ContextCountOutOfRange) {
  Design design = small_design();
  design.num_contexts = 0;
  EXPECT_TRUE(has(lint_design(design), "DL004", Severity::kError));
  InputLintOptions opts;
  opts.max_contexts = 1;
  EXPECT_TRUE(has(lint_design(small_design(), opts), "DL004", Severity::kError));
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL004"));
}

TEST(LintDesign, DL005NonDenseOpIds) {
  Design design = small_design();
  design.ops[1].id = 5;
  EXPECT_TRUE(has(lint_design(design), "DL005", Severity::kError));
  InputLintOptions opts;
  opts.max_ops = 2;
  EXPECT_TRUE(has(lint_design(small_design(), opts), "DL005", Severity::kError));
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL005"));
}

TEST(LintDesign, DL006ContextOutOfRange) {
  Design design = small_design();
  design.ops[2].context = 2;  // num_contexts == 2
  EXPECT_TRUE(has(lint_design(design), "DL006", Severity::kError));
  design.ops[2].context = -1;
  EXPECT_TRUE(has(lint_design(design), "DL006", Severity::kError));
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL006"));
}

TEST(LintDesign, DL007BitwidthOutOfRange) {
  Design design = small_design();
  design.ops[0].bitwidth = 0;
  EXPECT_TRUE(has(lint_design(design), "DL007", Severity::kError));
  design.ops[0].bitwidth = 65;
  EXPECT_TRUE(has(lint_design(design), "DL007", Severity::kError));
  design.ops[0].bitwidth = 64;
  EXPECT_FALSE(has_rule(lint_design(design), "DL007"));
}

TEST(LintDesign, DL008DanglingAndSelfLoopEdges) {
  Design design = small_design();
  design.edges.push_back({0, 99});
  EXPECT_TRUE(has(lint_design(design), "DL008", Severity::kError));
  design.edges.back() = {2, 2};
  EXPECT_TRUE(has(lint_design(design), "DL008", Severity::kError));
  InputLintOptions opts;
  opts.max_edges = 1;
  EXPECT_TRUE(has(lint_design(small_design(), opts), "DL008", Severity::kError));
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL008"));
}

TEST(LintDesign, DL009DuplicateEdgeIsAWarning) {
  Design design = small_design();
  design.edges.push_back({0, 1});  // already present
  const LintReport rep = lint_design(design);
  EXPECT_TRUE(has(rep, "DL009", Severity::kWarn));
  EXPECT_TRUE(rep.clean());
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL009"));
}

TEST(LintDesign, DL010BackwardCrossContextEdge) {
  Design design = small_design();
  design.edges.push_back({2, 0});  // context 1 -> context 0
  EXPECT_TRUE(has(lint_design(design), "DL010", Severity::kError));
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL010"));
}

TEST(LintDesign, DL011CombinationalCycle) {
  Design design = small_design();
  design.edges.push_back({1, 0});  // closes 0 -> 1 -> 0 inside context 0
  EXPECT_TRUE(has(lint_design(design), "DL011", Severity::kError));
  EXPECT_FALSE(has_rule(lint_design(small_design()), "DL011"));
}

TEST(LintDesign, DL011SkippedWhenEdgesDangle) {
  Design design = small_design();
  design.edges.push_back({0, 99});  // not indexable: cycle pass must not run
  const LintReport rep = lint_design(design);
  EXPECT_TRUE(has_rule(rep, "DL008"));
  EXPECT_FALSE(has_rule(rep, "DL011"));
}

TEST(LintFloorplan, DL012SizeMismatch) {
  Floorplan fp = small_floorplan();
  fp.op_to_pe.pop_back();
  const LintReport rep = lint_floorplan(small_design(), fp);
  EXPECT_TRUE(has(rep, "DL012", Severity::kError));
  EXPECT_FALSE(has_rule(rep, "DL013"));  // per-op checks short-circuit
  EXPECT_FALSE(has_rule(lint_floorplan(small_design(), small_floorplan()),
                        "DL012"));
}

TEST(LintFloorplan, DL013NonexistentPe) {
  Floorplan fp = small_floorplan();
  fp.op_to_pe[0] = -1;
  EXPECT_TRUE(has(lint_floorplan(small_design(), fp), "DL013",
                  Severity::kError));
  fp.op_to_pe[0] = 4;  // fabric has PEs 0..3
  EXPECT_TRUE(has(lint_floorplan(small_design(), fp), "DL013",
                  Severity::kError));
  EXPECT_TRUE(lint_floorplan(small_design(), small_floorplan()).clean());
}

TEST(LintFloorplan, DL014SamePeTwiceInOneContext) {
  Floorplan fp = small_floorplan();
  fp.op_to_pe = {0, 0, 0, 1};  // ops 0 and 1 share context 0 and PE 0
  EXPECT_TRUE(has(lint_floorplan(small_design(), fp), "DL014",
                  Severity::kError));
  // Same PE in *different* contexts is the whole point of multi-context.
  fp.op_to_pe = {0, 1, 0, 1};
  EXPECT_FALSE(has_rule(lint_floorplan(small_design(), fp), "DL014"));
}

TEST(LintStressMap, DL015ShapeAndValueChecks) {
  const Design design = small_design();
  StressMap stress = compute_stress(design, small_floorplan());
  EXPECT_TRUE(lint_stress_map(design, stress).clean());

  StressMap short_acc = stress;
  short_acc.accumulated.pop_back();
  EXPECT_TRUE(has(lint_stress_map(design, short_acc), "DL015",
                  Severity::kError));

  StressMap bad_layer = stress;
  bad_layer.per_context.pop_back();
  EXPECT_TRUE(has(lint_stress_map(design, bad_layer), "DL015",
                  Severity::kError));

  StressMap nan_entry = stress;
  nan_entry.accumulated[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(has(lint_stress_map(design, nan_entry), "DL015",
                  Severity::kError));

  StressMap negative = stress;
  negative.per_context[0][0] = -0.25;
  EXPECT_TRUE(has(lint_stress_map(design, negative), "DL015",
                  Severity::kError));
}

TEST(LintInputs, DirtyDesignShortCircuitsFloorplanAndStress) {
  Design design = small_design();
  design.ops[0].bitwidth = 1000;  // DL007
  Floorplan fp = small_floorplan();
  fp.op_to_pe[0] = -1;  // would be DL013
  StressMap stress;     // would be DL015 (all shapes wrong)
  const LintReport rep = lint_inputs(design, &fp, &stress);
  EXPECT_TRUE(has_rule(rep, "DL007"));
  EXPECT_FALSE(has_rule(rep, "DL013"));
  EXPECT_FALSE(has_rule(rep, "DL015"));
}

TEST(LintInputs, CleanInputsAreClean) {
  const Design design = small_design();
  const Floorplan fp = small_floorplan();
  const StressMap stress = compute_stress(design, fp);
  const LintReport rep = lint_inputs(design, &fp, &stress);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.findings.size(), 0u);
}

TEST(LintInputs, ReportsSerializeToTextAndJson) {
  Design design = small_design();
  design.ops[0].bitwidth = 0;
  const LintReport rep = lint_inputs(design);
  EXPECT_NE(rep.to_text().find("DL007"), std::string::npos);
  EXPECT_NE(rep.to_json().find("DL007"), std::string::npos);
}

TEST(AcceptDesignText, RoundTripsCleanDesigns) {
  const Design design = small_design();
  std::string error;
  LintReport report;
  const auto accepted = accept_design_text(to_text(design), &error, &report);
  ASSERT_TRUE(accepted.has_value()) << error;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(accepted->num_ops(), design.num_ops());
}

TEST(AcceptDesignText, ParseFailureCarriesPositionalError) {
  std::string error;
  EXPECT_FALSE(accept_design_text("cgraf-design v1\nfabric nope\n", &error)
                   .has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(AcceptDesignText, ParseableButDirtyDesignIsRejectedWithRuleId) {
  // The parser does not check cycles; the DL linter must catch it here.
  Design design = small_design();
  design.edges.push_back({1, 0});
  std::string error;
  LintReport report;
  EXPECT_FALSE(
      accept_design_text(to_text(design), &error, &report).has_value());
  EXPECT_NE(error.find("input lint: DL011"), std::string::npos);
  EXPECT_TRUE(has_rule(report, "DL011"));
}

TEST(AcceptFloorplanText, AcceptsCleanRejectsExclusivityViolation) {
  const Design design = small_design();
  std::string error;
  EXPECT_TRUE(accept_floorplan_text(design, to_text(small_floorplan()),
                                    &error)
                  .has_value())
      << error;
  Floorplan bad;
  bad.op_to_pe = {0, 0, 0, 1};
  EXPECT_FALSE(
      accept_floorplan_text(design, to_text(bad), &error).has_value());
  EXPECT_NE(error.find("DL014"), std::string::npos);
}

}  // namespace
}  // namespace cgraf::verify
