// Mutation-style tests: run the real two-step solver on a small instance,
// then corrupt the accepted result and check the certifier catches every
// corruption. This is the wall that keeps a solver regression from silently
// shipping illegal floorplans.
#include <gtest/gtest.h>

#include "cgrra/stress.h"
#include "core/two_step.h"
#include "verify/certify.h"

namespace cgraf::verify {
namespace {

constexpr double kDmuStress = 3.14 / 5.0;

// Two contexts with packed DMU ops: balancing them spreads one op per PE.
struct Fixture {
  Design design;
  Floorplan base;

  explicit Fixture(int n, int dim) : design{Fabric(dim, dim), 2, {}, {}} {
    for (int i = 0; i < n; ++i) {
      Operation op;
      op.id = i;
      op.kind = OpKind::kMux;
      op.context = i % 2;
      design.ops.push_back(op);
      base.op_to_pe.push_back(i / 2);
    }
  }

  core::RemapModel model(double st_target) const {
    core::RemapModelSpec s;
    s.design = &design;
    s.base = &base;
    s.frozen.assign(design.ops.size(), 0);
    s.candidates.assign(design.ops.size(), {});
    for (auto& c : s.candidates)
      for (int pe = 0; pe < design.fabric.num_pes(); ++pe) c.push_back(pe);
    s.st_target = st_target;
    return core::build_remap_model(s);
  }
};

TEST(Mutation, TwoStepResultIsCertifiedEndToEnd) {
  const Fixture f(8, 4);
  const core::RemapModel rm = f.model(kDmuStress + 1e-6);
  core::TwoStepOptions opts;
  opts.verify.enabled = true;
  const core::TwoStepResult r = solve_two_step(rm, opts);
  ASSERT_EQ(r.status, milp::SolveStatus::kOptimal);
  EXPECT_TRUE(r.certified);
  EXPECT_TRUE(r.certify_error.empty());

  FloorplanSpec spec;
  spec.design = &f.design;
  spec.st_target = kDmuStress + 1e-6;
  EXPECT_TRUE(certify_floorplan(spec, r.floorplan).ok);
}

TEST(Mutation, MovingOneOpOntoALoadedPeIsRejected) {
  const Fixture f(8, 4);
  const core::RemapModel rm = f.model(kDmuStress + 1e-6);
  const core::TwoStepResult r = solve_two_step(rm, {});
  ASSERT_EQ(r.status, milp::SolveStatus::kOptimal);

  // Rebind op 0 onto the PE op 2 occupies. Both live in context 0, so the
  // mutant breaks exclusivity AND doubles that PE's accumulated stress.
  Floorplan mutant = r.floorplan;
  mutant.op_to_pe[0] = mutant.pe_of(2);
  FloorplanSpec spec;
  spec.design = &f.design;
  spec.st_target = kDmuStress + 1e-6;
  const Certificate cert = certify_floorplan(spec, mutant);
  EXPECT_FALSE(cert.ok);
  bool exclusivity = false, stress = false;
  for (const CertifyIssue& i : cert.issues) {
    exclusivity |= i.check == "exclusivity";
    stress |= i.check == "stress";
  }
  EXPECT_TRUE(exclusivity);
  EXPECT_TRUE(stress);
}

TEST(Mutation, PerturbedSolutionVectorIsRejected) {
  const Fixture f(8, 4);
  const core::RemapModel rm = f.model(kDmuStress + 1e-6);
  core::TwoStepOptions opts;
  opts.verify.enabled = true;
  const core::TwoStepResult r = solve_two_step(rm, opts);
  ASSERT_EQ(r.status, milp::SolveStatus::kOptimal);

  // Re-encode the floorplan as a model solution vector, then flip one
  // assignment bit on (without turning its sibling off): the mutant violates
  // the op's exactly-one partition row.
  std::vector<double> x(static_cast<std::size_t>(rm.model.num_vars()), 0.0);
  for (std::size_t op = 0; op < rm.assign_vars.size(); ++op) {
    for (std::size_t c = 0; c < rm.assign_vars[op].size(); ++c) {
      if (rm.candidates[op][c] == r.floorplan.pe_of(static_cast<int>(op)))
        x[static_cast<std::size_t>(rm.assign_vars[op][c])] = 1.0;
    }
  }
  ASSERT_TRUE(certify_solution(rm.model, x).ok);

  std::vector<double> mutant = x;
  for (const int v : rm.assign_vars[0]) {
    if (mutant[static_cast<std::size_t>(v)] == 0.0) {
      mutant[static_cast<std::size_t>(v)] = 1.0;
      break;
    }
  }
  const Certificate cert = certify_solution(rm.model, mutant);
  EXPECT_FALSE(cert.ok);
  EXPECT_FALSE(cert.summary() == "certified");
}

TEST(Mutation, CertifierRejectionDowngradesTwoStepStatus) {
  // At a target below the single-op stress the solver itself reports
  // infeasible — certification must never resurrect such a run, and an
  // enabled verifier must leave feasible runs untouched.
  const Fixture f(8, 4);
  core::TwoStepOptions opts;
  opts.verify.enabled = true;
  const core::TwoStepResult bad = solve_two_step(f.model(0.5 * kDmuStress),
                                                 opts);
  EXPECT_NE(bad.status, milp::SolveStatus::kOptimal);
  EXPECT_FALSE(bad.certified);

  core::TwoStepOptions lp;
  lp.verify.enabled = true;
  lp.lp_only = true;
  const core::TwoStepResult relaxed = solve_two_step(f.model(kDmuStress), lp);
  EXPECT_EQ(relaxed.status, milp::SolveStatus::kOptimal);
  EXPECT_TRUE(relaxed.certified);
}

}  // namespace
}  // namespace cgraf::verify
