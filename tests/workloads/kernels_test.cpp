#include "workloads/kernels.h"

#include <gtest/gtest.h>

namespace cgraf::workloads {
namespace {

int count_kind(const hls::Dfg& g, OpKind kind) {
  int n = 0;
  for (int i = 0; i < g.num_nodes(); ++i)
    if (g.node(i).kind == kind) ++n;
  return n;
}

TEST(Kernels, FirFilterStructure) {
  const hls::Dfg g = fir_filter(8, 16);
  EXPECT_TRUE(g.is_dag());
  EXPECT_EQ(count_kind(g, OpKind::kMul), 8);
  EXPECT_EQ(count_kind(g, OpKind::kAdd), 7);  // reduction tree of 8 leaves
  // Exactly one sink: the tree root.
  int sinks = 0;
  for (int i = 0; i < g.num_nodes(); ++i)
    if (g.fanout(i).empty()) ++sinks;
  EXPECT_EQ(sinks, 1);
}

TEST(Kernels, FirFilterSingleTap) {
  const hls::Dfg g = fir_filter(1);
  EXPECT_EQ(g.num_nodes(), 1);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Kernels, HornerPolyIsAChain) {
  const int degree = 6;
  const hls::Dfg g = horner_poly(degree);
  EXPECT_TRUE(g.is_dag());
  EXPECT_EQ(g.depth(), g.num_nodes());  // pure chain
  EXPECT_EQ(count_kind(g, OpKind::kAdd), degree);
}

TEST(Kernels, MatvecHasIndependentRows) {
  const int n = 4;
  const hls::Dfg g = matvec(n, 16);
  EXPECT_TRUE(g.is_dag());
  EXPECT_EQ(count_kind(g, OpKind::kMul), n * n);
  int sinks = 0;
  for (int i = 0; i < g.num_nodes(); ++i)
    if (g.fanout(i).empty()) ++sinks;
  EXPECT_EQ(sinks, n);  // one dot-product root per row
}

TEST(Kernels, Stencil3x3Shape) {
  const hls::Dfg g = stencil3x3();
  EXPECT_TRUE(g.is_dag());
  EXPECT_EQ(count_kind(g, OpKind::kMul), 9);
  EXPECT_EQ(count_kind(g, OpKind::kShift), 1);
}

TEST(Kernels, ButterflyMixesAluAndDmu) {
  const hls::Dfg g = butterfly(8, 16);
  EXPECT_TRUE(g.is_dag());
  EXPECT_GT(count_kind(g, OpKind::kAdd), 0);
  EXPECT_GT(count_kind(g, OpKind::kSub), 0);
  EXPECT_GT(count_kind(g, OpKind::kShuffle), 0);
}

TEST(Kernels, LayeredRandomIsDeterministicPerSeed) {
  Rng r1(5), r2(5), r3(6);
  const hls::Dfg a = layered_random(r1, 4, 6);
  const hls::Dfg b = layered_random(r2, 4, 6);
  const hls::Dfg c = layered_random(r3, 4, 6);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.edges(), b.edges());
  // Different seed: almost surely different wiring.
  EXPECT_TRUE(a.num_edges() != c.num_edges() || !(a.edges() == c.edges()));
}

TEST(Kernels, LayeredRandomEveryLaterNodeHasInput) {
  Rng rng(9);
  const hls::Dfg g = layered_random(rng, 5, 4, 0.2, 0.2);
  EXPECT_TRUE(g.is_dag());
  // Nodes beyond layer 0 are guaranteed at least one fanin.
  for (int i = 4; i < g.num_nodes(); ++i)
    EXPECT_FALSE(g.fanin(i).empty()) << "node " << i;
}

}  // namespace
}  // namespace cgraf::workloads
