#include "workloads/suite.h"

#include <gtest/gtest.h>

#include <set>

#include "cgrra/stress.h"
#include "timing/sta.h"

namespace cgraf::workloads {
namespace {

TEST(Suite, TwentySevenSpecsCoverTheGrid) {
  const auto specs = table1_specs(false);
  ASSERT_EQ(specs.size(), 27u);
  std::set<std::tuple<int, int, UsageBand>> combos;
  std::set<std::string> names;
  for (const auto& s : specs) {
    combos.insert({s.contexts, s.fabric_dim, s.band});
    names.insert(s.name);
    EXPECT_GT(s.usage, 0.0);
    EXPECT_LT(s.usage, 1.0);
  }
  EXPECT_EQ(combos.size(), 27u);  // full 3x3x3 grid, no duplicates
  EXPECT_EQ(names.size(), 27u);
  EXPECT_EQ(specs.front().name, "B1");
  EXPECT_EQ(specs.back().name, "B27");
}

TEST(Suite, PaperScaleUsesPaperFabrics) {
  std::set<int> dims_default, dims_paper;
  for (const auto& s : table1_specs(false)) dims_default.insert(s.fabric_dim);
  for (const auto& s : table1_specs(true)) dims_paper.insert(s.fabric_dim);
  EXPECT_EQ(dims_default, (std::set<int>{4, 6, 8}));
  EXPECT_EQ(dims_paper, (std::set<int>{4, 8, 16}));
}

TEST(Suite, UsageBandsAreOrdered) {
  const auto specs = table1_specs(false);
  double low = 0, med = 0, high = 0;
  for (const auto& s : specs) {
    if (s.band == UsageBand::kLow) low += s.usage;
    if (s.band == UsageBand::kMedium) med += s.usage;
    if (s.band == UsageBand::kHigh) high += s.usage;
  }
  EXPECT_LT(low, med);
  EXPECT_LT(med, high);
}

TEST(Suite, GeneratedBenchmarkMatchesSpec) {
  const auto specs = table1_specs(false);
  const auto bench = generate_benchmark(specs[0]);  // B1: 4 ctx, 4x4, low
  EXPECT_EQ(bench.design.num_contexts, 4);
  EXPECT_EQ(bench.design.fabric.num_pes(), 16);
  EXPECT_EQ(bench.total_ops, bench.design.num_ops());
  // Total ops near usage * contexts * pes (10% per-context jitter).
  const double expected = specs[0].usage * 4 * 16;
  EXPECT_NEAR(bench.total_ops, expected, 0.25 * expected + 4);
  std::string why;
  EXPECT_TRUE(is_valid(bench.design, bench.baseline, &why)) << why;
}

TEST(Suite, GenerationIsDeterministic) {
  const auto specs = table1_specs(false);
  const auto a = generate_benchmark(specs[4]);
  const auto b = generate_benchmark(specs[4]);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.baseline.op_to_pe, b.baseline.op_to_pe);
}

TEST(Suite, DirectGeneratorHonoursPerContextCounts) {
  Rng rng(3);
  const Fabric fabric(4, 4);
  const std::vector<int> want{3, 7, 1, 12};
  const Design d = generate_multicontext_design(fabric, 4, want, rng);
  const auto by = d.ops_by_context();
  for (int c = 0; c < 4; ++c)
    EXPECT_EQ(static_cast<int>(by[static_cast<size_t>(c)].size()),
              want[static_cast<size_t>(c)]);
}

TEST(Suite, GeneratedChainsFitTheClockAfterPlacement) {
  // The generator's chain budget + the placer must together meet timing.
  for (int idx : {0, 1, 3, 4}) {
    const auto bench = generate_benchmark(table1_specs(false)[static_cast<size_t>(idx)]);
    const auto sta = timing::run_sta(bench.design, bench.baseline);
    EXPECT_LE(sta.cpd_ns, bench.design.fabric.clock_period_ns() + 1e-9)
        << "benchmark index " << idx;
  }
}

TEST(Suite, CrossContextEdgesExist) {
  const auto bench = generate_benchmark(table1_specs(false)[9]);
  int cross = 0, comb = 0;
  for (const Edge& e : bench.design.edges)
    (bench.design.same_context(e) ? comb : cross) += 1;
  EXPECT_GT(cross, 0);
  EXPECT_GT(comb, 0);
}

}  // namespace
}  // namespace cgraf::workloads
