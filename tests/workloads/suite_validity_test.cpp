// Every (small/medium fabric) Table-I spec must generate a structurally
// valid, timing-clean benchmark. Parameterized across the suite.
#include <gtest/gtest.h>

#include "cgrra/stress.h"
#include "timing/sta.h"
#include "workloads/suite.h"

namespace cgraf::workloads {
namespace {

class SuiteValidity : public ::testing::TestWithParam<int> {};

TEST_P(SuiteValidity, GeneratesValidTimedBenchmarks) {
  const auto specs = table1_specs(false);
  const auto& spec = specs[static_cast<std::size_t>(GetParam())];
  if (spec.fabric_dim > 6) GTEST_SKIP() << "kept fast; 8x8 covered elsewhere";
  const auto bench = generate_benchmark(spec);

  std::string why;
  ASSERT_TRUE(is_valid(bench.design, bench.baseline, &why))
      << spec.name << ": " << why;

  // Op counts respect both the usage target and the per-context cap.
  const auto by_context = bench.design.ops_by_context();
  ASSERT_EQ(static_cast<int>(by_context.size()), spec.contexts);
  for (const auto& ops : by_context) {
    EXPECT_GE(static_cast<int>(ops.size()), 1);
    EXPECT_LE(static_cast<int>(ops.size()),
              bench.design.fabric.num_pes());
  }

  // The baseline meets the clock (the paper's aging-unaware flow does).
  const auto sta = timing::run_sta(bench.design, bench.baseline);
  EXPECT_LE(sta.cpd_ns, bench.design.fabric.clock_period_ns() + 1e-9)
      << spec.name;

  // Stress sanity: total stress equals the sum of per-op stress.
  const StressMap stress = compute_stress(bench.design, bench.baseline);
  double total = 0.0;
  for (const double v : stress.accumulated) total += v;
  double expected = 0.0;
  for (const Operation& op : bench.design.ops)
    expected += op_stress(op, bench.design.fabric);
  EXPECT_NEAR(total, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, SuiteValidity, ::testing::Range(0, 27));

}  // namespace
}  // namespace cgraf::workloads
