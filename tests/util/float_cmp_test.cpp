#include "util/float_cmp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cgraf::util {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(FloatCmp, NearZero) {
  EXPECT_TRUE(near_zero(0.0));
  EXPECT_TRUE(near_zero(-0.0));
  EXPECT_TRUE(near_zero(5e-10));
  EXPECT_TRUE(near_zero(-5e-10));
  EXPECT_FALSE(near_zero(2e-9));
  EXPECT_FALSE(near_zero(1.0));
  EXPECT_TRUE(near_zero(0.5, 0.5));
  EXPECT_FALSE(near_zero(kNan));
  EXPECT_FALSE(near_zero(kInf));
}

TEST(FloatCmp, ApproxEqAbsoluteWindow) {
  EXPECT_TRUE(approx_eq(1.0, 1.0));
  EXPECT_TRUE(approx_eq(0.0, 5e-10));
  EXPECT_FALSE(approx_eq(0.0, 1e-6));
  EXPECT_TRUE(approx_eq(0.0, 1e-6, 1e-5));
}

TEST(FloatCmp, ApproxEqRelativeWindow) {
  // 1e12 vs 1e12 + 1: far outside the absolute floor, inside the relative
  // term (rel_tol * 1e12 = 1e3).
  EXPECT_TRUE(approx_eq(1e12, 1e12 + 1.0));
  EXPECT_FALSE(approx_eq(1e12, 1e12 + 1e5));
  // Accumulated rounding on a sum that is exactly 1 in real arithmetic.
  double sum = 0.0;
  for (int i = 0; i < 10; ++i) sum += 0.1;
  EXPECT_TRUE(approx_eq(sum, 1.0));
  EXPECT_TRUE(sum != 1.0);  // ...which raw == gets wrong
}

TEST(FloatCmp, ApproxEqSpecials) {
  EXPECT_TRUE(approx_eq(kInf, kInf));
  EXPECT_TRUE(approx_eq(-kInf, -kInf));
  EXPECT_FALSE(approx_eq(kInf, -kInf));
  EXPECT_FALSE(approx_eq(kInf, 1e308));
  EXPECT_FALSE(approx_eq(kNan, kNan));
  EXPECT_FALSE(approx_eq(kNan, 0.0));
  // Huge-magnitude operands must not overflow the relative term into a
  // spurious match.
  EXPECT_FALSE(approx_eq(1e308, -1e308));
}

TEST(FloatCmp, ApproxNeMirrorsApproxEq) {
  EXPECT_FALSE(approx_ne(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_ne(1.0, 1.001));
  EXPECT_TRUE(approx_ne(kNan, kNan));
}

TEST(FloatCmp, ExactCompareIsBitExact) {
  EXPECT_TRUE(exact_eq(1.0, 1.0));
  EXPECT_FALSE(exact_eq(1.0, 1.0 + 1e-15));
  EXPECT_TRUE(exact_ne(1.0, std::nextafter(1.0, 2.0)));
  EXPECT_TRUE(exact_eq(kInf, kInf));
  EXPECT_FALSE(exact_eq(kNan, kNan));
}

}  // namespace
}  // namespace cgraf::util
