#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace cgraf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 1u);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(13), 13u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int v = r.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleIsUniformish) {
  Rng r(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(9);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(123);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cgraf
