#include "util/geometry.h"

#include <gtest/gtest.h>

namespace cgraf {
namespace {

TEST(Point, ArithmeticAndComparison) {
  const Point a{1, 2};
  const Point b{3, -1};
  EXPECT_EQ(a + b, (Point{4, 1}));
  EXPECT_EQ(a - b, (Point{-2, 3}));
  EXPECT_EQ(a, (Point{1, 2}));
  EXPECT_NE(a, b);
}

TEST(Manhattan, BasicDistances) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-2, 1}, {2, -1}), 6);
}

TEST(Manhattan, TriangleInequality) {
  const Point pts[] = {{0, 0}, {5, 2}, {-3, 7}, {1, 1}, {9, -4}};
  for (const Point a : pts)
    for (const Point b : pts)
      for (const Point c : pts)
        EXPECT_LE(manhattan(a, c), manhattan(a, b) + manhattan(b, c));
}

TEST(Rect, EmptyByDefault) {
  const Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.width(), 0);
  EXPECT_EQ(r.height(), 0);
  EXPECT_EQ(r.area(), 0);
  EXPECT_FALSE(r.contains({0, 0}));
}

TEST(Rect, ExpandGrowsToCover) {
  Rect r;
  r.expand({2, 3});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.area(), 1);
  EXPECT_TRUE(r.contains({2, 3}));

  r.expand({5, 1});
  EXPECT_EQ(r.x0, 2);
  EXPECT_EQ(r.x1, 5);
  EXPECT_EQ(r.y0, 1);
  EXPECT_EQ(r.y1, 3);
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 3);
  EXPECT_EQ(r.area(), 12);
  EXPECT_TRUE(r.contains({3, 2}));
  EXPECT_FALSE(r.contains({6, 2}));
}

TEST(Rect, ExpandIsIdempotentForInteriorPoints) {
  Rect r;
  r.expand({0, 0});
  r.expand({4, 4});
  const Rect snapshot = r;
  r.expand({2, 2});
  EXPECT_EQ(r, snapshot);
}

}  // namespace
}  // namespace cgraf
