#include "util/ascii.h"

#include <gtest/gtest.h>

namespace cgraf {
namespace {

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Every rendered line has the same width (alignment invariant).
  std::size_t line_len = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (line_len == 0) line_len = len;
    EXPECT_EQ(len, line_len);
    start = end + 1;
  }
}

TEST(AsciiTable, SeparatorAddsRule) {
  AsciiTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // 3 rules around header/body + 1 separator = at least 4 '+--' lines.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       pos += 2)
    ++rules;
  EXPECT_GE(rules, 4);
}

TEST(HeatMap, ZeroIsBlankAndMaxIsDarkest) {
  const std::string out = render_heat_map({0.0, 1.0, 0.5, 0.25}, 2, 2);
  EXPECT_EQ(out[0], ' ');   // zero cell
  EXPECT_EQ(out[2], '@');   // max cell
  EXPECT_NE(out.find("legend:"), std::string::npos);
}

TEST(HeatMap, ExternalScaleCapsShading) {
  // With scale_max = 2.0 the value 1.0 sits mid-ramp, not at '@'.
  const std::string out = render_heat_map({1.0}, 1, 1, 2.0);
  EXPECT_NE(out[0], '@');
  EXPECT_NE(out[0], ' ');
}

}  // namespace
}  // namespace cgraf
