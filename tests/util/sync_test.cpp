// The annotated sync layer (util/sync.h): lock-order detector, contention
// counters, condition-variable bookkeeping and registry aggregation.
#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace cgraf {
namespace {

// Forces a known detector state for one test and restores the previous
// one, so release builds (detector off by default) and debug builds
// (default on) see the same behaviour.
class ScopedDetection {
 public:
  explicit ScopedDetection(bool on) : prev_(deadlock_detection_enabled()) {
    set_deadlock_detection(on);
  }
  ~ScopedDetection() { set_deadlock_detection(prev_); }

 private:
  bool prev_;
};

TEST(Sync, ConsistentRankOrderPasses) {
  ScopedDetection detect(true);
  Mutex low("test.sync.order_low", 1);
  Mutex high("test.sync.order_high", 2);
  for (int i = 0; i < 100; ++i) {
    MutexLock a(&low);
    MutexLock b(&high);  // increasing rank: fine, every iteration
  }
  EXPECT_EQ(low.stats().acquisitions, 100);
  EXPECT_EQ(high.stats().acquisitions, 100);
  EXPECT_EQ(low.stats().contended, 0);
}

TEST(Sync, OutOfOrderReleaseKeepsStackConsistent) {
  ScopedDetection detect(true);
  Mutex low("test.sync.rel_low", 1);
  Mutex mid("test.sync.rel_mid", 2);
  Mutex high("test.sync.rel_high", 3);
  MutexLock a(&low);
  MutexLock b(&mid);
  a.unlock();  // releasing the bottom of the stack first is legal
  MutexLock c(&high);  // rank 3 vs held {2}: still increasing
  EXPECT_EQ(high.stats().acquisitions, 1);
}

TEST(Sync, RelockAfterReleaseIsCheckedAgainstHeldLocks) {
  ScopedDetection detect(true);
  Mutex low("test.sync.relock_low", 1);
  Mutex high("test.sync.relock_high", 2);
  MutexLock a(&low);
  a.unlock();
  {
    MutexLock b(&high);
    b.unlock();
  }
  a.lock();  // nothing held: fine at any rank
}

TEST(SyncDeathTest, RankInversionAborts) {
  ScopedDetection detect(true);
  Mutex low("test.sync.death_low", 3);
  Mutex high("test.sync.death_high", 7);
  MutexLock h(&high);
  EXPECT_DEATH({ MutexLock l(&low); }, "lock-order violation");
}

TEST(SyncDeathTest, EqualRankAborts) {
  ScopedDetection detect(true);
  Mutex a("test.sync.death_eq_a", 5);
  Mutex b("test.sync.death_eq_b", 5);
  MutexLock la(&a);
  EXPECT_DEATH({ MutexLock lb(&b); }, "lock-order violation");
}

TEST(Sync, DetectionOffToleratesInversion) {
  ScopedDetection detect(false);
  Mutex low("test.sync.off_low", 1);
  Mutex high("test.sync.off_high", 2);
  MutexLock h(&high);
  MutexLock l(&low);  // would abort with detection on; must pass when off
  EXPECT_EQ(low.stats().acquisitions, 1);
}

TEST(Sync, ContentionCountersTrackBlocking) {
  Mutex mu("test.sync.contended", 1);
  std::thread blocked;
  {
    MutexLock lk(&mu);
    blocked = std::thread([&mu] { MutexLock inner(&mu); });
    // The blocked thread increments `contended` before sleeping on the
    // lock, so waiting for the counter is race-free.
    while (mu.stats().contended < 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  blocked.join();
  const MutexStats s = mu.stats();
  EXPECT_EQ(s.acquisitions, 2);
  EXPECT_EQ(s.contended, 1);
  EXPECT_GT(s.wait_seconds, 0.0);
}

TEST(Sync, TryLockNeverBlocksAndCounts) {
  Mutex mu("test.sync.trylock", 1);
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&mu] {
    EXPECT_FALSE(mu.try_lock());  // held by the main thread
  });
  other.join();
  mu.unlock();
  EXPECT_EQ(mu.stats().acquisitions, 1);  // the failed attempt is not one
  EXPECT_EQ(mu.stats().contended, 0);
}

TEST(Sync, CondVarWakesWaiterAndKeepsCounts) {
  Mutex mu("test.sync.cv", 1);
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lk(&mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lk(&mu);
    while (!ready) cv.wait(mu);
  }
  producer.join();
  // Initial lock()s from both threads plus one reacquisition per wait;
  // at least the two lock()s must be there.
  EXPECT_GE(mu.stats().acquisitions, 2);
}

TEST(Sync, CondVarWaitReleasesForOtherThreads) {
  ScopedDetection detect(true);
  Mutex mu("test.sync.cv_release", 1);
  CondVar cv;
  int stage = 0;
  std::thread worker([&] {
    MutexLock lk(&mu);
    stage = 1;
    cv.notify_all();
    while (stage != 2) cv.wait(mu);  // must release mu while waiting
    stage = 3;
    cv.notify_all();
  });
  {
    MutexLock lk(&mu);
    while (stage != 1) cv.wait(mu);
    stage = 2;
    cv.notify_all();
    while (stage != 3) cv.wait(mu);
  }
  worker.join();
  EXPECT_EQ(stage, 3);
}

TEST(Sync, RegistryAggregatesLiveAndRetiredByName) {
  // Two successive instances under one name, like the per-solve B&B lock.
  {
    Mutex m("test.sync.registry", 1);
    MutexLock lk(&m);
  }
  {
    Mutex m("test.sync.registry", 1);
    { MutexLock lk(&m); }
    { MutexLock lk(&m); }
  }
  Mutex live("test.sync.registry", 1);
  { MutexLock lk(&live); }
  const auto stats = sync_mutex_stats();
  ASSERT_TRUE(stats.count("test.sync.registry"));
  EXPECT_EQ(stats.at("test.sync.registry").acquisitions, 4);
}

TEST(Sync, StressManyThreadsOneMutex) {
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  Mutex mu("test.sync.stress", 1);
  long total = 0;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lk(&mu);
        ++total;
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(total, static_cast<long>(kThreads) * kIters);
  EXPECT_EQ(mu.stats().acquisitions, static_cast<long>(kThreads) * kIters);
  EXPECT_GE(mu.stats().wait_seconds, 0.0);
}

}  // namespace
}  // namespace cgraf
