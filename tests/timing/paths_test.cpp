#include "timing/paths.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "workloads/suite.h"

namespace cgraf::timing {
namespace {

Design diamond_design() {
  // 0 -> {1, 2} -> 3 in one context: exactly two source-to-sink paths.
  Design d{Fabric(4, 4, 5.0, 0.1), 1, {}, {}};
  const OpKind kinds[] = {OpKind::kAdd, OpKind::kAdd, OpKind::kMux,
                          OpKind::kAdd};
  for (int i = 0; i < 4; ++i) {
    Operation op;
    op.id = i;
    op.kind = kinds[i];
    op.context = 0;
    d.ops.push_back(op);
  }
  d.edges.push_back({0, 1});
  d.edges.push_back({0, 2});
  d.edges.push_back({1, 3});
  d.edges.push_back({2, 3});
  return d;
}

TEST(Paths, EnumeratesAllPathsWithFullMargin) {
  const Design d = diamond_design();
  const CombGraph g(d);
  const Floorplan fp{{0, 1, 4, 5}};
  PathQuery q;
  q.margin = 0.99;  // keep everything
  const auto paths = monitored_paths(g, fp, q);
  EXPECT_EQ(paths.size(), 2u);
  // Longest first; the DMU branch dominates.
  EXPECT_EQ(paths[0].ops, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(paths[1].ops, (std::vector<int>{0, 1, 3}));
  EXPECT_GE(paths[0].delay_ns, paths[1].delay_ns);
}

TEST(Paths, MarginFiltersShortPaths) {
  const Design d = diamond_design();
  const CombGraph g(d);
  const Floorplan fp{{0, 1, 4, 5}};
  PathQuery q;
  q.margin = 0.10;  // the ALU-branch path is far below 90% of CPD
  const auto paths = monitored_paths(g, fp, q);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].ops, (std::vector<int>{0, 2, 3}));
}

TEST(Paths, DelayAndPeDelayAreConsistent) {
  const Design d = diamond_design();
  const CombGraph g(d);
  const Floorplan fp{{0, 1, 4, 5}};
  PathQuery q;
  q.margin = 0.99;
  for (const TimingPath& p : monitored_paths(g, fp, q)) {
    EXPECT_NEAR(p.delay_ns, path_delay_ns(d, fp, p), 1e-9);
    EXPECT_LE(p.pe_delay_ns, p.delay_ns + 1e-12);
  }
}

TEST(Paths, MaxPathsCapKeepsLongest) {
  const Design d = diamond_design();
  const CombGraph g(d);
  const Floorplan fp{{0, 1, 4, 5}};
  PathQuery q;
  q.margin = 0.99;
  q.max_paths = 1;
  const auto paths = monitored_paths(g, fp, q);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].ops, (std::vector<int>{0, 2, 3}));
}

TEST(Paths, CriticalPathsAchieveContextCpd) {
  const Design d = diamond_design();
  const CombGraph g(d);
  const Floorplan fp{{0, 1, 4, 5}};
  const StaResult sta = run_sta(g, fp);
  const auto cps = critical_paths(g, fp, 0);
  ASSERT_FALSE(cps.empty());
  for (const TimingPath& p : cps)
    EXPECT_NEAR(p.delay_ns, sta.context_cpd_ns[0], 1e-9);
}

TEST(Paths, IsolatedOpFormsItsOwnPath) {
  Design d{Fabric(2, 2), 1, {}, {}};
  Operation op;
  op.id = 0;
  op.kind = OpKind::kCmp;
  op.context = 0;
  d.ops.push_back(op);
  const CombGraph g(d);
  const auto cps = critical_paths(g, Floorplan{{0}}, 0);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0].ops, std::vector<int>{0});
}

// Brute-force DFS enumeration for cross-checking on generated designs.
void all_paths_dfs(const CombGraph& g, const Floorplan& fp, int u,
                   std::vector<int>& cur, std::vector<TimingPath>& out) {
  cur.push_back(u);
  if (g.fanout[static_cast<size_t>(u)].empty()) {
    TimingPath p;
    p.context = g.design->ops[static_cast<size_t>(u)].context;
    p.ops = cur;
    p.delay_ns = path_delay_ns(*g.design, fp, p);
    out.push_back(std::move(p));
  } else {
    for (const int v : g.fanout[static_cast<size_t>(u)])
      all_paths_dfs(g, fp, v, cur, out);
  }
  cur.pop_back();
}

class PathsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PathsPropertyTest, MatchesBruteForceOnGeneratedDesigns) {
  Rng rng(77 + static_cast<std::uint64_t>(GetParam()));
  const Fabric fabric(4, 4);
  const std::vector<int> per_ctx{6, 6, 6, 6};
  const Design d =
      workloads::generate_multicontext_design(fabric, 4, per_ctx, rng);
  hls::PlacerOptions popts;
  popts.seed = 11 + static_cast<std::uint64_t>(GetParam());
  popts.moves_per_op = 60;
  const Floorplan fp = place_baseline(d, popts);
  const CombGraph g(d);

  std::vector<TimingPath> brute;
  std::vector<int> cur;
  for (int u = 0; u < d.num_ops(); ++u)
    if (g.fanin[static_cast<size_t>(u)].empty())
      all_paths_dfs(g, fp, u, cur, brute);

  const StaResult sta = run_sta(g, fp);
  const double threshold = 0.8 * sta.cpd_ns;
  std::multiset<double> expected;
  for (const auto& p : brute)
    if (p.delay_ns >= threshold - 1e-9) expected.insert(p.delay_ns);

  PathQuery q;  // default margin 0.2
  q.max_paths = 100000;
  const auto got = monitored_paths(g, fp, q);
  ASSERT_EQ(got.size(), expected.size());
  // Non-increasing order and the same delay multiset.
  std::multiset<double> got_delays;
  for (size_t i = 0; i < got.size(); ++i) {
    got_delays.insert(got[i].delay_ns);
    if (i > 0) {
      EXPECT_LE(got[i].delay_ns, got[i - 1].delay_ns + 1e-9);
    }
  }
  auto it = expected.begin();
  for (const double dly : got_delays) {
    EXPECT_NEAR(dly, *it, 1e-9);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathsPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace cgraf::timing
