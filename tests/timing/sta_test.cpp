#include "timing/sta.h"

#include <gtest/gtest.h>

namespace cgraf::timing {
namespace {

// Chain of three 32-bit adders in context 0 on a 4x4 fabric.
Design chain_design() {
  Design d{Fabric(4, 4, 5.0, 0.2), 1, {}, {}};
  for (int i = 0; i < 3; ++i) {
    Operation op;
    op.id = i;
    op.kind = OpKind::kAdd;
    op.context = 0;
    d.ops.push_back(op);
  }
  d.edges.push_back({0, 1});
  d.edges.push_back({1, 2});
  return d;
}

TEST(Sta, SingleOpDelay) {
  Design d{Fabric(4, 4), 1, {}, {}};
  Operation op;
  op.id = 0;
  op.kind = OpKind::kMux;
  op.context = 0;
  d.ops.push_back(op);
  const StaResult r = run_sta(d, Floorplan{{0}});
  EXPECT_NEAR(r.cpd_ns, 3.14, 1e-12);
}

TEST(Sta, ChainDelayIncludesWires) {
  const Design d = chain_design();
  // Adjacent placements: ops at (0,0), (1,0), (2,0): 2 wires of length 1.
  const StaResult r = run_sta(d, Floorplan{{0, 1, 2}});
  EXPECT_NEAR(r.cpd_ns, 3 * 0.87 + 2 * 0.2, 1e-9);
}

TEST(Sta, LongerWiresIncreaseCpd) {
  const Design d = chain_design();
  const StaResult near = run_sta(d, Floorplan{{0, 1, 2}});
  const StaResult far = run_sta(d, Floorplan{{0, 3, 15}});
  EXPECT_GT(far.cpd_ns, near.cpd_ns);
}

TEST(Sta, CpdIsMaxOverContexts) {
  Design d{Fabric(4, 4), 2, {}, {}};
  Operation a;
  a.id = 0;
  a.kind = OpKind::kAdd;  // 0.87
  a.context = 0;
  Operation b;
  b.id = 1;
  b.kind = OpKind::kShuffle;  // 3.14
  b.context = 1;
  d.ops = {a, b};
  const StaResult r = run_sta(d, Floorplan{{0, 0}});
  EXPECT_NEAR(r.context_cpd_ns[0], 0.87, 1e-12);
  EXPECT_NEAR(r.context_cpd_ns[1], 3.14, 1e-12);
  EXPECT_NEAR(r.cpd_ns, 3.14, 1e-12);
}

TEST(Sta, CrossContextEdgesAreRegisteredNotChained) {
  Design d{Fabric(4, 4, 5.0, 0.2), 2, {}, {}};
  Operation a;
  a.id = 0;
  a.kind = OpKind::kAdd;
  a.context = 0;
  Operation b;
  b.id = 1;
  b.kind = OpKind::kAdd;
  b.context = 1;
  d.ops = {a, b};
  d.edges.push_back({0, 1});  // crosses contexts: no combinational path
  const StaResult r = run_sta(d, Floorplan{{0, 15}});
  EXPECT_NEAR(r.cpd_ns, 0.87, 1e-12);  // not 2*0.87 + wire
}

TEST(Sta, ReconvergentFanoutTakesWorstBranch) {
  // 0 -> {1, 2} -> 3, with op2 a slow DMU.
  Design d{Fabric(4, 4, 5.0, 0.1), 1, {}, {}};
  const OpKind kinds[] = {OpKind::kAdd, OpKind::kAdd, OpKind::kMux,
                          OpKind::kAdd};
  for (int i = 0; i < 4; ++i) {
    Operation op;
    op.id = i;
    op.kind = kinds[i];
    op.context = 0;
    d.ops.push_back(op);
  }
  d.edges.push_back({0, 1});
  d.edges.push_back({0, 2});
  d.edges.push_back({1, 3});
  d.edges.push_back({2, 3});
  // Square placement: all wires length 1.
  const StaResult r = run_sta(d, Floorplan{{0, 1, 4, 5}});
  EXPECT_NEAR(r.cpd_ns, 0.87 + 0.1 + 3.14 + 0.1 + 0.87, 1e-9);
}

TEST(Sta, PathDelayMatchesStaOnCriticalChain) {
  const Design d = chain_design();
  const Floorplan fp{{0, 5, 10}};
  TimingPath path;
  path.context = 0;
  path.ops = {0, 1, 2};
  const StaResult r = run_sta(d, fp);
  EXPECT_NEAR(path_delay_ns(d, fp, path), r.cpd_ns, 1e-9);
}

TEST(Sta, CombGraphTopoCoversAllOps) {
  const Design d = chain_design();
  const CombGraph g(d);
  EXPECT_EQ(g.topo.size(), 3u);
  EXPECT_EQ(g.fanout[0].size(), 1u);
  EXPECT_EQ(g.fanin[2].size(), 1u);
}

}  // namespace
}  // namespace cgraf::timing
