// Property: the STA's CPD equals the delay of the longest enumerated path,
// on randomized generated designs and floorplans.
#include <gtest/gtest.h>

#include "timing/paths.h"
#include "util/rng.h"
#include "workloads/suite.h"

namespace cgraf::timing {
namespace {

class StaProperty : public ::testing::TestWithParam<int> {};

TEST_P(StaProperty, CpdMatchesLongestEnumeratedPath) {
  Rng rng(900 + static_cast<std::uint64_t>(GetParam()));
  const Fabric fabric(5, 5);
  std::vector<int> per_context;
  const int contexts = 2 + static_cast<int>(rng.next_below(4));
  for (int c = 0; c < contexts; ++c)
    per_context.push_back(3 + static_cast<int>(rng.next_below(10)));
  const Design design = workloads::generate_multicontext_design(
      fabric, contexts, per_context, rng);

  // A random (valid) floorplan, not a placed one: STA must not care.
  Floorplan fp;
  fp.op_to_pe.assign(design.ops.size(), -1);
  const auto by_context = design.ops_by_context();
  for (const auto& ops : by_context) {
    std::vector<int> pes(static_cast<std::size_t>(fabric.num_pes()));
    for (int i = 0; i < fabric.num_pes(); ++i) pes[static_cast<std::size_t>(i)] = i;
    rng.shuffle(pes);
    for (std::size_t i = 0; i < ops.size(); ++i)
      fp.op_to_pe[static_cast<std::size_t>(ops[i])] = pes[i];
  }
  std::string why;
  ASSERT_TRUE(is_valid(design, fp, &why)) << why;

  const CombGraph graph(design);
  const StaResult sta = run_sta(graph, fp);

  PathQuery q;
  q.margin = 0.0;  // only paths achieving the CPD
  q.max_paths = 4;
  const auto longest = monitored_paths(graph, fp, q);
  ASSERT_FALSE(longest.empty());
  EXPECT_NEAR(longest.front().delay_ns, sta.cpd_ns, 1e-9);
  // And the per-context CPDs are achieved by that context's critical paths.
  for (int c = 0; c < design.num_contexts; ++c) {
    const auto cps = critical_paths(graph, fp, c, 4);
    if (sta.context_cpd_ns[static_cast<std::size_t>(c)] <= 0.0) continue;
    ASSERT_FALSE(cps.empty()) << "context " << c;
    EXPECT_NEAR(cps.front().delay_ns,
                sta.context_cpd_ns[static_cast<std::size_t>(c)], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace cgraf::timing
