#include "thermal/hotspot_lite.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cgraf::thermal {
namespace {

TEST(Thermal, IdlePEsSettleAtLeakageTemperature) {
  const Fabric f(4, 4);
  const ThermalParams p;
  const std::vector<double> activity(16, 0.0);
  const auto t = steady_state_temperature(f, activity, p);
  // Uniform power => uniform temperature = ambient + P_leak * R_vertical.
  const double expected = p.ambient_k + p.leak_power_w * p.vertical_resistance;
  for (const double ti : t) EXPECT_NEAR(ti, expected, 1e-4);
}

TEST(Thermal, UniformActivityIsUniform) {
  const Fabric f(5, 5);
  const std::vector<double> activity(25, 0.7);
  const auto t = steady_state_temperature(f, activity);
  const double t0 = t[0];
  for (const double ti : t) EXPECT_NEAR(ti, t0, 1e-4);
}

TEST(Thermal, HotSpotIsAtTheActivePe) {
  const Fabric f(5, 5);
  std::vector<double> activity(25, 0.0);
  activity[12] = 1.0;  // center PE
  const auto t = steady_state_temperature(f, activity);
  const auto hottest = std::max_element(t.begin(), t.end()) - t.begin();
  EXPECT_EQ(hottest, 12);
}

TEST(Thermal, LateralSpreadingWarmsNeighbours) {
  const Fabric f(5, 5);
  std::vector<double> activity(25, 0.0);
  activity[12] = 1.0;
  ThermalParams p;
  const auto t = steady_state_temperature(f, activity, p);
  const double idle = p.ambient_k + p.leak_power_w * p.vertical_resistance;
  EXPECT_GT(t[11], idle + 1e-3);          // direct neighbour
  EXPECT_GT(t[11], t[10]);                // closer is hotter
  EXPECT_GT(t[10], t[0] - 1e-9);          // corner is coolest-ish
}

TEST(Thermal, MorePowerMeansMonotonicallyHotter) {
  const Fabric f(4, 4);
  std::vector<double> lo(16, 0.2), hi(16, 0.2);
  hi[5] = 0.9;
  const auto t_lo = steady_state_temperature(f, lo);
  const auto t_hi = steady_state_temperature(f, hi);
  for (int i = 0; i < 16; ++i)
    EXPECT_GE(t_hi[static_cast<size_t>(i)],
              t_lo[static_cast<size_t>(i)] - 1e-9);
  // 0.7 duty * 0.08 W spread laterally still leaves a clear local rise.
  EXPECT_GT(t_hi[5], t_lo[5] + 0.2);
}

TEST(Thermal, SymmetricInputGivesSymmetricField) {
  const Fabric f(4, 4);
  std::vector<double> activity(16, 0.0);
  activity[5] = activity[6] = activity[9] = activity[10] = 1.0;  // center 2x2
  const auto t = steady_state_temperature(f, activity);
  EXPECT_NEAR(t[0], t[3], 1e-5);
  EXPECT_NEAR(t[0], t[12], 1e-5);
  EXPECT_NEAR(t[0], t[15], 1e-5);
  EXPECT_NEAR(t[5], t[10], 1e-5);
}

TEST(Thermal, SpreadingLoadLowersPeak) {
  const Fabric f(4, 4);
  std::vector<double> packed(16, 0.0), spread(16, 0.0);
  packed[0] = packed[1] = packed[4] = packed[5] = 1.0;
  spread[0] = spread[3] = spread[12] = spread[15] = 1.0;
  const auto tp = steady_state_temperature(f, packed);
  const auto ts = steady_state_temperature(f, spread);
  EXPECT_GT(*std::max_element(tp.begin(), tp.end()),
            *std::max_element(ts.begin(), ts.end()));
}

TEST(Thermal, ZeroLateralConductanceDecouplesPEs) {
  const Fabric f(3, 3);
  ThermalParams p;
  p.lateral_conductance = 0.0;
  std::vector<double> activity(9, 0.0);
  activity[4] = 1.0;
  const auto t = steady_state_temperature(f, activity, p);
  const double idle = p.ambient_k + p.leak_power_w * p.vertical_resistance;
  EXPECT_NEAR(t[0], idle, 1e-6);
  EXPECT_NEAR(t[4],
              p.ambient_k +
                  (p.leak_power_w + p.active_power_w) * p.vertical_resistance,
              1e-6);
}

}  // namespace
}  // namespace cgraf::thermal
