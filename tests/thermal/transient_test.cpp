#include <gtest/gtest.h>

#include <algorithm>

#include "thermal/hotspot_lite.h"

namespace cgraf::thermal {
namespace {

TEST(Transient, ZeroDurationReturnsInitial) {
  const Fabric f(3, 3);
  const std::vector<double> activity(9, 0.5);
  const std::vector<double> initial(9, 333.0);
  const auto t =
      transient_temperature(f, activity, 0.0, {}, {}, &initial);
  EXPECT_EQ(t, initial);
}

TEST(Transient, StartsAtAmbientByDefault) {
  const Fabric f(3, 3);
  ThermalParams p;
  const std::vector<double> activity(9, 1.0);
  // One tiny step: temperatures barely above ambient.
  const auto t = transient_temperature(f, activity, 1e-6, p);
  for (const double ti : t) {
    EXPECT_GT(ti, p.ambient_k);
    EXPECT_LT(ti, p.ambient_k + 0.01);
  }
}

TEST(Transient, ConvergesToSteadyState) {
  const Fabric f(4, 4);
  ThermalParams p;
  std::vector<double> activity(16, 0.0);
  activity[5] = 1.0;
  activity[10] = 0.6;
  const auto steady = steady_state_temperature(f, activity, p);
  // The slowest (uniform) mode decays with tau = C * R_vertical = 9 s;
  // integrate ~8 of those.
  const auto transient = transient_temperature(f, activity, 75.0, p);
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(transient[static_cast<size_t>(i)],
                steady[static_cast<size_t>(i)], 0.01)
        << "PE " << i;
  }
}

TEST(Transient, SteadyStateIsAFixedPoint) {
  const Fabric f(3, 3);
  ThermalParams p;
  std::vector<double> activity(9, 0.0);
  activity[4] = 0.8;
  const auto steady = steady_state_temperature(f, activity, p);
  const auto after =
      transient_temperature(f, activity, 1.0, p, {}, &steady);
  for (int i = 0; i < 9; ++i)
    EXPECT_NEAR(after[static_cast<size_t>(i)], steady[static_cast<size_t>(i)],
                5e-3);
}

TEST(Transient, MonotoneWarmupFromAmbient) {
  const Fabric f(3, 3);
  ThermalParams p;
  std::vector<double> activity(9, 0.7);
  const auto t1 = transient_temperature(f, activity, 0.05, p);
  const auto t2 = transient_temperature(f, activity, 0.2, p);
  const auto t3 = transient_temperature(f, activity, 1.0, p);
  for (int i = 0; i < 9; ++i) {
    EXPECT_LE(t1[static_cast<size_t>(i)], t2[static_cast<size_t>(i)] + 1e-9);
    EXPECT_LE(t2[static_cast<size_t>(i)], t3[static_cast<size_t>(i)] + 1e-9);
  }
}

TEST(Transient, CooldownAfterReconfiguration) {
  // Hot floorplan switched to an idle configuration: temperatures decay
  // toward the idle steady state, never below it.
  const Fabric f(3, 3);
  ThermalParams p;
  std::vector<double> busy(9, 1.0);
  std::vector<double> idle(9, 0.0);
  const auto hot = steady_state_temperature(f, busy, p);
  const auto cooled = transient_temperature(f, idle, 0.5, p, {}, &hot);
  const auto idle_steady = steady_state_temperature(f, idle, p);
  for (int i = 0; i < 9; ++i) {
    EXPECT_LT(cooled[static_cast<size_t>(i)], hot[static_cast<size_t>(i)]);
    EXPECT_GT(cooled[static_cast<size_t>(i)],
              idle_steady[static_cast<size_t>(i)] - 1e-6);
  }
}

TEST(Transient, OversizedTimeStepIsClampedForStability) {
  const Fabric f(3, 3);
  ThermalParams p;
  TransientOptions t;
  t.time_step_s = 100.0;  // grossly unstable if taken literally
  std::vector<double> activity(9, 1.0);
  const auto result = transient_temperature(f, activity, 5.0, p, t);
  const auto steady = steady_state_temperature(f, activity, p);
  for (int i = 0; i < 9; ++i) {
    EXPECT_GT(result[static_cast<size_t>(i)], p.ambient_k);
    EXPECT_LT(result[static_cast<size_t>(i)],
              steady[static_cast<size_t>(i)] + 1.0);  // no blow-up
  }
}

}  // namespace
}  // namespace cgraf::thermal
