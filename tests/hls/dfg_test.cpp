#include "hls/dfg.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cgraf::hls {
namespace {

TEST(Dfg, AddNodesAndEdges) {
  Dfg g;
  const int a = g.add_node(OpKind::kAdd, 16, "a");
  const int b = g.add_node(OpKind::kMul, 32, "b");
  g.add_edge(a, b);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.node(a).name, "a");
  EXPECT_EQ(g.node(b).bitwidth, 32);
  ASSERT_EQ(g.fanout(a).size(), 1u);
  EXPECT_EQ(g.fanout(a)[0], b);
  ASSERT_EQ(g.fanin(b).size(), 1u);
  EXPECT_EQ(g.fanin(b)[0], a);
}

TEST(Dfg, TopoOrderRespectsEdges) {
  Dfg g;
  const int n0 = g.add_node(OpKind::kAdd);
  const int n1 = g.add_node(OpKind::kAdd);
  const int n2 = g.add_node(OpKind::kAdd);
  const int n3 = g.add_node(OpKind::kAdd);
  g.add_edge(n2, n1);
  g.add_edge(n1, n0);
  g.add_edge(n2, n3);
  const std::vector<int> topo = g.topo_order();
  ASSERT_EQ(topo.size(), 4u);
  auto pos = [&](int n) {
    return std::find(topo.begin(), topo.end(), n) - topo.begin();
  };
  EXPECT_LT(pos(n2), pos(n1));
  EXPECT_LT(pos(n1), pos(n0));
  EXPECT_LT(pos(n2), pos(n3));
}

TEST(Dfg, IsDagDetectsCycles) {
  Dfg g;
  const int a = g.add_node(OpKind::kAdd);
  const int b = g.add_node(OpKind::kAdd);
  g.add_edge(a, b);
  EXPECT_TRUE(g.is_dag());
  g.add_edge(b, a);
  EXPECT_FALSE(g.is_dag());
}

TEST(Dfg, DepthOfChainAndTree) {
  Dfg chain;
  int prev = chain.add_node(OpKind::kAdd);
  for (int i = 0; i < 4; ++i) {
    const int next = chain.add_node(OpKind::kAdd);
    chain.add_edge(prev, next);
    prev = next;
  }
  EXPECT_EQ(chain.depth(), 5);

  Dfg tree;
  const int l1 = tree.add_node(OpKind::kMul);
  const int l2 = tree.add_node(OpKind::kMul);
  const int root = tree.add_node(OpKind::kAdd);
  tree.add_edge(l1, root);
  tree.add_edge(l2, root);
  EXPECT_EQ(tree.depth(), 2);
}

TEST(Dfg, EmptyGraph) {
  Dfg g;
  EXPECT_EQ(g.depth(), 0);
  EXPECT_TRUE(g.is_dag());
  EXPECT_TRUE(g.topo_order().empty());
}

}  // namespace
}  // namespace cgraf::hls
