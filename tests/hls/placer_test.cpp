#include "hls/placer.h"

#include <gtest/gtest.h>

#include "cgrra/stress.h"
#include "timing/sta.h"
#include "util/rng.h"
#include "workloads/suite.h"

namespace cgraf::hls {
namespace {

workloads::GeneratedBenchmark make_bench(std::uint64_t seed, int contexts = 4,
                                         int dim = 4, double usage = 0.5) {
  workloads::BenchmarkSpec spec;
  spec.name = "t";
  spec.contexts = contexts;
  spec.fabric_dim = dim;
  spec.usage = usage;
  spec.seed = seed;
  return workloads::generate_benchmark(spec);
}

TEST(Placer, ProducesValidFloorplans) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto bench = make_bench(seed);
    std::string why;
    EXPECT_TRUE(is_valid(bench.design, bench.baseline, &why)) << why;
  }
}

TEST(Placer, DeterministicForSameSeed) {
  const auto b1 = make_bench(7);
  const auto b2 = make_bench(7);
  EXPECT_EQ(b1.baseline.op_to_pe, b2.baseline.op_to_pe);
}

TEST(Placer, DifferentSeedsUsuallyDiffer) {
  const auto bench = make_bench(7);
  PlacerOptions a;
  a.seed = 1;
  PlacerOptions b;
  b.seed = 2;
  const Floorplan fa = place_baseline(bench.design, a);
  const Floorplan fb = place_baseline(bench.design, b);
  EXPECT_NE(fa.op_to_pe, fb.op_to_pe);
}

TEST(Placer, MeetsTheClockPeriod) {
  // The scheduler's chain budget leaves wire headroom; the placer must
  // land within the clock.
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const auto bench = make_bench(seed, 8, 6, 0.5);
    const auto sta = timing::run_sta(bench.design, bench.baseline);
    EXPECT_LE(sta.cpd_ns, bench.design.fabric.clock_period_ns() + 1e-9)
        << "seed " << seed;
  }
}

TEST(Placer, PacksTowardTheOrigin) {
  // The aging-unaware objective (bbox + anchor) concentrates usage: the
  // origin-adjacent quadrant must carry more accumulated stress than the
  // far quadrant. This is the behaviour the re-mapper exploits.
  const auto bench = make_bench(21, 4, 6, 0.4);
  const StressMap map = compute_stress(bench.design, bench.baseline);
  const Fabric& f = bench.design.fabric;
  double near = 0.0, far = 0.0;
  for (int pe = 0; pe < f.num_pes(); ++pe) {
    const Point p = f.loc(pe);
    if (p.x < f.cols() / 2 && p.y < f.rows() / 2)
      near += map.accumulated[static_cast<size_t>(pe)];
    else if (p.x >= f.cols() / 2 && p.y >= f.rows() / 2)
      far += map.accumulated[static_cast<size_t>(pe)];
  }
  EXPECT_GT(near, far);
}

TEST(Placer, MoreEffortDoesNotBreakValidity) {
  const auto bench = make_bench(5);
  PlacerOptions o;
  o.moves_per_op = 50;
  const Floorplan cheap = place_baseline(bench.design, o);
  o.moves_per_op = 600;
  const Floorplan thorough = place_baseline(bench.design, o);
  EXPECT_TRUE(is_valid(bench.design, cheap));
  EXPECT_TRUE(is_valid(bench.design, thorough));
}

TEST(Placer, FullFabricContextStillPlaces) {
  // usage 1.0: one context completely fills the fabric.
  workloads::BenchmarkSpec spec;
  spec.contexts = 2;
  spec.fabric_dim = 3;
  spec.usage = 1.0;
  spec.seed = 3;
  const auto bench = workloads::generate_benchmark(spec);
  EXPECT_TRUE(is_valid(bench.design, bench.baseline));
}

}  // namespace
}  // namespace cgraf::hls
