#include "hls/scheduler.h"

#include <gtest/gtest.h>

#include "workloads/kernels.h"

namespace cgraf::hls {
namespace {

ScheduleOptions opts(int contexts, int cap) {
  ScheduleOptions o;
  o.num_contexts = contexts;
  o.max_ops_per_context = cap;
  return o;
}

double chain_budget(const ScheduleOptions& o) {
  return o.chain_budget_frac * o.clock_period_ns;
}

// Checks the structural invariants every legal schedule must satisfy.
void check_schedule(const Dfg& dfg, const ScheduleResult& res,
                    const ScheduleOptions& o) {
  ASSERT_TRUE(res.ok) << res.error;
  std::vector<int> per_context(static_cast<size_t>(o.num_contexts), 0);
  for (int u = 0; u < dfg.num_nodes(); ++u) {
    const int c = res.context_of[static_cast<size_t>(u)];
    ASSERT_GE(c, 0);
    ASSERT_LT(c, o.num_contexts);
    ++per_context[static_cast<size_t>(c)];
  }
  for (const int n : per_context) EXPECT_LE(n, o.max_ops_per_context);
  // Dependences never flow backwards.
  for (const auto& [from, to] : dfg.edges())
    EXPECT_LE(res.context_of[static_cast<size_t>(from)],
              res.context_of[static_cast<size_t>(to)]);
  // Chained (same-context) PE delays fit the budget.
  std::vector<double> chain(static_cast<size_t>(dfg.num_nodes()), 0.0);
  for (const int u : dfg.topo_order()) {
    double in = 0.0;
    for (const int p : dfg.fanin(u)) {
      if (res.context_of[static_cast<size_t>(p)] ==
          res.context_of[static_cast<size_t>(u)])
        in = std::max(in, chain[static_cast<size_t>(p)]);
    }
    Operation op;
    op.kind = dfg.node(u).kind;
    op.bitwidth = dfg.node(u).bitwidth;
    chain[static_cast<size_t>(u)] = in + op_delay_ns(op, o.delays);
    if (in > 0.0) {
      EXPECT_LE(chain[static_cast<size_t>(u)], chain_budget(o) + 1e-9);
    }
  }
}

TEST(Scheduler, IndependentOpsPackIntoOneContext) {
  Dfg g;
  for (int i = 0; i < 5; ++i) g.add_node(OpKind::kAdd);
  const ScheduleOptions o = opts(4, 8);
  const ScheduleResult r = list_schedule(g, o);
  check_schedule(g, r, o);
  EXPECT_EQ(r.contexts_used, 1);
}

TEST(Scheduler, ResourceCapForcesMultipleContexts) {
  Dfg g;
  for (int i = 0; i < 10; ++i) g.add_node(OpKind::kAdd);
  const ScheduleOptions o = opts(4, 4);
  const ScheduleResult r = list_schedule(g, o);
  check_schedule(g, r, o);
  EXPECT_EQ(r.contexts_used, 3);  // ceil(10/4)
}

TEST(Scheduler, ShortChainsAreChainedInOneContext) {
  // Two ALU adds chain well within the budget.
  Dfg g;
  const int a = g.add_node(OpKind::kAdd);
  const int b = g.add_node(OpKind::kAdd);
  g.add_edge(a, b);
  const ScheduleOptions o = opts(4, 8);
  const ScheduleResult r = list_schedule(g, o);
  check_schedule(g, r, o);
  EXPECT_EQ(r.context_of[static_cast<size_t>(a)],
            r.context_of[static_cast<size_t>(b)]);
}

TEST(Scheduler, LongChainsSplitAcrossContexts) {
  // A chain of DMU ops cannot share a cycle (3.14 + 3.14 > budget).
  Dfg g;
  const int a = g.add_node(OpKind::kMux);
  const int b = g.add_node(OpKind::kMux);
  g.add_edge(a, b);
  const ScheduleOptions o = opts(4, 8);
  const ScheduleResult r = list_schedule(g, o);
  check_schedule(g, r, o);
  EXPECT_LT(r.context_of[static_cast<size_t>(a)],
            r.context_of[static_cast<size_t>(b)]);
}

TEST(Scheduler, FailsWhenLatencyTooSmall) {
  Dfg g;
  int prev = g.add_node(OpKind::kMux);
  for (int i = 0; i < 5; ++i) {
    const int next = g.add_node(OpKind::kMux);
    g.add_edge(prev, next);
    prev = next;
  }
  const ScheduleResult r = list_schedule(g, opts(2, 8));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Scheduler, KernelsScheduleCleanly) {
  const Dfg fir = workloads::fir_filter(16, 16);
  const ScheduleOptions o = opts(6, 16);
  check_schedule(fir, list_schedule(fir, o), o);

  const Dfg poly = workloads::horner_poly(8);
  const ScheduleOptions o2 = opts(8, 8);
  check_schedule(poly, list_schedule(poly, o2), o2);
}

TEST(Scheduler, MinContextsIsMinimal) {
  const Dfg fir = workloads::fir_filter(12, 16);
  ScheduleOptions o = opts(1, 8);
  const int mc = min_contexts(fir, o);
  ASSERT_GT(mc, 0);
  o.num_contexts = mc;
  EXPECT_TRUE(list_schedule(fir, o).ok);
  if (mc > 1) {
    o.num_contexts = mc - 1;
    EXPECT_FALSE(list_schedule(fir, o).ok);
  }
}

TEST(Scheduler, BuildDesignCarriesEverythingOver) {
  const Dfg fir = workloads::fir_filter(8, 16);
  const ScheduleOptions o = opts(4, 8);
  const ScheduleResult r = list_schedule(fir, o);
  ASSERT_TRUE(r.ok);
  const Fabric fabric(3, 3);
  const Design d = build_design(fir, r, fabric, 4);
  EXPECT_EQ(d.num_ops(), fir.num_nodes());
  EXPECT_EQ(d.edges.size(), static_cast<size_t>(fir.num_edges()));
  EXPECT_EQ(d.num_contexts, 4);
  for (int u = 0; u < d.num_ops(); ++u) {
    EXPECT_EQ(d.ops[static_cast<size_t>(u)].context,
              r.context_of[static_cast<size_t>(u)]);
    EXPECT_EQ(d.ops[static_cast<size_t>(u)].kind, fir.node(u).kind);
  }
}

TEST(Scheduler, InvalidOptionsReportErrors) {
  Dfg g;
  g.add_node(OpKind::kAdd);
  EXPECT_FALSE(list_schedule(g, opts(0, 4)).ok);
  EXPECT_FALSE(list_schedule(g, opts(4, 0)).ok);
}

}  // namespace
}  // namespace cgraf::hls
