#include "hls/expr_parser.h"

#include <gtest/gtest.h>

namespace cgraf::hls {
namespace {

TEST(ExprParser, SingleBinaryOp) {
  const ParseResult r = parse_kernel("out = a + b;");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dfg.num_nodes(), 1);
  EXPECT_EQ(r.dfg.node(0).kind, OpKind::kAdd);
  EXPECT_EQ(r.dfg.num_edges(), 0);  // both operands are primary inputs
  EXPECT_EQ(r.symbols.at("out"), 0);
}

TEST(ExprParser, PrecedenceMulBeforeAdd) {
  const ParseResult r = parse_kernel("out = a + b * c;");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.dfg.num_nodes(), 2);
  // The multiply feeds the add.
  EXPECT_EQ(r.dfg.node(0).kind, OpKind::kMul);
  EXPECT_EQ(r.dfg.node(1).kind, OpKind::kAdd);
  ASSERT_EQ(r.dfg.num_edges(), 1);
  EXPECT_EQ(r.dfg.edges()[0], std::make_pair(0, 1));
}

TEST(ExprParser, ParenthesesOverridePrecedence) {
  const ParseResult r = parse_kernel("out = (a + b) * c;");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dfg.node(0).kind, OpKind::kAdd);
  EXPECT_EQ(r.dfg.node(1).kind, OpKind::kMul);
}

TEST(ExprParser, NamedValuesAreReused) {
  const ParseResult r = parse_kernel("t = a + b; out = t * t;");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dfg.num_nodes(), 2);
  EXPECT_EQ(r.dfg.num_edges(), 2);  // t feeds the multiply twice... once per operand
}

TEST(ExprParser, AllOperatorsMap) {
  const ParseResult r = parse_kernel(
      "s1 = a - b; s2 = a & b; s3 = a | b; s4 = a ^ b; s5 = a << b;"
      "s6 = a >> b;");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dfg.node(r.symbols.at("s1")).kind, OpKind::kSub);
  EXPECT_EQ(r.dfg.node(r.symbols.at("s2")).kind, OpKind::kAnd);
  EXPECT_EQ(r.dfg.node(r.symbols.at("s3")).kind, OpKind::kOr);
  EXPECT_EQ(r.dfg.node(r.symbols.at("s4")).kind, OpKind::kXor);
  EXPECT_EQ(r.dfg.node(r.symbols.at("s5")).kind, OpKind::kShift);
  EXPECT_EQ(r.dfg.node(r.symbols.at("s6")).kind, OpKind::kShift);
}

TEST(ExprParser, DmuFunctions) {
  const ParseResult r = parse_kernel(
      "m = mux(c, a, b); s = shuffle(a, b); e = extract(a); g = merge(a, b);"
      "q = cmp(a, b);");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dfg.node(r.symbols.at("m")).kind, OpKind::kMux);
  EXPECT_EQ(r.dfg.node(r.symbols.at("s")).kind, OpKind::kShuffle);
  EXPECT_EQ(r.dfg.node(r.symbols.at("e")).kind, OpKind::kExtract);
  EXPECT_EQ(r.dfg.node(r.symbols.at("g")).kind, OpKind::kMerge);
  EXPECT_EQ(r.dfg.node(r.symbols.at("q")).kind, OpKind::kCmp);
}

TEST(ExprParser, WidthDirective) {
  const ParseResult r = parse_kernel("@width 8; x = a + b; @width 32; y = a + b;");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dfg.node(r.symbols.at("x")).bitwidth, 8);
  EXPECT_EQ(r.dfg.node(r.symbols.at("y")).bitwidth, 32);
}

TEST(ExprParser, CommentsAndWhitespace) {
  const ParseResult r = parse_kernel(
      "# leading comment\n  out = a + b; # trailing\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dfg.num_nodes(), 1);
}

TEST(ExprParser, ChainedStatementsBuildDag) {
  const ParseResult r = parse_kernel(
      "p0 = x * c0; p1 = x * c1; acc = p0 + p1; out = acc >> 2;");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dfg.num_nodes(), 4);
  EXPECT_EQ(r.dfg.num_edges(), 3);
  EXPECT_TRUE(r.dfg.is_dag());
}

TEST(ExprParser, ErrorsReportPosition) {
  EXPECT_FALSE(parse_kernel("out = ;").ok);
  EXPECT_FALSE(parse_kernel("out a + b;").ok);
  EXPECT_FALSE(parse_kernel("out = (a + b;").ok);
  EXPECT_FALSE(parse_kernel("out = frob(a);").ok);
  EXPECT_FALSE(parse_kernel("@width 0; x = a + b;").ok);
  const ParseResult r = parse_kernel("out = (a + b;");
  EXPECT_NE(r.error.find("offset"), std::string::npos);
}

TEST(ExprParser, AliasOfPrimaryInputIsNotAnOp) {
  const ParseResult r = parse_kernel("x = y; out = x + z;");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.dfg.num_nodes(), 1);  // only the add
  EXPECT_EQ(r.symbols.count("x"), 0u);
}

}  // namespace
}  // namespace cgraf::hls
