// Byte-level target for obs::parse_json.
//
// Crash conditions: abort/UB in the parser (deep nesting must hit the depth
// limit, not the stack), plus contract oracles — a failed parse must carry
// a non-empty error, and a tighter depth limit may only ever reject more,
// never accept an input the looser limit refused.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "obs/json_reader.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  cgraf::obs::JsonValue value;
  std::string error;
  const bool ok = cgraf::obs::parse_json(text, &value, &error);
  if (!ok && error.empty()) std::abort();
  cgraf::obs::JsonLimits tight;
  tight.max_depth = 8;
  tight.max_input_bytes = 4096;
  cgraf::obs::JsonValue tight_value;
  std::string tight_error;
  const bool tight_ok =
      cgraf::obs::parse_json(text, &tight_value, &tight_error, tight);
  if (tight_ok && !ok) std::abort();  // limits must be monotone
  return 0;
}
