// Byte-level target for cgrra::floorplan_from_text.
//
// A floorplan is only fully checkable against its design (DL012-DL014), so
// the byte-level target exercises the standalone parser contract: no
// abort/UB on any input, accepted floorplans never carry a negative PE
// (the parser's own guarantee), and the DL floorplan rules run crash-free
// against a tiny fixed design.
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "cgrra/io.h"
#include "verify/input_lint.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::string error;
  const std::optional<cgraf::Floorplan> fp =
      cgraf::floorplan_from_text(text, &error);
  if (!fp.has_value()) return 0;
  for (const int pe : fp->op_to_pe) {
    if (pe < 0) std::abort();  // parser promises no unmapped/negative slots
  }
  // Lint against a 2x2 single-context design with as many ops as the
  // floorplan claims (capped): DL012/DL013/DL014 must classify, not crash.
  cgraf::Design design{cgraf::Fabric(2, 2), 1, {}, {}};
  const int n_ops =
      static_cast<int>(fp->op_to_pe.size() < 8 ? fp->op_to_pe.size() : 8);
  for (int id = 0; id < n_ops; ++id) {
    cgraf::Operation op;
    op.id = id;
    op.context = 0;
    design.ops.push_back(op);
  }
  (void)cgraf::verify::lint_floorplan(design, *fp);
  return 0;
}
