// Byte-level target for hls::parse_kernel (the kernel-expression DSL).
//
// Crash conditions: abort/UB in the parser — in particular stack overflow
// on deep '(' nesting and integer overflow in literals, both of which the
// hardened parser bounds — plus the contract that a failed parse reports a
// positioned error and a successful parse yields a DFG whose node count
// matches the symbol table's references.
#include <cstdint>
#include <cstdlib>
#include <string>

#include "hls/expr_parser.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string source(reinterpret_cast<const char*>(data), size);
  const cgraf::hls::ParseResult result = cgraf::hls::parse_kernel(source);
  if (!result.ok) {
    if (result.error.empty()) std::abort();
    return 0;
  }
  const int n = result.dfg.num_nodes();
  for (const auto& [name, node] : result.symbols) {
    if (node < 0 || node >= n) std::abort();  // symbol points off the DFG
  }
  return 0;
}
