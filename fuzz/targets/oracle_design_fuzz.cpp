// Structure-aware differential-oracle target for the whole pipeline.
//
// Fuzzer bytes are decoded into a small but plausible Design + Floorplan
// (dimensions and values mostly in range, deliberately nudged past the
// valid windows often enough that every DL rule fires regularly). The DL
// linter is the gatekeeper; everything downstream treats its verdict as
// ground truth:
//
//   lint_inputs clean  =>  is_valid() must accept       (else abort)
//   lint-clean stress  =>  lint_stress_map must accept  (else abort)
//   builder output     =>  ML/FL lint must be clean     (else abort)
//   accepted solution  =>  certify_floorplan must pass  (else abort)
//
// Any abort is a fuzzer crash: either the DL rules are weaker than the
// invariants the pipeline relies on, or the pipeline broke an invariant the
// certifier checks. Both are real bugs, found without a seed corpus of
// hand-written designs.
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "cgrra/io.h"
#include "cgrra/stress.h"
#include "core/model_builder.h"
#include "core/two_step.h"
#include "verify/certify.h"
#include "verify/input_lint.h"
#include "verify/model_lint.h"

namespace {

// Deterministic byte stream over the fuzzer input; reads past the end
// yield zeros so every prefix decodes to something.
struct ByteReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint8_t take() { return pos < size ? data[pos++] : 0; }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(take()) % (hi - lo + 1);
  }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace cgraf;
  ByteReader r{data, size};

  // Fabric: always constructible (the Fabric ctor asserts), clock sometimes
  // tight enough that DL003 (op delay > clock) fires.
  const int rows = r.range(1, 3);
  const int cols = r.range(1, 3);
  const double clock_ns = 0.5 + 0.25 * r.range(0, 63);
  Design design{Fabric(rows, cols, clock_ns), r.range(1, 3), {}, {}};

  // Ops: ids dense unless a corruption byte says otherwise (DL005); context
  // and bitwidth ranges deliberately one step wider than valid (DL006/007).
  const int n_ops = r.range(0, 12);
  for (int id = 0; id < n_ops; ++id) {
    Operation op;
    op.id = r.take() % 16 == 0 ? id + 1 : id;
    op.kind = static_cast<OpKind>(r.range(0, 11));
    op.bitwidth = r.range(1, 80);                  // valid window is [1,64]
    op.context = r.range(0, design.num_contexts);  // == num_contexts: DL006
    design.ops.push_back(op);
  }

  // Edges: endpoints drawn from [0, n_ops], so dangling ends and self-loops
  // (DL008), duplicates (DL009), backward cross-context edges (DL010) and
  // same-context cycles (DL011) all occur.
  const int n_edges = r.range(0, 15);
  for (int k = 0; k < n_edges; ++k) {
    Edge e;
    e.from = r.range(0, n_ops);
    e.to = r.range(0, n_ops);
    design.edges.push_back(e);
  }

  // Floorplan: length occasionally off by one (DL012), PEs drawn from
  // [-1, num_pes] (DL013), collisions within a context natural (DL014).
  Floorplan fp;
  const int fp_ops = r.take() % 16 == 0 ? n_ops + 1 : n_ops;
  for (int k = 0; k < fp_ops; ++k)
    fp.op_to_pe.push_back(r.range(-1, design.fabric.num_pes()));

  // Gate: the DL rules decide. Dirty inputs must be rejected here and
  // nothing downstream runs; clean inputs must survive the whole pipeline.
  if (!verify::lint_inputs(design, &fp).clean()) return 0;

  // Exercise the text round-trip on every lint-clean design: serialize and
  // re-accept; the parser rejecting its own output is a bug.
  {
    std::string error;
    if (!verify::accept_design_text(to_text(design), &error).has_value())
      std::abort();
    if (!verify::accept_floorplan_text(design, to_text(fp), &error)
             .has_value())
      std::abort();
  }

  std::string why;
  if (!is_valid(design, fp, &why)) std::abort();  // DL clean => structurally valid

  const StressMap stress = compute_stress(design, fp);
  if (!verify::lint_stress_map(design, stress).clean()) std::abort();

  // Build the formulation-(3) model at the baseline's own stress level
  // (feasible by construction: the baseline floorplan achieves it).
  core::RemapModelSpec spec;
  spec.design = &design;
  spec.base = &fp;
  spec.frozen.assign(static_cast<std::size_t>(n_ops), 0);
  spec.candidates.resize(static_cast<std::size_t>(n_ops));
  for (auto& c : spec.candidates) {
    for (int pe = 0; pe < design.fabric.num_pes(); ++pe) c.push_back(pe);
  }
  spec.st_target = stress.max_accumulated();
  spec.objective = core::ObjectiveMode::kMinPerturbation;
  core::RemapModel rm = core::build_remap_model(spec);
  if (rm.trivially_infeasible) return 0;
  if (!verify::lint_model(rm.model).clean()) std::abort();
  if (!verify::lint_formulation(rm.model, rm.formulation_spec()).clean())
    std::abort();

  if (n_ops == 0) return 0;
  core::TwoStepOptions opts;
  opts.lp.max_iters = 20000;
  opts.mip.max_nodes = 2000;
  opts.mip.num_threads = 1;
  opts.verify.enabled = true;  // two_step itself re-certifies solutions
  const core::TwoStepResult result = core::solve_two_step(rm, opts);
  if (result.status == milp::SolveStatus::kOptimal) {
    verify::FloorplanSpec fspec;
    fspec.design = &design;
    fspec.st_target = rm.st_target;
    const verify::Certificate cert = verify::certify_floorplan(
        fspec, result.floorplan, verify::CertifyOptions{});
    if (!cert.ok) std::abort();  // accepted solution violates the spec
  }
  return 0;
}
