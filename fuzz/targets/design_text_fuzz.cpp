// Byte-level target for cgrra::design_from_text.
//
// Crash conditions: any abort/UB inside the parser, plus two differential
// oracles on accepted inputs — the DL linter must run without crashing on
// whatever the parser let through, and the structural rules the parser
// claims to enforce itself (geometry/context/bitwidth/id ranges; DL001 and
// DL004-DL008) must agree that the result is in range.
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "cgrra/io.h"
#include "verify/input_lint.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::string error;
  const std::optional<cgraf::Design> design =
      cgraf::design_from_text(text, &error);
  if (!design.has_value()) return 0;
  const cgraf::verify::LintReport report =
      cgraf::verify::lint_design(*design);
  // The parser enforces the range rules itself, so a parser-accepted design
  // may only be dirty on the graph-shape rules it does not check
  // (DL009-DL011); any range-rule finding means parser and linter disagree.
  for (const cgraf::verify::LintFinding& f : report.findings) {
    if (f.severity == cgraf::verify::Severity::kError && f.rule < "DL009")
      std::abort();
  }
  return 0;
}
