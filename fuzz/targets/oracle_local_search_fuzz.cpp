// Move-level oracle target for the shift/swap local search.
//
// Fuzzer bytes decode a small Design + base Floorplan that satisfies
// per-context exclusivity *by construction* (ops claim free (context, PE)
// slots as they are created), plus frozen flags, candidate subsets, an
// optional stress target and an optional monitored path. The bytes then
// drive LsState moves directly, and the independent certifier arbitrates
// every step:
//
//   accepted move   =>  score strictly decreases AND the applied change
//                       matches the predicted delta      (else abort)
//   after any move  =>  structural certificate stays green: one op per PE
//                       per context, frozen ops pinned   (else abort)
//   full search     =>  a feasible result is certified and re-certifies
//                       against the complete spec        (else abort)
//   infeasible run  =>  the base binding is returned untouched
//
// Any abort is a fuzzer crash: either a move corrupted the incremental
// aggregates (score model and certifier disagree) or the driver shipped a
// binding the independent oracle rejects.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "cgrra/stress.h"
#include "core/local_search.h"
#include "timing/paths.h"
#include "verify/certify.h"

namespace {

// Deterministic byte stream over the fuzzer input; reads past the end
// yield zeros so every prefix decodes to something.
struct ByteReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint8_t take() { return pos < size ? data[pos++] : 0; }
  int range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(take()) % (hi - lo + 1);
  }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace cgraf;
  ByteReader r{data, size};

  const int dim = r.range(2, 4);
  Design design{Fabric(dim, dim), r.range(1, 3), {}, {}};
  const int n_pes = design.fabric.num_pes();

  // Ops claim free (context, PE) slots, so the base satisfies exclusivity
  // by construction — LsState's precondition, asserted in its ctor.
  Floorplan base;
  std::vector<char> occupied(
      static_cast<std::size_t>(design.num_contexts * n_pes), 0);
  const int want_ops = r.range(0, 12);
  for (int i = 0; i < want_ops; ++i) {
    const int ctx = r.range(0, design.num_contexts - 1);
    const int start = r.range(0, n_pes - 1);
    int pe = -1;
    for (int k = 0; k < n_pes; ++k) {
      const int cand = (start + k) % n_pes;
      if (!occupied[static_cast<std::size_t>(ctx * n_pes + cand)]) {
        pe = cand;
        break;
      }
    }
    if (pe < 0) continue;  // context full
    occupied[static_cast<std::size_t>(ctx * n_pes + pe)] = 1;
    Operation op;
    op.id = static_cast<int>(design.ops.size());
    op.kind = r.take() % 3 == 0 ? OpKind::kMux : OpKind::kAdd;
    op.context = ctx;
    design.ops.push_back(op);
    base.op_to_pe.push_back(pe);
  }
  const int n_ops = static_cast<int>(design.ops.size());

  core::RemapModelSpec spec;
  spec.design = &design;
  spec.base = &base;
  spec.frozen.assign(static_cast<std::size_t>(n_ops), 0);
  spec.candidates.assign(static_cast<std::size_t>(n_ops), {});
  for (int op = 0; op < n_ops; ++op) {
    if (r.take() % 8 == 0) spec.frozen[static_cast<std::size_t>(op)] = 1;
    // Random candidate subset, always containing the base PE.
    const std::uint8_t mask = r.take();
    for (int pe = 0; pe < n_pes; ++pe) {
      if (pe == base.pe_of(op) || (mask >> (pe % 8)) & 1)
        spec.candidates[static_cast<std::size_t>(op)].push_back(pe);
    }
  }

  // Stress target: unchecked, loose (base feasible), or a squeeze below the
  // base maximum so the search has real work (and may fail feasibly).
  const StressMap base_stress = compute_stress(design, base);
  switch (r.take() % 3) {
    case 0: spec.st_target = -1.0; break;
    case 1: spec.st_target = base_stress.max_accumulated() + 1e-9; break;
    default:
      spec.st_target = 0.25 * (0.5 + 0.125 * r.range(0, 7)) *
                           base_stress.max_accumulated() +
                       0.75 * base_stress.avg_accumulated();
      break;
  }

  // Optionally monitor one path over context-0 ops.
  std::vector<timing::TimingPath> monitored;
  if (r.take() % 2 == 0) {
    timing::TimingPath p;
    p.context = 0;
    for (int op = 0; op < n_ops && static_cast<int>(p.ops.size()) < 3; ++op) {
      if (design.ops[static_cast<std::size_t>(op)].context == 0)
        p.ops.push_back(op);
    }
    if (!p.ops.empty()) {
      monitored.push_back(p);
      spec.monitored = &monitored;
      spec.cpd_ns = 0.5 * r.range(1, 24);
    }
  }

  // Structural invariant the certifier must confirm after every move:
  // exclusivity and frozen pins (stress/path budgets may legitimately be
  // violated mid-descent, so they are not part of this check).
  verify::FloorplanSpec structural;
  structural.design = &design;
  structural.reference = &base;
  structural.frozen = spec.frozen;

  core::LsState state(spec);
  double prev_score = state.score();
  const int n_moves = r.range(0, 64);
  for (int m = 0; m < n_moves; ++m) {
    const bool is_swap = r.take() % 2 != 0;
    if (n_ops == 0) break;
    bool applied = false;
    if (is_swap) {
      const int a = r.range(0, n_ops - 1);
      const int b = r.range(0, n_ops - 1);
      if (a != b && state.can_swap(a, b)) {
        const double delta = state.swap_delta(a, b);
        if (delta < -core::LsState::kMinImprove) {
          state.swap_ops(a, b);
          applied = true;
          if (std::abs(state.score() - (prev_score + delta)) > 1e-6)
            std::abort();  // delta prediction disagrees with applied move
        }
      }
    } else {
      const int op = r.range(0, n_ops - 1);
      const int pe = r.range(0, n_pes - 1);
      if (state.can_shift(op, pe)) {
        const double delta = state.shift_delta(op, pe);
        if (delta < -core::LsState::kMinImprove) {
          state.shift(op, pe);
          applied = true;
          if (std::abs(state.score() - (prev_score + delta)) > 1e-6)
            std::abort();
        }
      }
    }
    if (!applied) continue;
    if (!(state.score() < prev_score)) std::abort();  // descent monotone
    prev_score = state.score();
    if (!verify::certify_floorplan(structural, state.floorplan()).ok)
      std::abort();  // a legal move broke exclusivity or moved a frozen op
  }

  // The full driver on the same spec: a feasible result must carry a green
  // certificate and re-certify against the complete spec independently.
  core::LocalSearchOptions opts;
  opts.seed = static_cast<std::uint64_t>(r.take()) + 1;
  opts.max_iters = 300;
  opts.restarts = 2;
  const core::LocalSearchResult result = core::local_search_remap(spec, opts);
  if (result.feasible != result.certified) std::abort();
  if (result.feasible) {
    verify::FloorplanSpec full = structural;
    full.st_target = spec.st_target;
    full.monitored = spec.monitored;
    full.cpd_ns = spec.cpd_ns;
    if (!verify::certify_floorplan(full, result.floorplan).ok)
      std::abort();  // shipped binding fails the independent oracle
  } else if (result.floorplan.op_to_pe != base.op_to_pe) {
    std::abort();  // infeasible runs must return the base untouched
  }
  return 0;
}
