// Corpus replay driver: a plain main() around LLVMFuzzerTestOneInput.
//
// The libFuzzer executables get their driver from -fsanitize=fuzzer (Clang
// only); this file gives every target a second executable that builds under
// any compiler and feeds it the checked-in corpus files, so the corpora run
// as ordinary ctest cases in default (non-fuzz) builds and a regression
// input checked in as a corpus entry keeps being exercised forever.
//
// Usage: <target>_replay FILE-OR-DIR...   (directories are scanned
// non-recursively; entries are replayed in sorted order for determinism).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE-OR-DIR...\n", argv[0]);
    return 2;
  }
  long replayed = 0;
  for (int a = 1; a < argc; ++a) {
    const fs::path arg(argv[a]);
    std::error_code ec;
    std::vector<fs::path> files;
    if (fs::is_directory(arg, ec)) {
      for (const auto& entry : fs::directory_iterator(arg, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
    } else if (fs::is_regular_file(arg, ec)) {
      files.push_back(arg);
    } else {
      std::fprintf(stderr, "replay: no such file or directory: %s\n",
                   argv[a]);
      return 2;
    }
    for (const fs::path& f : files) {
      const std::vector<std::uint8_t> bytes = slurp(f);
      LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      ++replayed;
    }
  }
  std::printf("replayed %ld corpus input(s)\n", replayed);
  // An empty corpus means the test is wired to the wrong directory.
  return replayed > 0 ? 0 : 1;
}
