#include "obs/build_info.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/json_writer.h"

namespace cgraf::obs {

namespace {

std::string run_git_rev_parse() {
#if defined(_WIN32)
  return "unknown";
#else
  std::FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128] = {0};
  std::string out;
  if (std::fgets(buf, sizeof buf, pipe) != nullptr) out = buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  // A SHA is 40 hex chars; anything else means git failed quietly.
  if (out.size() != 40) return "unknown";
  return out;
#endif
}

}  // namespace

std::string git_sha() {
  static const std::string sha = [] {
    // Read once under the function-local static's init guard; nothing in
    // this process calls setenv, so the getenv race flagged by
    // concurrency-mt-unsafe cannot occur.
    if (const char* env = std::getenv("CGRAF_GIT_SHA");  // NOLINT(concurrency-mt-unsafe)
        env != nullptr && env[0] != '\0') {
      return std::string(env);
    }
    return run_git_rev_parse();
  }();
  return sha;
}

std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

long hardware_threads() {
  return static_cast<long>(std::thread::hardware_concurrency());
}

void append_build_info_fields(JsonWriter& w) {
  w.field("git_sha", git_sha());
  w.field("compiler", compiler_id());
  w.field("hardware_threads", hardware_threads());
}

}  // namespace cgraf::obs
