#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace cgraf::obs {

void JsonWriter::append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unchanged
        }
    }
  }
}

std::string JsonWriter::quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_escaped(out, s);
  out += '"';
  return out;
}

void JsonWriter::comma_for_value() {
  if (have_key_) {
    have_key_ = false;  // the key already placed the comma
    return;
  }
  if (need_comma_) out_ += ',';
  need_comma_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  stack_.push_back('{');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!stack_.empty()) stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  stack_.push_back('[');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!stack_.empty()) stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (need_comma_) out_ += ',';
  need_comma_ = true;
  out_ += '"';
  append_escaped(out_, k);
  out_ += "\":";
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_for_value();
  out_ += '"';
  append_escaped(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(long v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  comma_for_value();
  out_ += fragment;
  return *this;
}

void JsonWriter::clear() {
  out_.clear();
  stack_.clear();
  need_comma_ = false;
  have_key_ = false;
}

}  // namespace cgraf::obs
