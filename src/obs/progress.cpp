#include "obs/progress.h"

#include "util/clock.h"

namespace cgraf::obs {

Progress& Progress::global() {
  static Progress progress;
  return progress;
}

void Progress::configure(bool enabled, double min_interval_s,
                         std::FILE* out) {
  MutexLock lk(&mu_);
  min_interval_s_.store(min_interval_s, std::memory_order_relaxed);
  out_ = out;
  last_tick_.store(-1e18, std::memory_order_relaxed);
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Progress::vemit(const char* fmt, std::va_list ap) {
  MutexLock lk(&mu_);
  std::vfprintf(out_, fmt, ap);
  std::fputc('\n', out_);
  std::fflush(out_);
  lines_.fetch_add(1, std::memory_order_relaxed);
}

void Progress::logf(bool force, const char* fmt, ...) {
  if (!force && !enabled()) return;
  std::va_list ap;
  va_start(ap, fmt);
  vemit(fmt, ap);
  va_end(ap);
}

void Progress::tickf(const char* fmt, ...) {
  if (!enabled()) return;
  // Claim the tick window with a CAS so concurrent workers emit at most one
  // line per interval between them.
  const double now = now_seconds();
  double last = last_tick_.load(std::memory_order_relaxed);
  if (now - last < min_interval_s_.load(std::memory_order_relaxed)) return;
  if (!last_tick_.compare_exchange_strong(last, now,
                                          std::memory_order_relaxed)) {
    return;  // another thread just took this window
  }
  std::va_list ap;
  va_start(ap, fmt);
  vemit(fmt, ap);
  va_end(ap);
}

}  // namespace cgraf::obs
