// Perf-regression comparison between two BENCH_<label>.json documents
// produced by `cgraf_bench run` (bench/run_suite.cpp).
//
// Document shape (schema_version 1):
//   {
//     "schema_version": 1, "label": "...", "git_sha": "...",
//     "compiler": "...", "hardware_threads": N, "preset": "quick",
//     "results": [ {"case": "...", ...metrics...}, ... ]
//   }
// Each result carries a unique "case" key plus numeric metrics (wall
// seconds, iteration/node counters). Comparison is one-sided: only the NEW
// document being slower/bigger counts as a regression, with per-metric
// noise thresholds so CI runs on shared machines don't flap.
#pragma once

#include <string>
#include <vector>

namespace cgraf::obs {

// Version of the BENCH_*.json document shape (and of the per-case
// CGRAF_BENCH_JSON lines the bench binaries emit). Bump on breaking
// changes; compare refuses documents without one.
inline constexpr long kBenchJsonSchemaVersion = 1;

struct BenchThresholds {
  // A wall-time metric regresses when new > old * wall_ratio ...
  double wall_ratio = 1.5;
  // ... and old is at least this long — sub-millisecond timings are noise.
  double min_wall_s = 1e-3;
  // Deterministic work counters (iterations, nodes) regress past this
  // ratio. Tighter than wall time: same seed + same thread count should
  // reproduce counts closely.
  double count_ratio = 1.25;
};

struct BenchDelta {
  std::string case_name;
  std::string metric;
  double old_value = 0.0;
  double new_value = 0.0;
  double ratio = 0.0;   // new / old
  bool regression = false;
};

struct BenchComparison {
  bool ok = false;              // both documents parsed and were comparable
  std::string error;            // set when !ok
  std::string old_label, new_label;
  std::string old_sha, new_sha;
  long cases_compared = 0;
  std::vector<std::string> missing_cases;  // in old but not in new
  std::vector<std::string> new_cases;      // in new but not in old
  std::vector<BenchDelta> deltas;          // every compared metric

  // Regressions (missing cases count as regressions too).
  bool has_regression() const;
  std::string to_text() const;
};

// Compares two bench documents (full JSON texts). Metrics are matched by
// (case, metric-name); wall-time metrics are those whose name ends in
// "_s"/"_seconds" or equals "seconds"/"wall_s", everything else numeric is
// treated as a work counter. Non-numeric fields are ignored.
BenchComparison compare_bench_docs(const std::string& old_doc,
                                   const std::string& new_doc,
                                   const BenchThresholds& thresholds = {});

}  // namespace cgraf::obs
