// Minimal recursive-descent JSON parser producing a small DOM. Consumer of
// the artifacts JsonWriter and EventLog produce: event-log JSONL lines
// (obs/postmortem.h) and BENCH_*.json documents (obs/bench_compare.h).
//
// Scope: full JSON value grammar with \uXXXX escapes decoded to UTF-8
// (surrogate pairs included). Numbers parse as double; int_or() rounds.
// Not a validator of anything beyond syntax — no schema checking here.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cgraf::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  // Insertion-ordered; duplicate keys are kept (find returns the first).
  std::vector<std::pair<std::string, JsonValue>> obj;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // First member named `key`, or nullptr (also for non-objects).
  const JsonValue* find(std::string_view key) const;

  // Typed accessors with defaults; wrong-typed/missing members yield the
  // default rather than throwing, so analyzers degrade gracefully on
  // records from newer schema versions.
  double num_or(std::string_view key, double dflt) const;
  long int_or(std::string_view key, long dflt) const;
  bool bool_or(std::string_view key, bool dflt) const;
  std::string str_or(std::string_view key, const std::string& dflt) const;
};

// Adversarial-input ceilings: parse_json refuses inputs larger than
// max_input_bytes up front and aborts descent past max_depth nested
// containers (so "[[[[..." cannot overflow the stack). Both rejections
// carry an offset like every other parse error.
struct JsonLimits {
  int max_depth = 256;
  std::size_t max_input_bytes = 64u * 1024u * 1024u;
};

// Parses exactly one JSON value spanning all of `text` (surrounding
// whitespace allowed). Returns false and sets *error (with an offset) on
// malformed input, trailing garbage, or a breached limit.
bool parse_json(std::string_view text, JsonValue* out, std::string* error,
                const JsonLimits& limits = {});

}  // namespace cgraf::obs
