// Progress reporter: structured one-line status output on stderr,
// replacing scattered `if (verbose) fprintf(stderr, ...)` calls.
//
// Two emission paths:
//   - logf(force, ...): milestone lines (one per solve attempt, per phase).
//     Emitted when the reporter is enabled OR `force` is true, so library
//     callers that set their own verbose flag keep their output even when
//     the global reporter is off.
//   - tickf(...): rate-limited heartbeat lines from long-running inner
//     loops (branch & bound node counts). Dropped entirely when disabled,
//     and at most one per min_interval_s otherwise.
//
// The CLI maps --verbose to enabled with interval 0 (every line) and
// --progress to enabled with a ~0.5 s tick interval.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "util/sync.h"

namespace cgraf::obs {

class Progress {
 public:
  static Progress& global();

  Progress() = default;
  Progress(const Progress&) = delete;
  Progress& operator=(const Progress&) = delete;

  void configure(bool enabled, double min_interval_s = 0.0,
                 std::FILE* out = stderr);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Milestone line; printed when enabled or forced. A newline is appended.
  void logf(bool force, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));

  // Rate-limited heartbeat; dropped when disabled or inside the interval.
  void tickf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  long lines_emitted() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  void vemit(const char* fmt, std::va_list ap);

  std::atomic<bool> enabled_{false};
  // Atomic (not guarded): tickf reads it on the pre-lock fast path while
  // configure() may be rewriting it from another thread.
  std::atomic<double> min_interval_s_{0.0};
  std::atomic<double> last_tick_{-1e18};
  std::atomic<long> lines_{0};
  Mutex mu_{"obs.progress", lock_rank::kObsProgress};
  std::FILE* out_ CGRAF_GUARDED_BY(mu_) = stderr;
};

}  // namespace cgraf::obs
