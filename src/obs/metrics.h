// Central metrics registry: named counters, gauges and fixed-bucket
// histograms, dumped as one JSON document.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime (values are heap-allocated and never moved), so hot
// call sites look a metric up once and keep the reference. Updates on the
// handles are lock-free atomics; only registration and the JSON dump take
// the registry mutex.
//
// The global registry accumulates across a whole process run; clear()
// resets it (tests, or one dump per CLI invocation).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

namespace cgraf::obs {

class Counter {
 public:
  void add(long delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  long value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> v_{0};
};

// A double-valued cell with both last-value (set) and accumulator (add)
// semantics; time totals use add, sizes/levels use set.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed upper-bound buckets: observe(v) increments the first bucket with
// v <= bound, or the implicit overflow bucket past the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);
  long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // Size bounds().size() + 1; the last entry is the overflow bucket.
  std::vector<long> bucket_counts() const;
  // Estimated value at quantile p in [0, 1] (0.5 = median), by linear
  // interpolation within the containing bucket (Prometheus-style). The
  // first bucket interpolates from 0 (or its bound, if negative); a
  // quantile landing in the unbounded overflow bucket is clamped to the
  // last finite bound. Returns 0 when the histogram is empty. Consistent
  // reads only when no concurrent observes are in flight (dumps/tests).
  double percentile(double p) const;
  void reset();

 private:
  std::vector<double> bounds_;  // ascending
  std::unique_ptr<std::atomic<long>[]> buckets_;
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0.0};
};

class Metrics {
 public:
  static Metrics& global();

  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // The bounds are fixed by the first registration of `name`; later calls
  // return the existing histogram regardless of the bounds argument.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  // {"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
  //  "counts":[...],"count":N,"sum":S,"p50":...,"p90":...,"p99":...}}} —
  // keys sorted, so dumps diff cleanly across runs.
  std::string to_json() const;

  // Drops every registered metric. Invalidates previously returned handles.
  void clear();

 private:
  // Guards the name->cell maps only; the cells themselves are lock-free
  // atomics updated through the stable handles.
  mutable Mutex mu_{"obs.metrics", lock_rank::kObsMetrics};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CGRAF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CGRAF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CGRAF_GUARDED_BY(mu_);
};

}  // namespace cgraf::obs
