#include "obs/postmortem.h"

#include <cstdio>
#include <memory>

#include "obs/event_log.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "util/ascii.h"

namespace cgraf::obs {

namespace {

void fold_record(const JsonValue& rec, PostmortemReport& r) {
  const std::string type = rec.str_or("type", "");
  ++r.records_by_type[type];
  const double t_us = rec.num_or("t", 0.0);

  if (type == "log.header") {
    r.have_header = true;
    r.schema = rec.int_or("schema", 0);
    r.git_sha = rec.str_or("git_sha", "");
    r.compiler = rec.str_or("compiler", "");
    return;
  }
  if (type == "lp.solve") {
    ++r.lp_solves;
    r.lp_iterations += rec.int_or("iterations", 0);
    r.lp_phase1_iterations += rec.int_or("phase1_iterations", 0);
    r.lp_dual_iterations += rec.int_or("dual_iterations", 0);
    r.lp_bound_flips += rec.int_or("bound_flips", 0);
    r.lp_refactorizations += rec.int_or("refactorizations", 0);
    r.lp_dual_fallbacks += rec.int_or("dual_fallbacks", 0);
    if (rec.bool_or("warm_used", false)) ++r.lp_warm_used;
    if (rec.bool_or("dual_used", false)) ++r.lp_dual_used;
    r.lp_seconds += rec.num_or("seconds", 0.0);
    return;
  }
  if (type == "bnb.begin") {
    ++r.bnb_solves;
    return;
  }
  if (type == "bnb.node") {
    ++r.bnb_nodes;
    const long iters = rec.int_or("lp_iters", 0);
    r.bnb_node_lp_iters += iters;
    const int depth = static_cast<int>(rec.int_or("depth", 0));
    const std::string action = rec.str_or("action", "?");
    ++r.node_actions[action];
    PostmortemReport::DepthRow& row = r.by_depth[depth];
    ++row.nodes;
    row.lp_iters += iters;
    if (action == "branch") ++row.branches;
    else if (action == "prune") ++row.prunes;
    else if (action == "integral" || action == "stop") ++row.integrals;
    else if (action == "infeasible") ++row.infeasibles;
    return;
  }
  if (type == "bnb.incumbent") {
    r.incumbents.push_back({t_us, rec.int_or("seq", 0),
                            rec.num_or("obj", 0.0)});
    return;
  }
  if (type == "bnb.pool_prune") {
    ++r.bnb_pool_prunes;
    r.bnb_pool_dropped += rec.int_or("dropped", 0);
    return;
  }
  if (type == "probe.solve") {
    ++r.probes;
    PostmortemReport::Probe p;
    p.t_us = t_us;
    p.target = rec.num_or("target", 0.0);
    p.mode = rec.str_or("mode", "?");
    p.status = rec.str_or("status", "?");
    p.warm_hit = rec.bool_or("warm_hit", false);
    p.fallback = rec.bool_or("fallback", false);
    p.lp_iterations = rec.int_or("lp_iterations", 0);
    p.seconds = rec.num_or("seconds", 0.0);
    if (p.warm_hit) ++r.probe_warm_hits;
    if (p.fallback) ++r.probe_fallbacks;
    if (rec.bool_or("rebuild", false)) ++r.probe_rebuilds;
    if (rec.bool_or("patch", false)) ++r.probe_patches;
    r.probe_chain.push_back(std::move(p));
    return;
  }
  if (type == "st.search_end") {
    ++r.st_searches;
    return;
  }
  if (type == "twostep.solve") {
    ++r.twostep_solves;
    return;
  }
  if (type == "remap.end") {
    ++r.remap_runs;
    return;
  }
  if (type == "remap.attempt") {
    ++r.remap_attempts;
    if (rec.bool_or("cpd_ok", false)) ++r.remap_attempts_cpd_ok;
    return;
  }
  if (type == "ls.search") {
    ++r.ls_searches;
    r.ls_moves_examined += rec.int_or("examined", 0);
    r.ls_moves_accepted += rec.int_or("accepted", 0);
    r.ls_oracle_rejections += rec.int_or("oracle_rejections", 0);
    return;
  }
  if (type == "portfolio.result") {
    ++r.portfolio_races;
    const std::string winner = rec.str_or("winner", "");
    if (winner == "exact") ++r.portfolio_exact_wins;
    if (winner == "ls") ++r.portfolio_ls_wins;
    if (rec.bool_or("seeded", false)) ++r.portfolio_seeded;
    return;
  }
  // st.search_begin / st.probe / remap.begin / bnb.end and unknown types:
  // counted in records_by_type only.
}

std::string fmt_long(long v) { return std::to_string(v); }

std::string fmt_pct(long part, long whole) {
  if (whole <= 0) return "-";
  return fmt_double(100.0 * static_cast<double>(part) /
                        static_cast<double>(whole),
                    1) +
         "%";
}

}  // namespace

bool analyze_events(const std::string& jsonl, PostmortemReport* report,
                    std::string* error) {
  *report = PostmortemReport();
  PostmortemReport& r = *report;

  std::size_t pos = 0;
  long line_no = 0;
  bool any = false;
  while (pos < jsonl.size()) {
    std::size_t end = jsonl.find('\n', pos);
    if (end == std::string::npos) end = jsonl.size();
    ++line_no;
    const std::string_view line(jsonl.data() + pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    any = true;
    JsonValue rec;
    std::string perr;
    if (!parse_json(line, &rec, &perr) || !rec.is_object()) {
      r.parse_errors.emplace_back(line_no,
                                  perr.empty() ? "not an object" : perr);
      continue;
    }
    ++r.total_records;
    fold_record(rec, r);
  }

  if (!any) {
    if (error != nullptr) *error = "empty event stream";
    return false;
  }
  if (r.have_header && r.schema > kEventLogSchemaVersion) {
    if (error != nullptr) {
      *error = "event log schema " + std::to_string(r.schema) +
               " is newer than supported " +
               std::to_string(kEventLogSchemaVersion);
    }
    return false;
  }
  return true;
}

bool analyze_events_file(const std::string& path, PostmortemReport* report,
                         std::string* error) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    text.append(buf, got);
  }
  return analyze_events(text, report, error);
}

std::string PostmortemReport::to_text() const {
  std::string out;
  out += "=== solve-event log post-mortem ===\n";
  if (have_header) {
    out += "schema " + std::to_string(schema) + " | git " +
           (git_sha.empty() ? "unknown" : git_sha.substr(0, 12)) + " | " +
           compiler + "\n";
  } else {
    out += "(no log.header record)\n";
  }
  out += "records: " + std::to_string(total_records);
  if (!parse_errors.empty()) {
    out += " (" + std::to_string(parse_errors.size()) + " unparseable)";
  }
  out += "\n\n";

  {
    AsciiTable t({"record type", "count"});
    for (const auto& [type, count] : records_by_type) {
      t.add_row({type, fmt_long(count)});
    }
    out += t.render();
    out += "\n";
  }

  out += "--- LP engine (" + fmt_long(lp_solves) + " solves) ---\n";
  {
    AsciiTable t({"metric", "total"});
    t.add_row({"iterations", fmt_long(lp_iterations)});
    t.add_row({"phase1 iterations", fmt_long(lp_phase1_iterations)});
    t.add_row({"dual iterations", fmt_long(lp_dual_iterations)});
    t.add_row({"bound flips", fmt_long(lp_bound_flips)});
    t.add_row({"refactorizations", fmt_long(lp_refactorizations)});
    t.add_row({"dual fallbacks", fmt_long(lp_dual_fallbacks)});
    t.add_row({"warm-started solves",
               fmt_long(lp_warm_used) + " (" +
                   fmt_pct(lp_warm_used, lp_solves) + ")"});
    t.add_row({"dual-loop solves",
               fmt_long(lp_dual_used) + " (" +
                   fmt_pct(lp_dual_used, lp_solves) + ")"});
    t.add_row({"seconds", fmt_double(lp_seconds, 4)});
    out += t.render();
    out += "\n";
  }

  if (bnb_solves > 0 || bnb_nodes > 0) {
    out += "--- branch & bound (" + fmt_long(bnb_solves) + " solves, " +
           fmt_long(bnb_nodes) + " nodes) ---\n";
    AsciiTable t({"depth", "nodes", "lp iters", "branch", "prune",
                  "integral", "infeas"});
    for (const auto& [depth, row] : by_depth) {
      t.add_row({fmt_long(depth), fmt_long(row.nodes),
                 fmt_long(row.lp_iters), fmt_long(row.branches),
                 fmt_long(row.prunes), fmt_long(row.integrals),
                 fmt_long(row.infeasibles)});
    }
    out += t.render();
    const long pruned_total =
        node_actions.count("prune") ? node_actions.at("prune") : 0;
    out += "pruning: " + fmt_long(pruned_total) + " node prunes, " +
           fmt_long(bnb_pool_prunes) + " pool prunes dropping " +
           fmt_long(bnb_pool_dropped) + " queued nodes (" +
           fmt_pct(bnb_pool_dropped,
                   bnb_nodes + bnb_pool_dropped) +
           " of discovered work avoided an LP)\n";
    if (!incumbents.empty()) {
      out += "incumbent timeline:\n";
      AsciiTable inc({"t (ms)", "node seq", "objective"});
      for (const auto& i : incumbents) {
        inc.add_row({fmt_double(i.t_us / 1e3, 3), fmt_long(i.seq),
                     fmt_double(i.obj, 6)});
      }
      out += inc.render();
    }
    out += "\n";
  }

  if (probes > 0) {
    out += "--- probe chain (" + fmt_long(probes) + " probes) ---\n";
    AsciiTable t({"metric", "value"});
    t.add_row({"warm hits",
               fmt_long(probe_warm_hits) + " (" +
                   fmt_pct(probe_warm_hits, probes) + ")"});
    t.add_row({"basis fallbacks", fmt_long(probe_fallbacks)});
    t.add_row({"model rebuilds", fmt_long(probe_rebuilds)});
    t.add_row({"RHS patches", fmt_long(probe_patches)});
    out += t.render();
    AsciiTable chain({"t (ms)", "target", "mode", "status", "warm",
                      "lp iters", "sec"});
    for (const auto& p : probe_chain) {
      chain.add_row({fmt_double(p.t_us / 1e3, 3), fmt_double(p.target, 4),
                     p.mode, p.status, p.warm_hit ? "yes" : "no",
                     fmt_long(p.lp_iterations), fmt_double(p.seconds, 4)});
    }
    out += chain.render();
    out += "\n";
  }

  if (remap_runs > 0 || remap_attempts > 0 || st_searches > 0 ||
      ls_searches > 0 || portfolio_races > 0) {
    out += "--- pipeline ---\n";
    AsciiTable t({"metric", "count"});
    t.add_row({"st_target searches", fmt_long(st_searches)});
    t.add_row({"two-step solves", fmt_long(twostep_solves)});
    t.add_row({"remap runs", fmt_long(remap_runs)});
    t.add_row({"remap attempts",
               fmt_long(remap_attempts) + " (" +
                   fmt_long(remap_attempts_cpd_ok) + " cpd-ok)"});
    if (ls_searches > 0) {
      t.add_row({"ls searches",
                 fmt_long(ls_searches) + " (" +
                     fmt_long(ls_moves_accepted) + "/" +
                     fmt_long(ls_moves_examined) + " moves, " +
                     fmt_long(ls_oracle_rejections) + " oracle-rejected)"});
    }
    if (portfolio_races > 0) {
      t.add_row({"portfolio races",
                 fmt_long(portfolio_races) + " (" +
                     fmt_long(portfolio_exact_wins) + " exact, " +
                     fmt_long(portfolio_ls_wins) + " ls, " +
                     fmt_long(portfolio_seeded) + " seeded)"});
    }
    out += t.render();
  }
  return out;
}

std::string PostmortemReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", schema);
  w.field("git_sha", git_sha);
  w.field("compiler", compiler);
  w.field("total_records", total_records);
  w.field("parse_errors", static_cast<long>(parse_errors.size()));

  w.key("records_by_type").begin_object();
  for (const auto& [type, count] : records_by_type) w.field(type, count);
  w.end_object();

  w.key("lp").begin_object();
  w.field("solves", lp_solves);
  w.field("iterations", lp_iterations);
  w.field("phase1_iterations", lp_phase1_iterations);
  w.field("dual_iterations", lp_dual_iterations);
  w.field("bound_flips", lp_bound_flips);
  w.field("refactorizations", lp_refactorizations);
  w.field("dual_fallbacks", lp_dual_fallbacks);
  w.field("warm_used", lp_warm_used);
  w.field("dual_used", lp_dual_used);
  w.field("seconds", lp_seconds);
  w.end_object();

  w.key("bnb").begin_object();
  w.field("solves", bnb_solves);
  w.field("nodes", bnb_nodes);
  w.field("node_lp_iterations", bnb_node_lp_iters);
  w.field("pool_prunes", bnb_pool_prunes);
  w.field("pool_dropped", bnb_pool_dropped);
  w.key("actions").begin_object();
  for (const auto& [action, count] : node_actions) w.field(action, count);
  w.end_object();
  w.key("by_depth").begin_array();
  for (const auto& [depth, row] : by_depth) {
    w.begin_object();
    w.field("depth", static_cast<long>(depth));
    w.field("nodes", row.nodes);
    w.field("lp_iterations", row.lp_iters);
    w.field("branches", row.branches);
    w.field("prunes", row.prunes);
    w.field("integrals", row.integrals);
    w.field("infeasibles", row.infeasibles);
    w.end_object();
  }
  w.end_array();
  w.key("incumbents").begin_array();
  for (const auto& i : incumbents) {
    w.begin_object();
    w.field("t_us", i.t_us);
    w.field("seq", i.seq);
    w.field("obj", i.obj);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("probes").begin_object();
  w.field("count", probes);
  w.field("warm_hits", probe_warm_hits);
  w.field("basis_fallbacks", probe_fallbacks);
  w.field("model_rebuilds", probe_rebuilds);
  w.field("patches", probe_patches);
  w.key("chain").begin_array();
  for (const auto& p : probe_chain) {
    w.begin_object();
    w.field("t_us", p.t_us);
    w.field("target", p.target);
    w.field("mode", p.mode);
    w.field("status", p.status);
    w.field("warm_hit", p.warm_hit);
    w.field("fallback", p.fallback);
    w.field("lp_iterations", p.lp_iterations);
    w.field("seconds", p.seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("pipeline").begin_object();
  w.field("st_searches", st_searches);
  w.field("twostep_solves", twostep_solves);
  w.field("remap_runs", remap_runs);
  w.field("remap_attempts", remap_attempts);
  w.field("remap_attempts_cpd_ok", remap_attempts_cpd_ok);
  w.field("ls_searches", ls_searches);
  w.field("ls_moves_examined", ls_moves_examined);
  w.field("ls_moves_accepted", ls_moves_accepted);
  w.field("ls_oracle_rejections", ls_oracle_rejections);
  w.field("portfolio_races", portfolio_races);
  w.field("portfolio_exact_wins", portfolio_exact_wins);
  w.field("portfolio_ls_wins", portfolio_ls_wins);
  w.field("portfolio_seeded", portfolio_seeded);
  w.end_object();

  w.end_object();
  return w.str();
}

}  // namespace cgraf::obs
