// Minimal streaming JSON emitter shared by every component that writes
// machine-readable output (trace files, metrics dumps, CGRAF_BENCH_JSON
// lines). Replaces the hand-rolled printf JSON that never escaped strings.
//
// Usage:
//   JsonWriter w;
//   w.begin_object()
//       .field("name", "B13 \"large\"")   // escaped automatically
//       .field("nodes", 42L)
//       .key("per_thread").begin_array().value(1L).value(2L).end_array()
//       .end_object();
//   w.str();  // {"name":"B13 \"large\"","nodes":42,"per_thread":[1,2]}
//
// Calling field()/key()/value() with no enclosing begin_object() emits an
// object-body *fragment* (`"k":v,"k2":v2`) — the form the benches embed in
// composite records.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cgraf::obs {

class JsonWriter {
 public:
  // Appends `s` to `out` with JSON string escaping applied (quotes,
  // backslashes, control characters); does NOT add surrounding quotes.
  static void append_escaped(std::string& out, std::string_view s);
  // `s` escaped and quoted, as a standalone string.
  static std::string quoted(std::string_view s);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  // NaN and +/-Inf have no JSON representation; they are emitted as null
  // (never as the literal `nan`/`inf`, which breaks every strict parser).
  // Consumers treat a null metric as "not available".
  JsonWriter& value(double v);
  JsonWriter& value(long v);
  JsonWriter& value(int v) { return value(static_cast<long>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();
  // Splices a pre-rendered JSON fragment in value position, verbatim.
  JsonWriter& raw(std::string_view fragment);

  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }
  JsonWriter& raw_field(std::string_view k, std::string_view fragment) {
    key(k);
    return raw(fragment);
  }

  const std::string& str() const { return out_; }
  bool empty() const { return out_.empty(); }
  void clear();

 private:
  void comma_for_value();

  std::string out_;
  std::vector<char> stack_;  // '{' or '['
  bool need_comma_ = false;
  bool have_key_ = false;
};

}  // namespace cgraf::obs
