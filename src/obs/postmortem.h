// Post-mortem analysis of a structured solve-event log (obs/event_log.h).
//
// Reconstructs, from the JSONL event stream alone, what the solver pipeline
// did: the branch & bound tree (per-depth node/LP-iteration breakdown,
// action mix, pruning efficacy), the incumbent-improvement timeline, the
// ST_target probe chain with warm-hit rates, and LP-iteration totals per
// record family. The totals are exact — every LP solve and every counted
// B&B node emits exactly one record — so `cgraf_cli analyze` can be
// cross-checked against the in-process solver stats.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cgraf::obs {

struct PostmortemReport {
  // --- log.header ---------------------------------------------------------
  bool have_header = false;
  long schema = 0;
  std::string git_sha;
  std::string compiler;

  long total_records = 0;
  // Record counts per type, insertion-free (sorted by type name).
  std::map<std::string, long> records_by_type;

  // --- lp.solve ----------------------------------------------------------
  long lp_solves = 0;
  long lp_iterations = 0;        // sum over every LP solved anywhere
  long lp_phase1_iterations = 0;
  long lp_dual_iterations = 0;
  long lp_bound_flips = 0;
  long lp_refactorizations = 0;
  long lp_dual_fallbacks = 0;
  long lp_warm_used = 0;
  long lp_dual_used = 0;
  double lp_seconds = 0.0;

  // --- bnb.* -------------------------------------------------------------
  struct DepthRow {
    long nodes = 0;
    long lp_iters = 0;
    long branches = 0;
    long prunes = 0;      // bound-pruned after their LP
    long integrals = 0;
    long infeasibles = 0;
  };
  long bnb_solves = 0;            // bnb.begin records
  long bnb_nodes = 0;             // bnb.node records == MipResult::nodes sum
  long bnb_node_lp_iters = 0;     // sum of per-node lp_iters
  long bnb_pool_prunes = 0;       // bnb.pool_prune records
  long bnb_pool_dropped = 0;      // nodes discarded without an LP solve
  std::map<int, DepthRow> by_depth;
  std::map<std::string, long> node_actions;

  struct Incumbent {
    double t_us = 0.0;
    long seq = 0;
    double obj = 0.0;
  };
  std::vector<Incumbent> incumbents;

  // --- probe.solve -------------------------------------------------------
  struct Probe {
    double t_us = 0.0;
    double target = 0.0;
    std::string mode;
    std::string status;
    bool warm_hit = false;
    bool fallback = false;
    long lp_iterations = 0;
    double seconds = 0.0;
  };
  long probes = 0;
  long probe_warm_hits = 0;       // == ProbeSessionStats::warm_hits sum
  long probe_fallbacks = 0;
  long probe_rebuilds = 0;
  long probe_patches = 0;
  std::vector<Probe> probe_chain;

  // --- st.* / twostep.solve / remap.* ------------------------------------
  long st_searches = 0;           // st.search_end records
  long twostep_solves = 0;
  long remap_runs = 0;            // remap.end records
  long remap_attempts = 0;
  long remap_attempts_cpd_ok = 0;

  // --- ls.search / portfolio.result ---------------------------------------
  long ls_searches = 0;           // ls.search records
  long ls_moves_examined = 0;
  long ls_moves_accepted = 0;
  long ls_oracle_rejections = 0;
  long portfolio_races = 0;       // portfolio.result records
  long portfolio_exact_wins = 0;
  long portfolio_ls_wins = 0;
  long portfolio_seeded = 0;

  // Lines that failed to parse (offset = 1-based line number).
  std::vector<std::pair<long, std::string>> parse_errors;

  // Human-readable report (aligned tables).
  std::string to_text() const;
  // Machine-readable report (one JSON object).
  std::string to_json() const;
};

// Analyzes a whole JSONL event stream held in memory. Unknown record types
// are counted but otherwise skipped (forward compatibility); unparseable
// lines land in parse_errors without aborting. Returns false (with *error)
// only when the stream is unusable: empty, or a log.header with a schema
// newer than kEventLogSchemaVersion.
bool analyze_events(const std::string& jsonl, PostmortemReport* report,
                    std::string* error);

// Convenience: reads `path` and analyzes it.
bool analyze_events_file(const std::string& path, PostmortemReport* report,
                         std::string* error);

}  // namespace cgraf::obs
