// Build/host provenance stamped into every machine-readable artifact
// (event-log headers, BENCH_*.json documents) so artifacts produced weeks
// apart on different machines stay comparable.
#pragma once

#include <string>

namespace cgraf::obs {

class JsonWriter;

// Git commit SHA of the working tree. Resolution order:
//   1. the CGRAF_GIT_SHA environment variable (CI sets it; also the test
//      seam),
//   2. `git rev-parse HEAD` run once and cached,
//   3. "unknown".
std::string git_sha();

// Compiler identity, e.g. "gcc 12.2.0" or "clang 15.0.7".
std::string compiler_id();

// std::thread::hardware_concurrency(), as a long for JSON.
long hardware_threads();

// Appends the standard provenance fields to `w` (in fragment or object
// context): git_sha, compiler, hardware_threads.
void append_build_info_fields(JsonWriter& w);

}  // namespace cgraf::obs
