// Structured solve-event log: schema-versioned JSONL records emitted by the
// solver pipeline (branch & bound nodes, simplex solves, ST_target probes,
// remap attempts) for post-mortem analysis (obs/postmortem.h).
//
// Design constraints, mirroring the tracer (obs/trace.h):
//   - Near-zero cost when disabled: Event's constructor is a relaxed atomic
//     load and an early return — no allocation, no lock, no clock read
//     (regression-tested in tests/obs/overhead_test.cpp).
//   - Lock-free-ish when enabled: each emitting thread appends rendered
//     lines to its own buffer (one small mutex per thread, uncontended in
//     steady state) and only a buffer flush touches the shared sink. The
//     three locks rank kObsEventLog < kObsEventBuf < kObsEventSink in the
//     global hierarchy (util/sync.h), so emission is safe from any solver
//     context — including while a branch & bound worker holds bnb.shared.
//   - Crash-tolerant buffering: buffers auto-flush past a size threshold,
//     and close()/flush() drain every thread's buffer, including buffers of
//     threads that have already exited (the log owns them, not the thread).
//
// Record format: one JSON object per line. Every record carries
//   {"type":"<kind>","t":<microseconds since open>,"tid":<small thread id>}
// plus type-specific fields. The first record is always
//   {"type":"log.header","schema":kEventLogSchemaVersion,...}
// with build/host metadata (obs/build_info.h), so analyzers can hard-fail
// on a schema they do not understand. The full event vocabulary is
// documented in DESIGN.md §11.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.h"

namespace cgraf::obs {

// Bump when a record type changes incompatibly (field renamed/retyped or
// removed). Adding new record types or new optional fields is compatible.
inline constexpr long kEventLogSchemaVersion = 1;

class EventLog {
 public:
  // The process-wide log the CLI's --log-events flag opens. Libraries never
  // reach for it directly: emission sites take an EventLog* through their
  // options structs (LpOptions/MipOptions/TwoStepOptions), so tests can run
  // against private instances.
  static EventLog& global();

  EventLog() = default;
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Opens `path` for writing, emits the header record and enables emission.
  // Returns false (with *error set) when the file cannot be created.
  bool open(const std::string& path, std::string* error);
  // Test/embedding sink: collect lines in memory instead of a file.
  void open_memory();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drains every thread buffer into the sink (preserving per-thread
  // emission order) without disabling the log.
  void flush();
  // Disables emission, drains all buffers and closes the file sink.
  // Idempotent; also runs from the destructor.
  void close();

  // Everything written so far (memory sink only); flushes first.
  std::string memory_contents();

  // Microseconds since open on the monotonic clock.
  double now_us() const;

  // Appends one rendered JSONL line ('\n' not included) to the calling
  // thread's buffer. Called by Event's destructor; callable directly for
  // pre-rendered records.
  void append_line(const std::string& line);

  // Small stable id for the calling thread within this log's lifetime.
  int thread_id();

 private:
  struct ThreadBuf {
    explicit ThreadBuf(int tid_in) : tid(tid_in) {}
    Mutex mu{"obs.event_buf", lock_rank::kObsEventBuf};
    std::string data CGRAF_GUARDED_BY(mu);
    const int tid;
  };

  ThreadBuf* this_thread_buf();
  void write_sink(const char* data, std::size_t size)
      CGRAF_REQUIRES(sink_mu_);
  void flush_buf(ThreadBuf& buf) CGRAF_EXCLUDES(buf.mu, sink_mu_);
  void start();

  std::atomic<bool> enabled_{false};
  // Bumped by every open(); invalidates per-thread cached buffer pointers
  // so a reopened log hands out fresh buffers.
  std::atomic<std::uint64_t> epoch_{0};
  // Stamped by open() before enabled_ is set; relaxed atomic so concurrent
  // timestamp reads during a reopen are merely imprecise, never racy.
  std::atomic<double> t0_{0.0};

  Mutex reg_mu_{"obs.event_log", lock_rank::kObsEventLog};
  std::vector<std::unique_ptr<ThreadBuf>> bufs_ CGRAF_GUARDED_BY(reg_mu_);
  int next_tid_ CGRAF_GUARDED_BY(reg_mu_) = 0;

  Mutex sink_mu_{"obs.event_sink", lock_rank::kObsEventSink};
  std::FILE* file_ CGRAF_GUARDED_BY(sink_mu_) = nullptr;
  bool memory_mode_ CGRAF_GUARDED_BY(sink_mu_) = false;
  std::string memory_ CGRAF_GUARDED_BY(sink_mu_);
};

// RAII builder for one event record. Inert (every method an immediate
// no-op) when the log pointer is null or the log is disabled, so call
// sites plumb an `EventLog*` unconditionally:
//
//   obs::Event ev(opts.events, "lp.solve");
//   ev.arg("iterations", res.iterations).arg("status", to_string(st));
//   // destructor stamps t/tid and appends the line
//
// Type names must be string literals (stored by pointer until render).
// Argument values go through JsonWriter, so strings are escaped and
// non-finite doubles serialize as null (see obs/json_writer.h).
class Event {
 public:
  Event(EventLog* log, const char* type) {
    if (log == nullptr || !log->enabled()) return;
    log_ = log;
    type_ = type;
  }
  ~Event();
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool active() const { return log_ != nullptr; }

  Event& arg(const char* key, double v);
  Event& arg(const char* key, long v);
  Event& arg(const char* key, int v) { return arg(key, static_cast<long>(v)); }
  Event& arg(const char* key, bool v);
  Event& arg(const char* key, const char* v);
  Event& arg(const char* key, const std::string& v);

 private:
  EventLog* log_ = nullptr;
  const char* type_ = "";
  std::string args_;  // pre-rendered object-body fragment (no braces)
};

}  // namespace cgraf::obs
