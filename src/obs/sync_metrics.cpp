#include "obs/sync_metrics.h"

#include "util/sync.h"

namespace cgraf::obs {

void export_sync_metrics(Metrics& m) {
  for (const auto& [name, s] : sync_mutex_stats()) {
    Counter& acq = m.counter("sync." + name + ".acquisitions");
    acq.reset();
    acq.add(s.acquisitions);
    Counter& con = m.counter("sync." + name + ".contended");
    con.reset();
    con.add(s.contended);
    m.gauge("sync." + name + ".wait_seconds").set(s.wait_seconds);
  }
}

}  // namespace cgraf::obs
