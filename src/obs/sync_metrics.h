// Bridge from the util/sync.h contention counters into the metrics
// registry. Lives in obs (not util) so util stays dependency-free.
#pragma once

#include "obs/metrics.h"

namespace cgraf::obs {

// Publishes every annotated mutex's contention counters into `m` as
//   sync.<name>.acquisitions  (counter)
//   sync.<name>.contended     (counter)
//   sync.<name>.wait_seconds  (gauge)
// aggregated per mutex name over live and destroyed instances. Snapshot
// semantics (reset-then-add), so repeated exports are idempotent. The CLI
// calls this right before a --metrics dump; long-running embedders can
// call it on whatever cadence they report at.
void export_sync_metrics(Metrics& m = Metrics::global());

}  // namespace cgraf::obs
