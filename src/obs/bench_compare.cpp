#include "obs/bench_compare.h"

#include <algorithm>
#include <map>

#include "obs/json_reader.h"
#include "util/ascii.h"

namespace cgraf::obs {

namespace {

bool is_wall_metric(const std::string& name) {
  if (name == "seconds" || name == "wall_s") return true;
  auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("_s") || ends_with("_seconds") || ends_with("_ms");
}

struct BenchDoc {
  std::string label;
  std::string sha;
  long schema = 0;
  // case name -> metric name -> value
  std::map<std::string, std::map<std::string, double>> cases;
};

bool load_doc(const std::string& text, BenchDoc* doc, std::string* error) {
  JsonValue root;
  if (!parse_json(text, &root, error)) return false;
  if (!root.is_object()) {
    *error = "bench document is not a JSON object";
    return false;
  }
  doc->schema = root.int_or("schema_version", 0);
  if (doc->schema <= 0) {
    *error = "bench document has no schema_version (re-run `cgraf_bench run`)";
    return false;
  }
  doc->label = root.str_or("label", "");
  doc->sha = root.str_or("git_sha", "unknown");
  const JsonValue* results = root.find("results");
  if (results == nullptr || !results->is_array()) {
    *error = "bench document has no results array";
    return false;
  }
  for (const JsonValue& entry : results->arr) {
    if (!entry.is_object()) continue;
    std::string name = entry.str_or("case", "");
    if (name.empty()) name = entry.str_or("bench", "");
    if (name.empty()) continue;
    // Sweep-style suites reuse one case name across instances/args; fold
    // the distinguishing fields into the key so rows don't collapse.
    const std::string instance = entry.str_or("instance", "");
    if (!instance.empty()) name += "/" + instance;
    if (const JsonValue* arg = entry.find("arg");
        arg != nullptr && arg->is_number()) {
      name += "/arg=" + std::to_string(static_cast<long>(arg->num));
    }
    for (const char* variant : {"pricing", "algorithm", "warm"}) {
      const JsonValue* v = entry.find(variant);
      if (v == nullptr) continue;
      if (v->is_string()) {
        name += std::string("/") + variant + "=" + v->str;
      } else if (v->type == JsonValue::Type::kBool) {
        name += std::string("/") + variant + (v->b ? "=1" : "=0");
      }
    }
    auto& metrics = doc->cases[name];
    for (const auto& [key, value] : entry.obj) {
      // Provenance/identity fields are not perf signals: a candidate run
      // on a bigger host must not trip the counter threshold.
      if (key == "schema_version" || key == "hardware_threads" ||
          key == "arg") {
        continue;
      }
      if (value.is_number()) metrics[key] = value.num;
    }
  }
  if (doc->cases.empty()) {
    *error = "bench document has no named result cases";
    return false;
  }
  return true;
}

}  // namespace

bool BenchComparison::has_regression() const {
  if (!missing_cases.empty()) return true;
  return std::any_of(deltas.begin(), deltas.end(),
                     [](const BenchDelta& d) { return d.regression; });
}

BenchComparison compare_bench_docs(const std::string& old_doc,
                                   const std::string& new_doc,
                                   const BenchThresholds& thresholds) {
  BenchComparison cmp;
  BenchDoc oldb, newb;
  std::string err;
  if (!load_doc(old_doc, &oldb, &err)) {
    cmp.error = "baseline: " + err;
    return cmp;
  }
  if (!load_doc(new_doc, &newb, &err)) {
    cmp.error = "candidate: " + err;
    return cmp;
  }
  cmp.ok = true;
  cmp.old_label = oldb.label;
  cmp.new_label = newb.label;
  cmp.old_sha = oldb.sha;
  cmp.new_sha = newb.sha;

  for (const auto& [name, old_metrics] : oldb.cases) {
    const auto it = newb.cases.find(name);
    if (it == newb.cases.end()) {
      cmp.missing_cases.push_back(name);
      continue;
    }
    ++cmp.cases_compared;
    for (const auto& [metric, old_value] : old_metrics) {
      const auto mit = it->second.find(metric);
      if (mit == it->second.end()) continue;  // metric dropped: not a perf
                                              // signal, schema evolution
      const double new_value = mit->second;
      BenchDelta d;
      d.case_name = name;
      d.metric = metric;
      d.old_value = old_value;
      d.new_value = new_value;
      d.ratio = old_value != 0.0 ? new_value / old_value
                                 : (new_value == 0.0 ? 1.0 : -1.0);
      if (is_wall_metric(metric)) {
        d.regression = old_value >= thresholds.min_wall_s &&
                       new_value > old_value * thresholds.wall_ratio;
      } else {
        // One-sided with an absolute floor so counters like "warm_hits: 2
        // -> 3" don't trip a 25% threshold on tiny denominators.
        d.regression = old_value >= 8.0 &&
                       new_value > old_value * thresholds.count_ratio;
      }
      cmp.deltas.push_back(std::move(d));
    }
  }
  for (const auto& [name, metrics] : newb.cases) {
    (void)metrics;
    if (oldb.cases.find(name) == oldb.cases.end()) {
      cmp.new_cases.push_back(name);
    }
  }
  return cmp;
}

std::string BenchComparison::to_text() const {
  std::string out;
  if (!ok) return "compare failed: " + error + "\n";
  out += "baseline: " + old_label + " (" + old_sha.substr(0, 12) + ")\n";
  out += "candidate: " + new_label + " (" + new_sha.substr(0, 12) + ")\n";
  out += "cases compared: " + std::to_string(cases_compared) + "\n";
  for (const auto& name : missing_cases) {
    out += "REGRESSION " + name + ": case missing from candidate\n";
  }
  for (const auto& name : new_cases) {
    out += "note: new case " + name + " (no baseline)\n";
  }
  AsciiTable t({"case", "metric", "old", "new", "ratio", ""});
  long regressions = 0;
  for (const auto& d : deltas) {
    // Keep the table focused: always print regressions, plus any move
    // beyond +/-20% for context.
    const bool notable = d.regression || d.ratio > 1.2 ||
                         (d.ratio >= 0.0 && d.ratio < 0.8);
    if (!notable) continue;
    if (d.regression) ++regressions;
    t.add_row({d.case_name, d.metric, fmt_double(d.old_value, 6),
               fmt_double(d.new_value, 6),
               d.ratio >= 0.0 ? fmt_double(d.ratio, 3) : "n/a",
               d.regression ? "REGRESSION" : ""});
  }
  if (t.num_rows() > 0) out += t.render();
  if (has_regression()) {
    out += "verdict: REGRESSION (" +
           std::to_string(regressions + static_cast<long>(
                                            missing_cases.size())) +
           " finding(s))\n";
  } else {
    out += "verdict: OK\n";
  }
  return out;
}

}  // namespace cgraf::obs
