// Span-based tracing with Chrome trace-event JSON export.
//
// The global Tracer collects completed spans and instant events from any
// thread; the export loads directly into chrome://tracing or Perfetto.
// Design constraints:
//   - Near-zero cost when disabled: Span's constructor is a relaxed atomic
//     load and an early return — no allocation, no lock, no clock read
//     (regression-tested in tests/obs/overhead_test.cpp).
//   - Thread-safe when enabled: events are appended under a mutex; each
//     thread gets its own small track id (lazily assigned, cached in a
//     thread_local), so parallel branch & bound workers appear as separate
//     lanes in the viewer.
//   - Timestamps come from util/clock.h (monotonic), microseconds since
//     enable().
//
// Span names must be string literals (or otherwise outlive the tracer);
// they are stored by pointer on the hot path.
//
// Hot-loop instrumentation (per-LP-solve spans in the simplex engine) is
// compiled out unless CGRAF_OBS_DETAIL is defined (cmake -DCGRAF_OBS_DETAIL=ON).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/sync.h"

namespace cgraf::obs {

struct TraceEvent {
  const char* name = "";
  char phase = 'X';     // 'X' complete, 'i' instant
  double ts_us = 0.0;   // since enable()
  double dur_us = 0.0;  // complete events only
  int tid = 0;
  std::string args;     // pre-rendered JSON object body (no braces), may be empty
};

class Tracer {
 public:
  static Tracer& global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Clears any previous events and starts collecting; t=0 is stamped here.
  void enable();
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds since enable() on the monotonic clock.
  double now_us() const;

  // Small stable id for the calling thread (first call assigns the next
  // free id). Cached per thread; interleaving several Tracer instances on
  // one thread re-assigns, which can split one thread across track ids —
  // harmless, and irrelevant for the global tracer.
  int thread_track();

  // Labels the calling thread's lane in the viewer (e.g. "bnb-worker-2").
  void name_thread(const std::string& name);

  void record(const char* name, char phase, double ts_us, double dur_us,
              std::string args);
  // Instant event at now() on the calling thread's track.
  void instant(const char* name, std::string args = {});

  // Full Chrome trace-event JSON document ({"traceEvents":[...]}).
  std::string to_json() const;
  bool write_json(const std::string& path, std::string* error) const;

  std::size_t num_events() const;
  std::vector<TraceEvent> snapshot() const;
  void clear();

 private:
  mutable Mutex mu_{"obs.tracer", lock_rank::kObsTracer};
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_{0};  // bumped by enable(); invalidates
                                         // cached thread track ids
  // Written under mu_ by enable() before any span exists; read without the
  // lock on the hot now_us() path. Unannotated on purpose: the epoch bump
  // orders the write against every span that can observe it.
  double t0_ = 0.0;
  int next_tid_ CGRAF_GUARDED_BY(mu_) = 0;
  std::vector<TraceEvent> events_ CGRAF_GUARDED_BY(mu_);
  std::map<int, std::string> track_names_ CGRAF_GUARDED_BY(mu_);
};

// RAII span: records one complete ('X') event from construction to
// destruction. When the tracer is disabled at construction the span is
// inert — every method is an immediate no-op.
class Span {
 public:
  explicit Span(const char* name) : Span(Tracer::global(), name) {}
  Span(Tracer& tracer, const char* name) {
    if (!tracer.enabled()) return;
    tracer_ = &tracer;
    name_ = name;
    t0_us_ = tracer.now_us();
  }
  ~Span() {
    if (tracer_ == nullptr) return;
    tracer_->record(name_, 'X', t0_us_, tracer_->now_us() - t0_us_,
                    std::move(args_));
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return tracer_ != nullptr; }

  // Annotations land in the event's "args" object. No-ops when inactive.
  Span& arg(const char* key, double v);
  Span& arg(const char* key, long v);
  Span& arg(const char* key, int v) { return arg(key, static_cast<long>(v)); }
  Span& arg(const char* key, bool v);
  Span& arg(const char* key, const char* v);
  Span& arg(const char* key, const std::string& v);

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = "";
  double t0_us_ = 0.0;
  std::string args_;
};

}  // namespace cgraf::obs
