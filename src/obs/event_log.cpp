#include "obs/event_log.h"

#include <cerrno>
#include <cmath>
#include <cstring>

#include "obs/build_info.h"
#include "obs/json_writer.h"
#include "util/check.h"
#include "util/clock.h"

namespace cgraf::obs {

namespace {

// Flush a thread buffer to the sink once it grows past this. Small enough
// that an aborted run loses at most a few KB per thread, large enough that
// sink-lock traffic stays rare relative to emission.
constexpr std::size_t kFlushThreshold = 16 * 1024;

// Epochs are globally unique across EventLog instances so a stale cached
// entry for a destroyed log can never match a new log that happens to be
// allocated at the same address.
std::atomic<std::uint64_t> g_epoch_source{0};

struct CachedBuf {
  const void* log = nullptr;
  std::uint64_t epoch = 0;
  void* buf = nullptr;
};

// A thread emits to very few logs (the global one, plus maybe a test's
// private instance), so a tiny fixed cache with linear scan is enough.
thread_local CachedBuf t_cache[2];

}  // namespace

EventLog& EventLog::global() {
  static EventLog* log = new EventLog();  // leaked: outlives exit-time dtors
  return *log;
}

EventLog::~EventLog() { close(); }

void EventLog::start() {
  epoch_.store(++g_epoch_source, std::memory_order_relaxed);
  t0_.store(now_seconds(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
  Event header(this, "log.header");
  header.arg("schema", kEventLogSchemaVersion)
      .arg("git_sha", git_sha())
      .arg("compiler", compiler_id())
      .arg("hardware_threads", hardware_threads());
}

bool EventLog::open(const std::string& path, std::string* error) {
  close();
  {
    MutexLock lk(&sink_mu_);
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr) {
      if (error != nullptr) {
        // Error path under sink_mu_, right after the failing fopen; the
        // racy static buffer is acceptable here and strerror_r is not
        // portable across libcs.
        *error = "cannot open event log '" + path + "': " +
                 std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
      }
      return false;
    }
    memory_mode_ = false;
  }
  start();
  return true;
}

void EventLog::open_memory() {
  close();
  {
    MutexLock lk(&sink_mu_);
    memory_mode_ = true;
    memory_.clear();
  }
  start();
}

double EventLog::now_us() const {
  return (now_seconds() - t0_.load(std::memory_order_relaxed)) * 1e6;
}

EventLog::ThreadBuf* EventLog::this_thread_buf() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  for (CachedBuf& c : t_cache) {
    if (c.log == this && c.epoch == epoch) {
      return static_cast<ThreadBuf*>(c.buf);
    }
  }
  ThreadBuf* buf = nullptr;
  {
    MutexLock lk(&reg_mu_);
    bufs_.push_back(std::make_unique<ThreadBuf>(next_tid_++));
    buf = bufs_.back().get();
  }
  // Evict the slot not pointing at this log (or the first one).
  CachedBuf* victim = &t_cache[0];
  for (CachedBuf& c : t_cache) {
    if (c.log != this) {
      victim = &c;
      break;
    }
  }
  victim->log = this;
  victim->epoch = epoch;
  victim->buf = buf;
  return buf;
}

int EventLog::thread_id() { return this_thread_buf()->tid; }

void EventLog::write_sink(const char* data, std::size_t size) {
  if (memory_mode_) {
    memory_.append(data, size);
  } else if (file_ != nullptr) {
    std::fwrite(data, 1, size, file_);
  }
}

void EventLog::flush_buf(ThreadBuf& buf) {
  MutexLock lk(&buf.mu);
  if (buf.data.empty()) return;
  MutexLock sink(&sink_mu_);
  write_sink(buf.data.data(), buf.data.size());
  buf.data.clear();
}

void EventLog::append_line(const std::string& line) {
  if (!enabled()) return;
  ThreadBuf* buf = this_thread_buf();
  MutexLock lk(&buf->mu);
  buf->data += line;
  buf->data += '\n';
  if (buf->data.size() >= kFlushThreshold) {
    MutexLock sink(&sink_mu_);
    write_sink(buf->data.data(), buf->data.size());
    buf->data.clear();
  }
}

void EventLog::flush() {
  MutexLock reg(&reg_mu_);
  for (auto& buf : bufs_) flush_buf(*buf);
  MutexLock sink(&sink_mu_);
  if (file_ != nullptr) std::fflush(file_);
}

void EventLog::close() {
  enabled_.store(false, std::memory_order_release);
  // Invalidate per-thread caches so a later reopen hands out fresh buffers.
  // The old ThreadBufs are deliberately NOT destroyed (only drained): a
  // thread that raced past the enabled_ check may still hold a pointer to
  // its buffer, and keeping the object alive makes that race harmless —
  // its late line simply never reaches the sink.
  epoch_.store(++g_epoch_source, std::memory_order_relaxed);
  MutexLock reg(&reg_mu_);
  for (auto& buf : bufs_) flush_buf(*buf);
  MutexLock sink(&sink_mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::string EventLog::memory_contents() {
  flush();
  MutexLock sink(&sink_mu_);
  return memory_;
}

// --- Event ---------------------------------------------------------------

namespace {

void append_key(std::string& out, const char* key) {
  out += ",\"";
  JsonWriter::append_escaped(out, key);
  out += "\":";
}

}  // namespace

Event::~Event() {
  if (log_ == nullptr) return;
  std::string line;
  line.reserve(48 + std::strlen(type_) + args_.size());
  line += "{\"type\":\"";
  JsonWriter::append_escaped(line, type_);
  line += "\",\"t\":";
  const double t = log_->now_us();
  line += std::to_string(static_cast<long long>(std::llround(t)));
  line += ",\"tid\":";
  line += std::to_string(log_->thread_id());
  line += args_;
  line += '}';
  log_->append_line(line);
}

Event& Event::arg(const char* key, double v) {
  if (log_ == nullptr) return *this;
  append_key(args_, key);
  if (!std::isfinite(v)) {
    args_ += "null";  // same policy as JsonWriter::value(double)
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    args_ += buf;
  }
  return *this;
}

Event& Event::arg(const char* key, long v) {
  if (log_ == nullptr) return *this;
  append_key(args_, key);
  args_ += std::to_string(v);
  return *this;
}

Event& Event::arg(const char* key, bool v) {
  if (log_ == nullptr) return *this;
  append_key(args_, key);
  args_ += v ? "true" : "false";
  return *this;
}

Event& Event::arg(const char* key, const char* v) {
  if (log_ == nullptr) return *this;
  append_key(args_, key);
  args_ += '"';
  JsonWriter::append_escaped(args_, v);
  args_ += '"';
  return *this;
}

Event& Event::arg(const char* key, const std::string& v) {
  if (log_ == nullptr) return *this;
  append_key(args_, key);
  args_ += '"';
  JsonWriter::append_escaped(args_, v);
  args_ += '"';
  return *this;
}

}  // namespace cgraf::obs
