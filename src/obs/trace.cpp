#include "obs/trace.h"

#include <cstdio>

#include "obs/json_writer.h"
#include "util/clock.h"

namespace cgraf::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

namespace {
// Epochs are drawn from a process-wide counter so no two enable() calls —
// even on different Tracer instances that happen to reuse an address —
// share one, which would let a stale thread-track cache survive.
std::atomic<std::uint64_t> g_next_epoch{1};
}  // namespace

void Tracer::enable() {
  MutexLock lk(&mu_);
  events_.clear();
  track_names_.clear();
  next_tid_ = 0;
  t0_ = now_seconds();
  epoch_.store(g_next_epoch.fetch_add(1, std::memory_order_relaxed),
               std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

double Tracer::now_us() const { return (now_seconds() - t0_) * 1e6; }

int Tracer::thread_track() {
  thread_local const Tracer* cached_owner = nullptr;
  thread_local std::uint64_t cached_epoch = 0;
  thread_local int cached_id = 0;
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
  if (cached_owner != this || cached_epoch != e) {
    MutexLock lk(&mu_);
    cached_id = next_tid_++;
    cached_owner = this;
    cached_epoch = e;
  }
  return cached_id;
}

void Tracer::name_thread(const std::string& name) {
  const int tid = thread_track();
  MutexLock lk(&mu_);
  track_names_[tid] = name;
}

void Tracer::record(const char* name, char phase, double ts_us, double dur_us,
                    std::string args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.phase = phase;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = thread_track();
  ev.args = std::move(args);
  MutexLock lk(&mu_);
  events_.push_back(std::move(ev));
}

void Tracer::instant(const char* name, std::string args) {
  if (!enabled()) return;
  record(name, 'i', now_us(), 0.0, std::move(args));
}

std::string Tracer::to_json() const {
  MutexLock lk(&mu_);
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& [tid, name] : track_names_) {
    w.begin_object()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", 1L)
        .field("tid", static_cast<long>(tid))
        .key("args")
        .begin_object()
        .field("name", name)
        .end_object()
        .end_object();
  }
  for (const TraceEvent& ev : events_) {
    w.begin_object()
        .field("name", ev.name)
        .field("ph", std::string_view(&ev.phase, 1))
        .field("ts", ev.ts_us)
        .field("pid", 1L)
        .field("tid", static_cast<long>(ev.tid));
    if (ev.phase == 'X') w.field("dur", ev.dur_us);
    if (ev.phase == 'i') w.field("s", "t");  // instant scope: thread
    if (!ev.args.empty()) {
      w.key("args").begin_object().raw(ev.args).end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

bool Tracer::write_json(const std::string& path, std::string* error) const {
  const std::string json = to_json();
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to '" + path + "'";
  return ok;
}

std::size_t Tracer::num_events() const {
  MutexLock lk(&mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  MutexLock lk(&mu_);
  return events_;
}

void Tracer::clear() {
  MutexLock lk(&mu_);
  events_.clear();
}

namespace {

void append_arg_key(std::string& args, const char* key) {
  if (!args.empty()) args += ',';
  args += '"';
  JsonWriter::append_escaped(args, key);
  args += "\":";
}

}  // namespace

Span& Span::arg(const char* key, double v) {
  if (tracer_ == nullptr) return *this;
  append_arg_key(args_, key);
  JsonWriter w;
  w.value(v);
  args_ += w.str();
  return *this;
}

Span& Span::arg(const char* key, long v) {
  if (tracer_ == nullptr) return *this;
  append_arg_key(args_, key);
  args_ += std::to_string(v);
  return *this;
}

Span& Span::arg(const char* key, bool v) {
  if (tracer_ == nullptr) return *this;
  append_arg_key(args_, key);
  args_ += v ? "true" : "false";
  return *this;
}

Span& Span::arg(const char* key, const char* v) {
  if (tracer_ == nullptr) return *this;
  append_arg_key(args_, key);
  args_ += JsonWriter::quoted(v);
  return *this;
}

Span& Span::arg(const char* key, const std::string& v) {
  if (tracer_ == nullptr) return *this;
  append_arg_key(args_, key);
  args_ += JsonWriter::quoted(v);
  return *this;
}

}  // namespace cgraf::obs
