#include "obs/json_reader.h"

#include <cmath>
#include <cstdlib>

namespace cgraf::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num_or(std::string_view key, double dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->num : dflt;
}

long JsonValue::int_or(std::string_view key, long dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? std::lround(v->num) : dflt;
}

bool JsonValue::bool_or(std::string_view key, bool dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type == Type::kBool) ? v->b : dflt;
}

std::string JsonValue::str_or(std::string_view key,
                              const std::string& dflt) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->str : dflt;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error, const JsonLimits& limits)
      : text_(text), error_(error), limits_(limits) {}

  bool run(JsonValue* out) {
    if (text_.size() > limits_.max_input_bytes) {
      return fail("input of " + std::to_string(text_.size()) +
                  " bytes exceeds the " +
                  std::to_string(limits_.max_input_bytes) + " byte limit");
    }
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after value");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (++depth_ > limits_.max_depth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out->type = JsonValue::Type::kString;
        ok = parse_string(&out->str);
        break;
      case 't':
        out->type = JsonValue::Type::kBool;
        out->b = true;
        ok = literal("true");
        break;
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->b = false;
        ok = literal("false");
        break;
      case 'n':
        out->type = JsonValue::Type::kNull;
        ok = literal("null");
        break;
      default: ok = parse_number(out);
    }
    --depth_;
    return ok;
  }

  bool parse_object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      JsonValue val;
      if (!parse_value(&val)) return false;
      out->obj.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue val;
      if (!parse_value(&val)) return false;
      out->arr.push_back(std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!parse_hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return fail("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("lone high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(*out, cp);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return fail("invalid value");
    }
    if (text_[pos_] == '0') {
      // JSON forbids leading zeros: 0 may only start "0", "0.x" or "0e…".
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return fail("invalid exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->type = JsonValue::Type::kNumber;
    out->num = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error,
                const JsonLimits& limits) {
  *out = JsonValue();
  Parser p(text, error, limits);
  return p.run(out);
}

}  // namespace cgraf::obs
