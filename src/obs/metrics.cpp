#include "obs/metrics.h"

#include <algorithm>

#include "obs/json_writer.h"
#include "util/check.h"

namespace cgraf::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  CGRAF_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<long>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<long> Histogram::bucket_counts() const {
  std::vector<long> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::percentile(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  const std::vector<long> counts = bucket_counts();
  long total = 0;
  for (const long c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the target observation (1-based, rounded up so p=1.0 lands on
  // the last observation and p=0.0 on the first).
  const double rank = std::max(1.0, p * static_cast<double>(total));
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i == bounds_.size()) {
      // Overflow bucket: unbounded above, so report the best lower bound.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double hi = bounds_[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds_[i - 1];
    const double frac = in_bucket > 0.0 ? (rank - cumulative) / in_bucket
                                        : 1.0;
    return lo + (hi - lo) * frac;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
}

Metrics& Metrics::global() {
  static Metrics metrics;
  return metrics;
}

Counter& Metrics::counter(std::string_view name) {
  MutexLock lk(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Metrics::gauge(std::string_view name) {
  MutexLock lk(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Metrics::histogram(std::string_view name,
                              std::vector<double> bounds) {
  MutexLock lk(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::string Metrics::to_json() const {
  MutexLock lk(&mu_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const double b : h->bounds()) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const long c : h->bucket_counts()) w.value(c);
    w.end_array();
    w.field("count", h->count());
    w.field("sum", h->sum());
    w.field("p50", h->percentile(0.50));
    w.field("p90", h->percentile(0.90));
    w.field("p99", h->percentile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

void Metrics::clear() {
  MutexLock lk(&mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace cgraf::obs
