// Incremental ST_target probe solving.
//
// Step 1's binary search, the remapper's LP presearch and its
// Delta-relaxation retry loop all solve a *sequence* of near-identical
// models: between two probes only the stress rows' right-hand side
// (`ST_target`) changes. A ProbeSession builds the RemapModel once, patches
// only those rows between probes (RemapModel::patch_st_target), keeps one
// SimplexEngine alive across pure-LP probes so the computational form is
// standardized once, and warm-starts every solve from the previous probe's
// returned basis — falling back to the cold slack basis whenever the
// chained basis is stale or its factorization singular. With warm == false
// the session degrades to the legacy behavior (full rebuild + cold solve
// per probe), which the differential tests and the `--warm-probes=off`
// escape hatch rely on.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/model_builder.h"
#include "core/two_step.h"
#include "milp/simplex.h"

namespace cgraf::core {

struct ProbeSessionStats {
  int probes = 0;
  // Solves that actually started from the previous probe's basis.
  int warm_hits = 0;
  // A chained basis was available but abandoned for the slack basis
  // (engine-side rejection of a stale/singular basis, or a numerical-error
  // retry).
  int basis_fallbacks = 0;
  // Full build_remap_model calls (the first build counts; warm sessions
  // rebuild only when a trivially-infeasible model must be re-attempted at
  // a different target).
  int model_rebuilds = 0;
  // RHS-only patches that replaced a rebuild.
  int patches = 0;
  // Probes whose LP work engaged the dual simplex loop — the expected case
  // for every warm-chained probe under LpAlgorithm::kAutoWarm.
  int dual_solves = 0;
};

class ProbeSession {
 public:
  // `spec.st_target` is ignored; every probe supplies its own target. The
  // pointers inside `spec` (design, base floorplan, monitored paths) are
  // borrowed and must outlive the session. `solver.lp_only` selects the
  // persistent-engine pure-LP path; otherwise each probe runs the full
  // two-step solve on the patched model with a chained warm basis.
  ProbeSession(RemapModelSpec spec, TwoStepOptions solver, bool warm = true);

  // Solves the spec at `st_target`. Results are verdict-identical to a
  // cold rebuild at the same target.
  TwoStepResult solve(double st_target);

  const ProbeSessionStats& stats() const { return stats_; }
  // The session's model as of the last solve (valid once solve() ran).
  const RemapModel& model() const { return rm_; }

  // Brings the session's model to `target` without solving and returns it
  // (nullptr when the target is trivially infeasible). The portfolio uses
  // this to encode a heuristic incumbent against the exact model before
  // racing it.
  const RemapModel* model_at(double target);

  // Seed the next solve()'s branch & bound with a known-feasible solution
  // vector (see MipOptions::initial_incumbent; same not-owned lifetime
  // rules). Null clears the seed. No effect on lp_only sessions.
  void set_initial_incumbent(const std::vector<double>* seed) {
    solver_.mip.initial_incumbent = seed;
  }
  // Cooperative cancellation for every solve this session runs (the
  // portfolio race's kill switch). Null clears it.
  void set_cancel(const std::atomic<bool>* cancel) {
    solver_.cancel = cancel;
  }

 private:
  // Brings rm_ (and the persistent engine's row bounds) to `target`.
  // Returns false when the target is trivially infeasible.
  bool ensure_model(double target);
  TwoStepResult solve_lp_probe();

  RemapModelSpec spec_;
  TwoStepOptions solver_;
  bool warm_ = true;
  RemapModel rm_;
  bool built_ = false;
  std::unique_ptr<milp::SimplexEngine> engine_;  // lp_only probes only
  std::vector<milp::ColStatus> basis_;           // last returned basis
  ProbeSessionStats stats_;
};

}  // namespace cgraf::core
