// Step 2.1 of Algorithm 1: critical-path rotation.
//
// Freezing critical-path (CP) ops at their original PEs protects the CPD
// but can pin the most-stressed PEs. Each context's frozen CP group is
// therefore rigidly re-oriented among the 8 grid isometries (4 rotations x
// mirror, paper Fig. 4(a)) — Manhattan distances, and hence the CP delay,
// are invariant under all 8. Orientations are drawn with the paper's
// diversity rule: with <= 8 contexts all orientations differ; beyond 8,
// each orientation appears floor(C/8) or floor(C/8)+1 times. Among random
// draws respecting the rule, the plan with the smallest stress-weighted
// overlap of frozen PEs across contexts wins.
#pragma once

#include <cstdint>
#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "util/rng.h"

namespace cgraf::core {

struct RotationOptions {
  int restarts = 12;
  std::uint64_t seed = 1;
  // The paper's full scheme considers all 8^C orientation combinations but
  // notes the 8^C runtime blow-up; when 8^C fits under this limit the
  // combinations are enumerated exactly (minimum-overlap plan), otherwise
  // the randomized diversity-rule draw is used. 0 disables enumeration.
  long exhaustive_limit = 4096;  // covers C <= 4
};

struct RotationResult {
  // Baseline floorplan with each context's frozen ops moved to their
  // re-oriented PEs (free ops untouched; the result is *not* necessarily a
  // valid floorplan — free ops are about to be re-bound by the MILP).
  Floorplan rotated_base;
  std::vector<int> orientation_per_context;  // 0..7, 0 = identity
  double overlap_cost = 0.0;  // stress-weighted frozen-PE overlap
  bool ok = false;
};

// Applies grid isometry `orientation` (0..7) to `points` and translates the
// result so its bounding box lands as close as possible to the original
// bounding-box corner while staying inside the fabric.
std::vector<Point> apply_orientation(const std::vector<Point>& points,
                                     int orientation, const Fabric& fabric);

// Plans rotations for the per-context frozen op groups. `frozen_by_context`
// lists each context's frozen op ids (possibly empty).
RotationResult rotate_critical_paths(
    const Design& design, const Floorplan& baseline,
    const std::vector<std::vector<int>>& frozen_by_context,
    const RotationOptions& opts = {});

}  // namespace cgraf::core
