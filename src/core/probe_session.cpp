#include "core/probe_session.h"

#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/clock.h"
#include "verify/certify.h"

namespace cgraf::core {

ProbeSession::ProbeSession(RemapModelSpec spec, TwoStepOptions solver,
                           bool warm)
    : spec_(std::move(spec)), solver_(std::move(solver)), warm_(warm) {
  CGRAF_ASSERT(spec_.design != nullptr && spec_.base != nullptr);
  // Either plumbing route reaches the persistent LP engine and the nested
  // two-step solves alike.
  if (solver_.events == nullptr) solver_.events = solver_.lp.events;
  if (solver_.lp.events == nullptr) solver_.lp.events = solver_.events;
}

bool ProbeSession::ensure_model(double target) {
  // A trivially-infeasible model records no rows to patch; the only way to
  // re-probe it at another target is a fresh build. (Only the frozen-stress
  // early-out depends on the target, but rebuilding on every reason is
  // exactly what the cold path does, so verdicts stay identical.)
  if (!built_ || (rm_.trivially_infeasible && target != rm_.st_target)) {
    spec_.st_target = target;
    rm_ = build_remap_model(spec_);
    built_ = true;
    ++stats_.model_rebuilds;
    engine_.reset();
    basis_.clear();
    return !rm_.trivially_infeasible;
  }
  if (rm_.trivially_infeasible) return false;
  if (target != rm_.st_target) {
    // patch_st_target leaves the model at its previous target when the new
    // one is infeasible outright, so later probes can still patch from it.
    if (!rm_.patch_st_target(target)) return false;
    ++stats_.patches;
    if (engine_ != nullptr) {
      for (const int row : rm_.stress_rows) {
        if (row < 0) continue;
        const milp::Constraint& c = rm_.model.constraint(row);
        engine_->set_row_bounds(row, c.lb, c.ub);
      }
    }
  }
  return true;
}

const RemapModel* ProbeSession::model_at(double target) {
  if (!ensure_model(target)) return nullptr;
  return &rm_;
}

TwoStepResult ProbeSession::solve_lp_probe() {
  obs::Span span("probe_session.lp");
  TwoStepResult res;
  res.stats.vars_total = rm_.num_binary_vars;
  if (engine_ == nullptr) {
    milp::Model relaxed = rm_.model;
    for (int v = 0; v < relaxed.num_vars(); ++v) relaxed.relax_var(v);
    engine_ = std::make_unique<milp::SimplexEngine>(relaxed, solver_.lp);
  }

  const bool have_warm = !basis_.empty();
  milp::LpResult lp = engine_->solve(have_warm ? &basis_ : nullptr);
  if (have_warm && !lp.warm_used) {
    // Stale/singular basis: the engine already restarted from the slack
    // basis on its own.
    ++stats_.basis_fallbacks;
  } else if (have_warm && lp.status == milp::SolveStatus::kNumericalError) {
    // The chained basis factored but drove the solve into numerical
    // trouble; a cold re-solve is the answer a fresh session would give.
    ++stats_.basis_fallbacks;
    lp = engine_->solve(nullptr);
  } else if (have_warm) {
    ++stats_.warm_hits;
  }
  res.stats.warm_start_used = have_warm && lp.warm_used;
  if (!lp.basis.empty()) basis_ = lp.basis;

  if (lp.dual_used) ++stats_.dual_solves;
  res.stats.lp_status = lp.status;
  res.stats.lp_iterations = lp.iterations;
  res.stats.lp_seconds = lp.seconds;
  res.stats.lp_algorithm = solver_.lp.algorithm;
  res.stats.lp_stage.add(lp.stats);
  res.basis = lp.basis;
  span.arg("status", milp::to_string(lp.status))
      .arg("iterations", lp.iterations)
      .arg("warm", res.stats.warm_start_used)
      .arg("dual", lp.dual_used);
  if (lp.status != milp::SolveStatus::kOptimal) {
    res.status = lp.status == milp::SolveStatus::kUnbounded
                     ? milp::SolveStatus::kNumericalError
                     : lp.status;
    return res;
  }
  // Same acceptance gate as solve_two_step's lp_only path: the feasibility
  // verdict is independently certified (integrality waived).
  res.status = milp::SolveStatus::kOptimal;
  if (solver_.verify.enabled) {
    const verify::Certificate cert = verify::certify_solution(
        rm_.model, lp.x, solver_.verify.tol, /*relaxed=*/true);
    if (cert.ok) {
      res.certified = true;
    } else {
      obs::Metrics::global().counter("verify.solution_rejections").add(1);
      res.certified = false;
      res.certify_error = cert.summary();
      res.status = milp::SolveStatus::kNumericalError;
    }
  }
  return res;
}

TwoStepResult ProbeSession::solve(double st_target) {
  ++stats_.probes;
  // Snapshot for the probe.solve record: the deltas below ARE the session's
  // accounting, so the analyzer's warm-hit/fallback totals summed over
  // probe.solve events match ProbeSessionStats exactly.
  const ProbeSessionStats before = stats_;
  const double t0 = now_seconds();
  const char* mode = "two_step";

  TwoStepResult res = [&]() -> TwoStepResult {
    if (!warm_) {
      // Forced-cold mode: the legacy rebuild-everything path, byte for
      // byte.
      mode = "cold";
      spec_.st_target = st_target;
      rm_ = build_remap_model(spec_);
      built_ = true;
      ++stats_.model_rebuilds;
      return solve_two_step(rm_, solver_);
    }

    if (!ensure_model(st_target)) {
      mode = "trivial_infeasible";
      TwoStepResult r;
      r.status = milp::SolveStatus::kInfeasible;
      return r;
    }
    if (solver_.lp_only) {
      mode = "lp";
      return solve_lp_probe();
    }

    TwoStepOptions probe_opts = solver_;
    const bool have_warm = !basis_.empty();
    probe_opts.warm_basis = have_warm ? &basis_ : nullptr;
    TwoStepResult r = solve_two_step(rm_, probe_opts);
    if (have_warm) {
      if (r.stats.warm_start_used) ++stats_.warm_hits;
      else ++stats_.basis_fallbacks;
    }
    if (r.stats.lp_stage.dual_iterations > 0) ++stats_.dual_solves;
    if (!r.basis.empty()) basis_ = r.basis;
    return r;
  }();

  obs::Event ev(solver_.events, "probe.solve");
  if (ev.active()) {
    ev.arg("target", st_target)
        .arg("mode", mode)
        .arg("status", milp::to_string(res.status))
        .arg("warm_hit", stats_.warm_hits > before.warm_hits)
        .arg("fallback", stats_.basis_fallbacks > before.basis_fallbacks)
        .arg("rebuild", stats_.model_rebuilds > before.model_rebuilds)
        .arg("patch", stats_.patches > before.patches)
        .arg("dual", stats_.dual_solves > before.dual_solves)
        .arg("lp_iterations",
             res.stats.lp_iterations + res.stats.mip_lp_iterations)
        .arg("seconds", now_seconds() - t0);
  }
  return res;
}

}  // namespace cgraf::core
