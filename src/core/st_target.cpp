#include "core/st_target.h"

#include <algorithm>

#include "cgrra/stress.h"
#include "core/probe_session.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/clock.h"
#include "verify/input_lint.h"

namespace cgraf::core {

StTargetResult find_st_target(const Design& design, const Floorplan& baseline,
                              const StTargetOptions& opts) {
  obs::Span search_span("st_target.search");
  obs::EventLog* const events = opts.solver.events != nullptr
                                    ? opts.solver.events
                                    : opts.solver.lp.events;
  StTargetResult res;
  // Input boundary: compute_stress and the model build below index the
  // design freely, so garbage must be turned away first (DL rule errors).
  if (!verify::lint_inputs(design, &baseline).clean()) {
    res.ok = false;
    obs::Event(events, "st.search_end")
        .arg("st_target", 0.0)
        .arg("probes", 0L)
        .arg("rejected_by_input_lint", true);
    return res;
  }
  const StressMap stress = compute_stress(design, baseline);
  res.st_up = stress.max_accumulated();
  res.st_low = stress.avg_accumulated();
  obs::Event(events, "st.search_begin")
      .arg("st_low", res.st_low)
      .arg("st_up", res.st_up);
  if (res.st_up <= 0.0) {
    res.ok = true;  // no stress at all; nothing to balance
    res.st_target = 0.0;
    obs::Event(events, "st.search_end")
        .arg("st_target", res.st_target)
        .arg("probes", static_cast<long>(res.probes))
        .arg("warm_hits", 0L)
        .arg("basis_fallbacks", 0L)
        .arg("lp_iterations", res.lp_iterations);
    return res;
  }

  // Step 1 is delay-unaware: every op is free and every PE is a candidate.
  const int n_ops = design.num_ops();
  std::vector<char> frozen(static_cast<std::size_t>(n_ops), 0);
  std::vector<std::vector<int>> candidates(static_cast<std::size_t>(n_ops));
  for (auto& c : candidates) {
    c.resize(static_cast<std::size_t>(design.fabric.num_pes()));
    for (int pe = 0; pe < design.fabric.num_pes(); ++pe)
      c[static_cast<std::size_t>(pe)] = pe;
  }

  // All probes share one spec (only st_target differs), so the session
  // builds the model once and patches the stress rows between probes.
  RemapModelSpec spec;
  spec.design = &design;
  spec.base = &baseline;
  spec.frozen = std::move(frozen);
  spec.candidates = std::move(candidates);
  spec.monitored = nullptr;  // no CP / path-delay constraints in Step 1
  // LP-only probes are pure feasibility: the null objective lets the
  // simplex stop as soon as phase 1 closes.
  spec.objective = opts.confirm_with_ilp ? ObjectiveMode::kMinPerturbation
                                         : ObjectiveMode::kNull;
  TwoStepOptions solver = opts.solver;
  solver.lp_only = !opts.confirm_with_ilp;
  ProbeSession session(std::move(spec), solver, opts.warm_probes);

  auto feasible = [&](double target) {
    // One span per binary-search probe, annotated with the probed target
    // and whether the (LP or ILP) feasibility oracle accepted it.
    obs::Span probe_span("st_target.probe");
    probe_span.arg("st_target", target);
    const double t_probe = now_seconds();
    const TwoStepResult r = session.solve(target);
    ++res.probes;
    res.lp_iterations += r.stats.lp_iterations;
    res.lp_stage.add(r.stats.lp_stage);
    bool ok = r.status == milp::SolveStatus::kOptimal;
    // ILP-confirmed probes also get the cgrra-level certificate: the stress
    // bound must hold on the decoded floorplan itself, not just the model.
    if (ok && opts.confirm_with_ilp && solver.verify.enabled) {
      verify::FloorplanSpec fspec;
      fspec.design = &design;
      fspec.st_target = target;
      const verify::Certificate cert =
          verify::certify_floorplan(fspec, r.floorplan, solver.verify.tol);
      if (!cert.ok) {
        ++res.certify_failures;
        obs::Metrics::global().counter("verify.floorplan_rejections").add(1);
        ok = false;
      }
    }
    probe_span.arg("feasible", ok).arg("warm", r.stats.warm_start_used);
    obs::Metrics::global().counter("st_target.probes").add(1);
    const double probe_seconds = now_seconds() - t_probe;
    obs::Event(events, "st.probe")
        .arg("target", target)
        .arg("feasible", ok)
        .arg("seconds", probe_seconds);
    res.probe_log.push_back({target, ok, probe_seconds});
    return ok;
  };

  const auto finish = [&] {
    const ProbeSessionStats& ps = session.stats();
    res.warm_hits = ps.warm_hits;
    res.basis_fallbacks = ps.basis_fallbacks;
    res.model_rebuilds = ps.model_rebuilds;
    res.dual_solves = ps.dual_solves;
    obs::Metrics::global().counter("st_target.warm_hits").add(ps.warm_hits);
    obs::Metrics::global()
        .counter("st_target.basis_fallbacks")
        .add(ps.basis_fallbacks);
    obs::Metrics::global().counter("st_target.dual_solves").add(ps.dual_solves);
    obs::Metrics::global()
        .counter("st_target.dual_iterations")
        .add(res.lp_stage.dual_iterations);
    obs::Metrics::global()
        .counter("st_target.bound_flips")
        .add(res.lp_stage.bound_flips);
    search_span.arg("st_target", res.st_target)
        .arg("st_low", res.st_low)
        .arg("st_up", res.st_up)
        .arg("probes", static_cast<long>(res.probes))
        .arg("warm_hits", static_cast<long>(ps.warm_hits))
        .arg("basis_fallbacks", static_cast<long>(ps.basis_fallbacks))
        .arg("dual_solves", static_cast<long>(ps.dual_solves));
    obs::Event(events, "st.search_end")
        .arg("st_target", res.st_target)
        .arg("probes", static_cast<long>(res.probes))
        .arg("warm_hits", static_cast<long>(ps.warm_hits))
        .arg("basis_fallbacks", static_cast<long>(ps.basis_fallbacks))
        .arg("lp_iterations", res.lp_iterations);
  };

  double lo = res.st_low;
  double hi = res.st_up;  // the baseline itself proves feasibility here
  // The average is usually infeasible (perfect balance is rarely integral);
  // probe it once so a feasible ST_low short-circuits the search.
  if (feasible(lo)) {
    res.ok = true;
    res.st_target = lo;
    finish();
    return res;
  }
  const double tol = std::max(1e-9, opts.tol_frac * (res.st_up - res.st_low));
  double best = hi;
  for (int it = 0; it < opts.max_iters && hi - lo > tol; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      best = mid;
      hi = mid;
    } else {
      lo = mid;
    }
  }
  res.ok = true;
  res.st_target = best;
  finish();
  return res;
}

}  // namespace cgraf::core
