// Algorithm 1: the aging-aware re-mapping design flow (the paper's main
// contribution). Orchestrates Step 1 (stress-target search), Step 2.1
// (critical-path freezing, optionally with rotation), Step 2.2 (monitored
// path constraint generation), Step 2.3 (the Delta-relaxation solve loop
// with STA re-check) and Step 3 (MTTF computation).
#pragma once

#include <cstdint>
#include <string>

#include "aging/mttf.h"
#include "core/candidates.h"
#include "core/local_search.h"
#include "core/rotation.h"
#include "core/st_target.h"
#include "core/strategy.h"
#include "core/two_step.h"
#include "timing/paths.h"

namespace cgraf::core {

enum class RemapMode {
  kFreeze,  // critical-path ops pinned at their original PEs (Table I "Freeze")
  kRotate,  // critical paths re-oriented first (Table I "Rotate")
};

// Solver defaults tuned for the re-mapping models: they are feasibility
// problems, so branch & bound stops at the first incumbent, and a node/time
// cap turns pathological instances into an "infeasible at this st_target"
// answer that Algorithm 1's Delta relaxation absorbs.
inline TwoStepOptions default_remap_solver_options() {
  TwoStepOptions o;
  o.mip.stop_at_first_incumbent = true;
  o.mip.max_nodes = 20000;
  o.mip.time_limit_s = 120.0;
  o.lp.time_limit_s = 300.0;
  return o;
}

struct RemapOptions {
  RemapMode mode = RemapMode::kRotate;

  // Step 2.2: monitor paths within this fraction of the CPD (paper: 20%).
  double path_margin = 0.20;
  int max_monitored_paths = 1500;
  // Per-context cap on extracted critical paths (the frozen set is their
  // union).
  int max_critical_paths_per_context = 8;

  // Step 2.3: st_target relaxation step Delta, as a fraction of
  // (ST_up - ST_low), and the outer-iteration budget.
  double delta_frac = 0.05;
  int max_outer_iters = 40;
  // Before the Delta loop, binary-search the smallest st_target whose LP
  // relaxation (with path constraints) is feasible, and start there. Pure
  // speed optimization: the Delta loop would reach the same value in
  // O(1/delta_frac) expensive integer attempts.
  bool lp_presearch = true;
  int lp_presearch_probes = 6;
  // After the first successful target, bisect back toward the last failed
  // one up to this many times to tighten the achieved balance.
  int refine_probes = 3;

  // Step 2.1 rotation controls.
  int rotation_restarts = 12;
  int rotation_retries = 2;  // re-draw rotations if the plan can't close

  // Incremental probe sessions (core/probe_session.h) for Step 1's binary
  // search, the LP presearch and the Delta-relaxation retry loop: the remap
  // model is built once per geometry, only the stress-target rows are
  // patched between attempts, and each LP warm-starts from the previous
  // attempt's basis. Off = the legacy full rebuild + cold solve per
  // attempt (the `--warm-probes off` escape hatch).
  bool warm_probes = true;

  std::uint64_t seed = 1;
  bool verbose = false;  // per-iteration progress on stderr

  CandidateOptions candidates{};
  StTargetOptions st_search{};
  TwoStepOptions solver = default_remap_solver_options();
  ObjectiveMode objective = ObjectiveMode::kMinPerturbation;

  // How each Delta-loop attempt is solved (core/strategy.h): the exact
  // MILP pipeline (dive / fix-once / ilp rounding), the shift/swap local
  // search alone, or the first-finisher-wins portfolio of both. Exact
  // strategies override solver.strategy from the table.
  SolveStrategy strategy = SolveStrategy::kExactDive;
  // Local-search knobs for kLocalSearch and kPortfolio. The per-attempt
  // stream mixes ls.seed with the outer iteration so Delta-loop retries
  // explore differently but reproducibly.
  LocalSearchOptions ls{};

  // Fault recovery: PEs that must not host any operation (worn out or
  // failed fabric cells). Ops currently bound there — critical or not —
  // become free and are re-bound elsewhere; the CPD guarantee still holds
  // (the attempt is rejected if no such floorplan exists). With a
  // non-empty list, a floorplan that avoids the blocked PEs counts as
  // success even if the stress balance does not improve.
  std::vector<int> blocked_pes;

  aging::NbtiParams nbti{};
  thermal::ThermalParams thermal{};

  // Independent verification of every accepted result (verify/certify.h):
  // each attempt's floorplan is re-validated straight from the cgrra data
  // model (exclusivity, stress <= st_target, frozen ops pinned, monitored
  // paths within budget) and the solver-level solution certificate is
  // enabled too. Attempts that fail certification are rejected as if
  // infeasible.
  verify::VerifyOptions verify;
};

struct RemapResult {
  bool improved = false;   // stress reduced with CPD held
  Floorplan floorplan;     // final floorplan (baseline when !improved)

  double cpd_before_ns = 0.0;
  double cpd_after_ns = 0.0;
  double st_max_before = 0.0;
  double st_max_after = 0.0;
  double st_avg = 0.0;             // fabric-wide average (ST_low)
  double st_target_initial = 0.0;  // Step-1 lower bound
  double st_target_final = 0.0;    // value that produced the result

  aging::MttfReport mttf_before;
  aging::MttfReport mttf_after;
  double mttf_gain = 1.0;  // MTTF_after / MTTF_before (Table I metric)

  int outer_iterations = 0;
  int num_frozen_ops = 0;
  int num_monitored_paths = 0;
  int rotation_attempts = 0;
  // Aggregated incremental-probe accounting across Step 1, the presearch
  // and the Delta loop (see ProbeSessionStats).
  int probe_warm_hits = 0;
  int probe_basis_fallbacks = 0;
  int probe_model_rebuilds = 0;
  TwoStepStats last_solve;
  // Local-search accounting, aggregated over every attempt that ran the
  // heuristic (kLocalSearch and the portfolio's LS side + sprints).
  LocalSearchStats ls_stats;
  // Portfolio race outcomes across the Delta loop.
  int portfolio_races = 0;
  int portfolio_exact_wins = 0;
  int portfolio_ls_wins = 0;
  int portfolio_seeded = 0;  // races whose exact side got an LS incumbent
  double seconds = 0.0;
  std::string note;  // human-readable outcome summary

  // Verification outcome (opts.verify.enabled): the returned floorplan
  // passed the independent cgrra-level certificate, and how many attempts
  // were thrown away because certification rejected them.
  bool certified = false;
  int certify_rejections = 0;
};

RemapResult aging_aware_remap(const Design& design, const Floorplan& baseline,
                              const RemapOptions& opts = {});

}  // namespace cgraf::core
