// The one table of remap solve strategies, shared by cgraf_cli's --strategy
// parsing, RemapOptions and the report printers. Every consumer resolves
// names through parse_strategy()/to_string() so a strategy added here is
// immediately parseable, printable and listed in usage text — the CL011
// lint rule rejects ad-hoc strategy-name string comparisons anywhere else.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/two_step.h"

namespace cgraf::core {

enum class SolveStrategy {
  // Exact MILP pipeline, distinguished by the two-step rounding mode.
  kExactDive,     // iterated LP dive (default; paper's pre-mapping iterated)
  kExactFixOnce,  // the paper's literal one-pass fix, then residual ILP
  kExactIlp,      // pure one-shot ILP (scaling baseline)
  // Shift/swap local search (core/local_search.h): heuristic, certifier-
  // checked, no solver code involved.
  kLocalSearch,
  // First-finisher-wins race of the exact pipeline against the local
  // search, with an LS sprint seeding the B&B cutoff (core/portfolio.h).
  kPortfolio,
};

struct StrategyInfo {
  SolveStrategy strategy;
  const char* name;     // canonical CLI value
  const char* alias;    // secondary CLI spelling ("" when none)
  bool exact;           // runs the MILP pipeline
  bool heuristic;       // runs the local-search engine
  // Two-step rounding mode driven by this strategy (meaningful when exact;
  // kLocalSearch carries the default for the portfolio's exact side).
  RoundingStrategy rounding;
  const char* summary;  // one-liner for usage/help text
};

// All strategies, in CLI listing order.
const std::vector<StrategyInfo>& strategy_table();

// Lookup by enum; never nullptr (every enumerator has a table row).
const StrategyInfo& strategy_info(SolveStrategy s);

// Lookup by canonical name or alias; nullptr when unknown.
const StrategyInfo* parse_strategy(std::string_view name);

const char* to_string(SolveStrategy s);

// Rounding-mode name for events/reports ("iterative_dive", ...), kept here
// so printers and the event vocabulary share one spelling.
const char* to_string(RoundingStrategy s);

// "dive|fix-once|ilp|ls|portfolio" — for usage strings and error messages.
std::string strategy_cli_values();

}  // namespace cgraf::core
