#include "core/local_search.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/geometry.h"
#include "util/rng.h"

namespace cgraf::core {

void LocalSearchStats::add(const LocalSearchStats& other) {
  moves_examined += other.moves_examined;
  moves_accepted += other.moves_accepted;
  shifts_accepted += other.shifts_accepted;
  swaps_accepted += other.swaps_accepted;
  restarts_run += other.restarts_run;
  oracle_calls += other.oracle_calls;
  oracle_rejections += other.oracle_rejections;
  start_repairs += other.start_repairs;
  seconds += other.seconds;
}

// --- LsState -------------------------------------------------------------

LsState::LsState(const RemapModelSpec& spec) : spec_(&spec) {
  CGRAF_ASSERT(spec.design != nullptr && spec.base != nullptr);
  design_ = spec.design;
  n_ops_ = design_->num_ops();
  n_pes_ = design_->fabric.num_pes();
  n_ctx_ = design_->num_contexts;
  fp_ = *spec.base;
  CGRAF_ASSERT(static_cast<int>(fp_.op_to_pe.size()) == n_ops_);
  CGRAF_ASSERT(spec.frozen.empty() ||
               static_cast<int>(spec.frozen.size()) == n_ops_);
  CGRAF_ASSERT(spec.candidates.empty() ||
               static_cast<int>(spec.candidates.size()) == n_ops_);

  op_stress_.resize(static_cast<std::size_t>(n_ops_));
  for (int op = 0; op < n_ops_; ++op) {
    op_stress_[static_cast<std::size_t>(op)] =
        op_stress(design_->ops[static_cast<std::size_t>(op)], design_->fabric);
  }

  occ_.assign(static_cast<std::size_t>(n_ctx_) *
                  static_cast<std::size_t>(n_pes_),
              -1);
  for (int op = 0; op < n_ops_; ++op) {
    const int pe = fp_.pe_of(op);
    CGRAF_ASSERT(pe >= 0 && pe < n_pes_);
    const int ctx = design_->ops[static_cast<std::size_t>(op)].context;
    CGRAF_ASSERT(ctx >= 0 && ctx < n_ctx_);
    const std::size_t slot =
        static_cast<std::size_t>(ctx) * static_cast<std::size_t>(n_pes_) +
        static_cast<std::size_t>(pe);
    CGRAF_ASSERT(occ_[slot] < 0 && "base binding violates exclusivity");
    occ_[slot] = op;
  }

  pe_stress_.resize(static_cast<std::size_t>(n_pes_));
  for (int pe = 0; pe < n_pes_; ++pe)
    pe_stress_[static_cast<std::size_t>(pe)] = pe_stress_from_occ(pe);

  op_disp_.assign(static_cast<std::size_t>(n_ops_), 0.0);
  for (int op = 0; op < n_ops_; ++op)
    op_disp_[static_cast<std::size_t>(op)] = op_disp_at(op, fp_.pe_of(op));

  op_paths_.assign(static_cast<std::size_t>(n_ops_), {});
  if (spec.monitored != nullptr) {
    path_delay_ns_.resize(spec.monitored->size());
    for (std::size_t p = 0; p < spec.monitored->size(); ++p) {
      const timing::TimingPath& path = (*spec.monitored)[p];
      for (const int op : path.ops) {
        CGRAF_ASSERT(op >= 0 && op < n_ops_);
        std::vector<int>& touched = op_paths_[static_cast<std::size_t>(op)];
        if (touched.empty() || touched.back() != static_cast<int>(p))
          touched.push_back(static_cast<int>(p));
      }
      path_delay_ns_[p] = path_delay_with(static_cast<int>(p), -1, -1, -1, -1);
    }
  }
}

double LsState::pe_stress_from_occ(int pe) const {
  double st = 0.0;
  for (int ctx = 0; ctx < n_ctx_; ++ctx) {
    const int op = occ_[static_cast<std::size_t>(ctx) *
                            static_cast<std::size_t>(n_pes_) +
                        static_cast<std::size_t>(pe)];
    if (op >= 0) st += op_stress_[static_cast<std::size_t>(op)];
  }
  return st;
}

double LsState::path_delay_with(int p, int op_a, int pe_a, int op_b,
                                int pe_b) const {
  const timing::TimingPath& path = (*spec_->monitored)[
      static_cast<std::size_t>(p)];
  const Fabric& fabric = design_->fabric;
  auto pe_at = [&](int op) {
    if (op == op_a) return pe_a;
    if (op == op_b) return pe_b;
    return fp_.pe_of(op);
  };
  double delay = 0.0;
  for (std::size_t i = 0; i < path.ops.size(); ++i) {
    delay += op_delay_ns(design_->ops[static_cast<std::size_t>(path.ops[i])],
                         fabric.delays());
    if (i + 1 < path.ops.size()) {
      delay += fabric.wire_delay_ns(fabric.loc(pe_at(path.ops[i])),
                                    fabric.loc(pe_at(path.ops[i + 1])));
    }
  }
  return delay;
}

double LsState::overshoot_stress(double st) const {
  if (spec_->st_target < 0.0) return 0.0;
  return std::max(0.0, st - spec_->st_target);
}

double LsState::overshoot_path(double delay_ns) const {
  if (spec_->monitored == nullptr || spec_->cpd_ns <= 0.0) return 0.0;
  return std::max(0.0, delay_ns - spec_->cpd_ns);
}

double LsState::op_disp_at(int op, int pe) const {
  const Fabric& fabric = design_->fabric;
  return static_cast<double>(manhattan(
      fabric.loc(pe), fabric.loc(spec_->base->pe_of(op))));
}

double LsState::stress_penalty() const {
  double pen = 0.0;
  for (int pe = 0; pe < n_pes_; ++pe)
    pen += overshoot_stress(pe_stress_[static_cast<std::size_t>(pe)]);
  return pen;
}

double LsState::path_penalty() const {
  double pen = 0.0;
  for (const double d : path_delay_ns_) pen += overshoot_path(d);
  return pen;
}

double LsState::displacement() const {
  double disp = 0.0;
  for (const double d : op_disp_) disp += d;
  return disp;
}

double LsState::max_stress() const {
  double mx = 0.0;
  for (const double st : pe_stress_) mx = std::max(mx, st);
  return mx;
}

double LsState::score() const {
  return kStressW * stress_penalty() + kPathW * path_penalty() +
         kDispW * displacement();
}

bool LsState::feasible() const {
  // The certifier's own tolerances are tighter than these; the oracle call
  // on acceptance is what actually gates the result.
  return stress_penalty() <= 1e-9 && path_penalty() <= 1e-9;
}

bool LsState::candidate_ok(int op, int pe) const {
  if (spec_->candidates.empty()) return true;
  const std::vector<int>& cand =
      spec_->candidates[static_cast<std::size_t>(op)];
  return std::find(cand.begin(), cand.end(), pe) != cand.end();
}

bool LsState::can_shift(int op, int pe) const {
  if (op < 0 || op >= n_ops_ || pe < 0 || pe >= n_pes_) return false;
  if (!spec_->frozen.empty() && spec_->frozen[static_cast<std::size_t>(op)])
    return false;
  if (pe == fp_.pe_of(op)) return false;
  if (!candidate_ok(op, pe)) return false;
  const int ctx = design_->ops[static_cast<std::size_t>(op)].context;
  return occ_[static_cast<std::size_t>(ctx) *
                  static_cast<std::size_t>(n_pes_) +
              static_cast<std::size_t>(pe)] < 0;
}

bool LsState::can_swap(int a, int b) const {
  if (a < 0 || a >= n_ops_ || b < 0 || b >= n_ops_ || a == b) return false;
  if (!spec_->frozen.empty() &&
      (spec_->frozen[static_cast<std::size_t>(a)] ||
       spec_->frozen[static_cast<std::size_t>(b)]))
    return false;
  const int pe_a = fp_.pe_of(a);
  const int pe_b = fp_.pe_of(b);
  if (pe_a == pe_b) return false;  // a swap in place is a no-op
  if (!candidate_ok(a, pe_b) || !candidate_ok(b, pe_a)) return false;
  const int ctx_a = design_->ops[static_cast<std::size_t>(a)].context;
  const int ctx_b = design_->ops[static_cast<std::size_t>(b)].context;
  const int occ_ab = occ_[static_cast<std::size_t>(ctx_a) *
                              static_cast<std::size_t>(n_pes_) +
                          static_cast<std::size_t>(pe_b)];
  const int occ_ba = occ_[static_cast<std::size_t>(ctx_b) *
                              static_cast<std::size_t>(n_pes_) +
                          static_cast<std::size_t>(pe_a)];
  return (occ_ab < 0 || occ_ab == b) && (occ_ba < 0 || occ_ba == a);
}

double LsState::shift_delta(int op, int pe) const {
  const int from = fp_.pe_of(op);
  const double s = op_stress_[static_cast<std::size_t>(op)];
  const double st_from = pe_stress_[static_cast<std::size_t>(from)];
  const double st_to = pe_stress_[static_cast<std::size_t>(pe)];
  double delta = kStressW * (overshoot_stress(st_from - s) -
                             overshoot_stress(st_from) +
                             overshoot_stress(st_to + s) -
                             overshoot_stress(st_to));
  for (const int p : op_paths_[static_cast<std::size_t>(op)]) {
    delta += kPathW *
             (overshoot_path(path_delay_with(p, op, pe, -1, -1)) -
              overshoot_path(path_delay_ns_[static_cast<std::size_t>(p)]));
  }
  delta += kDispW *
           (op_disp_at(op, pe) - op_disp_[static_cast<std::size_t>(op)]);
  return delta;
}

double LsState::swap_delta(int a, int b) const {
  const int pe_a = fp_.pe_of(a);
  const int pe_b = fp_.pe_of(b);
  const double s_a = op_stress_[static_cast<std::size_t>(a)];
  const double s_b = op_stress_[static_cast<std::size_t>(b)];
  const double st_a = pe_stress_[static_cast<std::size_t>(pe_a)];
  const double st_b = pe_stress_[static_cast<std::size_t>(pe_b)];
  double delta = kStressW * (overshoot_stress(st_a - s_a + s_b) -
                             overshoot_stress(st_a) +
                             overshoot_stress(st_b - s_b + s_a) -
                             overshoot_stress(st_b));
  // Union of the two ops' monitored paths, counted once each.
  const std::vector<int>& pa = op_paths_[static_cast<std::size_t>(a)];
  const std::vector<int>& pb = op_paths_[static_cast<std::size_t>(b)];
  auto touched_by_a = [&](int p) {
    return std::find(pa.begin(), pa.end(), p) != pa.end();
  };
  auto path_term = [&](int p) {
    return kPathW *
           (overshoot_path(path_delay_with(p, a, pe_b, b, pe_a)) -
            overshoot_path(path_delay_ns_[static_cast<std::size_t>(p)]));
  };
  for (const int p : pa) delta += path_term(p);
  for (const int p : pb) {
    if (!touched_by_a(p)) delta += path_term(p);
  }
  delta += kDispW * (op_disp_at(a, pe_b) -
                     op_disp_[static_cast<std::size_t>(a)] +
                     op_disp_at(b, pe_a) -
                     op_disp_[static_cast<std::size_t>(b)]);
  return delta;
}

void LsState::apply_rebind(int op, int pe) {
  const int from = fp_.pe_of(op);
  const int ctx = design_->ops[static_cast<std::size_t>(op)].context;
  const std::size_t row =
      static_cast<std::size_t>(ctx) * static_cast<std::size_t>(n_pes_);
  CGRAF_ASSERT(occ_[row + static_cast<std::size_t>(from)] == op);
  CGRAF_ASSERT(occ_[row + static_cast<std::size_t>(pe)] < 0);
  occ_[row + static_cast<std::size_t>(from)] = -1;
  occ_[row + static_cast<std::size_t>(pe)] = op;
  fp_.op_to_pe[static_cast<std::size_t>(op)] = pe;
  pe_stress_[static_cast<std::size_t>(from)] = pe_stress_from_occ(from);
  pe_stress_[static_cast<std::size_t>(pe)] = pe_stress_from_occ(pe);
  op_disp_[static_cast<std::size_t>(op)] = op_disp_at(op, pe);
  for (const int p : op_paths_[static_cast<std::size_t>(op)]) {
    path_delay_ns_[static_cast<std::size_t>(p)] =
        path_delay_with(p, -1, -1, -1, -1);
  }
}

void LsState::shift(int op, int pe) {
  CGRAF_ASSERT(can_shift(op, pe));
  apply_rebind(op, pe);
}

void LsState::swap_ops(int a, int b) {
  CGRAF_ASSERT(can_swap(a, b));
  const int pe_a = fp_.pe_of(a);
  const int pe_b = fp_.pe_of(b);
  const int ctx_a = design_->ops[static_cast<std::size_t>(a)].context;
  const int ctx_b = design_->ops[static_cast<std::size_t>(b)].context;
  auto slot = [&](int ctx, int pe) -> int& {
    return occ_[static_cast<std::size_t>(ctx) *
                    static_cast<std::size_t>(n_pes_) +
                static_cast<std::size_t>(pe)];
  };
  CGRAF_ASSERT(slot(ctx_a, pe_a) == a && slot(ctx_b, pe_b) == b);
  // Vacate both slots first so the cross-bindings never collide (a and b
  // may share a context).
  slot(ctx_a, pe_a) = -1;
  slot(ctx_b, pe_b) = -1;
  CGRAF_ASSERT(slot(ctx_a, pe_b) < 0 && slot(ctx_b, pe_a) < 0);
  slot(ctx_a, pe_b) = a;
  slot(ctx_b, pe_a) = b;
  fp_.op_to_pe[static_cast<std::size_t>(a)] = pe_b;
  fp_.op_to_pe[static_cast<std::size_t>(b)] = pe_a;
  pe_stress_[static_cast<std::size_t>(pe_a)] = pe_stress_from_occ(pe_a);
  pe_stress_[static_cast<std::size_t>(pe_b)] = pe_stress_from_occ(pe_b);
  op_disp_[static_cast<std::size_t>(a)] = op_disp_at(a, pe_b);
  op_disp_[static_cast<std::size_t>(b)] = op_disp_at(b, pe_a);
  const std::vector<int>& pa = op_paths_[static_cast<std::size_t>(a)];
  for (const int p : pa) {
    path_delay_ns_[static_cast<std::size_t>(p)] =
        path_delay_with(p, -1, -1, -1, -1);
  }
  for (const int p : op_paths_[static_cast<std::size_t>(b)]) {
    if (std::find(pa.begin(), pa.end(), p) == pa.end()) {
      path_delay_ns_[static_cast<std::size_t>(p)] =
          path_delay_with(p, -1, -1, -1, -1);
    }
  }
}

// --- Driver --------------------------------------------------------------

namespace {

// Deterministic per-restart stream: splitmix-style mix of seed and index.
std::uint64_t mix_seed(std::uint64_t seed, int restart) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(restart) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

LocalSearchResult local_search_remap(const RemapModelSpec& spec,
                                     const LocalSearchOptions& opts) {
  const double t_start = now_seconds();
  LocalSearchResult res;
  CGRAF_ASSERT(spec.design != nullptr && spec.base != nullptr);
  res.floorplan = *spec.base;

  const Design& design = *spec.design;
  const int n_ops = design.num_ops();
  const int n_pes = design.fabric.num_pes();

  // Structural pre-check: the occupancy table needs a base that satisfies
  // per-context exclusivity. A rotated base legitimately violates it — the
  // rotation step relocates only the frozen critical-path group, so a free
  // op can be left sitting on a slot a frozen op rotated onto. Those free
  // ops are repaired onto a free candidate PE before the search starts;
  // any other violation (size/range mismatch, frozen-frozen overlap, no
  // free slot to repair into) reports cleanly — fuzzed callers reach this.
  Floorplan start = *spec.base;
  {
    if (static_cast<int>(start.op_to_pe.size()) != n_ops) return res;
    std::vector<int> seen(static_cast<std::size_t>(design.num_contexts) *
                              static_cast<std::size_t>(n_pes),
                          -1);
    auto slot_of = [&](int ctx, int pe) -> int& {
      return seen[static_cast<std::size_t>(ctx) *
                      static_cast<std::size_t>(n_pes) +
                  static_cast<std::size_t>(pe)];
    };
    auto is_frozen = [&](int op) {
      return !spec.frozen.empty() && spec.frozen[static_cast<std::size_t>(op)];
    };
    std::vector<int> displaced;
    for (int pass = 0; pass < 2; ++pass) {
      for (int op = 0; op < n_ops; ++op) {
        if ((pass == 0) != is_frozen(op)) continue;
        const int pe = start.pe_of(op);
        const int ctx = design.ops[static_cast<std::size_t>(op)].context;
        if (pe < 0 || pe >= n_pes || ctx < 0 || ctx >= design.num_contexts)
          return res;
        int& slot = slot_of(ctx, pe);
        if (slot >= 0) {
          // Only a free op bumped by a pinned frozen op is repairable; any
          // other overlap (frozen-frozen, free-free) is a broken base.
          if (is_frozen(op) || !is_frozen(slot)) return res;
          displaced.push_back(op);
          continue;
        }
        slot = op;
      }
    }
    for (const int op : displaced) {
      const int ctx = design.ops[static_cast<std::size_t>(op)].context;
      int moved_to = -1;
      if (!spec.candidates.empty()) {
        for (const int pe : spec.candidates[static_cast<std::size_t>(op)]) {
          if (pe < 0 || pe >= n_pes || slot_of(ctx, pe) >= 0) continue;
          moved_to = pe;
          break;
        }
      } else {
        for (int pe = 0; pe < n_pes && moved_to < 0; ++pe)
          if (slot_of(ctx, pe) < 0) moved_to = pe;
      }
      if (moved_to < 0) return res;
      start.op_to_pe[static_cast<std::size_t>(op)] = moved_to;
      slot_of(ctx, moved_to) = op;
      ++res.stats.start_repairs;
    }
  }
  // The search starts from the repaired binding; certification and the
  // displacement tie-break both measure against it.
  RemapModelSpec start_spec = spec;
  start_spec.base = &start;

  std::vector<int> free_ops;
  for (int op = 0; op < n_ops; ++op) {
    if (spec.frozen.empty() || !spec.frozen[static_cast<std::size_t>(op)])
      free_ops.push_back(op);
  }

  verify::FloorplanSpec fspec;
  fspec.design = spec.design;
  fspec.reference = &start;
  fspec.frozen = spec.frozen;
  fspec.st_target = spec.st_target;
  fspec.monitored = spec.monitored;
  fspec.cpd_ns = spec.cpd_ns;

  double best_score = 0.0;
  bool have_best = false;
  // The oracle: a candidate incumbent counts only if the independent
  // certifier agrees. A rejection means the internal score model disagrees
  // with the certifier — recorded, never shipped.
  auto try_incumbent = [&](const LsState& state, double cur_score) {
    if (!state.feasible()) return;
    if (have_best && cur_score >= best_score - LsState::kMinImprove) return;
    ++res.stats.oracle_calls;
    const verify::Certificate cert =
        verify::certify_floorplan(fspec, state.floorplan(), opts.tol);
    if (!cert.ok) {
      ++res.stats.oracle_rejections;
      return;
    }
    have_best = true;
    best_score = cur_score;
    res.feasible = true;
    res.certified = true;
    res.floorplan = state.floorplan();
    res.score = cur_score;
    res.max_stress = state.max_stress();
  };

  bool stop = false;
  auto should_stop = [&] {
    if (now_seconds() - t_start > opts.time_limit_s) return true;
    return opts.cancel != nullptr &&
           opts.cancel->load(std::memory_order_relaxed);
  };

  const int restarts = std::max(1, opts.restarts);
  for (int r = 0; r < restarts && !stop && !free_ops.empty(); ++r) {
    ++res.stats.restarts_run;
    Rng rng(mix_seed(opts.seed, r));
    LsState state(start_spec);

    // Sample a random legal move; returns false when none was found within
    // the attempt budget (dense bindings can have no legal shift at all).
    auto sample_shift = [&](int& op, int& pe) {
      for (int t = 0; t < 16; ++t) {
        op = free_ops[static_cast<std::size_t>(
            rng.next_below(free_ops.size()))];
        if (!spec.candidates.empty()) {
          const std::vector<int>& cand =
              spec.candidates[static_cast<std::size_t>(op)];
          if (cand.empty()) continue;
          pe = cand[static_cast<std::size_t>(rng.next_below(cand.size()))];
        } else {
          pe = static_cast<int>(rng.next_below(
              static_cast<std::uint64_t>(n_pes)));
        }
        if (state.can_shift(op, pe)) return true;
      }
      return false;
    };
    auto sample_swap = [&](int& a, int& b) {
      if (free_ops.size() < 2) return false;
      for (int t = 0; t < 16; ++t) {
        a = free_ops[static_cast<std::size_t>(
            rng.next_below(free_ops.size()))];
        b = free_ops[static_cast<std::size_t>(
            rng.next_below(free_ops.size()))];
        if (state.can_swap(a, b)) return true;
      }
      return false;
    };

    // Restart kick: walk away from the base with a few random legal moves,
    // ignoring the score (not counted as accepts). Restart 0 starts clean.
    if (r > 0) {
      const int kicks = 2 + 2 * r;
      for (int k = 0; k < kicks; ++k) {
        int a = -1, b = -1;
        if (rng.next_bool(0.5) && sample_shift(a, b)) state.shift(a, b);
        else if (sample_swap(a, b)) state.swap_ops(a, b);
      }
    }

    double cur_score = state.score();
    try_incumbent(state, cur_score);

    // Tabu recency: iteration of the last accepted move touching each op.
    std::vector<long> last_touch(static_cast<std::size_t>(n_ops),
                                 -static_cast<long>(opts.tabu_tenure) - 1);
    for (long iter = 0; iter < opts.max_iters; ++iter) {
      if ((iter & 63) == 0 && should_stop()) {
        stop = true;
        break;
      }
      ++res.stats.moves_examined;
      auto tabu = [&](int op) {
        return iter - last_touch[static_cast<std::size_t>(op)] <=
               opts.tabu_tenure;
      };
      auto aspirates = [&](double delta) {
        return !have_best ||
               cur_score + delta < best_score - LsState::kMinImprove;
      };
      if (rng.next_bool(0.5)) {
        int op = -1, pe = -1;
        if (!sample_shift(op, pe)) continue;
        const double delta = state.shift_delta(op, pe);
        if (delta >= -LsState::kMinImprove) continue;
        if (tabu(op) && !aspirates(delta)) continue;
        state.shift(op, pe);
        cur_score = state.score();
        last_touch[static_cast<std::size_t>(op)] = iter;
        ++res.stats.moves_accepted;
        ++res.stats.shifts_accepted;
        try_incumbent(state, cur_score);
      } else {
        int a = -1, b = -1;
        if (!sample_swap(a, b)) continue;
        const double delta = state.swap_delta(a, b);
        if (delta >= -LsState::kMinImprove) continue;
        if ((tabu(a) || tabu(b)) && !aspirates(delta)) continue;
        state.swap_ops(a, b);
        cur_score = state.score();
        last_touch[static_cast<std::size_t>(a)] = iter;
        last_touch[static_cast<std::size_t>(b)] = iter;
        ++res.stats.moves_accepted;
        ++res.stats.swaps_accepted;
        try_incumbent(state, cur_score);
      }
    }
  }
  if (free_ops.empty()) {
    // Everything frozen: the base is the only binding; certify it as-is.
    LsState state(start_spec);
    try_incumbent(state, state.score());
  }

  res.stats.seconds = now_seconds() - t_start;
  obs::Metrics::global().counter("ls.searches").add(1);
  obs::Metrics::global().counter("ls.moves_accepted")
      .add(res.stats.moves_accepted);
  obs::Event(opts.events, "ls.search")
      .arg("restarts", res.stats.restarts_run)
      .arg("examined", res.stats.moves_examined)
      .arg("accepted", res.stats.moves_accepted)
      .arg("oracle_calls", res.stats.oracle_calls)
      .arg("oracle_rejections", res.stats.oracle_rejections)
      .arg("feasible", res.feasible)
      .arg("score", res.score)
      .arg("st_target", spec.st_target)
      .arg("seconds", res.stats.seconds);
  return res;
}

}  // namespace cgraf::core
