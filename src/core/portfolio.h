// First-finisher-wins exact-vs-heuristic portfolio (RemapOptions strategy
// `portfolio`).
//
// One attempt races the exact two-step MILP pipeline (on the caller's
// ProbeSession, keeping its warm-start chain) against the shift/swap local
// search on a second thread. Before the race an optional short LS sprint
// runs synchronously; a certified sprint result is encoded against the
// exact model (RemapModel::encode) and seeds the branch & bound's cutoff
// (MipOptions::initial_incumbent), so the exact side starts pruning
// against a known-feasible objective instead of +inf.
//
// Race protocol: both racers publish into their own result slot, then set
// their done flag — and the winner slot, first-come — under the portfolio
// mutex (lock_rank::kPortfolio; never held while a solver runs). The
// coordinator waits on the condition variable until a racer succeeds or
// both finish, raises the shared cancel flag to stop the loser
// (SolveStatus::kCancelled), and joins both threads before returning, so
// no solver outlives the call.
#pragma once

#include <atomic>

#include "core/local_search.h"
#include "core/probe_session.h"

namespace cgraf::core {

enum class PortfolioWinner {
  kNone,         // neither side produced a feasible floorplan
  kExact,        // the MILP pipeline finished first (or alone) with kOptimal
  kLocalSearch,  // the local search finished first with a certified binding
};
const char* to_string(PortfolioWinner w);

struct PortfolioOptions {
  // Options for the racing local search (its `cancel` is overridden by the
  // race's own flag).
  LocalSearchOptions ls;
  // Run the seeding sprint and feed its incumbent to the exact side.
  bool seed_incumbent = true;
  // Sprint budget: a fraction of the race's LS budget, spent synchronously
  // before the race starts.
  int sprint_iters = 256;
};

struct PortfolioResult {
  PortfolioWinner winner = PortfolioWinner::kNone;
  // Verdicts of both sides: the loser reports kCancelled when the race
  // actually stopped it (it may also have finished regularly just after
  // the winner — first finisher still wins).
  TwoStepResult exact;
  LocalSearchResult ls;
  // The sprint produced a certified binding that was encoded into the
  // exact model and seeded its B&B cutoff.
  bool incumbent_seeded = false;
  double seconds = 0.0;
};

// Races `session.solve(st_target)` against local_search_remap on
// `ls_spec` (same design/base/frozen/candidates as the session's spec;
// `ls_spec.st_target` is overwritten with `st_target`). The session's
// cancel hook and incumbent seed are set for the duration of the call and
// cleared before returning.
PortfolioResult race_portfolio(ProbeSession& session, RemapModelSpec ls_spec,
                               double st_target,
                               const PortfolioOptions& opts);

}  // namespace cgraf::core
