// Floorplan analysis: quantitative comparison of two bindings of the same
// design (baseline vs. re-mapped) and per-context statistics. Used by the
// CLI's report command and handy for debugging floorplans in tests.
#pragma once

#include <string>
#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "util/geometry.h"

namespace cgraf::core {

struct FloorplanDiff {
  int ops_total = 0;
  int ops_moved = 0;
  int max_displacement = 0;     // Manhattan, in PE pitches
  double avg_displacement = 0;  // over all ops (unmoved count as 0)
  // Total Manhattan wirelength over *all* dataflow edges (combinational
  // and registered).
  long long wirelength_before = 0;
  long long wirelength_after = 0;
  double cpd_before_ns = 0;
  double cpd_after_ns = 0;
  double st_max_before = 0;
  double st_max_after = 0;
  std::vector<int> moved_ops;  // ids, ascending
};

FloorplanDiff diff_floorplans(const Design& design, const Floorplan& before,
                              const Floorplan& after);

// Human-readable summary of a diff.
std::string format_diff(const FloorplanDiff& diff);

struct ContextStats {
  int context = 0;
  int ops = 0;
  Rect bbox;                    // of the context's occupied PEs
  long long comb_wirelength = 0;  // same-context edges only
  double cpd_ns = 0;            // the context's longest path
};

std::vector<ContextStats> per_context_stats(const Design& design,
                                            const Floorplan& fp);

}  // namespace cgraf::core
