// Candidate-PE computation for the re-binding MILP.
//
// Formulation (3) nominally has one binary per (op, PE) pair. A PE is only
// a useful candidate for an op if binding the op there cannot by itself
// blow the wire-length budget of some monitored path through the op, so we
// prune per-op candidate sets with a per-path slack test before building
// the model. This is a model-size optimization, not a semantic change: the
// original PE is always kept, and the joint path constraints are still
// enforced exactly inside the MILP (see DESIGN.md §5).
#pragma once

#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "timing/paths.h"

namespace cgraf::core {

struct CandidateOptions {
  // Optional hard cap on Manhattan distance from the op's current PE
  // (paper-scale escape hatch); -1 disables the cap.
  int radius_cap = -1;
  // Loosens the per-path slack test: a candidate passes if its single-op
  // wire contribution is within slack_multiplier x the path's allowance
  // plus slack_additive wire units. Values > 1 / > 0 admit candidates that
  // are only feasible jointly with neighbour moves (e.g. a rigid shift of
  // a zero-slack path, where every op's distance to its *original*
  // neighbours grows although the path's total wire length does not).
  double slack_multiplier = 1.25;
  double slack_additive = 0.0;
};

// candidates[op] = PEs the op may be bound to. Frozen ops get exactly their
// current PE. `base` must carry the frozen ops' final (possibly rotated)
// positions; `cpd_ns` is the original critical-path delay that all path
// budgets are measured against.
std::vector<std::vector<int>> compute_candidates(
    const Design& design, const Floorplan& base,
    const std::vector<char>& frozen,
    const std::vector<timing::TimingPath>& monitored, double cpd_ns,
    const CandidateOptions& opts = {});

}  // namespace cgraf::core
