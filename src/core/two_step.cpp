#include "core/two_step.h"

#include <algorithm>

#include "core/strategy.h"
#include "milp/simplex.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "verify/certify.h"

namespace cgraf::core {
namespace {

// Independent acceptance gate: re-validate the solution vector against the
// *original* model (not the bound-tightened copy the solver ran on). A
// failed certification rejects the result instead of shipping an illegal
// floorplan. Returns true when the result survives.
bool certify_accept(const RemapModel& rm, const std::vector<double>& x,
                    const TwoStepOptions& opts, bool relaxed,
                    TwoStepResult& res) {
  if (!opts.verify.enabled) return true;
  obs::Span span("two_step.certify");
  const verify::Certificate cert =
      verify::certify_solution(rm.model, x, opts.verify.tol, relaxed);
  span.arg("ok", cert.ok);
  if (cert.ok) {
    res.certified = true;
    return true;
  }
  obs::Metrics::global().counter("verify.solution_rejections").add(1);
  res.certified = false;
  res.certify_error = cert.summary();
  res.status = milp::SolveStatus::kNumericalError;
  res.floorplan = Floorplan{};
  return false;
}

// Randomized rounding (ablation): per op, sample a candidate with
// probability proportional to its LP value and fix it.
int randomized_fix(const RemapModel& rm, const std::vector<double>& lp_x,
                   milp::Model& model, Rng& rng) {
  int fixed = 0;
  for (int op = 0; op < rm.design->num_ops(); ++op) {
    const auto& vars = rm.assign_vars[static_cast<std::size_t>(op)];
    if (vars.empty()) continue;
    double total = 0.0;
    for (const int v : vars)
      total += std::max(0.0, lp_x[static_cast<std::size_t>(v)]);
    if (total <= 1e-12) continue;
    double pick = rng.next_double() * total;
    int chosen = vars.back();
    for (const int v : vars) {
      pick -= std::max(0.0, lp_x[static_cast<std::size_t>(v)]);
      if (pick <= 0.0) {
        chosen = v;
        break;
      }
    }
    model.set_bounds(chosen, 1.0, 1.0);
    ++fixed;
  }
  return fixed;
}

// Runs branch & bound on `model` and folds its result into `res`.
void run_bnb(const milp::Model& model, const RemapModel& rm,
             const TwoStepOptions& opts, TwoStepResult& res) {
  obs::Span span("two_step.residual_ilp");
  const milp::MipResult mip = milp::solve_milp(model, opts.mip);
  span.arg("status", milp::to_string(mip.status)).arg("nodes", mip.nodes);
  res.stats.mip_status = mip.status;
  res.stats.mip_nodes += mip.nodes;
  res.stats.mip_lp_iterations += mip.lp_iterations;
  res.stats.mip_seconds += mip.seconds;
  res.stats.mip_threads = mip.threads_used;
  res.stats.mip_nodes_per_thread = mip.nodes_per_thread;
  res.stats.lp_stage.add(mip.lp_stats);
  if (mip.has_solution()) {
    res.status = milp::SolveStatus::kOptimal;
    res.floorplan = rm.decode(mip.x);
    certify_accept(rm, mip.x, opts, /*relaxed=*/false, res);
  } else {
    res.status = mip.status;
  }
}

// The default strategy: iterated LP dive with warm-started re-solves and
// ban-and-backtrack repair. Returns true if it produced a definitive answer
// in `res` (a floorplan, or infeasibility/give-up at this st_target); false
// when it dead-ended and the caller wants the B&B fallback.
bool iterative_dive(const RemapModel& rm, const TwoStepOptions& opts,
                    TwoStepResult& res) {
  obs::Span span("two_step.dive");
  const auto finish_span = [&](bool definitive) {
    span.arg("status", milp::to_string(res.status))
        .arg("rounds", static_cast<long>(res.stats.dive_rounds))
        .arg("vars_fixed", static_cast<long>(res.stats.vars_fixed))
        .arg("definitive", definitive);
    obs::Metrics::global()
        .histogram("two_step.dive_rounds",
                   {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0})
        .observe(static_cast<double>(res.stats.dive_rounds));
  };
  milp::Model relaxed = rm.model;
  for (int v = 0; v < relaxed.num_vars(); ++v) relaxed.relax_var(v);
  milp::SimplexEngine engine(relaxed, opts.lp);

  std::vector<double> lb = engine.model_lb();
  std::vector<double> ub = engine.model_ub();
  std::vector<char> op_fixed(static_cast<std::size_t>(rm.design->num_ops()),
                             0);
  int remaining = 0;
  for (int op = 0; op < rm.design->num_ops(); ++op) {
    if (rm.assign_vars[static_cast<std::size_t>(op)].empty())
      op_fixed[static_cast<std::size_t>(op)] = 1;  // frozen
    else
      ++remaining;
  }

  // Commit history for backtracking: one entry per round that fixed vars.
  struct Round {
    std::vector<std::pair<int, int>> fixes;  // (var, op)
    bool forced_single = false;
  };
  std::vector<Round> history;
  int bans = 0;
  double threshold = opts.round_threshold;

  milp::LpResult lp;
  // Warm-start every re-solve from the last feasible basis; phase 1
  // re-establishes feasibility in a handful of iterations after a fix or
  // an unfix, where a cold start would pay thousands. The root LP itself
  // can be seeded from a previous probe of an incremental session.
  std::vector<milp::ColStatus> good_basis;
  if (opts.warm_basis != nullptr && !opts.warm_basis->empty())
    good_basis = *opts.warm_basis;
  const int max_rounds = 24 * rm.design->num_ops() + 256;  // hard backstop
  while (true) {
    if (res.stats.dive_rounds >= max_rounds) {
      res.status = milp::SolveStatus::kIterLimit;
      finish_span(!opts.bnb_fallback);
      return !opts.bnb_fallback;
    }
    if (opts.cancel != nullptr &&
        opts.cancel->load(std::memory_order_relaxed)) {
      // Cancelled solves are definitive: the caller is tearing the race
      // down, so the B&B fallback must not start a fresh search.
      res.status = milp::SolveStatus::kCancelled;
      finish_span(true);
      return true;
    }
    lp = engine.solve(lb, ub, good_basis.empty() ? nullptr : &good_basis);
    if (res.stats.dive_rounds == 0)
      res.stats.warm_start_used = opts.warm_basis != nullptr && lp.warm_used;
    ++res.stats.dive_rounds;
    res.stats.lp_iterations += lp.iterations;
    res.stats.lp_seconds += lp.seconds;
    res.stats.lp_status = lp.status;
    res.stats.lp_stage.add(lp.stats);
    res.basis = lp.basis;

    if (lp.status != milp::SolveStatus::kOptimal) {
      if (history.empty()) {
        if (bans == 0 && lp.status == milp::SolveStatus::kInfeasible) {
          res.status = milp::SolveStatus::kInfeasible;  // proven at the root
          finish_span(true);
          return true;
        }
        // Bans over-constrained the root, or a solver limit fired.
        res.status = milp::SolveStatus::kNodeLimit;
        finish_span(!opts.bnb_fallback);
        return !opts.bnb_fallback;
      }
      // Undo the most recent round; ban its variable when it was a forced
      // single commit, tighten the threshold when a batch misfired.
      Round bad = std::move(history.back());
      history.pop_back();
      for (const auto& [var, op] : bad.fixes) {
        lb[static_cast<std::size_t>(var)] = 0.0;
        ub[static_cast<std::size_t>(var)] = 1.0;
        op_fixed[static_cast<std::size_t>(op)] = 0;
        ++remaining;
        --res.stats.vars_fixed;
      }
      if (bad.forced_single || threshold >= 0.999) {
        // Ban the round's first commit. Batches also consume bans once the
        // threshold has saturated — otherwise the same batch would be
        // re-fixed identically forever.
        ub[static_cast<std::size_t>(bad.fixes.front().first)] = 0.0;
        ++bans;
      } else {
        threshold = std::min(0.999, 0.5 * (1.0 + threshold));
      }
      if (bans > opts.dive_ban_budget) {
        res.status = milp::SolveStatus::kNodeLimit;  // give up, unproven
        finish_span(!opts.bnb_fallback);
        return !opts.bnb_fallback;
      }
      continue;
    }
    if (remaining == 0) break;
    good_basis = lp.basis;

    // Fix every op whose best candidate clears the threshold; if none do,
    // commit the single most-integral op to keep the dive moving.
    Round round;
    int best_op = -1, best_var = -1;
    double best_val = -1.0;
    for (int op = 0; op < rm.design->num_ops(); ++op) {
      if (op_fixed[static_cast<std::size_t>(op)]) continue;
      const auto& vars = rm.assign_vars[static_cast<std::size_t>(op)];
      int arg = -1;
      double val = -1.0;
      for (const int v : vars) {
        if (ub[static_cast<std::size_t>(v)] == 0.0) continue;  // banned
        if (lp.x[static_cast<std::size_t>(v)] > val) {
          val = lp.x[static_cast<std::size_t>(v)];
          arg = v;
        }
      }
      if (arg < 0) continue;  // fully banned op: the LP will flag it
      if (val > threshold) {
        lb[static_cast<std::size_t>(arg)] = 1.0;
        ub[static_cast<std::size_t>(arg)] = 1.0;
        op_fixed[static_cast<std::size_t>(op)] = 1;
        --remaining;
        round.fixes.emplace_back(arg, op);
        ++res.stats.vars_fixed;
      } else if (val > best_val) {
        best_val = val;
        best_op = op;
        best_var = arg;
      }
    }
    if (round.fixes.empty()) {
      if (best_op < 0) break;  // nothing left to decide
      lb[static_cast<std::size_t>(best_var)] = 1.0;
      ub[static_cast<std::size_t>(best_var)] = 1.0;
      op_fixed[static_cast<std::size_t>(best_op)] = 1;
      --remaining;
      round.fixes.emplace_back(best_var, best_op);
      round.forced_single = true;
      ++res.stats.vars_fixed;
    }
    history.push_back(std::move(round));
  }

  // Fully committed and the final LP is feasible: decode the floorplan.
  // Every assignment variable ends the dive fixed to 0 or 1, so the vector
  // is certified at full (integral) strictness.
  res.status = milp::SolveStatus::kOptimal;
  res.floorplan = rm.decode(lp.x);
  certify_accept(rm, lp.x, opts, /*relaxed=*/false, res);
  finish_span(true);
  return true;
}

}  // namespace

TwoStepResult solve_two_step(const RemapModel& rm,
                             const TwoStepOptions& opts_in) {
  // Local copy so the event-log sink reaches every nested solve: either
  // plumbing route (opts.events or opts.lp.events) enables all of them.
  TwoStepOptions opts = opts_in;
  if (opts.events == nullptr) opts.events = opts.lp.events;
  if (opts.lp.events == nullptr) opts.lp.events = opts.events;
  if (opts.mip.events == nullptr) opts.mip.events = opts.events;
  if (opts.mip.lp.events == nullptr) opts.mip.lp.events = opts.events;
  if (opts.lp.cancel == nullptr) opts.lp.cancel = opts.cancel;
  if (opts.mip.cancel == nullptr) opts.mip.cancel = opts.cancel;
  if (opts.mip.lp.cancel == nullptr) opts.mip.lp.cancel = opts.cancel;

  obs::Span solve_span("two_step.solve");
  solve_span.arg("strategy", to_string(opts.strategy))
      .arg("lp_only", opts.lp_only)
      .arg("vars", rm.num_binary_vars);
  obs::Metrics::global().counter("two_step.solves").add(1);
  TwoStepResult res;
  res.stats.vars_total = rm.num_binary_vars;
  res.stats.lp_algorithm = opts.lp.algorithm;
  const auto finish = [&] {
    solve_span.arg("status", milp::to_string(res.status));
    if (res.stats.fallback_unfixed)
      obs::Metrics::global().counter("two_step.unfixed_fallbacks").add(1);
    obs::Event ev(opts.events, "twostep.solve");
    if (ev.active()) {
      ev.arg("strategy", to_string(opts.strategy))
          .arg("lp_only", opts.lp_only)
          .arg("status", milp::to_string(res.status))
          .arg("lp_iterations", res.stats.lp_iterations)
          .arg("mip_lp_iterations", res.stats.mip_lp_iterations)
          .arg("nodes", res.stats.mip_nodes)
          .arg("dive_rounds", res.stats.dive_rounds)
          .arg("vars_fixed", res.stats.vars_fixed)
          .arg("warm_start_used", res.stats.warm_start_used)
          .arg("fallback_unfixed", res.stats.fallback_unfixed);
    }
  };
  if (rm.trivially_infeasible) {
    res.status = milp::SolveStatus::kInfeasible;
    finish();
    return res;
  }

  // --- Pure one-shot ILP (scaling baseline).
  if (opts.strategy == RoundingStrategy::kNone && !opts.lp_only) {
    run_bnb(rm.model, rm, opts, res);
    finish();
    return res;
  }

  // --- Default: iterated LP dive.
  if (opts.strategy == RoundingStrategy::kIterativeDive && !opts.lp_only) {
    if (iterative_dive(rm, opts, res)) {
      finish();
      return res;
    }
    // Dive dead-ended: fall back to branch & bound on the unfixed model.
    res.stats.fallback_unfixed = true;
    run_bnb(rm.model, rm, opts, res);
    finish();
    return res;
  }

  // --- Step A: LP relaxation (lp_only, one-shot fixing, randomized).
  milp::LpResult lp;
  {
    obs::Span lp_span("two_step.lp_relax");
    milp::Model relaxed = rm.model;
    for (int v = 0; v < relaxed.num_vars(); ++v) relaxed.relax_var(v);
    milp::SimplexEngine engine(relaxed, opts.lp);
    const bool have_warm =
        opts.warm_basis != nullptr && !opts.warm_basis->empty();
    lp = engine.solve(have_warm ? opts.warm_basis : nullptr);
    res.stats.warm_start_used = have_warm && lp.warm_used;
    lp_span.arg("status", milp::to_string(lp.status))
        .arg("iterations", lp.iterations)
        .arg("warm", res.stats.warm_start_used);
  }
  res.stats.lp_status = lp.status;
  res.stats.lp_iterations = lp.iterations;
  res.stats.lp_seconds = lp.seconds;
  res.stats.lp_stage.add(lp.stats);
  res.basis = lp.basis;
  if (lp.status != milp::SolveStatus::kOptimal) {
    res.status = lp.status == milp::SolveStatus::kUnbounded
                     ? milp::SolveStatus::kNumericalError
                     : lp.status;
    finish();
    return res;
  }
  if (opts.lp_only) {
    // The binary-searched feasibility oracles trust this verdict, so the LP
    // point is certified too (integrality waived on the relaxation).
    res.status = milp::SolveStatus::kOptimal;
    certify_accept(rm, lp.x, opts, /*relaxed=*/true, res);
    finish();
    return res;
  }

  // --- Step B: pre-map (fix) variables once.
  milp::Model fixed_model = rm.model;
  int fixed = 0;
  {
    obs::Span fix_span("two_step.fix");
    if (opts.strategy == RoundingStrategy::kThresholdFixOnce) {
      for (int v = 0; v < rm.num_binary_vars; ++v) {
        if (lp.x[static_cast<std::size_t>(v)] > opts.round_threshold) {
          fixed_model.set_bounds(v, 1.0, 1.0);
          ++fixed;
        }
      }
    } else {  // kRandomizedRound
      Rng rng(opts.seed);
      fixed = randomized_fix(rm, lp.x, fixed_model, rng);
    }
    fix_span.arg("vars_fixed", fixed).arg("vars_total", rm.num_binary_vars);
  }
  res.stats.vars_fixed = fixed;

  // --- Step C: residual ILP, with an unfixed fallback if over-committed.
  run_bnb(fixed_model, rm, opts, res);
  if (res.status == milp::SolveStatus::kInfeasible && fixed > 0) {
    res.stats.fallback_unfixed = true;
    run_bnb(rm.model, rm, opts, res);
  }
  finish();
  return res;
}

}  // namespace cgraf::core
