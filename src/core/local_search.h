// Aging-aware shift/swap local search over PE re-bindings — the heuristic
// counterpart of the exact formulation-(3) pipeline.
//
// The search explores the same solution space the MILP does (one op per PE
// per context, frozen ops pinned, candidate-set membership, per-PE stress
// against ST_target, monitored paths within their Eq.-(5) wire budgets) but
// shares no solver code: the only arbiter of feasibility is the independent
// verify::certify_floorplan oracle, called on every new incumbent. The
// internal score is a penalty form of formulation (3): stress overshoot +
// path-budget overshoot (both zero iff the binding is feasible) plus a tiny
// displacement tiebreak matching ObjectiveMode::kMinPerturbation.
//
// Moves are the classic GAP neighborhood: *shift* (rebind one free op to an
// empty candidate PE in its context) and *swap* (exchange the bindings of
// two free ops). Strict-improvement descent with a per-op tabu recency
// list (aspiration on a new global best) and seeded random-kick restarts.
// Single-threaded and bit-reproducible for a fixed seed: every stochastic
// choice flows through util/rng.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "core/model_builder.h"
#include "obs/event_log.h"
#include "verify/certify.h"

namespace cgraf::core {

struct LocalSearchOptions {
  std::uint64_t seed = 1;
  // Move attempts per restart (examined, not accepted).
  int max_iters = 2000;
  // Total descent starts: 1 from the base binding + (restarts-1) kicked.
  int restarts = 4;
  // A move touching an op accepted fewer than this many iterations ago is
  // tabu unless it improves on the best score seen (aspiration).
  int tabu_tenure = 16;
  double time_limit_s = 1e18;
  // Cooperative cancellation (the portfolio race raises it); checked every
  // few iterations. Not owned — must outlive the search.
  const std::atomic<bool>* cancel = nullptr;
  // Tolerances handed to the certify_floorplan oracle.
  verify::CertifyOptions tol;
  // Structured solve-event log; one "ls.search" summary record per call.
  obs::EventLog* events = nullptr;
};

struct LocalSearchStats {
  long moves_examined = 0;
  long moves_accepted = 0;
  long shifts_accepted = 0;
  long swaps_accepted = 0;
  long restarts_run = 0;
  // certify_floorplan oracle calls on candidate incumbents, and how many
  // the oracle rejected (a rejection means the internal score model and
  // the certifier disagree — counted, never shipped).
  long oracle_calls = 0;
  long oracle_rejections = 0;
  // Free ops relocated off a slot the rotation step handed to a frozen op
  // before the search could start (see the pre-check in local_search_remap).
  long start_repairs = 0;
  double seconds = 0.0;

  void add(const LocalSearchStats& other);
};

struct LocalSearchResult {
  // A binding meeting every constraint of the spec was found (and the
  // certifier agreed).
  bool feasible = false;
  // The shipped floorplan carries a green certify_floorplan certificate.
  // Always equals `feasible`: the oracle gates every incumbent.
  bool certified = false;
  Floorplan floorplan;  // best certified binding; the base when !feasible
  double score = 0.0;       // internal penalty score of `floorplan`
  double max_stress = 0.0;  // max per-PE accumulated stress of `floorplan`
  LocalSearchStats stats;
};

// Incremental search state: the current binding plus per-PE stress, per-path
// delay and displacement aggregates, updated in O(affected paths) per move.
// Exposed (rather than buried in the driver) for the metamorphic move tests
// and the oracle fuzz target, which drive moves directly.
class LsState {
 public:
  // Starts at *spec.base. The base must satisfy per-context exclusivity
  // (asserted); stress and path budgets may be violated — the penalties
  // simply start positive.
  explicit LsState(const RemapModelSpec& spec);

  int num_ops() const { return n_ops_; }
  int num_pes() const { return n_pes_; }
  const Floorplan& floorplan() const { return fp_; }
  int pe_of(int op) const { return fp_.pe_of(op); }

  // score() = kStressW * stress_penalty() + kPathW * path_penalty()
  //         + kDispW * displacement(). Every aggregate underneath is
  // *recomputed from the binding* when a move touches it (never drifted by
  // += deltas), so a move and its inverse restore score() bit-exactly —
  // the metamorphic round-trip tests rely on this.
  double score() const;
  // Sum over PEs of max(0, stress - st_target); 0 when stress is unchecked
  // (negative st_target). Symmetric in the PE stress multiset: relabeling
  // equal-stress PEs leaves it invariant.
  double stress_penalty() const;
  // Sum over monitored paths of max(0, delay - cpd), in ns.
  double path_penalty() const;
  // Total Manhattan displacement from the base binding.
  double displacement() const;
  double max_stress() const;
  // Penalties within certifier-level tolerance of zero.
  bool feasible() const;

  // Legality (not profitability): op free, target PE in the op's candidate
  // set and empty in the op's context. Swaps additionally require both
  // target PEs free-or-partner in the respective contexts.
  bool can_shift(int op, int pe) const;
  bool can_swap(int a, int b) const;

  // Score change the move would cause (no state change), accurate to well
  // under kMinImprove; the driver accepts only deltas below -kMinImprove so
  // an accepted move strictly decreases score().
  double shift_delta(int op, int pe) const;
  double swap_delta(int a, int b) const;

  // Apply a move. CGRAF_ASSERT-aborts on an illegal move — exclusivity and
  // frozen violations are structurally impossible, not merely penalized.
  void shift(int op, int pe);
  void swap_ops(int a, int b);

  // Penalty weights (public for tests asserting score decomposition) and
  // the strict-improvement threshold the driver and fuzz oracle share.
  static constexpr double kStressW = 1e3;
  static constexpr double kPathW = 1e2;
  static constexpr double kDispW = 1e-3;
  static constexpr double kMinImprove = 1e-9;

 private:
  bool candidate_ok(int op, int pe) const;
  // Recompute one PE's accumulated stress from the occupancy table, in
  // fixed context order (value depends only on the binding, not history).
  double pe_stress_from_occ(int pe) const;
  // Path delay with up to two ops hypothetically rebound (-1 = none).
  double path_delay_with(int p, int op_a, int pe_a, int op_b, int pe_b) const;
  double overshoot_stress(double st) const;
  double overshoot_path(double delay_ns) const;
  double op_disp_at(int op, int pe) const;
  void apply_rebind(int op, int pe);

  const RemapModelSpec* spec_ = nullptr;
  const Design* design_ = nullptr;
  int n_ops_ = 0;
  int n_pes_ = 0;
  int n_ctx_ = 0;
  Floorplan fp_;
  std::vector<double> op_stress_;       // per op, cached op_stress()
  std::vector<double> pe_stress_;      // per PE, accumulated (recomputed)
  std::vector<int> occ_;               // [ctx*n_pes+pe] -> op id or -1
  std::vector<double> path_delay_ns_;  // per monitored path
  std::vector<double> op_disp_;        // per op Manhattan displacement
  std::vector<std::vector<int>> op_paths_;  // per op, monitored paths touched
};

// The driver: tabu descent with seeded restarts; every new feasible
// incumbent is certified by verify::certify_floorplan before it may become
// the result. Deterministic for a fixed (spec, opts.seed) regardless of
// machine thread count.
LocalSearchResult local_search_remap(const RemapModelSpec& spec,
                                     const LocalSearchOptions& opts);

}  // namespace cgraf::core
