// Builds the paper's formulation (3) as a milp::Model.
//
//   ObjFunc: Null
//   s.t.  sum_ij OP_ijk * ST(OP_ij) <= ST_target          (per PE k)
//         sum_k  OP_ijk             = 1                   (per op ij)
//         OP on a critical path is frozen at PE_k_orig
//         per monitored path: sum wirelength <= (CPD - sum PEdelay)/uwd
//   plus the physically-required one-op-per-PE-per-context rows.
//
// Wire lengths between two *free* ops are linearized exactly with per-op
// coordinate variables cx_j = sum_k OP_ijk * col(k) (cy likewise) and
// per-edge |.| splitting — valid because the path constraints only
// upper-bound sums of L1 distances. Edges with a frozen endpoint use the
// direct linear form sum_k OP_ijk * dist(k, frozen_pe).
#pragma once

#include <string>
#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "cgrra/stress.h"
#include "milp/model.h"
#include "timing/paths.h"
#include "verify/model_lint.h"

namespace cgraf::core {

enum class ObjectiveMode {
  // The paper's "ObjFunc: Null": pure feasibility. The LP relaxation then
  // terminates at an arbitrary (often very fractional) feasible point,
  // which weakens the >0.95 pre-mapping step.
  kNull,
  // Minimize total displacement (Manhattan distance of each op from its
  // original PE). Selects a minimally-perturbed vertex among the feasible
  // floorplans; the LP vertex is near-integral, so the paper's fixing step
  // commits most operations and the residual ILP stays small. The stress
  // target and path budgets are hard constraints either way, so the
  // achieved balance is identical; see bench/ablation_rounding.
  kMinPerturbation,
};

struct RemapModelSpec {
  const Design* design = nullptr;
  // Carries every op's current position; for frozen ops this is their final
  // (possibly rotated) binding.
  const Floorplan* base = nullptr;
  std::vector<char> frozen;                   // per op
  std::vector<std::vector<int>> candidates;   // per op (frozen: exactly 1)
  double st_target = 0.0;
  // Monitored paths (constraint set); nullptr disables path constraints
  // (Step 1 of Algorithm 1 runs delay-unaware).
  const std::vector<timing::TimingPath>* monitored = nullptr;
  double cpd_ns = 0.0;  // budget reference; required when monitored != null
  ObjectiveMode objective = ObjectiveMode::kMinPerturbation;
};

struct RemapModel {
  milp::Model model;
  // assign_vars[op][c] is the model variable for binding `op` to
  // candidates[op][c]; empty for frozen ops.
  std::vector<std::vector<int>> assign_vars;
  std::vector<std::vector<int>> candidates;  // post-filtering copy
  std::vector<char> frozen;
  const Design* design = nullptr;
  const Floorplan* base = nullptr;

  // Set when the spec is provably infeasible before any solve (e.g. a
  // frozen PE already exceeds st_target, or an all-frozen monitored path
  // exceeds its wire budget after rotation).
  bool trivially_infeasible = false;
  std::string infeasible_reason;

  int num_binary_vars = 0;
  int num_path_rows = 0;
  int num_monitored_paths = 0;

  // The stress target the model was built (or last patched) for, plus the
  // bookkeeping patch_st_target needs: the model row carrying each PE's
  // stress constraint (-1 when the PE has none) and the stress contributed
  // by frozen ops, which the row's RHS nets out.
  double st_target = 0.0;
  std::vector<int> stress_rows;       // per PE; empty when trivially infeasible
  std::vector<double> frozen_stress;  // per PE

  // Re-ranges the stress rows for a new target without rebuilding anything
  // else — the incremental Step-1/Delta-loop probes lean on this. Returns
  // false (leaving the model at its previous target) when the new target is
  // trivially infeasible because a frozen PE's stress alone exceeds it; the
  // caller reports infeasibility without a solve, exactly as a cold rebuild
  // would. Must not be called on a trivially-infeasible model. In debug
  // builds the patched model is re-linted like a fresh build.
  bool patch_st_target(double new_target);

  // Coordinate-variable bookkeeping for encode(): the continuous cx/cy
  // variable per op (-1 / empty when the op has none, e.g. no monitored
  // paths touch it) and the |dx|,|dy| split variables per free-free edge.
  struct EdgeAbs {
    int u = -1, v = -1;
    int dx = -1, dy = -1;
  };
  std::vector<int> coord_x, coord_y;  // per op; empty without path rows
  std::vector<EdgeAbs> edge_abs;

  // Decodes a solver solution vector into a complete floorplan (frozen ops
  // keep their base binding).
  Floorplan decode(const std::vector<double>& x) const;

  // Inverse of decode: expresses a complete floorplan as a model-space
  // solution vector — assignment binaries from the bindings, coordinate
  // variables from the PE locations, |.| split variables at their tight
  // values — suitable as MipOptions::initial_incumbent. Returns an empty
  // vector when the floorplan is not expressible in this model (a free op
  // bound outside its candidate set, or a frozen op moved off its base
  // binding).
  std::vector<double> encode(const Floorplan& fp) const;

  // Expected formulation-(3) shape for verify::lint_formulation, taken from
  // the builder's own bookkeeping.
  verify::FormulationSpec formulation_spec() const;
};

RemapModel build_remap_model(const RemapModelSpec& spec);

}  // namespace cgraf::core
