#include "core/model_builder.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "util/check.h"

namespace cgraf::core {
namespace {

// Debug-assert mode: no model leaves the builder — or an RHS patch — with a
// lint error. The same checks run release-mode via tests and `cgraf_cli
// lint`.
void debug_lint(const RemapModel& rm) {
#ifndef NDEBUG
  verify::LintOptions lint_opts;
  lint_opts.include_info = false;
  const verify::LintReport general = verify::lint_model(rm.model, lint_opts);
  const verify::LintReport formulation =
      verify::lint_formulation(rm.model, rm.formulation_spec(), lint_opts);
  if (!general.clean() || !formulation.clean()) {
    std::fprintf(stderr, "%s%s", general.to_text().c_str(),
                 formulation.to_text().c_str());
    CGRAF_ASSERT(!"build_remap_model produced a model with lint errors");
  }
#else
  (void)rm;
#endif
}

}  // namespace

verify::FormulationSpec RemapModel::formulation_spec() const {
  verify::FormulationSpec spec;
  spec.num_pes = design != nullptr ? design->fabric.num_pes() : 0;
  spec.assign_vars = assign_vars;
  // candidates keeps a single entry for frozen ops but those have no
  // variables; align by copying only where variables exist.
  spec.candidates.assign(candidates.size(), {});
  for (std::size_t op = 0; op < candidates.size(); ++op) {
    if (!assign_vars[op].empty()) spec.candidates[op] = candidates[op];
  }
  spec.num_path_rows = num_path_rows;
  spec.num_monitored_paths = num_monitored_paths;
  return spec;
}

Floorplan RemapModel::decode(const std::vector<double>& x) const {
  CGRAF_ASSERT(design != nullptr && base != nullptr);
  Floorplan fp;
  fp.op_to_pe.assign(design->ops.size(), -1);
  for (int op = 0; op < design->num_ops(); ++op) {
    if (frozen[static_cast<std::size_t>(op)]) {
      fp.op_to_pe[static_cast<std::size_t>(op)] = base->pe_of(op);
      continue;
    }
    const auto& vars = assign_vars[static_cast<std::size_t>(op)];
    const auto& cand = candidates[static_cast<std::size_t>(op)];
    int chosen = -1;
    double best = 0.5;  // an integral solution has exactly one x > 0.5
    for (std::size_t c = 0; c < vars.size(); ++c) {
      const double v = x[static_cast<std::size_t>(vars[c])];
      if (v > best) {
        best = v;
        chosen = cand[c];
      }
    }
    CGRAF_ASSERT(chosen >= 0);
    fp.op_to_pe[static_cast<std::size_t>(op)] = chosen;
  }
  return fp;
}

std::vector<double> RemapModel::encode(const Floorplan& fp) const {
  CGRAF_ASSERT(design != nullptr && base != nullptr);
  if (trivially_infeasible) return {};
  const Fabric& fabric = design->fabric;
  if (fp.op_to_pe.size() != design->ops.size()) return {};
  std::vector<double> x(static_cast<std::size_t>(model.num_vars()), 0.0);
  for (int op = 0; op < design->num_ops(); ++op) {
    const int pe = fp.pe_of(op);
    if (frozen[static_cast<std::size_t>(op)]) {
      if (pe != base->pe_of(op)) return {};
      continue;
    }
    const auto& cand = candidates[static_cast<std::size_t>(op)];
    const auto& vars = assign_vars[static_cast<std::size_t>(op)];
    int chosen = -1;
    for (std::size_t c = 0; c < cand.size(); ++c) {
      if (cand[c] == pe) {
        chosen = static_cast<int>(c);
        break;
      }
    }
    if (chosen < 0) return {};
    x[static_cast<std::size_t>(vars[static_cast<std::size_t>(chosen)])] = 1.0;
  }
  // Coordinate variables are pinned by equality rows; the |.| splits are
  // only lower-bounded, so their tight values |du| keep every absx/absy row
  // feasible and cost nothing (they never appear in the objective).
  for (std::size_t op = 0; op < coord_x.size(); ++op) {
    if (coord_x[op] < 0) continue;
    const Point p = fabric.loc(fp.pe_of(static_cast<int>(op)));
    x[static_cast<std::size_t>(coord_x[op])] = static_cast<double>(p.x);
    x[static_cast<std::size_t>(coord_y[op])] = static_cast<double>(p.y);
  }
  for (const EdgeAbs& e : edge_abs) {
    const Point pu = fabric.loc(fp.pe_of(e.u));
    const Point pv = fabric.loc(fp.pe_of(e.v));
    x[static_cast<std::size_t>(e.dx)] =
        static_cast<double>(std::abs(pu.x - pv.x));
    x[static_cast<std::size_t>(e.dy)] =
        static_cast<double>(std::abs(pu.y - pv.y));
  }
  return x;
}

RemapModel build_remap_model(const RemapModelSpec& spec) {
  CGRAF_ASSERT(spec.design != nullptr && spec.base != nullptr);
  const Design& d = *spec.design;
  const Fabric& fabric = d.fabric;
  const int n_ops = d.num_ops();
  const int n_pes = fabric.num_pes();
  CGRAF_ASSERT(static_cast<int>(spec.frozen.size()) == n_ops);
  CGRAF_ASSERT(static_cast<int>(spec.candidates.size()) == n_ops);

  RemapModel rm;
  rm.design = spec.design;
  rm.base = spec.base;
  rm.st_target = spec.st_target;
  rm.frozen = spec.frozen;
  rm.candidates.assign(static_cast<std::size_t>(n_ops), {});
  rm.assign_vars.assign(static_cast<std::size_t>(n_ops), {});

  auto fail = [&](std::string reason) {
    rm.trivially_infeasible = true;
    rm.infeasible_reason = std::move(reason);
    return rm;
  };

  // Frozen stress per PE and frozen occupancy per (context, pe).
  std::vector<double> frozen_stress(static_cast<std::size_t>(n_pes), 0.0);
  std::vector<std::vector<char>> frozen_occ(
      static_cast<std::size_t>(d.num_contexts),
      std::vector<char>(static_cast<std::size_t>(n_pes), 0));
  for (int op = 0; op < n_ops; ++op) {
    if (!spec.frozen[static_cast<std::size_t>(op)]) continue;
    const int pe = spec.base->pe_of(op);
    frozen_stress[static_cast<std::size_t>(pe)] +=
        op_stress(d.ops[static_cast<std::size_t>(op)], fabric);
    auto& occ = frozen_occ[static_cast<std::size_t>(
        d.ops[static_cast<std::size_t>(op)].context)];
    if (occ[static_cast<std::size_t>(pe)])
      return fail("two frozen ops share a PE in one context");
    occ[static_cast<std::size_t>(pe)] = 1;
  }
  for (int pe = 0; pe < n_pes; ++pe) {
    if (frozen_stress[static_cast<std::size_t>(pe)] > spec.st_target + 1e-9)
      return fail("frozen stress on PE " + std::to_string(pe) +
                  " already exceeds st_target");
  }

  // --- Assignment variables and rows.
  for (int op = 0; op < n_ops; ++op) {
    if (spec.frozen[static_cast<std::size_t>(op)]) {
      rm.candidates[static_cast<std::size_t>(op)] = {spec.base->pe_of(op)};
      continue;
    }
    const int ctx = d.ops[static_cast<std::size_t>(op)].context;
    const Point orig = fabric.loc(spec.base->pe_of(op));
    auto& cand = rm.candidates[static_cast<std::size_t>(op)];
    auto& vars = rm.assign_vars[static_cast<std::size_t>(op)];
    for (const int pe : spec.candidates[static_cast<std::size_t>(op)]) {
      // PEs held by a frozen op of the same context are unusable.
      if (frozen_occ[static_cast<std::size_t>(ctx)]
                    [static_cast<std::size_t>(pe)])
        continue;
      cand.push_back(pe);
      const double obj =
          spec.objective == ObjectiveMode::kMinPerturbation
              ? static_cast<double>(manhattan(fabric.loc(pe), orig))
              : 0.0;
      vars.push_back(rm.model.add_binary(obj));
    }
    if (cand.empty())
      return fail("op " + std::to_string(op) + " has no usable candidate PE");
    std::vector<std::pair<int, double>> row;
    row.reserve(vars.size());
    for (const int v : vars) row.emplace_back(v, 1.0);
    rm.model.add_eq(std::move(row), 1.0, "assign[" + std::to_string(op) + "]");
  }
  rm.num_binary_vars = rm.model.num_vars();

  // --- PE exclusivity per context and stress rows per PE.
  {
    // vars_by_ctx_pe[(ctx, pe)] -> list of vars;  stress terms per pe.
    std::vector<std::vector<std::pair<int, double>>> stress_terms(
        static_cast<std::size_t>(n_pes));
    std::map<std::pair<int, int>, std::vector<int>> excl;
    for (int op = 0; op < n_ops; ++op) {
      if (spec.frozen[static_cast<std::size_t>(op)]) continue;
      const int ctx = d.ops[static_cast<std::size_t>(op)].context;
      const double st = op_stress(d.ops[static_cast<std::size_t>(op)], fabric);
      const auto& cand = rm.candidates[static_cast<std::size_t>(op)];
      const auto& vars = rm.assign_vars[static_cast<std::size_t>(op)];
      for (std::size_t c = 0; c < cand.size(); ++c) {
        excl[{ctx, cand[c]}].push_back(vars[c]);
        stress_terms[static_cast<std::size_t>(cand[c])].emplace_back(vars[c],
                                                                     st);
      }
    }
    for (auto& [key, vars] : excl) {
      if (vars.size() < 2) continue;  // cannot conflict
      std::vector<std::pair<int, double>> row;
      row.reserve(vars.size());
      for (const int v : vars) row.emplace_back(v, 1.0);
      rm.model.add_le(std::move(row), 1.0,
                      "excl[" + std::to_string(key.first) + "," +
                          std::to_string(key.second) + "]");
    }
    rm.stress_rows.assign(static_cast<std::size_t>(n_pes), -1);
    for (int pe = 0; pe < n_pes; ++pe) {
      auto& terms = stress_terms[static_cast<std::size_t>(pe)];
      if (terms.empty()) continue;
      const double rhs =
          spec.st_target - frozen_stress[static_cast<std::size_t>(pe)];
      rm.stress_rows[static_cast<std::size_t>(pe)] = rm.model.add_le(
          std::move(terms), rhs, "stress[" + std::to_string(pe) + "]");
    }
    rm.frozen_stress = frozen_stress;
  }

  // --- Path wire-length constraints (Step 2.2, Eq. (5)).
  if (spec.monitored != nullptr) {
    rm.num_monitored_paths = static_cast<int>(spec.monitored->size());
    const double uwd = fabric.unit_wire_delay_ns();
    // Coordinate variables, created lazily per free op. The indices live on
    // the RemapModel so encode() can reproduce them from a floorplan.
    rm.coord_x.assign(static_cast<std::size_t>(n_ops), -1);
    rm.coord_y.assign(static_cast<std::size_t>(n_ops), -1);
    std::vector<int>& cx = rm.coord_x;
    std::vector<int>& cy = rm.coord_y;
    auto coord_vars = [&](int op) {
      if (cx[static_cast<std::size_t>(op)] >= 0)
        return std::pair<int, int>{cx[static_cast<std::size_t>(op)],
                                   cy[static_cast<std::size_t>(op)]};
      const int vx = rm.model.add_continuous(0.0, fabric.cols() - 1);
      const int vy = rm.model.add_continuous(0.0, fabric.rows() - 1);
      std::vector<std::pair<int, double>> rx{{vx, 1.0}};
      std::vector<std::pair<int, double>> ry{{vy, 1.0}};
      const auto& cand = rm.candidates[static_cast<std::size_t>(op)];
      const auto& vars = rm.assign_vars[static_cast<std::size_t>(op)];
      for (std::size_t c = 0; c < cand.size(); ++c) {
        const Point p = fabric.loc(cand[c]);
        if (p.x != 0) rx.emplace_back(vars[c], -static_cast<double>(p.x));
        if (p.y != 0) ry.emplace_back(vars[c], -static_cast<double>(p.y));
      }
      rm.model.add_eq(std::move(rx), 0.0, "cx[" + std::to_string(op) + "]");
      rm.model.add_eq(std::move(ry), 0.0, "cy[" + std::to_string(op) + "]");
      cx[static_cast<std::size_t>(op)] = vx;
      cy[static_cast<std::size_t>(op)] = vy;
      return std::pair<int, int>{vx, vy};
    };
    // |distance| variables per free-free edge, shared across paths.
    std::map<std::pair<int, int>, std::pair<int, int>> edge_vars;  // dx, dy
    auto free_edge_vars = [&](int u, int v) {
      const auto key = std::minmax(u, v);
      const auto it = edge_vars.find(key);
      if (it != edge_vars.end()) return it->second;
      const auto [ux, uy] = coord_vars(u);
      const auto [vx_, vy_] = coord_vars(v);
      const int dx = rm.model.add_continuous(0.0, milp::kInf);
      const int dy = rm.model.add_continuous(0.0, milp::kInf);
      const std::string edge =
          std::to_string(key.first) + "," + std::to_string(key.second);
      rm.model.add_ge({{dx, 1.0}, {ux, -1.0}, {vx_, 1.0}}, 0.0,
                      "absx+[" + edge + "]");
      rm.model.add_ge({{dx, 1.0}, {ux, 1.0}, {vx_, -1.0}}, 0.0,
                      "absx-[" + edge + "]");
      rm.model.add_ge({{dy, 1.0}, {uy, -1.0}, {vy_, 1.0}}, 0.0,
                      "absy+[" + edge + "]");
      rm.model.add_ge({{dy, 1.0}, {uy, 1.0}, {vy_, -1.0}}, 0.0,
                      "absy-[" + edge + "]");
      rm.edge_abs.push_back(
          RemapModel::EdgeAbs{key.first, key.second, dx, dy});
      return edge_vars[key] = {dx, dy};
    };

    for (const timing::TimingPath& path : *spec.monitored) {
      if (path.ops.size() < 2) continue;  // no wires on the path
      const double budget = uwd > 0.0
                                ? (spec.cpd_ns - path.pe_delay_ns) / uwd
                                : milp::kInf;
      std::vector<std::pair<int, double>> row;
      double constant = 0.0;
      for (std::size_t i = 0; i + 1 < path.ops.size(); ++i) {
        const int u = path.ops[i];
        const int v = path.ops[i + 1];
        const bool fu = spec.frozen[static_cast<std::size_t>(u)] != 0;
        const bool fv = spec.frozen[static_cast<std::size_t>(v)] != 0;
        if (fu && fv) {
          constant += manhattan(fabric.loc(spec.base->pe_of(u)),
                                fabric.loc(spec.base->pe_of(v)));
        } else if (fu != fv) {
          const int free_op = fu ? v : u;
          const Point anchor =
              fabric.loc(spec.base->pe_of(fu ? u : v));
          const auto& cand = rm.candidates[static_cast<std::size_t>(free_op)];
          const auto& vars = rm.assign_vars[static_cast<std::size_t>(free_op)];
          for (std::size_t c = 0; c < cand.size(); ++c) {
            const int dist = manhattan(fabric.loc(cand[c]), anchor);
            if (dist != 0) row.emplace_back(vars[c], static_cast<double>(dist));
          }
        } else {
          const auto [dx, dy] = free_edge_vars(u, v);
          row.emplace_back(dx, 1.0);
          row.emplace_back(dy, 1.0);
        }
      }
      if (budget == milp::kInf) continue;
      const double rhs = budget - constant;
      if (row.empty()) {
        if (rhs < -1e-9)
          return fail("all-frozen monitored path exceeds its wire budget");
        continue;
      }
      if (rhs < -1e-9)
        return fail("monitored path's frozen segments exceed its wire budget");
      rm.model.add_le(std::move(row), rhs,
                      "path[" + std::to_string(rm.num_path_rows) + "]");
      ++rm.num_path_rows;
    }
  }

  debug_lint(rm);
  return rm;
}

bool RemapModel::patch_st_target(double new_target) {
  CGRAF_ASSERT(!trivially_infeasible);
  CGRAF_ASSERT(design != nullptr);
  // Mirror of the builder's early-out: a frozen PE whose stress alone
  // exceeds the target makes the model infeasible before any solve. The
  // model is left untouched so a later patch to a looser target still works.
  for (const double fs : frozen_stress) {
    if (fs > new_target + 1e-9) return false;
  }
  for (std::size_t pe = 0; pe < stress_rows.size(); ++pe) {
    const int row = stress_rows[pe];
    if (row < 0) continue;
    model.set_constraint_bounds(row, -milp::kInf,
                                new_target - frozen_stress[pe]);
  }
  st_target = new_target;
  debug_lint(*this);
  return true;
}

}  // namespace cgraf::core
