#include "core/candidates.h"

#include <algorithm>

#include "util/check.h"

namespace cgraf::core {
namespace {

// One monitored-path occurrence of an op: its neighbours' current
// positions (either may be absent at path ends) and the path's wire-length
// allowance for this op.
struct Occurrence {
  bool has_prev = false, has_next = false;
  Point prev, next;
  double allowance = 0.0;  // max wire units this op may contribute alone
};

}  // namespace

std::vector<std::vector<int>> compute_candidates(
    const Design& design, const Floorplan& base,
    const std::vector<char>& frozen,
    const std::vector<timing::TimingPath>& monitored, double cpd_ns,
    const CandidateOptions& opts) {
  const Fabric& fabric = design.fabric;
  const int n_ops = design.num_ops();
  const int n_pes = fabric.num_pes();
  CGRAF_ASSERT(static_cast<int>(frozen.size()) == n_ops);
  CGRAF_ASSERT(static_cast<int>(base.op_to_pe.size()) == n_ops);

  const double uwd = fabric.unit_wire_delay_ns();
  std::vector<std::vector<Occurrence>> occ(static_cast<std::size_t>(n_ops));

  for (const timing::TimingPath& path : monitored) {
    // Wire-length budget of the whole path (Eq. (5)).
    const double budget =
        uwd > 0.0 ? (cpd_ns - path.pe_delay_ns) / uwd
                  : 1e18;  // zero wire delay: distance is unconstrained
    // Current total wire length of the path under `base`.
    double current = 0.0;
    for (std::size_t i = 0; i + 1 < path.ops.size(); ++i) {
      current += manhattan(
          fabric.loc(base.pe_of(path.ops[i])),
          fabric.loc(base.pe_of(path.ops[i + 1])));
    }
    for (std::size_t i = 0; i < path.ops.size(); ++i) {
      const int op = path.ops[i];
      if (frozen[static_cast<std::size_t>(op)]) continue;
      Occurrence o;
      double own = 0.0;  // this op's current wire contribution on the path
      if (i > 0) {
        o.has_prev = true;
        o.prev = fabric.loc(base.pe_of(path.ops[i - 1]));
        own += manhattan(o.prev, fabric.loc(base.pe_of(op)));
      }
      if (i + 1 < path.ops.size()) {
        o.has_next = true;
        o.next = fabric.loc(base.pe_of(path.ops[i + 1]));
        own += manhattan(fabric.loc(base.pe_of(op)), o.next);
      }
      // Moving only this op: new_own <= budget - (current - own).
      o.allowance = (budget - (current - own)) * opts.slack_multiplier +
                    opts.slack_additive;
      occ[static_cast<std::size_t>(op)].push_back(o);
    }
  }

  std::vector<std::vector<int>> candidates(static_cast<std::size_t>(n_ops));
  for (int op = 0; op < n_ops; ++op) {
    auto& cand = candidates[static_cast<std::size_t>(op)];
    const int orig_pe = base.pe_of(op);
    if (frozen[static_cast<std::size_t>(op)]) {
      cand.push_back(orig_pe);
      continue;
    }
    const Point orig = fabric.loc(orig_pe);
    const auto& occurrences = occ[static_cast<std::size_t>(op)];
    for (int pe = 0; pe < n_pes; ++pe) {
      if (pe == orig_pe) continue;  // added unconditionally below
      const Point p = fabric.loc(pe);
      if (opts.radius_cap >= 0 && manhattan(p, orig) > opts.radius_cap)
        continue;
      bool ok = true;
      for (const Occurrence& o : occurrences) {
        double contribution = 0.0;
        if (o.has_prev) contribution += manhattan(o.prev, p);
        if (o.has_next) contribution += manhattan(p, o.next);
        if (contribution > o.allowance + 1e-9) {
          ok = false;
          break;
        }
      }
      if (ok) cand.push_back(pe);
    }
    cand.push_back(orig_pe);
    std::sort(cand.begin(), cand.end());
  }
  return candidates;
}

}  // namespace cgraf::core
