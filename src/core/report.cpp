#include "core/report.h"

#include <algorithm>
#include <map>

#include "util/ascii.h"
#include "util/check.h"

namespace cgraf::core {

BenchmarkRun run_benchmark(const workloads::GeneratedBenchmark& bench,
                           RemapOptions base_opts) {
  BenchmarkRun run;
  run.spec = bench.spec;
  run.total_ops = bench.total_ops;

  RemapOptions freeze_opts = base_opts;
  freeze_opts.mode = RemapMode::kFreeze;
  freeze_opts.seed = bench.spec.seed ^ 0xf00dULL;
  run.freeze = aging_aware_remap(bench.design, bench.baseline, freeze_opts);

  RemapOptions rotate_opts = base_opts;
  rotate_opts.mode = RemapMode::kRotate;
  rotate_opts.seed = bench.spec.seed ^ 0x0dd5ULL;
  run.rotate = aging_aware_remap(bench.design, bench.baseline, rotate_opts);
  return run;
}

std::string format_table1(const std::vector<BenchmarkRun>& runs) {
  AsciiTable table({"ctx", "fabric", "bench", "band", "PE#", "MTTF x (Freeze)",
                    "MTTF x (Rotate)", "CPD ok"});
  std::map<workloads::UsageBand, std::pair<double, int>> freeze_avg;
  std::map<workloads::UsageBand, std::pair<double, int>> rotate_avg;

  workloads::UsageBand last_band = workloads::UsageBand::kLow;
  bool first = true;
  for (const BenchmarkRun& run : runs) {
    if (!first && run.spec.band != last_band) table.add_separator();
    first = false;
    last_band = run.spec.band;
    const bool cpd_ok =
        run.freeze.cpd_after_ns <= run.freeze.cpd_before_ns + 1e-9 &&
        run.rotate.cpd_after_ns <= run.rotate.cpd_before_ns + 1e-9;
    table.add_row({std::to_string(run.spec.contexts),
                   std::to_string(run.spec.fabric_dim) + "x" +
                       std::to_string(run.spec.fabric_dim),
                   run.spec.name, to_string(run.spec.band),
                   std::to_string(run.total_ops),
                   fmt_double(run.freeze.mttf_gain, 2),
                   fmt_double(run.rotate.mttf_gain, 2),
                   cpd_ok ? "yes" : "NO"});
    auto& f = freeze_avg[run.spec.band];
    f.first += run.freeze.mttf_gain;
    f.second += 1;
    auto& r = rotate_avg[run.spec.band];
    r.first += run.rotate.mttf_gain;
    r.second += 1;
  }

  std::string out = table.render();
  out += "averages:";
  for (const auto band :
       {workloads::UsageBand::kLow, workloads::UsageBand::kMedium,
        workloads::UsageBand::kHigh}) {
    const auto fit = freeze_avg.find(band);
    if (fit == freeze_avg.end() || fit->second.second == 0) continue;
    const auto rit = rotate_avg.find(band);
    out += std::string("  ") + to_string(band) +
           " freeze=" + fmt_double(fit->second.first / fit->second.second, 2) +
           " rotate=" + fmt_double(rit->second.first / rit->second.second, 2);
  }
  out += "\n";
  return out;
}

std::string format_fig5(const std::vector<BenchmarkRun>& runs) {
  // Group by (contexts, fabric_dim); one column per usage band.
  std::map<std::pair<int, int>,
           std::map<workloads::UsageBand, double>>
      by_config;
  for (const BenchmarkRun& run : runs) {
    by_config[{run.spec.contexts, run.spec.fabric_dim}][run.spec.band] =
        run.rotate.mttf_gain;
  }
  AsciiTable table({"config", "low", "medium", "high"});
  for (const auto& [config, bands] : by_config) {
    auto cell = [&](workloads::UsageBand b) {
      const auto it = bands.find(b);
      return it == bands.end() ? std::string("-")
                               : fmt_double(it->second, 2);
    };
    table.add_row({"C" + std::to_string(config.first) + "F" +
                       std::to_string(config.second),
                   cell(workloads::UsageBand::kLow),
                   cell(workloads::UsageBand::kMedium),
                   cell(workloads::UsageBand::kHigh)});
  }
  return table.render();
}

}  // namespace cgraf::core
