#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/json_writer.h"
#include "util/ascii.h"
#include "util/check.h"

namespace cgraf::core {

BenchmarkRun run_benchmark(const workloads::GeneratedBenchmark& bench,
                           RemapOptions base_opts) {
  BenchmarkRun run;
  run.spec = bench.spec;
  run.total_ops = bench.total_ops;

  RemapOptions freeze_opts = base_opts;
  freeze_opts.mode = RemapMode::kFreeze;
  freeze_opts.seed = bench.spec.seed ^ 0xf00dULL;
  run.freeze = aging_aware_remap(bench.design, bench.baseline, freeze_opts);

  RemapOptions rotate_opts = base_opts;
  rotate_opts.mode = RemapMode::kRotate;
  rotate_opts.seed = bench.spec.seed ^ 0x0dd5ULL;
  run.rotate = aging_aware_remap(bench.design, bench.baseline, rotate_opts);
  return run;
}

std::string format_table1(const std::vector<BenchmarkRun>& runs) {
  AsciiTable table({"ctx", "fabric", "bench", "band", "PE#", "MTTF x (Freeze)",
                    "MTTF x (Rotate)", "CPD ok"});
  std::map<workloads::UsageBand, std::pair<double, int>> freeze_avg;
  std::map<workloads::UsageBand, std::pair<double, int>> rotate_avg;

  workloads::UsageBand last_band = workloads::UsageBand::kLow;
  bool first = true;
  for (const BenchmarkRun& run : runs) {
    if (!first && run.spec.band != last_band) table.add_separator();
    first = false;
    last_band = run.spec.band;
    const bool cpd_ok =
        run.freeze.cpd_after_ns <= run.freeze.cpd_before_ns + 1e-9 &&
        run.rotate.cpd_after_ns <= run.rotate.cpd_before_ns + 1e-9;
    table.add_row({std::to_string(run.spec.contexts),
                   std::to_string(run.spec.fabric_dim) + "x" +
                       std::to_string(run.spec.fabric_dim),
                   run.spec.name, to_string(run.spec.band),
                   std::to_string(run.total_ops),
                   fmt_double(run.freeze.mttf_gain, 2),
                   fmt_double(run.rotate.mttf_gain, 2),
                   cpd_ok ? "yes" : "NO"});
    auto& f = freeze_avg[run.spec.band];
    f.first += run.freeze.mttf_gain;
    f.second += 1;
    auto& r = rotate_avg[run.spec.band];
    r.first += run.rotate.mttf_gain;
    r.second += 1;
  }

  std::string out = table.render();
  out += "averages:";
  for (const auto band :
       {workloads::UsageBand::kLow, workloads::UsageBand::kMedium,
        workloads::UsageBand::kHigh}) {
    const auto fit = freeze_avg.find(band);
    if (fit == freeze_avg.end() || fit->second.second == 0) continue;
    const auto rit = rotate_avg.find(band);
    out += std::string("  ") + to_string(band) +
           " freeze=" + fmt_double(fit->second.first / fit->second.second, 2) +
           " rotate=" + fmt_double(rit->second.first / rit->second.second, 2);
  }
  out += "\n";
  return out;
}

std::string format_fig5(const std::vector<BenchmarkRun>& runs) {
  // Group by (contexts, fabric_dim); one column per usage band.
  std::map<std::pair<int, int>,
           std::map<workloads::UsageBand, double>>
      by_config;
  for (const BenchmarkRun& run : runs) {
    by_config[{run.spec.contexts, run.spec.fabric_dim}][run.spec.band] =
        run.rotate.mttf_gain;
  }
  AsciiTable table({"config", "low", "medium", "high"});
  for (const auto& [config, bands] : by_config) {
    auto cell = [&](workloads::UsageBand b) {
      const auto it = bands.find(b);
      return it == bands.end() ? std::string("-")
                               : fmt_double(it->second, 2);
    };
    table.add_row({"C" + std::to_string(config.first) + "F" +
                       std::to_string(config.second),
                   cell(workloads::UsageBand::kLow),
                   cell(workloads::UsageBand::kMedium),
                   cell(workloads::UsageBand::kHigh)});
  }
  return table.render();
}

std::string format_solver_stats(const TwoStepStats& stats) {
  const milp::LpStageStats& s = stats.lp_stage;
  AsciiTable table({"counter", "value"});
  table.add_row({"LP iterations (dive)", std::to_string(stats.lp_iterations)});
  table.add_row({"LP iterations (B&B)",
                 std::to_string(stats.mip_lp_iterations)});
  table.add_row({"phase-1 iterations", std::to_string(s.phase1_iterations)});
  table.add_row({"B&B nodes", std::to_string(stats.mip_nodes)});
  table.add_row({"B&B threads", std::to_string(stats.mip_threads)});
  std::string per_thread;
  for (const long n : stats.mip_nodes_per_thread) {
    if (!per_thread.empty()) per_thread += "/";
    per_thread += std::to_string(n);
  }
  table.add_row({"nodes per thread",
                 per_thread.empty() ? std::string("-") : per_thread});
  table.add_row({"dive rounds", std::to_string(stats.dive_rounds)});
  table.add_row({"vars fixed", std::to_string(stats.vars_fixed) + "/" +
                                   std::to_string(stats.vars_total)});
  table.add_row({"LP status", milp::to_string(stats.lp_status)});
  table.add_row({"MIP status", milp::to_string(stats.mip_status)});
  table.add_row({"LP time", fmt_double(stats.lp_seconds, 4) + "s"});
  table.add_row({"MIP time", fmt_double(stats.mip_seconds, 4) + "s"});
  table.add_row({"fallback (unfixed dive)",
                 stats.fallback_unfixed ? "yes" : "no"});
  table.add_row({"LP algorithm", milp::to_string(stats.lp_algorithm)});
  table.add_row({"dual iterations", std::to_string(s.dual_iterations)});
  table.add_row({"bound flips", std::to_string(s.bound_flips)});
  table.add_row({"refactorizations", std::to_string(s.refactorizations)});
  table.add_row({"steepest-edge resets",
                 std::to_string(s.steepest_edge_resets)});
  table.add_row({"dual fallbacks", std::to_string(s.dual_fallbacks)});
  table.add_row({"pricing time", fmt_double(s.pricing_seconds, 4) + "s"});
  table.add_row({"ftran time", fmt_double(s.ftran_seconds, 4) + "s"});
  table.add_row({"btran time", fmt_double(s.btran_seconds, 4) + "s"});
  table.add_row({"factorize time", fmt_double(s.factor_seconds, 4) + "s"});
  table.add_row({"dual pricing time", fmt_double(s.dse_seconds, 4) + "s"});
  table.add_row({"incremental price updates",
                 std::to_string(s.incremental_updates)});
  table.add_row({"full pricing refreshes",
                 std::to_string(s.full_refreshes)});
  table.add_row({"candidate bucket rebuilds",
                 std::to_string(s.bucket_rebuilds)});
  table.add_row({"warm-started", stats.warm_start_used ? "yes" : "no"});
  return table.render();
}

std::string solver_stats_json(const TwoStepStats& stats) {
  // Emitted as an object-body fragment (no surrounding braces): callers
  // embed it inside their own records, e.g. `"solver":{%s}`.
  const milp::LpStageStats& s = stats.lp_stage;
  obs::JsonWriter w;
  w.field("lp_iterations", stats.lp_iterations)
      .field("mip_lp_iterations", stats.mip_lp_iterations)
      .field("phase1_iterations", s.phase1_iterations)
      .field("nodes", stats.mip_nodes)
      .field("threads", stats.mip_threads)
      .field("dive_rounds", stats.dive_rounds)
      .field("vars_fixed", stats.vars_fixed)
      .field("vars_total", stats.vars_total)
      .field("lp_seconds", stats.lp_seconds)
      .field("mip_seconds", stats.mip_seconds)
      .field("lp_status", milp::to_string(stats.lp_status))
      .field("mip_status", milp::to_string(stats.mip_status))
      .field("fallback_unfixed", stats.fallback_unfixed)
      .field("algorithm", milp::to_string(stats.lp_algorithm))
      .field("dual_iterations", s.dual_iterations)
      .field("bound_flips", s.bound_flips)
      .field("refactorizations", s.refactorizations)
      .field("steepest_edge_resets", s.steepest_edge_resets)
      .field("dual_fallbacks", s.dual_fallbacks)
      .field("pricing_seconds", s.pricing_seconds)
      .field("ftran_seconds", s.ftran_seconds)
      .field("btran_seconds", s.btran_seconds)
      .field("factor_seconds", s.factor_seconds)
      .field("dse_seconds", s.dse_seconds)
      .field("incremental_updates", s.incremental_updates)
      .field("full_refreshes", s.full_refreshes)
      .field("bucket_rebuilds", s.bucket_rebuilds)
      .field("warm_start_used", stats.warm_start_used);
  w.key("nodes_per_thread").begin_array();
  for (const long n : stats.mip_nodes_per_thread) w.value(n);
  w.end_array();
  return w.str();
}

std::string ls_stats_json(const LocalSearchStats& stats) {
  // Object-body fragment like solver_stats_json; embed as `"ls":{%s}`.
  obs::JsonWriter w;
  w.field("moves_examined", stats.moves_examined)
      .field("moves_accepted", stats.moves_accepted)
      .field("shifts_accepted", stats.shifts_accepted)
      .field("swaps_accepted", stats.swaps_accepted)
      .field("restarts_run", stats.restarts_run)
      .field("oracle_calls", stats.oracle_calls)
      .field("oracle_rejections", stats.oracle_rejections)
      .field("seconds", stats.seconds);
  return w.str();
}

}  // namespace cgraf::core
