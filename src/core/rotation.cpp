#include "core/rotation.h"

#include <algorithm>
#include <array>

#include "cgrra/stress.h"
#include "util/check.h"

namespace cgraf::core {
namespace {

// The paper's orientation-diversity rule for one draw: a multiset of C
// orientations in which, for C <= 8, all entries are distinct, and for
// C > 8, every orientation appears floor(C/8) times with the remainder
// spread over distinct extra orientations.
std::vector<int> draw_orientations(int contexts, Rng& rng) {
  std::vector<int> all{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(all);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(contexts));
  const int base = contexts / 8;
  const int extra = contexts % 8;
  for (int o = 0; o < 8; ++o) {
    for (int k = 0; k < base; ++k) out.push_back(all[static_cast<std::size_t>(o)]);
    if (o < extra) out.push_back(all[static_cast<std::size_t>(o)]);
  }
  out.resize(static_cast<std::size_t>(contexts));
  rng.shuffle(out);
  return out;
}

}  // namespace

std::vector<Point> apply_orientation(const std::vector<Point>& points,
                                     int orientation, const Fabric& fabric) {
  CGRAF_ASSERT(orientation >= 0 && orientation < 8);
  const bool mirror = orientation >= 4;
  const int quarter_turns = orientation % 4;

  Rect orig_box;
  for (const Point p : points) orig_box.expand(p);

  std::vector<Point> out;
  out.reserve(points.size());
  for (Point p : points) {
    if (mirror) p.x = -p.x;
    for (int r = 0; r < quarter_turns; ++r) p = Point{-p.y, p.x};
    out.push_back(p);
  }

  Rect box;
  for (const Point p : out) box.expand(p);
  CGRAF_ASSERT(box.width() <= fabric.cols() && box.height() <= fabric.rows());
  // Land the transformed box at the original corner, clamped into bounds.
  const int tx = std::clamp(orig_box.x0, 0, fabric.cols() - box.width()) -
                 box.x0;
  const int ty = std::clamp(orig_box.y0, 0, fabric.rows() - box.height()) -
                 box.y0;
  for (Point& p : out) {
    p = p + Point{tx, ty};
    CGRAF_ASSERT(fabric.in_bounds(p));
  }
  return out;
}

RotationResult rotate_critical_paths(
    const Design& design, const Floorplan& baseline,
    const std::vector<std::vector<int>>& frozen_by_context,
    const RotationOptions& opts) {
  CGRAF_ASSERT(static_cast<int>(frozen_by_context.size()) ==
               design.num_contexts);
  const Fabric& fabric = design.fabric;
  Rng rng(opts.seed);

  // Per-context original positions and stress of the frozen groups.
  std::vector<std::vector<Point>> group_pos(frozen_by_context.size());
  std::vector<std::vector<double>> group_stress(frozen_by_context.size());
  for (std::size_t c = 0; c < frozen_by_context.size(); ++c) {
    for (const int op : frozen_by_context[c]) {
      group_pos[c].push_back(fabric.loc(baseline.pe_of(op)));
      group_stress[c].push_back(
          op_stress(design.ops[static_cast<std::size_t>(op)], fabric));
    }
  }

  // Pre-place every (context, orientation) pair once; plan evaluation then
  // only sums stress maps.
  std::vector<std::array<std::vector<Point>, 8>> placed_by_orientation(
      frozen_by_context.size());
  for (std::size_t c = 0; c < frozen_by_context.size(); ++c) {
    if (group_pos[c].empty()) continue;
    for (int o = 0; o < 8; ++o)
      placed_by_orientation[c][static_cast<std::size_t>(o)] =
          apply_orientation(group_pos[c], o, fabric);
  }

  std::vector<double> pe_stress(static_cast<std::size_t>(fabric.num_pes()),
                                0.0);
  auto plan_cost = [&](const std::vector<int>& orientations) {
    std::fill(pe_stress.begin(), pe_stress.end(), 0.0);
    for (std::size_t c = 0; c < frozen_by_context.size(); ++c) {
      if (group_pos[c].empty()) continue;
      const auto& pts = placed_by_orientation[c][static_cast<std::size_t>(
          orientations[c])];
      for (std::size_t i = 0; i < pts.size(); ++i)
        pe_stress[static_cast<std::size_t>(fabric.pe_at(pts[i]))] +=
            group_stress[c][i];
    }
    // Stress-weighted overlap: squaring penalizes piling several contexts'
    // critical paths on the same PE.
    double cost = 0.0;
    for (const double s : pe_stress) cost += s * s;
    return cost;
  };
  auto commit = [&](RotationResult& out, const std::vector<int>& orientations,
                    double cost) {
    out.ok = true;
    out.overlap_cost = cost;
    out.orientation_per_context = orientations;
    out.rotated_base = baseline;
    for (std::size_t c = 0; c < frozen_by_context.size(); ++c) {
      const auto& pts = placed_by_orientation[c][static_cast<std::size_t>(
          orientations[c])];
      for (std::size_t i = 0; i < frozen_by_context[c].size(); ++i) {
        out.rotated_base.op_to_pe[static_cast<std::size_t>(
            frozen_by_context[c][i])] = fabric.pe_at(pts[i]);
      }
    }
  };

  // Exact enumeration of all 8^C combinations when affordable (the paper's
  // full Step-2.1 search space).
  double combos = 1.0;
  for (int c = 0; c < design.num_contexts; ++c) combos *= 8.0;
  if (opts.exhaustive_limit > 0 &&
      combos <= static_cast<double>(opts.exhaustive_limit)) {
    RotationResult best;
    std::vector<int> orientations(
        static_cast<std::size_t>(design.num_contexts), 0);
    std::vector<int> best_orientations;
    double best_cost = 0.0;
    bool have = false;
    for (long combo = 0; combo < static_cast<long>(combos); ++combo) {
      long v = combo;
      for (std::size_t c = 0; c < orientations.size(); ++c) {
        orientations[c] = static_cast<int>(v & 7);
        v >>= 3;
      }
      const double cost = plan_cost(orientations);
      if (!have || cost < best_cost) {
        have = true;
        best_cost = cost;
        best_orientations = orientations;
      }
    }
    commit(best, best_orientations, best_cost);
    return best;
  }

  RotationResult best;
  for (int restart = 0; restart <= std::max(1, opts.restarts); ++restart) {
    // Draw 0 is the identity plan: the paper's full scheme considers all
    // 8^C orientation combinations, which includes "rotate nothing" — so a
    // diverse draw must actually beat the un-rotated overlap to be used.
    const std::vector<int> orientations =
        restart == 0 ? std::vector<int>(
                           static_cast<std::size_t>(design.num_contexts), 0)
                     : draw_orientations(design.num_contexts, rng);
    const double cost = plan_cost(orientations);
    if (!best.ok || cost < best.overlap_cost) commit(best, orientations, cost);
  }
  return best;
}

}  // namespace cgraf::core
