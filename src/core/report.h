// Experiment drivers: run one benchmark through both Table-I variants
// (Freeze / Rotate) and format result tables.
#pragma once

#include <string>
#include <vector>

#include "core/remapper.h"
#include "workloads/suite.h"

namespace cgraf::core {

struct BenchmarkRun {
  workloads::BenchmarkSpec spec;
  int total_ops = 0;  // Table I "PE #"
  RemapResult freeze;
  RemapResult rotate;
};

// Runs Freeze and Rotate on an already-generated benchmark. `base_opts`
// carries solver limits/seeds; the mode field is overridden per variant.
BenchmarkRun run_benchmark(const workloads::GeneratedBenchmark& bench,
                           RemapOptions base_opts = {});

// Renders Table I (three usage-band super-columns collapsed into rows) from
// a full suite run, with the per-band averages the paper reports.
std::string format_table1(const std::vector<BenchmarkRun>& runs);

// Renders the Fig. 5 series: MTTF gain per CxFy configuration for the
// low/medium/high benchmarks.
std::string format_fig5(const std::vector<BenchmarkRun>& runs);

// Renders the solver's per-stage instrumentation (pricing / FTRAN / BTRAN /
// factorization time, candidate refreshes, nodes per B&B worker) for one
// two-step solve, as a small human-readable table.
std::string format_solver_stats(const TwoStepStats& stats);

// The same counters as a flat JSON object fragment (no surrounding braces),
// e.g. `"lp_iterations":123,"pricing_seconds":0.004,...` — the benches embed
// it in their one-line-per-case JSON records.
std::string solver_stats_json(const TwoStepStats& stats);

// Local-search counters as the same kind of flat JSON object fragment —
// every LocalSearchStats field appears (the CL008 lint gate checks this).
std::string ls_stats_json(const LocalSearchStats& stats);

}  // namespace cgraf::core
