// Experiment drivers: run one benchmark through both Table-I variants
// (Freeze / Rotate) and format result tables.
#pragma once

#include <string>
#include <vector>

#include "core/remapper.h"
#include "workloads/suite.h"

namespace cgraf::core {

struct BenchmarkRun {
  workloads::BenchmarkSpec spec;
  int total_ops = 0;  // Table I "PE #"
  RemapResult freeze;
  RemapResult rotate;
};

// Runs Freeze and Rotate on an already-generated benchmark. `base_opts`
// carries solver limits/seeds; the mode field is overridden per variant.
BenchmarkRun run_benchmark(const workloads::GeneratedBenchmark& bench,
                           RemapOptions base_opts = {});

// Renders Table I (three usage-band super-columns collapsed into rows) from
// a full suite run, with the per-band averages the paper reports.
std::string format_table1(const std::vector<BenchmarkRun>& runs);

// Renders the Fig. 5 series: MTTF gain per CxFy configuration for the
// low/medium/high benchmarks.
std::string format_fig5(const std::vector<BenchmarkRun>& runs);

}  // namespace cgraf::core
