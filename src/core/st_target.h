// Step 1 of Algorithm 1: MILP-based stress-time constraint determination.
//
// Binary-searches the smallest accumulated-stress target ST_target in
// [ST_low, ST_up] for which formulation (3) *without* critical-path and
// path-delay constraints is feasible. ST_up is the highest accumulated
// stress of the aging-unaware floorplan; ST_low its fabric-wide average.
// Because the delay constraints are ignored, the result is a lower bound on
// any delay-feasible target (the paper's "initial value").
#pragma once

#include "cgrra/design.h"
#include "cgrra/floorplan.h"
#include "core/two_step.h"

namespace cgraf::core {

struct StTargetOptions {
  // Stop when the bracket is narrower than tol_frac * (ST_up - ST_low).
  double tol_frac = 0.02;
  int max_iters = 16;
  // Feasibility oracle. Default: the LP relaxation only (fast, and the
  // searched value is explicitly a lower bound). Set confirm_with_ilp to
  // run the paper's full LP-round-ILP at each probe instead.
  bool confirm_with_ilp = false;
  // Incremental probing (core/probe_session.h): build the remap model once,
  // patch only the stress rows' RHS between probes and warm-start each LP
  // from the previous probe's basis. Off = the legacy cold rebuild per
  // probe; verdicts and the found target are identical either way.
  bool warm_probes = true;
  TwoStepOptions solver;
};

// One binary-search probe, in solve order.
struct StProbe {
  double st_target = 0.0;
  bool feasible = false;
  double seconds = 0.0;  // wall time of this probe's solve
};

struct StTargetResult {
  bool ok = false;
  double st_target = 0.0;  // smallest feasible probe found
  double st_low = 0.0;     // fabric-average accumulated stress
  double st_up = 0.0;      // max accumulated stress of the baseline
  int probes = 0;
  long lp_iterations = 0;
  milp::LpStageStats lp_stage;  // aggregated over all probe LPs
  // Probes whose solver answer failed independent certification (counted as
  // infeasible; solver.verify.enabled turns the check on).
  int certify_failures = 0;
  // Incremental-session accounting (all zero with warm_probes == false
  // except model_rebuilds, which then equals probes).
  int warm_hits = 0;        // solves started from the previous probe's basis
  int basis_fallbacks = 0;  // chained basis abandoned for the slack basis
  int model_rebuilds = 0;   // full build_remap_model calls
  int dual_solves = 0;      // probes whose LPs ran the dual simplex loop
  // Per-probe log, in solve order: target, verdict, wall seconds. The
  // differential tests compare it probe by probe; the benches derive their
  // probe-time percentiles from it.
  std::vector<StProbe> probe_log;
};

StTargetResult find_st_target(const Design& design, const Floorplan& baseline,
                              const StTargetOptions& opts = {});

}  // namespace cgraf::core
