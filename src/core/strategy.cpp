#include "core/strategy.h"

#include "util/check.h"

namespace cgraf::core {

const std::vector<StrategyInfo>& strategy_table() {
  static const std::vector<StrategyInfo> kTable = {
      {SolveStrategy::kExactDive, "dive", "exact", true, false,
       RoundingStrategy::kIterativeDive,
       "exact MILP, iterated LP dive rounding (default)"},
      {SolveStrategy::kExactFixOnce, "fix-once", "", true, false,
       RoundingStrategy::kThresholdFixOnce,
       "exact MILP, one >0.95 fixing pass then residual ILP"},
      {SolveStrategy::kExactIlp, "ilp", "", true, false,
       RoundingStrategy::kNone, "exact one-shot ILP (scaling baseline)"},
      {SolveStrategy::kLocalSearch, "ls", "local-search", false, true,
       RoundingStrategy::kIterativeDive,
       "shift/swap local search, certifier-checked"},
      {SolveStrategy::kPortfolio, "portfolio", "", true, true,
       RoundingStrategy::kIterativeDive,
       "exact vs local search race, first finisher wins"},
  };
  return kTable;
}

const StrategyInfo& strategy_info(SolveStrategy s) {
  for (const StrategyInfo& info : strategy_table()) {
    if (info.strategy == s) return info;
  }
  CGRAF_ASSERT(!"SolveStrategy missing from strategy_table()");
  return strategy_table().front();
}

const StrategyInfo* parse_strategy(std::string_view name) {
  for (const StrategyInfo& info : strategy_table()) {
    if (name == info.name || (info.alias[0] != '\0' && name == info.alias))
      return &info;
  }
  return nullptr;
}

const char* to_string(SolveStrategy s) { return strategy_info(s).name; }

const char* to_string(RoundingStrategy s) {
  switch (s) {
    case RoundingStrategy::kIterativeDive: return "iterative_dive";
    case RoundingStrategy::kThresholdFixOnce: return "threshold_fix_once";
    case RoundingStrategy::kRandomizedRound: return "randomized_round";
    case RoundingStrategy::kNone: return "none";
  }
  return "?";
}

std::string strategy_cli_values() {
  std::string out;
  for (const StrategyInfo& info : strategy_table()) {
    if (!out.empty()) out += "|";
    out += info.name;
  }
  return out;
}

}  // namespace cgraf::core
