#include "core/analysis.h"

#include <algorithm>

#include "cgrra/stress.h"
#include "timing/sta.h"
#include "util/ascii.h"
#include "util/check.h"

namespace cgraf::core {

FloorplanDiff diff_floorplans(const Design& design, const Floorplan& before,
                              const Floorplan& after) {
  CGRAF_ASSERT(before.op_to_pe.size() == design.ops.size());
  CGRAF_ASSERT(after.op_to_pe.size() == design.ops.size());
  const Fabric& fabric = design.fabric;

  FloorplanDiff diff;
  diff.ops_total = design.num_ops();
  long long total_displacement = 0;
  for (const Operation& op : design.ops) {
    const int d = manhattan(fabric.loc(before.pe_of(op.id)),
                            fabric.loc(after.pe_of(op.id)));
    if (d > 0) {
      ++diff.ops_moved;
      diff.moved_ops.push_back(op.id);
    }
    diff.max_displacement = std::max(diff.max_displacement, d);
    total_displacement += d;
  }
  diff.avg_displacement =
      diff.ops_total > 0
          ? static_cast<double>(total_displacement) / diff.ops_total
          : 0.0;

  for (const Edge& e : design.edges) {
    diff.wirelength_before += manhattan(fabric.loc(before.pe_of(e.from)),
                                        fabric.loc(before.pe_of(e.to)));
    diff.wirelength_after += manhattan(fabric.loc(after.pe_of(e.from)),
                                       fabric.loc(after.pe_of(e.to)));
  }

  diff.cpd_before_ns = timing::run_sta(design, before).cpd_ns;
  diff.cpd_after_ns = timing::run_sta(design, after).cpd_ns;
  diff.st_max_before = compute_stress(design, before).max_accumulated();
  diff.st_max_after = compute_stress(design, after).max_accumulated();
  return diff;
}

std::string format_diff(const FloorplanDiff& diff) {
  std::string out;
  out += "ops moved       : " + std::to_string(diff.ops_moved) + " / " +
         std::to_string(diff.ops_total) + "\n";
  out += "displacement    : avg " + fmt_double(diff.avg_displacement, 2) +
         ", max " + std::to_string(diff.max_displacement) + " (PE pitches)\n";
  out += "wirelength      : " + std::to_string(diff.wirelength_before) +
         " -> " + std::to_string(diff.wirelength_after) + "\n";
  out += "cpd (ns)        : " + fmt_double(diff.cpd_before_ns, 3) + " -> " +
         fmt_double(diff.cpd_after_ns, 3) + "\n";
  out += "max stress      : " + fmt_double(diff.st_max_before, 3) + " -> " +
         fmt_double(diff.st_max_after, 3) + "\n";
  return out;
}

std::vector<ContextStats> per_context_stats(const Design& design,
                                            const Floorplan& fp) {
  CGRAF_ASSERT(fp.op_to_pe.size() == design.ops.size());
  const Fabric& fabric = design.fabric;
  std::vector<ContextStats> stats(
      static_cast<std::size_t>(design.num_contexts));
  for (int c = 0; c < design.num_contexts; ++c)
    stats[static_cast<std::size_t>(c)].context = c;

  for (const Operation& op : design.ops) {
    auto& s = stats[static_cast<std::size_t>(op.context)];
    ++s.ops;
    s.bbox.expand(fabric.loc(fp.pe_of(op.id)));
  }
  for (const Edge& e : design.edges) {
    if (!design.same_context(e)) continue;
    const int c = design.ops[static_cast<std::size_t>(e.from)].context;
    stats[static_cast<std::size_t>(c)].comb_wirelength +=
        manhattan(fabric.loc(fp.pe_of(e.from)), fabric.loc(fp.pe_of(e.to)));
  }
  const timing::StaResult sta = timing::run_sta(design, fp);
  for (int c = 0; c < design.num_contexts; ++c)
    stats[static_cast<std::size_t>(c)].cpd_ns =
        sta.context_cpd_ns[static_cast<std::size_t>(c)];
  return stats;
}

}  // namespace cgraf::core
