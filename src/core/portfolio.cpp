#include "core/portfolio.h"

#include <thread>
#include <utility>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/sync.h"

namespace cgraf::core {

const char* to_string(PortfolioWinner w) {
  switch (w) {
    case PortfolioWinner::kNone: return "none";
    case PortfolioWinner::kExact: return "exact";
    case PortfolioWinner::kLocalSearch: return "ls";
  }
  return "?";
}

PortfolioResult race_portfolio(ProbeSession& session, RemapModelSpec ls_spec,
                               double st_target,
                               const PortfolioOptions& opts) {
  const double t_start = now_seconds();
  PortfolioResult res;
  ls_spec.st_target = st_target;

  std::atomic<bool> cancel{false};
  session.set_cancel(&cancel);

  // --- Seeding sprint (synchronous, before the race clock matters).
  std::vector<double> seed_vec;
  if (opts.seed_incumbent) {
    LocalSearchOptions sprint = opts.ls;
    sprint.max_iters = opts.sprint_iters;
    sprint.restarts = 1;
    sprint.cancel = nullptr;
    const LocalSearchResult sprint_res = local_search_remap(ls_spec, sprint);
    res.ls.stats.add(sprint_res.stats);
    if (sprint_res.feasible && sprint_res.certified) {
      const RemapModel* rm = session.model_at(st_target);
      if (rm != nullptr) {
        seed_vec = rm->encode(sprint_res.floorplan);
        if (!seed_vec.empty()) {
          session.set_initial_incumbent(&seed_vec);
          res.incumbent_seeded = true;
        }
      }
    }
  }

  // --- The race.
  Mutex mu("portfolio", lock_rank::kPortfolio);
  CondVar cv;
  bool exact_done = false;       // guarded by mu
  bool ls_done = false;          // guarded by mu
  PortfolioWinner winner = PortfolioWinner::kNone;  // guarded by mu

  std::thread t_exact([&] {
    TwoStepResult r = session.solve(st_target);
    const bool ok = r.status == milp::SolveStatus::kOptimal;
    res.exact = std::move(r);  // sole writer until joined
    MutexLock lock(&mu);
    exact_done = true;
    if (ok && winner == PortfolioWinner::kNone)
      winner = PortfolioWinner::kExact;
    cv.notify_all();
  });
  std::thread t_ls([&] {
    LocalSearchOptions ls_opts = opts.ls;
    ls_opts.cancel = &cancel;
    LocalSearchResult r = local_search_remap(ls_spec, ls_opts);
    const bool ok = r.feasible && r.certified;
    res.ls.stats.add(r.stats);
    res.ls.feasible = r.feasible;
    res.ls.certified = r.certified;
    res.ls.floorplan = std::move(r.floorplan);
    res.ls.score = r.score;
    res.ls.max_stress = r.max_stress;
    MutexLock lock(&mu);
    ls_done = true;
    if (ok && winner == PortfolioWinner::kNone)
      winner = PortfolioWinner::kLocalSearch;
    cv.notify_all();
  });

  {
    MutexLock lock(&mu);
    while (winner == PortfolioWinner::kNone && !(exact_done && ls_done))
      cv.wait(mu);
  }
  // Stop the loser (a no-op for a racer that already finished) and wait for
  // both so no solver outlives this frame (seed_vec, cancel are locals).
  cancel.store(true, std::memory_order_relaxed);
  t_exact.join();
  t_ls.join();
  session.set_initial_incumbent(nullptr);
  session.set_cancel(nullptr);

  {
    MutexLock lock(&mu);
    res.winner = winner;
  }
  res.seconds = now_seconds() - t_start;

  obs::Metrics::global().counter("portfolio.races").add(1);
  switch (res.winner) {
    case PortfolioWinner::kExact:
      obs::Metrics::global().counter("portfolio.exact_wins").add(1);
      break;
    case PortfolioWinner::kLocalSearch:
      obs::Metrics::global().counter("portfolio.ls_wins").add(1);
      break;
    case PortfolioWinner::kNone:
      break;
  }
  obs::Event(opts.ls.events, "portfolio.result")
      .arg("winner", to_string(res.winner))
      .arg("st_target", st_target)
      .arg("seeded", res.incumbent_seeded)
      .arg("exact_status", milp::to_string(res.exact.status))
      .arg("ls_feasible", res.ls.feasible)
      .arg("seconds", res.seconds);
  return res;
}

}  // namespace cgraf::core
