#include "core/remapper.h"

#include <algorithm>

#include "cgrra/stress.h"
#include "core/portfolio.h"
#include "core/probe_session.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/ascii.h"
#include "util/check.h"
#include "util/clock.h"
#include "verify/input_lint.h"

namespace cgraf::core {

RemapResult aging_aware_remap(const Design& design, const Floorplan& baseline,
                              const RemapOptions& opts) {
  const double t_start = now_seconds();
  obs::Span remap_span("remap");
  remap_span.arg("ops", design.num_ops())
      .arg("contexts", design.num_contexts)
      .arg("pes", design.fabric.num_pes());
  obs::EventLog* const events = opts.solver.events != nullptr
                                    ? opts.solver.events
                                    : opts.solver.lp.events;
  obs::Event(events, "remap.begin")
      .arg("ops", design.num_ops())
      .arg("contexts", design.num_contexts)
      .arg("pes", design.fabric.num_pes());
  RemapResult res;

  // Input boundary: reject garbage with a DL rule ID before any model is
  // built. The is_valid assert below stays as a backstop — the DL error
  // rules are a superset of its checks, so it can only fire on inputs the
  // lint already waved through (i.e. a lint bug).
  {
    const verify::LintReport input_rep =
        verify::lint_inputs(design, &baseline);
    if (!input_rep.clean()) {
      res.floorplan = baseline;
      for (const verify::LintFinding& f : input_rep.findings) {
        if (f.severity == verify::Severity::kError) {
          res.note = "rejected by input lint: " + f.rule + ": " + f.message;
          break;
        }
      }
      obs::Event(events, "remap.end").arg("improved", false).arg(
          "note", res.note);
      return res;
    }
  }
  std::string why;
  CGRAF_ASSERT(is_valid(design, baseline, &why));

  const timing::CombGraph graph(design);
  const timing::StaResult sta0 = run_sta(graph, baseline);
  res.cpd_before_ns = sta0.cpd_ns;

  const StressMap stress0 = compute_stress(design, baseline);
  res.st_max_before = stress0.max_accumulated();
  res.st_avg = stress0.avg_accumulated();
  res.mttf_before = aging::compute_mttf(design, baseline, opts.nbti,
                                        opts.thermal);
  res.floorplan = baseline;

  // Fault-recovery support: PEs that may not host operations.
  std::vector<char> blocked(static_cast<std::size_t>(design.fabric.num_pes()),
                            0);
  for (const int pe : opts.blocked_pes) {
    CGRAF_ASSERT(pe >= 0 && pe < design.fabric.num_pes());
    blocked[static_cast<std::size_t>(pe)] = 1;
  }
  const bool fault_mode = !opts.blocked_pes.empty();

  // --- Step 2.1a: critical paths per context; their union is frozen.
  //
  // Fault mode: a critical path with any op on a blocked PE cannot be
  // frozen at all — pinning its healthy ops would trap the displaced one
  // on a zero-slack path. The whole path becomes free; its monitored-path
  // budget (wire length <= the original) lets it shift rigidly, and the
  // final STA check still guarantees the CPD.
  std::vector<std::vector<int>> frozen_by_context(
      static_cast<std::size_t>(design.num_contexts));
  std::vector<char> frozen(static_cast<std::size_t>(design.num_ops()), 0);
  std::vector<char> tainted(static_cast<std::size_t>(design.num_ops()), 0);
  std::vector<std::pair<int, timing::TimingPath>> cps_by_context;
  for (int c = 0; c < design.num_contexts; ++c) {
    for (auto& p : timing::critical_paths(graph, baseline, c,
                                          opts.max_critical_paths_per_context)) {
      bool touches_blocked = false;
      for (const int op : p.ops)
        touches_blocked |=
            blocked[static_cast<std::size_t>(baseline.pe_of(op))] != 0;
      if (touches_blocked) {
        for (const int op : p.ops) tainted[static_cast<std::size_t>(op)] = 1;
      }
      cps_by_context.emplace_back(c, std::move(p));
    }
  }
  for (const auto& [c, p] : cps_by_context) {
    for (const int op : p.ops) {
      if (tainted[static_cast<std::size_t>(op)]) continue;
      if (!frozen[static_cast<std::size_t>(op)]) {
        frozen[static_cast<std::size_t>(op)] = 1;
        frozen_by_context[static_cast<std::size_t>(c)].push_back(op);
      }
    }
  }
  for (const char f : frozen) res.num_frozen_ops += f;

  // --- Step 2.2: monitored paths, from the original mapping (paper: paths
  // whose *initial* delay is within the margin of the CPD).
  timing::PathQuery query;
  query.margin = opts.path_margin;
  query.max_paths = opts.max_monitored_paths;
  const std::vector<timing::TimingPath> monitored =
      timing::monitored_paths(graph, baseline, query);
  res.num_monitored_paths = static_cast<int>(monitored.size());

  // Baseline returns still deserve a certificate: the unchanged floorplan
  // is checked against its own stress level and the monitored-path budgets.
  auto certify_baseline = [&] {
    if (!opts.verify.enabled) return;
    verify::FloorplanSpec fspec;
    fspec.design = &design;
    fspec.reference = &baseline;
    fspec.frozen = frozen;
    fspec.st_target = res.st_max_before;
    fspec.monitored = &monitored;
    fspec.cpd_ns = res.cpd_before_ns;
    res.certified =
        verify::certify_floorplan(fspec, baseline, opts.verify.tol).ok;
  };

  // Incremental-probe accounting, folded in from every session the flow
  // opens (Step 1's search, the presearch geometries, the Delta loop).
  auto fold_session = [&](const ProbeSessionStats& ps) {
    res.probe_warm_hits += ps.warm_hits;
    res.probe_basis_fallbacks += ps.basis_fallbacks;
    res.probe_model_rebuilds += ps.model_rebuilds;
  };
  auto emit_probe_counters = [&] {
    obs::Metrics::global().counter("remap.warm_hits")
        .add(res.probe_warm_hits);
    obs::Metrics::global().counter("remap.basis_fallbacks")
        .add(res.probe_basis_fallbacks);
  };

  // --- Step 1: delay-unaware stress-target lower bound.
  StTargetOptions st_opts = opts.st_search;
  st_opts.warm_probes = opts.warm_probes;
  // The Step-1 search usually carries its own solver options; route the
  // remap-level event sink into it unless one was set there explicitly.
  if (st_opts.solver.events == nullptr) st_opts.solver.events = events;
  const StTargetResult st = find_st_target(design, baseline, st_opts);
  res.probe_warm_hits += st.warm_hits;
  res.probe_basis_fallbacks += st.basis_fallbacks;
  res.probe_model_rebuilds += st.model_rebuilds;
  res.st_target_initial = st.st_target;
  const double delta = std::max(
      1e-9, opts.delta_frac * std::max(1e-12, st.st_up - st.st_low));

  // --- Step 2.3: Delta-relaxation loop, re-drawing rotations if needed.
  const int rotation_rounds =
      opts.mode == RemapMode::kRotate ? 1 + std::max(0, opts.rotation_retries)
                                      : 1;
  for (int round = 0; round < rotation_rounds; ++round) {
    ++res.rotation_attempts;
    obs::Span round_span("remap.rotation");
    round_span.arg("round", round);
    Floorplan base = baseline;
    if (opts.mode == RemapMode::kRotate) {
      RotationOptions ropts;
      ropts.restarts = opts.rotation_restarts;
      ropts.seed = opts.seed + 0x100 * static_cast<std::uint64_t>(round + 1);
      const RotationResult rot = rotate_critical_paths(
          design, baseline, frozen_by_context, ropts);
      CGRAF_ASSERT(rot.ok);
      base = rot.rotated_base;
      if (fault_mode) {
        // A rotation may land a frozen group on a blocked PE; fall back to
        // the un-rotated geometry (whose frozen set avoids blocked PEs by
        // construction).
        for (const auto& group : frozen_by_context) {
          for (const int op : group) {
            if (blocked[static_cast<std::size_t>(base.pe_of(op))]) {
              base = baseline;
              break;
            }
          }
        }
      }
    }

    // Candidates depend on positions and slack only, not on st_target. In
    // fault mode unfrozen critical paths must be able to shift rigidly, so
    // the single-move pruning gets extra additive headroom (the joint path
    // constraints in the model remain exact).
    CandidateOptions cand_opts = opts.candidates;
    if (fault_mode)
      cand_opts.slack_additive = std::max(cand_opts.slack_additive, 4.0);
    auto filter_blocked = [&](std::vector<std::vector<int>>& cand_sets) {
      if (!fault_mode) return;
      for (int op = 0; op < design.num_ops(); ++op) {
        if (frozen[static_cast<std::size_t>(op)]) continue;
        std::erase_if(cand_sets[static_cast<std::size_t>(op)], [&](int pe) {
          return blocked[static_cast<std::size_t>(pe)] != 0;
        });
      }
    };
    std::vector<std::vector<int>> candidates = compute_candidates(
        design, base, frozen, monitored, res.cpd_before_ns, cand_opts);
    filter_blocked(candidates);

    double st_target = std::max(res.st_target_initial, 1e-12);
    if (opts.lp_presearch) {
      obs::Span presearch_span("remap.presearch");
      TwoStepOptions probe_opts = opts.solver;
      probe_opts.lp_only = true;
      // Smallest LP-feasible target (with path constraints) for a given
      // frozen geometry: the start of the Delta loop. One probe session per
      // geometry — its probes differ only in the stress rows' RHS.
      auto presearch = [&](const Floorplan& b,
                           const std::vector<std::vector<int>>& cand) {
        RemapModelSpec spec;
        spec.design = &design;
        spec.base = &b;
        spec.frozen = frozen;
        spec.candidates = cand;
        spec.monitored = &monitored;
        spec.cpd_ns = res.cpd_before_ns;
        spec.objective = ObjectiveMode::kNull;  // feasibility only
        ProbeSession session(std::move(spec), probe_opts, opts.warm_probes);
        auto lp_feasible = [&](double target) {
          return session.solve(target).status == milp::SolveStatus::kOptimal;
        };
        double lo = std::max(res.st_target_initial, 1e-12);
        double found = lo;
        if (!lp_feasible(lo)) {
          double hi = res.st_max_before;
          for (int probe = 0; probe < opts.lp_presearch_probes; ++probe) {
            const double mid = 0.5 * (lo + hi);
            if (lp_feasible(mid)) hi = mid;
            else lo = mid;
          }
          found = hi;
        }
        fold_session(session.stats());
        return found;
      };
      st_target = presearch(base, candidates);
      if (opts.mode == RemapMode::kRotate && round == 0) {
        // The overlap score is only a proxy: on small fabrics with many
        // contexts a rotation that spreads the frozen groups can *hurt*
        // the reachable balance. Compare against the un-rotated geometry
        // by the quantity that matters and keep the better plan.
        std::vector<std::vector<int>> id_cand =
            compute_candidates(design, baseline, frozen, monitored,
                               res.cpd_before_ns, cand_opts);
        filter_blocked(id_cand);
        const double id_target = presearch(baseline, id_cand);
        if (id_target < st_target - 1e-12) {
          base = baseline;
          candidates = id_cand;
          st_target = id_target;
          obs::Progress::global().logf(
              opts.verbose, "  [remap] identity geometry wins presearch");
        }
      }
      presearch_span.arg("st_target", st_target);
      obs::Progress::global().logf(
          opts.verbose, "  [remap] lp presearch -> st_target=%.4f", st_target);
    }

    TwoStepOptions solver_opts = opts.solver;
    // Exact strategies drive the rounding mode from the strategy table
    // (--strategy beats any ad-hoc solver.strategy setting); the portfolio
    // keeps the configured rounding for its exact side.
    const StrategyInfo& sinfo = strategy_info(opts.strategy);
    if (sinfo.exact && !sinfo.heuristic)
      solver_opts.strategy = sinfo.rounding;
    // Unfrozen critical paths (fault mode) need coordinated rigid moves
    // that the greedy dive cannot discover; let branch & bound finish
    // the job when the dive dead-ends.
    if (fault_mode) solver_opts.bnb_fallback = true;
    // One switch turns on both certification layers: the milp-level
    // solution check inside solve_two_step and the cgrra-level floorplan
    // check below.
    if (opts.verify.enabled) solver_opts.verify = opts.verify;
    // The Delta loop's attempts share one geometry (base/candidates are
    // final once the presearch picked them), so one session carries the
    // model and the chained basis across the whole scan + refinement.
    RemapModelSpec attempt_spec;
    attempt_spec.design = &design;
    attempt_spec.base = &base;
    attempt_spec.frozen = frozen;
    attempt_spec.candidates = candidates;
    attempt_spec.monitored = &monitored;
    attempt_spec.cpd_ns = res.cpd_before_ns;
    attempt_spec.objective = opts.objective;
    // The heuristic strategies need the same spec (st_target patched per
    // attempt) after attempt_spec is moved into the session.
    RemapModelSpec heur_spec = attempt_spec;
    ProbeSession attempt_session(std::move(attempt_spec), solver_opts,
                                 opts.warm_probes);

    // Attempts one st_target: solve, validate, and re-check the CPD with a
    // full STA (Algorithm 1 lines 10-17). Returns true and fills
    // `out`/`out_cpd` on success.
    auto attempt = [&](double target, Floorplan& out, double& out_cpd) {
      ++res.outer_iterations;
      res.st_target_final = target;
      // One span per Delta-relaxation attempt: the probed target plus the
      // solver verdict and the post-hoc STA check.
      obs::Span attempt_span("remap.attempt");
      attempt_span.arg("st_target", target).arg("iter", res.outer_iterations);
      obs::Metrics::global().counter("remap.attempts").add(1);
      const double t_iter = now_seconds();

      // Strategy dispatch: exact MILP, local search, or the race of both.
      // Each branch fills the same verdict slots so the STA re-check and
      // reporting below stay strategy-agnostic.
      bool solved_ok = false;
      // Heuristic results already carry a green certify_floorplan
      // certificate from the in-search oracle (same spec as the gate
      // below); re-certifying them would be a no-op.
      bool oracle_certified = false;
      Floorplan solved_fp;
      std::string status_str;
      int vars = 0;
      // The per-attempt LS stream: reproducible, distinct per Delta-loop
      // iteration.
      LocalSearchOptions ls_opts = opts.ls;
      ls_opts.seed = opts.ls.seed ^
                     (0x9e3779b97f4a7c15ULL *
                      static_cast<std::uint64_t>(res.outer_iterations));
      if (ls_opts.events == nullptr) ls_opts.events = events;
      if (opts.verify.enabled) ls_opts.tol = opts.verify.tol;

      if (opts.strategy == SolveStrategy::kLocalSearch) {
        heur_spec.st_target = target;
        const LocalSearchResult lsr = local_search_remap(heur_spec, ls_opts);
        res.ls_stats.add(lsr.stats);
        solved_ok = lsr.feasible;
        oracle_certified = lsr.certified;
        if (solved_ok) solved_fp = lsr.floorplan;
        status_str = solved_ok ? "feasible" : "infeasible";
      } else if (opts.strategy == SolveStrategy::kPortfolio) {
        PortfolioOptions popts;
        popts.ls = ls_opts;
        const PortfolioResult pr =
            race_portfolio(attempt_session, heur_spec, target, popts);
        ++res.portfolio_races;
        res.ls_stats.add(pr.ls.stats);
        res.last_solve = pr.exact.stats;
        if (pr.incumbent_seeded) ++res.portfolio_seeded;
        if (pr.winner == PortfolioWinner::kExact) {
          ++res.portfolio_exact_wins;
          solved_ok = true;
          solved_fp = pr.exact.floorplan;
          vars = attempt_session.model().num_binary_vars;
        } else if (pr.winner == PortfolioWinner::kLocalSearch) {
          ++res.portfolio_ls_wins;
          solved_ok = true;
          oracle_certified = true;
          solved_fp = pr.ls.floorplan;
        }
        status_str = std::string("portfolio_") + to_string(pr.winner);
      } else {
        const TwoStepResult solved = attempt_session.solve(target);
        res.last_solve = solved.stats;
        vars = attempt_session.model().num_binary_vars;
        status_str = milp::to_string(solved.status);
        if (solved.status == milp::SolveStatus::kOptimal) {
          solved_ok = true;
          solved_fp = solved.floorplan;
        }
      }

      bool cpd_ok = false;
      if (solved_ok) {
        CGRAF_ASSERT(is_valid(design, solved_fp, &why));
        if (opts.verify.enabled && !oracle_certified) {
          verify::FloorplanSpec fspec;
          fspec.design = &design;
          fspec.reference = &base;
          fspec.frozen = frozen;
          fspec.st_target = target;
          fspec.monitored = &monitored;
          fspec.cpd_ns = res.cpd_before_ns;
          const verify::Certificate cert = verify::certify_floorplan(
              fspec, solved_fp, opts.verify.tol);
          if (!cert.ok) {
            ++res.certify_rejections;
            obs::Metrics::global()
                .counter("verify.floorplan_rejections")
                .add(1);
            obs::Progress::global().logf(
                opts.verbose, "  [remap] certification rejected attempt: %s",
                cert.summary().c_str());
            return false;
          }
        }
        const timing::StaResult sta1 = run_sta(graph, solved_fp);
        cpd_ok = sta1.cpd_ns <= res.cpd_before_ns + 1e-9;
        if (cpd_ok) {
          out = std::move(solved_fp);
          out_cpd = sta1.cpd_ns;
        }
      }
      attempt_span.arg("status", status_str)
          .arg("cpd_ok", cpd_ok)
          .arg("vars", vars);
      obs::Event(events, "remap.attempt")
          .arg("iter", res.outer_iterations)
          .arg("st_target", target)
          .arg("status", status_str)
          .arg("strategy", to_string(opts.strategy))
          .arg("cpd_ok", cpd_ok)
          .arg("vars", vars)
          .arg("seconds", now_seconds() - t_iter);
      obs::Progress::global().logf(
          opts.verbose,
          "  [remap] iter=%d st_target=%.4f vars=%d status=%s "
          "cpd_ok=%d rounds=%d fixed=%d nodes=%ld %.2fs",
          res.outer_iterations, target, vars, status_str.c_str(),
          cpd_ok ? 1 : 0, res.last_solve.dive_rounds,
          res.last_solve.vars_fixed, res.last_solve.mip_nodes,
          now_seconds() - t_iter);
      return cpd_ok;
    };

    // Scan upward: Delta steps, escalating geometrically toward the cap
    // after failures so a hard instance costs O(log) failed solves, not
    // O(1/Delta). Without blocked PEs the baseline proves feasibility at
    // ST_up; in fault mode the displaced ops may need more headroom, so
    // the cap extends to the total stress (one PE carrying everything).
    const double scan_cap =
        fault_mode ? std::max(res.st_max_before,
                              res.st_avg * design.fabric.num_pes())
                   : res.st_max_before;
    Floorplan found;
    double found_cpd = 0.0;
    double found_at = -1.0;
    double last_fail = -1.0;
    for (int iter = 0; iter < opts.max_outer_iters; ++iter) {
      if (attempt(st_target, found, found_cpd)) {
        found_at = st_target;
        break;
      }
      last_fail = st_target;
      if (st_target >= scan_cap * (1.0 + 1e-9)) break;
      const double step = std::max(delta, (scan_cap - st_target) / 3.0);
      st_target = std::min(st_target + step, scan_cap * (1.0 + 1e-9));
      obs::Metrics::global().counter("remap.relaxations").add(1);
    }

    if (found_at >= 0.0) {
      // Bisect back toward the last failure to tighten the balance.
      for (int probe = 0; probe < opts.refine_probes; ++probe) {
        if (last_fail < 0.0 || found_at - last_fail <= delta) break;
        const double mid = 0.5 * (last_fail + found_at);
        Floorplan better;
        double better_cpd = 0.0;
        if (attempt(mid, better, better_cpd)) {
          found = std::move(better);
          found_cpd = better_cpd;
          found_at = mid;
        } else {
          last_fail = mid;
        }
      }
      fold_session(attempt_session.stats());

      const StressMap stress1 = compute_stress(design, found);
      const bool stress_improved =
          stress1.max_accumulated() < res.st_max_before - 1e-12;
      if (stress_improved || fault_mode) {
        // Every kept candidate passed the per-attempt certificate above.
        res.certified = opts.verify.enabled;
        res.floorplan = std::move(found);
        res.cpd_after_ns = found_cpd;
        res.st_max_after = stress1.max_accumulated();
        res.st_target_final = found_at;
        res.improved = stress_improved;
        res.note = "remapped at st_target=" + fmt_double(found_at, 4) +
                   " after " + std::to_string(res.outer_iterations) +
                   " iteration(s)";
        if (fault_mode) {
          res.note += " avoiding " +
                      std::to_string(opts.blocked_pes.size()) +
                      " blocked PE(s)";
        }
      } else {
        res.note = "solution found but no stress improvement";
        certify_baseline();
      }
      res.mttf_after =
          aging::compute_mttf(design, res.floorplan, opts.nbti, opts.thermal);
      if (!res.improved) {
        res.cpd_after_ns = res.cpd_before_ns;
        res.st_max_after = res.st_max_before;
      }
      res.mttf_gain =
          res.mttf_after.mttf_seconds / res.mttf_before.mttf_seconds;
      res.seconds = now_seconds() - t_start;
      obs::Metrics::global().gauge("remap.st_target_final")
          .set(res.st_target_final);
      obs::Metrics::global().gauge("remap.mttf_gain").set(res.mttf_gain);
      emit_probe_counters();
      remap_span.arg("improved", res.improved)
          .arg("st_target_final", res.st_target_final)
          .arg("attempts", res.outer_iterations)
          .arg("warm_hits", static_cast<long>(res.probe_warm_hits));
      obs::Event(events, "remap.end")
          .arg("improved", res.improved)
          .arg("st_target_final", res.st_target_final)
          .arg("attempts", res.outer_iterations)
          .arg("warm_hits", res.probe_warm_hits)
          .arg("basis_fallbacks", res.probe_basis_fallbacks)
          .arg("seconds", res.seconds);
      return res;
    }
    fold_session(attempt_session.stats());
    // No feasible floorplan with this rotation: re-draw (Rotate) or give up.
  }

  // No improving floorplan: return the baseline unchanged.
  certify_baseline();
  res.cpd_after_ns = res.cpd_before_ns;
  res.st_max_after = res.st_max_before;
  res.mttf_after = res.mttf_before;
  res.mttf_gain = 1.0;
  res.note = "no improving floorplan found; baseline kept";
  res.seconds = now_seconds() - t_start;
  emit_probe_counters();
  remap_span.arg("improved", false)
      .arg("attempts", res.outer_iterations)
      .arg("warm_hits", static_cast<long>(res.probe_warm_hits));
  obs::Event(events, "remap.end")
      .arg("improved", false)
      .arg("st_target_final", res.st_target_final)
      .arg("attempts", res.outer_iterations)
      .arg("warm_hits", res.probe_warm_hits)
      .arg("basis_fallbacks", res.probe_basis_fallbacks)
      .arg("seconds", res.seconds);
  return res;
}

}  // namespace cgraf::core
