// The paper's two-step MILP relaxation (Section V.B, Step 1 text):
//  1. solve the LP relaxation (every OP_ijk in [0,1]),
//  2. pre-map: fix variables with value > 0.95 to 1,
//  3. solve the residual ILP for the remaining operations.
//
// The alternative strategies the paper mentions (pure one-shot ILP, which
// "could not find a solution within 5 days" at scale, and randomized
// rounding, which "did not work as well") are selectable for the scaling
// and rounding ablation benches.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/model_builder.h"
#include "milp/branch_and_bound.h"
#include "verify/certify.h"

namespace cgraf::core {

enum class RoundingStrategy {
  // Iterated LP dive (default): repeat { solve LP; fix every assignment
  // with value > threshold; if none qualify, fix the single most-integral
  // op } with warm-started re-solves until every op is committed. This is
  // the paper's pre-mapping applied to a fixed point; when a dive dead-ends
  // it falls back to branch & bound on the unfixed model.
  kIterativeDive,
  kThresholdFixOnce,  // the paper's literal method: one fix pass, then ILP
  kRandomizedRound,   // ablation: sample candidate ~ LP weights, then ILP
  kNone,              // pure one-shot ILP (scaling baseline)
};

struct TwoStepOptions {
  RoundingStrategy strategy = RoundingStrategy::kIterativeDive;
  double round_threshold = 0.95;
  // kIterativeDive: when a fixing decision breaks LP feasibility, undo the
  // offending round and ban the forced variable, up to this many bans
  // before giving up on the current st_target.
  int dive_ban_budget = 120;
  // Re-solve dead-ended dives with full branch & bound (expensive; the
  // Delta relaxation of Algorithm 1 usually recovers more cheaply).
  bool bnb_fallback = false;
  // Check feasibility with the LP relaxation only (no integer solve); used
  // inside the Step-1 binary search where only a lower bound is needed.
  bool lp_only = false;
  milp::LpOptions lp;
  milp::MipOptions mip;
  std::uint64_t seed = 1;  // randomized rounding only
  // Warm start for the first LP solved (the dive's root LP, or the lp_only
  // relaxation): a basis previously returned for a model with the same
  // shape, typically the previous probe of an incremental ST_target
  // session. Stale (wrong-sized) or singular bases are detected inside the
  // simplex engine and silently fall back to the cold slack basis;
  // stats.warm_start_used reports what actually happened. Not owned — must
  // outlive the solve.
  const std::vector<milp::ColStatus>* warm_basis = nullptr;
  // Independent re-validation of every accepted solution vector against the
  // model (verify/certify.h). A solution that fails certification is
  // rejected: the result degrades to kNumericalError instead of shipping an
  // illegal floorplan.
  verify::VerifyOptions verify;
  // Structured solve-event log (obs/event_log.h). Propagated into lp.events
  // and mip.events (and mip.lp.events) when those are unset, so one pointer
  // here covers every LP and B&B solve underneath, plus a "twostep.solve"
  // summary record per call.
  obs::EventLog* events = nullptr;
  // Cooperative cancellation, propagated the same way into lp.cancel,
  // mip.cancel and mip.lp.cancel and checked between dive rounds. A
  // cancelled solve reports SolveStatus::kCancelled (the portfolio race
  // raises it to stop the losing side).
  const std::atomic<bool>* cancel = nullptr;
};

struct TwoStepStats {
  long lp_iterations = 0;
  long mip_nodes = 0;
  long mip_lp_iterations = 0;
  int dive_rounds = 0;
  int vars_fixed = 0;
  int vars_total = 0;
  double lp_seconds = 0.0;
  double mip_seconds = 0.0;
  milp::SolveStatus lp_status = milp::SolveStatus::kNumericalError;
  milp::SolveStatus mip_status = milp::SolveStatus::kNumericalError;
  bool fallback_unfixed = false;  // dive/fixing dead-ended; B&B re-solve
  int mip_threads = 1;            // worker threads of the last B&B run
  std::vector<long> mip_nodes_per_thread;
  milp::LpStageStats lp_stage;    // aggregated over every LP solved
  // The algorithm requested via opts.lp (the dive/probe LPs; what the
  // dual-iteration counters in lp_stage should be read against).
  milp::LpAlgorithm lp_algorithm = milp::LpAlgorithm::kAutoWarm;
  // opts.warm_basis was supplied and the first LP actually started from it
  // (false also when no warm basis was given).
  bool warm_start_used = false;
};

struct TwoStepResult {
  // kOptimal: integer floorplan found (or LP feasible when lp_only).
  // kInfeasible: no floorplan exists at this st_target (or limits hit).
  milp::SolveStatus status = milp::SolveStatus::kNumericalError;
  Floorplan floorplan;  // empty when lp_only or infeasible
  TwoStepStats stats;
  // Final basis of the last LP solved (empty when no LP ran, e.g. the pure
  // one-shot ILP strategy). Feed it back through opts.warm_basis to
  // warm-start the next solve of a same-shaped (e.g. RHS-patched) model.
  std::vector<milp::ColStatus> basis;
  // Verification outcome when opts.verify.enabled and a solution was
  // produced: certified == the independent re-check passed. On failure the
  // status is downgraded and the first issue is kept here.
  bool certified = false;
  std::string certify_error;
};

TwoStepResult solve_two_step(const RemapModel& rm, const TwoStepOptions& opts);

}  // namespace cgraf::core
