// Static timing analysis for a placed multi-context design.
//
// Delay model (paper Section V.B, Eq. (4)): a timing path is a chain of
// same-context (combinational) ops; its delay is the sum of PE-internal
// delays plus unit_wire_delay * Manhattan distance for each hop. The
// critical path delay (CPD) of the design is the maximum path delay over
// all contexts.
#pragma once

#include <vector>

#include "cgrra/design.h"
#include "cgrra/floorplan.h"

namespace cgraf::timing {

struct TimingPath {
  int context = -1;
  std::vector<int> ops;       // op ids, source to sink
  double delay_ns = 0.0;      // PE delays + wire delays
  double pe_delay_ns = 0.0;   // sum of PE-internal delays only
};

struct StaResult {
  double cpd_ns = 0.0;                  // max over contexts
  std::vector<double> context_cpd_ns;   // per context
  // Per-op worst arrival (input-to-output of this op inclusive) within its
  // context; ops on a context's critical path have arrival + downstream
  // slack equal to the context CPD.
  std::vector<double> arrival_ns;
};

// Combinational (same-context) adjacency of a design, built once and shared
// by the STA and path-enumeration routines.
struct CombGraph {
  explicit CombGraph(const Design& design);

  const Design* design;
  std::vector<std::vector<int>> fanout;  // same-context successors per op
  std::vector<std::vector<int>> fanin;
  std::vector<int> topo;                 // topological order over comb edges
};

// Full STA on a floorplan.
StaResult run_sta(const Design& design, const Floorplan& fp);
StaResult run_sta(const CombGraph& graph, const Floorplan& fp);

// Exact delay of one explicit path under a floorplan.
double path_delay_ns(const Design& design, const Floorplan& fp,
                     const TimingPath& path);

}  // namespace cgraf::timing
