#include "timing/sta.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace cgraf::timing {

CombGraph::CombGraph(const Design& d) : design(&d) {
  const int n = d.num_ops();
  fanout.assign(static_cast<std::size_t>(n), {});
  fanin.assign(static_cast<std::size_t>(n), {});
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const Edge& e : d.edges) {
    if (!d.same_context(e)) continue;
    fanout[static_cast<std::size_t>(e.from)].push_back(e.to);
    fanin[static_cast<std::size_t>(e.to)].push_back(e.from);
    ++indeg[static_cast<std::size_t>(e.to)];
  }
  topo.reserve(static_cast<std::size_t>(n));
  std::vector<int> queue;
  for (int i = 0; i < n; ++i)
    if (indeg[static_cast<std::size_t>(i)] == 0) queue.push_back(i);
  while (!queue.empty()) {
    const int u = queue.back();
    queue.pop_back();
    topo.push_back(u);
    for (const int v : fanout[static_cast<std::size_t>(u)])
      if (--indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
  }
  CGRAF_ASSERT(static_cast<int>(topo.size()) == n);  // comb cycles are illegal
}

StaResult run_sta(const CombGraph& graph, const Floorplan& fp) {
  obs::Span span("timing.sta");
  const Design& d = *graph.design;
  const int n = d.num_ops();
  StaResult res;
  res.context_cpd_ns.assign(static_cast<std::size_t>(d.num_contexts), 0.0);
  res.arrival_ns.assign(static_cast<std::size_t>(n), 0.0);

  for (const int u : graph.topo) {
    const Operation& op = d.ops[static_cast<std::size_t>(u)];
    double arr = 0.0;
    for (const int p : graph.fanin[static_cast<std::size_t>(u)]) {
      const double wire = d.fabric.wire_delay_ns(
          d.fabric.loc(fp.pe_of(p)), d.fabric.loc(fp.pe_of(u)));
      arr = std::max(arr, res.arrival_ns[static_cast<std::size_t>(p)] + wire);
    }
    arr += op_delay_ns(op, d.fabric.delays());
    res.arrival_ns[static_cast<std::size_t>(u)] = arr;
    auto& ctx_cpd = res.context_cpd_ns[static_cast<std::size_t>(op.context)];
    ctx_cpd = std::max(ctx_cpd, arr);
  }
  res.cpd_ns = 0.0;
  for (const double c : res.context_cpd_ns) res.cpd_ns = std::max(res.cpd_ns, c);
  span.arg("ops", n).arg("cpd_ns", res.cpd_ns);
  return res;
}

StaResult run_sta(const Design& design, const Floorplan& fp) {
  return run_sta(CombGraph(design), fp);
}

double path_delay_ns(const Design& design, const Floorplan& fp,
                     const TimingPath& path) {
  CGRAF_ASSERT(!path.ops.empty());
  double delay = 0.0;
  for (std::size_t i = 0; i < path.ops.size(); ++i) {
    const Operation& op = design.ops[static_cast<std::size_t>(path.ops[i])];
    delay += op_delay_ns(op, design.fabric.delays());
    if (i + 1 < path.ops.size()) {
      delay += design.fabric.wire_delay_ns(
          design.fabric.loc(fp.pe_of(path.ops[i])),
          design.fabric.loc(fp.pe_of(path.ops[i + 1])));
    }
  }
  return delay;
}

}  // namespace cgraf::timing
