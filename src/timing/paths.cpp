#include "timing/paths.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "util/check.h"

namespace cgraf::timing {
namespace {

struct Chain {
  int op;
  std::shared_ptr<const Chain> parent;
};

struct Partial {
  double bound;    // optimistic total delay of any completion
  double g;        // exact delay up to and including `op`
  int op;
  std::shared_ptr<const Chain> chain;
};

struct PartialOrder {
  bool operator()(const Partial& a, const Partial& b) const {
    return a.bound < b.bound;  // max-heap on bound
  }
};

// suffix[u]: delay of the longest chain starting at u (inclusive of u's PE
// delay and downstream wire delays).
std::vector<double> compute_suffix(const CombGraph& graph,
                                   const Floorplan& fp) {
  const Design& d = *graph.design;
  std::vector<double> suffix(static_cast<std::size_t>(d.num_ops()), 0.0);
  for (auto it = graph.topo.rbegin(); it != graph.topo.rend(); ++it) {
    const int u = *it;
    double best = 0.0;
    for (const int v : graph.fanout[static_cast<std::size_t>(u)]) {
      const double wire = d.fabric.wire_delay_ns(d.fabric.loc(fp.pe_of(u)),
                                                 d.fabric.loc(fp.pe_of(v)));
      best = std::max(best, wire + suffix[static_cast<std::size_t>(v)]);
    }
    suffix[static_cast<std::size_t>(u)] =
        best + op_delay_ns(d.ops[static_cast<std::size_t>(u)],
                           d.fabric.delays());
  }
  return suffix;
}

// Enumerates paths with delay >= threshold in non-increasing delay order.
// `context_filter` < 0 enumerates every context.
std::vector<TimingPath> enumerate(const CombGraph& graph, const Floorplan& fp,
                                  double threshold, int max_paths,
                                  long max_expansions, int context_filter) {
  const Design& d = *graph.design;
  const std::vector<double> suffix = compute_suffix(graph, fp);

  std::priority_queue<Partial, std::vector<Partial>, PartialOrder> open;
  for (int u = 0; u < d.num_ops(); ++u) {
    if (!graph.fanin[static_cast<std::size_t>(u)].empty()) continue;
    if (context_filter >= 0 &&
        d.ops[static_cast<std::size_t>(u)].context != context_filter)
      continue;
    const double s = suffix[static_cast<std::size_t>(u)];
    if (s + 1e-12 < threshold) continue;
    const double g =
        op_delay_ns(d.ops[static_cast<std::size_t>(u)], d.fabric.delays());
    open.push(Partial{s, g, u, std::make_shared<Chain>(Chain{u, nullptr})});
  }

  std::vector<TimingPath> out;
  long expansions = 0;
  while (!open.empty() && static_cast<int>(out.size()) < max_paths &&
         expansions < max_expansions) {
    Partial top = open.top();
    open.pop();
    ++expansions;
    if (top.bound + 1e-12 < threshold) break;  // everything left is shorter

    const auto& fo = graph.fanout[static_cast<std::size_t>(top.op)];
    if (fo.empty()) {
      // Complete source-to-sink path.
      TimingPath path;
      path.context = d.ops[static_cast<std::size_t>(top.op)].context;
      for (const Chain* c = top.chain.get(); c != nullptr;
           c = c->parent.get())
        path.ops.push_back(c->op);
      std::reverse(path.ops.begin(), path.ops.end());
      path.delay_ns = top.g;
      for (const int op : path.ops)
        path.pe_delay_ns += op_delay_ns(d.ops[static_cast<std::size_t>(op)],
                                        d.fabric.delays());
      out.push_back(std::move(path));
      continue;
    }
    for (const int v : fo) {
      const double wire = d.fabric.wire_delay_ns(
          d.fabric.loc(fp.pe_of(top.op)), d.fabric.loc(fp.pe_of(v)));
      const double bound = top.g + wire + suffix[static_cast<std::size_t>(v)];
      if (bound + 1e-12 < threshold) continue;
      const double g = top.g + wire +
                       op_delay_ns(d.ops[static_cast<std::size_t>(v)],
                                   d.fabric.delays());
      open.push(Partial{bound, g, v,
                        std::make_shared<Chain>(Chain{v, top.chain})});
    }
  }
  return out;
}

}  // namespace

std::vector<TimingPath> monitored_paths(const CombGraph& graph,
                                        const Floorplan& fp,
                                        const PathQuery& query) {
  CGRAF_ASSERT(query.margin >= 0.0 && query.margin < 1.0);
  const StaResult sta = run_sta(graph, fp);
  const double threshold = (1.0 - query.margin) * sta.cpd_ns;
  return enumerate(graph, fp, threshold, query.max_paths,
                   query.max_expansions, /*context_filter=*/-1);
}

std::vector<TimingPath> critical_paths(const CombGraph& graph,
                                       const Floorplan& fp, int context,
                                       int max_paths, double rel_eps) {
  CGRAF_ASSERT(context >= 0 && context < graph.design->num_contexts);
  const StaResult sta = run_sta(graph, fp);
  const double ctx_cpd =
      sta.context_cpd_ns[static_cast<std::size_t>(context)];
  if (ctx_cpd <= 0.0) return {};
  const double threshold = ctx_cpd * (1.0 - rel_eps) - 1e-12;
  return enumerate(graph, fp, threshold, max_paths, 100000, context);
}

}  // namespace cgraf::timing
