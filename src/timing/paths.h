// Timing-path enumeration (paper Step 2.2).
//
// The number of source-to-sink paths is exponential in the worst case; the
// paper keeps only the M longest paths / paths within 20% of the CPD and
// relies on an STA re-check after re-mapping (Algorithm 1, line 12) to catch
// any unmonitored path that became critical. Enumeration here is best-first
// over partial paths with an exact optimistic bound (delay so far + longest
// completion), i.e. a Dijkstra-style longest-path expansion that yields
// paths in strictly non-increasing delay order.
#pragma once

#include <vector>

#include "timing/sta.h"

namespace cgraf::timing {

struct PathQuery {
  // Keep paths with delay >= (1 - margin) * CPD. The paper's default: 20%.
  double margin = 0.20;
  // Hard cap on the number of returned paths (the paper's "M longest").
  int max_paths = 2000;
  // Safety valve on queue pops so adversarial graphs cannot hang the tool.
  long max_expansions = 200000;
};

// All monitored paths across all contexts, longest first, relative to the
// global CPD of `fp`.
std::vector<TimingPath> monitored_paths(const CombGraph& graph,
                                        const Floorplan& fp,
                                        const PathQuery& query = {});

// The critical paths of one context: paths achieving that context's own
// maximum delay (within a relative epsilon), longest first.
std::vector<TimingPath> critical_paths(const CombGraph& graph,
                                       const Floorplan& fp, int context,
                                       int max_paths = 16,
                                       double rel_eps = 1e-9);

}  // namespace cgraf::timing
