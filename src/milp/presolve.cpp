#include "milp/presolve.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cgraf::milp {
namespace {

constexpr double kFeasTol = 1e-9;
constexpr double kFixTol = 1e-9;

struct WorkRow {
  std::vector<std::pair<int, double>> terms;  // only live variables
  double lb, ub;
  bool dropped = false;
};

}  // namespace

std::vector<double> PresolveResult::postsolve(
    const std::vector<double>& x_reduced) const {
  std::vector<double> x(var_map.size());
  for (std::size_t i = 0; i < var_map.size(); ++i) {
    x[i] = var_map[i] < 0 ? fixed_value[i]
                          : x_reduced[static_cast<std::size_t>(var_map[i])];
  }
  return x;
}

PresolveResult presolve(const Model& model, int max_passes) {
  const int n = model.num_vars();
  const int m = model.num_constraints();

  PresolveResult res;
  res.var_map.assign(static_cast<std::size_t>(n), 0);
  res.fixed_value.assign(static_cast<std::size_t>(n), 0.0);

  std::vector<double> lb(static_cast<std::size_t>(n));
  std::vector<double> ub(static_cast<std::size_t>(n));
  std::vector<char> fixed(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    lb[static_cast<std::size_t>(j)] = model.var(j).lb;
    ub[static_cast<std::size_t>(j)] = model.var(j).ub;
  }

  std::vector<WorkRow> rows(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    rows[static_cast<std::size_t>(r)].terms = model.constraint(r).terms;
    rows[static_cast<std::size_t>(r)].lb = model.constraint(r).lb;
    rows[static_cast<std::size_t>(r)].ub = model.constraint(r).ub;
  }

  auto fail = [&] {
    res.status = SolveStatus::kInfeasible;
    return res;
  };

  auto round_integer_bounds = [&](int j) {
    if (model.var(j).type == VarType::kContinuous) return true;
    const double l = std::ceil(lb[static_cast<std::size_t>(j)] - 1e-7);
    const double u = std::floor(ub[static_cast<std::size_t>(j)] + 1e-7);
    if (l != lb[static_cast<std::size_t>(j)]) ++res.bounds_tightened;
    if (u != ub[static_cast<std::size_t>(j)]) ++res.bounds_tightened;
    lb[static_cast<std::size_t>(j)] = l;
    ub[static_cast<std::size_t>(j)] = u;
    return l <= u + kFeasTol;
  };
  for (int j = 0; j < n; ++j) {
    if (!round_integer_bounds(j)) return fail();
  }

  bool changed = true;
  for (int pass = 0; pass < max_passes && changed; ++pass) {
    changed = false;

    // --- Fix variables whose bounds coincide; substitute into rows.
    for (int j = 0; j < n; ++j) {
      if (fixed[static_cast<std::size_t>(j)]) continue;
      if (ub[static_cast<std::size_t>(j)] - lb[static_cast<std::size_t>(j)] >
          kFixTol)
        continue;
      fixed[static_cast<std::size_t>(j)] = 1;
      res.fixed_value[static_cast<std::size_t>(j)] =
          0.5 * (lb[static_cast<std::size_t>(j)] +
                 ub[static_cast<std::size_t>(j)]);
      ++res.vars_fixed;
      changed = true;
    }
    for (WorkRow& row : rows) {
      if (row.dropped) continue;
      bool any_fixed = false;
      for (const auto& [j, a] : row.terms)
        any_fixed |= fixed[static_cast<std::size_t>(j)] != 0;
      if (!any_fixed) continue;
      double shift = 0.0;
      std::vector<std::pair<int, double>> live;
      live.reserve(row.terms.size());
      for (const auto& [j, a] : row.terms) {
        if (fixed[static_cast<std::size_t>(j)]) {
          shift += a * res.fixed_value[static_cast<std::size_t>(j)];
        } else {
          live.emplace_back(j, a);
        }
      }
      row.terms = std::move(live);
      if (row.lb != -kInf) row.lb -= shift;
      if (row.ub != kInf) row.ub -= shift;
    }

    // --- Row analysis.
    for (WorkRow& row : rows) {
      if (row.dropped) continue;

      if (row.terms.empty()) {
        if (row.lb > kFeasTol || row.ub < -kFeasTol) return fail();
        row.dropped = true;
        ++res.rows_dropped;
        changed = true;
        continue;
      }

      // Activity bounds from the live variables.
      double act_lo = 0.0, act_hi = 0.0;
      for (const auto& [j, a] : row.terms) {
        const double l = lb[static_cast<std::size_t>(j)];
        const double u = ub[static_cast<std::size_t>(j)];
        if (a >= 0) {
          act_lo += (l == -kInf) ? -kInf : a * l;
          act_hi += (u == kInf) ? kInf : a * u;
        } else {
          act_lo += (u == kInf) ? -kInf : a * u;
          act_hi += (l == -kInf) ? kInf : a * l;
        }
      }
      if (act_lo > row.ub + 1e-7 || act_hi < row.lb - 1e-7) return fail();
      if ((row.lb == -kInf || act_lo >= row.lb - kFeasTol) &&
          (row.ub == kInf || act_hi <= row.ub + kFeasTol)) {
        row.dropped = true;  // redundant at any feasible point
        ++res.rows_dropped;
        changed = true;
        continue;
      }

      // Singleton rows tighten variable bounds and disappear.
      if (row.terms.size() == 1) {
        const auto [j, a] = row.terms.front();
        CGRAF_DCHECK(a != 0.0);
        double nl = row.lb == -kInf ? -kInf : row.lb / a;
        double nu = row.ub == kInf ? kInf : row.ub / a;
        if (a < 0) std::swap(nl, nu);
        if (nl > lb[static_cast<std::size_t>(j)] + kFixTol) {
          lb[static_cast<std::size_t>(j)] = nl;
          ++res.bounds_tightened;
          changed = true;
        }
        if (nu < ub[static_cast<std::size_t>(j)] - kFixTol) {
          ub[static_cast<std::size_t>(j)] = nu;
          ++res.bounds_tightened;
          changed = true;
        }
        if (!round_integer_bounds(j)) return fail();
        if (lb[static_cast<std::size_t>(j)] >
            ub[static_cast<std::size_t>(j)] + kFeasTol)
          return fail();
        row.dropped = true;
        ++res.rows_dropped;
        continue;
      }
    }
  }

  // --- Assemble the reduced model.
  int next = 0;
  for (int j = 0; j < n; ++j) {
    if (fixed[static_cast<std::size_t>(j)]) {
      res.var_map[static_cast<std::size_t>(j)] = -1;
      continue;
    }
    res.var_map[static_cast<std::size_t>(j)] = next++;
    const Variable& v = model.var(j);
    res.reduced.add_var(lb[static_cast<std::size_t>(j)],
                        ub[static_cast<std::size_t>(j)], v.obj, v.type,
                        v.name);
  }
  res.reduced.set_sense(model.sense());
  for (const WorkRow& row : rows) {
    if (row.dropped) continue;
    std::vector<std::pair<int, double>> terms;
    terms.reserve(row.terms.size());
    for (const auto& [j, a] : row.terms)
      terms.emplace_back(res.var_map[static_cast<std::size_t>(j)], a);
    res.reduced.add_constraint(std::move(terms), row.lb, row.ub);
  }
  return res;
}

}  // namespace cgraf::milp
