// Sparse LU factorization of a simplex basis with product-form (eta) updates.
//
// The basis matrices arising from the floorplanner's assignment-style models
// are extremely sparse (a few nonzeros per column, many slack columns), so a
// Markowitz-ordered right-looking elimination keeps fill-in near zero and
// makes FTRAN/BTRAN effectively linear in the basis nonzero count.
#pragma once

#include <vector>

#include "milp/sparse.h"

namespace cgraf::milp {

class BasisLu {
 public:
  // Factorizes B, the m x m matrix whose p-th column is A.column(basis[p]).
  // Returns false if B is numerically singular.
  bool factorize(const CscMatrix& a, const std::vector<int>& basis);

  // Solves B x = b in place (b dense, size m).
  void ftran(std::vector<double>& b) const;

  // Solves B^T x = b in place.
  void btran(std::vector<double>& b) const;

  // Product-form update: the basis column at position `pos` is replaced by a
  // column whose FTRAN image (spike) is `spike` (dense, size m, as returned
  // by ftran of the entering column). Returns false when the spike pivot is
  // too small, in which case the caller must refactorize instead.
  bool update(const std::vector<double>& spike, int pos);

  int num_updates() const { return static_cast<int>(etas_.size()); }
  int dim() const { return m_; }

  // Total nonzeros in L and U factors (diagnostics / refactor policy).
  int factor_nnz() const;

 private:
  struct Entry {
    int idx;
    double val;
  };
  struct Eta {
    int pos;                     // basis position being replaced
    double pivot;                // spike[pos]
    std::vector<Entry> entries;  // spike entries with idx != pos
  };

  int m_ = 0;
  // Elimination pivots in order: at step k, pivot at (prow_[k], pcol_[k]).
  std::vector<int> prow_, pcol_;
  std::vector<double> pivot_;
  // lcol_[k]: multipliers a_iq/pivot for rows i active at step k.
  // urow_[k]: row-p entries (column position j, value) active at step k.
  std::vector<std::vector<Entry>> lcol_, urow_;
  std::vector<Eta> etas_;
};

}  // namespace cgraf::milp
