#include "milp/branch_and_bound.h"

#include "milp/presolve.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>
#include <thread>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/sync.h"

namespace cgraf::milp {
namespace {

// A bound change relative to the parent node; nodes share ancestry chains.
struct Delta {
  int var;
  double lb, ub;
  std::shared_ptr<const Delta> parent;
};

struct Node {
  std::shared_ptr<const Delta> deltas;
  std::shared_ptr<const std::vector<ColStatus>> warm;
  double bound;  // internal (minimization) bound inherited from the parent
  int depth;
  long parent;  // expansion seq of the parent node (0 for the root), so the
                // event-log analyzer can reconstruct the search tree
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // min-bound first
    return a.depth < b.depth;                          // then deepest (dive)
  }
};

// Search state shared by all workers. Every field is annotated with the
// mutex that guards it, so under -Wthread-safety an unlocked access is a
// compile error, not a TSan finding.
struct Shared {
  Mutex mu{"bnb.shared", lock_rank::kBnbShared};
  CondVar cv;
  std::priority_queue<Node, std::vector<Node>, NodeOrder> open
      CGRAF_GUARDED_BY(mu);
  int active CGRAF_GUARDED_BY(mu) = 0;  // workers currently expanding a node
  bool stop CGRAF_GUARDED_BY(mu) = false;
  // Which limit fired, if any.
  SolveStatus limit_hit CGRAF_GUARDED_BY(mu) = SolveStatus::kOptimal;
  bool root_unbounded CGRAF_GUARDED_BY(mu) = false;
  bool proof_incomplete CGRAF_GUARDED_BY(mu) = false;
  double incumbent_internal CGRAF_GUARDED_BY(mu) = kInf;
  std::vector<double> incumbent_x CGRAF_GUARDED_BY(mu);
  // Min bound among pruned-by-gap nodes.
  double exhausted_bound CGRAF_GUARDED_BY(mu) = kInf;
  long nodes CGRAF_GUARDED_BY(mu) = 0;
  long lp_iterations CGRAF_GUARDED_BY(mu) = 0;
  LpStageStats lp_stats CGRAF_GUARDED_BY(mu);
};

}  // namespace

MipResult solve_milp(const Model& model, const MipOptions& opts) {
  const double t_start = now_seconds();

  CGRAF_ASSERT(opts.num_threads >= 0 &&
               "MipOptions::num_threads must be >= 0 (0 = all hardware "
               "threads)");
  const int threads = [&] {
    int k = opts.num_threads;
    if (k == 0) k = static_cast<int>(std::thread::hardware_concurrency());
    return std::max(1, k);
  }();

  if (opts.presolve) {
    PresolveResult pre = [&] {
      obs::Span span("bnb.presolve");
      PresolveResult p = presolve(model);
      span.arg("status", to_string(p.status));
      return p;
    }();
    if (pre.status == SolveStatus::kInfeasible) {
      MipResult res;
      res.status = SolveStatus::kInfeasible;
      res.seconds = now_seconds() - t_start;
      res.threads_used = threads;
      res.nodes_per_thread.assign(static_cast<size_t>(threads), 0);
      return res;
    }
    MipOptions inner = opts;
    inner.presolve = false;
    // Map the incumbent seed into the reduced variable space. A seed that
    // disagrees with a presolve-fixed value cannot be feasible for the
    // reduced model, so it is dropped rather than lifted incorrectly.
    std::vector<double> reduced_seed;
    inner.initial_incumbent = nullptr;
    if (opts.initial_incumbent != nullptr &&
        static_cast<int>(opts.initial_incumbent->size()) == model.num_vars()) {
      const std::vector<double>& seed = *opts.initial_incumbent;
      reduced_seed.assign(static_cast<size_t>(pre.reduced.num_vars()), 0.0);
      bool ok = true;
      for (int j = 0; j < model.num_vars(); ++j) {
        const int rj = pre.var_map[static_cast<size_t>(j)];
        if (rj >= 0) {
          reduced_seed[static_cast<size_t>(rj)] = seed[static_cast<size_t>(j)];
        } else if (std::abs(seed[static_cast<size_t>(j)] -
                            pre.fixed_value[static_cast<size_t>(j)]) >
                   10 * opts.lp.tol_feas) {
          ok = false;
          break;
        }
      }
      if (ok) inner.initial_incumbent = &reduced_seed;
    }
    MipResult r = solve_milp(pre.reduced, inner);
    // Lift the incumbent and re-account the objective/bound for the
    // eliminated variables' constant contribution.
    double fixed_const = 0.0;
    for (int j = 0; j < model.num_vars(); ++j) {
      if (pre.var_map[static_cast<size_t>(j)] < 0)
        fixed_const += model.var(j).obj *
                       pre.fixed_value[static_cast<size_t>(j)];
    }
    if (r.has_solution()) {
      r.x = pre.postsolve(r.x);
      r.obj = model.objective_value(r.x);
    }
    r.best_bound += fixed_const;
    r.seconds = now_seconds() - t_start;
    return r;
  }

  obs::Span solve_span("bnb.solve");
  solve_span.arg("vars", static_cast<long>(model.num_vars()))
      .arg("rows", static_cast<long>(model.num_constraints()))
      .arg("threads", static_cast<long>(threads));
  // Solve-event log: either plumbing route (MipOptions::events or
  // LpOptions::events) enables the whole record family.
  obs::EventLog* const events =
      opts.events != nullptr ? opts.events : opts.lp.events;
  obs::Event(events, "bnb.begin")
      .arg("vars", static_cast<long>(model.num_vars()))
      .arg("rows", static_cast<long>(model.num_constraints()))
      .arg("threads", static_cast<long>(threads));
  // One histogram handle per solve; workers observe lock-free.
  obs::Histogram& lp_iter_hist = obs::Metrics::global().histogram(
      "bnb.lp_iterations_per_node",
      {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0});

  MipResult res;
  res.threads_used = threads;
  res.nodes_per_thread.assign(static_cast<size_t>(threads), 0);

  const int n = model.num_vars();
  const double sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

  std::vector<int> int_vars;
  for (int j = 0; j < n; ++j) {
    if (model.var(j).type != VarType::kContinuous) int_vars.push_back(j);
  }

  // Prototype engine; each worker solves on a private copy so the (possibly
  // large) constraint matrix is standardized only once.
  const SimplexEngine proto(model, opts.lp);

  // Root bounds, with integer bounds pre-rounded inward.
  std::vector<double> root_lb(proto.model_lb());
  std::vector<double> root_ub(proto.model_ub());
  for (const int j : int_vars) {
    root_lb[static_cast<size_t>(j)] =
        std::ceil(root_lb[static_cast<size_t>(j)] - opts.int_tol);
    root_ub[static_cast<size_t>(j)] =
        std::floor(root_ub[static_cast<size_t>(j)] + opts.int_tol);
    if (root_lb[static_cast<size_t>(j)] > root_ub[static_cast<size_t>(j)]) {
      res.status = SolveStatus::kInfeasible;
      res.seconds = now_seconds() - t_start;
      return res;
    }
  }

  // Validate the heuristic incumbent seed before the tree opens: integral
  // within int_tol, inside the (rounded-inward) root bounds, and feasible
  // under the same 10x tol_feas gate round_candidate applies to its own
  // candidates. A valid seed becomes the opening incumbent, so best-bound
  // pruning cuts against its objective from the first node; it never
  // satisfies stop_at_first_incumbent by itself.
  std::vector<double> seed_x;
  double seed_internal = kInf;
  if (opts.initial_incumbent != nullptr &&
      static_cast<int>(opts.initial_incumbent->size()) == n) {
    seed_x = *opts.initial_incumbent;
    bool ok = true;
    for (const int j : int_vars) {
      double& v = seed_x[static_cast<size_t>(j)];
      const double r = std::round(v);
      if (std::abs(v - r) > opts.int_tol) {
        ok = false;
        break;
      }
      v = r;
    }
    for (int j = 0; ok && j < n; ++j) {
      if (seed_x[static_cast<size_t>(j)] <
              root_lb[static_cast<size_t>(j)] - 10 * opts.lp.tol_feas ||
          seed_x[static_cast<size_t>(j)] >
              root_ub[static_cast<size_t>(j)] + 10 * opts.lp.tol_feas) {
        ok = false;
      }
    }
    if (ok && model.max_violation(seed_x) <= 10 * opts.lp.tol_feas) {
      seed_internal = sign * model.objective_value(seed_x);
      res.incumbent_seeded = true;
    } else {
      seed_x.clear();
    }
  }

  Shared sh;
  {
    MutexLock lk(&sh.mu);
    sh.open.push(Node{nullptr, nullptr, -kInf, 0, 0});
    if (res.incumbent_seeded) {
      sh.incumbent_internal = seed_internal;
      sh.incumbent_x = std::move(seed_x);
    }
  }
  if (res.incumbent_seeded) {
    obs::Metrics::global().counter("bnb.seeded_incumbents").add(1);
    obs::Event(events, "bnb.incumbent")
        .arg("seq", 0L)
        .arg("obj", sign * seed_internal)
        .arg("seeded", true);
  }

  // Rounds integer variables of an LP point; returns the internal objective
  // when exactly feasible, or nullopt-style (false) otherwise. Pure; called
  // outside the lock.
  auto round_candidate = [&](const std::vector<double>& x,
                             std::vector<double>& xi, double& internal) {
    xi = x;
    for (const int j : int_vars)
      xi[static_cast<size_t>(j)] = std::round(xi[static_cast<size_t>(j)]);
    if (model.max_violation(xi) > 10 * opts.lp.tol_feas) return false;
    internal = sign * model.objective_value(xi);
    return true;
  };

  auto worker = [&](int tid) {
    // One span per worker thread: each worker runs on its own OS thread,
    // so the spans land on separate tracks (lanes) in the trace viewer.
    obs::Tracer& tracer = obs::Tracer::global();
    obs::Span worker_span(tracer, "bnb.worker");
    if (worker_span.active() && tid > 0)
      tracer.name_thread("bnb-worker-" + std::to_string(tid));

    SimplexEngine engine = proto;
    std::vector<double> lb, ub;
    std::vector<double> cand_x;
    long my_nodes = 0;

    auto build_bounds = [&](const Node& node) {
      lb = root_lb;
      ub = root_ub;
      for (const Delta* d = node.deltas.get(); d != nullptr;
           d = d->parent.get()) {
        lb[static_cast<size_t>(d->var)] =
            std::max(lb[static_cast<size_t>(d->var)], d->lb);
        ub[static_cast<size_t>(d->var)] =
            std::min(ub[static_cast<size_t>(d->var)], d->ub);
      }
    };

    MutexLock lk(&sh.mu);
    while (true) {
      while (!(sh.stop || !sh.open.empty() || sh.active == 0))
        sh.cv.wait(sh.mu);
      if (sh.stop || (sh.open.empty() && sh.active == 0)) break;
      if (sh.open.empty()) continue;  // spurious wake with workers active

      if (sh.nodes >= opts.max_nodes) {
        sh.limit_hit = SolveStatus::kNodeLimit;
        sh.stop = true;
        sh.cv.notify_all();
        break;
      }
      if (now_seconds() - t_start > opts.time_limit_s) {
        sh.limit_hit = SolveStatus::kTimeLimit;
        sh.stop = true;
        sh.cv.notify_all();
        break;
      }
      if (opts.cancel != nullptr &&
          opts.cancel->load(std::memory_order_relaxed)) {
        sh.limit_hit = SolveStatus::kCancelled;
        sh.stop = true;
        sh.cv.notify_all();
        break;
      }

      Node node = sh.open.top();
      sh.open.pop();
      if (node.bound >= sh.incumbent_internal - opts.abs_gap) {
        // Best-first pool: every node still queued is at least as bad, and
        // the incumbent only improves, so the whole pool prunes with it.
        // In-flight workers may still push better-bounded children.
        sh.exhausted_bound = std::min(sh.exhausted_bound, node.bound);
        const long dropped = 1 + static_cast<long>(sh.open.size());
        while (!sh.open.empty()) sh.open.pop();
        obs::Event(events, "bnb.pool_prune")
            .arg("dropped", dropped)
            .arg("bound", node.bound);
        sh.cv.notify_all();
        continue;
      }
      ++sh.nodes;
      const long node_seq = sh.nodes;
      const bool have_incumbent = sh.incumbent_internal < kInf;
      const double incumbent_at_pop = sh.incumbent_internal;
      ++sh.active;
      lk.unlock();

      ++my_nodes;
      build_bounds(node);

      LpOptions lp_opts = opts.lp;
      const double remaining = opts.time_limit_s - (now_seconds() - t_start);
      lp_opts.time_limit_s =
          std::min(lp_opts.time_limit_s, std::max(0.0, remaining));
      lp_opts.events = events;  // node LPs feed the same solve-event log
      if (lp_opts.cancel == nullptr) lp_opts.cancel = opts.cancel;
      engine.set_options(lp_opts);
      LpResult lp = engine.solve(lb, ub, node.warm.get());

      // Everything after the LP is cheap; classify the node and prepare any
      // incumbent candidate / children outside the lock, then fold in.
      const double node_bound = sign * lp.obj;
      lp_iter_hist.observe(static_cast<double>(lp.iterations));
      if ((node_seq & 63) == 1 && tracer.enabled()) {
        // %g would print "inf"/"nan" (invalid JSON) for non-finite bounds
        // (e.g. an infeasible or unbounded node LP); emit null instead,
        // matching the JsonWriter policy.
        char bound_buf[32];
        if (std::isfinite(node_bound)) {
          std::snprintf(bound_buf, sizeof bound_buf, "%.9g", node_bound);
        } else {
          std::snprintf(bound_buf, sizeof bound_buf, "null");
        }
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "\"seq\":%ld,\"depth\":%d,\"lp_iters\":%ld,"
                      "\"bound\":%s",
                      node_seq, node.depth, lp.iterations, bound_buf);
        tracer.instant("bnb.node", buf);
      }
      if ((node_seq & 255) == 0) {
        obs::Progress::global().tickf(
            "  [bnb] nodes=%ld depth=%d bound=%.6g incumbent=%s", node_seq,
            node.depth, node_bound,
            incumbent_at_pop < kInf ? "yes" : "no");
      }
      int branch_var = -1;
      double branch_val = 0.0;
      bool cand_ok = false;
      double cand_internal = kInf;

      if (lp.status == SolveStatus::kOptimal) {
        // Find the most fractional integer variable.
        double best_frac_dist = opts.int_tol;
        for (const int j : int_vars) {
          const double v = lp.x[static_cast<size_t>(j)];
          const double dist = std::abs(v - std::round(v));
          if (dist > best_frac_dist) {
            // prefer the variable closest to 0.5 fractionality
            const double score = 0.5 - std::abs(v - std::floor(v) - 0.5);
            const double best_score =
                branch_var < 0 ? -1.0
                               : 0.5 - std::abs(branch_val -
                                                std::floor(branch_val) - 0.5);
            if (score > best_score) {
              branch_var = j;
              branch_val = v;
            }
          }
        }
        // Integral point, or the cheap rounding heuristic on early /
        // post-incumbent fractional nodes: try to round into an incumbent.
        const bool prunable = node_bound >= incumbent_at_pop - opts.abs_gap;
        if (!prunable &&
            (branch_var < 0 || have_incumbent || node_seq <= 64)) {
          cand_ok = round_candidate(lp.x, cand_x, cand_internal);
        }
      }

      lk.lock();
      --sh.active;
      sh.lp_iterations += lp.iterations;
      sh.lp_stats.add(lp.stats);
      res.nodes_per_thread[static_cast<size_t>(tid)] = my_nodes;

      // Exactly one bnb.node record per counted node (sh.nodes), whatever
      // its fate — the analyzer's node total must match MipResult::nodes.
      auto emit_node = [&](const char* action) {
        obs::Event ev(events, "bnb.node");
        if (ev.active()) {
          ev.arg("seq", node_seq)
              .arg("parent", node.parent)
              .arg("depth", node.depth)
              .arg("bound", node_bound)
              .arg("lp_status", to_string(lp.status))
              .arg("lp_iters", lp.iterations)
              .arg("warm_used", lp.warm_used)
              .arg("dual_used", lp.dual_used)
              .arg("action", action)
              .arg("branch_var", branch_var);
        }
      };

      if (lp.status == SolveStatus::kInfeasible) {
        emit_node("infeasible");
        sh.cv.notify_all();
        continue;
      }
      if (lp.status == SolveStatus::kUnbounded) {
        if (node.depth == 0 && int_vars.empty()) {
          sh.root_unbounded = true;
          sh.stop = true;
        } else {
          // Unbounded relaxation of a node with integers: cannot bound;
          // treat the proof as incomplete and keep searching siblings.
          sh.proof_incomplete = true;
        }
        emit_node("unbounded");
        sh.cv.notify_all();
        continue;
      }
      if (lp.status != SolveStatus::kOptimal) {
        sh.proof_incomplete = true;
        emit_node("lp_limit");
        sh.cv.notify_all();
        continue;
      }

      if (cand_ok && cand_internal < sh.incumbent_internal - 1e-12) {
        sh.incumbent_internal = cand_internal;
        sh.incumbent_x = cand_x;
        obs::Event(events, "bnb.incumbent")
            .arg("seq", node_seq)
            .arg("obj", sign * cand_internal);
        if (opts.stop_at_first_incumbent) {
          sh.limit_hit = SolveStatus::kFeasible;
          sh.stop = true;
          emit_node(branch_var < 0 ? "integral" : "stop");
          sh.cv.notify_all();
          continue;
        }
      }

      if (node_bound >= sh.incumbent_internal - opts.abs_gap ||
          branch_var < 0) {
        emit_node(branch_var < 0 ? "integral" : "prune");
        sh.cv.notify_all();
        continue;
      }
      emit_node("branch");

      auto warm =
          std::make_shared<std::vector<ColStatus>>(std::move(lp.basis));
      const double down = std::floor(branch_val);
      auto mk_delta = [&](double dlb, double dub) {
        auto d = std::make_shared<Delta>();
        d->var = branch_var;
        d->lb = dlb;
        d->ub = dub;
        d->parent = node.deltas;
        return d;
      };
      // Push the child on the side the LP value leans toward last so the
      // (bound, depth) order dives into it first on ties.
      const bool lean_up = (branch_val - down) > 0.5;
      Node child_down{mk_delta(-kInf, down), warm, node_bound,
                      node.depth + 1, node_seq};
      Node child_up{mk_delta(down + 1.0, kInf), warm, node_bound,
                    node.depth + 1, node_seq};
      if (lean_up) {
        sh.open.push(child_down);
        sh.open.push(child_up);
      } else {
        sh.open.push(child_up);
        sh.open.push(child_down);
      }
      sh.cv.notify_all();
    }
    sh.cv.notify_all();
    worker_span.arg("tid", static_cast<long>(tid)).arg("nodes", my_nodes);
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads) - 1);
    for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
    worker(0);
    for (std::thread& t : pool) t.join();
  }

  // --- Assemble the result. The workers are joined, so the lock is
  // uncontended; holding it anyway keeps the guarded-field accesses below
  // visible to the thread-safety analysis. It is released on every return.
  MutexLock lk(&sh.mu);
  res.seconds = now_seconds() - t_start;
  res.nodes = sh.nodes;
  res.lp_iterations = sh.lp_iterations;
  res.lp_stats = sh.lp_stats;

  {
    obs::Metrics& m = obs::Metrics::global();
    m.counter("bnb.solves").add(1);
    m.counter("bnb.nodes").add(sh.nodes);
    m.counter("bnb.lp_iterations").add(sh.lp_iterations);
    m.counter("simplex.full_refreshes").add(sh.lp_stats.full_refreshes);
    m.counter("simplex.bucket_rebuilds").add(sh.lp_stats.bucket_rebuilds);
    m.counter("simplex.incremental_updates")
        .add(sh.lp_stats.incremental_updates);
    m.counter("simplex.dual_iterations").add(sh.lp_stats.dual_iterations);
    m.counter("simplex.bound_flips").add(sh.lp_stats.bound_flips);
    m.counter("simplex.refactorizations").add(sh.lp_stats.refactorizations);
    m.counter("simplex.steepest_edge_resets")
        .add(sh.lp_stats.steepest_edge_resets);
    m.counter("simplex.dual_fallbacks").add(sh.lp_stats.dual_fallbacks);
  }
  solve_span.arg("nodes", sh.nodes).arg("lp_iterations", sh.lp_iterations);
  obs::Event(events, "bnb.end")
      .arg("nodes", sh.nodes)
      .arg("lp_iterations", sh.lp_iterations)
      .arg("incumbent", sh.incumbent_internal < kInf)
      .arg("seconds", res.seconds);

  if (sh.root_unbounded) {
    res.status = SolveStatus::kUnbounded;
    return res;
  }

  double open_bound = sh.exhausted_bound;
  if (!sh.open.empty()) open_bound = std::min(open_bound, sh.open.top().bound);
  const bool exhausted =
      sh.open.empty() && sh.limit_hit == SolveStatus::kOptimal;

  if (!sh.incumbent_x.empty()) {
    res.x = sh.incumbent_x;
    res.obj = sign * sh.incumbent_internal;
    const double bb = exhausted
                          ? sh.incumbent_internal
                          : std::min(open_bound, sh.incumbent_internal);
    res.best_bound = sign * bb;
    const double gap = sh.incumbent_internal - bb;
    const bool gap_closed =
        gap <= opts.abs_gap ||
        gap <= opts.rel_gap * std::max(1.0, std::abs(sh.incumbent_internal));
    res.status = (exhausted && !sh.proof_incomplete) || gap_closed
                     ? SolveStatus::kOptimal
                     : SolveStatus::kFeasible;
    return res;
  }

  res.best_bound = sign * open_bound;
  if (exhausted && !sh.proof_incomplete) {
    res.status = SolveStatus::kInfeasible;
  } else if (sh.limit_hit != SolveStatus::kOptimal) {
    res.status = sh.limit_hit;
  } else {
    res.status = SolveStatus::kNumericalError;
  }
  return res;
}

}  // namespace cgraf::milp
