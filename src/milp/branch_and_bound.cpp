#include "milp/branch_and_bound.h"

#include "milp/presolve.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>

#include "util/check.h"

namespace cgraf::milp {
namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// A bound change relative to the parent node; nodes share ancestry chains.
struct Delta {
  int var;
  double lb, ub;
  std::shared_ptr<const Delta> parent;
};

struct Node {
  std::shared_ptr<const Delta> deltas;
  std::shared_ptr<const std::vector<ColStatus>> warm;
  double bound;  // internal (minimization) bound inherited from the parent
  int depth;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // min-bound first
    return a.depth < b.depth;                          // then deepest (dive)
  }
};

}  // namespace

MipResult solve_milp(const Model& model, const MipOptions& opts) {
  const double t_start = now_seconds();

  if (opts.presolve) {
    PresolveResult pre = presolve(model);
    if (pre.status == SolveStatus::kInfeasible) {
      MipResult res;
      res.status = SolveStatus::kInfeasible;
      res.seconds = now_seconds() - t_start;
      return res;
    }
    MipOptions inner = opts;
    inner.presolve = false;
    MipResult r = solve_milp(pre.reduced, inner);
    // Lift the incumbent and re-account the objective/bound for the
    // eliminated variables' constant contribution.
    double fixed_const = 0.0;
    for (int j = 0; j < model.num_vars(); ++j) {
      if (pre.var_map[static_cast<size_t>(j)] < 0)
        fixed_const += model.var(j).obj *
                       pre.fixed_value[static_cast<size_t>(j)];
    }
    if (r.has_solution()) {
      r.x = pre.postsolve(r.x);
      r.obj = model.objective_value(r.x);
    }
    r.best_bound += fixed_const;
    r.seconds = now_seconds() - t_start;
    return r;
  }

  MipResult res;

  const int n = model.num_vars();
  const double sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

  std::vector<int> int_vars;
  for (int j = 0; j < n; ++j) {
    if (model.var(j).type != VarType::kContinuous) int_vars.push_back(j);
  }

  SimplexEngine engine(model, opts.lp);

  // Root bounds, with integer bounds pre-rounded inward.
  std::vector<double> root_lb(engine.model_lb());
  std::vector<double> root_ub(engine.model_ub());
  for (const int j : int_vars) {
    root_lb[static_cast<size_t>(j)] =
        std::ceil(root_lb[static_cast<size_t>(j)] - opts.int_tol);
    root_ub[static_cast<size_t>(j)] =
        std::floor(root_ub[static_cast<size_t>(j)] + opts.int_tol);
    if (root_lb[static_cast<size_t>(j)] > root_ub[static_cast<size_t>(j)]) {
      res.status = SolveStatus::kInfeasible;
      res.seconds = now_seconds() - t_start;
      return res;
    }
  }

  double incumbent_internal = kInf;
  std::vector<double> incumbent_x;
  bool proof_incomplete = false;

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push(Node{nullptr, nullptr, -kInf, 0});
  double exhausted_bound = kInf;  // min bound among pruned-by-gap nodes

  std::vector<double> lb, ub;
  auto build_bounds = [&](const Node& node) {
    lb = root_lb;
    ub = root_ub;
    for (const Delta* d = node.deltas.get(); d != nullptr;
         d = d->parent.get()) {
      lb[static_cast<size_t>(d->var)] =
          std::max(lb[static_cast<size_t>(d->var)], d->lb);
      ub[static_cast<size_t>(d->var)] =
          std::min(ub[static_cast<size_t>(d->var)], d->ub);
    }
  };

  auto try_incumbent = [&](const std::vector<double>& x) {
    // Round integer variables and accept only exactly-feasible points.
    std::vector<double> xi = x;
    for (const int j : int_vars)
      xi[static_cast<size_t>(j)] = std::round(xi[static_cast<size_t>(j)]);
    if (model.max_violation(xi) > 10 * opts.lp.tol_feas) return false;
    const double internal = sign * model.objective_value(xi);
    if (internal < incumbent_internal - 1e-12) {
      incumbent_internal = internal;
      incumbent_x = std::move(xi);
      return true;
    }
    return false;
  };

  SolveStatus limit_hit = SolveStatus::kOptimal;  // records which limit fired
  while (!open.empty()) {
    if (res.nodes >= opts.max_nodes) {
      limit_hit = SolveStatus::kNodeLimit;
      break;
    }
    if (now_seconds() - t_start > opts.time_limit_s) {
      limit_hit = SolveStatus::kTimeLimit;
      break;
    }

    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent_internal - opts.abs_gap) {
      // Every remaining node is at least as bad: best-first order.
      exhausted_bound = std::min(exhausted_bound, node.bound);
      break;
    }
    ++res.nodes;
    build_bounds(node);

    LpOptions lp_opts = opts.lp;
    lp_opts.time_limit_s =
        std::min(lp_opts.time_limit_s,
                 opts.time_limit_s - (now_seconds() - t_start));
    engine.set_options(lp_opts);
    LpResult lp = engine.solve(lb, ub, node.warm.get());
    res.lp_iterations += lp.iterations;

    if (lp.status == SolveStatus::kInfeasible) continue;
    if (lp.status == SolveStatus::kUnbounded) {
      if (node.depth == 0 && int_vars.empty()) {
        res.status = SolveStatus::kUnbounded;
        res.seconds = now_seconds() - t_start;
        return res;
      }
      // Unbounded relaxation of a node with integers: cannot bound; treat
      // the proof as incomplete and keep searching siblings.
      proof_incomplete = true;
      continue;
    }
    if (lp.status != SolveStatus::kOptimal) {
      proof_incomplete = true;
      continue;
    }

    const double node_bound = sign * lp.obj;
    if (node_bound >= incumbent_internal - opts.abs_gap) continue;

    // Find the most fractional integer variable.
    int branch_var = -1;
    double branch_val = 0.0;
    double best_frac_dist = opts.int_tol;
    for (const int j : int_vars) {
      const double v = lp.x[static_cast<size_t>(j)];
      const double dist = std::abs(v - std::round(v));
      if (dist > best_frac_dist) {
        // prefer the variable closest to 0.5 fractionality
        const double score = 0.5 - std::abs(v - std::floor(v) - 0.5);
        const double best_score =
            branch_var < 0 ? -1.0
                           : 0.5 - std::abs(branch_val -
                                            std::floor(branch_val) - 0.5);
        if (score > best_score) {
          branch_var = j;
          branch_val = v;
        }
      }
    }

    if (branch_var < 0) {
      // Integral: candidate incumbent.
      try_incumbent(lp.x);
      if (opts.stop_at_first_incumbent && !incumbent_x.empty()) {
        limit_hit = SolveStatus::kFeasible;
        break;
      }
      continue;
    }

    // Cheap rounding heuristic to seed the incumbent early.
    if (!incumbent_x.empty() || res.nodes <= 64) {
      try_incumbent(lp.x);
      if (opts.stop_at_first_incumbent && !incumbent_x.empty()) {
        limit_hit = SolveStatus::kFeasible;
        break;
      }
    }

    auto warm = std::make_shared<std::vector<ColStatus>>(std::move(lp.basis));
    const double down = std::floor(branch_val);
    auto mk_delta = [&](double dlb, double dub) {
      auto d = std::make_shared<Delta>();
      d->var = branch_var;
      d->lb = dlb;
      d->ub = dub;
      d->parent = node.deltas;
      return d;
    };
    // Push the child on the side the LP value leans toward last so the
    // (bound, depth) order dives into it first on ties.
    const bool lean_up = (branch_val - down) > 0.5;
    Node child_down{mk_delta(-kInf, down), warm, node_bound, node.depth + 1};
    Node child_up{mk_delta(down + 1.0, kInf), warm, node_bound,
                  node.depth + 1};
    if (lean_up) {
      open.push(child_down);
      open.push(child_up);
    } else {
      open.push(child_up);
      open.push(child_down);
    }
  }

  // --- Assemble the result.
  res.seconds = now_seconds() - t_start;
  double open_bound = exhausted_bound;
  if (!open.empty()) open_bound = std::min(open_bound, open.top().bound);
  const bool exhausted = open.empty() && limit_hit == SolveStatus::kOptimal;

  if (!incumbent_x.empty()) {
    res.x = incumbent_x;
    res.obj = sign * incumbent_internal;
    const double bb =
        exhausted ? incumbent_internal : std::min(open_bound,
                                                  incumbent_internal);
    res.best_bound = sign * bb;
    const double gap = incumbent_internal - bb;
    const bool gap_closed =
        gap <= opts.abs_gap ||
        gap <= opts.rel_gap * std::max(1.0, std::abs(incumbent_internal));
    res.status = (exhausted && !proof_incomplete) || gap_closed
                     ? SolveStatus::kOptimal
                     : SolveStatus::kFeasible;
    return res;
  }

  res.best_bound = sign * open_bound;
  if (exhausted && !proof_incomplete) {
    res.status = SolveStatus::kInfeasible;
  } else if (limit_hit != SolveStatus::kOptimal) {
    res.status = limit_hit;
  } else {
    res.status = SolveStatus::kNumericalError;
  }
  return res;
}

}  // namespace cgraf::milp
