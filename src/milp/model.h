// Mixed-integer linear programming model container.
//
// This is the modeling surface the floorplanner (src/core) builds the paper's
// formulation (3) on. It deliberately mirrors the shape of the CPLEX/PuLP
// API the paper used: variables with bounds and a type, ranged linear
// constraints, and an optional linear objective ("ObjFunc: Null" in the
// paper is expressed by leaving all objective coefficients at zero).
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace cgraf::milp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarType { kContinuous, kBinary, kInteger };

enum class Sense { kMinimize, kMaximize };

struct Variable {
  double lb = 0.0;
  double ub = kInf;
  double obj = 0.0;
  VarType type = VarType::kContinuous;
  std::string name;
};

// One ranged constraint: lb <= sum(coeff_i * x_i) <= ub. Equalities use
// lb == ub; one-sided rows use +/-kInf.
struct Constraint {
  std::vector<std::pair<int, double>> terms;  // (variable index, coefficient)
  double lb = -kInf;
  double ub = kInf;
  std::string name;
};

class Model {
 public:
  // Returns the new variable's index.
  int add_var(double lb, double ub, double obj, VarType type,
              std::string name = {});
  int add_continuous(double lb, double ub, double obj = 0.0,
                     std::string name = {}) {
    return add_var(lb, ub, obj, VarType::kContinuous, std::move(name));
  }
  int add_binary(double obj = 0.0, std::string name = {}) {
    return add_var(0.0, 1.0, obj, VarType::kBinary, std::move(name));
  }

  // Returns the new constraint's index. Duplicate variable indices in
  // `terms` are merged (coefficients summed).
  int add_constraint(std::vector<std::pair<int, double>> terms, double lb,
                     double ub, std::string name = {});
  int add_le(std::vector<std::pair<int, double>> terms, double rhs,
             std::string name = {}) {
    return add_constraint(std::move(terms), -kInf, rhs, std::move(name));
  }
  int add_ge(std::vector<std::pair<int, double>> terms, double rhs,
             std::string name = {}) {
    return add_constraint(std::move(terms), rhs, kInf, std::move(name));
  }
  int add_eq(std::vector<std::pair<int, double>> terms, double rhs,
             std::string name = {}) {
    return add_constraint(std::move(terms), rhs, rhs, std::move(name));
  }

  // Tighten an existing variable's bounds (used by branch & bound and by
  // the LP-rounding pre-mapping step).
  void set_bounds(int var, double lb, double ub);
  // Re-range an existing constraint (RHS patch). The row's terms are
  // untouched, so the model stays canonical and any computational form
  // built from it keeps its sparsity pattern — the incremental ST_target
  // probes patch only the stress rows' bounds between solves.
  void set_constraint_bounds(int row, double lb, double ub);
  void set_obj(int var, double coeff);
  // Relax an integer/binary variable to continuous (paper's Step-1 linear
  // relaxation is expressed by copying the model and relaxing all).
  void relax_var(int var);

  Sense sense() const { return sense_; }
  void set_sense(Sense s) { sense_ = s; }

  int num_vars() const { return static_cast<int>(vars_.size()); }
  int num_constraints() const { return static_cast<int>(cons_.size()); }
  const Variable& var(int i) const { return vars_[static_cast<size_t>(i)]; }
  const Constraint& constraint(int i) const {
    return cons_[static_cast<size_t>(i)];
  }
  const std::vector<Variable>& vars() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return cons_; }

  bool has_integers() const;

  // Evaluates all constraints and bounds at `x`; returns the maximum
  // violation (0 means feasible). Integrality is checked when
  // `check_integrality` is set.
  double max_violation(const std::vector<double>& x,
                       bool check_integrality = false) const;

  // Objective value at `x` (in the model's own sense; no sign flip).
  double objective_value(const std::vector<double>& x) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> cons_;
  Sense sense_ = Sense::kMinimize;
};

}  // namespace cgraf::milp
