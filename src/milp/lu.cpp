#include "milp/lu.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cgraf::milp {

namespace {
constexpr double kDropTol = 1e-12;   // entries below this are treated as 0
constexpr double kPivotTol = 1e-9;   // absolute singularity threshold
constexpr double kRelPivot = 0.01;   // threshold partial pivoting factor
}  // namespace

bool BasisLu::factorize(const CscMatrix& a, const std::vector<int>& basis) {
  m_ = static_cast<int>(basis.size());
  prow_.clear();
  pcol_.clear();
  pivot_.clear();
  lcol_.clear();
  urow_.clear();
  etas_.clear();
  prow_.reserve(static_cast<size_t>(m_));
  pcol_.reserve(static_cast<size_t>(m_));
  pivot_.reserve(static_cast<size_t>(m_));
  lcol_.reserve(static_cast<size_t>(m_));
  urow_.reserve(static_cast<size_t>(m_));
  if (m_ == 0) return true;

  // Active-matrix working copy: column p of the basis, as (row, value) lists.
  std::vector<std::vector<Entry>> cols(static_cast<size_t>(m_));
  std::vector<std::vector<int>> row_adj(static_cast<size_t>(m_));
  std::vector<int> row_count(static_cast<size_t>(m_), 0);
  std::vector<int> col_count(static_cast<size_t>(m_), 0);
  std::vector<char> row_alive(static_cast<size_t>(m_), 1);
  std::vector<char> col_alive(static_cast<size_t>(m_), 1);

  for (int p = 0; p < m_; ++p) {
    const int j = basis[static_cast<size_t>(p)];
    CGRAF_ASSERT(j >= 0 && j < a.cols);
    auto& col = cols[static_cast<size_t>(p)];
    for (int q = a.begin(j); q < a.end(j); ++q) {
      const int r = a.row_idx[static_cast<size_t>(q)];
      const double v = a.value[static_cast<size_t>(q)];
      if (std::abs(v) <= kDropTol) continue;
      col.push_back({r, v});
      row_adj[static_cast<size_t>(r)].push_back(p);
      ++row_count[static_cast<size_t>(r)];
    }
    col_count[static_cast<size_t>(p)] = static_cast<int>(col.size());
    if (col.empty()) return false;  // structurally singular
  }

  // Bucket queue of columns by active count (lazy entries).
  std::vector<std::vector<int>> bucket(static_cast<size_t>(m_) + 1);
  for (int p = 0; p < m_; ++p)
    bucket[static_cast<size_t>(col_count[static_cast<size_t>(p)])].push_back(p);

  // Scatter workspace for column updates.
  std::vector<double> work(static_cast<size_t>(m_), 0.0);
  std::vector<char> in_work(static_cast<size_t>(m_), 0);
  std::vector<int> pattern;
  // Stamp used to dedupe row adjacency scans.
  std::vector<int> col_stamp(static_cast<size_t>(m_), -1);

  auto compact = [&](int p) {
    auto& col = cols[static_cast<size_t>(p)];
    std::erase_if(col, [&](const Entry& e) {
      return !row_alive[static_cast<size_t>(e.idx)];
    });
    col_count[static_cast<size_t>(p)] = static_cast<int>(col.size());
  };

  for (int step = 0; step < m_; ++step) {
    // --- Pivot selection: smallest-count column, stability-thresholded.
    int q = -1;
    for (int cnt = 1; cnt <= m_ && q < 0; ++cnt) {
      auto& b = bucket[static_cast<size_t>(cnt)];
      while (!b.empty()) {
        const int cand = b.back();
        if (!col_alive[static_cast<size_t>(cand)]) {
          b.pop_back();
          continue;
        }
        compact(cand);
        const int actual = col_count[static_cast<size_t>(cand)];
        if (actual != cnt) {
          b.pop_back();
          if (actual > 0) bucket[static_cast<size_t>(actual)].push_back(cand);
          else return false;  // column vanished -> singular
          continue;
        }
        q = cand;
        b.pop_back();
        break;
      }
    }
    if (q < 0) return false;

    auto& colq = cols[static_cast<size_t>(q)];
    // Pick the pivot row: among entries within kRelPivot of the column max,
    // prefer the sparsest row (Markowitz-style fill control).
    double maxabs = 0.0;
    for (const Entry& e : colq) maxabs = std::max(maxabs, std::abs(e.val));
    if (maxabs <= kPivotTol) return false;
    int p = -1;
    double pv = 0.0;
    int best_rc = 0;
    for (const Entry& e : colq) {
      if (std::abs(e.val) < kRelPivot * maxabs) continue;
      const int rc = row_count[static_cast<size_t>(e.idx)];
      if (p < 0 || rc < best_rc ||
          (rc == best_rc && std::abs(e.val) > std::abs(pv))) {
        p = e.idx;
        pv = e.val;
        best_rc = rc;
      }
    }
    CGRAF_ASSERT(p >= 0);

    // --- Record L column (multipliers) for this step.
    std::vector<Entry> lc;
    lc.reserve(colq.size() - 1);
    for (const Entry& e : colq) {
      if (e.idx != p) lc.push_back({e.idx, e.val / pv});
    }

    // --- Gather U row: alive columns j != q containing row p.
    std::vector<Entry> ur;
    for (const int j : row_adj[static_cast<size_t>(p)]) {
      if (j == q || !col_alive[static_cast<size_t>(j)]) continue;
      if (col_stamp[static_cast<size_t>(j)] == step) continue;  // dedupe
      col_stamp[static_cast<size_t>(j)] = step;
      // Find the (alive) row-p entry in column j.
      const auto& colj = cols[static_cast<size_t>(j)];
      for (const Entry& e : colj) {
        if (e.idx == p) {
          if (std::abs(e.val) > kDropTol) ur.push_back({j, e.val});
          break;
        }
      }
    }
    row_adj[static_cast<size_t>(p)].clear();

    // --- Eliminate: update every column in the U row.
    for (const Entry& u : ur) {
      const int j = u.idx;
      auto& colj = cols[static_cast<size_t>(j)];
      pattern.clear();
      for (const Entry& e : colj) {
        // Skip the pivot-row entry (it becomes the U value) and stale
        // entries of already-eliminated rows.
        if (e.idx == p || !row_alive[static_cast<size_t>(e.idx)]) continue;
        work[static_cast<size_t>(e.idx)] = e.val;
        in_work[static_cast<size_t>(e.idx)] = 1;
        pattern.push_back(e.idx);
      }
      for (const Entry& l : lc) {
        const size_t i = static_cast<size_t>(l.idx);
        if (!in_work[i]) {
          in_work[i] = 1;
          work[i] = 0.0;
          pattern.push_back(l.idx);
          // Fill-in: row i gains column j.
          row_adj[i].push_back(j);
          ++row_count[i];
        }
        work[i] -= l.val * u.val;
      }
      colj.clear();
      for (const int r : pattern) {
        const size_t ri = static_cast<size_t>(r);
        if (std::abs(work[ri]) > kDropTol) {
          colj.push_back({r, work[ri]});
        } else {
          --row_count[ri];  // cancellation removed this entry
        }
        in_work[ri] = 0;
        work[ri] = 0.0;
      }
      const int new_count = static_cast<int>(colj.size());
      col_count[static_cast<size_t>(j)] = new_count;
      if (new_count == 0) return false;
      bucket[static_cast<size_t>(new_count)].push_back(j);
    }

    // --- Retire pivot row and column.
    for (const Entry& e : colq) {
      if (e.idx != p) --row_count[static_cast<size_t>(e.idx)];
    }
    row_alive[static_cast<size_t>(p)] = 0;
    col_alive[static_cast<size_t>(q)] = 0;
    colq.clear();

    prow_.push_back(p);
    pcol_.push_back(q);
    pivot_.push_back(pv);
    lcol_.push_back(std::move(lc));
    urow_.push_back(std::move(ur));
  }
  return true;
}

void BasisLu::ftran(std::vector<double>& b) const {
  CGRAF_DCHECK(static_cast<int>(b.size()) == m_);
  // Forward: y = L^{-1} b (in elimination order).
  for (int k = 0; k < m_; ++k) {
    const double t = b[static_cast<size_t>(prow_[static_cast<size_t>(k)])];
    if (t != 0.0) {
      for (const Entry& e : lcol_[static_cast<size_t>(k)])
        b[static_cast<size_t>(e.idx)] -= e.val * t;
    }
  }
  // Backward: solve U x = y; x is indexed by basis position.
  std::vector<double> x(static_cast<size_t>(m_), 0.0);
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = b[static_cast<size_t>(prow_[static_cast<size_t>(k)])];
    for (const Entry& e : urow_[static_cast<size_t>(k)])
      acc -= e.val * x[static_cast<size_t>(e.idx)];
    x[static_cast<size_t>(pcol_[static_cast<size_t>(k)])] =
        acc / pivot_[static_cast<size_t>(k)];
  }
  b = std::move(x);
  // Apply eta updates in application order.
  for (const Eta& eta : etas_) {
    double& t = b[static_cast<size_t>(eta.pos)];
    t /= eta.pivot;
    if (t != 0.0) {
      for (const Entry& e : eta.entries)
        b[static_cast<size_t>(e.idx)] -= e.val * t;
    }
  }
}

void BasisLu::btran(std::vector<double>& b) const {
  CGRAF_DCHECK(static_cast<int>(b.size()) == m_);
  // Eta transposes, newest first.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = b[static_cast<size_t>(it->pos)];
    for (const Entry& e : it->entries)
      acc -= e.val * b[static_cast<size_t>(e.idx)];
    b[static_cast<size_t>(it->pos)] = acc / it->pivot;
  }
  // Solve U^T w = b (increasing elimination order).
  std::vector<double> w(static_cast<size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    const double t = b[static_cast<size_t>(pcol_[static_cast<size_t>(k)])] /
                     pivot_[static_cast<size_t>(k)];
    w[static_cast<size_t>(k)] = t;
    if (t != 0.0) {
      for (const Entry& e : urow_[static_cast<size_t>(k)])
        b[static_cast<size_t>(e.idx)] -= t * e.val;
    }
  }
  // Solve L^T z = w (decreasing order); z indexed by row.
  std::vector<double> z(static_cast<size_t>(m_), 0.0);
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = w[static_cast<size_t>(k)];
    for (const Entry& e : lcol_[static_cast<size_t>(k)])
      acc -= e.val * z[static_cast<size_t>(e.idx)];
    z[static_cast<size_t>(prow_[static_cast<size_t>(k)])] = acc;
  }
  b = std::move(z);
}

bool BasisLu::update(const std::vector<double>& spike, int pos) {
  CGRAF_DCHECK(static_cast<int>(spike.size()) == m_);
  CGRAF_DCHECK(pos >= 0 && pos < m_);
  double norm = 0.0;
  for (const double v : spike) norm = std::max(norm, std::abs(v));
  const double piv = spike[static_cast<size_t>(pos)];
  if (std::abs(piv) <= kPivotTol || std::abs(piv) < 1e-7 * norm) return false;

  Eta eta;
  eta.pos = pos;
  eta.pivot = piv;
  for (int i = 0; i < m_; ++i) {
    if (i == pos) continue;
    const double v = spike[static_cast<size_t>(i)];
    if (std::abs(v) > kDropTol) eta.entries.push_back({i, v});
  }
  etas_.push_back(std::move(eta));
  return true;
}

int BasisLu::factor_nnz() const {
  size_t nnz = 0;
  for (const auto& l : lcol_) nnz += l.size();
  for (const auto& u : urow_) nnz += u.size();
  for (const auto& e : etas_) nnz += e.entries.size() + 1;
  return static_cast<int>(nnz + pivot_.size());
}

}  // namespace cgraf::milp
