// Presolve: shrink a model before branch & bound.
//
// The floorplanner's models are full of structure a presolver eats for
// breakfast — variables fixed by the LP-rounding pre-mapping step, rows
// whose activity bounds make them redundant, singleton rows produced by
// candidate filtering. Passes (to a fixpoint):
//   - substitute fixed variables (lb == ub) into every row,
//   - singleton rows become variable-bound tightenings and are dropped,
//   - rows proven redundant by activity bounds are dropped; rows proven
//     unsatisfiable flag infeasibility,
//   - integer variable bounds are rounded inward.
//
// The reduction is exact: postsolve() reconstructs a full-model solution
// from a reduced-model one, and every feasible point of the original model
// maps to one of the reduced model and vice versa.
#pragma once

#include <vector>

#include "milp/model.h"
#include "milp/simplex.h"

namespace cgraf::milp {

struct PresolveResult {
  // kOptimal: reduction succeeded (possibly to an empty model);
  // kInfeasible: the model is infeasible (no solve needed).
  SolveStatus status = SolveStatus::kOptimal;
  Model reduced;
  // var_map[original] = index in `reduced`, or -1 when eliminated.
  std::vector<int> var_map;
  // fixed_value[original] is meaningful when var_map[original] == -1.
  std::vector<double> fixed_value;

  int rows_dropped = 0;
  int vars_fixed = 0;
  int bounds_tightened = 0;

  // Lifts a reduced-model solution back to the original variable space.
  std::vector<double> postsolve(const std::vector<double>& x_reduced) const;
};

PresolveResult presolve(const Model& model, int max_passes = 6);

}  // namespace cgraf::milp
