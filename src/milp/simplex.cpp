#include "milp/simplex.h"

#include <algorithm>
#include <cmath>

#include "milp/lu.h"
#include "obs/event_log.h"
#include "util/check.h"
#include "util/clock.h"

#ifdef CGRAF_OBS_DETAIL
#include "obs/trace.h"
#endif

namespace cgraf::milp {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kFeasible: return "feasible";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterLimit: return "iteration-limit";
    case SolveStatus::kTimeLimit: return "time-limit";
    case SolveStatus::kNodeLimit: return "node-limit";
    case SolveStatus::kNumericalError: return "numerical-error";
    case SolveStatus::kCancelled: return "cancelled";
  }
  return "?";
}

const char* to_string(LpAlgorithm a) {
  switch (a) {
    case LpAlgorithm::kPrimal: return "primal";
    case LpAlgorithm::kDual: return "dual";
    case LpAlgorithm::kAutoWarm: return "auto";
  }
  return "?";
}

namespace {

constexpr double kPivotZero = 1e-9;   // |w_i| below this cannot pivot
constexpr long kBlandTrigger = 2000;  // stalled iterations before Bland mode
constexpr double kRhoZero = 1e-12;    // pricing-update row entries below this
                                      // are treated as exact zeros

// All mutable state of one solve, kept together so helper lambdas stay small.
struct Work {
  int n = 0, m = 0, total = 0;
  const CscMatrix* a = nullptr;
  std::vector<double> lb, ub;        // size total
  std::vector<double> cost;          // size total, minimization
  std::vector<ColStatus> status;     // size total
  std::vector<int> basis;            // size m: column at each basis position
  std::vector<double> x;             // size total
  BasisLu lu;
};

}  // namespace

SimplexEngine::SimplexEngine(const Model& model, LpOptions opts)
    : opts_(opts) {
  n_ = model.num_vars();
  m_ = model.num_constraints();
  a_ = build_computational_form(model);
  a_rows_ = build_row_major(a_);
  sign_ = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

  cost_.assign(static_cast<size_t>(n_ + m_), 0.0);
  model_lb_.resize(static_cast<size_t>(n_));
  model_ub_.resize(static_cast<size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    const Variable& v = model.var(j);
    cost_[static_cast<size_t>(j)] = sign_ * v.obj;
    model_lb_[static_cast<size_t>(j)] = v.lb;
    model_ub_[static_cast<size_t>(j)] = v.ub;
  }
  slack_lb_.resize(static_cast<size_t>(m_));
  slack_ub_.resize(static_cast<size_t>(m_));
  for (int r = 0; r < m_; ++r) {
    slack_lb_[static_cast<size_t>(r)] = model.constraint(r).lb;
    slack_ub_[static_cast<size_t>(r)] = model.constraint(r).ub;
  }
}

LpResult SimplexEngine::solve(const std::vector<ColStatus>* warm) {
  return solve(model_lb_, model_ub_, warm);
}

void SimplexEngine::set_row_bounds(int row, double lb, double ub) {
  CGRAF_ASSERT(row >= 0 && row < m_);
  CGRAF_ASSERT(lb <= ub);
  slack_lb_[static_cast<size_t>(row)] = lb;
  slack_ub_[static_cast<size_t>(row)] = ub;
}

LpResult SimplexEngine::solve(const std::vector<double>& lb,
                              const std::vector<double>& ub,
                              const std::vector<ColStatus>* warm) {
  CGRAF_ASSERT(static_cast<int>(lb.size()) == n_);
  CGRAF_ASSERT(static_cast<int>(ub.size()) == n_);
  const double t_start = now_seconds();
  const double tolf = opts_.tol_feas;
  const double told = opts_.tol_cost;

#ifdef CGRAF_OBS_DETAIL
  // Per-LP-solve span. solve() runs once per branch & bound node, so this
  // is hot-loop territory: compiled out unless CGRAF_OBS_DETAIL is on.
  obs::Span detail_span("simplex.solve");
  detail_span.arg("cols", static_cast<long>(n_))
      .arg("rows", static_cast<long>(m_))
      .arg("warm", warm != nullptr);
#endif

  Work w;
  w.n = n_;
  w.m = m_;
  w.total = n_ + m_;
  w.a = &a_;
  w.lb.resize(static_cast<size_t>(w.total));
  w.ub.resize(static_cast<size_t>(w.total));
  for (int j = 0; j < n_; ++j) {
    w.lb[static_cast<size_t>(j)] = lb[static_cast<size_t>(j)];
    w.ub[static_cast<size_t>(j)] = ub[static_cast<size_t>(j)];
  }
  for (int r = 0; r < m_; ++r) {
    w.lb[static_cast<size_t>(n_ + r)] = slack_lb_[static_cast<size_t>(r)];
    w.ub[static_cast<size_t>(n_ + r)] = slack_ub_[static_cast<size_t>(r)];
  }
  w.cost = cost_;

  LpResult res;

  auto timed_ftran = [&](std::vector<double>& v) {
    const double t0 = now_seconds();
    w.lu.ftran(v);
    res.stats.ftran_seconds += now_seconds() - t0;
  };
  auto timed_btran = [&](std::vector<double>& v) {
    const double t0 = now_seconds();
    w.lu.btran(v);
    res.stats.btran_seconds += now_seconds() - t0;
  };
  auto timed_factorize = [&] {
    const double t0 = now_seconds();
    const bool ok = w.lu.factorize(a_, w.basis);
    res.stats.factor_seconds += now_seconds() - t0;
    ++res.stats.refactorizations;
    return ok;
  };

  auto default_status = [&](int j) {
    const double l = w.lb[static_cast<size_t>(j)];
    const double u = w.ub[static_cast<size_t>(j)];
    if (l != -kInf) return ColStatus::kAtLower;
    if (u != kInf) return ColStatus::kAtUpper;
    return ColStatus::kFreeZero;
  };

  // --- Build initial basis: warm start when usable, slack basis otherwise.
  bool warmed = false;
  if (warm != nullptr && static_cast<int>(warm->size()) == w.total) {
    w.status = *warm;
    w.basis.clear();
    for (int j = 0; j < w.total; ++j) {
      if (w.status[static_cast<size_t>(j)] == ColStatus::kBasic)
        w.basis.push_back(j);
    }
    if (static_cast<int>(w.basis.size()) == m_ && timed_factorize()) {
      // Sanitize nonbasic statuses against the (possibly tightened) bounds.
      for (int j = 0; j < w.total; ++j) {
        ColStatus& s = w.status[static_cast<size_t>(j)];
        if (s == ColStatus::kBasic) continue;
        if (s == ColStatus::kAtLower && w.lb[static_cast<size_t>(j)] == -kInf)
          s = default_status(j);
        if (s == ColStatus::kAtUpper && w.ub[static_cast<size_t>(j)] == kInf)
          s = default_status(j);
      }
      warmed = true;
    }
  }
  res.warm_used = warmed;
  if (!warmed) {
    w.status.assign(static_cast<size_t>(w.total), ColStatus::kAtLower);
    w.basis.resize(static_cast<size_t>(m_));
    for (int j = 0; j < n_; ++j) w.status[static_cast<size_t>(j)] = default_status(j);
    for (int r = 0; r < m_; ++r) {
      w.basis[static_cast<size_t>(r)] = n_ + r;
      w.status[static_cast<size_t>(n_ + r)] = ColStatus::kBasic;
    }
    const bool ok = timed_factorize();
    CGRAF_ASSERT(ok);  // slack basis is -I, always nonsingular
  }

  w.x.assign(static_cast<size_t>(w.total), 0.0);
  auto nonbasic_value = [&](int j) {
    switch (w.status[static_cast<size_t>(j)]) {
      case ColStatus::kAtLower: return w.lb[static_cast<size_t>(j)];
      case ColStatus::kAtUpper: return w.ub[static_cast<size_t>(j)];
      default: return 0.0;
    }
  };

  std::vector<double> rhs(static_cast<size_t>(m_));
  auto recompute_basics = [&] {
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (int j = 0; j < w.total; ++j) {
      if (w.status[static_cast<size_t>(j)] == ColStatus::kBasic) continue;
      const double v = nonbasic_value(j);
      w.x[static_cast<size_t>(j)] = v;
      if (v != 0.0) a_.axpy_col(j, -v, rhs);
    }
    timed_ftran(rhs);
    for (int i = 0; i < m_; ++i)
      w.x[static_cast<size_t>(w.basis[static_cast<size_t>(i)])] =
          rhs[static_cast<size_t>(i)];
  };
  recompute_basics();

  auto total_infeasibility = [&] {
    double s = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int j = w.basis[static_cast<size_t>(i)];
      const double xj = w.x[static_cast<size_t>(j)];
      s += std::max(0.0, xj - w.ub[static_cast<size_t>(j)]);
      s += std::max(0.0, w.lb[static_cast<size_t>(j)] - xj);
    }
    return s;
  };

  std::vector<double> y(static_cast<size_t>(m_));
  std::vector<double> spike(static_cast<size_t>(m_));
  long stalled = 0;
  double last_progress_metric = kInf;
  bool last_phase1 = true;

  // --- Candidate-list pricing state. `d` carries the phase-2 reduced cost
  // of every column (0 for basics) and is maintained across pivots by a
  // rank-one update from the BTRAN'd pivot row; it is only trusted while
  // `d_valid` holds, and is rebuilt exactly from scratch on phase changes,
  // refactorizations, and every pricing_refresh_interval updates.
  std::vector<double> d(static_cast<size_t>(w.total), 0.0);
  bool d_valid = false;
  long updates_since_refresh = 0;
  std::vector<int> bucket;
  int rotate = 0;
  std::vector<double> rho(static_cast<size_t>(m_));
  std::vector<double> alpha(static_cast<size_t>(w.total), 0.0);
  std::vector<char> alpha_mark(static_cast<size_t>(w.total), 0);
  std::vector<int> alpha_touched;
  const int bucket_cap =
      opts_.candidate_bucket > 0
          ? opts_.candidate_bucket
          : std::clamp(w.total / 8, 16, 512);

  auto eligible = [&](int j, double dj) {
    const ColStatus s = w.status[static_cast<size_t>(j)];
    if (s == ColStatus::kBasic) return false;
    if (w.lb[static_cast<size_t>(j)] == w.ub[static_cast<size_t>(j)])
      return false;  // fixed, can never move
    if (s == ColStatus::kAtLower) return dj < -told;
    if (s == ColStatus::kAtUpper) return dj > told;
    return std::abs(dj) > told;  // free
  };

  // Exact rebuild of the whole reduced-cost vector (phase-2 costs).
  auto refresh_d = [&] {
    std::fill(y.begin(), y.end(), 0.0);
    for (int i = 0; i < m_; ++i)
      y[static_cast<size_t>(i)] =
          w.cost[static_cast<size_t>(w.basis[static_cast<size_t>(i)])];
    timed_btran(y);
    const double t0 = now_seconds();
    for (int j = 0; j < w.total; ++j) {
      d[static_cast<size_t>(j)] =
          w.status[static_cast<size_t>(j)] == ColStatus::kBasic
              ? 0.0
              : w.cost[static_cast<size_t>(j)] - a_.dot_col(j, y);
    }
    res.stats.pricing_seconds += now_seconds() - t0;
    d_valid = true;
    updates_since_refresh = 0;
    ++res.stats.full_refreshes;
  };

  // Refill the bucket with the most attractive eligible columns, scanning
  // round-robin from `rotate` so slow-moving columns still get their turn.
  auto rebuild_bucket = [&] {
    bucket.clear();
    const int scan_cap = 4 * bucket_cap;
    int scanned = 0;
    for (int k = 0; k < w.total && static_cast<int>(bucket.size()) < scan_cap;
         ++k) {
      const int j = (rotate + k) % w.total;
      scanned = k + 1;
      if (eligible(j, d[static_cast<size_t>(j)])) bucket.push_back(j);
    }
    rotate = (rotate + scanned) % w.total;
    if (static_cast<int>(bucket.size()) > bucket_cap) {
      std::nth_element(bucket.begin(), bucket.begin() + bucket_cap,
                       bucket.end(), [&](int a, int b) {
                         return std::abs(d[static_cast<size_t>(a)]) >
                                std::abs(d[static_cast<size_t>(b)]);
                       });
      bucket.resize(static_cast<size_t>(bucket_cap));
    }
    ++res.stats.bucket_rebuilds;
  };

  // Best still-eligible column in the bucket (dropping dead entries).
  auto pick_from_bucket = [&] {
    int best = -1;
    double best_abs = told;
    size_t keep = 0;
    for (const int j : bucket) {
      const double dj = d[static_cast<size_t>(j)];
      if (!eligible(j, dj)) continue;
      bucket[keep++] = j;
      if (std::abs(dj) > best_abs) {
        best_abs = std::abs(dj);
        best = j;
      }
    }
    bucket.resize(keep);
    return best;
  };

  auto finish = [&](SolveStatus st) {
#ifdef CGRAF_OBS_DETAIL
    detail_span.arg("status", to_string(st))
        .arg("iterations", res.iterations)
        .arg("phase1_iterations", res.stats.phase1_iterations);
#endif
    res.status = st;
    res.seconds = now_seconds() - t_start;
    res.basis = w.status;
    res.x.assign(w.x.begin(), w.x.begin() + n_);
    double obj = 0.0;
    for (int j = 0; j < n_; ++j)
      obj += cost_[static_cast<size_t>(j)] * w.x[static_cast<size_t>(j)];
    res.obj = sign_ * obj;
    // One record per LP solve, from the single exit point so the analyzer's
    // iteration totals cover every solve (node LPs, dives, probe chains).
    obs::Event ev(opts_.events, "lp.solve");
    if (ev.active()) {
      ev.arg("status", to_string(st))
          .arg("iterations", res.iterations)
          .arg("phase1_iterations", res.stats.phase1_iterations)
          .arg("dual_iterations", res.stats.dual_iterations)
          .arg("bound_flips", res.stats.bound_flips)
          .arg("refactorizations", res.stats.refactorizations)
          .arg("dual_fallbacks", res.stats.dual_fallbacks)
          .arg("algorithm", to_string(opts_.algorithm))
          .arg("warm_used", res.warm_used)
          .arg("dual_used", res.dual_used)
          .arg("obj", res.obj)
          .arg("seconds", res.seconds);
    }
    return res;
  };

  long iter = 0;

  // ===== Dual simplex =====
  // Runs ahead of the primal loop when requested: pivots while some basic
  // violates a bound but the reduced costs stay dual feasible. On every
  // exit except a proven infeasibility certificate, control falls through
  // to the primal loop below, which certifies the result with exact
  // pricing (and takes zero pivots after a clean dual run) — so statuses
  // and objectives are identical across all algorithm settings.
  const bool want_dual =
      opts_.algorithm == LpAlgorithm::kDual ||
      (opts_.algorithm == LpAlgorithm::kAutoWarm && warmed);
  if (want_dual && m_ > 0) {
    refresh_d();

    // --- Dual-feasibility repair: a nonbasic column whose reduced cost
    // points the wrong way is fine if it can flip to its other (finite)
    // bound; a free or one-sided violator makes this basis unusable for
    // the dual loop and we fall back to primal, keeping the basis.
    bool repairable = true;
    std::vector<int> repair;
    for (int j = 0; j < w.total; ++j) {
      const ColStatus s = w.status[static_cast<size_t>(j)];
      if (s == ColStatus::kBasic) continue;
      if (w.lb[static_cast<size_t>(j)] == w.ub[static_cast<size_t>(j)])
        continue;  // fixed: any reduced-cost sign is dual feasible
      const double dj = d[static_cast<size_t>(j)];
      if (s == ColStatus::kAtLower && dj < -told) {
        if (w.ub[static_cast<size_t>(j)] == kInf) {
          repairable = false;
          break;
        }
        repair.push_back(j);
      } else if (s == ColStatus::kAtUpper && dj > told) {
        if (w.lb[static_cast<size_t>(j)] == -kInf) {
          repairable = false;
          break;
        }
        repair.push_back(j);
      } else if (s == ColStatus::kFreeZero && std::abs(dj) > told) {
        repairable = false;
        break;
      }
    }
    if (!repairable) {
      ++res.stats.dual_fallbacks;
    } else {
      if (!repair.empty()) {
        for (const int j : repair) {
          w.status[static_cast<size_t>(j)] =
              w.status[static_cast<size_t>(j)] == ColStatus::kAtLower
                  ? ColStatus::kAtUpper
                  : ColStatus::kAtLower;
        }
        res.stats.bound_flips += static_cast<long>(repair.size());
        recompute_basics();  // the repair moved nonbasic values
      }
      res.dual_used = true;

      // --- Leaving-row pricing weights. Steepest edge wants
      // w_i = ||B^-T e_i||^2; a slack start (B = -I) makes the unit init
      // exact for free, a warm start can often reuse the engine's cached
      // weights from the previous dual run on the same basis, and anything
      // else starts approximate and converges via the periodic exact
      // recompute. Devex keeps cheap reference weights instead.
      const bool steepest = opts_.dual_pricing == DualPricing::kSteepestEdge;
      std::vector<double> dw(static_cast<size_t>(m_), 1.0);
      bool weights_exact = steepest && !warmed;
      if (steepest && warmed && dse_exact_ && dse_basis_cols_ == w.basis) {
        dw = dse_weights_;
        weights_exact = true;
      }

      auto exact_weights = [&](std::vector<double>& out) {
        const double t0 = now_seconds();
        out.assign(static_cast<size_t>(m_), 0.0);
        std::vector<double> e(static_cast<size_t>(m_));
        for (int i = 0; i < m_; ++i) {
          std::fill(e.begin(), e.end(), 0.0);
          e[static_cast<size_t>(i)] = 1.0;
          w.lu.btran(e);
          double s2 = 0.0;
          for (const double v : e) s2 += v * v;
          out[static_cast<size_t>(i)] = s2;
        }
        res.stats.dse_seconds += now_seconds() - t0;
      };

      auto clear_alpha = [&] {
        for (const int j : alpha_touched) {
          alpha_mark[static_cast<size_t>(j)] = 0;
          alpha[static_cast<size_t>(j)] = 0.0;
        }
        alpha_touched.clear();
      };

      struct DualCand {
        int j;
        double ratio;  // d_j / (sigma * alpha_j), >= 0 at dual feasibility
        double step;   // |alpha_j|
      };
      std::vector<DualCand> cands;
      std::vector<int> flip_list;
      std::vector<double> flip_rhs(static_cast<size_t>(m_));
      std::vector<double> tau(static_cast<size_t>(m_));
      long dual_stalled = 0;
      double dual_last_infeas = kInf;
      long since_recompute = 0;
      bool just_refactored = false;

      while (iter < opts_.max_iters) {
        if ((iter & 127) == 0 &&
            (now_seconds() - t_start > opts_.time_limit_s ||
             (opts_.cancel != nullptr &&
              opts_.cancel->load(std::memory_order_relaxed)))) {
          break;  // the primal loop reports the limit/cancel status
        }
        if (!d_valid ||
            updates_since_refresh >= opts_.pricing_refresh_interval) {
          refresh_d();
        }

        // --- Leaving row: largest squared violation over its weight.
        int r = -1;
        double best_score = 0.0;
        for (int i = 0; i < m_; ++i) {
          const int j = w.basis[static_cast<size_t>(i)];
          const double xj = w.x[static_cast<size_t>(j)];
          double viol = 0.0;
          if (xj > w.ub[static_cast<size_t>(j)] + tolf)
            viol = xj - w.ub[static_cast<size_t>(j)];
          else if (xj < w.lb[static_cast<size_t>(j)] - tolf)
            viol = xj - w.lb[static_cast<size_t>(j)];
          else
            continue;
          const double score =
              viol * viol / std::max(dw[static_cast<size_t>(i)], 1e-10);
          if (score > best_score) {
            best_score = score;
            r = i;
          }
        }
        if (r < 0) break;  // primal feasible: primal loop certifies it

        // Anti-stall: the dual loop has no Bland mode; hand persistent
        // degeneracy to the primal loop instead of cycling here.
        const double infeas_now = total_infeasibility();
        if (infeas_now < dual_last_infeas - 1e-11) {
          dual_stalled = 0;
          dual_last_infeas = infeas_now;
        } else if (++dual_stalled > kBlandTrigger) {
          break;
        }

        const int leave = w.basis[static_cast<size_t>(r)];
        const double x_leave = w.x[static_cast<size_t>(leave)];
        const double sigma =
            x_leave > w.ub[static_cast<size_t>(leave)] ? 1.0 : -1.0;
        const double bound_to = sigma > 0
                                    ? w.ub[static_cast<size_t>(leave)]
                                    : w.lb[static_cast<size_t>(leave)];

        // --- Pivot row: rho = B^-T e_r scattered through the row-major
        // mirror (the same machinery the primal pricing update uses).
        std::fill(rho.begin(), rho.end(), 0.0);
        rho[static_cast<size_t>(r)] = 1.0;
        timed_btran(rho);
        const double t_row = now_seconds();
        for (int i = 0; i < m_; ++i) {
          const double ri = rho[static_cast<size_t>(i)];
          if (std::abs(ri) < kRhoZero) continue;
          for (int q = a_rows_.begin(i); q < a_rows_.end(i); ++q) {
            const int j = a_rows_.col_idx[static_cast<size_t>(q)];
            if (!alpha_mark[static_cast<size_t>(j)]) {
              alpha_mark[static_cast<size_t>(j)] = 1;
              alpha_touched.push_back(j);
            }
            alpha[static_cast<size_t>(j)] +=
                ri * a_rows_.value[static_cast<size_t>(q)];
          }
        }
        res.stats.pricing_seconds += now_seconds() - t_row;

        // --- Dual ratio test over the sigma-normalized row. A candidate
        // whose |alpha| is below the pivot tolerance cannot enter, but its
        // box range still bounds how much violation it could absorb; that
        // mass keeps an exhausted test from overclaiming infeasibility.
        cands.clear();
        double excluded = 0.0;
        for (const int j : alpha_touched) {
          const ColStatus s = w.status[static_cast<size_t>(j)];
          if (s == ColStatus::kBasic) continue;
          const double l = w.lb[static_cast<size_t>(j)];
          const double u = w.ub[static_cast<size_t>(j)];
          if (l == u) continue;  // fixed
          const double at = sigma * alpha[static_cast<size_t>(j)];
          bool elig = false;
          if (s == ColStatus::kAtLower) elig = at > 0.0;
          else if (s == ColStatus::kAtUpper) elig = at < 0.0;
          else elig = at != 0.0;  // free
          if (!elig) continue;
          if (std::abs(at) <= kPivotZero) {
            if (excluded != kInf && l != -kInf && u != kInf)
              excluded += (u - l) * std::abs(at);
            else
              excluded = kInf;
            continue;
          }
          cands.push_back({j,
                           std::max(0.0, d[static_cast<size_t>(j)] / at),
                           std::abs(at)});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const DualCand& a, const DualCand& b) {
                    if (a.ratio != b.ratio) return a.ratio < b.ratio;
                    if (a.step != b.step) return a.step > b.step;
                    return a.j < b.j;
                  });

        // --- Bound-flipping walk: boxed candidates passed while the
        // remaining violation stays positive flip bound-to-bound; the one
        // that would drive it through zero enters the basis.
        double remaining = std::abs(x_leave - bound_to);
        int enter = -1;
        flip_list.clear();
        for (const DualCand& c : cands) {
          const double l = w.lb[static_cast<size_t>(c.j)];
          const double u = w.ub[static_cast<size_t>(c.j)];
          const bool boxed = l != -kInf && u != kInf;
          if (boxed && remaining - (u - l) * c.step > tolf) {
            flip_list.push_back(c.j);
            remaining -= (u - l) * c.step;
          } else {
            enter = c.j;
            break;
          }
        }
        if (enter < 0) {
          clear_alpha();
          // Every eligible column sits at its far bound and row r is still
          // violated: a box-arithmetic infeasibility certificate, unless
          // the excluded tiny pivots could still cover the residual.
          if (remaining > excluded + 10 * tolf)
            return finish(SolveStatus::kInfeasible);
          break;  // ambiguous within tolerance: the primal loop decides
        }

        // --- FTRAN the entering column (also the LU update spike).
        std::fill(spike.begin(), spike.end(), 0.0);
        a_.axpy_col(enter, 1.0, spike);
        timed_ftran(spike);
        const double w_r = spike[static_cast<size_t>(r)];
        if (std::abs(w_r) <= kPivotZero) {
          // Scatter and FTRAN disagree on the pivot magnitude: refactorize
          // once and retry the iteration; bail to primal if it persists.
          clear_alpha();
          if (just_refactored) break;
          if (!timed_factorize()) return finish(SolveStatus::kNumericalError);
          recompute_basics();
          refresh_d();
          just_refactored = true;
          continue;
        }
        just_refactored = false;

        ++iter;
        res.iterations = iter;
        ++res.stats.dual_iterations;

        // --- Apply the bound flips: the basics absorb all the flipped
        // columns' bound-to-bound jumps via one batched FTRAN.
        if (!flip_list.empty()) {
          std::fill(flip_rhs.begin(), flip_rhs.end(), 0.0);
          for (const int j : flip_list) {
            const size_t sj = static_cast<size_t>(j);
            const double range = w.ub[sj] - w.lb[sj];
            const double delta =
                w.status[sj] == ColStatus::kAtLower ? range : -range;
            w.status[sj] = w.status[sj] == ColStatus::kAtLower
                               ? ColStatus::kAtUpper
                               : ColStatus::kAtLower;
            w.x[sj] = nonbasic_value(j);
            a_.axpy_col(j, delta, flip_rhs);
          }
          timed_ftran(flip_rhs);
          for (int i = 0; i < m_; ++i)
            w.x[static_cast<size_t>(w.basis[static_cast<size_t>(i)])] -=
                flip_rhs[static_cast<size_t>(i)];
          res.stats.bound_flips += static_cast<long>(flip_list.size());
        }

        // --- Primal step: drive the leaving basic exactly onto its
        // violated bound (distance recomputed after the flips).
        const double t_step =
            (w.x[static_cast<size_t>(leave)] - bound_to) / w_r;
        for (int i = 0; i < m_; ++i) {
          const double wi = spike[static_cast<size_t>(i)];
          if (wi == 0.0) continue;
          w.x[static_cast<size_t>(w.basis[static_cast<size_t>(i)])] -=
              t_step * wi;
        }
        w.x[static_cast<size_t>(enter)] = nonbasic_value(enter) + t_step;
        w.status[static_cast<size_t>(leave)] =
            sigma > 0 ? ColStatus::kAtUpper : ColStatus::kAtLower;
        w.x[static_cast<size_t>(leave)] = bound_to;
        w.status[static_cast<size_t>(enter)] = ColStatus::kBasic;
        w.basis[static_cast<size_t>(r)] = enter;

        // --- Incremental reduced-cost update along the pivot row. The
        // generic form covers the leaving column too (alpha_leave == 1,
        // overwritten with the exact value below); flipped columns cross
        // to the feasible side of their new bound by construction.
        {
          const double t0 = now_seconds();
          const double theta = d[static_cast<size_t>(enter)] / w_r;
          for (const int j : alpha_touched) {
            if (w.status[static_cast<size_t>(j)] == ColStatus::kBasic)
              continue;
            d[static_cast<size_t>(j)] -= theta * alpha[static_cast<size_t>(j)];
          }
          d[static_cast<size_t>(leave)] = -theta;
          d[static_cast<size_t>(enter)] = 0.0;
          ++updates_since_refresh;
          res.stats.pricing_seconds += now_seconds() - t0;
        }

        // --- Weight update. Steepest edge (Forrest–Goldfarb) needs
        // tau = B^-1 rho against the *outgoing* basis, so this runs before
        // the LU update; beta_r = ||rho||^2 and the pivot come out exact.
        {
          const double t0 = now_seconds();
          const double inv = 1.0 / w_r;
          if (steepest) {
            double beta_r = 0.0;
            for (const double v : rho) beta_r += v * v;
            tau = rho;
            w.lu.ftran(tau);
            for (int i = 0; i < m_; ++i) {
              if (i == r) continue;
              const double wi = spike[static_cast<size_t>(i)];
              if (wi == 0.0) continue;
              const double k = wi * inv;
              double nw = dw[static_cast<size_t>(i)] -
                          2.0 * k * tau[static_cast<size_t>(i)] +
                          k * k * beta_r;
              if (nw < 1e-10) {
                nw = 1e-10;  // cancellation floor: no longer exact
                weights_exact = false;
              }
              dw[static_cast<size_t>(i)] = nw;
            }
            dw[static_cast<size_t>(r)] = std::max(beta_r * inv * inv, 1e-10);
          } else {
            const double gr = dw[static_cast<size_t>(r)];
            for (int i = 0; i < m_; ++i) {
              if (i == r) continue;
              const double wi = spike[static_cast<size_t>(i)];
              if (wi == 0.0) continue;
              const double cand = wi * inv * wi * inv * gr;
              if (cand > dw[static_cast<size_t>(i)])
                dw[static_cast<size_t>(i)] = cand;
            }
            dw[static_cast<size_t>(r)] = std::max(gr * inv * inv, 1.0);
            if (dw[static_cast<size_t>(r)] > 1e10) {
              std::fill(dw.begin(), dw.end(), 1.0);
              ++res.stats.steepest_edge_resets;
            }
          }
          res.stats.dse_seconds += now_seconds() - t0;
        }

        clear_alpha();

        // --- LU update / periodic refactorization.
        const double t_upd = now_seconds();
        const bool updated = w.lu.num_updates() < opts_.refactor_interval &&
                             w.lu.update(spike, r);
        res.stats.factor_seconds += now_seconds() - t_upd;
        if (!updated) {
          if (!timed_factorize()) return finish(SolveStatus::kNumericalError);
          recompute_basics();
          refresh_d();
        }

        // --- Periodic exact steepest-edge recompute (numerical hygiene)
        // plus, in debug builds, the drift cross-check of the incremental
        // weights. The check only fires while the weights are provably
        // exact modulo roundoff (exact init or last exact recompute, no
        // cancellation floor hit since).
        if (steepest) {
          ++since_recompute;
#ifndef NDEBUG
          if (opts_.dse_check_interval > 0 && weights_exact &&
              since_recompute % opts_.dse_check_interval == 0) {
            std::vector<double> exact;
            exact_weights(exact);
            for (int i = 0; i < m_; ++i) {
              const double e = exact[static_cast<size_t>(i)];
              CGRAF_DCHECK(std::abs(dw[static_cast<size_t>(i)] - e) <=
                           5e-2 * (1.0 + e));
            }
          }
#endif
          if (opts_.dse_recompute_interval > 0 &&
              since_recompute >= opts_.dse_recompute_interval) {
            exact_weights(dw);
            weights_exact = true;
            since_recompute = 0;
            ++res.stats.steepest_edge_resets;
          }
        }
      }

      // Park the weights for the next warm re-solve on this engine.
      if (steepest) {
        dse_basis_cols_ = w.basis;
        dse_weights_ = dw;
        dse_exact_ = weights_exact;
      }
    }
  }

  for (;; ++iter) {
    if (iter >= opts_.max_iters) return finish(SolveStatus::kIterLimit);
    if ((iter & 127) == 0 && now_seconds() - t_start > opts_.time_limit_s)
      return finish(SolveStatus::kTimeLimit);
    if ((iter & 127) == 0 && opts_.cancel != nullptr &&
        opts_.cancel->load(std::memory_order_relaxed)) {
      return finish(SolveStatus::kCancelled);
    }
    res.iterations = iter;

    // --- Phase detection: any basic outside its bounds forces phase 1.
    bool phase1 = false;
    for (int i = 0; i < m_; ++i) {
      const int j = w.basis[static_cast<size_t>(i)];
      const double xj = w.x[static_cast<size_t>(j)];
      if (xj > w.ub[static_cast<size_t>(j)] + tolf ||
          xj < w.lb[static_cast<size_t>(j)] - tolf) {
        phase1 = true;
        break;
      }
    }
    if (phase1) ++res.stats.phase1_iterations;

    // --- Stall detection drives the Bland anti-cycling fallback. The
    // metric is phase-specific, so reset the tracker on phase changes.
    if (phase1 != last_phase1) {
      stalled = 0;
      last_progress_metric = kInf;
      last_phase1 = phase1;
    }
    const double metric = phase1 ? total_infeasibility() : [&] {
      double o = 0.0;
      for (int j = 0; j < w.total; ++j)
        o += w.cost[static_cast<size_t>(j)] * w.x[static_cast<size_t>(j)];
      return o;
    }();
    if (metric < last_progress_metric - 1e-11) {
      stalled = 0;
      last_progress_metric = metric;
    } else {
      ++stalled;
    }
    const bool bland = stalled > kBlandTrigger;

    // --- Pricing. Phase-1 costs change with the violated set, and Bland
    // mode needs exact first-eligible semantics, so both use the full path;
    // feasible Dantzig iterations use the maintained vector + bucket.
    const bool candidate_mode =
        opts_.pricing == Pricing::kCandidateList && !phase1 && !bland;
    int enter = -1;
    double enter_d = 0.0;
    if (!candidate_mode) {
      d_valid = false;
      std::fill(y.begin(), y.end(), 0.0);
      if (phase1) {
        for (int i = 0; i < m_; ++i) {
          const int j = w.basis[static_cast<size_t>(i)];
          const double xj = w.x[static_cast<size_t>(j)];
          if (xj > w.ub[static_cast<size_t>(j)] + tolf)
            y[static_cast<size_t>(i)] = 1.0;  // minimize overshoot
          else if (xj < w.lb[static_cast<size_t>(j)] - tolf)
            y[static_cast<size_t>(i)] = -1.0;
        }
      } else {
        for (int i = 0; i < m_; ++i)
          y[static_cast<size_t>(i)] =
              w.cost[static_cast<size_t>(w.basis[static_cast<size_t>(i)])];
      }
      timed_btran(y);

      const double t_price = now_seconds();
      double best_score = told;
      for (int j = 0; j < w.total; ++j) {
        const ColStatus s = w.status[static_cast<size_t>(j)];
        if (s == ColStatus::kBasic) continue;
        if (w.lb[static_cast<size_t>(j)] == w.ub[static_cast<size_t>(j)])
          continue;  // fixed, can never move
        const double cj = phase1 ? 0.0 : w.cost[static_cast<size_t>(j)];
        const double dj = cj - a_.dot_col(j, y);
        bool elig = false;
        if (s == ColStatus::kAtLower) elig = dj < -told;
        else if (s == ColStatus::kAtUpper) elig = dj > told;
        else elig = std::abs(dj) > told;  // free
        if (!elig) continue;
        if (bland) {  // first eligible index
          enter = j;
          enter_d = dj;
          break;
        }
        if (std::abs(dj) > best_score) {
          best_score = std::abs(dj);
          enter = j;
          enter_d = dj;
        }
      }
      res.stats.pricing_seconds += now_seconds() - t_price;

      if (enter < 0) {
        if (phase1) {
          return total_infeasibility() > 10 * tolf
                     ? finish(SolveStatus::kInfeasible)
                     : finish(SolveStatus::kOptimal);
        }
        return finish(SolveStatus::kOptimal);
      }
    } else {
      if (!d_valid ||
          updates_since_refresh >= opts_.pricing_refresh_interval) {
        refresh_d();
      }
      const double t_price = now_seconds();
      enter = pick_from_bucket();
      if (enter < 0) {
        rebuild_bucket();
        enter = pick_from_bucket();
      }
      res.stats.pricing_seconds += now_seconds() - t_price;
      if (enter < 0) {
        // The maintained vector says optimal; confirm with exact reduced
        // costs before declaring it, so drift can never change the answer.
        if (updates_since_refresh > 0) {
          refresh_d();
          const double t2 = now_seconds();
          rebuild_bucket();
          enter = pick_from_bucket();
          res.stats.pricing_seconds += now_seconds() - t2;
        }
        if (enter < 0) return finish(SolveStatus::kOptimal);
      }
      enter_d = d[static_cast<size_t>(enter)];
    }

    const double dir = (w.status[static_cast<size_t>(enter)] ==
                        ColStatus::kAtUpper)
                           ? -1.0
                           : (enter_d < 0.0 ? 1.0 : -1.0);

    // --- FTRAN the entering column.
    std::fill(spike.begin(), spike.end(), 0.0);
    a_.axpy_col(enter, 1.0, spike);
    timed_ftran(spike);

    // --- Ratio test. Basic i changes at rate -dir*spike[i] per unit step.
    double t_limit = w.ub[static_cast<size_t>(enter)] -
                     w.lb[static_cast<size_t>(enter)];  // may be inf
    if (w.status[static_cast<size_t>(enter)] == ColStatus::kFreeZero)
      t_limit = kInf;
    int leave_pos = -1;
    ColStatus leave_to = ColStatus::kAtLower;
    double leave_w = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double wi = spike[static_cast<size_t>(i)];
      if (std::abs(wi) <= kPivotZero) continue;
      const double rate = -dir * wi;
      const int j = w.basis[static_cast<size_t>(i)];
      const double xj = w.x[static_cast<size_t>(j)];
      const double l = w.lb[static_cast<size_t>(j)];
      const double u = w.ub[static_cast<size_t>(j)];
      double limit = kInf;
      ColStatus target = ColStatus::kAtLower;
      if (phase1 && xj > u + tolf) {
        if (rate < 0.0) {  // coming down toward the violated upper bound
          limit = (xj - u) / -rate;
          target = ColStatus::kAtUpper;
        }
      } else if (phase1 && xj < l - tolf) {
        if (rate > 0.0) {
          limit = (l - xj) / rate;
          target = ColStatus::kAtLower;
        }
      } else if (rate < 0.0) {
        if (l != -kInf) {
          limit = (xj - l) / -rate;
          target = ColStatus::kAtLower;
        }
      } else {
        if (u != kInf) {
          limit = (u - xj) / rate;
          target = ColStatus::kAtUpper;
        }
      }
      if (limit == kInf) continue;
      limit = std::max(limit, 0.0);
      if (limit < t_limit - 1e-12 ||
          (limit < t_limit + 1e-12 &&
           (leave_pos < 0 || std::abs(wi) > std::abs(leave_w)))) {
        t_limit = limit;
        leave_pos = i;
        leave_to = target;
        leave_w = wi;
      }
    }

    if (t_limit == kInf) {
      return phase1 ? finish(SolveStatus::kNumericalError)
                    : finish(SolveStatus::kUnbounded);
    }

    // --- Apply the step.
    const double step = t_limit;
    if (step != 0.0) {
      for (int i = 0; i < m_; ++i) {
        const double wi = spike[static_cast<size_t>(i)];
        if (wi == 0.0) continue;
        w.x[static_cast<size_t>(w.basis[static_cast<size_t>(i)])] -=
            dir * wi * step;
      }
      w.x[static_cast<size_t>(enter)] += dir * step;
    }

    if (leave_pos < 0) {
      // Bound flip: the entering variable traversed its whole range. The
      // basis is unchanged, so the maintained reduced costs stay valid.
      w.status[static_cast<size_t>(enter)] =
          dir > 0 ? ColStatus::kAtUpper : ColStatus::kAtLower;
      w.x[static_cast<size_t>(enter)] =
          nonbasic_value(enter);  // snap exactly to the bound
      continue;
    }

    // --- Basis change.
    const int leave = w.basis[static_cast<size_t>(leave_pos)];
    w.status[static_cast<size_t>(leave)] = leave_to;
    w.x[static_cast<size_t>(leave)] =
        leave_to == ColStatus::kAtLower ? w.lb[static_cast<size_t>(leave)]
                                        : w.ub[static_cast<size_t>(leave)];
    w.status[static_cast<size_t>(enter)] = ColStatus::kBasic;
    w.basis[static_cast<size_t>(leave_pos)] = enter;

    // --- Incremental reduced-cost update: with rho = B_old^-T e_r, every
    // d_j drops by (d_enter / w_r) * (rho . a_j). Must run before the LU is
    // touched so the BTRAN still refers to the outgoing basis; the row-major
    // mirror makes the scatter proportional to the pivot row's support, not
    // to nnz(A).
    if (d_valid) {
      const double w_r = spike[static_cast<size_t>(leave_pos)];
      std::fill(rho.begin(), rho.end(), 0.0);
      rho[static_cast<size_t>(leave_pos)] = 1.0;
      timed_btran(rho);
      const double t0 = now_seconds();
      const double theta = d[static_cast<size_t>(enter)] / w_r;
      alpha_touched.clear();
      for (int i = 0; i < m_; ++i) {
        const double ri = rho[static_cast<size_t>(i)];
        if (std::abs(ri) < kRhoZero) continue;
        for (int q = a_rows_.begin(i); q < a_rows_.end(i); ++q) {
          const int j = a_rows_.col_idx[static_cast<size_t>(q)];
          if (!alpha_mark[static_cast<size_t>(j)]) {
            alpha_mark[static_cast<size_t>(j)] = 1;
            alpha_touched.push_back(j);
          }
          alpha[static_cast<size_t>(j)] +=
              ri * a_rows_.value[static_cast<size_t>(q)];
        }
      }
      for (const int j : alpha_touched) {
        alpha_mark[static_cast<size_t>(j)] = 0;
        const double aj = alpha[static_cast<size_t>(j)];
        alpha[static_cast<size_t>(j)] = 0.0;
        if (w.status[static_cast<size_t>(j)] == ColStatus::kBasic) continue;
        d[static_cast<size_t>(j)] -= theta * aj;
      }
      d[static_cast<size_t>(enter)] = 0.0;
      ++updates_since_refresh;
      ++res.stats.incremental_updates;
      res.stats.pricing_seconds += now_seconds() - t0;
    }

    const double t_upd = now_seconds();
    const bool updated = w.lu.num_updates() < opts_.refactor_interval &&
                         w.lu.update(spike, leave_pos);
    res.stats.factor_seconds += now_seconds() - t_upd;
    if (!updated) {
      if (!timed_factorize()) return finish(SolveStatus::kNumericalError);
      recompute_basics();
      d_valid = false;  // refreshed on the next candidate-mode iteration
    }
  }
}

LpResult solve_lp(const Model& model, const LpOptions& opts) {
  SimplexEngine engine(model, opts);
  return engine.solve();
}

}  // namespace cgraf::milp
