#include "milp/simplex.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "milp/lu.h"
#include "util/check.h"

namespace cgraf::milp {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kFeasible: return "feasible";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterLimit: return "iteration-limit";
    case SolveStatus::kTimeLimit: return "time-limit";
    case SolveStatus::kNodeLimit: return "node-limit";
    case SolveStatus::kNumericalError: return "numerical-error";
  }
  return "?";
}

namespace {

constexpr double kPivotZero = 1e-9;   // |w_i| below this cannot pivot
constexpr long kBlandTrigger = 2000;  // stalled iterations before Bland mode

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// All mutable state of one solve, kept together so helper lambdas stay small.
struct Work {
  int n = 0, m = 0, total = 0;
  const CscMatrix* a = nullptr;
  std::vector<double> lb, ub;        // size total
  std::vector<double> cost;          // size total, minimization
  std::vector<ColStatus> status;     // size total
  std::vector<int> basis;            // size m: column at each basis position
  std::vector<double> x;             // size total
  BasisLu lu;
};

}  // namespace

SimplexEngine::SimplexEngine(const Model& model, LpOptions opts)
    : opts_(opts) {
  n_ = model.num_vars();
  m_ = model.num_constraints();
  a_ = build_computational_form(model);
  sign_ = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

  cost_.assign(static_cast<size_t>(n_ + m_), 0.0);
  model_lb_.resize(static_cast<size_t>(n_));
  model_ub_.resize(static_cast<size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    const Variable& v = model.var(j);
    cost_[static_cast<size_t>(j)] = sign_ * v.obj;
    model_lb_[static_cast<size_t>(j)] = v.lb;
    model_ub_[static_cast<size_t>(j)] = v.ub;
  }
  slack_lb_.resize(static_cast<size_t>(m_));
  slack_ub_.resize(static_cast<size_t>(m_));
  for (int r = 0; r < m_; ++r) {
    slack_lb_[static_cast<size_t>(r)] = model.constraint(r).lb;
    slack_ub_[static_cast<size_t>(r)] = model.constraint(r).ub;
  }
}

LpResult SimplexEngine::solve(const std::vector<ColStatus>* warm) {
  return solve(model_lb_, model_ub_, warm);
}

LpResult SimplexEngine::solve(const std::vector<double>& lb,
                              const std::vector<double>& ub,
                              const std::vector<ColStatus>* warm) {
  CGRAF_ASSERT(static_cast<int>(lb.size()) == n_);
  CGRAF_ASSERT(static_cast<int>(ub.size()) == n_);
  const double t_start = now_seconds();
  const double tolf = opts_.tol_feas;
  const double told = opts_.tol_cost;

  Work w;
  w.n = n_;
  w.m = m_;
  w.total = n_ + m_;
  w.a = &a_;
  w.lb.resize(static_cast<size_t>(w.total));
  w.ub.resize(static_cast<size_t>(w.total));
  for (int j = 0; j < n_; ++j) {
    w.lb[static_cast<size_t>(j)] = lb[static_cast<size_t>(j)];
    w.ub[static_cast<size_t>(j)] = ub[static_cast<size_t>(j)];
  }
  for (int r = 0; r < m_; ++r) {
    w.lb[static_cast<size_t>(n_ + r)] = slack_lb_[static_cast<size_t>(r)];
    w.ub[static_cast<size_t>(n_ + r)] = slack_ub_[static_cast<size_t>(r)];
  }
  w.cost = cost_;

  auto default_status = [&](int j) {
    const double l = w.lb[static_cast<size_t>(j)];
    const double u = w.ub[static_cast<size_t>(j)];
    if (l != -kInf) return ColStatus::kAtLower;
    if (u != kInf) return ColStatus::kAtUpper;
    return ColStatus::kFreeZero;
  };

  // --- Build initial basis: warm start when usable, slack basis otherwise.
  bool warmed = false;
  if (warm != nullptr && static_cast<int>(warm->size()) == w.total) {
    w.status = *warm;
    w.basis.clear();
    for (int j = 0; j < w.total; ++j) {
      if (w.status[static_cast<size_t>(j)] == ColStatus::kBasic)
        w.basis.push_back(j);
    }
    if (static_cast<int>(w.basis.size()) == m_ &&
        w.lu.factorize(a_, w.basis)) {
      // Sanitize nonbasic statuses against the (possibly tightened) bounds.
      for (int j = 0; j < w.total; ++j) {
        ColStatus& s = w.status[static_cast<size_t>(j)];
        if (s == ColStatus::kBasic) continue;
        if (s == ColStatus::kAtLower && w.lb[static_cast<size_t>(j)] == -kInf)
          s = default_status(j);
        if (s == ColStatus::kAtUpper && w.ub[static_cast<size_t>(j)] == kInf)
          s = default_status(j);
      }
      warmed = true;
    }
  }
  if (!warmed) {
    w.status.assign(static_cast<size_t>(w.total), ColStatus::kAtLower);
    w.basis.resize(static_cast<size_t>(m_));
    for (int j = 0; j < n_; ++j) w.status[static_cast<size_t>(j)] = default_status(j);
    for (int r = 0; r < m_; ++r) {
      w.basis[static_cast<size_t>(r)] = n_ + r;
      w.status[static_cast<size_t>(n_ + r)] = ColStatus::kBasic;
    }
    const bool ok = w.lu.factorize(a_, w.basis);
    CGRAF_ASSERT(ok);  // slack basis is -I, always nonsingular
  }

  w.x.assign(static_cast<size_t>(w.total), 0.0);
  auto nonbasic_value = [&](int j) {
    switch (w.status[static_cast<size_t>(j)]) {
      case ColStatus::kAtLower: return w.lb[static_cast<size_t>(j)];
      case ColStatus::kAtUpper: return w.ub[static_cast<size_t>(j)];
      default: return 0.0;
    }
  };

  std::vector<double> rhs(static_cast<size_t>(m_));
  auto recompute_basics = [&] {
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (int j = 0; j < w.total; ++j) {
      if (w.status[static_cast<size_t>(j)] == ColStatus::kBasic) continue;
      const double v = nonbasic_value(j);
      w.x[static_cast<size_t>(j)] = v;
      if (v != 0.0) a_.axpy_col(j, -v, rhs);
    }
    w.lu.ftran(rhs);
    for (int i = 0; i < m_; ++i)
      w.x[static_cast<size_t>(w.basis[static_cast<size_t>(i)])] =
          rhs[static_cast<size_t>(i)];
  };
  recompute_basics();

  auto total_infeasibility = [&] {
    double s = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int j = w.basis[static_cast<size_t>(i)];
      const double xj = w.x[static_cast<size_t>(j)];
      s += std::max(0.0, xj - w.ub[static_cast<size_t>(j)]);
      s += std::max(0.0, w.lb[static_cast<size_t>(j)] - xj);
    }
    return s;
  };

  LpResult res;
  std::vector<double> y(static_cast<size_t>(m_));
  std::vector<double> spike(static_cast<size_t>(m_));
  long stalled = 0;
  double last_progress_metric = kInf;
  bool last_phase1 = true;

  auto finish = [&](SolveStatus st) {
    res.status = st;
    res.seconds = now_seconds() - t_start;
    res.basis = w.status;
    res.x.assign(w.x.begin(), w.x.begin() + n_);
    double obj = 0.0;
    for (int j = 0; j < n_; ++j)
      obj += cost_[static_cast<size_t>(j)] * w.x[static_cast<size_t>(j)];
    res.obj = sign_ * obj;
    return res;
  };

  for (long iter = 0;; ++iter) {
    if (iter >= opts_.max_iters) return finish(SolveStatus::kIterLimit);
    if ((iter & 127) == 0 && now_seconds() - t_start > opts_.time_limit_s)
      return finish(SolveStatus::kTimeLimit);
    res.iterations = iter;

    // --- Phase detection and (possibly composite) cost of the basics.
    bool phase1 = false;
    std::fill(y.begin(), y.end(), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int j = w.basis[static_cast<size_t>(i)];
      const double xj = w.x[static_cast<size_t>(j)];
      if (xj > w.ub[static_cast<size_t>(j)] + tolf) {
        y[static_cast<size_t>(i)] = 1.0;  // minimize overshoot
        phase1 = true;
      } else if (xj < w.lb[static_cast<size_t>(j)] - tolf) {
        y[static_cast<size_t>(i)] = -1.0;
        phase1 = true;
      }
    }
    if (!phase1) {
      for (int i = 0; i < m_; ++i)
        y[static_cast<size_t>(i)] =
            w.cost[static_cast<size_t>(w.basis[static_cast<size_t>(i)])];
    }
    w.lu.btran(y);

    // --- Stall detection drives the Bland anti-cycling fallback. The
    // metric is phase-specific, so reset the tracker on phase changes.
    if (phase1 != last_phase1) {
      stalled = 0;
      last_progress_metric = kInf;
      last_phase1 = phase1;
    }
    const double metric = phase1 ? total_infeasibility() : [&] {
      double o = 0.0;
      for (int j = 0; j < w.total; ++j)
        o += w.cost[static_cast<size_t>(j)] * w.x[static_cast<size_t>(j)];
      return o;
    }();
    if (metric < last_progress_metric - 1e-11) {
      stalled = 0;
      last_progress_metric = metric;
    } else {
      ++stalled;
    }
    const bool bland = stalled > kBlandTrigger;

    // --- Pricing.
    int enter = -1;
    double enter_d = 0.0;
    double best_score = told;
    for (int j = 0; j < w.total; ++j) {
      const ColStatus s = w.status[static_cast<size_t>(j)];
      if (s == ColStatus::kBasic) continue;
      if (w.lb[static_cast<size_t>(j)] == w.ub[static_cast<size_t>(j)])
        continue;  // fixed, can never move
      const double cj = phase1 ? 0.0 : w.cost[static_cast<size_t>(j)];
      const double d = cj - a_.dot_col(j, y);
      bool eligible = false;
      if (s == ColStatus::kAtLower) eligible = d < -told;
      else if (s == ColStatus::kAtUpper) eligible = d > told;
      else eligible = std::abs(d) > told;  // free
      if (!eligible) continue;
      if (bland) {  // first eligible index
        enter = j;
        enter_d = d;
        break;
      }
      if (std::abs(d) > best_score) {
        best_score = std::abs(d);
        enter = j;
        enter_d = d;
      }
    }

    if (enter < 0) {
      if (phase1) {
        return total_infeasibility() > 10 * tolf
                   ? finish(SolveStatus::kInfeasible)
                   : finish(SolveStatus::kOptimal);
      }
      return finish(SolveStatus::kOptimal);
    }

    const double dir = (w.status[static_cast<size_t>(enter)] ==
                        ColStatus::kAtUpper)
                           ? -1.0
                           : (enter_d < 0.0 ? 1.0 : -1.0);

    // --- FTRAN the entering column.
    std::fill(spike.begin(), spike.end(), 0.0);
    a_.axpy_col(enter, 1.0, spike);
    w.lu.ftran(spike);

    // --- Ratio test. Basic i changes at rate -dir*spike[i] per unit step.
    double t_limit = w.ub[static_cast<size_t>(enter)] -
                     w.lb[static_cast<size_t>(enter)];  // may be inf
    if (w.status[static_cast<size_t>(enter)] == ColStatus::kFreeZero)
      t_limit = kInf;
    int leave_pos = -1;
    ColStatus leave_to = ColStatus::kAtLower;
    double leave_w = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double wi = spike[static_cast<size_t>(i)];
      if (std::abs(wi) <= kPivotZero) continue;
      const double rate = -dir * wi;
      const int j = w.basis[static_cast<size_t>(i)];
      const double xj = w.x[static_cast<size_t>(j)];
      const double l = w.lb[static_cast<size_t>(j)];
      const double u = w.ub[static_cast<size_t>(j)];
      double limit = kInf;
      ColStatus target = ColStatus::kAtLower;
      if (phase1 && xj > u + tolf) {
        if (rate < 0.0) {  // coming down toward the violated upper bound
          limit = (xj - u) / -rate;
          target = ColStatus::kAtUpper;
        }
      } else if (phase1 && xj < l - tolf) {
        if (rate > 0.0) {
          limit = (l - xj) / rate;
          target = ColStatus::kAtLower;
        }
      } else if (rate < 0.0) {
        if (l != -kInf) {
          limit = (xj - l) / -rate;
          target = ColStatus::kAtLower;
        }
      } else {
        if (u != kInf) {
          limit = (u - xj) / rate;
          target = ColStatus::kAtUpper;
        }
      }
      if (limit == kInf) continue;
      limit = std::max(limit, 0.0);
      if (limit < t_limit - 1e-12 ||
          (limit < t_limit + 1e-12 &&
           (leave_pos < 0 || std::abs(wi) > std::abs(leave_w)))) {
        t_limit = limit;
        leave_pos = i;
        leave_to = target;
        leave_w = wi;
      }
    }

    if (t_limit == kInf) {
      return phase1 ? finish(SolveStatus::kNumericalError)
                    : finish(SolveStatus::kUnbounded);
    }

    // --- Apply the step.
    const double step = t_limit;
    if (step != 0.0) {
      for (int i = 0; i < m_; ++i) {
        const double wi = spike[static_cast<size_t>(i)];
        if (wi == 0.0) continue;
        w.x[static_cast<size_t>(w.basis[static_cast<size_t>(i)])] -=
            dir * wi * step;
      }
      w.x[static_cast<size_t>(enter)] += dir * step;
    }

    if (leave_pos < 0) {
      // Bound flip: the entering variable traversed its whole range.
      w.status[static_cast<size_t>(enter)] =
          dir > 0 ? ColStatus::kAtUpper : ColStatus::kAtLower;
      w.x[static_cast<size_t>(enter)] =
          nonbasic_value(enter);  // snap exactly to the bound
      continue;
    }

    // --- Basis change.
    const int leave = w.basis[static_cast<size_t>(leave_pos)];
    w.status[static_cast<size_t>(leave)] = leave_to;
    w.x[static_cast<size_t>(leave)] =
        leave_to == ColStatus::kAtLower ? w.lb[static_cast<size_t>(leave)]
                                        : w.ub[static_cast<size_t>(leave)];
    w.status[static_cast<size_t>(enter)] = ColStatus::kBasic;
    w.basis[static_cast<size_t>(leave_pos)] = enter;

    const bool need_refactor =
        w.lu.num_updates() >= opts_.refactor_interval ||
        !w.lu.update(spike, leave_pos);
    if (need_refactor) {
      if (!w.lu.factorize(a_, w.basis))
        return finish(SolveStatus::kNumericalError);
      recompute_basics();
    }
  }
}

LpResult solve_lp(const Model& model, const LpOptions& opts) {
  SimplexEngine engine(model, opts);
  return engine.solve();
}

}  // namespace cgraf::milp
