// Column-compressed sparse matrix used by the simplex engine.
#pragma once

#include <cstddef>
#include <vector>

namespace cgraf::milp {

class Model;

// Compressed sparse column matrix. Row indices within a column are sorted.
struct CscMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int> col_start;  // size cols+1
  std::vector<int> row_idx;    // size nnz
  std::vector<double> value;   // size nnz

  int nnz() const { return static_cast<int>(row_idx.size()); }

  // Iterate column j as (row, value) pairs via [begin(j), end(j)).
  int begin(int j) const { return col_start[static_cast<size_t>(j)]; }
  int end(int j) const { return col_start[static_cast<size_t>(j) + 1]; }

  // y += alpha * column(j), y dense of size `rows`.
  void axpy_col(int j, double alpha, std::vector<double>& y) const;

  // Dot product of column(j) with dense vector y.
  double dot_col(int j, const std::vector<double>& y) const;
};

// Row-major mirror of a CscMatrix. The simplex pricing update needs the
// product rho^T A for a sparse rho, which is only cheap when the rows of A
// can be scattered directly; column indices within a row are sorted.
struct RowMajorMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<int> row_start;  // size rows+1
  std::vector<int> col_idx;    // size nnz
  std::vector<double> value;   // size nnz

  int begin(int i) const { return row_start[static_cast<size_t>(i)]; }
  int end(int i) const { return row_start[static_cast<size_t>(i) + 1]; }
};

RowMajorMatrix build_row_major(const CscMatrix& a);

// One (row, col, value) entry for from_triplets ingestion.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

// Builds a canonical CscMatrix from an unordered triplet list. Duplicate
// (row, col) entries are merged by summation — the same policy as
// Model::add_constraint — and entries that cancel to exactly zero are
// dropped. Out-of-range indices assert.
CscMatrix from_triplets(int rows, int cols, std::vector<Triplet> triplets);

// True when `a` is in canonical form: monotone col_start spanning exactly
// row_idx/value, row indices in range and strictly increasing within each
// column (hence no duplicate (row, col) entries), and all values finite.
// Everything downstream of the simplex engine assumes this shape;
// from_triplets and build_computational_form guarantee it (DCHECK'd).
bool is_canonical(const CscMatrix& a);

// Builds the simplex "computational form" matrix for a model:
//   columns [0, n_struct)           structural variables,
//   columns [n_struct, n_struct+m)  one slack per row with coefficient -1,
// so that every constraint reads  a_r . x - s_r = 0  with the slack bounded
// by the constraint's range. All RHS values are zero by construction.
CscMatrix build_computational_form(const Model& model);

}  // namespace cgraf::milp
