#include "milp/model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cgraf::milp {

int Model::add_var(double lb, double ub, double obj, VarType type,
                   std::string name) {
  CGRAF_ASSERT(lb <= ub);
  CGRAF_ASSERT(!std::isnan(lb) && !std::isnan(ub) && !std::isnan(obj));
  vars_.push_back(Variable{lb, ub, obj, type, std::move(name)});
  return static_cast<int>(vars_.size()) - 1;
}

int Model::add_constraint(std::vector<std::pair<int, double>> terms, double lb,
                          double ub, std::string name) {
  CGRAF_ASSERT(lb <= ub);
  // Merge duplicate indices and drop exact zeros so downstream sparse
  // structures stay canonical.
  std::sort(terms.begin(), terms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<int, double>> merged;
  merged.reserve(terms.size());
  for (const auto& [idx, coeff] : terms) {
    CGRAF_ASSERT(idx >= 0 && idx < num_vars());
    if (!merged.empty() && merged.back().first == idx) {
      merged.back().second += coeff;
    } else {
      merged.emplace_back(idx, coeff);
    }
  }
  std::erase_if(merged, [](const auto& t) { return t.second == 0.0; });
  cons_.push_back(Constraint{std::move(merged), lb, ub, std::move(name)});
  return static_cast<int>(cons_.size()) - 1;
}

void Model::set_bounds(int var, double lb, double ub) {
  CGRAF_ASSERT(var >= 0 && var < num_vars());
  CGRAF_ASSERT(lb <= ub);
  vars_[static_cast<size_t>(var)].lb = lb;
  vars_[static_cast<size_t>(var)].ub = ub;
}

void Model::set_constraint_bounds(int row, double lb, double ub) {
  CGRAF_ASSERT(row >= 0 && row < num_constraints());
  CGRAF_ASSERT(lb <= ub);
  CGRAF_ASSERT(!std::isnan(lb) && !std::isnan(ub));
  cons_[static_cast<size_t>(row)].lb = lb;
  cons_[static_cast<size_t>(row)].ub = ub;
}

void Model::set_obj(int var, double coeff) {
  CGRAF_ASSERT(var >= 0 && var < num_vars());
  vars_[static_cast<size_t>(var)].obj = coeff;
}

void Model::relax_var(int var) {
  CGRAF_ASSERT(var >= 0 && var < num_vars());
  vars_[static_cast<size_t>(var)].type = VarType::kContinuous;
}

bool Model::has_integers() const {
  return std::any_of(vars_.begin(), vars_.end(), [](const Variable& v) {
    return v.type != VarType::kContinuous;
  });
}

double Model::max_violation(const std::vector<double>& x,
                            bool check_integrality) const {
  CGRAF_ASSERT(x.size() == vars_.size());
  double worst = 0.0;
  for (int j = 0; j < num_vars(); ++j) {
    const Variable& v = vars_[static_cast<size_t>(j)];
    const double xj = x[static_cast<size_t>(j)];
    worst = std::max(worst, v.lb - xj);
    worst = std::max(worst, xj - v.ub);
    if (check_integrality && v.type != VarType::kContinuous) {
      worst = std::max(worst, std::abs(xj - std::round(xj)));
    }
  }
  for (const Constraint& c : cons_) {
    double a = 0.0;
    for (const auto& [idx, coeff] : c.terms)
      a += coeff * x[static_cast<size_t>(idx)];
    if (c.lb != -kInf) worst = std::max(worst, c.lb - a);
    if (c.ub != kInf) worst = std::max(worst, a - c.ub);
  }
  return worst;
}

double Model::objective_value(const std::vector<double>& x) const {
  CGRAF_ASSERT(x.size() == vars_.size());
  double obj = 0.0;
  for (int j = 0; j < num_vars(); ++j)
    obj += vars_[static_cast<size_t>(j)].obj * x[static_cast<size_t>(j)];
  return obj;
}

}  // namespace cgraf::milp
