#include "milp/sparse.h"

#include "milp/model.h"
#include "util/check.h"

namespace cgraf::milp {

void CscMatrix::axpy_col(int j, double alpha, std::vector<double>& y) const {
  CGRAF_DCHECK(j >= 0 && j < cols);
  for (int p = begin(j); p < end(j); ++p)
    y[static_cast<size_t>(row_idx[static_cast<size_t>(p)])] +=
        alpha * value[static_cast<size_t>(p)];
}

double CscMatrix::dot_col(int j, const std::vector<double>& y) const {
  CGRAF_DCHECK(j >= 0 && j < cols);
  double acc = 0.0;
  for (int p = begin(j); p < end(j); ++p)
    acc += value[static_cast<size_t>(p)] *
           y[static_cast<size_t>(row_idx[static_cast<size_t>(p)])];
  return acc;
}

RowMajorMatrix build_row_major(const CscMatrix& a) {
  RowMajorMatrix r;
  r.rows = a.rows;
  r.cols = a.cols;
  r.row_start.assign(static_cast<size_t>(a.rows) + 1, 0);
  for (const int i : a.row_idx) ++r.row_start[static_cast<size_t>(i) + 1];
  for (int i = 0; i < a.rows; ++i)
    r.row_start[static_cast<size_t>(i) + 1] +=
        r.row_start[static_cast<size_t>(i)];
  r.col_idx.resize(a.row_idx.size());
  r.value.resize(a.value.size());
  std::vector<int> fill(static_cast<size_t>(a.rows), 0);
  // Columns are visited in increasing order, so each row's entries come out
  // sorted by column.
  for (int j = 0; j < a.cols; ++j) {
    for (int p = a.begin(j); p < a.end(j); ++p) {
      const int i = a.row_idx[static_cast<size_t>(p)];
      const int q = r.row_start[static_cast<size_t>(i)] +
                    fill[static_cast<size_t>(i)]++;
      r.col_idx[static_cast<size_t>(q)] = j;
      r.value[static_cast<size_t>(q)] = a.value[static_cast<size_t>(p)];
    }
  }
  return r;
}

CscMatrix build_computational_form(const Model& model) {
  const int m = model.num_constraints();
  const int n = model.num_vars();

  // Count entries per structural column.
  std::vector<int> count(static_cast<size_t>(n), 0);
  for (int r = 0; r < m; ++r) {
    for (const auto& [idx, coeff] : model.constraint(r).terms) {
      (void)coeff;
      ++count[static_cast<size_t>(idx)];
    }
  }

  CscMatrix a;
  a.rows = m;
  a.cols = n + m;
  a.col_start.assign(static_cast<size_t>(a.cols) + 1, 0);
  for (int j = 0; j < n; ++j)
    a.col_start[static_cast<size_t>(j) + 1] =
        a.col_start[static_cast<size_t>(j)] + count[static_cast<size_t>(j)];
  for (int r = 0; r < m; ++r)  // slack columns: one entry each
    a.col_start[static_cast<size_t>(n + r) + 1] =
        a.col_start[static_cast<size_t>(n + r)] + 1;

  a.row_idx.resize(static_cast<size_t>(a.col_start.back()));
  a.value.resize(static_cast<size_t>(a.col_start.back()));

  // Fill structural columns; rows are visited in increasing order, so row
  // indices within each column end up sorted.
  std::vector<int> fill(static_cast<size_t>(n), 0);
  for (int r = 0; r < m; ++r) {
    for (const auto& [idx, coeff] : model.constraint(r).terms) {
      const int p =
          a.col_start[static_cast<size_t>(idx)] + fill[static_cast<size_t>(idx)]++;
      a.row_idx[static_cast<size_t>(p)] = r;
      a.value[static_cast<size_t>(p)] = coeff;
    }
  }
  for (int r = 0; r < m; ++r) {
    const int p = a.col_start[static_cast<size_t>(n + r)];
    a.row_idx[static_cast<size_t>(p)] = r;
    a.value[static_cast<size_t>(p)] = -1.0;
  }
  return a;
}

}  // namespace cgraf::milp
