#include "milp/sparse.h"

#include <algorithm>
#include <cmath>

#include "milp/model.h"
#include "util/check.h"

namespace cgraf::milp {

void CscMatrix::axpy_col(int j, double alpha, std::vector<double>& y) const {
  CGRAF_DCHECK(j >= 0 && j < cols);
  for (int p = begin(j); p < end(j); ++p)
    y[static_cast<size_t>(row_idx[static_cast<size_t>(p)])] +=
        alpha * value[static_cast<size_t>(p)];
}

double CscMatrix::dot_col(int j, const std::vector<double>& y) const {
  CGRAF_DCHECK(j >= 0 && j < cols);
  double acc = 0.0;
  for (int p = begin(j); p < end(j); ++p)
    acc += value[static_cast<size_t>(p)] *
           y[static_cast<size_t>(row_idx[static_cast<size_t>(p)])];
  return acc;
}

RowMajorMatrix build_row_major(const CscMatrix& a) {
  RowMajorMatrix r;
  r.rows = a.rows;
  r.cols = a.cols;
  r.row_start.assign(static_cast<size_t>(a.rows) + 1, 0);
  for (const int i : a.row_idx) ++r.row_start[static_cast<size_t>(i) + 1];
  for (int i = 0; i < a.rows; ++i)
    r.row_start[static_cast<size_t>(i) + 1] +=
        r.row_start[static_cast<size_t>(i)];
  r.col_idx.resize(a.row_idx.size());
  r.value.resize(a.value.size());
  std::vector<int> fill(static_cast<size_t>(a.rows), 0);
  // Columns are visited in increasing order, so each row's entries come out
  // sorted by column.
  for (int j = 0; j < a.cols; ++j) {
    for (int p = a.begin(j); p < a.end(j); ++p) {
      const int i = a.row_idx[static_cast<size_t>(p)];
      const int q = r.row_start[static_cast<size_t>(i)] +
                    fill[static_cast<size_t>(i)]++;
      r.col_idx[static_cast<size_t>(q)] = j;
      r.value[static_cast<size_t>(q)] = a.value[static_cast<size_t>(p)];
    }
  }
  return r;
}

CscMatrix from_triplets(int rows, int cols, std::vector<Triplet> triplets) {
  CGRAF_ASSERT(rows >= 0 && cols >= 0);
  for (const Triplet& t : triplets) {
    CGRAF_ASSERT(t.row >= 0 && t.row < rows);
    CGRAF_ASSERT(t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.col != b.col ? a.col < b.col : a.row < b.row;
            });

  CscMatrix a;
  a.rows = rows;
  a.cols = cols;
  a.col_start.assign(static_cast<size_t>(cols) + 1, 0);
  a.row_idx.reserve(triplets.size());
  a.value.reserve(triplets.size());
  for (size_t k = 0; k < triplets.size();) {
    const int col = triplets[k].col;
    const int row = triplets[k].row;
    double sum = 0.0;
    for (; k < triplets.size() && triplets[k].col == col &&
           triplets[k].row == row;
         ++k)
      sum += triplets[k].value;
    if (sum == 0.0) continue;  // cancelled duplicates stay out of the matrix
    a.row_idx.push_back(row);
    a.value.push_back(sum);
    ++a.col_start[static_cast<size_t>(col) + 1];
  }
  for (int j = 0; j < cols; ++j)
    a.col_start[static_cast<size_t>(j) + 1] +=
        a.col_start[static_cast<size_t>(j)];
  CGRAF_DCHECK(is_canonical(a));
  return a;
}

bool is_canonical(const CscMatrix& a) {
  if (a.rows < 0 || a.cols < 0) return false;
  if (a.col_start.size() != static_cast<size_t>(a.cols) + 1) return false;
  if (a.col_start.front() != 0) return false;
  if (a.col_start.back() != a.nnz()) return false;
  if (a.value.size() != a.row_idx.size()) return false;
  for (int j = 0; j < a.cols; ++j) {
    if (a.begin(j) > a.end(j)) return false;
    for (int p = a.begin(j); p < a.end(j); ++p) {
      const int r = a.row_idx[static_cast<size_t>(p)];
      if (r < 0 || r >= a.rows) return false;
      // Strictly increasing row indices rule out duplicate (row, col) pairs.
      if (p > a.begin(j) && a.row_idx[static_cast<size_t>(p) - 1] >= r)
        return false;
      if (!std::isfinite(a.value[static_cast<size_t>(p)])) return false;
    }
  }
  return true;
}

CscMatrix build_computational_form(const Model& model) {
  const int m = model.num_constraints();
  const int n = model.num_vars();

  // Count entries per structural column.
  std::vector<int> count(static_cast<size_t>(n), 0);
  for (int r = 0; r < m; ++r) {
    for (const auto& [idx, coeff] : model.constraint(r).terms) {
      (void)coeff;
      ++count[static_cast<size_t>(idx)];
    }
  }

  CscMatrix a;
  a.rows = m;
  a.cols = n + m;
  a.col_start.assign(static_cast<size_t>(a.cols) + 1, 0);
  for (int j = 0; j < n; ++j)
    a.col_start[static_cast<size_t>(j) + 1] =
        a.col_start[static_cast<size_t>(j)] + count[static_cast<size_t>(j)];
  for (int r = 0; r < m; ++r)  // slack columns: one entry each
    a.col_start[static_cast<size_t>(n + r) + 1] =
        a.col_start[static_cast<size_t>(n + r)] + 1;

  a.row_idx.resize(static_cast<size_t>(a.col_start.back()));
  a.value.resize(static_cast<size_t>(a.col_start.back()));

  // Fill structural columns; rows are visited in increasing order, so row
  // indices within each column end up sorted.
  std::vector<int> fill(static_cast<size_t>(n), 0);
  for (int r = 0; r < m; ++r) {
    for (const auto& [idx, coeff] : model.constraint(r).terms) {
      const int p =
          a.col_start[static_cast<size_t>(idx)] + fill[static_cast<size_t>(idx)]++;
      a.row_idx[static_cast<size_t>(p)] = r;
      a.value[static_cast<size_t>(p)] = coeff;
    }
  }
  for (int r = 0; r < m; ++r) {
    const int p = a.col_start[static_cast<size_t>(n + r)];
    a.row_idx[static_cast<size_t>(p)] = r;
    a.value[static_cast<size_t>(p)] = -1.0;
  }
  // Model::add_constraint canonicalizes each row, so the result must be
  // canonical too — a duplicate (row, col) pair here means row terms were
  // mutated behind the model's back.
  CGRAF_DCHECK(is_canonical(a));
  return a;
}

}  // namespace cgraf::milp
