// Bounded-variable revised primal simplex with sparse LU basis handling.
//
// The engine solves the LP relaxation of a Model. Branch & bound constructs
// one engine per model and re-solves with per-node structural bound
// overrides and warm-started bases, so the (potentially large) constraint
// matrix is standardized only once.
#pragma once

#include <vector>

#include "milp/model.h"
#include "milp/sparse.h"

namespace cgraf::milp {

enum class SolveStatus {
  kOptimal,     // proven optimal (LP) / gap closed (MIP)
  kFeasible,    // feasible incumbent, optimality not proven (limit hit)
  kInfeasible,  // proven infeasible
  kUnbounded,   // LP unbounded
  kIterLimit,   // iteration limit without a feasible point
  kTimeLimit,   // time limit without a feasible point
  kNodeLimit,   // node limit without a feasible point (MIP)
  kNumericalError,
};

const char* to_string(SolveStatus s);

// Entering-variable selection scheme for the (feasible) phase-2 iterations.
enum class Pricing {
  // Recompute every nonbasic reduced cost from scratch each iteration and
  // take the most negative (textbook Dantzig). O(nnz(A)) per pivot.
  kFullDantzig,
  // Maintain the reduced-cost vector incrementally across pivots (one extra
  // sparse BTRAN per basis change) and select from a rotating candidate
  // bucket of attractive columns, with periodic full refreshes and an exact
  // full-pricing confirmation before optimality is declared. Same optima,
  // much cheaper pivots on large sparse models.
  kCandidateList,
};

struct LpOptions {
  long max_iters = 500000;
  double time_limit_s = 1e18;
  double tol_feas = 1e-7;   // bound/row feasibility tolerance
  double tol_cost = 1e-7;   // reduced-cost (dual) tolerance
  int refactor_interval = 100;
  Pricing pricing = Pricing::kCandidateList;
  // Candidate bucket size; 0 picks clamp(total_cols / 8, 16, 512).
  int candidate_bucket = 0;
  // Full reduced-cost refresh at least every this many incremental updates
  // (numerical hygiene; refactorizations force one too).
  int pricing_refresh_interval = 64;
};

// Nonbasic/basic status of one column, used for warm starts.
enum class ColStatus : signed char {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kFreeZero = 3,
};

// Per-stage instrumentation of one or more solves. Additive so branch &
// bound / the two-step driver can aggregate across LPs and across threads.
struct LpStageStats {
  double pricing_seconds = 0.0;  // entering-column selection + d[] upkeep
  double ftran_seconds = 0.0;    // entering-column FTRANs
  double btran_seconds = 0.0;    // dual/pricing BTRANs
  double factor_seconds = 0.0;   // basis (re)factorizations
  long phase1_iterations = 0;    // iterations spent restoring feasibility
  long full_refreshes = 0;       // full reduced-cost recomputations
  long bucket_rebuilds = 0;      // candidate bucket rebuilds
  long incremental_updates = 0;  // pivots priced via the incremental path

  void add(const LpStageStats& o) {
    pricing_seconds += o.pricing_seconds;
    ftran_seconds += o.ftran_seconds;
    btran_seconds += o.btran_seconds;
    factor_seconds += o.factor_seconds;
    phase1_iterations += o.phase1_iterations;
    full_refreshes += o.full_refreshes;
    bucket_rebuilds += o.bucket_rebuilds;
    incremental_updates += o.incremental_updates;
  }
};

struct LpResult {
  SolveStatus status = SolveStatus::kNumericalError;
  double obj = 0.0;                // in the model's original sense
  std::vector<double> x;           // structural variable values
  long iterations = 0;
  double seconds = 0.0;
  std::vector<ColStatus> basis;    // size n+m, for warm starting
  // The supplied warm basis was actually used. False when no basis was
  // given, when it was stale (wrong size / wrong basic count), or when its
  // factorization was singular — all of which silently restart from the
  // slack basis. Callers chaining bases across re-solves (the ST_target
  // probe sessions) use this to count warm hits vs fallbacks.
  bool warm_used = false;
  LpStageStats stats;
};

class SimplexEngine {
 public:
  explicit SimplexEngine(const Model& model, LpOptions opts = {});

  // Solves with the given structural bounds (size n). `warm`, when given,
  // must be a basis vector previously returned by this engine.
  LpResult solve(const std::vector<double>& lb, const std::vector<double>& ub,
                 const std::vector<ColStatus>* warm = nullptr);

  // Solves with the model's own bounds.
  LpResult solve(const std::vector<ColStatus>* warm = nullptr);

  void set_options(const LpOptions& opts) { opts_ = opts; }

  // Re-ranges one row's bounds after construction (an RHS patch). The
  // constraint matrix is untouched, so previously returned bases remain
  // structurally valid warm starts: only the slack column's bounds move.
  void set_row_bounds(int row, double lb, double ub);

  int num_structural() const { return n_; }
  const std::vector<double>& model_lb() const { return model_lb_; }
  const std::vector<double>& model_ub() const { return model_ub_; }

 private:
  int n_ = 0;  // structural columns
  int m_ = 0;  // rows == slack columns
  CscMatrix a_;                 // n_ structural + m_ slack columns
  RowMajorMatrix a_rows_;       // row-major mirror for pricing updates
  std::vector<double> cost_;    // size n_+m_, minimization sense
  std::vector<double> model_lb_, model_ub_;  // structural bounds (size n_)
  std::vector<double> slack_lb_, slack_ub_;  // slack bounds (size m_)
  double sign_ = 1.0;           // +1 minimize, -1 maximize
  LpOptions opts_;
};

// One-shot convenience wrapper.
LpResult solve_lp(const Model& model, const LpOptions& opts = {});

}  // namespace cgraf::milp
