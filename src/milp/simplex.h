// Bounded-variable revised primal simplex with sparse LU basis handling.
//
// The engine solves the LP relaxation of a Model. Branch & bound constructs
// one engine per model and re-solves with per-node structural bound
// overrides and warm-started bases, so the (potentially large) constraint
// matrix is standardized only once.
#pragma once

#include <atomic>
#include <vector>

#include "milp/model.h"
#include "milp/sparse.h"

namespace cgraf::obs {
class EventLog;
}  // namespace cgraf::obs

namespace cgraf::milp {

enum class SolveStatus {
  kOptimal,     // proven optimal (LP) / gap closed (MIP)
  kFeasible,    // feasible incumbent, optimality not proven (limit hit)
  kInfeasible,  // proven infeasible
  kUnbounded,   // LP unbounded
  kIterLimit,   // iteration limit without a feasible point
  kTimeLimit,   // time limit without a feasible point
  kNodeLimit,   // node limit without a feasible point (MIP)
  kNumericalError,
  kCancelled,   // external cancel flag raised (portfolio race loser)
};

const char* to_string(SolveStatus s);

// Entering-variable selection scheme for the (feasible) phase-2 iterations.
enum class Pricing {
  // Recompute every nonbasic reduced cost from scratch each iteration and
  // take the most negative (textbook Dantzig). O(nnz(A)) per pivot.
  kFullDantzig,
  // Maintain the reduced-cost vector incrementally across pivots (one extra
  // sparse BTRAN per basis change) and select from a rotating candidate
  // bucket of attractive columns, with periodic full refreshes and an exact
  // full-pricing confirmation before optimality is declared. Same optima,
  // much cheaper pivots on large sparse models.
  kCandidateList,
};

// Which simplex variant drives a solve. The dual loop never decides
// optimality on its own: whenever it reaches primal feasibility (or gives
// up for numerical reasons) control falls through to the primal loop, which
// certifies optimality with exact pricing. Statuses and objectives are
// therefore identical across all three settings; only the pivot sequence
// (and hence the iteration/time profile) differs.
enum class LpAlgorithm {
  // The original two-phase primal simplex, warm or cold.
  kPrimal,
  // Dual simplex whenever the starting basis (warm or slack) can be made
  // dual-feasible by flipping boxed nonbasic columns; primal otherwise.
  kDual,
  // Dual simplex iff a usable warm basis was supplied and is dual-feasible
  // after the bound change — the B&B-child / probe-chain case, where costs
  // and matrix are unchanged so the parent's optimal basis stays dual
  // feasible. Falls back to primal (keeping the warm basis) otherwise.
  kAutoWarm,
};

const char* to_string(LpAlgorithm a);

// Leaving-row selection weights for the dual loop.
enum class DualPricing {
  // Dual steepest edge (Forrest–Goldfarb): w_i ~ ||B^-T e_i||^2, updated
  // incrementally each pivot and recomputed exactly every
  // dse_recompute_interval iterations.
  kSteepestEdge,
  // Devex-style reference weights: cheaper upkeep (no extra FTRAN per
  // pivot), approximate, reset to 1 when they overflow.
  kDevex,
};

struct LpOptions {
  long max_iters = 500000;
  double time_limit_s = 1e18;
  double tol_feas = 1e-7;   // bound/row feasibility tolerance
  double tol_cost = 1e-7;   // reduced-cost (dual) tolerance
  int refactor_interval = 100;
  Pricing pricing = Pricing::kCandidateList;
  // Candidate bucket size; 0 picks clamp(total_cols / 8, 16, 512).
  int candidate_bucket = 0;
  // Full reduced-cost refresh at least every this many incremental updates
  // (numerical hygiene; refactorizations force one too).
  int pricing_refresh_interval = 64;
  LpAlgorithm algorithm = LpAlgorithm::kAutoWarm;
  DualPricing dual_pricing = DualPricing::kSteepestEdge;
  // Exact steepest-edge weight recompute every this many dual pivots
  // (m BTRANs each time; keeps long dual runs from drifting). <= 0 disables.
  int dse_recompute_interval = 128;
  // Debug builds cross-check incremental weights against an exact recompute
  // every this many dual pivots (CGRAF_DCHECK). <= 0 disables.
  int dse_check_interval = 64;
  // When non-null and enabled, every solve() emits one "lp.solve" record
  // here (obs/event_log.h). The analyzer's LP-iteration totals sum these,
  // so the pointer is plumbed to EVERY engine (B&B children, dive LPs,
  // probe chains) or the totals would undercount.
  obs::EventLog* events = nullptr;
  // Cooperative cancellation: when non-null and set, the iteration loops
  // stop at the next limit check and the solve returns kCancelled. The
  // pointed-to flag must outlive every solve that sees it (the portfolio
  // race owns one per attempt and raises it to stop the losing side).
  const std::atomic<bool>* cancel = nullptr;
};

// Nonbasic/basic status of one column, used for warm starts.
enum class ColStatus : signed char {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kFreeZero = 3,
};

// Per-stage instrumentation of one or more solves. Additive so branch &
// bound / the two-step driver can aggregate across LPs and across threads.
struct LpStageStats {
  double pricing_seconds = 0.0;  // entering-column selection + d[] upkeep
  double ftran_seconds = 0.0;    // entering-column FTRANs
  double btran_seconds = 0.0;    // dual/pricing BTRANs
  double factor_seconds = 0.0;   // basis (re)factorizations
  double dse_seconds = 0.0;      // dual pricing-weight upkeep + recomputes
  long phase1_iterations = 0;    // iterations spent restoring feasibility
  long full_refreshes = 0;       // full reduced-cost recomputations
  long bucket_rebuilds = 0;      // candidate bucket rebuilds
  long incremental_updates = 0;  // pivots priced via the incremental path
  long dual_iterations = 0;      // pivots taken by the dual loop
  long bound_flips = 0;          // bound-to-bound flips (dual ratio test +
                                 // dual-feasibility repair)
  long refactorizations = 0;     // basis factorizations, incl. the initial
  long steepest_edge_resets = 0;  // pricing weights re-seeded (exact
                                  // recompute or Devex overflow reset)
  long dual_fallbacks = 0;       // dual requested but basis not repairable
                                 // to dual feasibility; primal ran instead

  void add(const LpStageStats& o) {
    pricing_seconds += o.pricing_seconds;
    ftran_seconds += o.ftran_seconds;
    btran_seconds += o.btran_seconds;
    factor_seconds += o.factor_seconds;
    dse_seconds += o.dse_seconds;
    phase1_iterations += o.phase1_iterations;
    full_refreshes += o.full_refreshes;
    bucket_rebuilds += o.bucket_rebuilds;
    incremental_updates += o.incremental_updates;
    dual_iterations += o.dual_iterations;
    bound_flips += o.bound_flips;
    refactorizations += o.refactorizations;
    steepest_edge_resets += o.steepest_edge_resets;
    dual_fallbacks += o.dual_fallbacks;
  }

  LpStageStats& operator+=(const LpStageStats& o) {
    add(o);
    return *this;
  }
};

struct LpResult {
  SolveStatus status = SolveStatus::kNumericalError;
  double obj = 0.0;                // in the model's original sense
  std::vector<double> x;           // structural variable values
  long iterations = 0;
  double seconds = 0.0;
  std::vector<ColStatus> basis;    // size n+m, for warm starting
  // The supplied warm basis was actually used. False when no basis was
  // given, when it was stale (wrong size / wrong basic count), or when its
  // factorization was singular — all of which silently restart from the
  // slack basis. Callers chaining bases across re-solves (the ST_target
  // probe sessions) use this to count warm hits vs fallbacks.
  bool warm_used = false;
  // The dual simplex loop ran for this solve (kDual, or kAutoWarm with a
  // dual-feasible warm basis). The reported optimum is still certified by
  // the primal loop's exact pricing pass.
  bool dual_used = false;
  LpStageStats stats;
};

class SimplexEngine {
 public:
  explicit SimplexEngine(const Model& model, LpOptions opts = {});

  // Solves with the given structural bounds (size n). `warm`, when given,
  // must be a basis vector previously returned by this engine.
  LpResult solve(const std::vector<double>& lb, const std::vector<double>& ub,
                 const std::vector<ColStatus>* warm = nullptr);

  // Solves with the model's own bounds.
  LpResult solve(const std::vector<ColStatus>* warm = nullptr);

  void set_options(const LpOptions& opts) { opts_ = opts; }

  // Re-ranges one row's bounds after construction (an RHS patch). The
  // constraint matrix is untouched, so previously returned bases remain
  // structurally valid warm starts: only the slack column's bounds move.
  void set_row_bounds(int row, double lb, double ub);

  int num_structural() const { return n_; }
  const std::vector<double>& model_lb() const { return model_lb_; }
  const std::vector<double>& model_ub() const { return model_ub_; }

 private:
  int n_ = 0;  // structural columns
  int m_ = 0;  // rows == slack columns
  CscMatrix a_;                 // n_ structural + m_ slack columns
  RowMajorMatrix a_rows_;       // row-major mirror for pricing updates
  std::vector<double> cost_;    // size n_+m_, minimization sense
  std::vector<double> model_lb_, model_ub_;  // structural bounds (size n_)
  std::vector<double> slack_lb_, slack_ub_;  // slack bounds (size m_)
  double sign_ = 1.0;           // +1 minimize, -1 maximize
  LpOptions opts_;

  // Dual steepest-edge weight cache, carried across solves. Keyed by the
  // ordered basis column list of the previous dual run's final basis: B&B
  // workers and probe sessions re-solve on one persistent engine, and the
  // warm basis they pass back is usually exactly the basis this engine last
  // left behind, so its (expensive, exact) weights can be reused verbatim.
  std::vector<int> dse_basis_cols_;
  std::vector<double> dse_weights_;
  bool dse_exact_ = false;
};

// One-shot convenience wrapper.
LpResult solve_lp(const Model& model, const LpOptions& opts = {});

}  // namespace cgraf::milp
