// Bounded-variable revised primal simplex with sparse LU basis handling.
//
// The engine solves the LP relaxation of a Model. Branch & bound constructs
// one engine per model and re-solves with per-node structural bound
// overrides and warm-started bases, so the (potentially large) constraint
// matrix is standardized only once.
#pragma once

#include <vector>

#include "milp/model.h"
#include "milp/sparse.h"

namespace cgraf::milp {

enum class SolveStatus {
  kOptimal,     // proven optimal (LP) / gap closed (MIP)
  kFeasible,    // feasible incumbent, optimality not proven (limit hit)
  kInfeasible,  // proven infeasible
  kUnbounded,   // LP unbounded
  kIterLimit,   // iteration limit without a feasible point
  kTimeLimit,   // time limit without a feasible point
  kNodeLimit,   // node limit without a feasible point (MIP)
  kNumericalError,
};

const char* to_string(SolveStatus s);

struct LpOptions {
  long max_iters = 500000;
  double time_limit_s = 1e18;
  double tol_feas = 1e-7;   // bound/row feasibility tolerance
  double tol_cost = 1e-7;   // reduced-cost (dual) tolerance
  int refactor_interval = 100;
};

// Nonbasic/basic status of one column, used for warm starts.
enum class ColStatus : signed char {
  kBasic = 0,
  kAtLower = 1,
  kAtUpper = 2,
  kFreeZero = 3,
};

struct LpResult {
  SolveStatus status = SolveStatus::kNumericalError;
  double obj = 0.0;                // in the model's original sense
  std::vector<double> x;           // structural variable values
  long iterations = 0;
  double seconds = 0.0;
  std::vector<ColStatus> basis;    // size n+m, for warm starting
};

class SimplexEngine {
 public:
  explicit SimplexEngine(const Model& model, LpOptions opts = {});

  // Solves with the given structural bounds (size n). `warm`, when given,
  // must be a basis vector previously returned by this engine.
  LpResult solve(const std::vector<double>& lb, const std::vector<double>& ub,
                 const std::vector<ColStatus>* warm = nullptr);

  // Solves with the model's own bounds.
  LpResult solve(const std::vector<ColStatus>* warm = nullptr);

  void set_options(const LpOptions& opts) { opts_ = opts; }

  int num_structural() const { return n_; }
  const std::vector<double>& model_lb() const { return model_lb_; }
  const std::vector<double>& model_ub() const { return model_ub_; }

 private:
  int n_ = 0;  // structural columns
  int m_ = 0;  // rows == slack columns
  CscMatrix a_;                 // n_ structural + m_ slack columns
  std::vector<double> cost_;    // size n_+m_, minimization sense
  std::vector<double> model_lb_, model_ub_;  // structural bounds (size n_)
  std::vector<double> slack_lb_, slack_ub_;  // slack bounds (size m_)
  double sign_ = 1.0;           // +1 minimize, -1 maximize
  LpOptions opts_;
};

// One-shot convenience wrapper.
LpResult solve_lp(const Model& model, const LpOptions& opts = {});

}  // namespace cgraf::milp
