// Branch & bound MILP solver over the revised-simplex LP engine.
//
// Node selection is best-bound with a deepest-first tie-break, which
// degenerates to a depth-first dive on the paper's "ObjFunc: Null"
// feasibility models (every node bound is 0) — exactly the behaviour needed
// to find an integer floorplan quickly or prove that a stress target is
// infeasible.
#pragma once

#include <vector>

#include "milp/model.h"
#include "milp/simplex.h"

namespace cgraf::milp {

struct MipOptions {
  LpOptions lp;
  double time_limit_s = 1e18;
  long max_nodes = 200000;
  double int_tol = 1e-6;   // |x - round(x)| below this counts as integral
  double abs_gap = 1e-9;
  double rel_gap = 1e-6;
  // Stop as soon as any integer-feasible point is found (for pure
  // feasibility models such as the paper's "ObjFunc: Null" formulation).
  bool stop_at_first_incumbent = false;
  // Run the exact presolve reductions (milp/presolve.h) before the search.
  bool presolve = true;
};

struct MipResult {
  SolveStatus status = SolveStatus::kNumericalError;
  double obj = 0.0;         // incumbent objective (model sense)
  double best_bound = 0.0;  // proven bound (model sense)
  std::vector<double> x;    // incumbent (empty if none)
  long nodes = 0;
  long lp_iterations = 0;
  double seconds = 0.0;

  bool has_solution() const { return !x.empty(); }
};

MipResult solve_milp(const Model& model, const MipOptions& opts = {});

}  // namespace cgraf::milp
