// Branch & bound MILP solver over the revised-simplex LP engine.
//
// Node selection is best-bound with a deepest-first tie-break, which
// degenerates to a depth-first dive on the paper's "ObjFunc: Null"
// feasibility models (every node bound is 0) — exactly the behaviour needed
// to find an integer floorplan quickly or prove that a stress target is
// infeasible.
//
// The search runs on a shared best-first node pool served by num_threads
// workers, each owning a private SimplexEngine clone; see solve_milp below
// for the determinism guarantees.
#pragma once

#include <vector>

#include "milp/model.h"
#include "milp/simplex.h"

namespace cgraf::milp {

struct MipOptions {
  LpOptions lp;
  double time_limit_s = 1e18;
  long max_nodes = 200000;
  double int_tol = 1e-6;   // |x - round(x)| below this counts as integral
  double abs_gap = 1e-9;
  double rel_gap = 1e-6;
  // Stop as soon as any integer-feasible point is found (for pure
  // feasibility models such as the paper's "ObjFunc: Null" formulation).
  bool stop_at_first_incumbent = false;
  // Run the exact presolve reductions (milp/presolve.h) before the search.
  bool presolve = true;
  // Worker threads for the branch & bound search. 0 picks
  // std::thread::hardware_concurrency(); 1 runs the search inline on the
  // calling thread (no workers are spawned). Negative values are a
  // contract violation: solve_milp aborts with a clear message instead of
  // silently falling back to hardware concurrency.
  int num_threads = 0;
  // Structured solve-event log (obs/event_log.h). When set, the search
  // emits bnb.begin/bnb.node/bnb.incumbent/bnb.pool_prune/bnb.end records
  // and propagates the sink into every node LP (unless lp.events was
  // already set explicitly).
  obs::EventLog* events = nullptr;
  // Heuristic incumbent seed (full-length structural vector, model space).
  // When it validates — integral within int_tol, max constraint violation
  // within 10x lp.tol_feas — the search opens with it as the incumbent, so
  // best-bound pruning cuts against its objective from the first node. The
  // seed never satisfies stop_at_first_incumbent by itself: the tree still
  // runs until a worker finds its own incumbent or proves none beats the
  // seed (in which case the seed is returned as kOptimal). An invalid seed
  // is dropped silently (MipResult::incumbent_seeded stays false).
  const std::vector<double>* initial_incumbent = nullptr;
  // Cooperative cancellation, checked by every worker between nodes and
  // forwarded into node LPs. A cancelled run reports kCancelled unless an
  // incumbent was already found (then kFeasible, like a limit hit).
  const std::atomic<bool>* cancel = nullptr;
};

struct MipResult {
  SolveStatus status = SolveStatus::kNumericalError;
  double obj = 0.0;         // incumbent objective (model sense)
  double best_bound = 0.0;  // proven bound (model sense)
  std::vector<double> x;    // incumbent (empty if none)
  long nodes = 0;
  long lp_iterations = 0;
  double seconds = 0.0;
  int threads_used = 1;
  std::vector<long> nodes_per_thread;  // size threads_used
  LpStageStats lp_stats;               // aggregated over all node LPs
  // The initial_incumbent seed validated and entered the search as the
  // opening incumbent (regardless of whether a worker later beat it).
  bool incumbent_seeded = false;

  bool has_solution() const { return !x.empty(); }
};

// Solves the model exactly. Deterministic result semantics: a run that
// proves optimality (status kOptimal) reports the same optimal objective for
// any thread count — only node/iteration counts and which of the co-optimal
// solutions is returned may differ. Runs cut short by stop_at_first_incumbent
// or by limits may legitimately differ across thread counts.
MipResult solve_milp(const Model& model, const MipOptions& opts = {});

}  // namespace cgraf::milp
