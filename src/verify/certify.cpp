#include "verify/certify.h"

#include <cmath>

#include "cgrra/stress.h"
#include "obs/json_writer.h"
#include "verify/kahan.h"

namespace cgraf::verify {

void Certificate::fail(const CertifyOptions& opts, std::string check,
                       std::string message) {
  ok = false;
  if (static_cast<int>(issues.size()) < opts.max_issues)
    issues.push_back(CertifyIssue{std::move(check), std::move(message)});
}

std::string Certificate::summary() const {
  if (ok) return "certified";
  if (issues.empty()) return "rejected";
  return issues.front().check + ": " + issues.front().message;
}

std::string Certificate::to_json() const {
  obs::JsonWriter w;
  w.begin_object()
      .field("ok", ok)
      .field("max_row_violation", max_row_violation)
      .field("max_bound_violation", max_bound_violation)
      .field("max_int_violation", max_int_violation)
      .field("objective", objective)
      .key("issues")
      .begin_array();
  for (const CertifyIssue& i : issues) {
    w.begin_object()
        .field("check", i.check)
        .field("message", i.message)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

Certificate certify_solution(const milp::Model& model,
                             const std::vector<double>& x,
                             const CertifyOptions& opts, bool relaxed,
                             const double* claimed_obj) {
  Certificate cert;
  if (static_cast<int>(x.size()) != model.num_vars()) {
    cert.fail(opts, "shape",
              "solution has " + std::to_string(x.size()) +
                  " entries, model has " + std::to_string(model.num_vars()) +
                  " variables");
    return cert;
  }

  // Variable bounds and integrality.
  for (int j = 0; j < model.num_vars(); ++j) {
    const milp::Variable& v = model.var(j);
    const double xj = x[static_cast<std::size_t>(j)];
    if (!std::isfinite(xj)) {
      cert.fail(opts, "finite",
                "variable " + std::to_string(j) + " is not finite");
      continue;
    }
    const double bviol = std::max(v.lb - xj, xj - v.ub);
    cert.max_bound_violation = std::max(cert.max_bound_violation, bviol);
    if (bviol > opts.tol_feas * std::max({1.0, std::abs(v.lb),
                                          std::abs(v.ub)})) {
      cert.fail(opts, "bounds",
                "variable " + std::to_string(j) + " = " + std::to_string(xj) +
                    " violates [" + std::to_string(v.lb) + ", " +
                    std::to_string(v.ub) + "]");
    }
    if (!relaxed && v.type != milp::VarType::kContinuous) {
      const double iviol = std::abs(xj - std::round(xj));
      cert.max_int_violation = std::max(cert.max_int_violation, iviol);
      if (iviol > opts.tol_int) {
        cert.fail(opts, "integrality",
                  "variable " + std::to_string(j) + " = " +
                      std::to_string(xj) + " is fractional");
      }
    }
  }

  // Per-row feasibility with compensated accumulation.
  for (int r = 0; r < model.num_constraints(); ++r) {
    const milp::Constraint& c = model.constraint(r);
    const double a = kahan_dot(c.terms, x);
    double viol = 0.0;
    if (c.lb != -milp::kInf) viol = std::max(viol, c.lb - a);
    if (c.ub != milp::kInf) viol = std::max(viol, a - c.ub);
    cert.max_row_violation = std::max(cert.max_row_violation, viol);
    const double scale = std::max(
        {1.0, c.lb == -milp::kInf ? 0.0 : std::abs(c.lb),
         c.ub == milp::kInf ? 0.0 : std::abs(c.ub)});
    if (viol > opts.tol_feas * scale) {
      const std::string& name = c.name;
      cert.fail(opts, "row-feasibility",
                (name.empty() ? "row " + std::to_string(r)
                              : "row '" + name + "'") +
                    " activity " + std::to_string(a) + " outside [" +
                    std::to_string(c.lb) + ", " + std::to_string(c.ub) + "]");
    }
  }

  // Objective recomputation.
  {
    KahanSum obj;
    for (int j = 0; j < model.num_vars(); ++j)
      obj.add(model.var(j).obj * x[static_cast<std::size_t>(j)]);
    cert.objective = obj.value();
    if (claimed_obj != nullptr &&
        std::abs(cert.objective - *claimed_obj) >
            opts.tol_obj * std::max(1.0, std::abs(*claimed_obj))) {
      cert.fail(opts, "objective",
                "recomputed objective " + std::to_string(cert.objective) +
                    " != claimed " + std::to_string(*claimed_obj));
    }
  }
  return cert;
}

Certificate certify_floorplan(const FloorplanSpec& spec, const Floorplan& fp,
                              const CertifyOptions& opts) {
  Certificate cert;
  const Design& d = *spec.design;
  const Fabric& fabric = d.fabric;
  const int n_ops = d.num_ops();
  const int n_pes = fabric.num_pes();

  if (static_cast<int>(fp.op_to_pe.size()) != n_ops) {
    cert.fail(opts, "shape",
              "floorplan binds " + std::to_string(fp.op_to_pe.size()) +
                  " ops, design has " + std::to_string(n_ops));
    return cert;
  }
  for (int op = 0; op < n_ops; ++op) {
    const int pe = fp.pe_of(op);
    if (pe < 0 || pe >= n_pes) {
      cert.fail(opts, "shape",
                "op " + std::to_string(op) + " bound to PE " +
                    std::to_string(pe) + " outside the fabric");
      return cert;
    }
    const int ctx = d.ops[static_cast<std::size_t>(op)].context;
    if (ctx < 0 || ctx >= d.num_contexts) {
      cert.fail(opts, "shape",
                "op " + std::to_string(op) + " has context " +
                    std::to_string(ctx) + " outside [0, " +
                    std::to_string(d.num_contexts) + ")");
      return cert;
    }
  }

  // Exactly-one binding: no two ops of one context on the same PE.
  {
    std::vector<int> owner(
        static_cast<std::size_t>(d.num_contexts) *
            static_cast<std::size_t>(n_pes),
        -1);
    for (int op = 0; op < n_ops; ++op) {
      const int ctx = d.ops[static_cast<std::size_t>(op)].context;
      const std::size_t slot =
          static_cast<std::size_t>(ctx) * static_cast<std::size_t>(n_pes) +
          static_cast<std::size_t>(fp.pe_of(op));
      if (owner[slot] >= 0) {
        cert.fail(opts, "exclusivity",
                  "ops " + std::to_string(owner[slot]) + " and " +
                      std::to_string(op) + " share PE " +
                      std::to_string(fp.pe_of(op)) + " in context " +
                      std::to_string(ctx));
      } else {
        owner[slot] = op;
      }
    }
  }

  // Accumulated stress per PE, compensated, against ST_target.
  if (spec.st_target >= 0.0) {
    std::vector<KahanSum> acc(static_cast<std::size_t>(n_pes));
    for (int op = 0; op < n_ops; ++op) {
      acc[static_cast<std::size_t>(fp.pe_of(op))].add(
          op_stress(d.ops[static_cast<std::size_t>(op)], fabric));
    }
    for (int pe = 0; pe < n_pes; ++pe) {
      const double st = acc[static_cast<std::size_t>(pe)].value();
      if (st > spec.st_target + opts.tol_stress +
                   1e-12 * std::abs(spec.st_target)) {
        cert.fail(opts, "stress",
                  "PE " + std::to_string(pe) + " accumulates stress " +
                      std::to_string(st) + " > ST_target " +
                      std::to_string(spec.st_target));
      }
    }
  }

  // Frozen critical-path ops must keep their reference binding.
  if (spec.reference != nullptr && !spec.frozen.empty()) {
    for (int op = 0; op < n_ops; ++op) {
      if (!spec.frozen[static_cast<std::size_t>(op)]) continue;
      if (fp.pe_of(op) != spec.reference->pe_of(op)) {
        cert.fail(opts, "frozen",
                  "frozen op " + std::to_string(op) + " moved from PE " +
                      std::to_string(spec.reference->pe_of(op)) + " to PE " +
                      std::to_string(fp.pe_of(op)));
      }
    }
  }

  // Every monitored path within its wirelength budget: recomputing the
  // path delay from PE positions and comparing against the CPD reference is
  // Eq. (5) with the substitution wl * uwd = delay - pe_delay.
  if (spec.monitored != nullptr && spec.cpd_ns > 0.0) {
    for (std::size_t p = 0; p < spec.monitored->size(); ++p) {
      const timing::TimingPath& path = (*spec.monitored)[p];
      const double delay = timing::path_delay_ns(d, fp, path);
      if (delay > spec.cpd_ns + opts.tol_delay_ns) {
        cert.fail(opts, "path-budget",
                  "monitored path " + std::to_string(p) + " has delay " +
                      std::to_string(delay) + " ns > CPD budget " +
                      std::to_string(spec.cpd_ns) + " ns");
      }
    }
  }
  return cert;
}

}  // namespace cgraf::verify
